(* The motivating example of the paper, end to end (Sections 2.1-2.4):
   the Figure 1 music player is executed by the runtime model under both
   user scenarios, the resulting traces are printed in the style of
   Figures 3 and 4, the happens-before edges (a)-(e) are checked, and
   the two races of Section 2.4 are detected, classified and verified.

       dune exec examples/music_player_walkthrough.exe *)

module Trace = Droidracer_trace.Trace
module Step = Droidracer_semantics.Step
module Graph = Droidracer_core.Graph
module Hb = Droidracer_core.Happens_before
module Detector = Droidracer_core.Detector
module Classify = Droidracer_core.Classify
module Race = Droidracer_core.Race
module Runtime = Droidracer_appmodel.Runtime
module Mp = Droidracer_corpus.Music_player
module Verify = Droidracer_explorer.Verify

let banner title =
  Printf.printf "\n--- %s ---\n\n" title

(* Find the position of the first operation satisfying a predicate. *)
let find trace pred =
  let result = ref None in
  Trace.iteri
    (fun i e -> if Option.is_none !result && pred i e then result := Some i)
    trace;
  Option.get !result

(* matches an operation by the prefix of its printed form *)
let is_op name _i (e : Trace.event) =
  let printed = Format.asprintf "%a" Droidracer_trace.Operation.pp e.op in
  String.length printed >= String.length name
  && String.sub printed 0 (String.length name) = name

let () =
  banner "PLAY scenario (Figures 2 and 3)";
  let play = Runtime.run ~options:Mp.options Mp.app Mp.play_scenario in
  (match Step.validate play.Runtime.full with
   | Ok _ -> print_endline "the generated trace satisfies the Figure 5 semantics"
   | Error v -> Format.printf "semantics violation: %a@." Step.pp_violation v);
  Format.printf "@.%a@." Trace.pp play.Runtime.observed;
  let t = play.Runtime.observed in
  let hb = Hb.compute (Graph.build ~coalesce:true t) in
  (* The five happens-before edges highlighted in Figure 3. *)
  let fork = find t (is_op "fork") in
  let init_t4 = find t (fun _ e -> e.Trace.op = Droidracer_trace.Operation.Thread_init
                                   && Droidracer_trace.Ident.Thread_id.to_int e.Trace.thread = 4) in
  let post_pe = find t (is_op "post FileDwTask.onPostExecute") in
  let begin_pe = find t (is_op "begin FileDwTask.onPostExecute") in
  let end_launch = find t (is_op "end LAUNCH") in
  let enable_click = find t (is_op "enable onPlayClick#0") in
  let post_click = find t (is_op "post onPlayClick#0") in
  let enable_pause = find t (is_op "enable DwFileAct_0.onPause") in
  let post_pause = find t (is_op "post DwFileAct_0.onPause") in
  let edge name i j =
    Printf.printf "edge %s: %2d %s %2d  %s\n" name i
      (if Hb.hb hb i j then "->" else "!!")
      j
      (if Hb.hb hb i j then "(derived)" else "(MISSING)")
  in
  print_newline ();
  edge "a (fork ~> threadinit)      " fork init_t4;
  edge "b (post ~> begin)           " post_pe begin_pe;
  edge "c (end LAUNCH ~> begin post)" end_launch begin_pe;
  edge "d (enable ~> post click)    " enable_click post_click;
  edge "e (enable ~> post onPause)  " enable_pause post_pause;
  let report = Detector.analyze t in
  Printf.printf "\nraces in the PLAY scenario: %d (the conflicting pairs are ordered)\n"
    (List.length report.Detector.all_races);

  banner "BACK scenario (Figure 4)";
  let back = Runtime.run ~options:Mp.options Mp.app Mp.back_scenario in
  Format.printf "%a@." Trace.pp back.Runtime.observed;
  let report = Detector.analyze back.Runtime.observed in
  Printf.printf "races found: %d\n\n" (List.length report.Detector.all_races);
  List.iter
    (fun { Detector.race; category } ->
       Format.printf "[%a] %a@." Classify.pp_category category Race.pp race;
       match
         Verify.verify ~options:Mp.options ~app:Mp.app
           ~events:Mp.back_scenario ~trace:report.Detector.trace
           ~thread_names:back.Runtime.thread_names race
       with
       | Verify.Confirmed w ->
         Printf.printf
           "  verified: an alternate schedule (seed %d) reorders the accesses \
            to positions %d < %d\n"
           w.Verify.w_seed w.Verify.w_first w.Verify.w_second
       | Verify.Not_flipped n ->
         Printf.printf "  not reproduced in %d perturbed runs\n" n)
    report.Detector.all_races;
  print_newline ();
  print_endline
    "Both assertions of Figure 1 (lines 41 and 53) can observe\n\
     isActivityDestroyed = true: exactly the two races of Section 2.4.";

  banner "Why the environment model matters (Section 2.4)";
  let no_env = Detector.analyze ~config:Detector.no_environment_model back.Runtime.observed in
  Printf.printf
    "with enable modelling:    %d races\n\
     without enable modelling: %d races (the write/write pair between\n\
     onCreate and onDestroy becomes a false positive)\n"
    (List.length report.Detector.all_races)
    (List.length no_env.Detector.all_races)
