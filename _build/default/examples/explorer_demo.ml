(* The UI Explorer and race verification workflow (Section 5): explore
   UI event sequences systematically, detect races, and separate true
   from false positives the way the paper does with the DDMS debugger.

       dune exec examples/explorer_demo.exe *)

module Program = Droidracer_appmodel.Program
module Runtime = Droidracer_appmodel.Runtime
module Detector = Droidracer_core.Detector
module Classify = Droidracer_core.Classify
module Race = Droidracer_core.Race
module Explorer = Droidracer_explorer.Explorer
module Verify = Droidracer_explorer.Verify
module Bug_apps = Droidracer_corpus.Bug_apps

let banner title = Printf.printf "\n--- %s ---\n\n" title

(* An app with one true race and one false positive: the editor and the
   saver share a buffer; the "autosave" path is ordered by an ad-hoc
   flag the detector cannot see. *)
let buffer = Program.field ~cls:"Editor" "buffer"
let saved = Program.field ~cls:"Editor" "autosaved"
let flag = Program.field ~cls:"Editor" "dirtyFlag"

let editor_app =
  Program.app ~name:"Editor" ~main:"EditorActivity"
    ~activities:
      [ Program.activity "EditorActivity"
          ~on_create:
            [ Program.Fork
                ( "autosaver"
                , [ Program.Handoff_wait flag  (* ad-hoc synchronization *)
                  ; Program.Read saved
                  ] )
            ]
          ~ui:
            [ Program.handler "typeText"
                [ Program.Write buffer
                ; Program.Write saved
                ; Program.Handoff_send flag
                ]
            ; Program.handler "share" [ Program.Read buffer ]
            ]
      ]
    ()

let pp_events ppf events =
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.fprintf f "; ")
    Runtime.pp_ui_event ppf events

let explore_and_verify name app =
  banner (name ^ ": systematic exploration (bound 2)");
  let exploration = Explorer.explore ~bound:2 app in
  Printf.printf "executed %d event sequences\n"
    (List.length exploration.Explorer.cases);
  List.iter
    (fun (case, report) ->
       Format.printf "@.sequence [%a] manifests %d race(s):@." pp_events
         case.Explorer.events
         (List.length report.Detector.all_races);
       List.iter
         (fun { Detector.race; category } ->
            let verdict =
              Verify.verify ~app
                ~events:case.Explorer.events ~trace:report.Detector.trace
                ~thread_names:case.Explorer.result.Runtime.thread_names race
            in
            Format.printf "  [%a] %a@.      %s@." Classify.pp_category category
              Race.pp race
              (match verdict with
               | Verify.Confirmed w ->
                 Printf.sprintf
                   "TRUE POSITIVE: accesses reordered under seed %d, events [%s]"
                   w.Verify.w_seed
                   (Format.asprintf "%a" pp_events w.Verify.w_events)
               | Verify.Not_flipped n ->
                 Printf.sprintf
                   "presumed FALSE POSITIVE: order survived %d perturbed runs \
                    (ad-hoc synchronization the detector cannot see)"
                   n))
         report.Detector.all_races)
    (Explorer.racy_cases exploration)

let () =
  explore_and_verify "Editor (crafted true + false positive)" editor_app;
  banner "Aard Dictionary service race (Section 6, bad behaviour #1)";
  let r =
    Runtime.run Bug_apps.Aard_dictionary.app Bug_apps.Aard_dictionary.scenario
  in
  let report = Detector.analyze r.Runtime.observed in
  List.iter
    (fun { Detector.race; category } ->
       Format.printf "[%a] %a@." Classify.pp_category category Race.pp race)
    report.Detector.all_races;
  print_endline
    "-> reordering lets the loader see the new service state before the\n\
    \   dictionaries exist: the user's lookup fails (empty dictionaries).";
  banner "Messenger cursor race (Section 6, bad behaviour #2)";
  let r = Runtime.run Bug_apps.Messenger.app Bug_apps.Messenger.scenario in
  let report = Detector.analyze r.Runtime.observed in
  List.iter
    (fun { Detector.race; category } ->
       Format.printf "[%a] %a@." Classify.pp_category category Race.pp race)
    report.Detector.all_races;
  print_endline
    "-> reordering the two main-thread tasks indexes a deleted list\n\
    \   element: the \"index out of bounds\" crash the paper reproduced."
