examples/quickstart.mli:
