examples/explorer_demo.mli:
