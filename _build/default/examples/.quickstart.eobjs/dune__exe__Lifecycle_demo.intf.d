examples/lifecycle_demo.mli:
