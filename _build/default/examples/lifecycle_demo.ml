(* The Android runtime environment model (Section 4.2, Figure 8):
   activity lifecycles, services and broadcast receivers driven through
   the interpreter, with the enable discipline on display.

       dune exec examples/lifecycle_demo.exe *)

module Lifecycle = Droidracer_android.Lifecycle
module Program = Droidracer_appmodel.Program
module Runtime = Droidracer_appmodel.Runtime
module Trace = Droidracer_trace.Trace
module Operation = Droidracer_trace.Operation
module Detector = Droidracer_core.Detector

let banner title = Printf.printf "\n--- %s ---\n\n" title

(* A two-activity application touching every lifecycle hook, a service
   and a broadcast receiver. *)
let status = Program.field ~cls:"App" "status"

let main_activity =
  Program.activity "Home"
    ~on_create:[ Program.Write status ]
    ~on_pause:[ Program.Read status ]
    ~on_stop:[ Program.Read status ]
    ~on_restart:[ Program.Read status ]
    ~on_destroy:[ Program.Write status ]
    ~ui:
      [ Program.handler "openSettings" [ Program.Start_activity "Settings" ]
      ; Program.handler "ping"
          [ Program.Start_service "Tracker"; Program.Send_broadcast "PING" ]
      ]

let settings_activity =
  Program.activity "Settings"
    ~on_create:[ Program.Read status ]
    ~on_destroy:[ Program.Read status ]

let tracker =
  Program.service "Tracker"
    ~on_create:[ Program.Write (Program.field ~cls:"Tracker" "started") ]
    ~on_start_command:[ Program.Read (Program.field ~cls:"Tracker" "started") ]

let receiver =
  { Program.receiver_name = "PingReceiver"
  ; action = "PING"
  ; on_receive = [ Program.Read status ]
  }

let app =
  Program.app ~name:"LifecycleDemo" ~main:"Home"
    ~activities:[ main_activity; settings_activity ]
    ~services:[ tracker ]
    ~receivers:[ receiver ]
    ()

let show_lifecycle_ops title trace =
  banner title;
  Trace.iteri
    (fun i (e : Trace.event) ->
       match e.op with
       | Operation.Enable _ | Operation.Post _ | Operation.Begin_task _
       | Operation.End_task _ ->
         Format.printf "%4d  %a@." i Trace.pp_event e
       | _ -> ())
    trace

let () =
  banner "Figure 8: the activity lifecycle state machine";
  List.iter
    (fun state ->
       Format.printf "%-10s may be followed by: %s@."
         (Format.asprintf "%a" Lifecycle.pp_activity_state state)
         (match
            List.map Lifecycle.activity_callback_name
              (Lifecycle.activity_successors state)
          with
          | [] -> "(terminal)"
          | cbs -> String.concat ", " cbs))
    [ Lifecycle.Launched; Lifecycle.Created; Lifecycle.Started
    ; Lifecycle.Running; Lifecycle.Paused; Lifecycle.Stopped
    ; Lifecycle.Destroyed ];
  (* illegal transitions are rejected *)
  (match Lifecycle.activity_step Lifecycle.Launched Lifecycle.On_destroy with
   | Ok _ -> print_endline "BUG: onDestroy accepted from Launched"
   | Error msg -> Printf.printf "\nrejected as expected: %s\n" msg);

  (* startActivity: the onPause -> LAUNCH -> onStop chain of Section 2.2 *)
  let r =
    Runtime.run app [ Runtime.Click "openSettings"; Runtime.Back ]
  in
  show_lifecycle_ops
    "startActivity(Settings) then BACK: lifecycle posts and their enables"
    r.Runtime.observed;
  let report = Detector.analyze r.Runtime.observed in
  Printf.printf
    "\nraces: %d — every lifecycle callback pair is ordered by the\n\
     enable/post/FIFO/NOPRE reasoning despite running as separate tasks\n"
    (List.length report.Detector.all_races);

  (* services and broadcasts *)
  let r = Runtime.run app [ Runtime.Click "ping" ] in
  show_lifecycle_ops "startService + sendBroadcast" r.Runtime.observed;

  (* rotation destroys and relaunches the activity *)
  let r = Runtime.run app [ Runtime.Rotate ] in
  show_lifecycle_ops "screen rotation: destroy and relaunch" r.Runtime.observed;
  let report = Detector.analyze r.Runtime.observed in
  Printf.printf "\nraces after rotation: %d\n"
    (List.length report.Detector.all_races)
