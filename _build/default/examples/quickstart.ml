(* Quickstart: build an execution trace with the library API and detect
   its data races.

       dune exec examples/quickstart.exe

   The trace models the paper's core scenario: a looper thread (t1)
   executes two asynchronous tasks whose posts are unordered, so their
   accesses to a shared field race even though they run on one thread —
   the kind of race purely multithreaded detectors cannot see. *)

module Ident = Droidracer_trace.Ident
module Operation = Droidracer_trace.Operation
module Trace = Droidracer_trace.Trace
module Step = Droidracer_semantics.Step
module Detector = Droidracer_core.Detector
module Classify = Droidracer_core.Classify
module Race = Droidracer_core.Race

let tid = Ident.Thread_id.make
let task name = Ident.Task_id.make ~name ~instance:0
let field = Ident.Location.make ~cls:"Model" ~field:"state" ~obj:0
let ev t op = { Trace.thread = tid t; op }

let trace =
  Trace.of_events_exn
    [ ev 0 Operation.Thread_init  (* a worker thread *)
    ; ev 2 Operation.Thread_init  (* another worker *)
    ; ev 1 Operation.Thread_init  (* the looper thread *)
    ; ev 1 Operation.Attach_queue
    ; ev 1 Operation.Loop_on_queue
    ; ev 0
        (Operation.Post
           { task = task "refresh"; target = tid 1; flavour = Operation.Immediate })
    ; ev 2
        (Operation.Post
           { task = task "update"; target = tid 1; flavour = Operation.Immediate })
    ; ev 1 (Operation.Begin_task (task "refresh"))
    ; ev 1 (Operation.Write field)
    ; ev 1 (Operation.End_task (task "refresh"))
    ; ev 1 (Operation.Begin_task (task "update"))
    ; ev 1 (Operation.Write field)
    ; ev 1 (Operation.End_task (task "update"))
    ]

let () =
  (* 1. The trace respects the concurrency semantics of Figure 5. *)
  (match Step.validate trace with
   | Ok _ -> print_endline "trace is valid under the Android semantics"
   | Error v -> Format.printf "invalid trace: %a@." Step.pp_violation v);
  (* 2. Each operation of the core language (Table 1) prints as: *)
  Format.printf "@.%a@." Trace.pp trace;
  (* 3. Detect and classify data races. *)
  let report = Detector.analyze trace in
  Format.printf "%a@." Detector.pp_report report;
  (* 4. The race is single-threaded: the two posts are unordered, so the
        FIFO rule cannot order the tasks.  A classic multithreaded
        happens-before relation would order the two writes by program
        order and miss it. *)
  List.iter
    (fun { Detector.race; category } ->
       Format.printf "found: %a [%a]@." Race.pp race Classify.pp_category
         category)
    report.Detector.all_races
