(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 6) and times the analysis pipeline with
   Bechamel micro-benchmarks — one benchmark per regenerated artefact.

   Run with [dune exec bench/main.exe].  Pass [--quick] to restrict the
   corpus to the open-source applications and skip verification (for
   CI-style runs). *)

module Trace = Droidracer_trace.Trace
module Graph = Droidracer_core.Graph
module Happens_before = Droidracer_core.Happens_before
module Detector = Droidracer_core.Detector
module Clock_engine = Droidracer_core.Clock_engine
module Runtime = Droidracer_appmodel.Runtime
module Music_player = Droidracer_corpus.Music_player
module Catalog = Droidracer_corpus.Catalog
module Synthetic = Droidracer_corpus.Synthetic
module Experiments = Droidracer_report.Experiments
module Table = Droidracer_report.Table

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

(* {1 Bechamel micro-benchmarks} *)

let microbenchmarks (runs : Experiments.app_run list) =
  let open Bechamel in
  let small =
    match runs with
    | r :: _ -> r.Experiments.ar_result.Runtime.observed
    | [] -> assert false
  in
  let medium =
    match runs with
    | _ :: r :: _ -> r.Experiments.ar_result.Runtime.observed
    | [ r ] -> r.Experiments.ar_result.Runtime.observed
    | [] -> assert false
  in
  let tests =
    [ Test.make ~name:"table2: trace generation (music player, BACK)"
        (Staged.stage (fun () ->
           Runtime.run ~options:Music_player.options Music_player.app
             Music_player.back_scenario))
    ; Test.make ~name:"table3: full race detection (smallest corpus app)"
        (Staged.stage (fun () -> Detector.analyze small))
    ; Test.make ~name:"perf: happens-before, coalesced graph"
        (Staged.stage (fun () ->
           Happens_before.compute (Graph.build ~coalesce:true medium)))
    ; Test.make ~name:"perf: happens-before, uncoalesced graph"
        (Staged.stage (fun () ->
           Happens_before.compute (Graph.build ~coalesce:false small)))
    ; Test.make ~name:"engines: online vector-clock detection"
        (Staged.stage (fun () -> Clock_engine.detect medium))
    ]
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:60 ~quota:(Time.second 0.6) () in
  let raw =
    Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"droidracer" tests)
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
       let ns =
         match Analyze.OLS.estimates est with
         | Some (v :: _) -> v
         | Some [] | None -> nan
       in
       rows := (name, ns) :: !rows)
    results;
  let table =
    Table.create ~title:"Bechamel micro-benchmarks (monotonic clock)"
      ~columns:[ "benchmark"; "time per run" ]
  in
  List.iter
    (fun (name, ns) ->
       let cell =
         if Float.is_nan ns then "n/a"
         else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
         else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
         else Printf.sprintf "%.2f us" (ns /. 1e3)
       in
       Table.add_row table [ name; cell ])
    (List.sort compare !rows);
  Table.print table

let () =
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  let specs = if quick then Catalog.open_source else Catalog.all in
  section "DroidRacer reproduction: evaluation harness (PLDI 2014, Section 6)";
  Printf.printf
    "Corpus: %d applications%s; every table below shows paper / measured.\n"
    (List.length specs)
    (if quick then " (open source only: --quick)" else "");
  section "Motivating example (Figures 1-4)";
  Table.print (Experiments.music_player_summary ());
  section "Figure 8: activity lifecycle";
  Table.print (Experiments.lifecycle_table ());
  section "Running the corpus";
  let t0 = Sys.time () in
  let runs = Experiments.run_catalog ~specs () in
  Printf.printf "generated and analysed %d traces in %.1fs CPU\n"
    (List.length runs) (Sys.time () -. t0);
  section "Table 2";
  Table.print (Experiments.table2 runs);
  section "Table 3";
  let t0 = Sys.time () in
  Table.print (Experiments.table3 ~verify:(not quick) runs);
  Printf.printf "\n(race verification by schedule perturbation took %.1fs CPU)\n"
    (Sys.time () -. t0);
  section "Performance (Section 6): coalescing and analysis cost";
  Table.print (Experiments.performance_table runs);
  section "Ablation: specialized happens-before relations";
  Table.print (Experiments.baseline_table runs);
  section "Ablation: graph engine vs vector-clock engine";
  Table.print (Experiments.engine_table runs);
  section "Ablation: modelling the runtime environment (enables)";
  Table.print (Experiments.environment_model_table ());
  section "Extension: the deferred front-of-queue rule";
  Table.print (Experiments.front_rule_table runs);
  section "Extension: race coverage [24]";
  Table.print (Experiments.coverage_table runs);
  section "Micro-benchmarks";
  microbenchmarks runs;
  print_newline ()
