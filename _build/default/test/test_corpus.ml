(* Tests of the application corpus: the music player, the synthetic
   generator, the catalog and the bug apps. *)

module Trace = Droidracer_trace.Trace
module Step = Droidracer_semantics.Step
module Runtime = Droidracer_appmodel.Runtime
module Detector = Droidracer_core.Detector
module Classify = Droidracer_core.Classify
module Race = Droidracer_core.Race
module Verify = Droidracer_explorer.Verify
module Mp = Droidracer_corpus.Music_player
module Synthetic = Droidracer_corpus.Synthetic
module Catalog = Droidracer_corpus.Catalog
module Bug_apps = Droidracer_corpus.Bug_apps

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

(* {1 Catalog} *)

let test_catalog_shape () =
  check_int "ten open-source apps" 10 (List.length Catalog.open_source);
  check_int "five proprietary apps" 5 (List.length Catalog.proprietary);
  check_bool "lookup" true (Option.is_some (Catalog.find "Flipkart"));
  check_bool "missing lookup" true (Option.is_none (Catalog.find "WhatsApp"));
  List.iter
    (fun s ->
       let ok (x, y) = y <= x && x >= 0 in
       check_bool (s.Synthetic.s_name ^ " consistent") true
         (ok s.Synthetic.s_multithreaded && ok s.Synthetic.s_cross_posted
          && ok s.Synthetic.s_co_enabled && ok s.Synthetic.s_delayed
          && ok s.Synthetic.s_unknown))
    Catalog.all

(* {1 Synthetic generation} *)

let run_built b =
  Runtime.run ~options:b.Synthetic.b_options b.Synthetic.b_app
    b.Synthetic.b_events

let test_synthetic_matches_table2 () =
  List.iter
    (fun name ->
       let spec = Option.get (Catalog.find name) in
       let b = Synthetic.build spec in
       let r = run_built b in
       check_bool (name ^ " valid") true (Step.is_valid r.Runtime.full);
       let s = Trace.stats r.Runtime.observed in
       let close target actual =
         abs (target - actual) * 20 <= target + 20
       in
       check_bool (name ^ " trace length within 5%") true
         (close spec.Synthetic.s_trace_length s.Trace.trace_length);
       check_int (name ^ " fields exact") spec.Synthetic.s_fields s.Trace.fields;
       check_int (name ^ " async tasks exact") spec.Synthetic.s_async_tasks
         s.Trace.async_tasks)
    [ "Aard Dictionary"; "Music Player"; "Tomdroid Notes" ]

let count_category report cat =
  List.length
    (List.filter
       (fun { Detector.category; _ } -> Classify.category_equal category cat)
       report.Detector.distinct_races)

let test_synthetic_matches_table3 () =
  List.iter
    (fun name ->
       let spec = Option.get (Catalog.find name) in
       let b = Synthetic.build spec in
       let r = run_built b in
       let report = Detector.analyze r.Runtime.observed in
       let expect (x, _) cat =
         check_int
           (Printf.sprintf "%s %s reports" name (Classify.category_name cat))
           x (count_category report cat)
       in
       expect spec.Synthetic.s_multithreaded Classify.Multithreaded;
       expect spec.Synthetic.s_cross_posted Classify.Cross_posted;
       expect spec.Synthetic.s_co_enabled Classify.Co_enabled;
       expect spec.Synthetic.s_delayed Classify.Delayed_race;
       expect spec.Synthetic.s_unknown Classify.Unknown)
    [ "Aard Dictionary"; "Music Player"; "Messenger" ]

let test_plants_cover_races () =
  let spec = Option.get (Catalog.find "Music Player") in
  let b = Synthetic.build spec in
  let r = run_built b in
  let report = Detector.analyze r.Runtime.observed in
  List.iter
    (fun { Detector.race; _ } ->
       check_bool "every distinct race belongs to a plant" true
         (Option.is_some (Synthetic.plant_of_location b (Race.location race))))
    report.Detector.distinct_races

let test_verification_matches_ground_truth () =
  (* for a small app, the verifier's verdicts coincide with the plants'
     intended genuineness *)
  let spec = Option.get (Catalog.find "Aard Dictionary") in
  let b = Synthetic.build spec in
  let r = run_built b in
  let report = Detector.analyze r.Runtime.observed in
  List.iter
    (fun { Detector.race; _ } ->
       match Synthetic.plant_of_location b (Race.location race) with
       | None -> Alcotest.fail "race outside any plant"
       | Some plant ->
         let verdict =
           Verify.verify ~attempts:12 ~options:b.Synthetic.b_options
             ~app:b.Synthetic.b_app ~events:b.Synthetic.b_events
             ~trace:report.Detector.trace
             ~thread_names:r.Runtime.thread_names race
         in
         check_bool
           (Printf.sprintf "verdict matches plant (%s)" plant.Synthetic.p_mechanism)
           plant.Synthetic.p_genuine
           (Verify.is_confirmed verdict))
    report.Detector.distinct_races

(* {1 The music player} *)

let test_music_player_scenarios () =
  let play = Runtime.run ~options:Mp.options Mp.app Mp.play_scenario in
  check_int "PLAY has no races" 0
    (List.length (Detector.analyze play.Runtime.observed).Detector.all_races);
  let back = Runtime.run ~options:Mp.options Mp.app Mp.back_scenario in
  let report = Detector.analyze back.Runtime.observed in
  let categories =
    List.map
      (fun { Detector.category; _ } -> Classify.category_name category)
      report.Detector.all_races
  in
  Alcotest.(check (list string))
    "the two Section 2.4 races" [ "multithreaded"; "cross-posted" ] categories;
  List.iter
    (fun { Detector.race; _ } ->
       check_bool "on isActivityDestroyed" true
         (Droidracer_trace.Ident.Location.field_key (Race.location race)
          = "DwFileAct.isActivityDestroyed"))
    report.Detector.all_races

(* {1 Bug apps} *)

let test_aard_bug () =
  let r =
    Runtime.run Bug_apps.Aard_dictionary.app Bug_apps.Aard_dictionary.scenario
  in
  check_bool "valid" true (Step.is_valid r.Runtime.full);
  let report = Detector.analyze r.Runtime.observed in
  check_int "two multithreaded races" 2 (List.length report.Detector.all_races);
  List.iter
    (fun { Detector.category; _ } ->
       check_bool "multithreaded" true
         (Classify.category_equal category Classify.Multithreaded))
    report.Detector.all_races;
  check_bool "the service state race is reported" true
    (List.exists
       (fun { Detector.race; _ } ->
          Droidracer_trace.Ident.Location.field_key (Race.location race)
          = "DictionaryService.dictionariesLoaded")
       report.Detector.all_races)

let test_messenger_bug () =
  let r = Runtime.run Bug_apps.Messenger.app Bug_apps.Messenger.scenario in
  let report = Detector.analyze r.Runtime.observed in
  check_int "one race" 1 (List.length report.Detector.all_races);
  match report.Detector.all_races with
  | [ { race; category } ] ->
    check_bool "cross-posted, as in the paper" true
      (Classify.category_equal category Classify.Cross_posted);
    check_bool "on the cursor" true
      (Droidracer_trace.Ident.Location.field_key (Race.location race)
       = "Cursor.rowCount");
    (* the bad behaviour: an alternate ordering exists *)
    check_bool "confirmed" true
      (Verify.is_confirmed
         (Verify.verify ~app:Bug_apps.Messenger.app
            ~events:Bug_apps.Messenger.scenario ~trace:report.Detector.trace
            ~thread_names:r.Runtime.thread_names race))
  | _ -> Alcotest.fail "expected exactly one race"

let test_fbreader_bug () =
  let r = Runtime.run Bug_apps.Fbreader.app Bug_apps.Fbreader.scenario in
  let report = Detector.analyze r.Runtime.observed in
  check_bool "the token race is reported" true
    (List.exists
       (fun { Detector.race; _ } ->
          Droidracer_trace.Ident.Location.field_key (Race.location race)
          = "Window.token")
       report.Detector.all_races);
  (* the crash interleaving is reachable: verification confirms *)
  List.iter
    (fun { Detector.race; _ } ->
       check_bool "confirmed" true
         (Verify.is_confirmed
            (Verify.verify ~app:Bug_apps.Fbreader.app
               ~events:Bug_apps.Fbreader.scenario ~trace:report.Detector.trace
               ~thread_names:r.Runtime.thread_names race)))
    report.Detector.distinct_races

let test_tomdroid_bug () =
  let r = Runtime.run Bug_apps.Tomdroid.app Bug_apps.Tomdroid.scenario in
  let report = Detector.analyze r.Runtime.observed in
  check_bool "the null-list race is reported" true
    (List.exists
       (fun { Detector.race; _ } ->
          Droidracer_trace.Ident.Location.field_key (Race.location race)
          = "NoteManager.notes")
       report.Detector.all_races)

let () =
  Alcotest.run "corpus"
    [ ( "catalog"
      , [ Alcotest.test_case "shape" `Quick test_catalog_shape ] )
    ; ( "synthetic"
      , [ Alcotest.test_case "table 2 targets" `Quick test_synthetic_matches_table2
        ; Alcotest.test_case "table 3 targets" `Quick test_synthetic_matches_table3
        ; Alcotest.test_case "plants cover races" `Quick test_plants_cover_races
        ; Alcotest.test_case "verification vs ground truth" `Quick
            test_verification_matches_ground_truth
        ] )
    ; ( "music player"
      , [ Alcotest.test_case "scenarios" `Quick test_music_player_scenarios ] )
    ; ( "bug apps"
      , [ Alcotest.test_case "aard service race" `Quick test_aard_bug
        ; Alcotest.test_case "messenger cursor race" `Quick test_messenger_bug
        ; Alcotest.test_case "fbreader token race" `Quick test_fbreader_bug
        ; Alcotest.test_case "tomdroid null race" `Quick test_tomdroid_bug
        ] )
    ]
