(* End-to-end tests: UI exploration -> trace generation -> offline race
   detection -> classification -> verification, plus the experiment
   drivers that regenerate the paper's tables. *)

module Trace = Droidracer_trace.Trace
module Trace_io = Droidracer_trace.Trace_io
module Step = Droidracer_semantics.Step
module Detector = Droidracer_core.Detector
module Classify = Droidracer_core.Classify
module Clock_engine = Droidracer_core.Clock_engine
module Race = Droidracer_core.Race
module Runtime = Droidracer_appmodel.Runtime
module Mp = Droidracer_corpus.Music_player
module Catalog = Droidracer_corpus.Catalog
module Synthetic = Droidracer_corpus.Synthetic
module Experiments = Droidracer_report.Experiments
module Table = Droidracer_report.Table

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

(* {1 The full pipeline on the motivating example} *)

let test_pipeline_via_trace_file () =
  (* generate -> save -> load -> analyze: the offline workflow of the
     real tool (Section 5) *)
  let r = Runtime.run ~options:Mp.options Mp.app Mp.back_scenario in
  let path = Filename.temp_file "droidracer" ".trace" in
  Trace_io.save path r.Runtime.observed;
  (match Trace_io.load path with
   | Error msg -> Alcotest.failf "reload failed: %s" msg
   | Ok trace ->
     let report = Detector.analyze trace in
     check_int "same two races" 2 (List.length report.Detector.all_races));
  Sys.remove path

let test_figure_traces_equal_model_traces () =
  (* the runtime regenerates traces structurally equivalent to the
     hand-written Figure 3/4 encodings: same race verdicts under the
     same analysis *)
  let back = Runtime.run ~options:Mp.options Mp.app Mp.back_scenario in
  let report = Detector.analyze back.Runtime.observed in
  let categories =
    List.map
      (fun { Detector.category; _ } -> Classify.category_name category)
      report.Detector.all_races
  in
  Alcotest.(check (list string))
    "same categories as the hand-written Figure 4"
    [ "multithreaded"; "cross-posted" ] categories

(* {1 Experiment drivers} *)

let aard_run = lazy (Experiments.run_spec (Option.get (Catalog.find "Aard Dictionary")))

let test_table2_aard_exact () =
  let run = Lazy.force aard_run in
  let t = Experiments.table2 [ run ] in
  let rendered = Table.render t in
  (* fields, threads and async tasks are exact for Aard Dictionary *)
  check_bool "fields exact" true
    (Astring_contains.contains rendered "189 / 189");
  check_bool "async exact" true (Astring_contains.contains rendered "58 / 58")

let test_table3_aard_exact () =
  let run = Lazy.force aard_run in
  let t = Experiments.table3 ~verify:true ~attempts:10 [ run ] in
  let rendered = Table.render t in
  check_bool "the verified multithreaded race" true
    (Astring_contains.contains rendered "1(1) / 1(1)")

let test_performance_table () =
  let run = Lazy.force aard_run in
  let t = Experiments.performance_table [ run ] in
  let rendered = Table.render t in
  check_bool "has a coalescing ratio" true
    (Astring_contains.contains rendered "%")

let test_environment_model_table () =
  let t = Experiments.environment_model_table () in
  let rendered = Table.render t in
  (* BACK: 2 races with enables, 3 without *)
  check_bool "figure 4 row" true
    (Astring_contains.contains rendered "BACK (Figure 4) 2 3")

let test_lifecycle_table () =
  let rendered = Table.render (Experiments.lifecycle_table ()) in
  check_bool "stopped row" true
    (Astring_contains.contains rendered "onRestart, onDestroy")

(* {1 Engines agree on generated corpus traces} *)

let test_clock_engine_subset_on_corpus () =
  let run = Lazy.force aard_run in
  let trace =
    Trace.remove_cancelled
      run.Experiments.ar_result.Runtime.observed
  in
  let graph_races =
    List.map
      (fun { Detector.race; _ } ->
         (race.Race.first.position, race.Race.second.position))
      run.Experiments.ar_report.Detector.all_races
  in
  let clock_races, _ = Clock_engine.detect trace in
  check_bool "clock races subset of graph races" true
    (List.for_all
       (fun (r : Race.t) ->
          List.mem (r.first.position, r.second.position) graph_races)
       clock_races)

(* {1 Semantics of every corpus trace} *)

let test_corpus_traces_valid () =
  List.iter
    (fun name ->
       let spec = Option.get (Catalog.find name) in
       let b = Synthetic.build spec in
       let r =
         Runtime.run ~options:b.Synthetic.b_options b.Synthetic.b_app
           b.Synthetic.b_events
       in
       check_bool (name ^ " semantics") true (Step.is_valid r.Runtime.full);
       check_bool (name ^ " structurally well-formed") true
         (Result.is_ok (Trace.of_events (Trace.events r.Runtime.observed))))
    [ "Aard Dictionary"; "Messenger" ]

let () =
  Alcotest.run "integration"
    [ ( "pipeline"
      , [ Alcotest.test_case "trace file round trip" `Quick
            test_pipeline_via_trace_file
        ; Alcotest.test_case "figure traces" `Quick
            test_figure_traces_equal_model_traces
        ] )
    ; ( "experiments"
      , [ Alcotest.test_case "table 2 (Aard)" `Quick test_table2_aard_exact
        ; Alcotest.test_case "table 3 (Aard)" `Quick test_table3_aard_exact
        ; Alcotest.test_case "performance table" `Quick test_performance_table
        ; Alcotest.test_case "environment model table" `Quick
            test_environment_model_table
        ; Alcotest.test_case "lifecycle table" `Quick test_lifecycle_table
        ] )
    ; ( "engines"
      , [ Alcotest.test_case "clock subset on corpus" `Quick
            test_clock_engine_subset_on_corpus
        ] )
    ; ( "corpus"
      , [ Alcotest.test_case "traces valid" `Quick test_corpus_traces_valid ] )
    ]
