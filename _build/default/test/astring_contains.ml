(* Substring search over whitespace-normalised text, for asserting on
   rendered tables without depending on exact column widths. *)

let normalise s =
  let buf = Buffer.create (String.length s) in
  let last_space = ref false in
  String.iter
    (fun c ->
       let is_space = c = ' ' || c = '\t' || c = '\n' in
       if is_space then begin
         if not !last_space then Buffer.add_char buf ' ';
         last_space := true
       end
       else begin
         Buffer.add_char buf c;
         last_space := false
       end)
    s;
  Buffer.contents buf

let contains haystack needle =
  let haystack = normalise haystack and needle = normalise needle in
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0
