open Helpers
module State = Droidracer_semantics.State
module Step = Droidracer_semantics.Step
module Queue_model = Droidracer_semantics.Queue_model

let check_bool = Alcotest.check Alcotest.bool

let task_list =
  Alcotest.testable
    (Fmt.Dump.list (fun ppf p -> Ident.Task_id.pp ppf p))
    (List.equal Ident.Task_id.equal)

(* {1 Queue model} *)

let p1 = task ~instance:1 "p"
let p2 = task ~instance:2 "p"
let p3 = task ~instance:3 "p"

let test_queue_fifo () =
  let q = Queue_model.empty in
  let q = Queue_model.post q p1 Operation.Immediate in
  let q = Queue_model.post q p2 Operation.Immediate in
  Alcotest.check task_list "only the oldest immediate is eligible" [ p1 ]
    (Queue_model.eligible q);
  check_bool "dequeue p2 rejected" true
    (Result.is_error (Queue_model.dequeue q p2));
  match Queue_model.dequeue q p1 with
  | Ok q -> Alcotest.check task_list "then p2" [ p2 ] (Queue_model.eligible q)
  | Error e -> Alcotest.fail e

let test_queue_delayed_vs_immediate () =
  (* A delayed task posted before an immediate one must wait for it
     (rule (a)); an immediate task never waits for a delayed one. *)
  let q = Queue_model.empty in
  let q = Queue_model.post q p1 (Operation.Delayed 100) in
  let q = Queue_model.post q p2 Operation.Immediate in
  Alcotest.check task_list "both eligible: timer may or may not have fired"
    [ p1; p2 ] (Queue_model.eligible q);
  let q2 = Queue_model.empty in
  let q2 = Queue_model.post q2 p1 Operation.Immediate in
  let q2 = Queue_model.post q2 p2 (Operation.Delayed 100) in
  Alcotest.check task_list "delayed waits for earlier immediate" [ p1 ]
    (Queue_model.eligible q2)

let test_queue_delayed_ordering () =
  (* Earlier delayed post with smaller-or-equal timeout goes first
     (rule (b)); with a larger timeout, either may fire first. *)
  let q = Queue_model.empty in
  let q = Queue_model.post q p1 (Operation.Delayed 100) in
  let q = Queue_model.post q p2 (Operation.Delayed 200) in
  Alcotest.check task_list "100ms before 200ms" [ p1 ] (Queue_model.eligible q);
  let q2 = Queue_model.empty in
  let q2 = Queue_model.post q2 p1 (Operation.Delayed 200) in
  let q2 = Queue_model.post q2 p2 (Operation.Delayed 100) in
  Alcotest.check task_list "large delay posted first: both eligible" [ p1; p2 ]
    (Queue_model.eligible q2)

let test_queue_front () =
  let q = Queue_model.empty in
  let q = Queue_model.post q p1 Operation.Immediate in
  let q = Queue_model.post q p2 Operation.Front in
  let q = Queue_model.post q p3 Operation.Front in
  Alcotest.check task_list "most recent front post first" [ p3 ]
    (Queue_model.eligible q);
  match Queue_model.dequeue q p3 with
  | Ok q ->
    Alcotest.check task_list "then the older front post" [ p2 ]
      (Queue_model.eligible q)
  | Error e -> Alcotest.fail e

let test_queue_cancel () =
  let q = Queue_model.empty in
  let q = Queue_model.post q p1 Operation.Immediate in
  check_bool "cancel pending" true (Option.is_some (Queue_model.cancel q p1));
  check_bool "cancel absent" true (Option.is_none (Queue_model.cancel q p2));
  match Queue_model.cancel q p1 with
  | Some q -> check_bool "now empty" true (Queue_model.is_empty q)
  | None -> Alcotest.fail "cancel failed"

let test_queue_double_post_rejected () =
  let q = Queue_model.post Queue_model.empty p1 Operation.Immediate in
  check_bool "double post" true
    (match Queue_model.post q p1 Operation.Immediate with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* {1 Transition rules} *)

let expect_violation name events pred =
  match Trace.of_events events with
  | Error msg -> Alcotest.failf "%s: trace ill-formed: %s" name msg
  | Ok t ->
    (match Step.validate t with
     | Ok _ -> Alcotest.failf "%s: expected a violation" name
     | Error v -> check_bool name true (pred v.Step.kind))

let test_violations () =
  let p = task "p" in
  expect_violation "double init"
    [ threadinit 0; threadinit 0 ]
    (function Step.Thread_not_created _ -> true | _ -> false);
  expect_violation "op on unstarted thread"
    [ threadinit 0; read 1 (loc "f") ]
    (function Step.Thread_not_running _ -> true | _ -> false);
  expect_violation "op after exit"
    [ threadinit 0; threadexit 0; read 0 (loc "f") ]
    (function Step.Thread_not_running _ -> true | _ -> false);
  expect_violation "fork of existing thread"
    [ threadinit 0; threadinit 1; fork 0 1 ]
    (function Step.Thread_not_fresh _ -> true | _ -> false);
  expect_violation "join before exit"
    [ threadinit 0; fork 0 1; threadinit 1; join 0 1 ]
    (function Step.Thread_not_finished _ -> true | _ -> false);
  expect_violation "post to queue-less thread"
    [ threadinit 0; threadinit 1; post 0 p 1 ]
    (function Step.Queue_missing _ -> true | _ -> false);
  expect_violation "begin before loopOnQ"
    [ threadinit 0; threadinit 1; attachq 1; post 0 p 1; begin_task 1 p ]
    (function Step.Not_looping _ -> true | _ -> false);
  expect_violation "out-of-order dispatch"
    [ threadinit 0
    ; threadinit 1
    ; attachq 1
    ; looponq 1
    ; post 0 p1 1
    ; post 0 p2 1
    ; begin_task 1 p2
    ]
    (function Step.Bad_dispatch _ -> true | _ -> false);
  expect_violation "acquire of foreign lock"
    [ threadinit 0; threadinit 1; acquire 0 "l"; acquire 1 "l" ]
    (function Step.Lock_held_elsewhere _ -> true | _ -> false);
  expect_violation "release unheld lock"
    [ threadinit 0; release 0 "l" ]
    (function Step.Lock_not_held _ -> true | _ -> false);
  expect_violation "access while looper idle"
    [ threadinit 1; attachq 1; looponq 1; read 1 (loc "f") ]
    (function Step.Thread_idle_action _ -> true | _ -> false);
  expect_violation "cancel of non-pending task"
    [ threadinit 0; cancel 0 p ]
    (function Step.Cancel_not_pending _ -> true | _ -> false)

let test_reentrant_lock () =
  let t =
    trace
      [ threadinit 0
      ; acquire 0 "l"
      ; acquire 0 "l"
      ; release 0 "l"
      ; release 0 "l"
      ]
  in
  check_bool "reentrant acquire valid" true (Step.is_valid t)

let test_figures_validate () =
  check_bool "figure 3 valid" true (Step.is_valid figure3);
  check_bool "figure 4 valid" true (Step.is_valid figure4)

let test_post_while_idle_allowed () =
  (* Operation 19 of Figure 3: the main thread posts a UI handler to
     itself while its looper is idle. *)
  let p = task "h" in
  let t =
    trace
      [ threadinit 1; attachq 1; looponq 1; post 1 p 1; begin_task 1 p
      ; end_task 1 p
      ]
  in
  check_bool "self post while idle" true (Step.is_valid t)

let test_delayed_dispatch_order () =
  (* An immediate post posted before a delayed one must execute first. *)
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; attachq 1
      ; looponq 1
      ; post 0 p1 1
      ; post ~flavour:(Operation.Delayed 100) 0 p2 1
      ; begin_task 1 p2
      ]
  in
  check_bool "delayed before earlier immediate rejected" false (Step.is_valid t);
  let t2 =
    trace
      [ threadinit 0
      ; threadinit 1
      ; attachq 1
      ; looponq 1
      ; post ~flavour:(Operation.Delayed 100) 0 p1 1
      ; post 0 p2 1
      ; begin_task 1 p2
      ; end_task 1 p2
      ; begin_task 1 p1
      ; end_task 1 p1
      ]
  in
  check_bool "immediate may beat earlier delayed" true (Step.is_valid t2)

let test_front_dispatch () =
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; attachq 1
      ; looponq 1
      ; post 0 p1 1
      ; post ~flavour:Operation.Front 0 p2 1
      ; begin_task 1 p2
      ; end_task 1 p2
      ; begin_task 1 p1
      ; end_task 1 p1
      ]
  in
  check_bool "front post jumps the queue" true (Step.is_valid t)

(* {1 Queue-model properties} *)

let queue_ops_gen =
  (* a sequence of post/cancel/dequeue attempts over task ids 0..9 *)
  QCheck2.Gen.(list_size (int_bound 40) (pair (int_bound 2) (int_bound 9)))

let replay_queue ops =
  List.fold_left
    (fun q (kind, n) ->
       let p = task ~instance:n "q" in
       match kind with
       | 0 ->
         (match Queue_model.post q p Operation.Immediate with
          | q -> q
          | exception Invalid_argument _ -> q)
       | 1 -> Option.value (Queue_model.cancel q p) ~default:q
       | _ ->
         (match Queue_model.eligible q with
          | [] -> q
          | first :: _ -> Result.get_ok (Queue_model.dequeue q first)))
    Queue_model.empty ops

let prop_eligible_subset_of_pending =
  QCheck2.Test.make ~name:"eligible tasks are pending" ~count:200 queue_ops_gen
    (fun ops ->
       let q = replay_queue ops in
       List.for_all (fun p -> Queue_model.mem q p) (Queue_model.eligible q))

let prop_nonempty_queue_has_eligible =
  QCheck2.Test.make ~name:"a non-empty queue offers something to dispatch"
    ~count:200 queue_ops_gen
    (fun ops ->
       let q = replay_queue ops in
       Queue_model.is_empty q || Queue_model.eligible q <> [])

let prop_dequeue_only_eligible =
  QCheck2.Test.make ~name:"dequeue rejects non-eligible tasks" ~count:200
    queue_ops_gen
    (fun ops ->
       let q = replay_queue ops in
       let eligible = Queue_model.eligible q in
       List.for_all
         (fun p ->
            let allowed = List.exists (Ident.Task_id.equal p) eligible in
            allowed = Result.is_ok (Queue_model.dequeue q p))
         (Queue_model.pending q))

(* {1 Properties} *)

let prop_generated_traces_validate =
  QCheck2.Test.make ~name:"generated traces satisfy the semantics" ~count:120
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 200))
    (fun (seed, size) ->
       Step.is_valid (Random_trace.generate ~seed ~size ()))

let prop_prefix_closed =
  QCheck2.Test.make ~name:"validity is prefix-closed" ~count:40
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 5 80) (int_range 0 80))
    (fun (seed, size, cut) ->
       let t = Random_trace.generate ~seed ~size () in
       let cut = min cut (Trace.length t) in
       let prefix = List.filteri (fun i _ -> i < cut) (Trace.events t) in
       match Trace.of_events prefix with
       | Ok p -> Step.is_valid p
       | Error _ -> false)

let () =
  Alcotest.run "semantics"
    [ ( "queue"
      , [ Alcotest.test_case "fifo" `Quick test_queue_fifo
        ; Alcotest.test_case "delayed vs immediate" `Quick
            test_queue_delayed_vs_immediate
        ; Alcotest.test_case "delayed ordering" `Quick test_queue_delayed_ordering
        ; Alcotest.test_case "front posts" `Quick test_queue_front
        ; Alcotest.test_case "cancel" `Quick test_queue_cancel
        ; Alcotest.test_case "double post rejected" `Quick
            test_queue_double_post_rejected
        ] )
    ; ( "rules"
      , [ Alcotest.test_case "violations" `Quick test_violations
        ; Alcotest.test_case "reentrant locks" `Quick test_reentrant_lock
        ; Alcotest.test_case "figures validate" `Quick test_figures_validate
        ; Alcotest.test_case "post while idle" `Quick test_post_while_idle_allowed
        ; Alcotest.test_case "delayed dispatch" `Quick test_delayed_dispatch_order
        ; Alcotest.test_case "front dispatch" `Quick test_front_dispatch
        ] )
    ; ( "properties"
      , [ QCheck_alcotest.to_alcotest prop_eligible_subset_of_pending
        ; QCheck_alcotest.to_alcotest prop_nonempty_queue_has_eligible
        ; QCheck_alcotest.to_alcotest prop_dequeue_only_eligible
        ; QCheck_alcotest.to_alcotest prop_generated_traces_validate
        ; QCheck_alcotest.to_alcotest prop_prefix_closed
        ] )
    ]
