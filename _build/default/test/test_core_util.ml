(* Tests of the core utility layers: the bitset matrix behind the
   happens-before relation, the sparse vector clocks, and race
   coverage. *)

open Helpers
module Bit_matrix = Droidracer_core.Bit_matrix
module Vector_clock = Droidracer_core.Vector_clock
module Race = Droidracer_core.Race
module Race_coverage = Droidracer_core.Race_coverage
module Detector = Droidracer_core.Detector
module Hb = Droidracer_core.Happens_before

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

(* {1 Bit_matrix} *)

let test_matrix_basics () =
  let m = Bit_matrix.create 70 in
  check_int "empty" 0 (Bit_matrix.count m);
  Bit_matrix.set m 0 69;
  Bit_matrix.set m 69 0;
  Bit_matrix.set m 63 64;
  check_bool "get set" true (Bit_matrix.get m 0 69);
  check_bool "asymmetric" true (Bit_matrix.get m 69 0);
  check_bool "word boundary" true (Bit_matrix.get m 63 64);
  check_bool "unset" false (Bit_matrix.get m 1 1);
  check_int "count" 3 (Bit_matrix.count m);
  check_bool "bounds" true
    (match Bit_matrix.get m 0 70 with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_matrix_or_row () =
  let m = Bit_matrix.create 10 in
  Bit_matrix.set m 1 5;
  Bit_matrix.set m 1 9;
  check_bool "or changes" true (Bit_matrix.or_row m ~dst:0 ~src:1);
  check_bool "dst has src bits" true
    (Bit_matrix.get m 0 5 && Bit_matrix.get m 0 9);
  check_bool "idempotent" false (Bit_matrix.or_row m ~dst:0 ~src:1)

let test_matrix_masked_or () =
  let m = Bit_matrix.create 10 in
  Bit_matrix.set m 1 2;
  Bit_matrix.set m 1 3;
  let mask = Bit_matrix.Mask.create 10 in
  Bit_matrix.Mask.set mask 2;
  ignore (Bit_matrix.or_row_masked m ~dst:0 ~src:1 ~mask);
  check_bool "masked keeps 2" true (Bit_matrix.get m 0 2);
  check_bool "masked drops 3" false (Bit_matrix.get m 0 3);
  ignore (Bit_matrix.or_row_masked_compl m ~dst:4 ~src:1 ~mask);
  check_bool "complement drops 2" false (Bit_matrix.get m 4 2);
  check_bool "complement keeps 3" true (Bit_matrix.get m 4 3)

let prop_matrix_iter_row =
  QCheck2.Test.make ~name:"iter_row visits exactly the set bits" ~count:100
    QCheck2.Gen.(pair (int_range 1 200) (list_size (int_bound 30) (int_bound 10_000)))
    (fun (n, bits) ->
       let m = Bit_matrix.create n in
       let expected =
         List.sort_uniq compare (List.map (fun b -> b mod n) bits)
       in
       List.iter (fun j -> Bit_matrix.set m 0 j) expected;
       let visited = ref [] in
       Bit_matrix.iter_row m 0 (fun j -> visited := j :: !visited);
       List.rev !visited = expected)

(* {1 Vector_clock} *)

let clock_of = List.fold_left (fun c (s, v) -> Vector_clock.set c s v) Vector_clock.empty

let test_clock_basics () =
  let c = clock_of [ (1, 3); (5, 7) ] in
  check_int "get" 3 (Vector_clock.get c 1);
  check_int "missing reads 0" 0 (Vector_clock.get c 2);
  let c = Vector_clock.tick c 1 in
  check_int "tick" 4 (Vector_clock.get c 1);
  check_int "cardinal" 2 (Vector_clock.cardinal c);
  (* a zero entry is not stored *)
  check_int "zero removed" 1 (Vector_clock.cardinal (Vector_clock.set c 1 0))

let vc_gen =
  QCheck2.Gen.(
    map
      (fun l -> clock_of (List.map (fun (s, v) -> (s mod 8, 1 + (v mod 50))) l))
      (list_size (int_bound 8) (pair (int_bound 100) (int_bound 100))))

let prop_merge_upper_bound =
  QCheck2.Test.make ~name:"merge is the least upper bound" ~count:200
    QCheck2.Gen.(pair vc_gen vc_gen)
    (fun (a, b) ->
       let m = Vector_clock.merge a b in
       Vector_clock.leq a m && Vector_clock.leq b m
       &&
       (* pointwise max, hence least *)
       List.for_all
         (fun slot ->
            Vector_clock.get m slot
            = max (Vector_clock.get a slot) (Vector_clock.get b slot))
         (List.init 10 Fun.id))

let prop_merge_laws =
  QCheck2.Test.make ~name:"merge is commutative, associative, idempotent"
    ~count:200
    QCheck2.Gen.(triple vc_gen vc_gen vc_gen)
    (fun (a, b, c) ->
       let eq x y = Vector_clock.leq x y && Vector_clock.leq y x in
       eq (Vector_clock.merge a b) (Vector_clock.merge b a)
       && eq
            (Vector_clock.merge a (Vector_clock.merge b c))
            (Vector_clock.merge (Vector_clock.merge a b) c)
       && eq (Vector_clock.merge a a) a)

let prop_leq_partial_order =
  QCheck2.Test.make ~name:"leq is a partial order" ~count:200
    QCheck2.Gen.(triple vc_gen vc_gen vc_gen)
    (fun (a, b, c) ->
       Vector_clock.leq a a
       && ((not (Vector_clock.leq a b && Vector_clock.leq b c))
           || Vector_clock.leq a c))

(* {1 Race coverage properties} *)

let prop_coverage_partitions =
  QCheck2.Test.make ~name:"coverage groups partition the race set" ~count:40
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 100))
    (fun (seed, size) ->
       (* positions must refer to the cancellation-filtered trace the
          relation is computed on *)
       let t = Trace.remove_cancelled (Random_trace.generate ~seed ~size ()) in
       let hb = Detector.relation t in
       let races = Race.detect t ~hb:(Hb.hb hb) in
       let groups = Race_coverage.group ~hb races in
       let members =
         List.concat_map
           (fun g -> g.Race_coverage.root :: g.Race_coverage.covered)
           groups
       in
       List.length members = List.length races
       && List.for_all (fun r -> List.memq r members) races)

let prop_coverage_roots_cover =
  QCheck2.Test.make ~name:"every covered race is covered by its root" ~count:40
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 100))
    (fun (seed, size) ->
       let t = Trace.remove_cancelled (Random_trace.generate ~seed ~size ()) in
       let hb = Detector.relation t in
       let races = Race.detect t ~hb:(Hb.hb hb) in
       let le i j = Hb.hb_or_eq hb i j in
       List.for_all
         (fun g ->
            let c = g.Race_coverage.root.Race.first.position
            and d = g.Race_coverage.root.Race.second.position in
            List.for_all
              (fun (r : Race.t) ->
                 let a = r.first.position and b = r.second.position in
                 (le a c && le d b) || (le a d && le c b))
              g.Race_coverage.covered)
         (Race_coverage.group ~hb races))

let () =
  Alcotest.run "core_util"
    [ ( "bit matrix"
      , [ Alcotest.test_case "basics" `Quick test_matrix_basics
        ; Alcotest.test_case "or_row" `Quick test_matrix_or_row
        ; Alcotest.test_case "masked or" `Quick test_matrix_masked_or
        ; QCheck_alcotest.to_alcotest prop_matrix_iter_row
        ] )
    ; ( "vector clock"
      , [ Alcotest.test_case "basics" `Quick test_clock_basics
        ; QCheck_alcotest.to_alcotest prop_merge_upper_bound
        ; QCheck_alcotest.to_alcotest prop_merge_laws
        ; QCheck_alcotest.to_alcotest prop_leq_partial_order
        ] )
    ; ( "race coverage"
      , [ QCheck_alcotest.to_alcotest prop_coverage_partitions
        ; QCheck_alcotest.to_alcotest prop_coverage_roots_cover
        ] )
    ]
