(* Tests of the UI explorer and the schedule-perturbation verifier. *)

module Trace = Droidracer_trace.Trace
module Program = Droidracer_appmodel.Program
module Runtime = Droidracer_appmodel.Runtime
module Detector = Droidracer_core.Detector
module Race = Droidracer_core.Race
module Explorer = Droidracer_explorer.Explorer
module Verify = Droidracer_explorer.Verify
module Mp = Droidracer_corpus.Music_player

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let f name = Program.field ~cls:"T" name

let two_button_app =
  Program.app ~name:"TwoButtons" ~main:"Main"
    ~activities:
      [ Program.activity "Main"
          ~ui:
            [ Program.handler "a" [ Program.Write (f "x") ]
            ; Program.handler "b" [ Program.Write (f "x") ]
            ]
      ]
    ()

(* {1 Exploration} *)

let test_exploration_count () =
  (* depth-first over {a, b, BACK}: 1 (empty) + 3 + sequences of length
     2 — after BACK the app is gone, so BACK-prefixed sequences stop. *)
  let e = Explorer.explore ~bound:1 two_button_app in
  check_int "bound 1: empty + three events" 4 (List.length e.Explorer.cases);
  check_bool "not truncated" false e.Explorer.truncated;
  let e2 = Explorer.explore ~bound:2 two_button_app in
  check_bool "bound 2 explores deeper" true
    (List.length e2.Explorer.cases > List.length e.Explorer.cases)

let test_exploration_prefix_order () =
  (* depth-first: every case's prefix appears before it *)
  let e = Explorer.explore ~bound:2 two_button_app in
  let seen = ref [] in
  List.iter
    (fun case ->
       (match List.rev case.Explorer.events with
        | [] -> ()
        | _ :: tail ->
          let prefix = List.rev tail in
          check_bool "prefix explored first" true
            (List.exists
               (fun events -> events = prefix)
               !seen));
       seen := case.Explorer.events :: !seen)
    e.Explorer.cases

let test_truncation () =
  let e = Explorer.explore ~bound:3 ~max_cases:5 two_button_app in
  check_int "budget respected" 5 (List.length e.Explorer.cases);
  check_bool "truncated" true e.Explorer.truncated

let test_racy_cases_music_player () =
  let e = Explorer.explore ~options:Mp.options ~bound:1 Mp.app in
  let racy = Explorer.racy_cases e in
  check_int "only BACK is racy" 1 (List.length racy);
  match racy with
  | [ (case, report) ] ->
    check_bool "the BACK sequence" true (case.Explorer.events = [ Runtime.Back ]);
    check_int "two races" 2 (List.length report.Detector.all_races)
  | _ -> Alcotest.fail "expected one racy case"

let test_exploration_with_intents () =
  let app =
    Program.app ~name:"T" ~main:"Main"
      ~activities:
        [ Program.activity "Main"
        ; Program.activity "Viewer" ~intents:[ "VIEW" ]
        ]
      ()
  in
  let without = Explorer.explore ~bound:1 app in
  let with_intents = Explorer.explore ~bound:1 ~include_intents:true app in
  check_int "one more case with intents"
    (List.length without.Explorer.cases + 1)
    (List.length with_intents.Explorer.cases);
  check_bool "the intent sequence was explored" true
    (List.exists
       (fun c -> c.Explorer.events = [ Runtime.Intent "VIEW" ])
       with_intents.Explorer.cases)

(* {1 Verification} *)

let analyze_with_races app events options =
  let r = Runtime.run ~options app events in
  let report = Detector.analyze r.Runtime.observed in
  (r, report)

let test_sites_round_trip () =
  let r, report = analyze_with_races Mp.app Mp.back_scenario Mp.options in
  List.iter
    (fun { Detector.race; _ } ->
       List.iter
         (fun (a : Race.access) ->
            let site =
              Verify.site_of_access ~thread_names:r.Runtime.thread_names
                report.Detector.trace a
            in
            Alcotest.check (Alcotest.option Alcotest.int) "round trip"
              (Some a.Race.position)
              (Verify.find_site ~thread_names:r.Runtime.thread_names
                 report.Detector.trace site))
         [ race.Race.first; race.Race.second ])
    report.Detector.all_races

let test_music_player_races_confirmed () =
  let r, report = analyze_with_races Mp.app Mp.back_scenario Mp.options in
  List.iter
    (fun { Detector.race; _ } ->
       check_bool "confirmed" true
         (Verify.is_confirmed
            (Verify.verify ~options:Mp.options ~app:Mp.app
               ~events:Mp.back_scenario ~trace:report.Detector.trace
               ~thread_names:r.Runtime.thread_names race)))
    report.Detector.all_races

let test_handoff_race_not_confirmed () =
  (* ad-hoc synchronization: the race is reported but cannot flip *)
  let app =
    Program.app ~name:"Handoff" ~main:"Main"
      ~activities:
        [ Program.activity "Main"
            ~on_create:
              [ Program.Fork
                  ("recv", [ Program.Handoff_wait (f "flag"); Program.Read (f "x") ])
              ]
            ~ui:
              [ Program.handler "go"
                  [ Program.Write (f "x"); Program.Handoff_send (f "flag") ]
              ]
        ]
      ()
  in
  let events = [ Runtime.Click "go" ] in
  let r, report = analyze_with_races app events Runtime.default_options in
  check_bool "races reported" true (report.Detector.all_races <> []);
  List.iter
    (fun { Detector.race; _ } ->
       check_bool "handoff-protected pair never flips" false
         (Verify.is_confirmed
            (Verify.verify ~attempts:16 ~app ~events ~trace:report.Detector.trace
               ~thread_names:r.Runtime.thread_names race)))
    report.Detector.all_races

let test_co_enabled_flip_by_event_order () =
  let events = [ Runtime.Click "a"; Runtime.Click "b" ] in
  let r, report = analyze_with_races two_button_app events Runtime.default_options in
  check_int "one race" 1 (List.length report.Detector.all_races);
  List.iter
    (fun { Detector.race; _ } ->
       match
         Verify.verify ~app:two_button_app ~events ~trace:report.Detector.trace
           ~thread_names:r.Runtime.thread_names race
       with
       | Verify.Confirmed w ->
         check_bool "flip swaps the events" true
           (w.Verify.w_events = [ Runtime.Click "b"; Runtime.Click "a" ])
       | Verify.Not_flipped _ -> Alcotest.fail "co-enabled race should flip")
    report.Detector.all_races

let test_disabled_widget_not_confirmed () =
  (* the second handler disables the first: not actually co-enabled *)
  let app =
    Program.app ~name:"Disabled" ~main:"Main"
      ~activities:
        [ Program.activity "Main"
            ~ui:
              [ Program.handler "first" [ Program.Write (f "x") ]
              ; Program.handler "second"
                  [ Program.Write (f "x"); Program.Disable_ui "first" ]
              ]
        ]
      ()
  in
  let events = [ Runtime.Click "first"; Runtime.Click "second" ] in
  let r, report = analyze_with_races app events Runtime.default_options in
  check_int "one race" 1 (List.length report.Detector.all_races);
  List.iter
    (fun { Detector.race; _ } ->
       check_bool "cannot flip a disabled widget" false
         (Verify.is_confirmed
            (Verify.verify ~attempts:16 ~app ~events ~trace:report.Detector.trace
               ~thread_names:r.Runtime.thread_names race)))
    report.Detector.all_races

(* {1 Exhaustive schedule exploration} *)

module Schedule_explorer = Droidracer_explorer.Schedule_explorer

let test_schedule_exploration_tiny () =
  (* two forked writers: both access orders must appear among the
     distinct traces, and the tree is small enough to exhaust *)
  let app =
    Program.app ~name:"Two" ~main:"Main"
      ~activities:
        [ Program.activity "Main"
            ~on_create:
              [ Program.Fork ("w1", [ Program.Write (f "x") ])
              ; Program.Fork ("w2", [ Program.Write (f "x") ])
              ]
        ]
      ()
  in
  let e = Schedule_explorer.explore ~max_runs:3000 app [] in
  check_bool "tree exhausted" true e.Schedule_explorer.exhausted;
  check_bool "several interleavings" true
    (List.length e.Schedule_explorer.distinct_traces >= 2);
  (* both orders of the two writes are realised *)
  let orders =
    List.filter_map
      (fun t ->
         let tids = ref [] in
         Trace.iteri
           (fun _ (ev : Trace.event) ->
              match ev.Trace.op with
              | Droidracer_trace.Operation.Write _ ->
                tids := Droidracer_trace.Ident.Thread_id.to_int ev.Trace.thread :: !tids
              | _ -> ())
           t;
         match List.rev !tids with
         | [ a; b ] -> Some (a, b)
         | _ -> None)
      e.Schedule_explorer.distinct_traces
    |> List.sort_uniq compare
  in
  check_bool "both write orders observed" true (List.length orders >= 2)

let test_exhaustive_verdicts () =
  (* a real race flips; a handoff-protected pair provably never does *)
  let racy_app =
    Program.app ~name:"Racy" ~main:"Main"
      ~activities:
        [ Program.activity "Main"
            ~on_create:
              [ Program.Write (f "x")
              ; Program.Fork ("w", [ Program.Write (f "y") ])
              ; Program.Read (f "y")
              ]
        ]
      ()
  in
  let r = Runtime.run racy_app [] in
  let report = Detector.analyze r.Runtime.observed in
  List.iter
    (fun { Detector.race; _ } ->
       match
         Schedule_explorer.verify_exhaustively ~max_runs:3000 ~app:racy_app
           ~events:[] ~trace:report.Detector.trace
           ~thread_names:r.Runtime.thread_names race
       with
       | Schedule_explorer.Flipped _ -> ()
       | Schedule_explorer.Never_flips n ->
         Alcotest.failf "real race declared impossible after %d runs" n
       | Schedule_explorer.Budget_exhausted n ->
         Alcotest.failf "budget exhausted after %d runs" n)
    report.Detector.all_races;
  let handoff_app =
    Program.app ~name:"Handoff" ~main:"Main"
      ~activities:
        [ Program.activity "Main"
            ~on_create:
              [ Program.Fork
                  ("recv", [ Program.Handoff_wait (f "flag") ])
              ; Program.Handoff_send (f "flag")
              ]
        ]
      ()
  in
  let r = Runtime.run handoff_app [] in
  let report = Detector.analyze r.Runtime.observed in
  check_int "the flag race is reported" 1 (List.length report.Detector.all_races);
  List.iter
    (fun { Detector.race; _ } ->
       match
         Schedule_explorer.verify_exhaustively ~max_runs:5000 ~app:handoff_app
           ~events:[] ~trace:report.Detector.trace
           ~thread_names:r.Runtime.thread_names race
       with
       | Schedule_explorer.Never_flips _ -> ()
       | Schedule_explorer.Flipped _ ->
         Alcotest.fail "handoff-protected pair reported as flippable"
       | Schedule_explorer.Budget_exhausted n ->
         Alcotest.failf "tree not exhausted after %d runs" n)
    report.Detector.all_races

let () =
  Alcotest.run "explorer"
    [ ( "exploration"
      , [ Alcotest.test_case "case count" `Quick test_exploration_count
        ; Alcotest.test_case "depth-first prefixes" `Quick
            test_exploration_prefix_order
        ; Alcotest.test_case "truncation" `Quick test_truncation
        ; Alcotest.test_case "music player racy case" `Quick
            test_racy_cases_music_player
        ; Alcotest.test_case "intent exploration" `Quick
            test_exploration_with_intents
        ] )
    ; ( "schedules"
      , [ Alcotest.test_case "tiny app exhausted" `Quick
            test_schedule_exploration_tiny
        ; Alcotest.test_case "exhaustive verdicts" `Quick test_exhaustive_verdicts
        ] )
    ; ( "verification"
      , [ Alcotest.test_case "site round trip" `Quick test_sites_round_trip
        ; Alcotest.test_case "music player confirmed" `Quick
            test_music_player_races_confirmed
        ; Alcotest.test_case "handoff not confirmed" `Quick
            test_handoff_race_not_confirmed
        ; Alcotest.test_case "co-enabled flips via event order" `Quick
            test_co_enabled_flip_by_event_order
        ; Alcotest.test_case "disabled widget not confirmed" `Quick
            test_disabled_widget_not_confirmed
        ] )
    ]
