module Lifecycle = Droidracer_android.Lifecycle
module Async_task = Droidracer_android.Async_task
module Binder = Droidracer_android.Binder
module Thread_id = Droidracer_trace.Ident.Thread_id

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let all_states =
  [ Lifecycle.Launched; Lifecycle.Created; Lifecycle.Started
  ; Lifecycle.Running; Lifecycle.Paused; Lifecycle.Stopped
  ; Lifecycle.Destroyed ]

let all_callbacks =
  [ Lifecycle.On_create; Lifecycle.On_start; Lifecycle.On_resume
  ; Lifecycle.On_pause; Lifecycle.On_stop; Lifecycle.On_restart
  ; Lifecycle.On_destroy ]

let test_launch_walk () =
  (* Launched -onCreate-> Created -onStart-> Started -onResume-> Running *)
  let final =
    List.fold_left
      (fun state cb ->
         match Lifecycle.activity_step state cb with
         | Ok s -> s
         | Error msg -> Alcotest.failf "launch walk rejected: %s" msg)
      Lifecycle.initial_activity_state Lifecycle.launch_sequence
  in
  check_bool "running" true
    (Lifecycle.activity_state_equal final Lifecycle.Running)

let test_full_life () =
  let walk =
    Lifecycle.launch_sequence @ Lifecycle.teardown_sequence
  in
  let final =
    List.fold_left
      (fun state cb -> Result.get_ok (Lifecycle.activity_step state cb))
      Lifecycle.initial_activity_state walk
  in
  check_bool "destroyed" true
    (Lifecycle.activity_state_equal final Lifecycle.Destroyed)

let test_restart_loop () =
  (* Running -> Paused -> Stopped -> (onRestart, onStart, onResume) -> Running *)
  let steps =
    [ Lifecycle.On_pause; Lifecycle.On_stop ] @ Lifecycle.relaunch_sequence
  in
  let final =
    List.fold_left
      (fun state cb -> Result.get_ok (Lifecycle.activity_step state cb))
      Lifecycle.Running steps
  in
  check_bool "running again" true
    (Lifecycle.activity_state_equal final Lifecycle.Running)

let test_pause_resume () =
  (* the onPause -> onResume return edge *)
  let s = Result.get_ok (Lifecycle.activity_step Lifecycle.Running Lifecycle.On_pause) in
  let s = Result.get_ok (Lifecycle.activity_step s Lifecycle.On_resume) in
  check_bool "running" true (Lifecycle.activity_state_equal s Lifecycle.Running)

let test_illegal_transitions_rejected () =
  (* a callback is accepted iff it is a may-successor of the state *)
  List.iter
    (fun state ->
       let successors = Lifecycle.activity_successors state in
       List.iter
         (fun cb ->
            let expected =
              List.exists (Lifecycle.activity_callback_equal cb) successors
            in
            let actual = Result.is_ok (Lifecycle.activity_step state cb) in
            check_bool
              (Format.asprintf "%a in %a" Lifecycle.pp_activity_callback cb
                 Lifecycle.pp_activity_state state)
              expected actual)
         all_callbacks)
    all_states

let test_destroyed_terminal () =
  check_int "no successors" 0
    (List.length (Lifecycle.activity_successors Lifecycle.Destroyed))

let test_service_machine () =
  let s = Lifecycle.initial_service_state in
  let s = Result.get_ok (Lifecycle.service_step s Lifecycle.Svc_create) in
  let s = Result.get_ok (Lifecycle.service_step s Lifecycle.Svc_start_command) in
  (* a started service may receive further start commands *)
  let s = Result.get_ok (Lifecycle.service_step s Lifecycle.Svc_start_command) in
  let s = Result.get_ok (Lifecycle.service_step s Lifecycle.Svc_destroy) in
  check_bool "destroy before create rejected" true
    (Result.is_error (Lifecycle.service_step s Lifecycle.Svc_destroy));
  check_bool "double create rejected" true
    (Result.is_error
       (Lifecycle.service_step Lifecycle.Svc_created Lifecycle.Svc_create))

let test_async_task_protocol () =
  let t = Async_task.create ~name:"FileDwTask" in
  check_bool "starts in pre" true (Async_task.phase t = Async_task.Pre_execute);
  let t = Result.get_ok (Async_task.advance t) in
  check_bool "background" true (Async_task.phase t = Async_task.In_background);
  let t = Result.get_ok (Async_task.advance t) in
  let t = Result.get_ok (Async_task.advance t) in
  check_bool "finished" true (Async_task.phase t = Async_task.Finished);
  check_bool "cannot advance past finished" true
    (Result.is_error (Async_task.advance t));
  Alcotest.check Alcotest.string "progress names"
    "FileDwTask.onProgressUpdate2"
    (Async_task.progress_callback_name t 2);
  Alcotest.check Alcotest.string "post-execute name" "FileDwTask.onPostExecute"
    (Async_task.post_execute_callback_name t)

let test_binder_round_robin () =
  let pool = Binder.create ~size:3 ~first_tid:2 in
  check_int "pool size" 3 (List.length (Binder.threads pool));
  let t1, pool = Binder.next pool in
  let t2, pool = Binder.next pool in
  let t3, pool = Binder.next pool in
  let t4, _ = Binder.next pool in
  check_bool "consecutive transactions on different threads" false
    (Thread_id.equal t1 t2);
  check_bool "all three used" false (Thread_id.equal t2 t3);
  check_bool "wraps around" true (Thread_id.equal t1 t4)

let test_binder_singleton () =
  let pool = Binder.create ~size:1 ~first_tid:5 in
  let t1, pool = Binder.next pool in
  let t2, _ = Binder.next pool in
  check_bool "single thread reused" true (Thread_id.equal t1 t2);
  check_bool "empty pool rejected" true
    (match Binder.create ~size:0 ~first_tid:2 with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* Property: any path following may-successors is accepted by the
   machine; the machine never accepts a non-successor. *)
let prop_random_walks_legal =
  QCheck2.Test.make ~name:"random successor walks are legal" ~count:200
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 25))
    (fun (seed, len) ->
       let rng = Random.State.make [| seed |] in
       let rec walk state n =
         if n = 0 then true
         else
           match Lifecycle.activity_successors state with
           | [] -> true
           | succs ->
             let cb = List.nth succs (Random.State.int rng (List.length succs)) in
             (match Lifecycle.activity_step state cb with
              | Ok state -> walk state (n - 1)
              | Error _ -> false)
       in
       walk Lifecycle.initial_activity_state len)

let () =
  Alcotest.run "android"
    [ ( "lifecycle"
      , [ Alcotest.test_case "launch walk" `Quick test_launch_walk
        ; Alcotest.test_case "full life" `Quick test_full_life
        ; Alcotest.test_case "restart loop" `Quick test_restart_loop
        ; Alcotest.test_case "pause-resume" `Quick test_pause_resume
        ; Alcotest.test_case "illegal transitions" `Quick
            test_illegal_transitions_rejected
        ; Alcotest.test_case "destroyed is terminal" `Quick test_destroyed_terminal
        ; Alcotest.test_case "service machine" `Quick test_service_machine
        ] )
    ; ( "async task"
      , [ Alcotest.test_case "protocol" `Quick test_async_task_protocol ] )
    ; ( "binder"
      , [ Alcotest.test_case "round robin" `Quick test_binder_round_robin
        ; Alcotest.test_case "singleton pool" `Quick test_binder_singleton
        ] )
    ; ( "properties"
      , [ QCheck_alcotest.to_alcotest prop_random_walks_legal ] )
    ]
