open Helpers
module Graph = Droidracer_core.Graph
module Hb = Droidracer_core.Happens_before
module Race = Droidracer_core.Race
module Classify = Droidracer_core.Classify
module Detector = Droidracer_core.Detector
module Clock_engine = Droidracer_core.Clock_engine

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let race_pairs report =
  List.map
    (fun { Detector.race; _ } ->
       (race.Race.first.position, race.Race.second.position))
    report.Detector.all_races

let pair_list = Alcotest.(list (pair int int))

(* {1 The figures} *)

let test_figure3_no_races () =
  let report = Detector.analyze figure3 in
  Alcotest.check pair_list "no races in the PLAY scenario" [] (race_pairs report)

let test_figure4_two_races () =
  let report = Detector.analyze figure4 in
  Alcotest.check pair_list "the two races of Section 2.4"
    [ (fig 12, fig 21); (fig 16, fig 21) ]
    (race_pairs report)

let test_figure4_classification () =
  let report = Detector.analyze figure4 in
  let categories =
    List.map
      (fun { Detector.race; category } ->
         (race.Race.first.position, Classify.category_name category))
      report.Detector.all_races
  in
  Alcotest.(check (list (pair int string)))
    "multithreaded and cross-posted"
    [ (fig 12, "multithreaded"); (fig 16, "cross-posted") ]
    categories

let test_figure4_without_environment_model () =
  (* Stripping the enable modelling produces the false positive between
     operations 7 and 21 (Section 2.4). *)
  let report = Detector.analyze ~config:Detector.no_environment_model figure4 in
  check_bool "(7,21) reported as a race" true
    (List.mem (fig 7, fig 21) (race_pairs report));
  check_int "more races than with the model" 3
    (List.length report.Detector.all_races)

(* {1 Detection basics} *)

let test_read_read_not_a_race () =
  let t =
    trace [ threadinit 0; threadinit 1; read 0 (loc "a"); read 1 (loc "a") ]
  in
  check_int "no race between two reads" 0
    (List.length (Detector.analyze t).Detector.all_races)

let test_unordered_writes_race () =
  let t =
    trace [ threadinit 0; threadinit 1; write 0 (loc "a"); write 1 (loc "a") ]
  in
  let report = Detector.analyze t in
  Alcotest.check pair_list "one race" [ (2, 3) ] (race_pairs report);
  check_bool "multithreaded" true
    (match report.Detector.all_races with
     | [ { category = Classify.Multithreaded; _ } ] -> true
     | _ -> false)

let test_fork_ordering_suppresses_race () =
  let t =
    trace
      [ threadinit 0; write 0 (loc "a"); fork 0 1; threadinit 1
      ; write 1 (loc "a")
      ]
  in
  check_int "no race through fork" 0
    (List.length (Detector.analyze t).Detector.all_races)

let p1 = task ~instance:1 "p"
let p2 = task ~instance:2 "p"

let test_lock_spurious_ordering_not_missed () =
  (* The race that the naïve lock treatment misses (Section 1): two
     same-thread tasks, unordered posts, same lock. *)
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; threadinit 2
      ; attachq 2
      ; looponq 2
      ; post 0 p1 2
      ; post 1 p2 2
      ; begin_task 2 p1
      ; acquire 2 "l"
      ; write 2 (loc "a")  (* 9 *)
      ; release 2 "l"
      ; end_task 2 p1
      ; begin_task 2 p2
      ; acquire 2 "l"
      ; write 2 (loc "a")  (* 14 *)
      ; release 2 "l"
      ; end_task 2 p2
      ]
  in
  let report = Detector.analyze t in
  Alcotest.check pair_list "the single-threaded race is found" [ (9, 14) ]
    (race_pairs report);
  let naive =
    { Detector.default_config with
      hb =
        { Hb.default with lock_same_thread = true; restricted_transitivity = false }
    }
  in
  check_int "the naive combination misses it" 0
    (List.length (Detector.analyze ~config:naive t).Detector.all_races)

(* {1 Classification} *)

let test_co_enabled () =
  (* Two UI-event handlers enabled on the same screen, posted in some
     order by the looper: their enables are unordered w.r.t. each other's
     posts, so the race between them is co-enabled. *)
  let click1 = task "onClick1" and click2 = task "onClick2" in
  let t =
    trace
      [ threadinit 1
      ; attachq 1
      ; looponq 1
      ; enable 1 click1  (* 3 *)
      ; enable 1 click2  (* 4 *)
      ; post 1 click1 1  (* 5 *)
      ; post 1 click2 1  (* 6 *)
      ; begin_task 1 click1
      ; write 1 (loc "a")  (* 8 *)
      ; end_task 1 click1
      ; begin_task 1 click2
      ; write 1 (loc "a")  (* 11 *)
      ; end_task 1 click2
      ]
  in
  (* With both posts performed by the idle looper in sequence, FIFO
     would order them: the posts are in the same (absent) task context —
     two looper posts are unordered only if the looper context is not a
     task.  Here both posts are outside any task on a queue thread after
     loopOnQ, so no program order applies and the tasks race. *)
  let report = Detector.analyze t in
  (match report.Detector.all_races with
   | [ { race; category } ] ->
     check_int "first access" 8 race.Race.first.position;
     check_int "second access" 11 race.Race.second.position;
     check_bool "co-enabled" true
       (Classify.category_equal category Classify.Co_enabled)
   | races -> Alcotest.failf "expected one race, got %d" (List.length races))

let test_delayed_category () =
  let h = task "handler" and d = task "delayedTask" in
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; attachq 1
      ; looponq 1
      ; post ~flavour:(Operation.Delayed 500) 0 d 1
      ; post 0 h 1
      ; begin_task 1 h
      ; write 1 (loc "a")  (* 7 *)
      ; end_task 1 h
      ; begin_task 1 d
      ; write 1 (loc "a")  (* 10 *)
      ; end_task 1 d
      ]
  in
  let report = Detector.analyze t in
  (match report.Detector.all_races with
   | [ { category; _ } ] ->
     check_bool "delayed" true
       (Classify.category_equal category Classify.Delayed_race)
   | races -> Alcotest.failf "expected one race, got %d" (List.length races))

let test_unknown_category () =
  (* Two tasks self-posted by the idle looper of the racing thread, with
     no enables and no delays: none of the criteria discriminates the
     chains, so the race is unclassified.  (The looper's posts happen
     after loopOnQ and outside any task, so program order does not apply
     and FIFO finds no ordering between the posts.) *)
  let a = task "a" and b = task "b" in
  let t =
    trace
      [ threadinit 1
      ; attachq 1
      ; looponq 1
      ; post 1 a 1
      ; post ~flavour:Operation.Front 1 b 1
      ; begin_task 1 b
      ; write 1 (loc "m")  (* 6 *)
      ; end_task 1 b
      ; begin_task 1 a
      ; write 1 (loc "m")  (* 9 *)
      ; end_task 1 a
      ]
  in
  let report = Detector.analyze t in
  (match report.Detector.all_races with
   | [ { category; _ } ] ->
     check_bool "unknown" true (Classify.category_equal category Classify.Unknown)
   | races -> Alcotest.failf "expected one race, got %d" (List.length races))

let test_chain () =
  (* chain(16) in Figure 4 is the single post 13; for nested posts the
     chain lists outermost first. *)
  Alcotest.(check (list int)) "chain of read 16" [ fig 13 ]
    (Classify.chain figure4 (fig 16));
  Alcotest.(check (list int)) "chain of write 21" [ fig 19 ]
    (Classify.chain figure4 (fig 21));
  Alcotest.(check (list int)) "empty chain outside tasks" []
    (Classify.chain figure4 (fig 12))

let test_chain_nested () =
  let a = task "a" and b = task "b" in
  let t =
    trace
      [ threadinit 1
      ; attachq 1
      ; looponq 1
      ; post 1 a 1  (* 3 *)
      ; begin_task 1 a
      ; post 1 b 1  (* 5 *)
      ; end_task 1 a
      ; begin_task 1 b
      ; write 1 (loc "m")  (* 8 *)
      ; end_task 1 b
      ]
  in
  Alcotest.(check (list int)) "outermost first" [ 3; 5 ] (Classify.chain t 8)

(* {1 Deduplication (Table 3 counting)} *)

let test_distinct_races () =
  (* Two races of the same category on the same location count once;
     a race on another object of the same class counts separately. *)
  let m = loc ~obj:0 "f" and m' = loc ~obj:1 "f" in
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; write 0 m
      ; write 0 m
      ; write 0 m'
      ; write 1 m
      ; write 1 m'
      ]
  in
  let report = Detector.analyze t in
  check_int "all races" 3 (List.length report.Detector.all_races);
  check_int "distinct races" 2 (List.length report.Detector.distinct_races)

(* {1 Graph statistics (the Section 6 optimisation)} *)

let test_coalescing_counts () =
  let t =
    trace
      [ threadinit 0  (* anchor *)
      ; write 0 (loc "a")
      ; read 0 (loc "b")
      ; write 0 (loc "c")  (* one block of three accesses *)
      ; acquire 0 "l"  (* anchor *)
      ; read 0 (loc "a")
      ; read 0 (loc "a")  (* second block *)
      ; release 0 "l"  (* anchor *)
      ]
  in
  let g = Graph.build ~coalesce:true t in
  check_int "five nodes" 5 (Graph.node_count g);
  let gu = Graph.build ~coalesce:false t in
  check_int "eight uncoalesced nodes" 8 (Graph.node_count gu)

let test_enable_breaks_blocks () =
  (* An enable between accesses is an anchor: it must break the run
     (the ENABLE rules start edges there). *)
  let t =
    trace
      [ threadinit 0; write 0 (loc "a"); enable 0 (task "p"); read 0 (loc "a") ]
  in
  let g = Graph.build ~coalesce:true t in
  check_int "four nodes" 4 (Graph.node_count g)

(* {1 Properties} *)

let prop_coalescing_preserves_races =
  QCheck2.Test.make ~name:"coalescing does not change the race set" ~count:50
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 100))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       let races config =
         race_pairs (Detector.analyze ~config t)
       in
       races Detector.default_config
       = races { Detector.default_config with coalesce = false })

let prop_no_race_between_ordered =
  QCheck2.Test.make ~name:"reported races are unordered pairs" ~count:50
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 100))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       let report = Detector.analyze t in
       let hb = Detector.relation t in
       List.for_all
         (fun { Detector.race; _ } ->
            not
              (Hb.ordered hb race.Race.first.position
                 race.Race.second.position))
         report.Detector.all_races)

let prop_clock_engine_subset =
  QCheck2.Test.make
    ~name:"clock-engine races are a subset of graph-engine races" ~count:60
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 120))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       let t = Trace.remove_cancelled t in
       let graph_races = race_pairs (Detector.analyze t) in
       let clock_races, _ = Clock_engine.detect t in
       List.for_all
         (fun (r : Race.t) ->
            List.mem (r.first.position, r.second.position) graph_races)
         clock_races)

let prop_multithreaded_iff_threads_differ =
  QCheck2.Test.make
    ~name:"a race is classified multithreaded iff its threads differ" ~count:40
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 100))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       let report = Detector.analyze t in
       List.for_all
         (fun { Detector.race; category } ->
            Classify.category_equal category Classify.Multithreaded
            = not
                (Ident.Thread_id.equal race.Race.first.thread
                   race.Race.second.thread))
         report.Detector.all_races)

let prop_no_race_within_one_task =
  QCheck2.Test.make ~name:"accesses of one task never race" ~count:40
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 100))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       let report = Detector.analyze t in
       List.for_all
         (fun { Detector.race; _ } ->
            match race.Race.first.task, race.Race.second.task with
            | Some p, Some q -> not (Ident.Task_id.equal p q)
            | (Some _ | None), _ -> true)
         report.Detector.all_races)

let prop_clock_engine_equal_without_locks =
  QCheck2.Test.make
    ~name:"clock engine agrees with the graph engine on lock-free traces"
    ~count:60
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 120))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       let lock_free =
         List.for_all
           (fun (e : Trace.event) ->
              match e.op with
              | Operation.Acquire _ | Operation.Release _ -> false
              | _ -> true)
           (Trace.events t)
       in
       QCheck2.assume lock_free;
       let t = Trace.remove_cancelled t in
       let graph_races = race_pairs (Detector.analyze t) in
       let clock_races, _ = Clock_engine.detect t in
       List.map
         (fun (r : Race.t) -> (r.first.position, r.second.position))
         clock_races
       = graph_races)

let test_clock_engine_on_figures () =
  let clock_races, _ = Clock_engine.detect figure4 in
  Alcotest.check pair_list "figure 4 via clocks"
    [ (fig 12, fig 21); (fig 16, fig 21) ]
    (List.map
       (fun (r : Race.t) -> (r.first.position, r.second.position))
       clock_races);
  let clock_races3, _ = Clock_engine.detect figure3 in
  check_int "figure 3 via clocks" 0 (List.length clock_races3)

let test_clock_engine_lock_divergence () =
  (* The documented divergence: the clock engine merges lock clocks
     unconditionally and misses the same-thread race of
     [test_lock_spurious_ordering_not_missed]. *)
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; threadinit 2
      ; attachq 2
      ; looponq 2
      ; post 0 p1 2
      ; post 1 p2 2
      ; begin_task 2 p1
      ; acquire 2 "l"
      ; write 2 (loc "a")
      ; release 2 "l"
      ; end_task 2 p1
      ; begin_task 2 p2
      ; acquire 2 "l"
      ; write 2 (loc "a")
      ; release 2 "l"
      ; end_task 2 p2
      ]
  in
  let clock_races, _ = Clock_engine.detect t in
  check_int "clock engine misses the lock-shadowed race" 0
    (List.length clock_races);
  check_int "graph engine finds it" 1
    (List.length (Detector.analyze t).Detector.all_races)

module Race_coverage = Droidracer_core.Race_coverage
module Minimize = Droidracer_core.Minimize

let test_race_coverage_handoff_pattern () =
  (* main writes x, y then the flag; the other thread reads the flag
     then x, y: the flag race covers both field races *)
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; write 0 (loc "x")  (* 2 *)
      ; write 0 (loc "y")  (* 3 *)
      ; write 0 (loc "flag")  (* 4 *)
      ; read 1 (loc "flag")  (* 5 *)
      ; read 1 (loc "x")  (* 6 *)
      ; read 1 (loc "y")  (* 7 *)
      ]
  in
  let hb = Detector.relation t in
  let races = Race.detect t ~hb:(Hb.hb hb) in
  check_int "three races" 3 (List.length races);
  let groups = Race_coverage.group ~hb races in
  (match groups with
   | [ g ] ->
     check_int "flag race is the root" 4 g.Race_coverage.root.Race.first.position;
     check_int "covers the two field races" 2 (List.length g.Race_coverage.covered)
   | gs -> Alcotest.failf "expected one group, got %d" (List.length gs));
  check_int "one root to triage" 1 (List.length (Race_coverage.roots ~hb races))

let test_race_coverage_independent_races () =
  (* unrelated races stay separate roots *)
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; threadinit 2
      ; write 0 (loc "x")
      ; read 1 (loc "x")
      ; write 2 (loc "y")
      ; read 0 (loc "y")
      ]
  in
  let hb = Detector.relation t in
  let races = Race.detect t ~hb:(Hb.hb hb) in
  check_int "two races" 2 (List.length races);
  check_int "two roots" 2 (List.length (Race_coverage.roots ~hb races))

(* {1 Minimization} *)

let test_minimize_figure4 () =
  (* the multithreaded race of Figure 4 survives minimization and the
     unrelated tasks disappear *)
  let report = Detector.analyze figure4 in
  match report.Detector.all_races with
  | { race; _ } :: _ ->
    let small, race' = Minimize.minimize report.Detector.trace race in
    check_bool "trace shrank" true
      (Trace.length small < Trace.length report.Detector.trace);
    check_bool "race persists" true
      (let hb = Detector.relation small in
       not
         (Hb.ordered hb race'.Race.first.position race'.Race.second.position));
    check_bool "same location" true
      (Ident.Location.equal (Race.location race') (Race.location race));
    (* minimizing again is a fixpoint *)
    let again, _ = Minimize.minimize small race' in
    check_int "fixpoint" (Trace.length small) (Trace.length again)
  | [] -> Alcotest.fail "figure 4 must race"

let test_minimize_rejects_non_race () =
  check_bool "ordered pair rejected" true
    (match
       Minimize.minimize figure3
         { Race.first =
             { position = fig 7
             ; location = Helpers.loc ~cls:"DwFileAct" "isActivityDestroyed"
             ; is_write = true
             ; thread = tid 1
             ; task = Trace.enclosing_task figure3 (fig 7)
             }
         ; second =
             { position = fig 12
             ; location = Helpers.loc ~cls:"DwFileAct" "isActivityDestroyed"
             ; is_write = false
             ; thread = tid 2
             ; task = None
             }
         }
     with
     | exception Invalid_argument _ -> true
     | _ -> false)

let prop_minimize_preserves_races =
  QCheck2.Test.make ~name:"minimization preserves every race it is given"
    ~count:25
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 10 80))
    (fun (seed, size) ->
       let t = Trace.remove_cancelled (Random_trace.generate ~seed ~size ()) in
       let report = Detector.analyze t in
       List.for_all
         (fun { Detector.race; _ } ->
            let small, race' = Minimize.minimize report.Detector.trace race in
            let hb = Detector.relation small in
            Trace.length small <= Trace.length report.Detector.trace
            && (not
                  (Hb.ordered hb race'.Race.first.position
                     race'.Race.second.position))
            && Ident.Location.equal (Race.location race') (Race.location race))
         report.Detector.all_races)

let () =
  Alcotest.run "race"
    [ ( "figures"
      , [ Alcotest.test_case "figure 3 has no races" `Quick test_figure3_no_races
        ; Alcotest.test_case "figure 4 has the two races" `Quick
            test_figure4_two_races
        ; Alcotest.test_case "figure 4 classification" `Quick
            test_figure4_classification
        ; Alcotest.test_case "figure 4 without the environment model" `Quick
            test_figure4_without_environment_model
        ] )
    ; ( "detection"
      , [ Alcotest.test_case "read-read" `Quick test_read_read_not_a_race
        ; Alcotest.test_case "unordered writes" `Quick test_unordered_writes_race
        ; Alcotest.test_case "fork ordering" `Quick
            test_fork_ordering_suppresses_race
        ; Alcotest.test_case "naive lock treatment misses a race" `Quick
            test_lock_spurious_ordering_not_missed
        ] )
    ; ( "classification"
      , [ Alcotest.test_case "co-enabled" `Quick test_co_enabled
        ; Alcotest.test_case "delayed" `Quick test_delayed_category
        ; Alcotest.test_case "unknown" `Quick test_unknown_category
        ; Alcotest.test_case "chains" `Quick test_chain
        ; Alcotest.test_case "nested chains" `Quick test_chain_nested
        ] )
    ; ( "reporting"
      , [ Alcotest.test_case "distinct races" `Quick test_distinct_races
        ; Alcotest.test_case "coalescing counts" `Quick test_coalescing_counts
        ; Alcotest.test_case "enable breaks blocks" `Quick
            test_enable_breaks_blocks
        ] )
    ; ( "clock engine"
      , [ Alcotest.test_case "figures" `Quick test_clock_engine_on_figures
        ; Alcotest.test_case "lock divergence" `Quick
            test_clock_engine_lock_divergence
        ] )
    ; ( "minimization"
      , [ Alcotest.test_case "figure 4" `Quick test_minimize_figure4
        ; Alcotest.test_case "rejects ordered pairs" `Quick
            test_minimize_rejects_non_race
        ; QCheck_alcotest.to_alcotest prop_minimize_preserves_races
        ] )
    ; ( "coverage"
      , [ Alcotest.test_case "handoff pattern" `Quick
            test_race_coverage_handoff_pattern
        ; Alcotest.test_case "independent races" `Quick
            test_race_coverage_independent_races
        ] )
    ; ( "properties"
      , [ QCheck_alcotest.to_alcotest prop_multithreaded_iff_threads_differ
        ; QCheck_alcotest.to_alcotest prop_no_race_within_one_task
        ; QCheck_alcotest.to_alcotest prop_coalescing_preserves_races
        ; QCheck_alcotest.to_alcotest prop_no_race_between_ordered
        ; QCheck_alcotest.to_alcotest prop_clock_engine_subset
        ; QCheck_alcotest.to_alcotest prop_clock_engine_equal_without_locks
        ] )
    ]
