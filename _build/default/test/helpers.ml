(* Shared builders for the test suites. *)
module Ident = Droidracer_trace.Ident
module Operation = Droidracer_trace.Operation
module Trace = Droidracer_trace.Trace
module Trace_io = Droidracer_trace.Trace_io

let tid = Ident.Thread_id.make
let lock = Ident.Lock_id.make
let task ?(instance = 0) name = Ident.Task_id.make ~name ~instance
let loc ?(cls = "C") ?(obj = 0) field = Ident.Location.make ~cls ~field ~obj
let ev t op = { Trace.thread = tid t; op }
let threadinit t = ev t Operation.Thread_init
let threadexit t = ev t Operation.Thread_exit
let fork t t' = ev t (Operation.Fork (tid t'))
let join t t' = ev t (Operation.Join (tid t'))
let attachq t = ev t Operation.Attach_queue
let looponq t = ev t Operation.Loop_on_queue

let post ?(flavour = Operation.Immediate) t p target =
  ev t (Operation.Post { task = p; target = tid target; flavour })

let begin_task t p = ev t (Operation.Begin_task p)
let end_task t p = ev t (Operation.End_task p)
let acquire t l = ev t (Operation.Acquire (lock l))
let release t l = ev t (Operation.Release (lock l))
let read t m = ev t (Operation.Read m)
let write t m = ev t (Operation.Write m)
let enable t p = ev t (Operation.Enable p)
let cancel t p = ev t (Operation.Cancel p)
let trace events = Trace.of_events_exn events

(* The music-player traces of Figures 3 and 4.  Two binder-pool threads
   (t0, t3) are initialised up front: the figures of the paper draw a
   single binder thread, but an IPC from ActivityManagerService may be
   served by any thread of the pool, and the claim of Section 2.4 — that
   without the [enable] operation the pair (7, 21) of Figure 4 is a false
   positive — relies on the two lifecycle posts being unordered, i.e. on
   distinct binder threads.  The paper's 1-based operation number [p]
   lives at trace index [p + figure_offset]. *)

let figure_offset = 1

let field = loc ~cls:"DwFileAct" "isActivityDestroyed"
let launch = task "LAUNCH_ACTIVITY"
let on_post_execute = task "onPostExecute"
let on_play_click = task "onPlayClick"
let on_pause = task "onPause"
let on_destroy = task "onDestroy"

let figure3_common =
  [ threadinit 0  (* binder thread A *)
  ; threadinit 3  (* binder thread B *)
  ; threadinit 1  (* paper position 1 *)
  ; attachq 1  (* 2 *)
  ; looponq 1  (* 3 *)
  ; enable 1 launch  (* 4 *)
  ; post 0 launch 1  (* 5 *)
  ; begin_task 1 launch  (* 6 *)
  ; write 1 field  (* 7 *)
  ; fork 1 2  (* 8 *)
  ; enable 1 on_destroy  (* 9 *)
  ; end_task 1 launch  (* 10 *)
  ; threadinit 2  (* 11 *)
  ; read 2 field  (* 12 *)
  ; post 2 on_post_execute 1  (* 13 *)
  ; threadexit 2  (* 14 *)
  ; begin_task 1 on_post_execute  (* 15 *)
  ; read 1 field  (* 16 *)
  ; enable 1 on_play_click  (* 17 *)
  ; end_task 1 on_post_execute  (* 18 *)
  ]

(* Figure 3: the user clicks the PLAY button. *)
let figure3 =
  trace
    (figure3_common
     @ [ post 1 on_play_click 1  (* 19 *)
       ; begin_task 1 on_play_click  (* 20 *)
       ; enable 1 on_pause  (* 21 *)
       ; end_task 1 on_play_click  (* 22 *)
       ; post 0 on_pause 1  (* 23 *)
       ])

(* Figure 4: the user presses BACK instead; onDestroy (posted by the
   second binder thread) races with the reads of operations 12 and 16. *)
let figure4 =
  trace
    (figure3_common
     @ [ post 3 on_destroy 1  (* 19 *)
       ; begin_task 1 on_destroy  (* 20 *)
       ; write 1 field  (* 21 *)
       ; end_task 1 on_destroy  (* 22 *)
       ])

(* Trace index of a paper operation number. *)
let fig p = p + figure_offset

module State = Droidracer_semantics.State
module Step = Droidracer_semantics.Step
module Queue_model = Droidracer_semantics.Queue_model

(* Random generation of semantically valid traces: candidate operations
   are drawn from the legal moves of the current state and applied
   through [Step.apply], so every generated trace validates.  Used by
   the differential and property tests. *)
module Random_trace = struct
  type gen_state =
    { mutable sem : State.t
    ; mutable events : Trace.event list  (* reversed *)
    ; mutable threads : int list  (* all allocated ids *)
    ; mutable next_thread : int
    ; mutable next_task : int
    ; mutable pending : (Ident.Task_id.t * int) list  (* task, target *)
    ; mutable executing : (int * Ident.Task_id.t) list  (* thread, task *)
    ; mutable enabled_unposted : Ident.Task_id.t list
    ; mutable held : (int * string) list  (* thread, lock *)
    }

  let locations = [ "a"; "b"; "c"; "d" ]
  let locks = [ "l1"; "l2" ]

  let fresh_task g =
    let t = Ident.Task_id.make ~name:"task" ~instance:g.next_task in
    g.next_task <- g.next_task + 1;
    t

  let running g =
    List.filter (fun t -> State.is_running g.sem (tid t)) g.threads

  let with_queue g = List.filter (fun t -> Option.is_some (State.queue g.sem (tid t)))

  let looping_idle g =
    List.filter
      (fun t ->
         State.is_looping g.sem (tid t)
         && Option.is_none (State.executing g.sem (tid t)))
      (running g)

  (* A thread may run application code if it is not an idle looper. *)
  let active g =
    List.filter
      (fun t ->
         (not (State.is_looping g.sem (tid t)))
         || Option.is_some (State.executing g.sem (tid t)))
      (running g)

  let pick rng l = List.nth l (Random.State.int rng (List.length l))

  let candidates g rng =
    let r = running g in
    let moves = ref [] in
    let add w m = moves := (w, m) :: !moves in
    (* threadinit of created threads *)
    List.iter
      (fun t ->
         match State.phase g.sem (tid t) with
         | Some State.Created -> add 6 (threadinit t)
         | Some (State.Running | State.Finished) | None -> ())
      g.threads;
    (* fork *)
    if List.length g.threads < 6 && r <> [] then begin
      let t = pick rng r in
      add 2 (fork t g.next_thread)
    end;
    (* attachq / looponq *)
    List.iter
      (fun t ->
         match State.queue g.sem (tid t) with
         | None -> add 3 (attachq t)
         | Some _ ->
           if not (State.is_looping g.sem (tid t)) then add 4 (looponq t))
      r;
    (* post, possibly of a previously enabled task, with random flavour *)
    (match r, with_queue g (List.filter (fun t -> State.is_looping g.sem (tid t) || true) r) with
     | _ :: _, (_ :: _ as targets) ->
       let src = pick rng r and target = pick rng targets in
       let p =
         match g.enabled_unposted with
         | p :: _ when Random.State.bool rng -> p
         | _ :: _ | [] -> fresh_task g
       in
       let flavour =
         match Random.State.int rng 10 with
         | 0 -> Operation.Delayed (Random.State.int rng 3 * 100)
         | 1 -> Operation.Front
         | _ -> Operation.Immediate
       in
       add 8 (post ~flavour src p target)
     | _, _ -> ());
    (* enable a fresh task, from any running thread *)
    if r <> [] then begin
      let t = pick rng r in
      add 2 (enable t (fresh_task g))
    end;
    (* begin an eligible task *)
    List.iter
      (fun t ->
         match State.queue g.sem (tid t) with
         | Some q ->
           (match Queue_model.eligible q with
            | [] -> ()
            | eligible -> add 10 (begin_task t (pick rng eligible)))
         | None -> ())
      (looping_idle g);
    (* end the executing task *)
    List.iter (fun (t, p) -> add 6 (end_task t p)) g.executing;
    (* accesses *)
    (match active g with
     | [] -> ()
     | act ->
       let t = pick rng act in
       let m = loc (pick rng locations) in
       add 14 (read t m);
       add 14 (write t m));
    (* locks *)
    (match active g with
     | [] -> ()
     | act ->
       let t = pick rng act in
       let l = pick rng locks in
       (match State.lock_holder g.sem (Ident.Lock_id.make l) with
        | None -> add 5 (acquire t l)
        | Some holder when Ident.Thread_id.equal holder (tid t) ->
          add 5 (release t l)
        | Some _ -> ()));
    (* cancel a pending task *)
    (match g.pending, r with
     | (p, _) :: _, src :: _ when Random.State.int rng 6 = 0 ->
       add 1 (cancel src p)
     | _, _ -> ());
    !moves

  let weighted_pick rng moves =
    let total = List.fold_left (fun acc (w, _) -> acc + w) 0 moves in
    let n = Random.State.int rng total in
    let rec go n = function
      | [] -> assert false
      | (w, m) :: rest -> if n < w then m else go (n - w) rest
    in
    go n moves

  let apply g (e : Trace.event) =
    match Step.apply g.sem e with
    | Error kind ->
      failwith
        (Format.asprintf "random generator produced an illegal move %a: %a"
           Trace.pp_event e Step.pp_violation_kind kind)
    | Ok sem ->
      g.sem <- sem;
      g.events <- e :: g.events;
      (* bookkeeping *)
      (match e.op with
       | Operation.Fork t' ->
         g.threads <- Ident.Thread_id.to_int t' :: g.threads;
         g.next_thread <- g.next_thread + 1
       | Operation.Post { task; target; _ } ->
         g.pending <- (task, Ident.Thread_id.to_int target) :: g.pending;
         g.enabled_unposted <-
           List.filter
             (fun p -> not (Ident.Task_id.equal p task))
             g.enabled_unposted
       | Operation.Begin_task p ->
         g.pending <-
           List.filter (fun (q, _) -> not (Ident.Task_id.equal p q)) g.pending;
         g.executing <-
           (Ident.Thread_id.to_int e.thread, p) :: g.executing
       | Operation.End_task p ->
         g.executing <-
           List.filter (fun (_, q) -> not (Ident.Task_id.equal p q)) g.executing
       | Operation.Enable p -> g.enabled_unposted <- p :: g.enabled_unposted
       | Operation.Cancel p ->
         g.pending <-
           List.filter (fun (q, _) -> not (Ident.Task_id.equal p q)) g.pending
       | Operation.Thread_init | Operation.Thread_exit | Operation.Join _
       | Operation.Attach_queue | Operation.Loop_on_queue
       | Operation.Acquire _ | Operation.Release _ | Operation.Read _
       | Operation.Write _ -> ())

  (* Generates a valid trace of roughly [size] operations from [seed]. *)
  let generate ?(threads = 3) ~seed ~size () =
    let rng = Random.State.make [| seed |] in
    let g =
      { sem = State.initial
      ; events = []
      ; threads = List.init threads (fun i -> i)
      ; next_thread = threads
      ; next_task = 0
      ; pending = []
      ; executing = []
      ; enabled_unposted = []
      ; held = []
      }
    in
    ignore g.held;
    (* Initial threads come into existence via their threadinit. *)
    List.iter (fun t -> apply g (threadinit t)) g.threads;
    let steps = ref 0 in
    while !steps < size do
      incr steps;
      match candidates g rng with
      | [] -> steps := size
      | moves -> apply g (weighted_pick rng moves)
    done;
    trace (List.rev g.events)
end
