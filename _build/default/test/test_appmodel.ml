(* Tests of the modeled-app language and the instrumented runtime. *)

module Ident = Droidracer_trace.Ident
module Operation = Droidracer_trace.Operation
module Trace = Droidracer_trace.Trace
module Step = Droidracer_semantics.Step
module Program = Droidracer_appmodel.Program
module Runtime = Droidracer_appmodel.Runtime
module Detector = Droidracer_core.Detector
module Mp = Droidracer_corpus.Music_player

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let f name = Program.field ~cls:"T" name

let simple_app ?(procs = []) ?(ui = []) ?(on_create = []) () =
  Program.app ~name:"Test" ~main:"Main"
    ~activities:[ Program.activity "Main" ~on_create ~ui ]
    ~procs ()

let run ?options ?(events = []) app = Runtime.run ?options app events

let count_ops trace pred =
  let n = ref 0 in
  Trace.iteri (fun i e -> if pred i e then incr n) trace;
  !n

(* {1 Program validation} *)

let test_validation () =
  let bad_proc = simple_app ~on_create:[ Program.post "nope" ] () in
  check_bool "unknown proc" true (Result.is_error (Program.validate bad_proc));
  let bad_act = simple_app ~on_create:[ Program.Start_activity "Nope" ] () in
  check_bool "unknown activity" true (Result.is_error (Program.validate bad_act));
  let bad_svc = simple_app ~on_create:[ Program.Start_service "Nope" ] () in
  check_bool "unknown service" true (Result.is_error (Program.validate bad_svc));
  let bad_progress = simple_app ~on_create:[ Program.Publish_progress ] () in
  check_bool "publishProgress outside background" true
    (Result.is_error (Program.validate bad_progress));
  let bad_main =
    Program.app ~name:"Test" ~main:"Ghost"
      ~activities:[ Program.activity "Main" ]
      ()
  in
  check_bool "missing main activity" true
    (Result.is_error (Program.validate bad_main));
  check_bool "music player validates" true
    (Result.is_ok (Program.validate Mp.app))

(* {1 Trace generation basics} *)

let test_traces_valid () =
  List.iter
    (fun (events, opts) ->
       let r = Runtime.run ~options:opts Mp.app events in
       check_bool "full trace valid" true (Step.is_valid r.Runtime.full))
    [ (Mp.play_scenario, Mp.options)
    ; (Mp.back_scenario, Mp.options)
    ; (Mp.back_scenario, { Mp.options with compressed_lifecycle = false })
    ]

let test_seed_determinism () =
  let opts = { Mp.options with policy = Runtime.Seeded 42 } in
  let r1 = Runtime.run ~options:opts Mp.app Mp.back_scenario in
  let r2 = Runtime.run ~options:opts Mp.app Mp.back_scenario in
  check_bool "same seed, same trace" true
    (List.for_all2 Trace.event_equal
       (Trace.events r1.Runtime.observed)
       (Trace.events r2.Runtime.observed))

let test_thread_names () =
  let r = Runtime.run ~options:Mp.options Mp.app Mp.back_scenario in
  let names = List.map snd r.Runtime.thread_names in
  check_bool "main named" true (List.mem "main" names);
  check_bool "async bg thread named" true (List.mem "FileDwTask.bg" names)

let test_skipped_events () =
  (* PLAY is enabled only by onPostExecute; a click on a never-enabled
     handler is skipped once the app quiesces. *)
  let app =
    simple_app ~ui:[ Program.handler ~enabled:false "ghost" [] ] ()
  in
  let r = run ~events:[ Runtime.Click "ghost" ] app in
  check_int "skipped" 1 (List.length r.Runtime.skipped);
  check_int "injected" 0 (List.length r.Runtime.injected)

let test_enabled_at_end () =
  let app =
    simple_app
      ~ui:
        [ Program.handler "a" []; Program.handler ~enabled:false "b" [] ]
      ()
  in
  let r = run app in
  check_bool "a available" true
    (List.mem (Runtime.Click "a") r.Runtime.enabled_at_end);
  check_bool "b not available" false
    (List.mem (Runtime.Click "b") r.Runtime.enabled_at_end);
  check_bool "back available" true (List.mem Runtime.Back r.Runtime.enabled_at_end)

(* {1 Concurrency constructs} *)

let test_monitor_exclusion () =
  (* two threads fight over a lock; the trace must interleave the
     critical sections atomically (semantic validity checks this, since
     Acquire of a held lock is a violation) *)
  let app =
    simple_app
      ~on_create:
        [ Program.Fork ("w1", [ Program.Synchronized ("l", [ Program.Write (f "x") ]) ])
        ; Program.Fork ("w2", [ Program.Synchronized ("l", [ Program.Write (f "x") ]) ])
        ]
      ()
  in
  List.iter
    (fun seed ->
       let r =
         run ~options:{ Runtime.default_options with policy = Runtime.Seeded seed } app
       in
       check_bool "valid under contention" true (Step.is_valid r.Runtime.full))
    [ 1; 2; 3; 4; 5 ]

let test_join () =
  let app =
    simple_app
      ~on_create:
        [ Program.Fork ("worker", [ Program.Write (f "x") ])
        ; Program.Fork
            ("waiter", [ Program.Join "worker"; Program.Read (f "x") ])
        ]
      ()
  in
  let r = run app in
  check_bool "valid" true (Step.is_valid r.Runtime.full);
  check_int "no race through join" 0
    (List.length (Detector.analyze r.Runtime.observed).Detector.all_races)

let test_handoff_orders_execution () =
  (* the receiver's read always comes after the sender's write *)
  let app =
    simple_app
      ~on_create:
        [ Program.Fork
            ("recv", [ Program.Handoff_wait (f "flag"); Program.Read (f "x") ])
        ; Program.Fork
            ("send", [ Program.Write (f "x"); Program.Handoff_send (f "flag") ])
        ]
      ()
  in
  List.iter
    (fun seed ->
       let r =
         run ~options:{ Runtime.default_options with policy = Runtime.Seeded seed } app
       in
       let write_pos = ref (-1) and read_pos = ref (-1) in
       Trace.iteri
         (fun i (e : Trace.event) ->
            match e.op with
            | Operation.Write m when Ident.Location.field m = "x" -> write_pos := i
            | Operation.Read m when Ident.Location.field m = "x" -> read_pos := i
            | _ -> ())
         r.Runtime.full;
       check_bool "write before read in every schedule" true
         (!write_pos >= 0 && !read_pos > !write_pos);
       (* ... but the detector reports the race: the handoff is invisible *)
       check_bool "reported as a race regardless" true
         (List.length (Detector.analyze r.Runtime.observed).Detector.all_races >= 1))
    [ 1; 7; 23 ]

let test_native_thread_instrumentation () =
  let app =
    simple_app
      ~procs:[ ("cb", [ Program.Read (f "x") ]) ]
      ~on_create:
        [ Program.Write (f "x")
        ; Program.Fork_native ("nat", [ Program.Write (f "y"); Program.post "cb" ])
        ]
      ()
  in
  let r = run app in
  check_bool "full trace has the native write" true
    (count_ops r.Runtime.full (fun _ e ->
       match e.Trace.op with
       | Operation.Write m -> Ident.Location.field m = "y"
       | _ -> false)
     = 1);
  check_int "observed trace hides the native write" 0
    (count_ops r.Runtime.observed (fun _ e ->
       match e.Trace.op with
       | Operation.Write m -> Ident.Location.field m = "y"
       | _ -> false));
  check_int "but the queue-side post is observed" 1
    (count_ops r.Runtime.observed (fun _ e ->
       match e.Trace.op with Operation.Post _ -> true | _ -> false)
     - 1 (* LAUNCH post *));
  (* with full instrumentation the observed and ground-truth agree *)
  let r2 = run ~options:{ Runtime.default_options with log_native = true } app in
  check_int "log_native shows everything"
    (Trace.length r2.Runtime.full)
    (Trace.length r2.Runtime.observed)

let test_emit_enables_off () =
  let r =
    Runtime.run ~options:{ Mp.options with emit_enables = false } Mp.app
      Mp.back_scenario
  in
  check_int "no enables observed" 0
    (count_ops r.Runtime.observed (fun _ e ->
       match e.Trace.op with Operation.Enable _ -> true | _ -> false));
  check_bool "enables still in the ground truth" true
    (count_ops r.Runtime.full (fun _ e ->
       match e.Trace.op with Operation.Enable _ -> true | _ -> false)
     > 0)

let test_cancel_last () =
  let app =
    simple_app
      ~procs:[ ("job", [ Program.Write (f "x") ]) ]
      ~on_create:[ Program.post "job"; Program.Cancel_last "job" ]
      ()
  in
  let r = run app in
  check_bool "valid" true (Step.is_valid r.Runtime.full);
  check_int "job never begins" 0
    (count_ops r.Runtime.observed (fun _ e ->
       match e.Trace.op with Operation.Begin_task _ -> true | _ -> false)
     - 1 (* LAUNCH *))

let test_delayed_respects_virtual_time () =
  (* with a huge delay, the delayed task always runs after the
     immediate one, in every schedule *)
  let app =
    simple_app
      ~procs:
        [ ("slow", [ Program.Write (f "x") ]); ("fast", [ Program.Write (f "x") ]) ]
      ~on_create:[ Program.post ~delay:50_000 "slow"; Program.post "fast" ]
      ()
  in
  List.iter
    (fun seed ->
       let r =
         run ~options:{ Runtime.default_options with policy = Runtime.Seeded seed } app
       in
       let order = ref [] in
       Trace.iteri
         (fun _ (e : Trace.event) ->
            match e.op with
            | Operation.Begin_task p -> order := Ident.Task_id.name p :: !order
            | _ -> ())
         r.Runtime.observed;
       match List.rev !order with
       | [ _launch; "fast"; "slow" ] -> ()
       | other ->
         Alcotest.failf "unexpected dispatch order: %s" (String.concat "," other))
    [ 1; 2; 3 ]

let test_looper_thread () =
  let app =
    simple_app
      ~procs:[ ("work", [ Program.Write (f "x") ]) ]
      ~on_create:
        [ Program.Fork_looper "ht"
        ; Program.post ~target:(Program.Named_thread "ht") "work"
        ]
      ()
  in
  let r = run app in
  check_bool "valid" true (Step.is_valid r.Runtime.full);
  let work_thread = ref None in
  Trace.iteri
    (fun i (e : Trace.event) ->
       match e.op with
       | Operation.Begin_task p when Ident.Task_id.name p = "work" ->
         work_thread := Some (Trace.thread r.Runtime.observed i)
       | _ -> ())
    r.Runtime.observed;
  (match !work_thread with
   | Some tid ->
     check_bool "work ran on the handler thread" true
       (Trace.has_queue r.Runtime.observed tid
        && Ident.Thread_id.to_int tid > 3)
   | None -> Alcotest.fail "work task never ran")

let test_hold_stalls_context () =
  let app =
    simple_app
      ~on_create:
        [ Program.Fork ("slowpoke", [ Program.Write (f "a") ])
        ; Program.Fork ("other", [ Program.Write (f "b") ])
        ]
      ()
  in
  let r =
    run
      ~options:
        { Runtime.default_options with hold = [ "slowpoke" ]; policy = Runtime.Seeded 1 }
      app
  in
  let pos_of field_name =
    let p = ref (-1) in
    Trace.iteri
      (fun i (e : Trace.event) ->
         match e.op with
         | Operation.Write m when Ident.Location.field m = field_name -> p := i
         | _ -> ())
      r.Runtime.full;
    !p
  in
  check_bool "held thread runs last" true (pos_of "a" > pos_of "b")

let test_intent_delivery () =
  let share_activity =
    Program.activity "Share" ~intents:[ "SEND" ]
      ~on_create:[ Program.Write (f "shared") ]
  in
  let app =
    Program.app ~name:"T" ~main:"Main"
      ~activities:
        [ Program.activity "Main" ~on_pause:[ Program.Read (f "x") ]
        ; share_activity
        ]
      ()
  in
  let r = run ~events:[ Runtime.Intent "SEND" ] app in
  check_int "intent injected" 1 (List.length r.Runtime.injected);
  check_bool "valid" true (Step.is_valid r.Runtime.full);
  (* the filtered activity launched, pausing the main activity first *)
  check_int "share launched" 1
    (count_ops r.Runtime.observed (fun _ e ->
       match e.Trace.op with
       | Operation.Begin_task p ->
         Ident.Task_id.name p = "LAUNCH_Share_1"
       | _ -> false));
  check_int "main paused" 1
    (count_ops r.Runtime.observed (fun _ e ->
       match e.Trace.op with
       | Operation.Begin_task p -> Ident.Task_id.name p = "Main_0.onPause"
       | _ -> false));
  (* an unmatched intent is skipped *)
  let r2 = run ~events:[ Runtime.Intent "NOPE" ] app in
  check_int "unmatched intent skipped" 1 (List.length r2.Runtime.skipped)

let test_rotation_relaunches () =
  let app = simple_app ~on_create:[ Program.Write (f "x") ] () in
  let r = run ~events:[ Runtime.Rotate ] app in
  check_int "two launches" 2
    (count_ops r.Runtime.observed (fun _ e ->
       match e.Trace.op with
       | Operation.Begin_task p ->
         String.length (Ident.Task_id.name p) >= 6
         && String.sub (Ident.Task_id.name p) 0 6 = "LAUNCH"
       | _ -> false))

let test_service_started_once () =
  let svc =
    Program.service "S" ~on_create:[ Program.Write (f "s") ]
      ~on_start_command:[ Program.Read (f "s") ]
  in
  let app =
    Program.app ~name:"T" ~main:"Main"
      ~activities:
        [ Program.activity "Main"
            ~on_create:[ Program.Start_service "S"; Program.Start_service "S" ]
        ]
      ~services:[ svc ] ()
  in
  let r = run app in
  check_int "one onCreateService" 1
    (count_ops r.Runtime.observed (fun _ e ->
       match e.Trace.op with
       | Operation.Begin_task p -> Ident.Task_id.name p = "S.onCreateService"
       | _ -> false));
  check_int "two onStartCommand" 2
    (count_ops r.Runtime.observed (fun _ e ->
       match e.Trace.op with
       | Operation.Begin_task p -> Ident.Task_id.name p = "S.onStartCommand"
       | _ -> false))

let test_broadcast_matching () =
  let receiver action name =
    { Program.receiver_name = name; action; on_receive = [ Program.Read (f "r") ] }
  in
  let app =
    Program.app ~name:"T" ~main:"Main"
      ~activities:
        [ Program.activity "Main" ~on_create:[ Program.Send_broadcast "PING" ] ]
      ~receivers:[ receiver "PING" "yes1"; receiver "PING" "yes2"; receiver "PONG" "no" ]
      ()
  in
  let r = run app in
  check_int "two receivers fire" 2
    (count_ops r.Runtime.observed (fun _ e ->
       match e.Trace.op with
       | Operation.Begin_task p ->
         Filename.check_suffix (Ident.Task_id.name p) ".onReceive"
       | _ -> false))

(* {1 Properties} *)

let prop_music_player_always_valid =
  QCheck2.Test.make ~name:"music player traces valid under any seed" ~count:40
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
       let opts = { Mp.options with policy = Runtime.Seeded seed } in
       let r = Runtime.run ~options:opts Mp.app Mp.back_scenario in
       Step.is_valid r.Runtime.full)

let prop_back_races_found_under_any_seed =
  QCheck2.Test.make
    ~name:"the two Figure 4 races are found under any schedule" ~count:25
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
       let opts = { Mp.options with policy = Runtime.Seeded seed } in
       let r = Runtime.run ~options:opts Mp.app Mp.back_scenario in
       let report = Detector.analyze r.Runtime.observed in
       List.length report.Detector.all_races = 2)

let () =
  Alcotest.run "appmodel"
    [ ( "program"
      , [ Alcotest.test_case "validation" `Quick test_validation ] )
    ; ( "runtime"
      , [ Alcotest.test_case "traces valid" `Quick test_traces_valid
        ; Alcotest.test_case "seed determinism" `Quick test_seed_determinism
        ; Alcotest.test_case "thread names" `Quick test_thread_names
        ; Alcotest.test_case "skipped events" `Quick test_skipped_events
        ; Alcotest.test_case "enabled at end" `Quick test_enabled_at_end
        ] )
    ; ( "concurrency"
      , [ Alcotest.test_case "monitor exclusion" `Quick test_monitor_exclusion
        ; Alcotest.test_case "join" `Quick test_join
        ; Alcotest.test_case "handoff" `Quick test_handoff_orders_execution
        ; Alcotest.test_case "native instrumentation gap" `Quick
            test_native_thread_instrumentation
        ; Alcotest.test_case "enables off" `Quick test_emit_enables_off
        ; Alcotest.test_case "cancel" `Quick test_cancel_last
        ; Alcotest.test_case "delayed virtual time" `Quick
            test_delayed_respects_virtual_time
        ; Alcotest.test_case "looper thread" `Quick test_looper_thread
        ; Alcotest.test_case "hold stalls" `Quick test_hold_stalls_context
        ] )
    ; ( "android glue"
      , [ Alcotest.test_case "intent delivery" `Quick test_intent_delivery
        ; Alcotest.test_case "rotation" `Quick test_rotation_relaunches
        ; Alcotest.test_case "service lifecycle" `Quick test_service_started_once
        ; Alcotest.test_case "broadcast matching" `Quick test_broadcast_matching
        ] )
    ; ( "properties"
      , [ QCheck_alcotest.to_alcotest prop_music_player_always_valid
        ; QCheck_alcotest.to_alcotest prop_back_races_found_under_any_seed
        ] )
    ]
