test/test_android.ml: Alcotest Droidracer_android Droidracer_trace Format List QCheck2 QCheck_alcotest Random Result
