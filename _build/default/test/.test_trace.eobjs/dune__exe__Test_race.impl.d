test/test_race.ml: Alcotest Droidracer_core Helpers Ident List Operation QCheck2 QCheck_alcotest Random_trace Trace
