test/test_semantics.ml: Alcotest Droidracer_semantics Fmt Helpers Ident List Operation Option QCheck2 QCheck_alcotest Random_trace Result Trace
