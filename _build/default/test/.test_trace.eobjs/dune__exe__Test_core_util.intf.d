test/test_core_util.mli:
