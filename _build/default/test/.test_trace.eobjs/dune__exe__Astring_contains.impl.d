test/astring_contains.ml: Buffer String
