test/helpers.ml: Droidracer_semantics Droidracer_trace Format List Option Random
