test/test_android.mli:
