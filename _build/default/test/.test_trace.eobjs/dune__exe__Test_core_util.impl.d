test/test_core_util.ml: Alcotest Droidracer_core Fun Helpers List QCheck2 QCheck_alcotest Random_trace Trace
