test/test_trace.ml: Alcotest Helpers Ident List Operation Option Printf QCheck2 QCheck_alcotest Random_trace Result Trace Trace_io
