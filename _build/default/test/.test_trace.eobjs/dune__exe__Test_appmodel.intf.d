test/test_appmodel.mli:
