test/test_hb.ml: Alcotest Droidracer_core Format Helpers List Operation QCheck2 QCheck_alcotest Random_trace Trace
