open Helpers
module Baseline = Droidracer_baselines.Baseline
module Runtime = Droidracer_appmodel.Runtime
module Mp = Droidracer_corpus.Music_player

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let race_pairs baseline t =
  List.map
    (fun (r : Droidracer_core.Race.t) -> (r.first.position, r.second.position))
    (Baseline.detect baseline t)

(* A single-threaded race: two unordered tasks on the main thread. *)
let single_threaded_race_trace =
  trace
    [ threadinit 0
    ; threadinit 1
    ; threadinit 2
    ; attachq 2
    ; looponq 2
    ; post 0 (task "p") 2
    ; post 1 (task "q") 2
    ; begin_task 2 (task "p")
    ; write 2 (loc "x")  (* 8 *)
    ; end_task 2 (task "p")
    ; begin_task 2 (task "q")
    ; write 2 (loc "x")  (* 11 *)
    ; end_task 2 (task "q")
    ]

let test_multithreaded_only_misses_single_threaded () =
  check_int "droidracer finds it" 1
    (List.length (Baseline.detect Baseline.Droidracer single_threaded_race_trace));
  check_int "multithreaded-only misses it" 0
    (List.length
       (Baseline.detect Baseline.Multithreaded_only single_threaded_race_trace))

(* A fork-ordered pair: write before fork, read on the child. *)
let fork_ordered_trace =
  trace
    [ threadinit 0
    ; write 0 (loc "x")
    ; fork 0 1
    ; threadinit 1
    ; read 1 (loc "x")
    ]

let test_event_driven_only_false_positive () =
  check_int "droidracer: ordered by FORK" 0
    (List.length (Baseline.detect Baseline.Droidracer fork_ordered_trace));
  check_int "event-driven-only: false positive" 1
    (List.length (Baseline.detect Baseline.Event_driven_only fork_ordered_trace))

(* Two same-thread tasks sharing a lock: the naive combination orders
   them spuriously. *)
let lock_shadowed_trace =
  trace
    [ threadinit 0
    ; threadinit 1
    ; threadinit 2
    ; attachq 2
    ; looponq 2
    ; post 0 (task "p") 2
    ; post 1 (task "q") 2
    ; begin_task 2 (task "p")
    ; acquire 2 "l"
    ; write 2 (loc "x")
    ; release 2 "l"
    ; end_task 2 (task "p")
    ; begin_task 2 (task "q")
    ; acquire 2 "l"
    ; write 2 (loc "x")
    ; release 2 "l"
    ; end_task 2 (task "q")
    ]

let test_naive_combined_misses_lock_shadowed () =
  check_int "droidracer finds it" 1
    (List.length (Baseline.detect Baseline.Droidracer lock_shadowed_trace));
  check_int "naive combination misses it" 0
    (List.length (Baseline.detect Baseline.Naive_combined lock_shadowed_trace))

let test_droidracer_is_reference () =
  (* on the music player's BACK trace, the reference baseline equals the
     detector's result *)
  let r = Runtime.run ~options:Mp.options Mp.app Mp.back_scenario in
  let t = r.Runtime.observed in
  let reference = race_pairs Baseline.Droidracer t in
  let report = Droidracer_core.Detector.analyze t in
  let detector_pairs =
    List.map
      (fun { Droidracer_core.Detector.race; _ } ->
         (race.Droidracer_core.Race.first.position,
          race.Droidracer_core.Race.second.position))
      report.Droidracer_core.Detector.all_races
  in
  check_bool "baseline Droidracer = Detector" true (reference = detector_pairs)

let test_comparison_structure () =
  let comparisons = Baseline.compare_against_droidracer lock_shadowed_trace in
  check_int "three baselines compared" 3 (List.length comparisons);
  List.iter
    (fun (c : Baseline.comparison) ->
       match c.Baseline.baseline with
       | Baseline.Naive_combined ->
         check_int "naive missed" 1 c.Baseline.missed;
         check_int "naive extra" 0 c.Baseline.extra
       | Baseline.Multithreaded_only ->
         check_int "mt-only missed" 1 c.Baseline.missed
       | Baseline.Event_driven_only ->
         check_int "event-only missed" 0 c.Baseline.missed
       | Baseline.Droidracer -> Alcotest.fail "reference should not appear")
    comparisons

let test_names () =
  List.iter
    (fun b -> check_bool "has a name" true (String.length (Baseline.name b) > 0))
    Baseline.all

let () =
  Alcotest.run "baselines"
    [ ( "specializations"
      , [ Alcotest.test_case "multithreaded-only misses single-threaded races"
            `Quick test_multithreaded_only_misses_single_threaded
        ; Alcotest.test_case "event-driven-only reports fork false positives"
            `Quick test_event_driven_only_false_positive
        ; Alcotest.test_case "naive combination misses lock-shadowed races"
            `Quick test_naive_combined_misses_lock_shadowed
        ; Alcotest.test_case "reference baseline equals the detector" `Quick
            test_droidracer_is_reference
        ; Alcotest.test_case "comparison structure" `Quick test_comparison_structure
        ; Alcotest.test_case "names" `Quick test_names
        ] )
    ]
