open! Import

type field =
  { cls : string
  ; field_name : string
  ; obj : int
  }

let field ?(obj = 0) ~cls field_name = { cls; field_name; obj }

let location_of_field f =
  Ident.Location.make ~cls:f.cls ~field:f.field_name ~obj:f.obj

type target =
  | Main_thread
  | Named_thread of string

type stmt =
  | Read of field
  | Write of field
  | Synchronized of string * stmt list
  | Fork of string * stmt list
  | Fork_looper of string
  | Join of string
  | Post of post
  | Cancel_last of string
  | Execute_async_task of async_spec
  | Publish_progress
  | Start_activity of string
  | Finish_activity
  | Start_service of string
  | Stop_service of string
  | Send_broadcast of string
  | Enable_ui of string
  | Disable_ui of string
  | Handoff_send of field
  | Handoff_wait of field
  | Fork_native of string * stmt list

and post =
  { proc : string
  ; target : target
  ; delay : int option
  ; front : bool
  }

and async_spec =
  { task_name : string
  ; pre : stmt list
  ; background : stmt list
  ; progress : stmt list
  ; post_exec : stmt list
  }

let post ?delay ?(front = false) ?(target = Main_thread) proc =
  Post { proc; target; delay; front }

type ui_handler =
  { event : string
  ; initially_enabled : bool
  ; handler_body : stmt list
  }

type activity =
  { activity_name : string
  ; on_create : stmt list
  ; on_start : stmt list
  ; on_resume : stmt list
  ; on_pause : stmt list
  ; on_stop : stmt list
  ; on_restart : stmt list
  ; on_destroy : stmt list
  ; ui : ui_handler list
  ; intent_filters : string list
  }

let activity ?(on_create = []) ?(on_start = []) ?(on_resume = [])
    ?(on_pause = []) ?(on_stop = []) ?(on_restart = []) ?(on_destroy = [])
    ?(ui = []) ?(intents = []) activity_name =
  { activity_name
  ; on_create
  ; on_start
  ; on_resume
  ; on_pause
  ; on_stop
  ; on_restart
  ; on_destroy
  ; ui
  ; intent_filters = intents
  }

let handler ?(enabled = true) event handler_body =
  { event; initially_enabled = enabled; handler_body }

type service =
  { service_name : string
  ; on_create_svc : stmt list
  ; on_start_command : stmt list
  ; on_destroy_svc : stmt list
  }

let service ?(on_create = []) ?(on_start_command = []) ?(on_destroy = [])
    service_name =
  { service_name
  ; on_create_svc = on_create
  ; on_start_command
  ; on_destroy_svc = on_destroy
  }

type receiver =
  { receiver_name : string
  ; action : string
  ; on_receive : stmt list
  }

type app =
  { app_name : string
  ; main_activity : string
  ; activities : activity list
  ; services : service list
  ; receivers : receiver list
  ; procs : (string * stmt list) list
  }

let app ?(activities = []) ?(services = []) ?(receivers = []) ?(procs = [])
    ~name ~main () =
  { app_name = name
  ; main_activity = main
  ; activities
  ; services
  ; receivers
  ; procs
  }

let find_activity a name =
  List.find_opt (fun act -> String.equal act.activity_name name) a.activities

let find_service a name =
  List.find_opt (fun s -> String.equal s.service_name name) a.services

let find_proc a name = List.assoc_opt name a.procs

let intent_actions a =
  List.concat_map (fun act -> act.intent_filters) a.activities
  |> List.sort_uniq String.compare

let validate a =
  let error fmt = Format.kasprintf (fun s -> Error s) fmt in
  let ( let* ) = Result.bind in
  let rec check_stmts ~in_background path stmts =
    List.fold_left
      (fun acc s ->
         let* () = acc in
         check_stmt ~in_background path s)
      (Ok ()) stmts
  and check_stmt ~in_background path s =
    match s with
    | Read _ | Write _ | Handoff_send _ | Handoff_wait _ | Enable_ui _
    | Disable_ui _ | Finish_activity | Cancel_last _ -> Ok ()
    | Synchronized (_, body) -> check_stmts ~in_background path body
    | Fork (name, body) | Fork_native (name, body) ->
      check_stmts ~in_background (path ^ "/" ^ name) body
    | Fork_looper _ | Join _ -> Ok ()
    | Post { proc; _ } ->
      if Option.is_some (find_proc a proc) then Ok ()
      else error "%s: posted procedure %S is not defined" path proc
    | Execute_async_task spec ->
      let* () = check_stmts ~in_background path spec.pre in
      let* () =
        check_stmts ~in_background:true (path ^ "/" ^ spec.task_name)
          spec.background
      in
      let* () = check_stmts ~in_background path spec.progress in
      check_stmts ~in_background path spec.post_exec
    | Publish_progress ->
      if in_background then Ok ()
      else error "%s: publishProgress outside doInBackground" path
    | Start_activity name ->
      if Option.is_some (find_activity a name) then Ok ()
      else error "%s: activity %S is not defined" path name
    | Start_service name | Stop_service name ->
      if Option.is_some (find_service a name) then Ok ()
      else error "%s: service %S is not defined" path name
    | Send_broadcast _ -> Ok ()
  in
  let* () =
    if Option.is_some (find_activity a a.main_activity) then Ok ()
    else error "main activity %S is not defined" a.main_activity
  in
  let* () =
    List.fold_left
      (fun acc act ->
         let* () = acc in
         let path = act.activity_name in
         let* () = check_stmts ~in_background:false path act.on_create in
         let* () = check_stmts ~in_background:false path act.on_start in
         let* () = check_stmts ~in_background:false path act.on_resume in
         let* () = check_stmts ~in_background:false path act.on_pause in
         let* () = check_stmts ~in_background:false path act.on_stop in
         let* () = check_stmts ~in_background:false path act.on_restart in
         let* () = check_stmts ~in_background:false path act.on_destroy in
         List.fold_left
           (fun acc h ->
              let* () = acc in
              check_stmts ~in_background:false
                (path ^ "#" ^ h.event)
                h.handler_body)
           (Ok ()) act.ui)
      (Ok ()) a.activities
  in
  let* () =
    List.fold_left
      (fun acc s ->
         let* () = acc in
         let path = s.service_name in
         let* () = check_stmts ~in_background:false path s.on_create_svc in
         let* () = check_stmts ~in_background:false path s.on_start_command in
         check_stmts ~in_background:false path s.on_destroy_svc)
      (Ok ()) a.services
  in
  let* () =
    List.fold_left
      (fun acc r ->
         let* () = acc in
         check_stmts ~in_background:false r.receiver_name r.on_receive)
      (Ok ()) a.receivers
  in
  List.fold_left
    (fun acc (name, body) ->
       let* () = acc in
       check_stmts ~in_background:false name body)
    (Ok ()) a.procs
