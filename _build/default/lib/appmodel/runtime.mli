open! Import

(** The instrumented Android runtime model: executes a modeled
    application under a chosen schedule and produces execution traces.

    This module plays three roles of the real tool chain at once
    (Section 5): the Dalvik VM and Android libraries (loopers, message
    queues, AsyncTask, binder threads, ActivityManagerService and the
    component lifecycles), the Trace Generator (every concurrency
    operation is logged in the core language), and the test driver that
    feeds UI events.

    Two traces are produced.  The {e full} trace records everything that
    happened and always satisfies the semantics of Figure 5 (each
    emitted operation is pushed through {!Step.apply}; a violation is a
    bug in this interpreter, not in the application).  The {e observed}
    trace is what the instrumentation of the paper would log: operations
    of natively created threads are missing — except their posts, which
    the queue-side instrumentation sees — which reproduces the
    false-positive sources of Section 6. *)

(** UI events the driver can inject (Section 5, "UI Explorer").
    [Intent] is an extension: the paper's tool generates UI events only,
    leaving intents to future work (Section 8). *)
type ui_event =
  | Click of string  (** fire the named handler of the top activity *)
  | Back
  | Rotate
  | Intent of string
      (** deliver an external intent: launches an activity whose filter
          matches the action, pausing the current top activity *)

val ui_event_equal : ui_event -> ui_event -> bool

val pp_ui_event : Format.formatter -> ui_event -> unit

(** Scheduling policies. *)
type policy =
  | Round_robin  (** deterministic: always the first available choice *)
  | Seeded of int  (** uniform choice from a seeded generator *)
  | Scripted of int list
      (** replay: the n-th scheduling decision takes the n-th script
          entry (modulo the arity at that point); decisions beyond the
          script take the first choice.  The arity of every decision is
          reported in {!run_result.choice_arities}, which is what the
          exhaustive schedule explorer enumerates. *)

type options =
  { policy : policy
  ; log_native : bool
      (** instrument natively created threads too (ground truth mode) *)
  ; compressed_lifecycle : bool
      (** teardown posts [onDestroy] directly, as the paper's Figure 4
          compresses it; the default runs the full
          onPause/onStop/onDestroy chain *)
  ; binder_pool_size : int
  ; respect_delays : bool
      (** dispatch a delayed post only once its (virtual) timeout
          expired; disabled by the race verifier to "alter the delay
          associated with asynchronous posts" (Section 6) *)
  ; emit_enables : bool
      (** model the runtime environment with [enable] operations;
          disabled for the false-positive ablation *)
  ; hold : string list
      (** stalled contexts (thread names and task names): the scheduler
          runs them only when nothing else can make progress — the
          model-level analogue of stalling threads with debugger
          breakpoints, which is how the paper validates races
          (Section 6) *)
  ; max_steps : int
  }

val default_options : options

type run_result =
  { observed : Trace.t
  ; full : Trace.t
  ; thread_names : (Ident.Thread_id.t * string) list
      (** stable, program-defined names of the dynamic threads *)
  ; injected : ui_event list  (** events delivered, in order *)
  ; skipped : ui_event list  (** events never enabled, dropped *)
  ; enabled_at_end : ui_event list
      (** events available on the final screen (drives the UI
          explorer's depth-first search) *)
  ; choice_arities : int list
      (** the number of alternatives at every scheduling decision of the
          run, in order (1 = forced); drives exhaustive schedule
          exploration *)
  ; steps : int
  }

exception Stuck of string
(** Raised when the application deadlocks (e.g. a join on a thread that
    never exits) or exceeds [max_steps]. *)

val run : ?options:options -> Program.app -> ui_event list -> run_result
(** Executes the application from launch, injecting the given UI events
    one by one (each once the previous one has been consumed and its
    triggering conditions hold).

    @raise Stuck on deadlock.
    @raise Invalid_argument when {!Program.validate} rejects the app. *)
