open! Import

(** The modeled-application language.

    Real DroidRacer instruments the Dalvik interpreter and runs
    unmodified application binaries; in this reproduction, applications
    are written in this small language and executed by {!Runtime}, which
    plays the roles of the Dalvik VM, the Android libraries and the
    Trace Generator at once.  The language covers the concurrency
    surface the paper analyses — field accesses, monitors, threads with
    and without loopers, asynchronous posts with delays / front posting
    / cancellation, AsyncTask, activity lifecycles, services, broadcast
    receivers — plus the untracked mechanisms (natively created threads,
    ad-hoc flag synchronization) responsible for the false positives and
    negatives discussed in Section 6. *)

(** A field of an object, the unit of race detection. *)
type field =
  { cls : string
  ; field_name : string
  ; obj : int
  }

val field : ?obj:int -> cls:string -> string -> field

val location_of_field : field -> Ident.Location.t

(** Where a post is directed. *)
type target =
  | Main_thread
  | Named_thread of string  (** a looper thread created by {!Fork_looper} *)

type stmt =
  | Read of field
  | Write of field
  | Synchronized of string * stmt list  (** Java monitor *)
  | Fork of string * stmt list
      (** plain background thread; exits after its body *)
  | Fork_looper of string
      (** a HandlerThread: attaches a queue and serves posts *)
  | Join of string
  | Post of post
  | Cancel_last of string
      (** revoke the most recent pending post of the named procedure *)
  | Execute_async_task of async_spec
  | Publish_progress
      (** legal only inside [background] of an AsyncTask *)
  | Start_activity of string
  | Finish_activity  (** finish() on the current activity *)
  | Start_service of string
  | Stop_service of string
  | Send_broadcast of string  (** delivered to every matching receiver *)
  | Enable_ui of string
      (** enable a UI handler of the current activity, as
          [setEnabled(true)] does for the PLAY button of Figure 1 *)
  | Disable_ui of string
      (** disable a UI handler: the event can no longer fire.  Emits no
          trace operation — the source of co-enabled false positives
          where the two events cannot actually happen in parallel *)
  | Handoff_send of field
      (** ad-hoc synchronization: publish a flag.  Ordered at runtime,
          invisible to happens-before reasoning — a false-positive
          source (Section 6). *)
  | Handoff_wait of field
      (** block until the flag is published, then read it *)
  | Fork_native of string * stmt list
      (** a natively created thread: the Trace Generator logs only Java
          code, so nothing this thread does is instrumented — except
          posts, which the queue-side instrumentation sees (the Browser
          false positives of Section 6) *)

and post =
  { proc : string
  ; target : target
  ; delay : int option  (** virtual milliseconds *)
  ; front : bool
  }

and async_spec =
  { task_name : string
  ; pre : stmt list  (** onPreExecute, synchronous on the caller *)
  ; background : stmt list  (** doInBackground, on a fresh thread *)
  ; progress : stmt list  (** onProgressUpdate, posted to the caller *)
  ; post_exec : stmt list  (** onPostExecute, posted to the caller *)
  }

val post :
  ?delay:int -> ?front:bool -> ?target:target -> string -> stmt
(** [post "proc"] is an ordinary FIFO post of procedure [proc] to the
    main thread. *)

(** A UI event handler attached to an activity's screen. *)
type ui_handler =
  { event : string
  ; initially_enabled : bool
      (** enabled as soon as the screen shows; otherwise the activity
          must run {!Enable_ui} first *)
  ; handler_body : stmt list
  }

type activity =
  { activity_name : string
  ; on_create : stmt list
  ; on_start : stmt list
  ; on_resume : stmt list
  ; on_pause : stmt list
  ; on_stop : stmt list
  ; on_restart : stmt list
  ; on_destroy : stmt list
  ; ui : ui_handler list
  ; intent_filters : string list
      (** EXTENSION: intent actions this activity responds to.  The
          paper's tool "only generates UI events but not intents"
          (Section 8); the explorer here can also deliver intents to
          filtered activities. *)
  }

val activity :
  ?on_create:stmt list ->
  ?on_start:stmt list ->
  ?on_resume:stmt list ->
  ?on_pause:stmt list ->
  ?on_stop:stmt list ->
  ?on_restart:stmt list ->
  ?on_destroy:stmt list ->
  ?ui:ui_handler list ->
  ?intents:string list ->
  string ->
  activity

val handler : ?enabled:bool -> string -> stmt list -> ui_handler

type service =
  { service_name : string
  ; on_create_svc : stmt list
  ; on_start_command : stmt list
  ; on_destroy_svc : stmt list
  }

val service :
  ?on_create:stmt list ->
  ?on_start_command:stmt list ->
  ?on_destroy:stmt list ->
  string ->
  service

type receiver =
  { receiver_name : string
  ; action : string  (** the broadcast action it is registered for *)
  ; on_receive : stmt list
  }

type app =
  { app_name : string
  ; main_activity : string
  ; activities : activity list
  ; services : service list
  ; receivers : receiver list
  ; procs : (string * stmt list) list
      (** bodies of procedures referenced by {!Post} *)
  }

val app :
  ?activities:activity list ->
  ?services:service list ->
  ?receivers:receiver list ->
  ?procs:(string * stmt list) list ->
  name:string ->
  main:string ->
  unit ->
  app

val find_activity : app -> string -> activity option

val find_service : app -> string -> service option

val find_proc : app -> string -> stmt list option

val intent_actions : app -> string list
(** All distinct intent actions filtered by some activity (extension;
    see {!type:activity}). *)

val validate : app -> (unit, string) result
(** Checks that every name referenced by a statement (posted procedure,
    activity, service, thread join target) is defined, that
    [Publish_progress] appears only inside AsyncTask backgrounds, and
    that the main activity exists. *)
