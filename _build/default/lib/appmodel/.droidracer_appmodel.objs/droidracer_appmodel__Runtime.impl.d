lib/appmodel/runtime.ml: Async_task Binder Format Hashtbl Ident Import Lazy Lifecycle List Operation Option Printf Program Queue Queue_model Random State Step String Trace
