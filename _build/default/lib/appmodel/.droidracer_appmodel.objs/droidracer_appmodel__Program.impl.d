lib/appmodel/program.ml: Format Ident Import List Option Result String
