lib/appmodel/program.mli: Ident Import
