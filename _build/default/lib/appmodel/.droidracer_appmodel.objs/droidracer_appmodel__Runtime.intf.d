lib/appmodel/runtime.mli: Format Ident Import Program Trace
