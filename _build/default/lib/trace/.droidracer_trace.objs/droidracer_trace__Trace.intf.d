lib/trace/trace.mli: Format Ident Operation
