lib/trace/trace.ml: Array Format Hashtbl Ident List Operation Option Printf
