lib/trace/trace_io.mli: Format Trace
