lib/trace/operation.mli: Format Ident
