lib/trace/trace_io.ml: Format Ident In_channel List Operation Out_channel Printf Result String Trace
