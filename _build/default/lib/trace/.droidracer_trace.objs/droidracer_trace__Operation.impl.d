lib/trace/operation.ml: Format Ident Int Option
