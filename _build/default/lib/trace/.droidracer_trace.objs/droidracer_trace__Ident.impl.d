lib/trace/ident.ml: Format Int Map Option Set String
