lib/trace/ident.mli: Format Map Set
