module Thread_id = Ident.Thread_id
module Task_id = Ident.Task_id
module Lock_id = Ident.Lock_id
module Location = Ident.Location

let print_event ppf (e : Trace.event) =
  Format.fprintf ppf "%a %a" Thread_id.pp e.thread Operation.pp e.op

let print ppf trace =
  Trace.iteri (fun _ e -> Format.fprintf ppf "%a@\n" print_event e) trace

let to_string trace = Format.asprintf "%a" print trace

let split_words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_thread w =
  match Thread_id.of_string w with
  | Some t -> Ok t
  | None -> Error (Printf.sprintf "expected a thread id, got %S" w)

let parse_task w =
  match Task_id.of_string w with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "expected a task id (name#instance), got %S" w)

let parse_lock w =
  match Lock_id.of_string w with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "expected a lock name, got %S" w)

let parse_location w =
  match Location.of_string w with
  | Some m -> Ok m
  | None ->
    Error (Printf.sprintf "expected a memory location (cls.field@obj), got %S" w)

let ( let* ) = Result.bind

let parse_post_flavour words =
  match words with
  | [] -> Ok Operation.Immediate
  | [ "front" ] -> Ok Operation.Front
  | [ w ] when String.length w > 6 && String.sub w 0 6 = "delay=" ->
    (match int_of_string_opt (String.sub w 6 (String.length w - 6)) with
     | Some d when d >= 0 -> Ok (Operation.Delayed d)
     | Some _ | None -> Error (Printf.sprintf "invalid delay in %S" w))
  | w :: _ -> Error (Printf.sprintf "unexpected post argument %S" w)

let parse_op mnemonic args =
  match mnemonic, args with
  | "threadinit", [] -> Ok Operation.Thread_init
  | "threadexit", [] -> Ok Operation.Thread_exit
  | "attachq", [] -> Ok Operation.Attach_queue
  | "looponq", [] -> Ok Operation.Loop_on_queue
  | "fork", [ w ] ->
    let* t = parse_thread w in
    Ok (Operation.Fork t)
  | "join", [ w ] ->
    let* t = parse_thread w in
    Ok (Operation.Join t)
  | "post", task_w :: target_w :: rest ->
    let* task = parse_task task_w in
    let* target = parse_thread target_w in
    let* flavour = parse_post_flavour rest in
    Ok (Operation.Post { task; target; flavour })
  | "begin", [ w ] ->
    let* p = parse_task w in
    Ok (Operation.Begin_task p)
  | "end", [ w ] ->
    let* p = parse_task w in
    Ok (Operation.End_task p)
  | "enable", [ w ] ->
    let* p = parse_task w in
    Ok (Operation.Enable p)
  | "cancel", [ w ] ->
    let* p = parse_task w in
    Ok (Operation.Cancel p)
  | "acquire", [ w ] ->
    let* l = parse_lock w in
    Ok (Operation.Acquire l)
  | "release", [ w ] ->
    let* l = parse_lock w in
    Ok (Operation.Release l)
  | "read", [ w ] ->
    let* m = parse_location w in
    Ok (Operation.Read m)
  | "write", [ w ] ->
    let* m = parse_location w in
    Ok (Operation.Write m)
  | ( ( "threadinit" | "threadexit" | "attachq" | "looponq" | "fork" | "join"
      | "post" | "begin" | "end" | "enable" | "cancel" | "acquire" | "release"
      | "read" | "write" )
    , _ ) -> Error (Printf.sprintf "wrong number of arguments for %S" mnemonic)
  | other, _ -> Error (Printf.sprintf "unknown operation %S" other)

let parse_event line =
  let line =
    match String.index_opt line '#' with
    | Some i
      when
        (* '#' also occurs inside task ids; a comment is a '#' preceded by
           whitespace or starting the line. *)
        i = 0 || line.[i - 1] = ' ' || line.[i - 1] = '\t' ->
      String.sub line 0 i
    | Some _ | None -> line
  in
  match split_words line with
  | [] -> Ok None
  | thread_w :: mnemonic :: args ->
    let* thread = parse_thread thread_w in
    let* op = parse_op mnemonic args in
    Ok (Some { Trace.thread; op })
  | [ w ] -> Error (Printf.sprintf "incomplete line %S" w)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] ->
      (match Trace.of_events (List.rev acc) with
       | Ok trace -> Ok trace
       | Error msg -> Error ("ill-formed trace: " ^ msg))
    | line :: rest ->
      (match parse_event line with
       | Ok (Some e) -> go (lineno + 1) (e :: acc) rest
       | Ok None -> go (lineno + 1) acc rest
       | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 [] lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let save path trace =
  Out_channel.with_open_text path (fun oc ->
    Out_channel.output_string oc (to_string trace))
