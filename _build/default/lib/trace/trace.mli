(** Execution traces.

    A trace is the sequence [α₁ … αₙ] of operations observed during one
    run of an application (Section 2.3).  Positions are 0-based indices
    into the trace.  Besides the raw events, a trace precomputes the
    derived information the happens-before rules consume: the enclosing
    asynchronous task of every operation (the paper's [task] helper), the
    executing thread (the [thread] helper), queue attachment, and the
    positions of the [post]/[begin]/[end]/[enable] operations of every
    task. *)

type event =
  { thread : Ident.Thread_id.t  (** the executing thread *)
  ; op : Operation.t
  }

type t

val event_equal : event -> event -> bool

val pp_event : Format.formatter -> event -> unit

(** {1 Construction} *)

val of_events : event list -> (t, string) result
(** Builds a trace, checking structural well-formedness: every task is
    posted, begun, ended and enabled at most once ("unique renaming",
    Section 4.1); [begin]/[end] pairs are properly bracketed on their
    thread and never nested; a task [begin]s only on the thread it was
    posted to and only after the post; [attachQ] and [loopOnQ] appear at
    most once per thread, in that order.  Deeper semantic validity (the
    transition system of Figure 5) is checked by
    {!Droidracer_semantics.Step.validate}. *)

val of_events_exn : event list -> t
(** @raise Invalid_argument when {!of_events} would return [Error]. *)

(** {1 Basic accessors} *)

val length : t -> int

val get : t -> int -> event
(** @raise Invalid_argument if the index is out of bounds. *)

val op : t -> int -> Operation.t

val thread : t -> int -> Ident.Thread_id.t
(** The paper's [thread(αᵢ)]. *)

val events : t -> event list

val iteri : (int -> event -> unit) -> t -> unit

(** {1 Derived structure} *)

val enclosing_task : t -> int -> Ident.Task_id.t option
(** The paper's [task(αᵢ)]: the asynchronous task whose execution
    contains position [i] ([begin] and [end] included), or [None] when
    the operation runs outside any task. *)

val threads : t -> Ident.Thread_id.t list
(** All threads executing at least one operation, in order of first
    appearance. *)

val has_queue : t -> Ident.Thread_id.t -> bool
(** Whether the thread executes [attachQ] in this trace. *)

val loop_index : t -> Ident.Thread_id.t -> int option
(** Position of the thread's [loopOnQ], if any. *)

val tasks : t -> Ident.Task_id.t list
(** All tasks posted in the trace, in posting order. *)

val post_index : t -> Ident.Task_id.t -> int option

val begin_index : t -> Ident.Task_id.t -> int option

val end_index : t -> Ident.Task_id.t -> int option

val enable_index : t -> Ident.Task_id.t -> int option

val cancel_index : t -> Ident.Task_id.t -> int option

val post_target : t -> Ident.Task_id.t -> Ident.Thread_id.t option
(** The thread a task was posted to. *)

val post_flavour : t -> Ident.Task_id.t -> Operation.post_flavour option

(** {1 Transformations} *)

val remove_cancelled : t -> t
(** Deletes, for every task whose [cancel] precedes its [begin] (or that
    never began), the task's [post], the [cancel] itself and any
    operations of the task body; this is how Section 4.2 handles
    cancellation before happens-before analysis.  [cancel] operations for
    tasks that already began are deleted but the executed task is kept. *)

(** {1 Statistics (Table 2)} *)

type stats =
  { trace_length : int
  ; fields : int  (** distinct [class.field] pairs accessed *)
  ; threads_without_queue : int
  ; threads_with_queue : int
  ; async_tasks : int  (** number of asynchronous posts *)
  }

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit

val pp : Format.formatter -> t -> unit
(** Prints the trace one numbered operation per line, in the style of
    Figure 3. *)
