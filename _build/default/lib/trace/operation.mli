(** Operations of the core concurrency language (Table 1 of the paper).

    Every operation is executed by a thread; the executing thread lives in
    the enclosing {!Event.t}, not here.  Besides the operations of
    Table 1, this module models the two task-management refinements of
    Section 4.2: delayed posts and posts to the front of the queue are
    flavours of {!constructor:Post}, and task cancellation is the
    explicit {!constructor:Cancel} operation (the paper handles
    cancellation by deleting the corresponding post from the trace, which
    {!Trace.remove_cancelled} implements). *)

(** How a task was enqueued. *)
type post_flavour =
  | Immediate  (** ordinary FIFO post *)
  | Delayed of int
      (** post with a timeout in milliseconds; executed when the timeout
          expires (Section 4.2, case 1) *)
  | Front
      (** post to the front of the queue, overriding FIFO (Section 4.2,
          case 3; the paper defers its happens-before treatment to future
          work, so the detector derives no FIFO edges for it) *)

type t =
  | Thread_init  (** start executing the current thread *)
  | Thread_exit  (** complete executing the current thread *)
  | Fork of Ident.Thread_id.t  (** create a thread *)
  | Join of Ident.Thread_id.t  (** consume a completed thread *)
  | Attach_queue  (** attach a task queue to the current thread *)
  | Loop_on_queue  (** begin executing procedures in the queue *)
  | Post of
      { task : Ident.Task_id.t
      ; target : Ident.Thread_id.t
      ; flavour : post_flavour
      }  (** post [task] asynchronously to thread [target] *)
  | Begin_task of Ident.Task_id.t  (** start executing a posted task *)
  | End_task of Ident.Task_id.t  (** finish executing a posted task *)
  | Acquire of Ident.Lock_id.t
  | Release of Ident.Lock_id.t
  | Read of Ident.Location.t
  | Write of Ident.Location.t
  | Enable of Ident.Task_id.t
      (** the environment may now trigger the event handled by the task *)
  | Cancel of Ident.Task_id.t
      (** revoke a previously posted task (Section 4.2, case 2) *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val mnemonic : t -> string
(** The keyword used by the textual trace format, e.g. ["post"]. *)

val accessed_location : t -> Ident.Location.t option
(** The memory location read or written, if any. *)

val is_write : t -> bool

val is_access : t -> bool
(** [Read] or [Write]. *)

val conflicts : t -> t -> bool
(** Two operations conflict if they access the same memory location and
    at least one is a write (Section 2.4). *)

val is_synchronization : t -> bool
(** Everything except reads, writes, enables and cancels.  Runs of
    non-synchronization access operations are coalesced into single graph
    nodes by the detector's optimisation (Section 6, "Performance"). *)

val posted_task : t -> Ident.Task_id.t option
(** For a [Post], the task being posted (the paper's [callee]). *)
