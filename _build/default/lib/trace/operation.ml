type post_flavour = Immediate | Delayed of int | Front

type t =
  | Thread_init
  | Thread_exit
  | Fork of Ident.Thread_id.t
  | Join of Ident.Thread_id.t
  | Attach_queue
  | Loop_on_queue
  | Post of
      { task : Ident.Task_id.t
      ; target : Ident.Thread_id.t
      ; flavour : post_flavour
      }
  | Begin_task of Ident.Task_id.t
  | End_task of Ident.Task_id.t
  | Acquire of Ident.Lock_id.t
  | Release of Ident.Lock_id.t
  | Read of Ident.Location.t
  | Write of Ident.Location.t
  | Enable of Ident.Task_id.t
  | Cancel of Ident.Task_id.t

let flavour_rank = function Immediate -> 0 | Delayed _ -> 1 | Front -> 2

let compare_flavour a b =
  match a, b with
  | Immediate, Immediate | Front, Front -> 0
  | Delayed x, Delayed y -> Int.compare x y
  | (Immediate | Delayed _ | Front), (Immediate | Delayed _ | Front) ->
    Int.compare (flavour_rank a) (flavour_rank b)

let rank = function
  | Thread_init -> 0
  | Thread_exit -> 1
  | Fork _ -> 2
  | Join _ -> 3
  | Attach_queue -> 4
  | Loop_on_queue -> 5
  | Post _ -> 6
  | Begin_task _ -> 7
  | End_task _ -> 8
  | Acquire _ -> 9
  | Release _ -> 10
  | Read _ -> 11
  | Write _ -> 12
  | Enable _ -> 13
  | Cancel _ -> 14

let compare a b =
  match a, b with
  | Fork t, Fork t' | Join t, Join t' -> Ident.Thread_id.compare t t'
  | Post p, Post p' ->
    (match Ident.Task_id.compare p.task p'.task with
     | 0 ->
       (match Ident.Thread_id.compare p.target p'.target with
        | 0 -> compare_flavour p.flavour p'.flavour
        | c -> c)
     | c -> c)
  | Begin_task p, Begin_task p'
  | End_task p, End_task p'
  | Enable p, Enable p'
  | Cancel p, Cancel p' -> Ident.Task_id.compare p p'
  | Acquire l, Acquire l' | Release l, Release l' -> Ident.Lock_id.compare l l'
  | Read m, Read m' | Write m, Write m' -> Ident.Location.compare m m'
  | ( ( Thread_init | Thread_exit | Fork _ | Join _ | Attach_queue
      | Loop_on_queue | Post _ | Begin_task _ | End_task _ | Acquire _
      | Release _ | Read _ | Write _ | Enable _ | Cancel _ )
    , _ ) -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let mnemonic = function
  | Thread_init -> "threadinit"
  | Thread_exit -> "threadexit"
  | Fork _ -> "fork"
  | Join _ -> "join"
  | Attach_queue -> "attachq"
  | Loop_on_queue -> "looponq"
  | Post _ -> "post"
  | Begin_task _ -> "begin"
  | End_task _ -> "end"
  | Acquire _ -> "acquire"
  | Release _ -> "release"
  | Read _ -> "read"
  | Write _ -> "write"
  | Enable _ -> "enable"
  | Cancel _ -> "cancel"

let pp ppf op =
  let key = mnemonic op in
  match op with
  | Thread_init | Thread_exit | Attach_queue | Loop_on_queue ->
    Format.pp_print_string ppf key
  | Fork t | Join t -> Format.fprintf ppf "%s %a" key Ident.Thread_id.pp t
  | Post { task; target; flavour } ->
    let pp_flavour ppf = function
      | Immediate -> ()
      | Delayed d -> Format.fprintf ppf " delay=%d" d
      | Front -> Format.fprintf ppf " front"
    in
    Format.fprintf ppf "%s %a %a%a" key Ident.Task_id.pp task
      Ident.Thread_id.pp target pp_flavour flavour
  | Begin_task p | End_task p | Enable p | Cancel p ->
    Format.fprintf ppf "%s %a" key Ident.Task_id.pp p
  | Acquire l | Release l -> Format.fprintf ppf "%s %a" key Ident.Lock_id.pp l
  | Read m | Write m -> Format.fprintf ppf "%s %a" key Ident.Location.pp m

let accessed_location = function
  | Read m | Write m -> Some m
  | Thread_init | Thread_exit | Fork _ | Join _ | Attach_queue | Loop_on_queue
  | Post _ | Begin_task _ | End_task _ | Acquire _ | Release _ | Enable _
  | Cancel _ -> None

let is_write = function
  | Write _ -> true
  | Thread_init | Thread_exit | Fork _ | Join _ | Attach_queue | Loop_on_queue
  | Post _ | Begin_task _ | End_task _ | Acquire _ | Release _ | Read _
  | Enable _ | Cancel _ -> false

let is_access op = Option.is_some (accessed_location op)

let conflicts a b =
  match accessed_location a, accessed_location b with
  | Some m, Some m' ->
    Ident.Location.equal m m' && (is_write a || is_write b)
  | None, _ | _, None -> false

let is_synchronization = function
  | Read _ | Write _ | Enable _ | Cancel _ -> false
  | Thread_init | Thread_exit | Fork _ | Join _ | Attach_queue | Loop_on_queue
  | Post _ | Begin_task _ | End_task _ | Acquire _ | Release _ -> true

let posted_task = function
  | Post { task; _ } -> Some task
  | Thread_init | Thread_exit | Fork _ | Join _ | Attach_queue | Loop_on_queue
  | Begin_task _ | End_task _ | Acquire _ | Release _ | Read _ | Write _
  | Enable _ | Cancel _ -> None
