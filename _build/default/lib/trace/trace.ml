module Thread_id = Ident.Thread_id
module Task_id = Ident.Task_id

type event =
  { thread : Thread_id.t
  ; op : Operation.t
  }

let event_equal a b =
  Thread_id.equal a.thread b.thread && Operation.equal a.op b.op

let pp_event ppf e =
  Format.fprintf ppf "%a: %a" Thread_id.pp e.thread Operation.pp e.op

type task_info =
  { mutable post_at : int option
  ; mutable begin_at : int option
  ; mutable end_at : int option
  ; mutable enable_at : int option
  ; mutable cancel_at : int option
  ; mutable target : Thread_id.t option
  ; mutable flavour : Operation.post_flavour option
  }

type thread_info =
  { mutable attach_at : int option
  ; mutable loop_at : int option
  ; mutable current_task : Task_id.t option
  }

type t =
  { events : event array
  ; enclosing : Task_id.t option array
  ; task_infos : task_info Task_id.Map.t
  ; thread_infos : thread_info Thread_id.Map.t
  ; task_order : Task_id.t list  (** in posting order *)
  ; thread_order : Thread_id.t list  (** in order of first appearance *)
  }

exception Ill_formed of string

let fail fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let fresh_task_info () =
  { post_at = None
  ; begin_at = None
  ; end_at = None
  ; enable_at = None
  ; cancel_at = None
  ; target = None
  ; flavour = None
  }

(* Single left-to-right pass computing all derived structure while
   checking structural well-formedness. *)
let build events =
  let n = Array.length events in
  let enclosing = Array.make n None in
  let task_infos = Hashtbl.create 64 in
  let thread_infos = Hashtbl.create 16 in
  let task_order = ref [] in
  let thread_order = ref [] in
  let task_info p =
    match Hashtbl.find_opt task_infos (Task_id.to_string p) with
    | Some (_, info) -> info
    | None ->
      let info = fresh_task_info () in
      Hashtbl.add task_infos (Task_id.to_string p) (p, info);
      info
  and thread_info t =
    match Hashtbl.find_opt thread_infos (Thread_id.to_int t) with
    | Some (_, info) -> info
    | None ->
      let info =
        { attach_at = None; loop_at = None; current_task = None }
      in
      Hashtbl.add thread_infos (Thread_id.to_int t) (t, info);
      thread_order := t :: !thread_order;
      info
  in
  for i = 0 to n - 1 do
    let { thread = t; op } = events.(i) in
    let tinfo = thread_info t in
    enclosing.(i) <- tinfo.current_task;
    (match op with
     | Operation.Attach_queue ->
       (match tinfo.attach_at with
        | Some j -> fail "position %d: thread %a attaches a queue twice (first at %d)" i Thread_id.pp t j
        | None -> tinfo.attach_at <- Some i)
     | Operation.Loop_on_queue ->
       (match tinfo.loop_at, tinfo.attach_at with
        | Some j, _ -> fail "position %d: thread %a loops on its queue twice (first at %d)" i Thread_id.pp t j
        | None, None -> fail "position %d: thread %a loops on a queue it never attached" i Thread_id.pp t
        | None, Some _ -> tinfo.loop_at <- Some i)
     | Operation.Post { task = p; target; flavour } ->
       let info = task_info p in
       (match info.post_at with
        | Some j -> fail "position %d: task %a posted twice (first at %d); rename instances uniquely" i Task_id.pp p j
        | None ->
          info.post_at <- Some i;
          info.target <- Some target;
          info.flavour <- Some flavour;
          task_order := p :: !task_order)
     | Operation.Begin_task p ->
       let info = task_info p in
       (match info.begin_at with
        | Some j -> fail "position %d: task %a begins twice (first at %d)" i Task_id.pp p j
        | None -> ());
       (match info.post_at with
        | None -> fail "position %d: task %a begins without a prior post" i Task_id.pp p
        | Some _ -> ());
       (match info.target with
        | Some target when not (Thread_id.equal target t) ->
          fail "position %d: task %a begins on %a but was posted to %a"
            i Task_id.pp p Thread_id.pp t Thread_id.pp target
        | Some _ | None -> ());
       (match tinfo.current_task with
        | Some q -> fail "position %d: task %a begins inside task %a on %a (tasks run to completion)"
                      i Task_id.pp p Task_id.pp q Thread_id.pp t
        | None -> ());
       info.begin_at <- Some i;
       tinfo.current_task <- Some p;
       enclosing.(i) <- Some p
     | Operation.End_task p ->
       let info = task_info p in
       (match tinfo.current_task with
        | Some q when Task_id.equal p q -> ()
        | Some q -> fail "position %d: end of %a while %a is executing" i Task_id.pp p Task_id.pp q
        | None -> fail "position %d: end of %a outside any task" i Task_id.pp p);
       (match info.end_at with
        | Some j -> fail "position %d: task %a ends twice (first at %d)" i Task_id.pp p j
        | None -> ());
       info.end_at <- Some i;
       tinfo.current_task <- None;
       enclosing.(i) <- Some p
     | Operation.Enable p ->
       let info = task_info p in
       (match info.enable_at with
        | Some j -> fail "position %d: task %a enabled twice (first at %d)" i Task_id.pp p j
        | None -> info.enable_at <- Some i)
     | Operation.Cancel p ->
       let info = task_info p in
       (match info.cancel_at with
        | Some j -> fail "position %d: task %a cancelled twice (first at %d)" i Task_id.pp p j
        | None -> info.cancel_at <- Some i)
     | Operation.Thread_init | Operation.Thread_exit | Operation.Fork _
     | Operation.Join _ | Operation.Acquire _ | Operation.Release _
     | Operation.Read _ | Operation.Write _ -> ())
  done;
  let task_infos =
    Hashtbl.fold
      (fun _ (p, info) acc -> Task_id.Map.add p info acc)
      task_infos Task_id.Map.empty
  and thread_infos =
    Hashtbl.fold
      (fun _ (t, info) acc -> Thread_id.Map.add t info acc)
      thread_infos Thread_id.Map.empty
  in
  { events
  ; enclosing
  ; task_infos
  ; thread_infos
  ; task_order = List.rev !task_order
  ; thread_order = List.rev !thread_order
  }

let of_events events =
  match build (Array.of_list events) with
  | trace -> Ok trace
  | exception Ill_formed msg -> Error msg

let of_events_exn events =
  match of_events events with
  | Ok trace -> trace
  | Error msg -> invalid_arg ("Trace.of_events_exn: " ^ msg)

let length t = Array.length t.events

let get t i =
  if i < 0 || i >= length t then
    invalid_arg (Printf.sprintf "Trace.get: index %d out of bounds" i);
  t.events.(i)

let op t i = (get t i).op
let thread t i = (get t i).thread
let events t = Array.to_list t.events
let iteri f t = Array.iteri f t.events

let enclosing_task t i =
  if i < 0 || i >= length t then
    invalid_arg (Printf.sprintf "Trace.enclosing_task: index %d out of bounds" i);
  t.enclosing.(i)

let threads t = t.thread_order

let thread_info_opt t tid = Thread_id.Map.find_opt tid t.thread_infos

let has_queue t tid =
  match thread_info_opt t tid with
  | Some info -> Option.is_some info.attach_at
  | None -> false

let loop_index t tid =
  match thread_info_opt t tid with
  | Some info -> info.loop_at
  | None -> None

let tasks t = t.task_order
let task_info_opt t p = Task_id.Map.find_opt p t.task_infos
let post_index t p = Option.bind (task_info_opt t p) (fun i -> i.post_at)
let begin_index t p = Option.bind (task_info_opt t p) (fun i -> i.begin_at)
let end_index t p = Option.bind (task_info_opt t p) (fun i -> i.end_at)
let enable_index t p = Option.bind (task_info_opt t p) (fun i -> i.enable_at)
let cancel_index t p = Option.bind (task_info_opt t p) (fun i -> i.cancel_at)
let post_target t p = Option.bind (task_info_opt t p) (fun i -> i.target)
let post_flavour t p = Option.bind (task_info_opt t p) (fun i -> i.flavour)

let remove_cancelled t =
  let cancelled p =
    match cancel_index t p, begin_index t p with
    | Some _, None -> true
    | Some c, Some b -> c < b
    | None, _ -> false
  in
  let keep i e =
    match e.op with
    | Operation.Cancel _ -> false
    | Operation.Post { task = p; _ } -> not (cancelled p)
    | Operation.Thread_init | Operation.Thread_exit | Operation.Fork _
    | Operation.Join _ | Operation.Attach_queue | Operation.Loop_on_queue
    | Operation.Begin_task _ | Operation.End_task _ | Operation.Acquire _
    | Operation.Release _ | Operation.Read _ | Operation.Write _
    | Operation.Enable _ ->
      (match t.enclosing.(i) with
       | Some p -> not (cancelled p)
       | None -> true)
  in
  let kept = ref [] in
  Array.iteri (fun i e -> if keep i e then kept := e :: !kept) t.events;
  build (Array.of_list (List.rev !kept))

type stats =
  { trace_length : int
  ; fields : int
  ; threads_without_queue : int
  ; threads_with_queue : int
  ; async_tasks : int
  }

let stats t =
  let fields = Hashtbl.create 64 in
  Array.iter
    (fun e ->
       match Operation.accessed_location e.op with
       | Some m -> Hashtbl.replace fields (Ident.Location.field_key m) ()
       | None -> ())
    t.events;
  let with_q, without_q =
    List.partition (fun tid -> has_queue t tid) t.thread_order
  in
  { trace_length = length t
  ; fields = Hashtbl.length fields
  ; threads_without_queue = List.length without_q
  ; threads_with_queue = List.length with_q
  ; async_tasks = List.length t.task_order
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "length=%d fields=%d threads(w/o Q)=%d threads(w/ Q)=%d async tasks=%d"
    s.trace_length s.fields s.threads_without_queue s.threads_with_queue
    s.async_tasks

let pp ppf t =
  iteri
    (fun i e -> Format.fprintf ppf "%4d  %a@." i pp_event e)
    t
