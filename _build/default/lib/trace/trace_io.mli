(** Textual trace format.

    The Trace Generator of the real DroidRacer logs operations to a file
    that the Race Detector analyses offline (Section 5); this module is
    the corresponding on-disk format.  One operation per line:

    {v
    # comment
    t1 threadinit
    t1 attachq
    t1 looponq
    t0 post LAUNCH_ACTIVITY#0 t1
    t0 post REFRESH#0 t1 delay=500
    t1 begin LAUNCH_ACTIVITY#0
    t1 write DwFileAct.isActivityDestroyed@1
    t1 acquire dbLock
    t1 enable onDestroy#0
    v}

    Blank lines and [#] comments are ignored.  [print] then [parse] is
    the identity on traces (property-tested). *)

val print : Format.formatter -> Trace.t -> unit

val to_string : Trace.t -> string

val parse_event : string -> (Trace.event option, string) result
(** Parses one line; [Ok None] for blank/comment lines. *)

val parse : string -> (Trace.t, string) result
(** Parses a whole trace from a string.  Errors are prefixed with the
    1-based line number. *)

val load : string -> (Trace.t, string) result
(** Reads a trace from the named file. *)

val save : string -> Trace.t -> unit
(** Writes a trace to the named file. *)
