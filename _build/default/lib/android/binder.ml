open! Import

type t =
  { pool : Ident.Thread_id.t array
  ; next_index : int
  }

let create ~size ~first_tid =
  if size < 1 then invalid_arg "Binder.create: empty pool";
  { pool = Array.init size (fun i -> Ident.Thread_id.make (first_tid + i))
  ; next_index = 0
  }

let threads t = Array.to_list t.pool

let next t =
  (t.pool.(t.next_index), { t with next_index = (t.next_index + 1) mod Array.length t.pool })
