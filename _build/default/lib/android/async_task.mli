(** The AsyncTask protocol (Section 2, Figure 2).

    [execute] runs [onPreExecute] synchronously on the calling thread,
    forks a background thread for [doInBackground], turns every
    [publishProgress] into an [onProgressUpdate] task posted back to the
    caller's thread, and finally posts [onPostExecute] there.  The
    phases below let the interpreter track where an AsyncTask instance
    stands and which posts remain to be issued. *)

type phase =
  | Pre_execute  (** onPreExecute running synchronously on the caller *)
  | In_background  (** doInBackground running on the forked thread *)
  | Awaiting_post_execute  (** background done; onPostExecute pending *)
  | Finished

val phase_name : phase -> string

val pp_phase : Format.formatter -> phase -> unit

type t

val create : name:string -> t
(** A fresh instance; task and callback names derive from [name]. *)

val name : t -> string

val phase : t -> phase

val advance : t -> (t, string) result
(** Moves to the next phase in protocol order; [Error] from
    [Finished]. *)

val progress_callback_name : t -> int -> string
(** Name of the [n]-th onProgressUpdate callback of this instance. *)

val post_execute_callback_name : t -> string

val background_thread_name : t -> string
