type activity_callback =
  | On_create
  | On_start
  | On_resume
  | On_pause
  | On_stop
  | On_restart
  | On_destroy

let activity_callback_name = function
  | On_create -> "onCreate"
  | On_start -> "onStart"
  | On_resume -> "onResume"
  | On_pause -> "onPause"
  | On_stop -> "onStop"
  | On_restart -> "onRestart"
  | On_destroy -> "onDestroy"

let activity_callback_equal a b =
  match a, b with
  | On_create, On_create
  | On_start, On_start
  | On_resume, On_resume
  | On_pause, On_pause
  | On_stop, On_stop
  | On_restart, On_restart
  | On_destroy, On_destroy -> true
  | ( ( On_create | On_start | On_resume | On_pause | On_stop | On_restart
      | On_destroy )
    , _ ) -> false

let pp_activity_callback ppf c =
  Format.pp_print_string ppf (activity_callback_name c)

type activity_state =
  | Launched
  | Created
  | Started
  | Running
  | Paused
  | Stopped
  | Destroyed

let activity_state_equal a b =
  match a, b with
  | Launched, Launched
  | Created, Created
  | Started, Started
  | Running, Running
  | Paused, Paused
  | Stopped, Stopped
  | Destroyed, Destroyed -> true
  | (Launched | Created | Started | Running | Paused | Stopped | Destroyed), _
    -> false

let pp_activity_state ppf s =
  Format.pp_print_string ppf
    (match s with
     | Launched -> "launched"
     | Created -> "created"
     | Started -> "started"
     | Running -> "running"
     | Paused -> "paused"
     | Stopped -> "stopped"
     | Destroyed -> "destroyed")

let initial_activity_state = Launched

(* The may-successor sets of Figure 8, completed with the onPause →
   onResume return edge of the full Android lifecycle. *)
let activity_successors = function
  | Launched -> [ On_create ]
  | Created -> [ On_start ]
  | Started -> [ On_resume; On_stop ]
  | Running -> [ On_pause ]
  | Paused -> [ On_resume; On_stop ]
  | Stopped -> [ On_restart; On_destroy ]
  | Destroyed -> []

let apply_callback = function
  | On_create -> Created
  | On_start -> Started
  | On_resume -> Running
  | On_pause -> Paused
  | On_stop -> Stopped
  | On_restart -> Created  (* onRestart is followed by onStart *)
  | On_destroy -> Destroyed

let activity_step state callback =
  if List.exists (activity_callback_equal callback) (activity_successors state)
  then Ok (apply_callback callback)
  else
    Error
      (Format.asprintf "%a may not follow the %a state" pp_activity_callback
         callback pp_activity_state state)

let launch_sequence = [ On_create; On_start; On_resume ]
let relaunch_sequence = [ On_restart; On_start; On_resume ]
let teardown_sequence = [ On_pause; On_stop; On_destroy ]

type service_callback =
  | Svc_create
  | Svc_start_command
  | Svc_destroy

let service_callback_name = function
  | Svc_create -> "onCreateService"
  | Svc_start_command -> "onStartCommand"
  | Svc_destroy -> "onDestroyService"

type service_state =
  | Svc_new
  | Svc_created
  | Svc_started
  | Svc_destroyed

let initial_service_state = Svc_new

let service_successors = function
  | Svc_new -> [ Svc_create ]
  | Svc_created -> [ Svc_start_command ]
  | Svc_started -> [ Svc_start_command; Svc_destroy ]
  | Svc_destroyed -> []

let service_step state callback =
  let eq a b =
    match a, b with
    | Svc_create, Svc_create
    | Svc_start_command, Svc_start_command
    | Svc_destroy, Svc_destroy -> true
    | (Svc_create | Svc_start_command | Svc_destroy), _ -> false
  in
  if List.exists (eq callback) (service_successors state) then
    Ok
      (match callback with
       | Svc_create -> Svc_created
       | Svc_start_command -> Svc_started
       | Svc_destroy -> Svc_destroyed)
  else
    Error
      (Printf.sprintf "%s is not permitted in the current service state"
         (service_callback_name callback))

type receiver_callback = On_receive

let receiver_callback_name On_receive = "onReceive"
