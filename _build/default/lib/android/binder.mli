open! Import

(** The binder thread pool.

    Lifecycle work scheduled by ActivityManagerService reaches the
    application as asynchronous posts performed by one of the process's
    binder threads (Section 2.2).  Successive transactions may be served
    by {e different} pool threads, so two lifecycle posts are not
    program-ordered — which is exactly why the runtime model needs
    [enable] operations to recover their causality. *)

type t

val create : size:int -> first_tid:int -> t
(** A pool of [size] binder threads with consecutive thread ids starting
    at [first_tid].
    @raise Invalid_argument if [size < 1]. *)

val threads : t -> Ident.Thread_id.t list

val next : t -> Ident.Thread_id.t * t
(** The binder thread serving the next transaction (round-robin, so
    consecutive transactions land on different threads whenever the pool
    has more than one). *)
