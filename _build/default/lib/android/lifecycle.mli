(** Component lifecycle state machines (Section 4.2, Figure 8).

    The runtime environment drives each component of an application
    through a fixed sequence of callbacks.  Solid edges of Figure 8 are
    {e must} happen-after constraints, dashed edges {e may} happen-after:
    after a callback completes, exactly its may-successors become
    eligible — these are the points where the instrumented runtime emits
    [enable] operations.

    Besides activities, the paper's implementation handles Services and
    Broadcast Receivers; their (simpler) machines are here too. *)

(** Activity lifecycle callbacks. *)
type activity_callback =
  | On_create
  | On_start
  | On_resume
  | On_pause
  | On_stop
  | On_restart
  | On_destroy

val activity_callback_name : activity_callback -> string

val activity_callback_equal : activity_callback -> activity_callback -> bool

val pp_activity_callback : Format.formatter -> activity_callback -> unit

(** States of an activity (the grey nodes of Figure 8). *)
type activity_state =
  | Launched
  | Created  (** after onCreate *)
  | Started  (** after onStart, not in the foreground yet *)
  | Running  (** after onResume *)
  | Paused
  | Stopped
  | Destroyed

val activity_state_equal : activity_state -> activity_state -> bool

val pp_activity_state : Format.formatter -> activity_state -> unit

val initial_activity_state : activity_state

val activity_step :
  activity_state -> activity_callback -> (activity_state, string) result
(** Applies a callback to the machine; [Error] explains why the callback
    is not permitted in the state (a must/may-happen-after violation). *)

val activity_successors : activity_state -> activity_callback list
(** The callbacks that may happen next from a state: the [enable] set the
    runtime publishes after reaching it. *)

val launch_sequence : activity_callback list
(** The callbacks run synchronously by the LAUNCH_ACTIVITY handler:
    onCreate, onStart, onResume (Section 2.2). *)

val relaunch_sequence : activity_callback list
(** Return to the foreground from [Stopped]: onRestart, onStart,
    onResume. *)

val teardown_sequence : activity_callback list
(** Leaving the screen for good: onPause, onStop, onDestroy. *)

(** {1 Services} *)

type service_callback =
  | Svc_create
  | Svc_start_command
  | Svc_destroy

val service_callback_name : service_callback -> string

type service_state =
  | Svc_new
  | Svc_created
  | Svc_started
  | Svc_destroyed

val initial_service_state : service_state

val service_step :
  service_state -> service_callback -> (service_state, string) result

val service_successors : service_state -> service_callback list

(** {1 Broadcast receivers} *)

type receiver_callback = On_receive

val receiver_callback_name : receiver_callback -> string
