type phase =
  | Pre_execute
  | In_background
  | Awaiting_post_execute
  | Finished

let phase_name = function
  | Pre_execute -> "onPreExecute"
  | In_background -> "doInBackground"
  | Awaiting_post_execute -> "awaiting onPostExecute"
  | Finished -> "finished"

let pp_phase ppf p = Format.pp_print_string ppf (phase_name p)

type t =
  { name : string
  ; phase : phase
  }

let create ~name = { name; phase = Pre_execute }
let name t = t.name
let phase t = t.phase

let advance t =
  match t.phase with
  | Pre_execute -> Ok { t with phase = In_background }
  | In_background -> Ok { t with phase = Awaiting_post_execute }
  | Awaiting_post_execute -> Ok { t with phase = Finished }
  | Finished -> Error "the AsyncTask already finished"

let progress_callback_name t n = Printf.sprintf "%s.onProgressUpdate%d" t.name n
let post_execute_callback_name t = t.name ^ ".onPostExecute"
let background_thread_name t = t.name ^ ".bg"
