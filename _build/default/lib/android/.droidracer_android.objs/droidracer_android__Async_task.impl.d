lib/android/async_task.ml: Format Printf
