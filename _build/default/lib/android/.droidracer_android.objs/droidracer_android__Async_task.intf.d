lib/android/async_task.mli: Format
