lib/android/import.ml: Droidracer_trace
