lib/android/binder.mli: Ident Import
