lib/android/lifecycle.ml: Format List Printf
