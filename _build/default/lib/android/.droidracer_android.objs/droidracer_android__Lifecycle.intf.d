lib/android/lifecycle.mli: Format
