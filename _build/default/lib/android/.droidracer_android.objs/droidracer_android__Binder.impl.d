lib/android/binder.ml: Array Ident Import
