open! Import

module Thread_id = Ident.Thread_id
module Task_id = Ident.Task_id
module Lock_id = Ident.Lock_id

type thread_phase = Created | Running | Finished

type t =
  { phases : thread_phase Thread_id.Map.t
  ; looping : Thread_id.Set.t
  ; queues : Queue_model.t Thread_id.Map.t
  ; executing : Task_id.t Thread_id.Map.t
  ; locks : (Thread_id.t * int) Lock_id.Map.t  (** holder and hold count *)
  ; enabled : Task_id.Set.t
  }

let initial =
  { phases = Thread_id.Map.empty
  ; looping = Thread_id.Set.empty
  ; queues = Thread_id.Map.empty
  ; executing = Thread_id.Map.empty
  ; locks = Lock_id.Map.empty
  ; enabled = Task_id.Set.empty
  }

let phase s t = Thread_id.Map.find_opt t s.phases

let is_running s t =
  match phase s t with
  | Some Running -> true
  | Some (Created | Finished) | None -> false

let is_looping s t = Thread_id.Set.mem t s.looping
let queue s t = Thread_id.Map.find_opt t s.queues
let executing s t = Thread_id.Map.find_opt t s.executing

let all_queues s = Thread_id.Map.bindings s.queues

let lock_holder s l =
  Option.map fst (Lock_id.Map.find_opt l s.locks)

let locks_of s t =
  Lock_id.Map.fold
    (fun l (holder, _) acc -> if Thread_id.equal holder t then l :: acc else acc)
    s.locks []
  |> List.rev

let enabled_tasks s = Task_id.Set.elements s.enabled
let register_initial s t = { s with phases = Thread_id.Map.add t Created s.phases }
let add_created s t = { s with phases = Thread_id.Map.add t Created s.phases }
let set_running s t = { s with phases = Thread_id.Map.add t Running s.phases }
let set_finished s t = { s with phases = Thread_id.Map.add t Finished s.phases }

let attach_queue s t =
  { s with queues = Thread_id.Map.add t Queue_model.empty s.queues }

let set_looping s t = { s with looping = Thread_id.Set.add t s.looping }
let update_queue s t q = { s with queues = Thread_id.Map.add t q s.queues }

let set_executing s t task =
  match task with
  | Some p -> { s with executing = Thread_id.Map.add t p s.executing }
  | None -> { s with executing = Thread_id.Map.remove t s.executing }

let acquire_lock s t l =
  let entry =
    match Lock_id.Map.find_opt l s.locks with
    | Some (holder, n) ->
      assert (Thread_id.equal holder t);
      (holder, n + 1)
    | None -> (t, 1)
  in
  { s with locks = Lock_id.Map.add l entry s.locks }

let release_lock s t l =
  match Lock_id.Map.find_opt l s.locks with
  | Some (holder, n) when Thread_id.equal holder t ->
    let locks =
      if n <= 1 then Lock_id.Map.remove l s.locks
      else Lock_id.Map.add l (holder, n - 1) s.locks
    in
    Some { s with locks }
  | Some _ | None -> None

let add_enabled s p = { s with enabled = Task_id.Set.add p s.enabled }
let remove_enabled s p = { s with enabled = Task_id.Set.remove p s.enabled }
