open! Import

module Thread_id = Ident.Thread_id
module Task_id = Ident.Task_id
module Lock_id = Ident.Lock_id

type violation_kind =
  | Thread_not_fresh of Thread_id.t
  | Thread_not_created of Thread_id.t
  | Thread_not_running of Thread_id.t
  | Thread_not_finished of Thread_id.t
  | Queue_missing of Thread_id.t
  | Queue_already_attached of Thread_id.t
  | Already_looping of Thread_id.t
  | Not_looping of Thread_id.t
  | Thread_busy of Thread_id.t * Task_id.t
  | Thread_idle_action of Thread_id.t
  | Task_not_executing of Task_id.t
  | Bad_dispatch of Task_id.t * string
  | Lock_held_elsewhere of Lock_id.t * Thread_id.t
  | Lock_not_held of Lock_id.t
  | Cancel_not_pending of Task_id.t

type violation =
  { position : int
  ; event : Trace.event
  ; kind : violation_kind
  }

let pp_violation_kind ppf = function
  | Thread_not_fresh t ->
    Format.fprintf ppf "forked thread %a already exists" Thread_id.pp t
  | Thread_not_created t ->
    Format.fprintf ppf "thread %a is not awaiting initialization" Thread_id.pp t
  | Thread_not_running t ->
    Format.fprintf ppf "thread %a is not running" Thread_id.pp t
  | Thread_not_finished t ->
    Format.fprintf ppf "joined thread %a has not finished" Thread_id.pp t
  | Queue_missing t ->
    Format.fprintf ppf "thread %a has no task queue" Thread_id.pp t
  | Queue_already_attached t ->
    Format.fprintf ppf "thread %a already has a task queue" Thread_id.pp t
  | Already_looping t ->
    Format.fprintf ppf "thread %a is already looping on its queue" Thread_id.pp t
  | Not_looping t ->
    Format.fprintf ppf "thread %a has not begun processing its queue" Thread_id.pp t
  | Thread_busy (t, p) ->
    Format.fprintf ppf "thread %a is still executing task %a" Thread_id.pp t
      Task_id.pp p
  | Thread_idle_action t ->
    Format.fprintf ppf
      "looping thread %a executed an operation outside any task" Thread_id.pp t
  | Task_not_executing p ->
    Format.fprintf ppf "task %a is not the executing task" Task_id.pp p
  | Bad_dispatch (p, why) ->
    Format.fprintf ppf "illegal dispatch of %a: %s" Task_id.pp p why
  | Lock_held_elsewhere (l, t) ->
    Format.fprintf ppf "lock %a is held by thread %a" Lock_id.pp l Thread_id.pp t
  | Lock_not_held l ->
    Format.fprintf ppf "lock %a is not held by the releasing thread" Lock_id.pp l
  | Cancel_not_pending p ->
    Format.fprintf ppf "cancelled task %a is not pending" Task_id.pp p

let pp_violation ppf v =
  Format.fprintf ppf "position %d (%a): %a" v.position Trace.pp_event v.event
    pp_violation_kind v.kind

let ( let* ) = Result.bind

(* A running thread precondition, shared by most rules. *)
let check_running s t =
  if State.is_running s t then Ok () else Error (Thread_not_running t)

(* Memory accesses and lock operations may not run on an idle looping
   thread: between tasks the thread sits in the looper, executing no
   application code.  Posts, enables, forks etc. are allowed while idle —
   the runtime itself performs them on the thread's behalf (e.g. the
   looper posting a UI-event handler, operation 19 of Figure 3). *)
let check_not_idle s t =
  if State.is_looping s t && Option.is_none (State.executing s t) then
    Error (Thread_idle_action t)
  else Ok ()

let apply s ({ Trace.thread = t; op } : Trace.event) =
  match op with
  | Operation.Thread_init ->
    let s =
      match State.phase s t with
      | None -> State.register_initial s t
      | Some _ -> s
    in
    (match State.phase s t with
     | Some State.Created -> Ok (State.set_running s t)
     | Some (State.Running | State.Finished) | None ->
       Error (Thread_not_created t))
  | Operation.Thread_exit ->
    let* () = check_running s t in
    Ok (State.set_finished s t)
  | Operation.Fork t' ->
    let* () = check_running s t in
    (match State.phase s t' with
     | Some _ -> Error (Thread_not_fresh t')
     | None -> Ok (State.add_created s t'))
  | Operation.Join t' ->
    let* () = check_running s t in
    (match State.phase s t' with
     | Some State.Finished -> Ok s
     | Some (State.Created | State.Running) | None ->
       Error (Thread_not_finished t'))
  | Operation.Attach_queue ->
    let* () = check_running s t in
    (match State.queue s t with
     | Some _ -> Error (Queue_already_attached t)
     | None -> Ok (State.attach_queue s t))
  | Operation.Loop_on_queue ->
    let* () = check_running s t in
    if State.is_looping s t then Error (Already_looping t)
    else
      (match State.queue s t with
       | None -> Error (Queue_missing t)
       | Some _ -> Ok (State.set_looping s t))
  | Operation.Post { task; target; flavour } ->
    let* () = check_running s t in
    let* () = check_running s target in
    (match State.queue s target with
     | None -> Error (Queue_missing target)
     | Some q -> Ok (State.update_queue s target (Queue_model.post q task flavour)))
  | Operation.Begin_task p ->
    let* () = check_running s t in
    if not (State.is_looping s t) then Error (Not_looping t)
    else
      (match State.executing s t with
       | Some q -> Error (Thread_busy (t, q))
       | None ->
         (match State.queue s t with
          | None -> Error (Queue_missing t)
          | Some q ->
            (match Queue_model.dequeue q p with
             | Error why -> Error (Bad_dispatch (p, why))
             | Ok q ->
               let s = State.update_queue s t q in
               Ok (State.set_executing s t (Some p)))))
  | Operation.End_task p ->
    let* () = check_running s t in
    (match State.executing s t with
     | Some q when Task_id.equal p q -> Ok (State.set_executing s t None)
     | Some _ | None -> Error (Task_not_executing p))
  | Operation.Acquire l ->
    let* () = check_running s t in
    let* () = check_not_idle s t in
    (match State.lock_holder s l with
     | Some holder when not (Thread_id.equal holder t) ->
       Error (Lock_held_elsewhere (l, holder))
     | Some _ | None -> Ok (State.acquire_lock s t l))
  | Operation.Release l ->
    let* () = check_running s t in
    let* () = check_not_idle s t in
    (match State.release_lock s t l with
     | Some s -> Ok s
     | None -> Error (Lock_not_held l))
  | Operation.Read _ | Operation.Write _ ->
    let* () = check_running s t in
    let* () = check_not_idle s t in
    Ok s
  | Operation.Enable p ->
    let* () = check_running s t in
    Ok (State.add_enabled s p)
  | Operation.Cancel p ->
    let* () = check_running s t in
    let cancelled =
      List.find_map
        (fun (target, q) ->
           match Queue_model.cancel q p with
           | Some q -> Some (State.update_queue s target q)
           | None -> None)
        (State.all_queues s)
    in
    (match cancelled with
     | Some s -> Ok s
     | None -> Error (Cancel_not_pending p))

let validate trace =
  let n = Trace.length trace in
  let rec go i s =
    if i >= n then Ok s
    else
      let event = Trace.get trace i in
      match apply s event with
      | Ok s -> go (i + 1) s
      | Error kind -> Error { position = i; event; kind }
  in
  go 0 State.initial

let is_valid trace = Result.is_ok (validate trace)
