open! Import

(** The transition rules of Figure 5, as an executable checker.

    [apply] implements one →-step of the transition system; [validate]
    replays a whole trace from the initial state.  Every trace emitted by
    the interpreter of {!Droidracer_appmodel} validates (this is a
    property test), and hand-written or file-loaded traces can be checked
    before analysis. *)

(** Why a transition is not enabled. *)
type violation_kind =
  | Thread_not_fresh of Ident.Thread_id.t
      (** F ORK: the forked thread already exists *)
  | Thread_not_created of Ident.Thread_id.t
      (** I NIT: [threadinit] of a thread not in C *)
  | Thread_not_running of Ident.Thread_id.t
      (** the executing thread (or a post target) is not in R *)
  | Thread_not_finished of Ident.Thread_id.t
      (** J OIN: joined thread is not in F *)
  | Queue_missing of Ident.Thread_id.t
      (** post/loopOnQ target has the zero-capacity queue ε *)
  | Queue_already_attached of Ident.Thread_id.t
  | Already_looping of Ident.Thread_id.t
  | Not_looping of Ident.Thread_id.t  (** [begin] before [loopOnQ] *)
  | Thread_busy of Ident.Thread_id.t * Ident.Task_id.t
      (** B EGIN while E(t) ≠ ⊥: tasks run to completion *)
  | Thread_idle_action of Ident.Thread_id.t
      (** a looping thread accessed memory or a lock while idle; posts,
          enables and forks are permitted (the runtime performs them on
          the thread's behalf, e.g. operation 19 of Figure 3) *)
  | Task_not_executing of Ident.Task_id.t  (** E ND of the wrong task *)
  | Bad_dispatch of Ident.Task_id.t * string
      (** B EGIN violating the queue dispatch policy of {!Queue_model} *)
  | Lock_held_elsewhere of Ident.Lock_id.t * Ident.Thread_id.t
      (** A CQUIRE of a lock held by the given other thread *)
  | Lock_not_held of Ident.Lock_id.t  (** R ELEASE without a matching hold *)
  | Cancel_not_pending of Ident.Task_id.t

type violation =
  { position : int  (** 0-based index into the trace; -1 from [apply] *)
  ; event : Trace.event
  ; kind : violation_kind
  }

val pp_violation_kind : Format.formatter -> violation_kind -> unit

val pp_violation : Format.formatter -> violation -> unit

val apply : State.t -> Trace.event -> (State.t, violation_kind) result
(** One transition.  [threadinit] of a thread never seen before is
    treated as an initial thread of the application (registered in C on
    the fly); see {!State.initial}. *)

val validate : Trace.t -> (State.t, violation) result
(** Replays the trace from the initial state; returns the final state or
    the first violation. *)

val is_valid : Trace.t -> bool
