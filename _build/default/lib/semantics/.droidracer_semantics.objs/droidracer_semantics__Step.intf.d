lib/semantics/step.mli: Format Ident Import State Trace
