lib/semantics/step.ml: Format Ident Import List Operation Option Queue_model Result State Trace
