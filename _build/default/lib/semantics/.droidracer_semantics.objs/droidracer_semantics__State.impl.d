lib/semantics/state.ml: Ident Import List Option Queue_model
