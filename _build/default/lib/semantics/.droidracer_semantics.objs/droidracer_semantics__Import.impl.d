lib/semantics/import.ml: Droidracer_trace
