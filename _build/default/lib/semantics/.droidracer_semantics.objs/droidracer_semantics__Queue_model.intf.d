lib/semantics/queue_model.mli: Ident Import Operation
