lib/semantics/queue_model.ml: Format Ident Import List Operation
