lib/semantics/state.mli: Ident Import Queue_model
