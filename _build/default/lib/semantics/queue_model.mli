open! Import

(** Model of a task queue attached to a thread.

    Figure 5 of the paper equips queue objects with plain FIFO enqueue
    (⊕) and dequeue (⊖); Section 4.2 refines the picture with delayed
    posts, cancellation and posts to the front of the queue.  This module
    implements the refined queue and, crucially, the {e dispatch policy}:
    which pending tasks may legitimately be dequeued next.

    The policy mirrors the happens-before treatment of Section 4.2 so
    that scheduler (trace generation) and validator (trace acceptance)
    agree with the detector:

    - among immediate (ordinary) posts, strict FIFO;
    - a delayed post may run only after every immediate post that
      arrived before it (rule (a)) and after every earlier delayed post
      with a smaller or equal timeout (rule (b)); otherwise its firing
      time relative to other entries is non-deterministic;
    - front posts pre-empt everything else; multiple pending front posts
      dispatch most-recent-first (Android's [postAtFrontOfQueue]);
    - a cancelled entry simply disappears. *)

type t

val empty : t

val is_empty : t -> bool

val mem : t -> Ident.Task_id.t -> bool

val pending : t -> Ident.Task_id.t list
(** All pending tasks, in arrival order. *)

val post : t -> Ident.Task_id.t -> Operation.post_flavour -> t
(** @raise Invalid_argument if the task is already pending (task
    identifiers are unique). *)

val cancel : t -> Ident.Task_id.t -> t option
(** [None] when the task is not pending. *)

val eligible : t -> Ident.Task_id.t list
(** The tasks the dispatch policy allows to run next, in arrival order.
    Empty iff the queue is empty. *)

val dequeue : t -> Ident.Task_id.t -> (t, string) result
(** Removes the task if {!eligible} permits it; the error message
    explains which policy clause was violated. *)
