open! Import

module Task_id = Ident.Task_id

type entry =
  { task : Task_id.t
  ; flavour : Operation.post_flavour
  ; seq : int  (** arrival order *)
  }

type t =
  { entries : entry list  (** in arrival order *)
  ; next_seq : int
  }

let empty = { entries = []; next_seq = 0 }
let is_empty q = q.entries = []
let mem q p = List.exists (fun e -> Task_id.equal e.task p) q.entries
let pending q = List.map (fun e -> e.task) q.entries

let post q p flavour =
  if mem q p then
    invalid_arg
      (Format.asprintf "Queue_model.post: task %a already pending" Task_id.pp p);
  { entries = q.entries @ [ { task = p; flavour; seq = q.next_seq } ]
  ; next_seq = q.next_seq + 1
  }

let cancel q p =
  if mem q p then
    Some { q with entries = List.filter (fun e -> not (Task_id.equal e.task p)) q.entries }
  else None

(* The dispatch policy; see the interface for the rationale. *)
let eligible_entries q =
  let fronts =
    List.filter (fun e -> e.flavour = Operation.Front) q.entries
  in
  match List.rev fronts with
  | top :: _ -> [ top ]
  | [] ->
    let ok e =
      match e.flavour with
      | Operation.Front -> false
      | Operation.Immediate ->
        (* strict FIFO among immediate posts *)
        List.for_all
          (fun e' ->
             e'.seq >= e.seq || e'.flavour <> Operation.Immediate)
          q.entries
      | Operation.Delayed d ->
        List.for_all
          (fun e' ->
             e'.seq >= e.seq
             ||
             match e'.flavour with
             | Operation.Immediate -> false  (* rule (a) *)
             | Operation.Delayed d' -> d' > d  (* rule (b) *)
             | Operation.Front -> true)
          q.entries
    in
    List.filter ok q.entries

let eligible q = List.map (fun e -> e.task) (eligible_entries q)

let dequeue q p =
  if not (mem q p) then
    Error (Format.asprintf "task %a is not pending" Task_id.pp p)
  else if not (List.exists (fun e -> Task_id.equal e.task p) (eligible_entries q))
  then
    Error
      (Format.asprintf
         "task %a may not be dispatched yet (eligible: %a)" Task_id.pp p
         (Format.pp_print_list ~pp_sep:Format.pp_print_space Task_id.pp)
         (eligible q))
  else
    Ok { q with entries = List.filter (fun e -> not (Task_id.equal e.task p)) q.entries }
