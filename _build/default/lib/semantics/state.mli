open! Import

(** Application states of the transition system (Section 3).

    A state σ = (C, R, F, B, E, Q, L) records the created, running and
    finished threads, the threads that began processing their queues, the
    task executing on each thread, the task queues and the locks held.
    States are immutable; {!Step.apply} produces new ones. *)

type thread_phase =
  | Created  (** in C: created (or initial) but not yet scheduled *)
  | Running  (** in R *)
  | Finished  (** in F *)

type t

val initial : t
(** The empty initial state.  Initial threads of the application (the
    paper's [Threads] set) are registered on demand: a [threadinit] of a
    thread never forked is treated as an initial thread (the validator
    cannot know [Threads] for an arbitrary trace). *)

val phase : t -> Ident.Thread_id.t -> thread_phase option

val is_running : t -> Ident.Thread_id.t -> bool

val is_looping : t -> Ident.Thread_id.t -> bool
(** Whether the thread is in B, i.e. executed [loopOnQ]. *)

val queue : t -> Ident.Thread_id.t -> Queue_model.t option
(** [None] models the zero-capacity queue ε (no queue attached). *)

val executing : t -> Ident.Thread_id.t -> Ident.Task_id.t option
(** E(t): the asynchronous task currently running on [t], or [None] for
    ⊥ (idle, or a thread without a queue). *)

val all_queues : t -> (Ident.Thread_id.t * Queue_model.t) list
(** Every attached queue with its owning thread. *)

val lock_holder : t -> Ident.Lock_id.t -> Ident.Thread_id.t option

val locks_of : t -> Ident.Thread_id.t -> Ident.Lock_id.t list
(** L(t). *)

val enabled_tasks : t -> Ident.Task_id.t list
(** Tasks whose [enable] was executed but that were not yet posted. *)

(** {1 Updates (used by {!Step})} *)

val register_initial : t -> Ident.Thread_id.t -> t

val add_created : t -> Ident.Thread_id.t -> t

val set_running : t -> Ident.Thread_id.t -> t

val set_finished : t -> Ident.Thread_id.t -> t

val attach_queue : t -> Ident.Thread_id.t -> t

val set_looping : t -> Ident.Thread_id.t -> t

val update_queue : t -> Ident.Thread_id.t -> Queue_model.t -> t

val set_executing : t -> Ident.Thread_id.t -> Ident.Task_id.t option -> t

val acquire_lock : t -> Ident.Thread_id.t -> Ident.Lock_id.t -> t
(** Re-entrant: acquiring a lock already held by the same thread
    increments a hold count. *)

val release_lock : t -> Ident.Thread_id.t -> Ident.Lock_id.t -> t option
(** [None] when the thread does not hold the lock. *)

val add_enabled : t -> Ident.Task_id.t -> t

val remove_enabled : t -> Ident.Task_id.t -> t
