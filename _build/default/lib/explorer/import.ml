(* Aliases for the modules of the lower libraries; opened by every file
   of this library. *)
module Ident = Droidracer_trace.Ident
module Operation = Droidracer_trace.Operation
module Trace = Droidracer_trace.Trace
module Program = Droidracer_appmodel.Program
module Runtime = Droidracer_appmodel.Runtime
module Race = Droidracer_core.Race
module Classify = Droidracer_core.Classify
module Detector = Droidracer_core.Detector
