open! Import

type exploration =
  { runs : int
  ; distinct_traces : Trace.t list
  ; exhausted : bool
  }

(* Depth-first enumeration with canonical default-0 tails: a script is a
   prefix of explicit decisions; decisions beyond it take alternative 0.
   After running a script, every later decision with arity > 1 spawns
   sibling scripts that take alternatives 1 .. arity-1 there.  Visiting
   siblings of the *last* divergence first keeps the frontier a stack
   (classic stateless search).  [on_run] can stop the search early. *)
let enumerate ?(max_runs = 500) ~options app events ~on_run =
  let runs = ref 0 in
  let exhausted = ref true in
  let stopped = ref false in
  let rec visit script =
    if !stopped then ()
    else if !runs >= max_runs then exhausted := false
    else begin
      incr runs;
      let result =
        Runtime.run
          ~options:{ options with Runtime.policy = Runtime.Scripted script }
          app events
      in
      if on_run result then stopped := true
      else begin
        let depth = List.length script in
        let arities = result.Runtime.choice_arities in
        List.iteri
          (fun pos arity ->
             if pos >= depth && arity > 1 then
               for alt = 1 to arity - 1 do
                 (* pad with explicit zeros up to [pos], then diverge *)
                 let pad = List.init (pos - depth) (fun _ -> 0) in
                 visit (script @ pad @ [ alt ])
               done)
          arities
      end
    end
  in
  visit [];
  (!runs, !exhausted, !stopped)

let explore ?max_runs ?(options = Runtime.default_options) app events =
  let traces = ref [] in
  let trace_equal a b =
    Trace.length a = Trace.length b
    && List.for_all2 Trace.event_equal (Trace.events a) (Trace.events b)
  in
  let runs, exhausted, _ =
    enumerate ?max_runs ~options app events ~on_run:(fun result ->
      let t = result.Runtime.observed in
      if not (List.exists (trace_equal t) !traces) then traces := t :: !traces;
      false)
  in
  { runs; distinct_traces = List.rev !traces; exhausted }

type exhaustive_verdict =
  | Flipped of Runtime.run_result
  | Never_flips of int
  | Budget_exhausted of int

let verify_exhaustively ?max_runs ?(options = Runtime.default_options) ~app
    ~events ~trace ~thread_names (race : Race.t) =
  let site1 = Verify.site_of_access ~thread_names trace race.first
  and site2 = Verify.site_of_access ~thread_names trace race.second in
  let witness = ref None in
  let runs, exhausted, _ =
    enumerate ?max_runs ~options app events ~on_run:(fun result ->
      let names = result.Runtime.thread_names in
      match
        ( Verify.find_site ~thread_names:names result.Runtime.observed site1
        , Verify.find_site ~thread_names:names result.Runtime.observed site2 )
      with
      | Some p1, Some p2 when p2 < p1 ->
        witness := Some result;
        true
      | (Some _ | None), (Some _ | None) -> false)
  in
  match !witness with
  | Some result -> Flipped result
  | None -> if exhausted then Never_flips runs else Budget_exhausted runs
