open! Import

(** Exhaustive bounded schedule exploration (stateless model checking).

    The paper notes that "safety verification is undecidable for
    multi-threaded programs communicating via FIFO queues, and there are
    no software model checkers that understand this concurrency model"
    (Section 7).  For the bounded modeled applications of this
    repository the schedule tree {e is} finite, and this module
    enumerates it: every scheduling decision of {!Runtime} is a branch
    point (reported via [choice_arities]), and runs are replayed with
    the {!Runtime.Scripted} policy in depth-first order — the classic
    stateless-exploration loop.

    Two uses:

    - {!explore}: enumerate (a bounded prefix of) all schedules of an
      application under a fixed event sequence, deduplicating observed
      traces;
    - {!verify_exhaustively}: upgrade the sampling verifier of
      {!Verify} to a decision procedure on small applications — a race
      is {e definitely} a false positive when no schedule in the fully
      explored tree reorders its accesses. *)

type exploration =
  { runs : int  (** schedules executed *)
  ; distinct_traces : Trace.t list
      (** observed traces, one per distinct interleaving *)
  ; exhausted : bool
      (** the whole schedule tree fit within the budget; when false the
          enumeration is a prefix *)
  }

val explore :
  ?max_runs:int ->
  ?options:Runtime.options ->
  Program.app ->
  Runtime.ui_event list ->
  exploration
(** Depth-first enumeration of the schedule tree, bounded by [max_runs]
    (default 500) replays. *)

type exhaustive_verdict =
  | Flipped of Runtime.run_result
      (** a schedule reordering the two accesses, with its run *)
  | Never_flips of int
      (** the full tree was explored ([n] schedules): the reported order
          is enforced — a definite false positive *)
  | Budget_exhausted of int
      (** no flip within [n] explored schedules, tree not exhausted *)

val verify_exhaustively :
  ?max_runs:int ->
  ?options:Runtime.options ->
  app:Program.app ->
  events:Runtime.ui_event list ->
  trace:Trace.t ->
  thread_names:(Ident.Thread_id.t * string) list ->
  Race.t ->
  exhaustive_verdict
(** Like {!Verify.verify} but by exhaustive enumeration under the fixed
    event sequence (event-order perturbation is the sampling verifier's
    job).  The enumeration is naive — no partial-order reduction — so a
    definite [Never_flips] is only reachable for small applications;
    larger ones fall back to [Budget_exhausted], which is a sampling
    answer like the seeded verifier's. *)
