open! Import

type test_case =
  { events : Runtime.ui_event list
  ; result : Runtime.run_result
  }

type exploration =
  { cases : test_case list
  ; truncated : bool
  }

let explore ?(options = Runtime.default_options) ?(bound = 3) ?(max_cases = 200)
    ?(include_rotate = false) ?(include_intents = false) app =
  let intents =
    if include_intents then
      List.map (fun a -> Runtime.Intent a) (Program.intent_actions app)
    else []
  in
  let budget = ref max_cases in
  let truncated = ref false in
  let cases = ref [] in
  (* Depth-first: run the prefix, record it, extend by each event the
     final screen offers. *)
  let rec visit prefix =
    if !budget <= 0 then truncated := true
    else begin
      decr budget;
      let result = Runtime.run ~options app prefix in
      cases := { events = prefix; result } :: !cases;
      if List.length prefix < bound then begin
        let candidates =
          List.filter
            (fun e ->
               match e with
               | Runtime.Rotate -> include_rotate
               | Runtime.Click _ | Runtime.Back -> true
               | Runtime.Intent _ -> true)
            result.enabled_at_end
          @ intents
        in
        List.iter (fun e -> visit (prefix @ [ e ])) candidates
      end
    end
  in
  visit [];
  { cases = List.rev !cases; truncated = !truncated }

let racy_cases ?(config = Detector.default_config) exploration =
  List.filter_map
    (fun case ->
       let report = Detector.analyze ~config case.result.observed in
       match report.Detector.all_races with
       | [] -> None
       | _ :: _ -> Some (case, report))
    exploration.cases
