open! Import

(** The UI Explorer (Section 5): systematic generation of UI event
    sequences.

    The explorer runs the application, inspects the events enabled on
    the final screen, and extends the current sequence with each of
    them, depth-first, up to the bound [k].  Every extension replays its
    prefix from scratch — the database-backed backtracking-and-replay of
    the paper, with the replay database realised as the deterministic
    runtime.  Each executed sequence yields a test case whose observed
    trace can be fed to the race detector. *)

type test_case =
  { events : Runtime.ui_event list  (** the injected sequence *)
  ; result : Runtime.run_result
  }

type exploration =
  { cases : test_case list  (** in depth-first visit order *)
  ; truncated : bool  (** the [max_cases] budget was exhausted *)
  }

val explore :
  ?options:Runtime.options ->
  ?bound:int ->
  ?max_cases:int ->
  ?include_rotate:bool ->
  ?include_intents:bool ->
  Program.app ->
  exploration
(** [explore app] systematically tests [app] with event sequences of
    length at most [bound] (default 3; the paper uses 1–7).  At every
    screen the candidate events are the enabled UI handlers, BACK and —
    when [include_rotate] (default false) — screen rotation.  With
    [include_intents] (default false; an extension, the paper's tool
    "only generates UI events but not intents", Section 8) the
    candidates also include one external intent per action some
    activity filters.
    [max_cases] (default 200) bounds the total number of runs. *)

val racy_cases :
  ?config:Detector.config -> exploration -> (test_case * Detector.report) list
(** The test cases whose traces contain at least one race, with their
    reports — "for each application, DroidRacer found tests which
    manifested one or more races" (Section 6). *)
