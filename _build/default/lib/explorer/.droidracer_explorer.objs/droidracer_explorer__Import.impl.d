lib/explorer/import.ml: Droidracer_appmodel Droidracer_core Droidracer_trace
