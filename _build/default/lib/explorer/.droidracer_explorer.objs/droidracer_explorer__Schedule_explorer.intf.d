lib/explorer/schedule_explorer.mli: Ident Import Program Race Runtime Trace
