lib/explorer/verify.ml: Classify Format Ident Import List Operation Option Race Runtime String Trace
