lib/explorer/explorer.mli: Detector Import Program Runtime
