lib/explorer/schedule_explorer.ml: Import List Race Runtime Trace Verify
