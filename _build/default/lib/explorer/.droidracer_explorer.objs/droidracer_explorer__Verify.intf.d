lib/explorer/verify.mli: Format Ident Import Program Race Runtime Trace
