lib/explorer/explorer.ml: Detector Import List Program Runtime
