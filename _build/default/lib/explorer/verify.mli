open! Import

(** Race verification by schedule perturbation.

    The paper validates reported races with the DDMS debugger: a race is
    a true positive when an {e alternate ordering of the racey memory
    accesses} can be produced — by stalling threads, changing the order
    of triggering events, or altering delays (Section 6).  This module
    applies the same criterion mechanically: re-execute the application
    under many seeded schedules (and, for co-enabled races, permuted
    event orders) and look for a run in which the two accesses appear in
    the opposite order.

    Orderings enforced by mechanisms the detector cannot see — ad-hoc
    flag synchronization, natively synchronised handoffs, large timeouts,
    widgets disabled by the other handler — survive every perturbation,
    so those races never flip: they are the false positives. *)

(** A schedule-independent description of one racey access: the
    location, the kind of access, the context — the enclosing
    asynchronous task (instance stripped) or the program-defined name of
    the executing thread — and the ordinal of the access among the
    context's accesses to that location. *)
type site

val site_of_access :
  thread_names:(Ident.Thread_id.t * string) list ->
  Trace.t ->
  Race.access ->
  site

val pp_site : Format.formatter -> site -> unit

val find_site :
  thread_names:(Ident.Thread_id.t * string) list ->
  Trace.t ->
  site ->
  int option
(** Position of the site's access in another trace of the same
    application, or [None] when the access did not occur there. *)

type witness =
  { w_seed : int
  ; w_events : Runtime.ui_event list
  ; w_first : int  (** position of the originally-second access *)
  ; w_second : int  (** position of the originally-first access *)
  }

type verdict =
  | Confirmed of witness  (** an alternate ordering was produced *)
  | Not_flipped of int  (** number of perturbed runs tried *)

val is_confirmed : verdict -> bool

val verify :
  ?attempts:int ->
  ?options:Runtime.options ->
  app:Program.app ->
  events:Runtime.ui_event list ->
  trace:Trace.t ->
  thread_names:(Ident.Thread_id.t * string) list ->
  Race.t ->
  verdict
(** [verify ~app ~events ~trace ~thread_names race] re-executes [app]
    under [attempts] (default 12) perturbed schedules: seeded
    interleavings, permuted event orders ("change the order of
    triggering events") and runs with the first access's context
    stalled ("stall certain threads using breakpoints") — searching for
    a run where the two access sites of [race] (located in [trace])
    occur in the reverse order. *)
