open! Import
module Task_id = Ident.Task_id
module Thread_id = Ident.Thread_id
module Location = Ident.Location

(* Where an access executes: inside an asynchronous task (identified by
   its procedure name, instance stripped) or directly on a named
   thread.  Both are stable across schedules, unlike thread ids. *)
type context =
  | In_task of string
  | On_thread of string

type site =
  { s_location : Location.t
  ; s_is_write : bool
  ; s_context : context
  ; s_ordinal : int
  }

let context_equal a b =
  match a, b with
  | In_task n, In_task n' | On_thread n, On_thread n' -> String.equal n n'
  | (In_task _ | On_thread _), _ -> false

let context_of trace thread_names pos =
  match Trace.enclosing_task trace pos with
  | Some p -> In_task (Task_id.name p)
  | None ->
    let tid = Trace.thread trace pos in
    On_thread
      (match
         List.find_opt (fun (t, _) -> Thread_id.equal t tid) thread_names
       with
       | Some (_, name) -> name
       | None -> Thread_id.to_string tid)

(* Accesses in [trace] matching the site's location, kind and context,
   in trace order. *)
let matching_positions trace thread_names site =
  let out = ref [] in
  Trace.iteri
    (fun i (e : Trace.event) ->
       let matches =
         (match Operation.accessed_location e.op with
          | Some m -> Location.equal m site.s_location
          | None -> false)
         && Operation.is_write e.op = site.s_is_write
         && context_equal (context_of trace thread_names i) site.s_context
       in
       if matches then out := i :: !out)
    trace;
  List.rev !out

let site_of_access ~thread_names trace (a : Race.access) =
  let site =
    { s_location = a.location
    ; s_is_write = a.is_write
    ; s_context = context_of trace thread_names a.position
    ; s_ordinal = 0
    }
  in
  let positions = matching_positions trace thread_names site in
  let ordinal =
    match List.find_index (fun i -> i = a.position) positions with
    | Some n -> n
    | None -> 0
  in
  { site with s_ordinal = ordinal }

let pp_context ppf = function
  | In_task n -> Format.fprintf ppf "task %s" n
  | On_thread n -> Format.fprintf ppf "thread %s" n

let pp_site ppf s =
  Format.fprintf ppf "%s(%a)#%d in %a"
    (if s.s_is_write then "write" else "read")
    Location.pp s.s_location s.s_ordinal pp_context s.s_context

let find_site ~thread_names trace site =
  List.nth_opt (matching_positions trace thread_names site) site.s_ordinal

type witness =
  { w_seed : int
  ; w_events : Runtime.ui_event list
  ; w_first : int
  ; w_second : int
  }

type verdict =
  | Confirmed of witness
  | Not_flipped of int

let is_confirmed = function
  | Confirmed _ -> true
  | Not_flipped _ -> false

(* Candidate event orders: the original, each adjacent transposition,
   and the full reverse — "change the order of triggering events". *)
let event_orders events =
  let swaps =
    List.init
      (max 0 (List.length events - 1))
      (fun i ->
         List.mapi
           (fun j e ->
              if j = i then List.nth events (i + 1)
              else if j = i + 1 then List.nth events i
              else e)
           events)
  in
  let dedup orders =
    List.fold_left
      (fun acc o -> if List.mem o acc then acc else acc @ [ o ])
      [] orders
  in
  dedup ((events :: swaps) @ [ List.rev events ])

let context_name = function
  | In_task n | On_thread n -> n

let verify ?(attempts = 12) ?(options = Runtime.default_options) ~app ~events
    ~trace ~thread_names (race : Race.t) =
  let site1 = site_of_access ~thread_names trace race.first
  and site2 = site_of_access ~thread_names trace race.second in
  let orders = event_orders events in
  (* Stalling the first access's context — or any context along its
     chain of posts, since a FIFO queue cannot reorder tasks that are
     already enqueued — is the model-level version of the paper's
     "stall certain threads using breakpoints". *)
  let chain_contexts =
    List.map
      (fun pos -> context_name (context_of trace thread_names pos))
      (Classify.chain trace race.first.position)
  in
  let holds =
    List.fold_left
      (fun acc h -> if List.mem h acc then acc else acc @ [ h ])
      []
      ([] :: [ context_name site1.s_context ]
       :: List.map (fun c -> [ c ]) chain_contexts)
  in
  let tried = ref 0 in
  let result = ref None in
  let try_run seed order hold =
    if Option.is_none !result then begin
      incr tried;
      match
        Runtime.run
          ~options:{ options with policy = Runtime.Seeded seed; hold }
          app order
      with
      | r ->
        let names = r.Runtime.thread_names in
        (match
           ( find_site ~thread_names:names r.Runtime.observed site1
           , find_site ~thread_names:names r.Runtime.observed site2 )
         with
         | Some p1, Some p2 when p2 < p1 ->
           result :=
             Some { w_seed = seed; w_events = order; w_first = p2; w_second = p1 }
         | (Some _ | None), (Some _ | None) -> ())
      | exception Runtime.Stuck _ -> ()
    end
  in
  let variants = List.concat_map (fun o -> List.map (fun h -> (o, h)) holds) orders in
  let per_variant = max 1 (attempts / List.length variants) in
  List.iter
    (fun (order, hold) ->
       for seed = 1 to per_variant do
         try_run seed order hold
       done)
    variants;
  match !result with
  | Some w -> Confirmed w
  | None -> Not_flipped !tried
