open! Import

(** Race-preserving trace minimization (delta debugging).

    The paper closes by asking for "better debugging support"
    (Section 8).  A reported race in a 100k-operation trace is hard to
    read; this module greedily deletes whole asynchronous tasks and
    whole threads — the removal units that keep a trace structurally
    well-formed — while the race persists, and returns the shrunken
    trace together with the race repositioned into it.

    Removal is closed over posting: deleting a task also deletes every
    task posted from inside it, and deleting a thread deletes the tasks
    it posted and the tasks that ran on it.  The shrunken trace is
    structurally well-formed by construction; it need not satisfy the
    full Figure 5 semantics (e.g. a [join] may survive its thread),
    which the detector does not require. *)

val minimize : Trace.t -> Race.t -> Trace.t * Race.t
(** [minimize trace race] requires [race] to have been detected on
    [trace] by {!Detector.analyze} (in particular, [trace] is
    cancellation-filtered and the race positions refer to it).  The
    result still exhibits the race: the same two accesses conflict and
    remain unordered under the default happens-before relation.

    @raise Invalid_argument when the race is not a race of [trace]. *)
