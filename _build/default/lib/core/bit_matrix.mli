(** Square boolean matrices with bitset rows.

    The happens-before computation stores the relation ⪯ as an n×n
    matrix and spends its time OR-ing rows into each other, so rows are
    packed 63 bits per word.  Masked ORs implement the thread-sensitive
    transitivity restriction (Section 4.1). *)

type t

val create : int -> t
(** [create n] is the n×n all-false matrix. *)

val size : t -> int

val get : t -> int -> int -> bool

val set : t -> int -> int -> unit

val count : t -> int
(** Number of true entries. *)

val or_row : t -> dst:int -> src:int -> bool
(** [or_row m ~dst ~src] ORs row [src] into row [dst]; true iff row
    [dst] changed. *)

(** Bit masks over column indices. *)
module Mask : sig
  type t

  val create : int -> t

  val set : t -> int -> unit

  val mem : t -> int -> bool
end

val or_row_masked : t -> dst:int -> src:int -> mask:Mask.t -> bool
(** ORs [src ∧ mask] into [dst]; true iff [dst] changed. *)

val or_row_masked_compl : t -> dst:int -> src:int -> mask:Mask.t -> bool
(** ORs [src ∧ ¬mask] into [dst]; true iff [dst] changed. *)

val iter_row : t -> int -> (int -> unit) -> unit
(** Calls the function on every set column of the row, ascending. *)
