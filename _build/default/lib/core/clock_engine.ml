open! Import
module Thread_id = Ident.Thread_id
module Task_id = Ident.Task_id
module Lock_id = Ident.Lock_id
module Location = Ident.Location
module Vc = Vector_clock

type stats =
  { slots : int
  ; comparisons : int
  }

(* A completed task on some thread, remembered for FIFO/NOPRE checks at
   later [begin]s on the same thread. *)
type completed =
  { c_slot : int
  ; c_post_clock : Vc.t
  ; c_end_clock : Vc.t
  ; c_flavour : Operation.post_flavour
  }

type thread_ctx =
  { mutable slot : int  (** current clock slot *)
  ; mutable clock : Vc.t
  ; mutable in_task : Task_id.t option
  ; mutable loop_clock : Vc.t option  (** clock at [loopOnQ] *)
  ; mutable attach_clock : Vc.t option
  ; mutable completed : completed list
  }

type pending_post =
  { p_clock : Vc.t  (** clock of the post operation *)
  ; p_flavour : Operation.post_flavour
  }

type access_record =
  { a_slot : int
  ; a_time : int
  ; a_access : Race.access
  }

let fifo_flavours_ok f1 f2 =
  match (f1 : Operation.post_flavour), (f2 : Operation.post_flavour) with
  | Immediate, (Immediate | Delayed _) -> true
  | Delayed d1, Delayed d2 -> d1 <= d2
  | Delayed _, Immediate -> false
  | Front, (Immediate | Delayed _ | Front) -> false
  | (Immediate | Delayed _), Front -> false

let detect trace =
  let next_slot = ref 0 in
  let fresh_slot () =
    let s = !next_slot in
    incr next_slot;
    s
  in
  let threads : (int, thread_ctx) Hashtbl.t = Hashtbl.create 16 in
  let ctx tid =
    match Hashtbl.find_opt threads (Thread_id.to_int tid) with
    | Some c -> c
    | None ->
      let c =
        { slot = fresh_slot ()
        ; clock = Vc.empty
        ; in_task = None
        ; loop_clock = None
        ; attach_clock = None
        ; completed = []
        }
      in
      Hashtbl.add threads (Thread_id.to_int tid) c;
      c
  in
  (* Clocks published at synchronization sources. *)
  let fork_clocks : (int, Vc.t) Hashtbl.t = Hashtbl.create 8 in
  let exit_clocks : (int, Vc.t) Hashtbl.t = Hashtbl.create 8 in
  let lock_clocks : (string, Vc.t) Hashtbl.t = Hashtbl.create 8 in
  let enable_clocks : (string, Vc.t) Hashtbl.t = Hashtbl.create 16 in
  let posts : (string, pending_post) Hashtbl.t = Hashtbl.create 64 in
  (* Task slots, for the NOPRE lookup. *)
  let task_slots : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let history : (string, access_record list ref) Hashtbl.t = Hashtbl.create 64 in
  let races = ref [] in
  let comparisons = ref 0 in
  let record_access c i location is_write tid =
    let access =
      { Race.position = i
      ; location
      ; is_write
      ; thread = tid
      ; task = c.in_task
      }
    in
    let key = Location.to_string location in
    let prev =
      match Hashtbl.find_opt history key with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.add history key l;
        l
    in
    List.iter
      (fun r ->
         if r.a_access.Race.is_write || is_write then begin
           incr comparisons;
           if Vc.get c.clock r.a_slot < r.a_time then
             races := { Race.first = r.a_access; second = access } :: !races
         end)
      !prev;
    prev :=
      { a_slot = c.slot; a_time = Vc.get c.clock c.slot; a_access = access }
      :: !prev
  in
  Trace.iteri
    (fun i (e : Trace.event) ->
       let c = ctx e.thread in
       (* Every operation advances the executing context's local time. *)
       c.clock <- Vc.tick c.clock c.slot;
       match e.op with
       | Operation.Thread_init ->
         (match Hashtbl.find_opt fork_clocks (Thread_id.to_int e.thread) with
          | Some vc -> c.clock <- Vc.merge c.clock vc
          | None -> ())
       | Operation.Thread_exit ->
         Hashtbl.replace exit_clocks (Thread_id.to_int e.thread) c.clock
       | Operation.Fork t' ->
         Hashtbl.replace fork_clocks (Thread_id.to_int t') c.clock
       | Operation.Join t' ->
         (match Hashtbl.find_opt exit_clocks (Thread_id.to_int t') with
          | Some vc -> c.clock <- Vc.merge c.clock vc
          | None -> ())
       | Operation.Attach_queue -> c.attach_clock <- Some c.clock
       | Operation.Loop_on_queue -> c.loop_clock <- Some c.clock
       | Operation.Post { task; target; flavour } ->
         (* ENABLE-*: the post happens after the task's enable. *)
         (match Hashtbl.find_opt enable_clocks (Task_id.to_string task) with
          | Some vc -> c.clock <- Vc.merge c.clock vc
          | None -> ());
         (* ATTACH-Q-MT: a cross-thread post happens after the target's
            attachQ. *)
         if not (Thread_id.equal e.thread target) then
           (match (ctx target).attach_clock with
            | Some vc -> c.clock <- Vc.merge c.clock vc
            | None -> ());
         Hashtbl.replace posts (Task_id.to_string task)
           { p_clock = c.clock; p_flavour = flavour }
       | Operation.Begin_task p ->
         let slot = fresh_slot () in
         Hashtbl.replace task_slots (Task_id.to_string p) slot;
         let base =
           match c.loop_clock with
           | Some vc -> vc
           | None -> Vc.empty
         in
         let clock = ref base in
         (match Hashtbl.find_opt posts (Task_id.to_string p) with
          | Some post ->
            clock := Vc.merge !clock post.p_clock;
            (* FIFO and NOPRE against every completed task of this
               thread. *)
            List.iter
              (fun comp ->
                 let fifo =
                   fifo_flavours_ok comp.c_flavour post.p_flavour
                   && Vc.leq comp.c_post_clock post.p_clock
                 in
                 let nopre () = Vc.get post.p_clock comp.c_slot >= 1 in
                 if fifo || nopre () then
                   clock := Vc.merge !clock comp.c_end_clock)
              c.completed
          | None -> ());
         c.slot <- slot;
         c.clock <- Vc.tick !clock slot;
         c.in_task <- Some p
       | Operation.End_task p ->
         (match Hashtbl.find_opt posts (Task_id.to_string p) with
          | Some post ->
            c.completed <-
              { c_slot = c.slot
              ; c_post_clock = post.p_clock
              ; c_end_clock = c.clock
              ; c_flavour = post.p_flavour
              }
              :: c.completed
          | None -> ());
         c.in_task <- None;
         (* The idle looper segment: only the pre-loop knowledge of the
            thread survives — two tasks on one thread are unordered
            unless FIFO or NOPRE re-orders them at the next begin, and
            likewise a later [threadexit] is ordered only after the
            thread's pre-loop operations. *)
         c.slot <- fresh_slot ();
         c.clock <-
           (match c.loop_clock with
            | Some vc -> vc
            | None -> Vc.empty)
       | Operation.Acquire l ->
         (match Hashtbl.find_opt lock_clocks (Lock_id.to_string l) with
          | Some vc -> c.clock <- Vc.merge c.clock vc
          | None -> ())
       | Operation.Release l ->
         let merged =
           match Hashtbl.find_opt lock_clocks (Lock_id.to_string l) with
           | Some vc -> Vc.merge vc c.clock
           | None -> c.clock
         in
         Hashtbl.replace lock_clocks (Lock_id.to_string l) merged
       | Operation.Enable p ->
         Hashtbl.replace enable_clocks (Task_id.to_string p) c.clock
       | Operation.Cancel _ -> ()
       | Operation.Read m -> record_access c i m false e.thread
       | Operation.Write m -> record_access c i m true e.thread)
    trace;
  let races =
    List.sort
      (fun (r1 : Race.t) r2 ->
         match Int.compare r1.first.position r2.first.position with
         | 0 -> Int.compare r1.second.position r2.second.position
         | c -> c)
      !races
  in
  (races, { slots = !next_slot; comparisons = !comparisons })
