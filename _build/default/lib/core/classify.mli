open! Import

(** Classification of data races (Section 4.3).

    To help debugging, races are categorised by analysing the chain of
    posts that led to each racey access.  [chain αᵢ] is the maximal
    sequence of post operations ⟨β₁ … βₘ⟩ with callee(βⱼ) = task(βⱼ₊₁)
    and callee(βₘ) = task(αᵢ): the outermost post is the one performed
    outside any asynchronous task.

    A race between operations of different threads is {e multi-threaded};
    single-threaded races are checked against the co-enabled, delayed and
    cross-posted criteria in that order (the order the paper presents
    them), and fall back to {e unknown}. *)

type category =
  | Multithreaded
  | Co_enabled
      (** the most recent environment-event posts of the two chains are
          unordered: the two triggering events can happen in parallel *)
  | Delayed_race
      (** the chains disagree on their most recent delayed posts: the
          race hinges on timing constraints *)
  | Cross_posted
      (** the chains disagree on their most recent posts performed on a
          thread other than the racing thread *)
  | Unknown

val category_equal : category -> category -> bool

val pp_category : Format.formatter -> category -> unit

val category_name : category -> string

val chain : Trace.t -> int -> int list
(** [chain trace i] is the paper's chain(αᵢ) as trace positions of post
    operations, outermost first.  Empty when position [i] is not inside
    an asynchronous task. *)

val classify :
  Trace.t -> hb_or_eq:(int -> int -> bool) -> Race.t -> category
(** [hb_or_eq] must be the reflexive happens-before oracle used for
    detection. *)
