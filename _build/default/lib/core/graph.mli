open! Import

(** Trace graphs: the node set on which happens-before is computed.

    The Race Detector "constructs a graph representation of the trace
    with operations as nodes"; as the optimisation of Section 6,
    contiguous memory accesses without any intervening synchronization
    operation are modelled by a single node, which reduced the node count
    to 1.4–24.8 % of the trace length in the paper's experiments without
    sacrificing precision.

    A maximal run of [read]/[write] operations of one thread, all inside
    the same asynchronous task (or all outside any task), with no other
    operation of that thread in between, forms one {e access block}
    node; every other operation is its own {e anchor} node.  Accesses in
    one block share their happens-before constraints with every other
    node, because no happens-before rule starts or ends at a plain
    access: orderings enter and leave a thread only at synchronization
    anchors.  [enable] operations are anchors (the ENABLE rules start
    edges there), so they break access runs. *)

type node_kind =
  | Anchor of int  (** trace position of a non-access operation *)
  | Access_block of int list  (** trace positions of the accesses, ascending *)

type t

val build : coalesce:bool -> Trace.t -> t
(** With [~coalesce:false] every operation is its own node (used by the
    ablation benchmarks and the differential tests). *)

val trace : t -> Trace.t

val node_count : t -> int

val kind : t -> int -> node_kind

val node_of_pos : t -> int -> int
(** The node containing a trace position. *)

val thread_of_node : t -> int -> Ident.Thread_id.t

val task_of_node : t -> int -> Ident.Task_id.t option
(** The enclosing asynchronous task shared by all positions of the
    node. *)

val first_pos : t -> int -> int

val last_pos : t -> int -> int

val nodes_of_thread : t -> Ident.Thread_id.t -> int list
(** Nodes executed by the thread, ascending. *)

val nodes_of_task : t -> Ident.Task_id.t -> int list
(** Nodes belonging to the task's execution, ascending ([begin] and
    [end] included). *)

val thread_index : t -> Ident.Thread_id.t -> int
(** A dense 0-based index for the thread, for mask tables. *)

val thread_count : t -> int
