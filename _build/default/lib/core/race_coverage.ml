open! Import

type group =
  { root : Race.t
  ; covered : Race.t list
  }

(* (a, b) is covered by (c, d) when ordering c and d either way also
   orders a and b: a ⪯ c ∧ d ⪯ b, or a ⪯ d ∧ c ⪯ b. *)
let covers ~hb (root : Race.t) (r : Race.t) =
  let le i j = Happens_before.hb_or_eq hb i j in
  let a = r.first.position
  and b = r.second.position
  and c = root.first.position
  and d = root.second.position in
  (le a c && le d b) || (le a d && le c b)

(* Greedy set cover: repeatedly promote the race that covers the most
   remaining races to a root.  In the ad-hoc handoff pattern the flag
   race covers every dependent-field race and is chosen first. *)
let group ~hb races =
  let rec go remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ :: _ ->
      let best =
        List.fold_left
          (fun best candidate ->
             let covered =
               List.filter
                 (fun r -> r != candidate && covers ~hb candidate r)
                 remaining
             in
             match best with
             | Some (_, n) when n >= List.length covered -> best
             | Some _ | None -> Some ((candidate, covered), List.length covered))
          None remaining
      in
      (match best with
       | None -> List.rev acc
       | Some ((root, covered), _) ->
         let taken r = r == root || List.memq r covered in
         go
           (List.filter (fun r -> not (taken r)) remaining)
           ({ root; covered } :: acc))
  in
  go races []

let roots ~hb races = List.map (fun g -> g.root) (group ~hb races)

let pp_group ppf g =
  Format.fprintf ppf "@[<v 2>root: %a" Race.pp g.root;
  List.iter (fun r -> Format.fprintf ppf "@,covers: %a" Race.pp r) g.covered;
  Format.fprintf ppf "@]"
