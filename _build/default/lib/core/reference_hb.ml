open! Import
module Thread_id = Ident.Thread_id
module Task_id = Ident.Task_id

type t =
  { st_m : bool array array
  ; mt_m : bool array array
  }

let st t i j = t.st_m.(i).(j)
let mt t i j = t.mt_m.(i).(j)
let hb t i j = st t i j || mt t i j
let hb_or_eq t i j = i = j || hb t i j
let ordered t i j = hb t i j || hb t j i

(* Same delayed-post refinement as the optimised engine. *)
let fifo_flavours_ok f1 f2 =
  match (f1 : Operation.post_flavour), (f2 : Operation.post_flavour) with
  | Immediate, (Immediate | Delayed _) -> true
  | Delayed d1, Delayed d2 -> d1 <= d2
  | Delayed _, Immediate -> false
  | Front, (Immediate | Delayed _ | Front) -> false
  | (Immediate | Delayed _), Front -> false

let compute trace =
  let n = Trace.length trace in
  let st_m = Array.make_matrix n n false in
  let mt_m = Array.make_matrix n n false in
  let hb i j = st_m.(i).(j) || mt_m.(i).(j) in
  let hb_or_eq i j = i = j || hb i j in
  let thread i = Trace.thread trace i in
  let task i = Trace.enclosing_task trace i in
  let same_thread i j = Thread_id.equal (thread i) (thread j) in
  let changed = ref true in
  let set_st i j =
    if not st_m.(i).(j) then begin
      st_m.(i).(j) <- true;
      changed := true
    end
  in
  let set_mt i j =
    if not mt_m.(i).(j) then begin
      mt_m.(i).(j) <- true;
      changed := true
    end
  in
  (* The flavour of the post that created the task executing αᵢ, and the
     position of that post. *)
  let post_of_task p = Trace.post_index trace p in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let oi = Trace.op trace i and oj = Trace.op trace j in
        if same_thread i j then begin
          let tid = thread i in
          (* N O - Q - PO *)
          let loop_before_i =
            match Trace.loop_index trace tid with
            | Some lp -> lp < i
            | None -> false
          in
          if not loop_before_i then set_st i j;
          (* A SYNC - PO *)
          (match task i, task j with
           | Some p, Some q when loop_before_i && Task_id.equal p q ->
             set_st i j
           | (Some _ | None), (Some _ | None) -> ());
          (* E NABLE - ST *)
          (match oi, oj with
           | Operation.Enable p, Operation.Post { task = q; _ }
             when Task_id.equal p q -> set_st i j
           | _, _ -> ());
          (* P OST - ST *)
          (match oi, oj with
           | Operation.Post { task = p; target; _ }, Operation.Begin_task q
             when Task_id.equal p q && Thread_id.equal target tid -> set_st i j
           | _, _ -> ());
          (* F IFO and N OPRE *)
          (match oi, oj with
           | Operation.End_task p1, Operation.Begin_task p2 ->
             (match post_of_task p1, post_of_task p2 with
              | Some b1, Some b2 ->
                let f1 =
                  Option.value (Trace.post_flavour trace p1)
                    ~default:Operation.Immediate
                and f2 =
                  Option.value (Trace.post_flavour trace p2)
                    ~default:Operation.Immediate
                in
                (* F IFO: both posts target this thread and are ordered *)
                if fifo_flavours_ok f1 f2 && hb b1 b2 then set_st i j;
                (* N OPRE: some operation of task p1 happens before (or
                   is) the post of p2 *)
                let nopre =
                  let exception Found in
                  match
                    Trace.iteri
                      (fun k (_ : Trace.event) ->
                         match task k with
                         | Some q when Task_id.equal q p1 && hb_or_eq k b2 ->
                           raise Found
                         | Some _ | None -> ())
                      trace
                  with
                  | () -> false
                  | exception Found -> true
                in
                if nopre then set_st i j
              | (Some _ | None), _ -> ())
           | _, _ -> ());
          (* T RANS - ST *)
          for k = i + 1 to j - 1 do
            if same_thread i k && st_m.(i).(k) && st_m.(k).(j) then set_st i j
          done
        end
        else begin
          (* A TTACH - Q - MT *)
          (match oi, oj with
           | Operation.Attach_queue, Operation.Post { target; _ }
             when Thread_id.equal target (thread i) -> set_mt i j
           | _, _ -> ());
          (* E NABLE - MT *)
          (match oi, oj with
           | Operation.Enable p, Operation.Post { task = q; _ }
             when Task_id.equal p q -> set_mt i j
           | _, _ -> ());
          (* P OST - MT *)
          (match oi, oj with
           | Operation.Post { task = p; target; _ }, Operation.Begin_task q
             when Task_id.equal p q && Thread_id.equal target (thread j) ->
             set_mt i j
           | _, _ -> ());
          (* F ORK *)
          (match oi, oj with
           | Operation.Fork t', Operation.Thread_init
             when Thread_id.equal t' (thread j) -> set_mt i j
           | _, _ -> ());
          (* J OIN *)
          (match oi, oj with
           | Operation.Thread_exit, Operation.Join t'
             when Thread_id.equal t' (thread i) -> set_mt i j
           | _, _ -> ());
          (* L OCK *)
          (match oi, oj with
           | Operation.Release l, Operation.Acquire l'
             when Ident.Lock_id.equal l l' -> set_mt i j
           | _, _ -> ());
          (* T RANS - MT: αᵢ ⪯ αₖ, αₖ ⪯ αⱼ with thread(i) ≠ thread(j);
             the intermediate may be any operation. *)
          for k = i + 1 to j - 1 do
            if hb i k && hb k j then set_mt i j
          done
        end
      done
    done
  done;
  { st_m; mt_m }
