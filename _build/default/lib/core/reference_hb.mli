open! Import

(** Literal, unoptimised implementation of the happens-before rules.

    The relations ⪯st and ⪯mt are kept as two explicit boolean matrices
    over trace positions and every rule of Figures 6 and 7 is applied
    verbatim to every candidate pair until a fixpoint.  This is cubic per
    pass and meant for traces of at most a few hundred operations: it is
    the differential-testing oracle for {!Happens_before} (the optimised
    engine must agree on every pair — a qcheck property) and doubles as
    executable documentation of the rules. *)

type t

val compute : Trace.t -> t

val st : t -> int -> int -> bool
(** The thread-local relation ⪯st (Figure 6). *)

val mt : t -> int -> int -> bool
(** The inter-thread relation ⪯mt (Figure 7). *)

val hb : t -> int -> int -> bool
(** ⪯ = ⪯st ∪ ⪯mt. *)

val hb_or_eq : t -> int -> int -> bool

val ordered : t -> int -> int -> bool
