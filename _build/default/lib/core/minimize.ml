open! Import
module Thread_id = Ident.Thread_id
module Task_id = Ident.Task_id

(* The transitive closure of tasks to delete: killing a task kills the
   tasks posted from inside it. *)
let task_closure trace seeds =
  let killed = Hashtbl.create 8 in
  let rec add p =
    let key = Task_id.to_string p in
    if not (Hashtbl.mem killed key) then begin
      Hashtbl.replace killed key ();
      Trace.iteri
        (fun i (e : Trace.event) ->
           match e.op with
           | Operation.Post { task = q; _ } ->
             (match Trace.enclosing_task trace i with
              | Some owner when Task_id.equal owner p -> add q
              | Some _ | None -> ())
           | _ -> ())
        trace
    end
  in
  List.iter add seeds;
  fun p -> Hashtbl.mem killed (Task_id.to_string p)

(* Keep predicate for deleting a set of tasks (and nothing else). *)
let keep_without_tasks trace killed i (e : Trace.event) =
  let task_killed p = killed p in
  (match Trace.enclosing_task trace i with
   | Some p when task_killed p -> false
   | Some _ | None ->
     (match e.op with
      | Operation.Post { task = p; _ }
      | Operation.Enable p
      | Operation.Cancel p -> not (task_killed p)
      | _ -> true))

(* Keep predicate for deleting a whole thread: its operations, the tasks
   it posted, and the tasks that executed on it. *)
let keep_without_thread trace tid i (e : Trace.event) =
  let seeds =
    List.filter
      (fun p ->
         (match Trace.post_target trace p with
          | Some target -> Thread_id.equal target tid
          | None -> false)
         ||
         match Trace.post_index trace p with
         | Some pos -> Thread_id.equal (Trace.thread trace pos) tid
         | None -> false)
      (Trace.tasks trace)
  in
  let killed = task_closure trace seeds in
  (not (Thread_id.equal e.thread tid)) && keep_without_tasks trace killed i e

let remove trace keep =
  let kept = ref [] in
  let remap = Array.make (Trace.length trace) (-1) in
  let n = ref 0 in
  Trace.iteri
    (fun i e ->
       if keep i e then begin
         remap.(i) <- !n;
         incr n;
         kept := e :: !kept
       end)
    trace;
  match Trace.of_events (List.rev !kept) with
  | Ok t -> Some (t, fun pos -> remap.(pos))
  | Error _ -> None

let still_races trace (race : Race.t) remap =
  let p1 = remap race.first.position and p2 = remap race.second.position in
  if p1 < 0 || p2 < 0 then false
  else begin
    let hb = Happens_before.compute (Graph.build ~coalesce:true trace) in
    not (Happens_before.ordered hb p1 p2)
  end

let remap_race trace (race : Race.t) remap =
  let move (a : Race.access) =
    let position = remap a.position in
    { a with Race.position; task = Trace.enclosing_task trace position }
  in
  { Race.first = move race.first; second = move race.second }

let minimize trace (race : Race.t) =
  let initial_hb = Happens_before.compute (Graph.build ~coalesce:true trace) in
  if
    Happens_before.ordered initial_hb race.first.position race.second.position
    || not
         (Operation.conflicts
            (Trace.op trace race.first.position)
            (Trace.op trace race.second.position))
  then invalid_arg "Minimize.minimize: not a race of this trace";
  let protected_task i =
    Trace.enclosing_task trace i
  in
  let rec shrink trace race =
    let racy_tasks =
      List.filter_map Fun.id
        [ protected_task race.Race.first.position
        ; protected_task race.Race.second.position
        ]
    in
    (* protect the racy accesses' tasks and the chains that classify
       them would need? only the accesses themselves must survive; a
       candidate is rejected anyway if it deletes them. *)
    let task_candidates =
      List.filter
        (fun p -> not (List.exists (Task_id.equal p) racy_tasks))
        (Trace.tasks trace)
    in
    let thread_candidates =
      List.filter
        (fun t ->
           (not (Thread_id.equal t race.Race.first.thread))
           && not (Thread_id.equal t race.Race.second.thread))
        (Trace.threads trace)
    in
    let try_candidate keep =
      match remove trace keep with
      | None -> None
      | Some (trace', remap) ->
        if
          Trace.length trace' < Trace.length trace
          && remap race.Race.first.position >= 0
          && remap race.Race.second.position >= 0
          && still_races trace' race remap
        then Some (trace', remap_race trace' race remap)
        else None
    in
    let attempt =
      List.find_map
        (fun p ->
           let killed = task_closure trace [ p ] in
           try_candidate (keep_without_tasks trace killed))
        task_candidates
    in
    let attempt =
      match attempt with
      | Some _ -> attempt
      | None ->
        List.find_map
          (fun t -> try_candidate (keep_without_thread trace t))
          thread_candidates
    in
    match attempt with
    | Some (trace', race') -> shrink trace' race'
    | None -> (trace, race)
  in
  shrink trace race
