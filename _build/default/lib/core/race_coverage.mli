open! Import

(** Race coverage (the paper's reference [24]: Raychev, Vechev,
    Sridharan, "Effective race detection for event-driven programs").

    Section 6 names ad-hoc synchronization as a false-positive source
    "which can potentially be addressed using the notion of race
    coverage": when many reported races hang off one undetected ordering
    mechanism, fixing (or dismissing) the {e root} race resolves the
    whole group.  A race (a, b) is covered by a race (c, d) when
    enforcing an order between c and d would also order a and b — i.e.
    a ⪯ c and d ⪯ b (or symmetrically a ⪯ d and c ⪯ b), with ⪯ the
    reflexive happens-before relation of the trace.

    [group] partitions the report greedily, earliest-root-first, so the
    developer triages root races only.  In the ad-hoc handoff pattern,
    the flag race is the root and every dependent-field race is covered
    by it. *)

type group =
  { root : Race.t
  ; covered : Race.t list  (** ordered as reported *)
  }

val group : hb:Happens_before.t -> Race.t list -> group list
(** Greedy partition: races are scanned in report order; each race
    either joins the first group whose root covers it or founds a new
    group.  The union of roots and covered races is the input list. *)

val roots : hb:Happens_before.t -> Race.t list -> Race.t list
(** Just the root races, in report order. *)

val pp_group : Format.formatter -> group -> unit
