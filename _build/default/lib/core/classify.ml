open! Import
module Thread_id = Ident.Thread_id

type category =
  | Multithreaded
  | Co_enabled
  | Delayed_race
  | Cross_posted
  | Unknown

let category_equal a b =
  match a, b with
  | Multithreaded, Multithreaded
  | Co_enabled, Co_enabled
  | Delayed_race, Delayed_race
  | Cross_posted, Cross_posted
  | Unknown, Unknown -> true
  | (Multithreaded | Co_enabled | Delayed_race | Cross_posted | Unknown), _ ->
    false

let category_name = function
  | Multithreaded -> "multithreaded"
  | Co_enabled -> "co-enabled"
  | Delayed_race -> "delayed"
  | Cross_posted -> "cross-posted"
  | Unknown -> "unknown"

let pp_category ppf c = Format.pp_print_string ppf (category_name c)

let rec chain trace i =
  match Trace.enclosing_task trace i with
  | None -> []
  | Some p ->
    (match Trace.post_index trace p with
     | None -> []  (* structurally impossible in a well-formed trace *)
     | Some post_pos -> chain trace post_pos @ [ post_pos ])

(* The task a post operation posts; [chain] guarantees the position
   holds a post. *)
let posted_task trace pos =
  match Trace.op trace pos with
  | Operation.Post { task; _ } -> Some task
  | _ -> None

let is_event_post trace pos =
  match posted_task trace pos with
  | Some p -> Option.is_some (Trace.enable_index trace p)
  | None -> false

let is_delayed_post trace pos =
  match posted_task trace pos with
  | Some p ->
    (match Trace.post_flavour trace p with
     | Some (Operation.Delayed _) -> true
     | Some (Operation.Immediate | Operation.Front) | None -> false)
  | None -> false

let last_matching pred positions =
  List.fold_left (fun acc pos -> if pred pos then Some pos else acc) None
    positions

let classify trace ~hb_or_eq (race : Race.t) =
  if Race.is_multithreaded race then Multithreaded
  else begin
    let chain_i = chain trace race.first.position
    and chain_j = chain trace race.second.position in
    let co_enabled =
      match
        ( last_matching (is_event_post trace) chain_i
        , last_matching (is_event_post trace) chain_j )
      with
      | Some bi, Some bj -> not (hb_or_eq bi bj)
      | (Some _ | None), _ -> false
    in
    if co_enabled then Co_enabled
    else begin
      let delayed =
        match
          ( last_matching (is_delayed_post trace) chain_i
          , last_matching (is_delayed_post trace) chain_j )
        with
        | Some bi, Some bj -> bi <> bj
        | Some _, None | None, Some _ -> true
        | None, None -> false
      in
      if delayed then Delayed_race
      else begin
        let cross_post_of access_thread positions =
          last_matching
            (fun pos ->
               not (Thread_id.equal (Trace.thread trace pos) access_thread))
            positions
        in
        let cross =
          match
            ( cross_post_of race.first.thread chain_i
            , cross_post_of race.second.thread chain_j )
          with
          | Some bi, Some bj -> bi <> bj
          | Some _, None | None, Some _ -> true
          | None, None -> false
        in
        if cross then Cross_posted else Unknown
      end
    end
  end
