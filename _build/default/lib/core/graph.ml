open! Import
module Thread_id = Ident.Thread_id
module Task_id = Ident.Task_id

type node_kind =
  | Anchor of int
  | Access_block of int list

type node =
  { kind : node_kind
  ; node_thread : Thread_id.t
  ; node_task : Task_id.t option
  ; first : int
  ; last : int
  }

type t =
  { trace : Trace.t
  ; nodes : node array
  ; node_of_pos : int array
  ; by_thread : int list Thread_id.Map.t  (** ascending *)
  ; by_task : int list Task_id.Map.t  (** ascending *)
  ; thread_indices : int Thread_id.Map.t
  }

let is_coalescible op =
  match (op : Operation.t) with
  | Read _ | Write _ -> true
  | Thread_init | Thread_exit | Fork _ | Join _ | Attach_queue | Loop_on_queue
  | Post _ | Begin_task _ | End_task _ | Acquire _ | Release _ | Enable _
  | Cancel _ -> false

let build ~coalesce trace =
  let n = Trace.length trace in
  let node_of_pos = Array.make n (-1) in
  let nodes = ref [] in
  let count = ref 0 in
  (* Last open access block per thread: (node id, positions rev, task). *)
  let open_blocks : (int, int * int list ref) Hashtbl.t = Hashtbl.create 16 in
  let close_block tid = Hashtbl.remove open_blocks (Thread_id.to_int tid) in
  let add_node kind tid task first last =
    let id = !count in
    incr count;
    nodes := { kind; node_thread = tid; node_task = task; first; last } :: !nodes;
    id
  in
  for i = 0 to n - 1 do
    let { Trace.thread = tid; op } = Trace.get trace i in
    let task = Trace.enclosing_task trace i in
    if coalesce && is_coalescible op then begin
      match Hashtbl.find_opt open_blocks (Thread_id.to_int tid) with
      | Some (id, positions) ->
        positions := i :: !positions;
        node_of_pos.(i) <- id
      | None ->
        let positions = ref [ i ] in
        let id = add_node (Access_block []) tid task i i in
        Hashtbl.add open_blocks (Thread_id.to_int tid) (id, positions);
        node_of_pos.(i) <- id
    end
    else begin
      close_block tid;
      let kind = if is_coalescible op then Access_block [ i ] else Anchor i in
      let id = add_node kind tid task i i in
      node_of_pos.(i) <- id
    end
  done;
  let nodes = Array.of_list (List.rev !nodes) in
  (* Patch the positions and extents of coalesced blocks. *)
  let positions_of = Array.make (Array.length nodes) [] in
  Array.iteri (fun i id -> positions_of.(id) <- i :: positions_of.(id)) node_of_pos;
  Array.iteri
    (fun id node ->
       let positions = List.rev positions_of.(id) in
       match positions with
       | [] -> ()
       | first :: _ ->
         let last = List.fold_left (fun _ p -> p) first positions in
         nodes.(id) <-
           (match node.kind with
            | Anchor _ -> { node with first; last }
            | Access_block _ ->
              { node with kind = Access_block positions; first; last }))
    nodes;
  let by_thread = ref Thread_id.Map.empty in
  let by_task = ref Task_id.Map.empty in
  Array.iteri
    (fun id node ->
       by_thread :=
         Thread_id.Map.update node.node_thread
           (fun l -> Some (id :: Option.value l ~default:[]))
           !by_thread;
       match node.node_task with
       | Some p ->
         by_task :=
           Task_id.Map.update p
             (fun l -> Some (id :: Option.value l ~default:[]))
             !by_task
       | None -> ())
    nodes;
  let thread_indices =
    List.fold_left
      (fun (i, acc) tid -> (i + 1, Thread_id.Map.add tid i acc))
      (0, Thread_id.Map.empty) (Trace.threads trace)
    |> snd
  in
  { trace
  ; nodes
  ; node_of_pos
  ; by_thread = Thread_id.Map.map List.rev !by_thread
  ; by_task = Task_id.Map.map List.rev !by_task
  ; thread_indices
  }

let trace t = t.trace
let node_count t = Array.length t.nodes
let kind t id = t.nodes.(id).kind

let node_of_pos t pos =
  if pos < 0 || pos >= Array.length t.node_of_pos then
    invalid_arg (Printf.sprintf "Graph.node_of_pos: position %d out of bounds" pos);
  t.node_of_pos.(pos)

let thread_of_node t id = t.nodes.(id).node_thread
let task_of_node t id = t.nodes.(id).node_task
let first_pos t id = t.nodes.(id).first
let last_pos t id = t.nodes.(id).last

let nodes_of_thread t tid =
  Option.value (Thread_id.Map.find_opt tid t.by_thread) ~default:[]

let nodes_of_task t p =
  Option.value (Task_id.Map.find_opt p t.by_task) ~default:[]

let thread_index t tid =
  match Thread_id.Map.find_opt tid t.thread_indices with
  | Some i -> i
  | None -> invalid_arg "Graph.thread_index: unknown thread"

let thread_count t = Thread_id.Map.cardinal t.thread_indices
