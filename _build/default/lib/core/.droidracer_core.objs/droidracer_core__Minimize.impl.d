lib/core/minimize.ml: Array Fun Graph Happens_before Hashtbl Ident Import List Operation Race Trace
