lib/core/race.mli: Format Ident Import Trace
