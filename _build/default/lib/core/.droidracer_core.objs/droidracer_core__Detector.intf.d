lib/core/detector.mli: Classify Format Happens_before Import Race Trace
