lib/core/detector.ml: Classify Format Graph Happens_before Hashtbl Ident Import List Race Sys Trace
