lib/core/graph.mli: Ident Import Trace
