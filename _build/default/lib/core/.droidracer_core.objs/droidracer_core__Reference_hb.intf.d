lib/core/reference_hb.mli: Import Trace
