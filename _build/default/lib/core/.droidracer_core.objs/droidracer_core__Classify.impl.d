lib/core/classify.ml: Format Ident Import List Operation Option Race Trace
