lib/core/reference_hb.ml: Array Ident Import Operation Option Trace
