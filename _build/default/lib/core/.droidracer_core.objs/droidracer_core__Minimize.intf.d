lib/core/minimize.mli: Import Race Trace
