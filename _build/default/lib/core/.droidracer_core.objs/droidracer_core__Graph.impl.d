lib/core/graph.ml: Array Hashtbl Ident Import List Operation Option Printf Trace
