lib/core/import.ml: Droidracer_trace
