lib/core/clock_engine.mli: Import Race Trace
