lib/core/vector_clock.mli: Format
