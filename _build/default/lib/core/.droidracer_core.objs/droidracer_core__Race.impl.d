lib/core/race.ml: Format Hashtbl Ident Import Int List Operation Trace
