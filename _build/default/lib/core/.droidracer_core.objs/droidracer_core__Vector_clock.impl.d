lib/core/vector_clock.ml: Format Int Map
