lib/core/happens_before.ml: Array Bit_matrix Graph Hashtbl Ident Import List Operation Option Trace
