lib/core/bit_matrix.mli:
