lib/core/happens_before.mli: Graph Import
