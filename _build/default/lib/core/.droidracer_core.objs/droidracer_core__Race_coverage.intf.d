lib/core/race_coverage.mli: Format Happens_before Import Race
