lib/core/bit_matrix.ml: Array Printf
