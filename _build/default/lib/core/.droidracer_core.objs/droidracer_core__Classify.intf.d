lib/core/classify.mli: Format Import Race Trace
