lib/core/race_coverage.ml: Format Happens_before Import List Race
