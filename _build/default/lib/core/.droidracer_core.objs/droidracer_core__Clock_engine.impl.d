lib/core/clock_engine.ml: Hashtbl Ident Import Int List Operation Race Trace Vector_clock
