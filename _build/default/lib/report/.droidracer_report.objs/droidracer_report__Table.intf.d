lib/report/table.mli:
