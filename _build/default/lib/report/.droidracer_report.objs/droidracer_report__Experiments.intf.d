lib/report/experiments.mli: Detector Import Runtime Synthetic Table
