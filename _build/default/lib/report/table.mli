(** Plain-text table rendering for the experiment reports. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument on a column-count mismatch. *)

val add_separator : t -> unit
(** A horizontal rule, e.g. between the open-source and proprietary
    sections of Tables 2 and 3. *)

val render : t -> string

val print : t -> unit
(** [render] to standard output. *)
