type row =
  | Cells of string list
  | Separator

type t =
  { title : string
  ; columns : string list
  ; mutable rows : row list  (** reversed *)
  }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns"
         (List.length cells) (List.length t.columns));
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i header ->
         List.fold_left
           (fun acc row ->
              match row with
              | Cells cells -> max acc (String.length (List.nth cells i))
              | Separator -> acc)
           (String.length header) rows)
      t.columns
  in
  let buf = Buffer.create 1024 in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let rule () =
    List.iter (fun w -> Buffer.add_string buf (String.make (w + 2) '-')) widths;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  rule ();
  List.iteri
    (fun i h ->
       Buffer.add_string buf (pad h (List.nth widths i));
       Buffer.add_string buf "  ")
    t.columns;
  Buffer.add_char buf '\n';
  rule ();
  List.iter
    (fun row ->
       match row with
       | Separator -> rule ()
       | Cells cells ->
         List.iteri
           (fun i c ->
              Buffer.add_string buf (pad c (List.nth widths i));
              Buffer.add_string buf "  ")
           cells;
         Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t)
