open! Import

(** Baseline happens-before detectors.

    The paper positions its relation against two independently studied
    families (Sections 1, 4.1 "Specializations", 7): race detectors for
    multi-threaded programs, which ignore asynchronous dispatch, and
    race detectors for single-threaded event-driven programs, which
    ignore thread interleavings — plus the naïve combination of the two
    rule sets, whose lock treatment manufactures spurious same-thread
    orderings.  Each baseline is a configuration of the same engine, so
    the ablation benchmarks compare like with like. *)

type t =
  | Droidracer  (** the paper's relation (reference point) *)
  | Multithreaded_only
      (** classic per-thread program order + fork/join/lock; a task
          queue is treated like ordinary thread code and a post like a
          fork (the "asynchronous calls simulated through additional
          threads" reading).  Misses single-threaded races. *)
  | Event_driven_only
      (** the single-threaded event rules (program order, enable, post,
          FIFO, NOPRE) without fork/join/lock reasoning.  Reports false
          positives whenever threads synchronise. *)
  | Naive_combined
      (** every rule of both families with unrestricted transitivity and
          same-thread lock edges: the combination Section 1 warns
          against.  Derives spurious orderings and so misses races. *)

val all : t list

val name : t -> string

val config : t -> Happens_before.config

val detect : t -> Trace.t -> Race.t list
(** Races reported by the baseline on the (cancellation-filtered)
    trace. *)

type comparison =
  { baseline : t
  ; reported : int
  ; missed : int  (** races DroidRacer reports that the baseline lacks *)
  ; extra : int  (** races the baseline reports beyond DroidRacer's *)
  }

val compare_against_droidracer : Trace.t -> comparison list
(** One entry per non-reference baseline.  "Missed" races are the
    baseline's false negatives and "extra" its additional reports,
    taking the paper's relation as ground truth. *)
