(* Aliases for the modules of the lower libraries; opened by every file
   of this library. *)
module Ident = Droidracer_trace.Ident
module Operation = Droidracer_trace.Operation
module Trace = Droidracer_trace.Trace
module Graph = Droidracer_core.Graph
module Happens_before = Droidracer_core.Happens_before
module Race = Droidracer_core.Race
module Detector = Droidracer_core.Detector
