lib/baselines/import.ml: Droidracer_core Droidracer_trace
