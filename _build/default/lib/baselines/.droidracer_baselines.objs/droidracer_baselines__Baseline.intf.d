lib/baselines/baseline.mli: Happens_before Import Race Trace
