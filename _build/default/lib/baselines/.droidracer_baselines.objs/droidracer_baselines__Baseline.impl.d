lib/baselines/baseline.ml: Graph Happens_before Import List Race Trace
