open! Import

type t =
  | Droidracer
  | Multithreaded_only
  | Event_driven_only
  | Naive_combined

let all = [ Droidracer; Multithreaded_only; Event_driven_only; Naive_combined ]

let name = function
  | Droidracer -> "DroidRacer"
  | Multithreaded_only -> "multithreaded-only HB"
  | Event_driven_only -> "event-driven-only HB"
  | Naive_combined -> "naive combined HB"

let config = function
  | Droidracer -> Happens_before.default
  | Multithreaded_only ->
    { Happens_before.default with
      program_order = Happens_before.Full_po
    ; enable_rule = false
    ; fifo_rule = false
    ; nopre_rule = false
    ; attach_rule = false
    }
  | Event_driven_only ->
    { Happens_before.default with
      fork_join_rules = false
    ; lock_rule = false
    }
  | Naive_combined ->
    { Happens_before.default with
      lock_same_thread = true
    ; restricted_transitivity = false
    }

let detect baseline trace =
  let trace = Trace.remove_cancelled trace in
  let graph = Graph.build ~coalesce:true trace in
  let hb = Happens_before.compute ~config:(config baseline) graph in
  Race.detect trace ~hb:(Happens_before.hb hb)

let race_pair (r : Race.t) = (r.first.position, r.second.position)

type comparison =
  { baseline : t
  ; reported : int
  ; missed : int
  ; extra : int
  }

let compare_against_droidracer trace =
  let reference = List.map race_pair (detect Droidracer trace) in
  List.filter_map
    (fun baseline ->
       match baseline with
       | Droidracer -> None
       | Multithreaded_only | Event_driven_only | Naive_combined ->
         let races = List.map race_pair (detect baseline trace) in
         let missed =
           List.length (List.filter (fun r -> not (List.mem r races)) reference)
         and extra =
           List.length
             (List.filter (fun r -> not (List.mem r reference)) races)
         in
         Some { baseline; reported = List.length races; missed; extra })
    all
