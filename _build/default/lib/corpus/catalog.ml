open! Import

let spec ~name ~loc ~proprietary ~length ~fields ~noq ~q ~async ~mt ~cross ~co
    ~delayed ~unknown ~events ~seed =
  { Synthetic.s_name = name
  ; s_loc = loc
  ; s_proprietary = proprietary
  ; s_trace_length = length
  ; s_fields = fields
  ; s_threads_without_queue = noq
  ; s_threads_with_queue = q
  ; s_async_tasks = async
  ; s_multithreaded = mt
  ; s_cross_posted = cross
  ; s_co_enabled = co
  ; s_delayed = delayed
  ; s_unknown = unknown
  ; s_event_bound = events
  ; s_seed = seed
  }

(* Table 2 and Table 3, transcribed.  Race entries are
   (reports, true positives). *)
let open_source =
  [ spec ~name:"Aard Dictionary" ~loc:4044 ~proprietary:false ~length:1355
      ~fields:189 ~noq:2 ~q:1 ~async:58 ~mt:(1, 1) ~cross:(0, 0) ~co:(0, 0)
      ~delayed:(0, 0) ~unknown:(0, 0) ~events:7 ~seed:11
  ; spec ~name:"Music Player" ~loc:11012 ~proprietary:false ~length:5532
      ~fields:521 ~noq:3 ~q:2 ~async:62 ~mt:(0, 0) ~cross:(17, 4) ~co:(11, 10)
      ~delayed:(4, 0) ~unknown:(3, 2) ~events:7 ~seed:12
  ; spec ~name:"My Tracks" ~loc:26146 ~proprietary:false ~length:7305
      ~fields:573 ~noq:11 ~q:7 ~async:164 ~mt:(1, 0) ~cross:(2, 1) ~co:(1, 0)
      ~delayed:(0, 0) ~unknown:(0, 0) ~events:3 ~seed:13
  ; spec ~name:"Messenger" ~loc:27593 ~proprietary:false ~length:10106
      ~fields:845 ~noq:11 ~q:4 ~async:99 ~mt:(1, 1) ~cross:(15, 5) ~co:(4, 3)
      ~delayed:(2, 2) ~unknown:(0, 0) ~events:3 ~seed:14
  ; spec ~name:"Tomdroid Notes" ~loc:3215 ~proprietary:false ~length:10120
      ~fields:413 ~noq:3 ~q:1 ~async:348 ~mt:(0, 0) ~cross:(5, 2) ~co:(1, 0)
      ~delayed:(0, 0) ~unknown:(0, 0) ~events:7 ~seed:15
  ; spec ~name:"FBReader" ~loc:50042 ~proprietary:false ~length:10723
      ~fields:322 ~noq:14 ~q:1 ~async:119 ~mt:(1, 0) ~cross:(22, 22) ~co:(14, 4)
      ~delayed:(0, 0) ~unknown:(0, 0) ~events:3 ~seed:16
  ; spec ~name:"Browser" ~loc:30874 ~proprietary:false ~length:19062
      ~fields:963 ~noq:13 ~q:4 ~async:103 ~mt:(2, 1) ~cross:(64, 2) ~co:(0, 0)
      ~delayed:(0, 0) ~unknown:(0, 0) ~events:3 ~seed:17
  ; spec ~name:"OpenSudoku" ~loc:6151 ~proprietary:false ~length:24901
      ~fields:334 ~noq:5 ~q:1 ~async:45 ~mt:(1, 0) ~cross:(1, 0) ~co:(0, 0)
      ~delayed:(0, 0) ~unknown:(0, 0) ~events:7 ~seed:18
  ; spec ~name:"K-9 Mail" ~loc:54119 ~proprietary:false ~length:29662
      ~fields:1296 ~noq:7 ~q:2 ~async:689 ~mt:(9, 2) ~cross:(0, 0) ~co:(1, 0)
      ~delayed:(0, 0) ~unknown:(0, 0) ~events:3 ~seed:19
  ; spec ~name:"SGTPuzzles" ~loc:2368 ~proprietary:false ~length:38864
      ~fields:566 ~noq:4 ~q:1 ~async:80 ~mt:(11, 10) ~cross:(21, 8) ~co:(0, 0)
      ~delayed:(0, 0) ~unknown:(0, 0) ~events:7 ~seed:20
  ]

(* The paper reports no verified split for proprietary applications; the
   (x, y) pairs below use roughly the open-source true-positive rate. *)
let proprietary =
  [ spec ~name:"Remind Me" ~loc:0 ~proprietary:true ~length:10348 ~fields:348
      ~noq:3 ~q:1 ~async:176 ~mt:(0, 0) ~cross:(21, 8) ~co:(33, 12)
      ~delayed:(0, 0) ~unknown:(0, 0) ~events:7 ~seed:21
  ; spec ~name:"Twitter" ~loc:0 ~proprietary:true ~length:16975 ~fields:1362
      ~noq:21 ~q:5 ~async:97 ~mt:(0, 0) ~cross:(20, 7) ~co:(7, 3)
      ~delayed:(4, 1) ~unknown:(0, 0) ~events:3 ~seed:22
  ; spec ~name:"Adobe Reader" ~loc:0 ~proprietary:true ~length:33866
      ~fields:1267 ~noq:17 ~q:4 ~async:226 ~mt:(34, 13) ~cross:(73, 27)
      ~co:(0, 0) ~delayed:(9, 3) ~unknown:(9, 0) ~events:3 ~seed:23
  ; spec ~name:"Facebook" ~loc:0 ~proprietary:true ~length:52146 ~fields:801
      ~noq:16 ~q:3 ~async:16 ~mt:(12, 4) ~cross:(0, 0) ~co:(10, 4)
      ~delayed:(0, 0) ~unknown:(0, 0) ~events:3 ~seed:24
  ; spec ~name:"Flipkart" ~loc:0 ~proprietary:true ~length:157539 ~fields:2065
      ~noq:36 ~q:3 ~async:105 ~mt:(12, 4) ~cross:(152, 56) ~co:(84, 31)
      ~delayed:(30, 11) ~unknown:(36, 0) ~events:3 ~seed:25
  ]

let all = open_source @ proprietary

let find name =
  List.find_opt (fun s -> String.equal s.Synthetic.s_name name) all
