open! Import

(** Hand-written models of the two bad-behaviour case studies of
    Section 6 ("Open-source applications"). *)

(** Aard Dictionary: a Service object is written by the main thread and
    read by a background dictionary-loading thread without
    synchronization.  When the read wins the race the background thread
    sees empty dictionaries and the user's lookup fails. *)
module Aard_dictionary : sig
  val app : Program.app

  val scenario : Runtime.ui_event list
  (** Start the dictionary service, then look a word up. *)

  val racy_field : Program.field
  (** The Service state ([dictionariesLoaded]). *)
end

(** Messenger: a [Cursor] holding a database list is shared by two
    asynchronous tasks on the main thread, one of them posted by a
    background thread.  Reordering them indexes a deleted element — the
    "index out of bounds" crash.  The race is cross-posted. *)
module Messenger : sig
  val app : Program.app

  val scenario : Runtime.ui_event list

  val racy_field : Program.field
  (** The [Cursor.rowCount]. *)
end

(** FBReader: a dialog token is cleared by the activity's teardown
    while a task posted from a loading thread still shows the dialog —
    reordering crashes with BadTokenException (Section 6). *)
module Fbreader : sig
  val app : Program.app

  val scenario : Runtime.ui_event list

  val racy_field : Program.field
  (** The window token the dialog attaches to. *)
end

(** Tomdroid Notes: onDestroy nulls the note list while a sync task
    still dereferences it — reordering crashes with
    NullPointerException (Section 6). *)
module Tomdroid : sig
  val app : Program.app

  val scenario : Runtime.ui_event list

  val racy_field : Program.field
  (** The nullable note list. *)
end
