open! Import

let is_activity_destroyed =
  Program.field ~cls:"DwFileAct" "isActivityDestroyed"

let dialog_progress = Program.field ~cls:"ProgressDialog" "progress"
let play_button = Program.field ~cls:"Button" "enabled"

(* FileDwTask (lines 22-58 of Figure 1): download in the background,
   report progress, enable the PLAY button when done.  The asserts on
   [isActivityDestroyed] at lines 41 and 53 are the racy reads. *)
let file_dw_task : Program.async_spec =
  { task_name = "FileDwTask"
  ; pre = [ Program.Write dialog_progress ]  (* dialog.show() *)
  ; background =
      [ Program.Read is_activity_destroyed  (* assert, line 41 *)
      ; Program.Publish_progress  (* line 42 *)
      ]
  ; progress = [ Program.Write dialog_progress ]  (* setProgress, line 48 *)
  ; post_exec =
      [ Program.Read is_activity_destroyed  (* assert, line 53 *)
      ; Program.Write dialog_progress  (* dialog.dismiss() *)
      ; Program.Write play_button  (* btn.setEnabled(true) *)
      ; Program.Enable_ui "onPlayClick"
      ]
  }

let dw_file_act =
  Program.activity "DwFileAct"
    ~on_create:[ Program.Write is_activity_destroyed ]  (* line 2 init *)
    ~on_resume:[ Program.Execute_async_task file_dw_task ]  (* line 6 *)
    ~on_destroy:[ Program.Write is_activity_destroyed ]  (* line 15 *)
    ~ui:
      [ Program.handler ~enabled:false "onPlayClick"
          [ Program.Start_activity "MusicPlayActivity" ]  (* line 11 *)
      ]

let music_play_activity = Program.activity "MusicPlayActivity"

let app =
  Program.app ~name:"MusicPlayer" ~main:"DwFileAct"
    ~activities:[ dw_file_act; music_play_activity ]
    ()

let play_scenario = [ Runtime.Click "onPlayClick" ]
let back_scenario = [ Runtime.Back ]

let options = { Runtime.default_options with compressed_lifecycle = true }
