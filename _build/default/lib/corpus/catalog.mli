open! Import

(** The 15 applications of the paper's evaluation (Tables 2 and 3),
    as synthetic-model specifications.

    Open-source entries carry the paper's verified true-positive counts;
    for the five proprietary applications the paper "could not
    distinguish between true/false positives", so those specs use a
    plausible split (roughly the 37 % true-positive rate measured on the
    open-source set) and only the report counts are compared. *)

val open_source : Synthetic.spec list
(** Aard Dictionary … SGTPuzzles, in the paper's (trace-length) order. *)

val proprietary : Synthetic.spec list
(** Remind Me … Flipkart. *)

val all : Synthetic.spec list

val find : string -> Synthetic.spec option
