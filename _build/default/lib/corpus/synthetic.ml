open! Import
module Location = Ident.Location

type plant =
  { p_category : Classify.category
  ; p_genuine : bool
  ; p_mechanism : string
  ; p_locations : Location.t list
  }

type spec =
  { s_name : string
  ; s_loc : int
  ; s_proprietary : bool
  ; s_trace_length : int
  ; s_fields : int
  ; s_threads_without_queue : int
  ; s_threads_with_queue : int
  ; s_async_tasks : int
  ; s_multithreaded : int * int
  ; s_cross_posted : int * int
  ; s_co_enabled : int * int
  ; s_delayed : int * int
  ; s_unknown : int * int
  ; s_event_bound : int
  ; s_seed : int
  }

type built =
  { b_spec : spec
  ; b_app : Program.app
  ; b_events : Runtime.ui_event list
  ; b_options : Runtime.options
  ; b_plants : plant list
  }

let fields cls n = List.init n (fun i -> Program.field ~cls (Printf.sprintf "f%d" i))
let locations fs = List.map Program.location_of_field fs
let writes fs = List.map (fun f -> Program.Write f) fs
let reads fs = List.map (fun f -> Program.Read f) fs

(* One plant = handlers / threads / procs + metadata.  Each racy
   location yields exactly one distinct race. *)
type pieces =
  { pc_handlers : Program.ui_handler list
  ; pc_create : Program.stmt list  (** appended to Main.onCreate *)
  ; pc_procs : (string * Program.stmt list) list
  ; pc_events : Runtime.ui_event list
  ; pc_plant : plant option
  ; pc_posts : int  (** asynchronous posts this plant performs at runtime *)
  ; pc_threads : int  (** threads (queue-less) it creates that reach the trace *)
  }

let no_pieces =
  { pc_handlers = []
  ; pc_create = []
  ; pc_procs = []
  ; pc_events = []
  ; pc_plant = None
  ; pc_posts = 0
  ; pc_threads = 0
  }

let mt_true n =
  if n = 0 then no_pieces
  else begin
    let fs = fields "MtShared" n in
    { no_pieces with
      pc_create = [ Program.Fork ("mt_true_bg", writes fs) ]
    ; pc_handlers = [ Program.handler "ev_mt_true" (reads fs) ]
    ; pc_events = [ Runtime.Click "ev_mt_true" ]
    ; pc_plant =
        Some
          { p_category = Classify.Multithreaded
          ; p_genuine = true
          ; p_mechanism = "unsynchronised sharing between the main and a background thread"
          ; p_locations = locations fs
          }
    ; pc_threads = 1
    }
  end

let mt_fp n =
  if n = 0 then no_pieces
  else begin
    let flag = Program.field ~cls:"MtFlag" "ready" in
    let fs = fields "MtFp" (n - 1) in
    { no_pieces with
      pc_handlers =
        [ Program.handler "ev_mt_fp" (writes fs @ [ Program.Handoff_send flag ]) ]
    ; pc_create = [ Program.Fork ("mt_fp_bg", Program.Handoff_wait flag :: reads fs) ]
    ; pc_events = [ Runtime.Click "ev_mt_fp" ]
    ; pc_plant =
        Some
          { p_category = Classify.Multithreaded
          ; p_genuine = false
          ; p_mechanism = "ad-hoc flag handoff invisible to happens-before reasoning"
          ; p_locations = locations (flag :: fs)
          }
    ; pc_threads = 1
    }
  end

let cross_true n =
  if n = 0 then no_pieces
  else begin
    let fs = fields "CrShared" n in
    (* The accesses are monitor-protected: a lock cannot order two tasks
       of one thread, so the race stands — but the naive combined
       relation (lock edges within a thread + unrestricted transitivity)
       spuriously orders them and misses every one of these races. *)
    let guarded body = [ Program.Synchronized ("crossLock", body) ] in
    { pc_create = [ Program.Fork ("cross_bg", [ Program.post "cross_proc" ]) ]
    ; pc_procs = [ ("cross_proc", guarded (writes fs)) ]
    ; pc_handlers = [ Program.handler "ev_cross_true" (guarded (writes fs)) ]
    ; pc_events = [ Runtime.Click "ev_cross_true" ]
    ; pc_plant =
        Some
          { p_category = Classify.Cross_posted
          ; p_genuine = true
          ; p_mechanism = "task posted by a background thread vs a UI handler task"
          ; p_locations = locations fs
          }
    ; pc_posts = 1
    ; pc_threads = 1
    }
  end

let cross_fp n =
  if n = 0 then no_pieces
  else begin
    let flag = Program.field ~cls:"CrFlag" "ready" in
    let fs = fields "CrFp" n in
    { pc_handlers =
        [ Program.handler "ev_cross_fp" (writes fs @ [ Program.Handoff_send flag ]) ]
    ; pc_create =
        [ Program.Fork_native
            ("cross_native", [ Program.Handoff_wait flag; Program.post "cross_fp_proc" ])
        ]
    ; pc_procs = [ ("cross_fp_proc", reads fs) ]
    ; pc_events = [ Runtime.Click "ev_cross_fp" ]
    ; pc_plant =
        Some
          { p_category = Classify.Cross_posted
          ; p_genuine = false
          ; p_mechanism =
              "post by an untracked natively-created thread; the ordering flag is invisible"
          ; p_locations = locations fs
          }
    ; pc_posts = 1
    ; pc_threads = 1  (* the native thread appears in the trace via its post *)
    }
  end

let co_true n =
  if n = 0 then no_pieces
  else begin
    let fs = fields "CoShared" n in
    { no_pieces with
      pc_handlers =
        [ Program.handler "ev_co_a" (writes fs)
        ; Program.handler "ev_co_b" (writes fs)
        ]
    ; pc_events = [ Runtime.Click "ev_co_a"; Runtime.Click "ev_co_b" ]
    ; pc_plant =
        Some
          { p_category = Classify.Co_enabled
          ; p_genuine = true
          ; p_mechanism = "two co-enabled UI handlers sharing state"
          ; p_locations = locations fs
          }
    }
  end

let co_fp n =
  if n = 0 then no_pieces
  else begin
    let fs = fields "CoFp" n in
    { no_pieces with
      pc_handlers =
        [ Program.handler "ev_cofp_first" (writes fs)
        ; Program.handler "ev_cofp_second"
            (writes fs @ [ Program.Disable_ui "ev_cofp_first" ])
        ]
    ; pc_events = [ Runtime.Click "ev_cofp_first"; Runtime.Click "ev_cofp_second" ]
    ; pc_plant =
        Some
          { p_category = Classify.Co_enabled
          ; p_genuine = false
          ; p_mechanism = "the second handler disables the first: the events are not co-enabled"
          ; p_locations = locations fs
          }
    }
  end

let delayed_plant ~genuine n =
  if n = 0 then no_pieces
  else begin
    let tag = if genuine then "DelShared" else "DelFp" in
    let prefix = if genuine then "del_t" else "del_f" in
    let fs = fields tag n in
    let delay = if genuine then 2 else 100_000 in
    { no_pieces with
      pc_handlers =
        [ Program.handler ("ev_" ^ prefix)
            [ Program.post ~delay (prefix ^ "_delayed")
            ; Program.post (prefix ^ "_now")
            ]
        ]
    ; pc_procs = [ (prefix ^ "_delayed", writes fs); (prefix ^ "_now", writes fs) ]
    ; pc_events = [ Runtime.Click ("ev_" ^ prefix) ]
    ; pc_plant =
        Some
          { p_category = Classify.Delayed_race
          ; p_genuine = genuine
          ; p_mechanism =
              (if genuine then "small timeout: either task may run first"
               else "large timeout always orders the tasks")
          ; p_locations = locations fs
          }
    ; pc_posts = 2
    }
  end

let unknown_plant (n, claimed_true) =
  if n = 0 then no_pieces
  else begin
    let fs = fields "UnkShared" n in
    { no_pieces with
      pc_create = [ Program.Fork ("unk_bg", [ Program.post "unk_c" ]) ]
    ; pc_procs =
        [ ("unk_c", [ Program.post "unk_a"; Program.post ~front:true "unk_b" ])
        ; ("unk_a", writes fs)
        ; ("unk_b", writes fs)
        ]
    ; pc_plant =
        Some
          { p_category = Classify.Unknown
          ; p_genuine = false
          ; p_mechanism =
              Printf.sprintf
                "front-of-queue post below a shared cross-thread post (paper verified %d of these manually)"
                claimed_true
          ; p_locations = locations fs
          }
    ; pc_posts = 3
    ; pc_threads = 1
    }
  end

(* The filler workload: enough background threads, looper threads,
   posted procedures and field accesses to hit the Table 2 targets. *)
let build_app spec ~extra_accesses =
  let check_counts (x, y) name =
    if y > x || x < 0 || y < 0 then
      invalid_arg
        (Printf.sprintf "Synthetic.build: %s: inconsistent counts %d(%d)" name x y)
  in
  check_counts spec.s_multithreaded "multithreaded";
  check_counts spec.s_cross_posted "cross-posted";
  check_counts spec.s_co_enabled "co-enabled";
  check_counts spec.s_delayed "delayed";
  check_counts spec.s_unknown "unknown";
  let part (x, y) = (y, x - y) in
  let mt_t, mt_f = part spec.s_multithreaded in
  let cr_t, cr_f = part spec.s_cross_posted in
  let co_t, co_f = part spec.s_co_enabled in
  let de_t, de_f = part spec.s_delayed in
  let pieces =
    [ mt_true mt_t
    ; mt_fp mt_f
    ; cross_true cr_t
    ; cross_fp cr_f
    ; co_true co_t
    ; co_fp co_f
    ; delayed_plant ~genuine:true de_t
    ; delayed_plant ~genuine:false de_f
    ; unknown_plant spec.s_unknown
    ]
  in
  let planted_fields =
    List.fold_left
      (fun acc p ->
         acc
         + (match p.pc_plant with
            | Some pl -> List.length pl.p_locations
            | None -> 0)
         (* the cross-FP flag is written but not racy *)
         + (match p.pc_plant with
            | Some { p_category = Classify.Cross_posted; p_genuine = false; _ } -> 1
            | Some _ | None -> 0))
      0 pieces
  in
  let planted_threads = List.fold_left (fun a p -> a + p.pc_threads) 0 pieces in
  let planted_posts = List.fold_left (fun a p -> a + p.pc_posts) 0 pieces in
  let planted_events = List.concat_map (fun p -> p.pc_events) pieces in
  (* Background threads without queues; the main thread is framework-owned
     and the binder pool is excluded from Table 2 by the paper. *)
  let n_bg = max 0 (spec.s_threads_without_queue - planted_threads) in
  let n_loop = max 0 (spec.s_threads_with_queue - 1) in
  (* Posts: LAUNCH + every injected event + planted posts + two filler
     tasks per looper + main-queue filler procedures. *)
  let fixed_posts = 1 + List.length planted_events + planted_posts + (2 * n_loop) in
  let n_filler = max 0 (spec.s_async_tasks - fixed_posts) in
  (* Field pool for the filler workload (one slot reserved for the
     Init.config field when background threads exist). *)
  let pool = max 0 (spec.s_fields - planted_fields - (if n_bg > 0 then 1 else 0)) in
  let reserved = n_bg + (2 * n_loop) in
  if pool < reserved then
    invalid_arg
      (Printf.sprintf
         "Synthetic.build: %s: %d fields cannot cover %d planted + %d reserved"
         spec.s_name spec.s_fields planted_fields reserved);
  let shared_pool = pool - reserved in
  (* Accesses: distribute the remaining trace length over the filler
     contexts.  Main-queue filler procedures may share fields (FIFO
     orders them); threads get private fields. *)
  let contexts = max 1 (n_filler + n_bg + (2 * n_loop)) in
  let per_ctx = max 1 ((extra_accesses / contexts) + 1) in
  let shared_fields =
    List.init shared_pool (fun i ->
      Program.field ~cls:"Filler" (Printf.sprintf "f%d" i))
  in
  let shared_count = max 1 (List.length shared_fields) in
  let access_block ~ctx n =
    List.init n (fun k ->
      match shared_fields with
      | [] -> Program.Read (Program.field ~cls:"Filler" "f0")
      | _ :: _ ->
        let f = List.nth shared_fields (((ctx * per_ctx) + k) mod shared_count) in
        if k land 1 = 0 then Program.Write f else Program.Read f)
  in
  let private_field tag i = Program.field ~cls:("Priv" ^ tag) (Printf.sprintf "f%d" i) in
  (* Written before any fork; the background threads read it, ordered by
     the FORK rule.  A relation without inter-thread reasoning (the
     event-driven-only baseline) reports these as races. *)
  let init_field = Program.field ~cls:"Init" "config" in
  let bg_threads =
    List.init n_bg (fun i ->
      let f = private_field "Bg" i in
      Program.Fork
        ( Printf.sprintf "bg%d" i
        , Program.Read init_field
          :: List.concat
               (List.init per_ctx (fun _ -> [ Program.Write f; Program.Read f ]))
        ))
  in
  let bg_threads =
    if n_bg = 0 then bg_threads else Program.Write init_field :: bg_threads
  in
  let loopers =
    List.concat
      (List.init n_loop (fun i ->
         let name = Printf.sprintf "hthread%d" i in
         let mk j =
           let f = private_field "Lp" ((2 * i) + j) in
           ( Printf.sprintf "lp%d_%d" i j
           , List.concat
               (List.init per_ctx (fun _ -> [ Program.Write f; Program.Read f ])) )
         in
         let p0 = mk 0 and p1 = mk 1 in
         [ `Stmt (Program.Fork_looper name)
         ; `Stmt (Program.post ~target:(Program.Named_thread name) (fst p0))
         ; `Stmt (Program.post ~target:(Program.Named_thread name) (fst p1))
         ; `Proc p0
         ; `Proc p1
         ]))
  in
  let looper_stmts =
    List.filter_map (function `Stmt s -> Some s | `Proc _ -> None) loopers
  in
  let looper_procs =
    List.filter_map (function `Proc p -> Some p | `Stmt _ -> None) loopers
  in
  let filler_procs =
    List.init n_filler (fun i ->
      (Printf.sprintf "filler%d" i, access_block ~ctx:i per_ctx))
  in
  let filler_posts =
    List.map (fun (name, _) -> Program.post name) filler_procs
  in
  let on_create =
    List.concat_map (fun p -> p.pc_create) pieces
    @ bg_threads @ looper_stmts @ filler_posts
  in
  let handlers = List.concat_map (fun p -> p.pc_handlers) pieces in
  let procs =
    List.concat_map (fun p -> p.pc_procs) pieces @ looper_procs @ filler_procs
  in
  let main_act = Program.activity "Main" ~on_create:on_create ~ui:handlers in
  let app =
    Program.app ~name:spec.s_name ~main:"Main" ~activities:[ main_act ] ~procs ()
  in
  let plants = List.filter_map (fun p -> p.pc_plant) pieces in
  (app, planted_events, plants)

let build spec =
  let options =
    { Runtime.default_options with policy = Runtime.Seeded spec.s_seed }
  in
  (* Calibrate the filler volume against the Table 2 trace length.
     Multiplicative updates converge even when filler contexts emit
     more than one operation per unit (background threads emit two). *)
  let rec calibrate extra iterations =
    let app, events, plants = build_app spec ~extra_accesses:extra in
    let result = Runtime.run ~options app events in
    let measured = Trace.length result.Runtime.observed in
    let diff = spec.s_trace_length - measured in
    if iterations <= 0 || abs diff * 50 < spec.s_trace_length then
      (app, events, plants)
    else begin
      let scaled =
        int_of_float
          (float_of_int extra
           *. float_of_int spec.s_trace_length
           /. float_of_int (max 1 measured))
      in
      calibrate (max 0 scaled) (iterations - 1)
    end
  in
  let initial = max 0 (spec.s_trace_length - 200) in
  let app, events, plants = calibrate initial 6 in
  { b_spec = spec
  ; b_app = app
  ; b_events = events
  ; b_options = options
  ; b_plants = plants
  }

let plant_of_location built location =
  List.find_opt
    (fun p -> List.exists (Location.equal location) p.p_locations)
    built.b_plants
