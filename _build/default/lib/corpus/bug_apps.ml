open! Import

module Aard_dictionary = struct
  let racy_field = Program.field ~cls:"DictionaryService" "dictionariesLoaded"
  let dictionaries = Program.field ~cls:"DictionaryService" "dictionaries"

  (* The service forks a dictionary-loading thread when created; the
     state change performed on the main thread by onStartCommand is
     unsynchronised with the loader's reads, so the loader can observe
     the new state before the dictionaries exist. *)
  let dictionary_service =
    Program.service "DictionaryService"
      ~on_create:
        [ Program.Fork
            ( "dictionaryLoader"
            , [ Program.Read racy_field  (* loader: checks the state *)
              ; Program.Write dictionaries
              ] )
        ]
      ~on_start_command:[ Program.Write racy_field  (* main: state change *) ]

  let lookup_activity =
    Program.activity "LookupActivity"
      ~on_create:[ Program.Start_service "DictionaryService" ]
      ~ui:
        [ Program.handler "onLookup"
            [ Program.Read dictionaries  (* may see empty dictionaries *) ]
        ]

  let app =
    Program.app ~name:"AardDictionary" ~main:"LookupActivity"
      ~activities:[ lookup_activity ]
      ~services:[ dictionary_service ]
      ()

  let scenario = [ Runtime.Click "onLookup" ]
end

module Messenger = struct
  let racy_field = Program.field ~cls:"Cursor" "rowCount"

  let conversation_activity =
    Program.activity "ConversationActivity"
      ~on_create:
        [ (* a sync thread refreshes the cursor and posts the UI update *)
          Program.Fork ("syncThread", [ Program.post "bindListView" ])
        ]
      ~ui:
        [ Program.handler "onDeleteMessage" [ Program.Write racy_field ]
          (* deletes a list element and shrinks the cursor *)
        ]

  let app =
    Program.app ~name:"Messenger" ~main:"ConversationActivity"
      ~activities:[ conversation_activity ]
      ~procs:
        [ ( "bindListView"
          , [ Program.Read racy_field  (* indexes the possibly-shrunk list *) ]
          )
        ]
      ()

  let scenario = [ Runtime.Click "onDeleteMessage" ]
end

module Fbreader = struct
  let racy_field = Program.field ~cls:"Window" "token"

  (* A book-loading thread posts a dialog update to the main thread; if
     the activity is torn down first, the window token is gone and
     showing the dialog throws BadTokenException. *)
  let reader_activity =
    Program.activity "ReaderActivity"
      ~on_create:
        [ Program.Write racy_field  (* window attached *)
        ; Program.Fork ("bookLoader", [ Program.post "showProgressDialog" ])
        ]
      ~on_destroy:[ Program.Write racy_field  (* token cleared *) ]

  let app =
    Program.app ~name:"FBReader" ~main:"ReaderActivity"
      ~activities:[ reader_activity ]
      ~procs:
        [ ("showProgressDialog", [ Program.Read racy_field ])
          (* dialog.show() against a possibly-dead token *)
        ]
      ()

  let scenario = [ Runtime.Back ]
end

module Tomdroid = struct
  let racy_field = Program.field ~cls:"NoteManager" "notes"

  (* onDestroy nulls the note list; a sync callback posted by the sync
     thread dereferences it.  Reordered, the dereference sees null. *)
  let notes_activity =
    Program.activity "NotesList"
      ~on_create:
        [ Program.Write racy_field
        ; Program.Fork ("syncThread", [ Program.post "onSynced" ])
        ]
      ~on_destroy:[ Program.Write racy_field  (* notes = null *) ]

  let app =
    Program.app ~name:"TomdroidNotes" ~main:"NotesList"
      ~activities:[ notes_activity ]
      ~procs:[ ("onSynced", [ Program.Read racy_field ]) ]
      ()

  let scenario = [ Runtime.Back ]
end
