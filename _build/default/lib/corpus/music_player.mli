open! Import

(** The music player of Figure 1: DwFileAct downloads a song with a
    FileDwTask AsyncTask, shows progress, and enables the PLAY button in
    onPostExecute.  The races of Section 2.4 manifest when the user
    presses BACK while the download is in flight. *)

val app : Program.app

val is_activity_destroyed : Program.field
(** The racy field (line 2 of Figure 1). *)

val play_scenario : Runtime.ui_event list
(** The Figure 2 / Figure 3 scenario: click PLAY. *)

val back_scenario : Runtime.ui_event list
(** The Figure 4 scenario: press BACK instead. *)

val options : Runtime.options
(** Runtime options matching the paper's figures: compressed lifecycle
    (BACK posts onDestroy directly). *)
