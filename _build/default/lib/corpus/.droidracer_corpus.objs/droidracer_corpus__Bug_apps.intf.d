lib/corpus/bug_apps.mli: Import Program Runtime
