lib/corpus/bug_apps.ml: Import Program Runtime
