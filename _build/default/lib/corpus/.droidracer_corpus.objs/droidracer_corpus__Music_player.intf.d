lib/corpus/music_player.mli: Import Program Runtime
