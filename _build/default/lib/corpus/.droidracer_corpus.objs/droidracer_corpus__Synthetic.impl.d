lib/corpus/synthetic.ml: Classify Ident Import List Printf Program Runtime Trace
