lib/corpus/synthetic.mli: Classify Ident Import Program Runtime
