lib/corpus/catalog.mli: Import Synthetic
