lib/corpus/catalog.ml: Import List String Synthetic
