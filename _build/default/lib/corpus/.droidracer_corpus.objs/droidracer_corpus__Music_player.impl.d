lib/corpus/music_player.ml: Import Program Runtime
