open! Import

(** Synthetic application generator.

    The paper evaluates DroidRacer on 15 real applications; a sealed
    OCaml container has neither their binaries nor a Dalvik VM, so each
    application is replaced by a synthetic model tuned to the paper's
    per-application measurements: the Table 2 workload shape (trace
    length, distinct fields, thread and async-task counts) and the
    Table 3 race population (count per category, with the intended
    true/false-positive split realised by concrete mechanisms:
    unsynchronised sharing for true races; ad-hoc flag handoffs,
    untracked native posts, disabled widgets, large timeouts and
    front-of-queue posts for false positives).

    Generation is deterministic.  An auto-calibration loop sizes the
    filler workload until the observed trace length lands within a few
    percent of the Table 2 target. *)

(** How a planted race is realised, and whether an alternate order of
    its accesses is actually reachable (the ground truth the verifier
    should rediscover). *)
type plant =
  { p_category : Classify.category
  ; p_genuine : bool
  ; p_mechanism : string  (** human-readable description *)
  ; p_locations : Ident.Location.t list
      (** racy locations contributed; one distinct race each *)
  }

(** Per-application targets, transcribed from Tables 2 and 3.  Race
    targets are [(reports, true_positives)]; for proprietary apps the
    paper could not determine true positives, so the split is a
    plausible default. *)
type spec =
  { s_name : string
  ; s_loc : int  (** lines of code reported by the paper (metadata) *)
  ; s_proprietary : bool
  ; s_trace_length : int
  ; s_fields : int
  ; s_threads_without_queue : int
  ; s_threads_with_queue : int
  ; s_async_tasks : int
  ; s_multithreaded : int * int
  ; s_cross_posted : int * int
  ; s_co_enabled : int * int
  ; s_delayed : int * int
  ; s_unknown : int * int
  ; s_event_bound : int  (** length of UI sequences the paper used *)
  ; s_seed : int
  }

type built =
  { b_spec : spec
  ; b_app : Program.app
  ; b_events : Runtime.ui_event list
      (** the representative test of Table 2/3 *)
  ; b_options : Runtime.options
  ; b_plants : plant list
  }

val build : spec -> built
(** Deterministically builds and calibrates the application.
    @raise Invalid_argument when the spec is inconsistent (e.g. fewer
    fields than planted races need). *)

val plant_of_location : built -> Ident.Location.t -> plant option
(** The plant that owns a racy location, for grouping verification. *)
