(* droidracerd, the persistent analysis service.

   The contract under test: accepted work survives SIGKILL (journal +
   spool replay on --resume, exactly-once-observable by request id),
   overload is refused deterministically with bounded queueing and a
   retry-after hint, queue pressure degrades the engine down the
   dense -> worklist -> streaming ladder, malformed frames cost one
   connection and never the daemon, and SIGTERM drains the queue before
   exit.

   Every daemon is a forked child running [Server.run]; the test
   parent NEVER spawns a domain, which is what keeps forking daemons
   legal under the OCaml 5 fork rule throughout the binary.  (Workers
   are forked by the daemon before it would ever spawn domains, so the
   daemon side is safe by construction.) *)

module Swire = Droidracer_service.Wire
module Server = Droidracer_service.Server
module Client = Droidracer_service.Client
module Loadgen = Droidracer_service.Loadgen
module Proc_pool = Droidracer_report.Proc_pool
module Trace_io = Droidracer_trace.Trace_io
module Runtime = Droidracer_appmodel.Runtime
module Mp = Droidracer_corpus.Music_player

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int
let check_string = check Alcotest.string

(* {1 Fixtures} *)

(* The music-player BACK scenario: 31 events, 2 races, analysed in
   well under a millisecond — request latency in these tests is all
   queueing, which the [sleep] request field controls precisely. *)
let trace_bytes =
  lazy
    (let r = Runtime.run ~options:Mp.options Mp.app Mp.back_scenario in
     let path = Filename.temp_file "svc" ".trace" in
     Trace_io.save path r.Runtime.observed;
     let s = In_channel.with_open_bin path In_channel.input_all in
     Sys.remove path;
     s)

let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let base_config dir =
  let endpoint = Swire.Unix_socket (Filename.concat dir "d.sock") in
  { (Server.default_config endpoint) with
    Server.workers = 1
  ; spool_dir = Filename.concat dir "spool"
  ; journal_path = Some (Filename.concat dir "journal.bin")
  ; default_timeout = Some 30.0
  }

let fork_daemon config =
  match Unix.fork () with
  | 0 ->
    (* The child becomes the daemon.  Silence its log and [_exit] so it
       never runs the test runner's at-exit machinery. *)
    (try
       let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
       Unix.dup2 devnull Unix.stderr;
       Unix.close devnull
     with Unix.Unix_error _ -> ());
    (try Server.run config with _ -> ());
    Unix._exit 0
  | pid -> pid

let query ?(timeout = 15.0) endpoint ?trace request =
  match Client.connect endpoint with
  | Error e -> Error e
  | Ok t ->
    Client.set_read_timeout t timeout;
    Fun.protect
      ~finally:(fun () -> Client.close t)
      (fun () -> Client.roundtrip t ?trace request)

let wait_ready endpoint =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec go () =
    match query ~timeout:1.0 endpoint Swire.Health with
    | Ok json when Swire.response_status json = "ok" -> ()
    | _ when Unix.gettimeofday () < deadline ->
      Unix.sleepf 0.05;
      go ()
    | Ok json ->
      Alcotest.failf "daemon never became ready (last status %s)"
        (Swire.response_status json)
    | Error e -> Alcotest.failf "daemon never became ready: %s" e
  in
  go ()

(* SIGTERM, then insist the drain finishes: a daemon alive 15s after
   SIGTERM has broken the drain contract. *)
let stop_daemon pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        Alcotest.fail "daemon did not drain within 15s of SIGTERM"
      end
      else begin
        Unix.sleepf 0.05;
        wait ()
      end
    | _, status -> status
  in
  wait ()

let with_daemon config f =
  let pid = fork_daemon config in
  wait_ready config.Server.endpoint;
  Fun.protect
    ~finally:(fun () ->
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> ignore (stop_daemon pid)
      | _ -> ())
    (fun () -> f config.Server.endpoint pid)

let analyze ?(engine = "auto") ?timeout ?(sleep = 0.0) ?(wait = true) ~trace id
    =
  Swire.Analyze
    { a_id = id
    ; a_engine = engine
    ; a_timeout = timeout
    ; a_sleep = sleep
    ; a_trace_bytes = String.length trace
    ; a_wait = wait
    }

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "request failed: %s" e

let status json = Swire.response_status json
let str key json = Option.value (Swire.response_str key json) ~default:""

let num key json =
  match Swire.response_num key json with
  | Some f -> f
  | None -> Alcotest.failf "response has no number %S" key

let bool_field key json =
  match Json_parse.member key json with
  | Some (Json_parse.Bool b) -> b
  | _ -> Alcotest.failf "response has no bool %S" key

(* Poll [Result id] until it leaves pending/unknown: how asynchronous
   submitters observe completion. *)
let poll_result endpoint id =
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec go () =
    match query endpoint (Swire.Result id) with
    | Ok json ->
      (match status json with
       | ("pending" | "unknown") when Unix.gettimeofday () < deadline ->
         Unix.sleepf 0.05;
         go ()
       | _ -> json)
    | Error _ when Unix.gettimeofday () < deadline ->
      Unix.sleepf 0.1;
      go ()
    | Error e -> Alcotest.failf "polling %s failed: %s" id e
  in
  go ()

(* {1 Wire} *)

let test_endpoints () =
  let roundtrip s expect =
    match Swire.endpoint_of_string s with
    | Ok ep -> check_string s expect (Swire.endpoint_to_string ep)
    | Error e -> Alcotest.failf "%s did not parse: %s" s e
  in
  roundtrip "unix:/tmp/x.sock" "unix:/tmp/x.sock";
  roundtrip "/tmp/x.sock" "unix:/tmp/x.sock";
  roundtrip "tcp:9090" "tcp:127.0.0.1:9090";
  roundtrip "tcp:example.net:80" "tcp:example.net:80";
  check_bool "empty rejected" true
    (Result.is_error (Swire.endpoint_of_string ""));
  check_bool "bad port rejected" true
    (Result.is_error (Swire.endpoint_of_string "tcp:host:nope"))

let test_request_roundtrip () =
  let req =
    Swire.Analyze
      { a_id = "app-01"
      ; a_engine = "worklist"
      ; a_timeout = Some 2.5
      ; a_sleep = 0.25
      ; a_trace_bytes = 123
      ; a_wait = false
      }
  in
  (match Swire.parse_request (Swire.request_json req) with
   | Ok (Swire.Analyze a) ->
     check_string "id" "app-01" a.a_id;
     check_string "engine" "worklist" a.a_engine;
     check_bool "timeout" true (a.a_timeout = Some 2.5);
     check_bool "sleep" true (a.a_sleep = 0.25);
     check_int "trace_bytes" 123 a.a_trace_bytes;
     check_bool "wait" false a.a_wait
   | Ok _ -> Alcotest.fail "parsed to the wrong operation"
   | Error e -> Alcotest.failf "did not parse: %s" e);
  (match Swire.parse_request (Swire.request_json (Swire.Result "x-1")) with
   | Ok (Swire.Result id) -> check_string "result id" "x-1" id
   | _ -> Alcotest.fail "result did not round-trip");
  check_bool "garbage rejected" true
    (Result.is_error (Swire.parse_request "not json"));
  check_bool "bad engine rejected" true
    (Result.is_error
       (Swire.parse_request
          {|{"schema":"droidracer-request/1","op":"analyze","id":"a","engine":"quantum"}|}));
  check_bool "bad id rejected" true
    (Result.is_error
       (Swire.parse_request
          {|{"schema":"droidracer-request/1","op":"analyze","id":"../etc"}|}))

let test_decoder_incremental () =
  let frame payload =
    let b = Bytes.create (8 + String.length payload) in
    Bytes.set_int64_be b 0 (Int64.of_int (String.length payload));
    Bytes.blit_string payload 0 b 8 (String.length payload);
    b
  in
  let d = Swire.create_decoder () in
  let all = Bytes.cat (frame "hello") (frame "world") in
  (* one byte at a time: no frame until the last byte of each *)
  let got = ref [] in
  Bytes.iter
    (fun c ->
       Swire.decoder_feed d (Bytes.make 1 c) 1;
       match Swire.decoder_next d with
       | Ok (Some f) -> got := f :: !got
       | Ok None -> ()
       | Error e -> Alcotest.failf "decoder error: %s" e)
    all;
  check (Alcotest.list Alcotest.string) "both frames, in order"
    [ "hello"; "world" ] (List.rev !got);
  (* an announced length past the limit is an error before any payload
     arrives — a lying client cannot make the daemon buffer it *)
  let d = Swire.create_decoder ~limit:16 () in
  let big = frame (String.make 64 'x') in
  Swire.decoder_feed d big 9;
  (match Swire.decoder_next d with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "oversized frame was not refused")

let test_response_json_roundtrip () =
  let rs =
    { Swire.rs_id = "weird \"id\""
    ; rs_status = "completed"
    ; rs_reason = ""
    ; rs_engine = "dense"
    ; rs_requested = "auto"
    ; rs_ladder = "dense"
    ; rs_events = 31
    ; rs_races = 2
    ; rs_distinct = 2
    ; rs_locations = [ "A.f@0"; "B.g@1" ]
    ; rs_elapsed = 0.001
    ; rs_queue_seconds = 0.5
    }
  in
  let json = ok (Swire.parse_response (Swire.result_response rs)) in
  (* the CLI re-serializes responses with [response_json_string]; the
     round-trip must preserve every field *)
  let json' = ok (Swire.parse_response (Swire.response_json_string json)) in
  check_string "id survives" "weird \"id\"" (str "id" json');
  check_bool "races survive" true (num "races" json' = 2.0);
  check_bool "resumed survives" true (not (bool_field "resumed" json'))

(* {1 End to end} *)

let test_e2e_completed_and_dedupe () =
  let dir = fresh_dir "svc_e2e" in
  let trace = Lazy.force trace_bytes in
  with_daemon (base_config dir) @@ fun endpoint _pid ->
  (* fresh submission: analysed for real *)
  let r1 = ok (query endpoint ~trace (analyze ~trace "mp-back")) in
  check_string "completed" "completed" (status r1);
  check_bool "two races" true (num "races" r1 = 2.0);
  check_string "engine" "dense" (str "engine" r1);
  check_bool "fresh" true (not (bool_field "resumed" r1));
  (* same id again: served from the result cache, never re-executed *)
  let r2 = ok (query endpoint ~trace (analyze ~trace "mp-back")) in
  check_string "still completed" "completed" (status r2);
  check_bool "served from cache" true (bool_field "resumed" r2);
  (* an id nobody submitted *)
  let r3 = ok (query endpoint (Swire.Result "never-submitted")) in
  check_string "unknown" "unknown" (status r3);
  (* health: exactly one execution *)
  let h = ok (query endpoint Swire.Health) in
  check_string "healthy" "ok" (status h);
  check_bool "one completed" true (num "completed" h = 1.0);
  check_bool "one accepted" true (num "accepted" h = 1.0);
  check_bool "a live worker" true (num "workers_live" h >= 1.0)

let test_drain_finishes_queue () =
  let dir = fresh_dir "svc_drain" in
  let trace = Lazy.force trace_bytes in
  let config = base_config dir in
  let pid = fork_daemon config in
  wait_ready config.Server.endpoint;
  let endpoint = config.Server.endpoint in
  (* hold the lone worker, then SIGTERM with the request in flight *)
  let held = Client.connect endpoint in
  let a =
    ok (query endpoint ~trace (analyze ~trace ~sleep:1.0 ~wait:false "slow"))
  in
  check_string "accepted" "accepted" (status a);
  Unix.kill pid Sys.sigterm;
  Unix.sleepf 0.5;
  (* a submission on an already-open connection is refused while
     draining, with a retry hint *)
  (match held with
   | Ok t ->
     Client.set_read_timeout t 5.0;
     (match Client.roundtrip t ~trace (analyze ~trace "late") with
      | Ok json ->
        check_string "refused while draining" "draining" (status json);
        check_bool "retry hint" true (num "retry_after_seconds" json > 0.0)
      | Error _ ->
        (* the drain may already have closed the connection; that is a
           refusal too *)
        ());
     Client.close t
   | Error e -> Alcotest.failf "pre-drain connect failed: %s" e);
  (match stop_daemon pid with
   | Unix.WEXITED 0 -> ()
   | Unix.WEXITED c -> Alcotest.failf "drain exited %d" c
   | _ -> Alcotest.fail "drain died by signal");
  (* the queued request was finished, its spool removed, the socket
     unlinked *)
  let spool_traces =
    Sys.readdir config.Server.spool_dir
    |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
  in
  check (Alcotest.list Alcotest.string) "spool empty after drain" []
    spool_traces;
  (match endpoint with
   | Swire.Unix_socket path ->
     check_bool "socket unlinked" false (Sys.file_exists path)
   | Swire.Tcp _ -> ())

let test_sigkill_resume_exactly_once () =
  let dir = fresh_dir "svc_kill" in
  let trace = Lazy.force trace_bytes in
  let config = base_config dir in
  (* Round 1: complete one request, leave one in flight, SIGKILL. *)
  let pid = fork_daemon config in
  wait_ready config.Server.endpoint;
  let endpoint = config.Server.endpoint in
  let done1 = ok (query endpoint ~trace (analyze ~trace "done-before")) in
  check_string "first completed" "completed" (status done1);
  let acc =
    ok
      (query endpoint ~trace (analyze ~trace ~sleep:5.0 ~wait:false "inflight"))
  in
  check_string "in-flight accepted" "accepted" (status acc);
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  (* Round 2: same spool and journal, --resume. *)
  with_daemon { config with Server.resume = true } @@ fun endpoint _pid ->
  let h = ok (query endpoint Swire.Health) in
  check_bool "finished result replayed" true (num "resumed_results" h >= 1.0);
  check_bool "in-flight request re-queued" true
    (num "resumed_requeued" h = 1.0);
  (* the in-flight casualty runs to completion (at-least-once)... *)
  let r = poll_result endpoint "inflight" in
  check_string "inflight completed after restart" "completed" (status r);
  check_bool "inflight has the races" true (num "races" r = 2.0);
  (* ...while the finished one is served from the journal, not re-run
     (exactly-once-observable): the only fresh execution is [inflight] *)
  let d = ok (query endpoint ~trace (analyze ~trace "done-before")) in
  check_string "old result intact" "completed" (status d);
  check_bool "old result from cache" true (bool_field "resumed" d);
  let h = ok (query endpoint Swire.Health) in
  check_bool
    (Printf.sprintf "exactly one fresh execution (got %g)" (num "executed" h))
    true
    (num "executed" h = 1.0)

let test_overload_and_ladder () =
  let dir = fresh_dir "svc_load" in
  let trace = Lazy.force trace_bytes in
  let config =
    { (base_config dir) with Server.queue_capacity = 4; workers = 1 }
  in
  with_daemon config @@ fun endpoint _pid ->
  (* r0 occupies the lone worker for 2s; r1..r4 fill the queue to
     capacity; r5 must be refused — deterministically, with a hint. *)
  let a0 =
    ok (query endpoint ~trace (analyze ~trace ~sleep:2.0 ~wait:false "r0"))
  in
  check_string "r0 accepted" "accepted" (status a0);
  (* r0 is dispatched as soon as the daemon's loop turns; give it a
     beat so the queue below is exactly r1..r4 *)
  Unix.sleepf 0.3;
  for i = 1 to 4 do
    let a =
      ok
        (query endpoint ~trace
           (analyze ~trace ~wait:false (Printf.sprintf "r%d" i)))
    in
    check_string (Printf.sprintf "r%d accepted" i) "accepted" (status a)
  done;
  let rejected = ok (query endpoint ~trace (analyze ~trace ~wait:false "r5")) in
  check_string "r5 refused" "overloaded" (status rejected);
  check_bool "retry-after hint" true
    (num "retry_after_seconds" rejected > 0.0);
  check_bool "hint is bounded" true
    (num "retry_after_seconds" rejected <= 60.0);
  check_bool "depth reported" true (num "queue_depth" rejected = 4.0);
  check_bool "capacity reported" true (num "queue_capacity" rejected = 4.0);
  let h = ok (query endpoint Swire.Health) in
  check_string "pressure at the top of the ladder" "streaming"
    (str "pressure" h);
  check_bool "overload counted" true (num "overloaded" h = 1.0);
  check_bool "queue never exceeded capacity" true
    (num "max_queue_depth" h <= 4.0);
  (* The ladder at dispatch (fill = depth after pop / capacity):
     r1 sees 3/4 -> streaming, r2 sees 2/4 -> worklist, r3 and r4 are
     below the low-water mark -> dense.  Deterministic because the
     lone worker serializes dispatch and all five were queued before
     r0 finished. *)
  let engine_of id = str "engine" (poll_result endpoint id) in
  check_string "r0 ran undegraded" "dense" (engine_of "r0");
  check_string "r1 degraded to streaming" "streaming" (engine_of "r1");
  check_string "r2 degraded to worklist" "worklist" (engine_of "r2");
  check_string "r3 ran dense" "dense" (engine_of "r3");
  check_string "r4 ran dense" "dense" (engine_of "r4");
  (* every response names both the engine that ran and the one asked
     for *)
  let r1 = poll_result endpoint "r1" in
  check_string "requested engine reported" "auto" (str "engine_requested" r1);
  check_string "ladder level reported" "streaming" (str "ladder" r1);
  (* the streaming engine reports one race per racy location, not one
     per pair — degraded runs still surface the bug *)
  check_bool "degraded runs still find the race" true (num "races" r1 >= 1.0);
  let h = ok (query endpoint Swire.Health) in
  check_bool "two degradations counted" true (num "degraded" h = 2.0)

let test_malformed_frames_cost_one_connection () =
  let dir = fresh_dir "svc_mal" in
  let trace = Lazy.force trace_bytes in
  let config = base_config dir in
  with_daemon config @@ fun endpoint _pid ->
  let raw_roundtrip payload =
    let t = ok (Client.connect endpoint) in
    Client.set_read_timeout t 5.0;
    Fun.protect
      ~finally:(fun () -> Client.close t)
      (fun () ->
         Proc_pool.write_frame t.Client.fd (Bytes.of_string payload);
         match Proc_pool.read_frame t.Client.fd with
         | Some frame -> ok (Swire.parse_response (Bytes.to_string frame))
         | None -> Alcotest.fail "daemon closed without responding")
  in
  (* not JSON *)
  let r = raw_roundtrip "this is not json" in
  check_string "garbage -> error" "error" (status r);
  (* a trace announcement over the cap *)
  let r =
    raw_roundtrip
      (Printf.sprintf
         {|{"schema":"droidracer-request/1","op":"analyze","id":"big","trace_bytes":%d}|}
         (config.Server.max_trace_bytes + 1))
  in
  check_string "oversized announcement -> error" "error" (status r);
  (* a trace frame shorter than announced *)
  let t = ok (Client.connect endpoint) in
  Client.set_read_timeout t 5.0;
  Proc_pool.write_frame t.Client.fd
    (Bytes.of_string
       {|{"schema":"droidracer-request/1","op":"analyze","id":"short","trace_bytes":10}|});
  Proc_pool.write_frame t.Client.fd (Bytes.of_string "abc");
  (match Proc_pool.read_frame t.Client.fd with
   | Some frame ->
     let r = ok (Swire.parse_response (Bytes.to_string frame)) in
     check_string "torn trace -> error" "error" (status r)
   | None -> Alcotest.fail "daemon closed without responding");
  Client.close t;
  (* after all that abuse the daemon still serves real work *)
  let r = ok (query endpoint ~trace (analyze ~trace "after-abuse")) in
  check_string "daemon survived" "completed" (status r);
  let h = ok (query endpoint Swire.Health) in
  check_bool "errors counted" true (num "errors" h >= 3.0)

let test_waiter_disconnect_mid_request () =
  let dir = fresh_dir "svc_gone" in
  let trace = Lazy.force trace_bytes in
  with_daemon (base_config dir) @@ fun endpoint _pid ->
  (* a waiting client that vanishes before its result is ready must
     cost nothing: the daemon finishes the work and serves it to the
     next asker (and must not die of SIGPIPE/EPIPE writing to the
     corpse) *)
  let t = ok (Client.connect endpoint) in
  Proc_pool.write_frame t.Client.fd
    (Bytes.of_string
       (Swire.request_json (analyze ~trace ~sleep:0.5 "abandoned")));
  Proc_pool.write_frame t.Client.fd (Bytes.of_string trace);
  Client.close t;
  let r = poll_result endpoint "abandoned" in
  check_string "finished for nobody" "completed" (status r);
  let h = ok (query endpoint Swire.Health) in
  check_string "daemon unharmed" "ok" (status h)

let test_loadgen_against_daemon () =
  let dir = fresh_dir "svc_lg" in
  let trace = Lazy.force trace_bytes in
  let config = { (base_config dir) with Server.workers = 2 } in
  with_daemon config @@ fun endpoint _pid ->
  let stats =
    Loadgen.run ~endpoint ~clients:3 ~requests:4
      ~traces:[| ("mp", trace) |]
      ~deadline_seconds:60.0 ~tag:"t" ()
  in
  check_int "nothing lost" 0 (Loadgen.lost stats);
  check_int "everything completed" 12 (Loadgen.completed stats);
  let json = ok (Swire.parse_response (Loadgen.json_string stats)) in
  check_string "bench schema" "droidracer-service-bench/1" (str "schema" json);
  check_bool "throughput positive" true (num "traces_per_sec" json > 0.0);
  check_bool "p99 covers p50" true
    (match Json_parse.member "latency_seconds" json with
     | Some lat -> num "p99" lat >= num "p50" lat
     | None -> Alcotest.fail "no latency_seconds")

let () =
  Alcotest.run "service"
    [ ( "wire"
      , [ Alcotest.test_case "endpoints parse" `Quick test_endpoints
        ; Alcotest.test_case "request round-trip" `Quick
            test_request_roundtrip
        ; Alcotest.test_case "incremental decoder" `Quick
            test_decoder_incremental
        ; Alcotest.test_case "response JSON round-trip" `Quick
            test_response_json_roundtrip
        ] )
    ; ( "daemon"
      , [ Alcotest.test_case "complete, dedupe, unknown" `Slow
            test_e2e_completed_and_dedupe
        ; Alcotest.test_case "SIGTERM drains the queue" `Slow
            test_drain_finishes_queue
        ; Alcotest.test_case "SIGKILL + resume is exactly-once" `Slow
            test_sigkill_resume_exactly_once
        ; Alcotest.test_case "overload refusal and the ladder" `Slow
            test_overload_and_ladder
        ; Alcotest.test_case "malformed frames contained" `Slow
            test_malformed_frames_cost_one_connection
        ; Alcotest.test_case "waiter disconnect survived" `Slow
            test_waiter_disconnect_mid_request
        ; Alcotest.test_case "load generator end to end" `Slow
            test_loadgen_against_daemon
        ] )
    ]
