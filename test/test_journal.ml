(* The crash-safe sweep journal.

   The contract under test: records survive a round trip byte for byte
   (arbitrary app names, binary payloads); a torn final line — the only
   damage a kill -9 mid-write can inflict — is skipped, counted
   (journal.torn) and repaired on resume; a non-journal file is refused;
   and a sweep interrupted after any prefix of apps, then resumed,
   produces outcomes and tables bit-identical to an uninterrupted run,
   for jobs 1 and 4 (the qcheck property). *)

module Journal = Droidracer_report.Journal
module Supervisor = Droidracer_report.Supervisor
module Experiments = Droidracer_report.Experiments
module Table = Droidracer_report.Table
module Synthetic = Droidracer_corpus.Synthetic
module Catalog = Droidracer_corpus.Catalog
module Detector = Droidracer_core.Detector
module Obs = Droidracer_obs.Obs

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int

let counter name =
  Option.value (List.assoc_opt name (Obs.snapshot ()).Obs.counters) ~default:0

let with_obs f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect f ~finally:(fun () ->
    Obs.disable ();
    Obs.reset ())

let temp_path () =
  let path = Filename.temp_file "droidracer-journal" ".jsonl" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let or_fail = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "journal error: %s" msg

(* Awkward on purpose: quotes, newlines, NUL and non-ASCII bytes in
   both the app name and the payload. *)
let sample_entries =
  [ ("Aard \"Dictionary\"", "plain payload")
  ; ("Music\nPlayer", String.init 64 (fun i -> Char.chr (i * 4 land 0xff)))
  ; ("K-9 Mail", "\x00\xff\x80 marshalled-ish \x01\x02")
  ]

let write_sample path =
  let j = or_fail (Journal.create path) in
  List.iter (fun (app, payload) -> Journal.append j ~app ~payload) sample_entries;
  Journal.close j;
  j

let test_roundtrip () =
  let path = temp_path () in
  ignore (write_sample path);
  let j = or_fail (Journal.create ~resume:true path) in
  Journal.close j;
  check_int "no torn lines" 0 (Journal.torn_lines j);
  check_int "no stale records" 0 (Journal.stale_records j);
  check_bool "a clean journal carries no warnings" true
    (Journal.warnings j = []);
  check_bool "entries survive byte for byte" true
    (Journal.prior j = sample_entries)

let test_torn_final_line () =
  with_obs @@ fun () ->
  let path = temp_path () in
  ignore (write_sample path);
  (* A kill -9 mid-append leaves a partial final line: chop bytes off
     the tail, cutting the last record's frame in half. *)
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (size - 15);
  Unix.close fd;
  let j = or_fail (Journal.create ~resume:true path) in
  check_int "one torn line skipped" 1 (Journal.torn_lines j);
  check_int "journal.torn" 1 (counter "journal.torn");
  (* the tear surfaces as a structured warning the daemon's health
     report can carry verbatim *)
  (match Journal.warnings j with
   | [ Journal.Torn_lines 1 ] -> ()
   | ws -> Alcotest.failf "expected one torn-lines warning, got %d" (List.length ws));
  check_bool "warning message names the tear" true
    (Astring_contains.contains
       (Journal.warning_message (Journal.Torn_lines 1))
       "torn");
  (match Json_parse.parse (Journal.warning_json (Journal.Torn_lines 1)) with
   | Ok json ->
     check_bool "warning JSON kind" true
       (Option.bind (Json_parse.member "kind" json) Json_parse.to_string
        = Some "torn_lines");
     check_bool "warning JSON count" true
       (Option.bind (Json_parse.member "count" json) Json_parse.to_number
        = Some 1.0)
   | Error msg -> Alcotest.failf "warning JSON does not parse: %s" msg);
  check_bool "intact prefix survives" true
    (Journal.prior j = [ List.nth sample_entries 0; List.nth sample_entries 1 ]);
  (* The rewrite repaired the file: appending and resuming again is
     clean. *)
  Journal.append j ~app:"Replayed" ~payload:"after the tear";
  Journal.close j;
  let j2 = or_fail (Journal.create ~resume:true path) in
  Journal.close j2;
  check_int "no torn lines after repair" 0 (Journal.torn_lines j2);
  check_int "three records again" 3 (List.length (Journal.prior j2))

let test_rejects_non_journal () =
  let path = temp_path () in
  Out_channel.with_open_bin path (fun oc ->
    Out_channel.output_string oc "{\"schema\":\"something-else/9\"}\n");
  (match Journal.create ~resume:true path with
   | Ok _ -> Alcotest.fail "resumed from a non-journal file"
   | Error msg ->
     check_bool "error names the schema" true
       (Astring_contains.contains msg "something-else/9"));
  (* Without --resume the file is simply truncated. *)
  let j = or_fail (Journal.create path) in
  Journal.close j

let test_missing_file_resumes_fresh () =
  let path = temp_path () in
  Sys.remove path;
  let j = or_fail (Journal.create ~resume:true path) in
  check_int "nothing to replay" 0 (List.length (Journal.prior j));
  Journal.close j

(* {1 Resume = uninterrupted (qcheck)} *)

let specs2 =
  match Catalog.all with
  | a :: b :: _ -> [ a; b ]
  | _ -> assert false

let shape = function
  | Supervisor.Completed run ->
    Printf.sprintf "completed %s races=%d"
      run.Experiments.ar_built.Synthetic.b_spec.Synthetic.s_name
      (List.length run.Experiments.ar_report.Detector.all_races)
  | Supervisor.Failed f ->
    Printf.sprintf "failed %s %s retries=%d backoff=%.6f reason=%s"
      f.Supervisor.f_app
      (Supervisor.reason_label f.Supervisor.f_reason)
      f.Supervisor.f_retries f.Supervisor.f_backoff
      (Supervisor.reason_detail f.Supervisor.f_reason)

let take n xs = List.filteri (fun i _ -> i < n) xs

let resume_equals_uninterrupted (seed, jobs, prefix) =
  let budget = { Supervisor.timeout_seconds = Some 60.0; max_events = None } in
  let path = temp_path () in
  (* The interrupted run: only the first [prefix] apps got journalled
     before the (simulated) kill. *)
  let j0 = Result.get_ok (Journal.create path) in
  let _ : Supervisor.outcome list =
    Supervisor.with_faults ~seed (fun () ->
      Supervisor.run_catalog ~jobs ~specs:(take prefix specs2) ~budget
        ~journal:j0 ())
  in
  Journal.close j0;
  (* The resumed run over the full spec list. *)
  let j1 = Result.get_ok (Journal.create ~resume:true path) in
  let resumed =
    Supervisor.with_faults ~seed (fun () ->
      Supervisor.run_catalog ~jobs ~specs:specs2 ~budget ~journal:j1 ())
  in
  Journal.close j1;
  (* The uninterrupted reference. *)
  let direct =
    Supervisor.with_faults ~seed (fun () ->
      Supervisor.run_catalog ~jobs ~specs:specs2 ~budget ())
  in
  let table outcomes =
    Table.render (Experiments.table2 (Supervisor.completed outcomes))
  in
  List.map shape resumed = List.map shape direct
  && String.equal (table resumed) (table direct)

let qcheck_resume =
  QCheck2.Test.make ~count:6 ~name:"resume reproduces the uninterrupted sweep"
    QCheck2.Gen.(
      triple (oneofl [ 1; 3; 6 ]) (oneofl [ 1; 4 ]) (oneofl [ 0; 1; 2 ]))
    resume_equals_uninterrupted

let () =
  Alcotest.run "journal"
    [ ( "records"
      , [ Alcotest.test_case "roundtrip" `Quick test_roundtrip
        ; Alcotest.test_case "torn final line skipped and counted" `Quick
            test_torn_final_line
        ; Alcotest.test_case "non-journal file refused" `Quick
            test_rejects_non_journal
        ; Alcotest.test_case "missing file resumes fresh" `Quick
            test_missing_file_resumes_fresh
        ] )
    ; ( "resume"
      , [ QCheck_alcotest.to_alcotest qcheck_resume ] )
    ]
