(* The ingest gate: admissibility validation of trace files.

   Three angles:
   - the adversarial corpus under data/malformed/ must each be rejected
     with the exact rule and line number (table-driven, and the table is
     required to cover every file in the directory);
   - valid-by-construction traces — the helpers' figures, random
     semantics-driven traces, and real interpreter runs — must all be
     accepted;
   - the file reader must stay streaming: a million-event trace is
     validated without materialising it. *)

open Helpers
module Wellformed = Droidracer_trace.Wellformed
module Runtime = Droidracer_appmodel.Runtime
module Music_player = Droidracer_corpus.Music_player
module Synthetic = Droidracer_corpus.Synthetic
module Catalog = Droidracer_corpus.Catalog

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int

(* {1 The adversarial corpus} *)

type expected =
  | Syntax of int * int  (* line, column *)
  | Rule of Wellformed.rule * int  (* rule violated, line *)

(* dune runtest executes in the test build directory, dune exec in the
   project root; accept both. *)
let malformed_dir =
  if Sys.file_exists "data/malformed" then "data/malformed"
  else "test/data/malformed"

(* One row per file; the directory sweep below fails if a file is
   missing from this table or vice versa. *)
let corpus_table : (string * expected) list =
  [ ("begin-without-loop.trace", Rule (Wellformed.Begin_without_loop, 4))
  ; ("begin-without-post.trace", Rule (Wellformed.Begin_without_post, 4))
  ; ("begin-wrong-thread.trace", Rule (Wellformed.Begin_wrong_thread, 8))
  ; ("binary-junk.trace", Syntax (1, 1))
  ; ("cancel-not-pending.trace", Rule (Wellformed.Cancel_not_pending, 2))
  ; ("double-attach.trace", Rule (Wellformed.Double_attach, 3))
  ; ("double-begin.trace", Rule (Wellformed.Double_begin, 7))
  ; ("double-enable.trace", Rule (Wellformed.Double_enable, 3))
  ; ("double-loop.trace", Rule (Wellformed.Double_loop, 4))
  ; ("double-post.trace", Rule (Wellformed.Double_post, 5))
  ; ("end-without-begin.trace", Rule (Wellformed.End_without_begin, 5))
  ; ("fifo-violation.trace", Rule (Wellformed.Fifo_violation, 6))
  ; ("fork-existing-thread.trace", Rule (Wellformed.Fork_existing_thread, 2))
  ; ("join-unfinished-thread.trace", Rule (Wellformed.Join_unfinished_thread, 3))
  ; ("late-thread-init.trace", Rule (Wellformed.Late_thread_init, 2))
  ; ("lock-held-elsewhere.trace", Rule (Wellformed.Lock_held_elsewhere, 4))
  ; ("loop-without-attach.trace", Rule (Wellformed.Loop_without_attach, 2))
  ; ("nested-begin.trace", Rule (Wellformed.Nested_begin, 7))
  ; ("operation-after-exit.trace", Rule (Wellformed.Operation_after_exit, 3))
  ; ("post-without-queue.trace", Rule (Wellformed.Post_without_queue, 2))
  ; ("syntax-bad-delay.trace", Syntax (3, 16))
  ; ("syntax-bad-location.trace", Syntax (2, 9))
  ; ("syntax-bad-thread.trace", Syntax (1, 1))
  ; ("syntax-missing-args.trace", Syntax (2, 4))
  ; ("syntax-truncated-line.trace", Syntax (2, 1))
  ; ("syntax-unknown-op.trace", Syntax (3, 4))
  ; ("thread-reinitialized.trace", Rule (Wellformed.Thread_reinitialized, 2))
  ; ("unbalanced-release.trace", Rule (Wellformed.Unbalanced_release, 2))
  ]

let test_malformed_corpus () =
  check_bool "at least 15 adversarial files" true
    (List.length corpus_table >= 15);
  List.iter
    (fun (file, expected) ->
       let path = Filename.concat malformed_dir file in
       match Wellformed.check_file path, expected with
       | Ok _, _ -> Alcotest.failf "%s: accepted, expected a rejection" file
       | Error (Wellformed.Syntax pe), Syntax (line, column) ->
         check_int (file ^ ": syntax line") line pe.Droidracer_trace.Trace_io.pe_line;
         check_int (file ^ ": syntax column") column
           pe.Droidracer_trace.Trace_io.pe_column
       | Error (Wellformed.Violation e), Rule (rule, line) ->
         check Alcotest.string (file ^ ": rule")
           (Wellformed.rule_name rule)
           (Wellformed.rule_name e.Wellformed.rule);
         check_int (file ^ ": line") line e.Wellformed.line
       | Error failure, _ ->
         Alcotest.failf "%s: wrong failure class: %s" file
           (Wellformed.failure_message failure))
    corpus_table

(* Every diagnosis must carry its line number in the rendered message —
   the "structured, line-numbered diagnosis" of the acceptance
   criteria. *)
let test_malformed_messages_carry_lines () =
  List.iter
    (fun (file, expected) ->
       let path = Filename.concat malformed_dir file in
       match Wellformed.check_file path with
       | Ok _ -> Alcotest.failf "%s: accepted" file
       | Error failure ->
         let line =
           match expected with Syntax (l, _) | Rule (_, l) -> l
         in
         check (Alcotest.option Alcotest.int) (file ^ ": failure_line")
           (Some line)
           (Wellformed.failure_line failure);
         check_bool (file ^ ": message names the line") true
           (Astring_contains.contains
              (Wellformed.failure_message failure)
              (Printf.sprintf "line %d" line)))
    corpus_table

(* The table and the directory must agree: a new adversarial file
   without an expectation (or a stale row) is a test bug. *)
let test_corpus_is_exhaustive () =
  let on_disk =
    Sys.readdir malformed_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
    |> List.sort String.compare
  in
  let in_table = List.sort String.compare (List.map fst corpus_table) in
  check (Alcotest.list Alcotest.string) "table covers the directory" on_disk
    in_table

(* {1 Acceptance of valid traces} *)

let test_accepts_figures () =
  List.iter
    (fun (name, t) ->
       match Wellformed.check t with
       | Ok _ -> ()
       | Error e ->
         Alcotest.failf "%s rejected: %s" name (Wellformed.error_message e))
    [ ("figure3", figure3); ("figure4", figure4) ]

let test_accepts_interpreter_traces () =
  let runs =
    [ ( "music-player BACK"
      , Runtime.run ~options:Music_player.options Music_player.app
          Music_player.back_scenario )
    ; ( "music-player PLAY"
      , Runtime.run ~options:Music_player.options Music_player.app
          Music_player.play_scenario )
    ]
  in
  let aard =
    let spec = List.hd Catalog.all in
    let b = Synthetic.build spec in
    ( spec.Synthetic.s_name
    , Runtime.run ~options:b.Synthetic.b_options b.Synthetic.b_app
        b.Synthetic.b_events )
  in
  List.iter
    (fun (name, r) ->
       List.iter
         (fun (kind, t) ->
            match Wellformed.check t with
            | Ok stats ->
              check_int
                (Printf.sprintf "%s (%s): stats count the events" name kind)
                (Trace.length t) stats.Wellformed.events
            | Error e ->
              Alcotest.failf "%s (%s) rejected: %s" name kind
                (Wellformed.error_message e))
         [ ("observed", r.Runtime.observed); ("full", r.Runtime.full) ])
    (aard :: runs)

let test_prefixes_accepted () =
  (* Truncation is not an error: crashed recordings stay analysable. *)
  let events = Trace.events figure3 in
  let n = List.length events in
  for k = 0 to n do
    let prefix = List.filteri (fun i _ -> i < k) events in
    match Wellformed.check_events prefix with
    | Ok _ -> ()
    | Error e ->
      Alcotest.failf "prefix of length %d rejected: %s" k
        (Wellformed.error_message e)
  done

let test_stats () =
  let t =
    trace
      [ threadinit 1
      ; attachq 1
      ; looponq 1
      ; post 0 (task "a") 1
      ; post 0 (task "b") 1
      ; begin_task 1 (task "a")
      ; acquire 1 "l"
      ; write 1 (loc "f")
      ; release 1 "l"
      ; end_task 1 (task "a")
      ]
  in
  match Wellformed.check t with
  | Error e -> Alcotest.failf "rejected: %s" (Wellformed.error_message e)
  | Ok s ->
    check_int "events" 10 s.Wellformed.events;
    check_int "threads" 2 s.Wellformed.threads;
    check_int "queue threads" 1 s.Wellformed.queue_threads;
    check_int "tasks" 2 s.Wellformed.tasks;
    check_int "completed" 1 s.Wellformed.completed_tasks;
    check_int "pending" 1 s.Wellformed.pending_tasks;
    check_int "locks" 1 s.Wellformed.locks;
    check_int "accesses" 1 s.Wellformed.accesses;
    check_int "max queue depth" 2 s.Wellformed.max_queue_depth

let test_rule_names_distinct () =
  let names = List.map Wellformed.rule_name Wellformed.all_rules in
  check_int "no duplicate rule names"
    (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_missing_file () =
  match Wellformed.check_file "data/no-such-file.trace" with
  | Error (Wellformed.Io _) -> ()
  | Error f -> Alcotest.failf "wrong failure: %s" (Wellformed.failure_message f)
  | Ok _ -> Alcotest.fail "accepted a missing file"

(* {1 Streaming}

   A million-event trace must stream through the validator: the state is
   proportional to live entities (here: one looper, one task in flight),
   never to the event count. *)

let test_streaming_million_events () =
  let path = Filename.temp_file "droidracer-large" ".trace" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let events_written =
    Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "t1 threadinit\nt1 attachq\nt1 looponq\n";
      let iterations = 250_000 in
      for i = 0 to iterations - 1 do
        Printf.fprintf oc "t0 post p#%d t1\nt1 begin p#%d\nt1 read C.f@0\nt1 end p#%d\n" i
          i i
      done;
      3 + (4 * iterations))
  in
  check_bool "the file really is a million events" true
    (events_written >= 1_000_000);
  match Wellformed.check_file path with
  | Error f -> Alcotest.failf "rejected: %s" (Wellformed.failure_message f)
  | Ok s ->
    check_int "events" events_written s.Wellformed.events;
    check_int "tasks" 250_000 s.Wellformed.tasks;
    check_int "max queue depth stays constant" 1 s.Wellformed.max_queue_depth

(* {1 Properties} *)

(* Valid-by-construction ⇒ accepted: every trace the semantics-driven
   generator emits satisfies the admissibility rules (the validator is
   weaker than Step.validate by design, never stronger). *)
let prop_random_traces_accepted =
  QCheck2.Test.make ~name:"semantics-valid random traces pass the validator"
    ~count:120
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 10 150))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       match Wellformed.check t with
       | Ok stats -> stats.Wellformed.events = Trace.length t
       | Error _ -> false)

(* The streaming file reader and the in-memory parser agree event for
   event. *)
let prop_streaming_load_equals_parse =
  QCheck2.Test.make
    ~name:"streaming load agrees with the in-memory parser" ~count:40
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 10 120))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       let text = Trace_io.to_string t in
       let path = Filename.temp_file "droidracer-roundtrip" ".trace" in
       Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
       Out_channel.with_open_text path (fun oc ->
         Out_channel.output_string oc text);
       match Trace_io.parse text, Trace_io.load path with
       | Ok in_memory, Ok streamed ->
         Trace.length in_memory = Trace.length streamed
         && List.for_all2 Trace.event_equal (Trace.events in_memory)
              (Trace.events streamed)
       | _ -> false)

let () =
  Alcotest.run "wellformed"
    [ ( "malformed corpus"
      , [ Alcotest.test_case "exact rule and line per file" `Quick
            test_malformed_corpus
        ; Alcotest.test_case "messages carry line numbers" `Quick
            test_malformed_messages_carry_lines
        ; Alcotest.test_case "expectation table is exhaustive" `Quick
            test_corpus_is_exhaustive
        ] )
    ; ( "acceptance"
      , [ Alcotest.test_case "figure traces" `Quick test_accepts_figures
        ; Alcotest.test_case "interpreter traces (observed + full)" `Quick
            test_accepts_interpreter_traces
        ; Alcotest.test_case "prefixes stay admissible" `Quick
            test_prefixes_accepted
        ; Alcotest.test_case "stats" `Quick test_stats
        ; Alcotest.test_case "rule names distinct" `Quick
            test_rule_names_distinct
        ; Alcotest.test_case "missing file is Io" `Quick test_missing_file
        ] )
    ; ( "streaming"
      , [ Alcotest.test_case "million-event file" `Slow
            test_streaming_million_events
        ] )
    ; ( "properties"
      , [ QCheck_alcotest.to_alcotest prop_random_traces_accepted
        ; QCheck_alcotest.to_alcotest prop_streaming_load_equals_parse
        ] )
    ]
