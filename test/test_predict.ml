open Helpers
module Graph = Droidracer_core.Graph
module Hb = Droidracer_core.Happens_before
module Detector = Droidracer_core.Detector
module Race = Droidracer_core.Race
module Streaming = Droidracer_core.Streaming_engine
module Wellformed = Droidracer_trace.Wellformed
module Longtrace = Droidracer_corpus.Longtrace
module Vargen = Droidracer_corpus.Vargen
module Predict = Droidracer_predict.Predict
module Solver = Droidracer_predict.Predict.Solver
module Obs = Droidracer_obs.Obs

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let dense_races ?(config = Detector.default_config) ?(jobs = 1) t =
  let hb = Detector.relation ~config ~jobs t in
  Race.detect ~jobs t ~hb:(Hb.hb hb)

let race_locations races =
  List.map (fun r -> Ident.Location.to_string (Race.location r)) races
  |> List.sort_uniq String.compare

let positions (r : Race.t) =
  (r.Race.first.Race.position, r.Race.second.Race.position)

let verdict_of report (a, b) =
  List.find_map
    (fun (p : Predict.pair_result) ->
       if positions p.Predict.pr_pair = (a, b) then
         Some p.Predict.pr_verdict
       else None)
    report.Predict.pairs

let is_feasible = function Some (Predict.Feasible _) -> true | _ -> false

(* The witness soundness oracle used throughout: a Feasible verdict must
   carry a trace the independent checkers accept, with the racy pair at
   its recorded positions and unordered there. *)
let witness_sound t (p : Predict.pair_result) =
  match p.Predict.pr_verdict with
  | Predict.Refuted _ | Predict.Unknown _ -> true
  | Predict.Feasible w ->
    let wt = w.Predict.w_trace in
    let ops_match =
      Trace.op wt w.Predict.w_first
      = Trace.op t p.Predict.pr_pair.Race.first.Race.position
      && Trace.op wt w.Predict.w_second
         = Trace.op t p.Predict.pr_pair.Race.second.Race.position
    in
    w.Predict.w_wellformed
    && Result.is_ok (Wellformed.check wt)
    && w.Predict.w_replayed = Some (Step.is_valid wt)
    && w.Predict.w_unordered && ops_match
    && (let hb = Detector.relation wt in
        not
          (Hb.ordered hb w.Predict.w_first w.Predict.w_second))

(* {1 Pinned: the paper figures} *)

let test_figure4 () =
  let report = Predict.analyze figure4 in
  let dense = dense_races figure4 in
  check_bool "has candidates" true (report.Predict.candidates > 0);
  List.iter
    (fun r ->
       check_bool "dense race is feasible" true
         (is_feasible (verdict_of report (positions r))))
    dense;
  List.iter
    (fun p -> check_bool "witness sound" true (witness_sound figure4 p))
    report.Predict.pairs

(* {1 Pinned: a minimal lock-masked race}

   The observed schedule orders the two writes only through the LOCK
   edge (write1 ⪯ rel1 ⪯ acq2 ⪯ write2 with restricted transitivity);
   running the second task first is admissible, so the predictive
   engine must find the flip that every batch engine misses. *)

let p1 = task "p1"
let p2 = task "p2"
let masked_trace =
  let g = loc "g" in
  trace
    [ threadinit 0
    ; threadinit 1
    ; attachq 1
    ; looponq 1
    ; threadinit 2
    ; attachq 2
    ; looponq 2
    ; post 0 p1 1
    ; post 0 p2 2
    ; begin_task 1 p1
    ; write 1 g  (* 10 *)
    ; acquire 1 "l"
    ; release 1 "l"
    ; end_task 1 p1
    ; begin_task 2 p2
    ; acquire 2 "l"
    ; release 2 "l"
    ; write 2 g  (* 17 *)
    ; end_task 2 p2
    ]

let test_lock_masked_minimal () =
  (* Not a race of the observed schedule... *)
  check_int "no dense race" 0 (List.length (dense_races masked_trace));
  let streaming_races, _ = Streaming.detect masked_trace in
  check_int "no streaming race" 0 (List.length streaming_races);
  (* ...but feasible by reordering. *)
  let report = Predict.analyze masked_trace in
  check_int "one reordering-only race" 1 report.Predict.extra;
  (match verdict_of report (10, 17) with
   | Some (Predict.Feasible w) ->
     check_bool "flipped" true w.Predict.w_flipped;
     check_bool "second now first" true
       (w.Predict.w_second < w.Predict.w_first);
     check_bool "witness replays" true
       (w.Predict.w_replayed = Some true)
   | _ -> Alcotest.fail "pair (10,17) not feasible");
  List.iter
    (fun p ->
       check_bool "witness sound" true (witness_sound masked_trace p))
    report.Predict.pairs

(* Without the lock there is nothing to mask: the pair is already a
   dense race and must stay feasible (with the trivial witness). *)
let test_unmasked_still_feasible () =
  let g = loc "g" in
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; attachq 1
      ; looponq 1
      ; threadinit 2
      ; attachq 2
      ; looponq 2
      ; post 0 p1 1
      ; post 0 p2 2
      ; begin_task 1 p1
      ; write 1 g  (* 10 *)
      ; end_task 1 p1
      ; begin_task 2 p2
      ; write 2 g  (* 13 *)
      ; end_task 2 p2
      ]
  in
  check_int "dense race" 1 (List.length (dense_races t));
  let report = Predict.analyze t in
  check_int "observed" 1 report.Predict.observed;
  check_bool "feasible" true (is_feasible (verdict_of report (10, 13)))

(* {1 Pinned: FIFO alone refutes}

   Two immediate posts by one poster to one looper: the static must
   edges (program order, post, attach — no lock involved) leave the two
   task bodies unordered, yet FIFO dispatch of the must-ordered posts
   forces them in every admissible schedule.  The pair is a relaxed
   candidate, is not a dense race, and must be Refuted — by the
   must-relation pre-check in the engine, and by queue simulation (not
   a hang) when the window search runs directly. *)

let fifo_trace =
  let g = loc "g" in
  trace
    [ threadinit 0
    ; threadinit 1
    ; attachq 1
    ; looponq 1
    ; post 0 p1 1
    ; post 0 p2 1
    ; begin_task 1 p1
    ; write 1 g  (* 7 *)
    ; end_task 1 p1
    ; begin_task 1 p2
    ; write 1 g  (* 10 *)
    ; end_task 1 p2
    ]

let test_fifo_refutes () =
  (* A relaxed candidate: with FIFO off nothing orders the bodies. *)
  let relaxed =
    { Detector.default_config with
      Detector.hb = Predict.relaxed_config Hb.default
    }
  in
  check_int "relaxed candidate" 1
    (List.length (dense_races ~config:relaxed fifo_trace));
  (* Not a dense race: FIFO (not LOCK) orders it. *)
  check_int "no dense race" 0 (List.length (dense_races fifo_trace));
  let report = Predict.analyze fifo_trace in
  (match verdict_of report (7, 10) with
   | Some (Predict.Refuted Predict.Must_path) -> ()
   | _ -> Alcotest.fail "pair (7,10) not refuted by the must-relation");
  (* The window search reaches the same verdict from the static must
     edges alone: every emission order the dispatch policy admits keeps
     the pair in order, and the search terminates by exhaustion. *)
  let succs = Predict.must_successors fifo_trace in
  let outcome, iterations =
    Solver.search ~trace:fifo_trace ~state0:State.initial ~succs ~lo:0
      ~first:7 ~second:10 ~max_iterations:50_000
  in
  check_bool "search exhausts" true (outcome = Solver.Exhausted);
  check_bool "terminates within budget" true (iterations <= 50_000)

(* {1 Adversarial: the solver always terminates} *)

let test_cyclic_constraints () =
  (* A cycle in the constraint graph (impossible from real traces, but
     the solver must never hang on one). *)
  let succs = Array.make (Trace.length fifo_trace) [] in
  succs.(7) <- [ 10 ];
  succs.(10) <- [ 8; 7 ];
  succs.(8) <- [ 7 ];
  check_bool "toposort reports the cycle" true
    (Solver.toposort ~n:4
       ~succs:[| [ 1 ]; [ 2 ]; [ 0 ]; [] |]
     = None);
  let outcome, iterations =
    Solver.search ~trace:fifo_trace ~state0:State.initial ~succs ~lo:0
      ~first:7 ~second:10 ~max_iterations:1000
  in
  check_bool "cyclic outcome" true (outcome = Solver.Cyclic);
  check_int "no search nodes expanded" 0 iterations

let test_must_path_shortcut () =
  let succs = Array.make (Trace.length fifo_trace) [] in
  succs.(7) <- [ 9 ];
  succs.(9) <- [ 10 ];
  let outcome, _ =
    Solver.search ~trace:fifo_trace ~state0:State.initial ~succs ~lo:0
      ~first:7 ~second:10 ~max_iterations:1000
  in
  check_bool "must-ordered" true (outcome = Solver.Must_ordered)

let test_window_exhaustion () =
  Obs.enable ();
  Obs.reset ();
  let params = { Predict.default_params with Predict.window = 4 } in
  let report = Predict.analyze ~params masked_trace in
  (match verdict_of report (10, 17) with
   | Some (Predict.Unknown Predict.Window_exhausted) -> ()
   | _ -> Alcotest.fail "pair (10,17) should exhaust a 4-event window");
  let counted = Obs.counter_value "predict.window_exhausted" in
  Obs.disable ();
  Obs.reset ();
  check_bool "window_exhausted counter" true (counted >= 1)

let test_budget_exhaustion () =
  Obs.enable ();
  Obs.reset ();
  let params = { Predict.default_params with Predict.max_iterations = 1 } in
  let report = Predict.analyze ~params masked_trace in
  (match verdict_of report (10, 17) with
   | Some (Predict.Unknown Predict.Budget_exhausted) -> ()
   | _ -> Alcotest.fail "pair (10,17) should exhaust a 1-node budget");
  let counted = Obs.counter_value "predict.unknown" in
  Obs.disable ();
  Obs.reset ();
  check_bool "unknown counter" true (counted >= 1)

(* {1 Differential completeness on the planted corpora}

   Lock-masked Longtrace configs plant reordering-only ground truth:
   the masked locations must be invisible to the batch and streaming
   engines and found by the predictive engine, and predictive recall
   must cover everything the streaming engine reports.  Three pinned
   (seed, shape) cases plus a Vargen-derived variant. *)

let longtrace_trace config ~events =
  let evs = ref [] in
  let n = Longtrace.generate ~config ~events (fun e -> evs := e :: !evs) in
  check_int "emitted" events n;
  Trace.of_events_exn (List.rev !evs)

let check_masked_case ~seed ~loopers ~masked ~events () =
  let config =
    { Longtrace.default_config with
      Longtrace.planted = 2
    ; masked
    ; loopers
    ; seed
    }
  in
  let t = longtrace_trace config ~events in
  check_bool "step valid" true (Step.is_valid t);
  let dense = dense_races t in
  let dense_locs = race_locations dense in
  let streaming_races, _ = Streaming.detect t in
  let streaming_locs = race_locations streaming_races in
  let report = Predict.analyze t in
  let feasible = Predict.feasible_locations report in
  let extra = Predict.extra_locations report in
  (* The masked pairs are invisible to the batch engines... *)
  List.iter
    (fun m ->
       check_bool ("dense misses " ^ m) false (List.mem m dense_locs);
       check_bool ("streaming misses " ^ m) false (List.mem m streaming_locs);
       (* ...and reachable only by reordering. *)
       check_bool ("predictive finds " ^ m) true (List.mem m extra))
    (Longtrace.masked_locations config);
  (* Predictive recall covers the batch engines (streaming races are a
     subset of dense races, so covering dense covers both). *)
  List.iter
    (fun l ->
       check_bool ("covers dense " ^ l) true (List.mem l feasible))
    dense_locs;
  List.iter
    (fun l ->
       check_bool ("covers streaming " ^ l) true (List.mem l feasible))
    streaming_locs;
  (* Every dense race pair individually stays feasible. *)
  List.iter
    (fun r ->
       check_bool "dense pair feasible" true
         (is_feasible (verdict_of report (positions r))))
    dense;
  List.iter
    (fun p -> check_bool "witness sound" true (witness_sound t p))
    report.Predict.pairs

let test_vargen_masked_variant () =
  (* Find the first derived variant with masked ground truth and run
     the full pipeline on it — the corpus gate in miniature. *)
  let variants = Vargen.variants ~seed:7 ~events:1500 ~count:20 () in
  let v =
    match List.find_opt (fun v -> v.Vargen.v_masked <> []) variants with
    | Some v -> v
    | None -> Alcotest.fail "no masked variant in the first 20"
  in
  let t = longtrace_trace v.Vargen.v_config ~events:v.Vargen.v_events in
  let report = Predict.analyze t in
  let extra = Predict.extra_locations report in
  List.iter
    (fun m -> check_bool ("finds " ^ m) true (List.mem m extra))
    v.Vargen.v_masked;
  let dense_locs = race_locations (dense_races t) in
  let feasible = Predict.feasible_locations report in
  List.iter
    (fun l -> check_bool ("covers " ^ l) true (List.mem l feasible))
    dense_locs

(* {1 Soundness and completeness properties} *)

(* Every random Step-valid trace: predictive ⊇ dense, all witnesses
   pass the executable oracle, reports identical across jobs. *)
let prop_predictive_covers_dense =
  QCheck2.Test.make ~name:"predictive covers dense with sound witnesses"
    ~count:25
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 60))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       let t = Trace.remove_cancelled t in
       let report = Predict.analyze t in
       let dense = dense_races t in
       List.for_all
         (fun r -> is_feasible (verdict_of report (positions r)))
         dense
       && List.for_all (witness_sound t) report.Predict.pairs)

let verdict_signature report =
  List.map
    (fun (p : Predict.pair_result) ->
       ( positions p.Predict.pr_pair
       , match p.Predict.pr_verdict with
         | Predict.Feasible w -> "feasible:" ^ string_of_bool w.Predict.w_flipped
         | Predict.Refuted r -> "refuted:" ^ Predict.refutation_label r
         | Predict.Unknown u -> "unknown:" ^ Predict.unknown_label u ))
    report.Predict.pairs

let prop_jobs_invariant =
  QCheck2.Test.make ~name:"report identical for jobs 1 and 4" ~count:15
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 50))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       let r1 = Predict.analyze ~jobs:1 t in
       let r4 = Predict.analyze ~jobs:4 t in
       verdict_signature r1 = verdict_signature r4)

(* Flipped witnesses really are reorderings: same multiset of events. *)
let prop_witness_is_permutation =
  QCheck2.Test.make ~name:"flipped witness permutes a trace subset"
    ~count:20
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 60))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       let t = Trace.remove_cancelled t in
       let report = Predict.analyze t in
       List.for_all
         (fun (p : Predict.pair_result) ->
            match p.Predict.pr_verdict with
            | Predict.Feasible w ->
              let sort es = List.sort compare es in
              let sub =
                sort (Trace.events w.Predict.w_trace)
              in
              (* every witness event is an event of the input (with
                 multiplicity) *)
              let rec included = function
                | [], _ -> true
                | _ :: _, [] -> false
                | (x :: xs as l), y :: ys ->
                  if x = y then included (xs, ys)
                  else if compare y x < 0 then included (l, ys)
                  else false
              in
              included (sub, sort (Trace.events t))
            | Predict.Refuted _ | Predict.Unknown _ -> true)
         report.Predict.pairs)

let () =
  Alcotest.run "predict"
    [ ( "pinned"
      , [ Alcotest.test_case "figure 4" `Quick test_figure4
        ; Alcotest.test_case "lock-masked minimal" `Quick
            test_lock_masked_minimal
        ; Alcotest.test_case "unmasked stays feasible" `Quick
            test_unmasked_still_feasible
        ; Alcotest.test_case "FIFO alone refutes" `Quick test_fifo_refutes
        ] )
    ; ( "adversarial"
      , [ Alcotest.test_case "cyclic constraints" `Quick
            test_cyclic_constraints
        ; Alcotest.test_case "must-path shortcut" `Quick
            test_must_path_shortcut
        ; Alcotest.test_case "window exhaustion" `Quick
            test_window_exhaustion
        ; Alcotest.test_case "budget exhaustion" `Quick
            test_budget_exhaustion
        ] )
    ; ( "planted corpora"
      , [ Alcotest.test_case "longtrace masked seed 11" `Quick
            (check_masked_case ~seed:11 ~loopers:3 ~masked:2 ~events:800)
        ; Alcotest.test_case "longtrace masked seed 42" `Quick
            (check_masked_case ~seed:42 ~loopers:3 ~masked:2 ~events:800)
        ; Alcotest.test_case "longtrace masked seed 7" `Slow
            (check_masked_case ~seed:7 ~loopers:2 ~masked:3 ~events:900)
        ; Alcotest.test_case "vargen masked variant" `Slow
            test_vargen_masked_variant
        ] )
    ; ( "properties"
      , [ QCheck_alcotest.to_alcotest prop_predictive_covers_dense
        ; QCheck_alcotest.to_alcotest prop_jobs_invariant
        ; QCheck_alcotest.to_alcotest prop_witness_is_permutation
        ] )
    ]
