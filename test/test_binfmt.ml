(* Binary trace codec (Binfmt):
   - encode ∘ decode is the identity on generated admissible traces
     (property-tested via the semantic random generator);
   - text parsing and binary decoding yield the same event streams
     through the transparent Trace_io dispatch;
   - race tables are identical across formats and jobs ∈ {1, 4}, and
     the planted ground-truth races are recalled;
   - adversarial inputs (truncated, bit-flipped, stale version, bad
     idents, unknown tags) are rejected with located errors, mirroring
     the text corpus under data/malformed/. *)

open Helpers
module Binfmt = Droidracer_trace.Binfmt
module Wellformed = Droidracer_trace.Wellformed
module Longtrace = Droidracer_corpus.Longtrace
module Detector = Droidracer_core.Detector
module Race = Droidracer_core.Race
module Obs = Droidracer_obs.Obs

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

let events_equal a b =
  List.length a = List.length b && List.for_all2 Trace.event_equal a b

let check_events msg expected actual =
  if not (events_equal expected actual) then
    Alcotest.failf "%s: event streams differ (%d vs %d events)" msg
      (List.length expected) (List.length actual)

let decode_ok msg s =
  match Binfmt.decode_string s with
  | Ok events -> events
  | Error e -> Alcotest.failf "%s: decode failed: %s" msg (Binfmt.error_message e)

let decode_err msg s =
  match Binfmt.decode_string s with
  | Ok events ->
    Alcotest.failf "%s: expected a decode error, got %d events" msg
      (List.length events)
  | Error e -> e

(* {1 Roundtrips} *)

let test_roundtrip_empty () =
  let s = Binfmt.encode_events_to_string [] in
  check_bool "magic" true (Binfmt.is_magic s);
  check_events "empty" [] (decode_ok "empty" s)

let test_roundtrip_simple () =
  let events =
    [ threadinit 0
    ; threadinit 1
    ; attachq 1
    ; looponq 1
    ; enable 0 (task "job")
    ; post 0 (task "job") 1
    ; post ~flavour:(Operation.Delayed 500) 0 (task ~instance:1 "job") 1
    ; post ~flavour:Operation.Front 0 (task ~instance:2 "job") 1
    ; begin_task 1 (task "job")
    ; acquire 1 "l1"
    ; read 1 (loc "a")
    ; write 1 (loc ~obj:7 "b")
    ; release 1 "l1"
    ; end_task 1 (task "job")
    ; fork 0 2
    ; threadinit 2
    ; threadexit 2
    ; join 0 2
    ; cancel 0 (task ~instance:1 "job")
    ]
  in
  let s = Binfmt.encode_events_to_string events in
  check_events "simple" events (decode_ok "simple" s)

let test_roundtrip_up_front_idents () =
  let events = [ acquire 0 "l1"; read 0 (loc "a"); release 0 "l1" ] in
  let with_table =
    Binfmt.encode_events_to_string ~idents:[ "l1"; "C"; "a" ] events
  in
  let without = Binfmt.encode_events_to_string events in
  check_events "table" events (decode_ok "table" with_table);
  check_events "defs" events (decode_ok "defs" without)

let test_qcheck_roundtrip () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:60 ~name:"binfmt roundtrip"
       QCheck.(pair (int_bound 10_000) (int_range 10 400))
       (fun (seed, size) ->
          let trace = Random_trace.generate ~seed ~size () in
          let events = Trace.events trace in
          let s = Binfmt.encode_events_to_string events in
          events_equal events (decode_ok "qcheck" s)))

(* {1 Text-parse ≡ binary-decode through the Trace_io dispatch} *)

let longtrace_config =
  { Longtrace.default_config with
    loopers = 4
  ; locations = 64
  ; planted = 3
  ; seed = 97
  }

let with_temp_files f =
  let text = Filename.temp_file "binfmt_test" ".trace" in
  let binary = Filename.temp_file "binfmt_test" ".drt" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove text with Sys_error _ -> ());
      (try Sys.remove binary with Sys_error _ -> ()))
    (fun () -> f text binary)

let fold_file_events path =
  match
    Trace_io.fold_events path ~init:[] ~f:(fun acc ~line:_ e -> e :: acc)
  with
  | Ok rev -> List.rev rev
  | Error e ->
    Alcotest.failf "%s: %s" path (Trace_io.read_error_message e)

let test_text_equals_binary_streams () =
  with_temp_files (fun text binary ->
    let events = 4_000 in
    let n_text = Longtrace.write ~config:longtrace_config ~events text in
    let n_bin = Longtrace.write_binary ~config:longtrace_config ~events binary in
    check_int "same count" n_text n_bin;
    let from_text = fold_file_events text in
    let from_binary = fold_file_events binary in
    check_int "stream length" n_text (List.length from_binary);
    check_events "dispatched streams" from_text from_binary;
    (* the binary file must actually be smaller *)
    let size path = (Unix.stat path).Unix.st_size in
    check_bool "binary smaller" true (size binary < size text))

let test_wellformed_accepts_binary () =
  with_temp_files (fun text binary ->
    let events = 2_000 in
    ignore (Longtrace.write ~config:longtrace_config ~events text);
    ignore (Longtrace.write_binary ~config:longtrace_config ~events binary);
    match Wellformed.check_file text, Wellformed.check_file binary with
    | Ok st, Ok sb ->
      check_int "events" st.Wellformed.events sb.Wellformed.events;
      check_int "threads" st.Wellformed.threads sb.Wellformed.threads;
      check_int "tasks" st.Wellformed.tasks sb.Wellformed.tasks
    | Error f, _ | _, Error f ->
      Alcotest.failf "rejected: %s" (Wellformed.failure_message f))

(* {1 Race tables across formats and jobs} *)

let race_table report =
  List.map
    (fun { Detector.race; _ } ->
       (race.Race.first.Race.position, race.Race.second.Race.position))
    report.Detector.all_races

let test_race_tables_identical () =
  with_temp_files (fun text binary ->
    let events = 3_000 in
    ignore (Longtrace.write ~config:longtrace_config ~events text);
    ignore (Longtrace.write_binary ~config:longtrace_config ~events binary);
    let load path =
      match Trace_io.load path with
      | Ok t -> t
      | Error msg -> Alcotest.failf "%s: %s" path msg
    in
    let t_text = load text and t_bin = load binary in
    let tables =
      List.concat_map
        (fun trace ->
           List.map (fun jobs -> race_table (Detector.analyze ~jobs trace))
             [ 1; 4 ])
        [ t_text; t_bin ]
    in
    (match tables with
     | reference :: rest ->
       check_bool "some races" true (reference <> []);
       List.iteri
         (fun i table ->
            check
              Alcotest.(list (pair int int))
              (Printf.sprintf "table %d" (i + 1))
              reference table)
         rest
     | [] -> assert false);
    (* every planted ground-truth race is recalled *)
    let report = Detector.analyze t_bin in
    let raced =
      List.map
        (fun { Detector.race; _ } -> Ident.Location.to_string (Race.location race))
        report.Detector.all_races
    in
    List.iter
      (fun planted ->
         check_bool (planted ^ " recalled") true (List.mem planted raced))
      (Longtrace.planted_locations longtrace_config))

(* {1 Adversarial corpus: truncation, bit flips, stale versions}

   Mirrors test/data/malformed/: every corrupted input must be rejected
   with a located error (byte offset + event index).  The streams are
   built in-memory so the corruptions are byte-precise. *)

let valid_stream () =
  Binfmt.encode_events_to_string
    [ threadinit 0
    ; threadinit 1
    ; attachq 1
    ; looponq 1
    ; post 0 (task "job") 1
    ; begin_task 1 (task "job")
    ; write 1 (loc "a")
    ; end_task 1 (task "job")
    ]

let varint n =
  let buf = Buffer.create 4 in
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done;
  Buffer.contents buf

let header ?(version = Binfmt.version) ?(idents = []) () =
  Binfmt.magic
  ^ String.make 1 (Char.chr version)
  ^ varint (List.length idents)
  ^ String.concat ""
      (List.map (fun s -> varint (String.length s) ^ s) idents)

let contains haystack needle = Astring_contains.contains haystack needle

let test_stale_version_rejected () =
  let s = valid_stream () in
  let stale = Bytes.of_string s in
  Bytes.set stale 4 (Char.chr (Binfmt.version + 1));
  let e = decode_err "stale version" (Bytes.to_string stale) in
  check_int "offset past version byte" 5 e.Binfmt.be_offset;
  check_int "no events decoded" 0 e.Binfmt.be_index;
  check_bool "message names the version" true
    (contains e.Binfmt.be_message "version")

let test_truncations_rejected () =
  let s = valid_stream () in
  (* Cutting the last byte always strands a partial record (every
     record is at least two bytes); cutting inside the header strands
     the ident table. *)
  List.iter
    (fun keep ->
       let e = decode_err (Printf.sprintf "truncated at %d" keep)
           (String.sub s 0 keep)
       in
       check_bool "truncation message" true
         (contains e.Binfmt.be_message "truncated"))
    [ 5; String.length s - 1 ]

let test_truncation_prefix_boundary () =
  (* Truncating at a record boundary is indistinguishable from a short
     stream: the decoder returns the event prefix cleanly.  This is the
     streaming contract, not a corruption case. *)
  let events = [ threadinit 0; threadinit 1 ] in
  let s = Binfmt.encode_events_to_string events in
  let shorter = Binfmt.encode_events_to_string [ threadinit 0 ] in
  check_events "boundary prefix" [ threadinit 0 ]
    (decode_ok "boundary" (String.sub s 0 (String.length shorter)))

let test_bit_flipped_ident_rejected () =
  (* An ident table entry whose bytes were flipped into whitespace can
     no longer name a lock/task/location: rejected at first use. *)
  let s =
    header ~idents:[ "l 1" ] ()
    ^ "\x0e" (* acquire *) ^ varint (2 * 0) (* zigzag dthread 0 *)
    ^ varint 0 (* ident index *)
  in
  let e = decode_err "flipped ident" s in
  check_int "fails at first event" 0 e.Binfmt.be_index;
  check_bool "invalid identifier" true
    (contains e.Binfmt.be_message "invalid identifier")

let test_unknown_tag_rejected () =
  let s = header () ^ "\x7e" in
  let e = decode_err "unknown tag" s in
  check_bool "unknown tag" true (contains e.Binfmt.be_message "unknown record tag")

let test_ident_index_out_of_range () =
  let s = header () ^ "\x0e" ^ varint 0 ^ varint 9 in
  let e = decode_err "bad index" s in
  check_bool "out of range" true
    (contains e.Binfmt.be_message "ident index out of range")

let test_overlong_varint_rejected () =
  let s = header () ^ "\x01" ^ String.make 10 '\xff' in
  let e = decode_err "overlong varint" s in
  check_bool "varint too long" true
    (contains e.Binfmt.be_message "varint too long")

let test_negative_thread_delta_rejected () =
  (* zigzag(-1) = 1: thread 0 - 1 is negative, caught by Thread_id.make *)
  let s = header () ^ "\x01" ^ varint 1 in
  let e = decode_err "negative thread" s in
  check_bool "invalid identifier" true
    (contains e.Binfmt.be_message "invalid identifier")

let test_bad_magic_is_not_binary () =
  match Binfmt.decode_string "DRTX\x01junk" with
  | Ok _ -> Alcotest.fail "accepted a bad magic"
  | Error e ->
    check_bool "bad magic message" true (contains e.Binfmt.be_message "magic")

let test_located_failure_through_wellformed () =
  let path = Filename.temp_file "binfmt_test" ".drt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       let s = valid_stream () in
       Out_channel.with_open_bin path (fun oc ->
         Out_channel.output_string oc
           (String.sub s 0 (String.length s - 1)));
       match Wellformed.check_file path with
       | Ok _ -> Alcotest.fail "accepted a truncated binary file"
       | Error (Wellformed.Binary e) ->
         check_bool "1-based event position" true
           (match Wellformed.failure_line (Wellformed.Binary e) with
            | Some l -> l = e.Binfmt.be_index + 1 && l >= 1
            | None -> false);
         check_bool "message carries the byte offset" true
           (contains
              (Wellformed.failure_message (Wellformed.Binary e))
              "byte")
       | Error f ->
         Alcotest.failf "wrong failure class: %s"
           (Wellformed.failure_message f))

(* {1 Interner and Obs counters} *)

let test_interner () =
  let i = Ident.Interner.create () in
  check_int "first" 0 (Ident.Interner.intern i "a");
  check_int "second" 1 (Ident.Interner.intern i "b");
  check_int "repeat" 0 (Ident.Interner.intern i "a");
  check_int "length" 2 (Ident.Interner.length i);
  check_string "get" "b" (Ident.Interner.get i 1);
  check (Alcotest.option Alcotest.int) "find_opt" (Some 1)
    (Ident.Interner.find_opt i "b");
  check (Alcotest.option Alcotest.int) "find_opt miss" None
    (Ident.Interner.find_opt i "c");
  (* dense growth past the initial capacity *)
  let big = Ident.Interner.create ~size_hint:2 () in
  for k = 0 to 99 do
    check_int "dense" k (Ident.Interner.intern big (string_of_int k))
  done;
  let order = ref [] in
  Ident.Interner.iter i (fun idx s -> order := (idx, s) :: !order);
  check
    Alcotest.(list (pair int string))
    "iter order"
    [ (0, "a"); (1, "b") ]
    (List.rev !order)

let test_obs_counters () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
       let i = Ident.Interner.create () in
       ignore (Ident.Interner.intern i "x");
       ignore (Ident.Interner.intern i "x");
       check_bool "intern_hits counted" true
         (Obs.counter_value "trace.intern_hits" >= 1);
       let s = valid_stream () in
       ignore (decode_ok "counted" s);
       check_bool "decode_bytes counted" true
         (Obs.counter_value "trace.decode_bytes" >= String.length s - 4))

let () =
  Alcotest.run "binfmt"
    [ ( "roundtrip"
      , [ Alcotest.test_case "empty" `Quick test_roundtrip_empty
        ; Alcotest.test_case "all operations" `Quick test_roundtrip_simple
        ; Alcotest.test_case "up-front ident table" `Quick
            test_roundtrip_up_front_idents
        ; Alcotest.test_case "qcheck encode∘decode = id" `Slow
            test_qcheck_roundtrip
        ] )
    ; ( "dispatch"
      , [ Alcotest.test_case "text ≡ binary event streams" `Quick
            test_text_equals_binary_streams
        ; Alcotest.test_case "wellformed accepts binary" `Quick
            test_wellformed_accepts_binary
        ; Alcotest.test_case "race tables: formats × jobs ∈ {1,4}" `Slow
            test_race_tables_identical
        ] )
    ; ( "adversarial"
      , [ Alcotest.test_case "stale version" `Quick test_stale_version_rejected
        ; Alcotest.test_case "truncations" `Quick test_truncations_rejected
        ; Alcotest.test_case "boundary truncation is a clean prefix" `Quick
            test_truncation_prefix_boundary
        ; Alcotest.test_case "bit-flipped ident" `Quick
            test_bit_flipped_ident_rejected
        ; Alcotest.test_case "unknown tag" `Quick test_unknown_tag_rejected
        ; Alcotest.test_case "ident index out of range" `Quick
            test_ident_index_out_of_range
        ; Alcotest.test_case "overlong varint" `Quick
            test_overlong_varint_rejected
        ; Alcotest.test_case "negative thread delta" `Quick
            test_negative_thread_delta_rejected
        ; Alcotest.test_case "bad magic" `Quick test_bad_magic_is_not_binary
        ; Alcotest.test_case "located failure via wellformed" `Quick
            test_located_failure_through_wellformed
        ] )
    ; ( "interning"
      , [ Alcotest.test_case "interner" `Quick test_interner
        ; Alcotest.test_case "obs counters" `Quick test_obs_counters
        ] )
    ]
