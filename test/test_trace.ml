open Helpers
module Location = Ident.Location
module Task_id = Ident.Task_id
module Thread_id = Ident.Thread_id

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int

(* {1 Identifiers} *)

let test_thread_id_round_trip () =
  List.iter
    (fun n ->
       let t = Thread_id.make n in
       check (Alcotest.option Alcotest.int) "round trip"
         (Some n)
         (Option.map Thread_id.to_int (Thread_id.of_string (Thread_id.to_string t))))
    [ 0; 1; 42; 1000 ]

let test_thread_id_rejects () =
  check_bool "negative" true
    (match Thread_id.make (-1) with
     | exception Invalid_argument _ -> true
     | _ -> false);
  check_bool "garbage" true (Thread_id.of_string "x3" = None);
  check_bool "no prefix" true (Thread_id.of_string "3" = None);
  check_bool "negative string" true (Thread_id.of_string "t-3" = None)

let test_task_id_round_trip () =
  let t = Task_id.make ~name:"onPostExecute" ~instance:7 in
  check Alcotest.string "printed" "onPostExecute#7" (Task_id.to_string t);
  check_bool "parsed" true
    (match Task_id.of_string "onPostExecute#7" with
     | Some t' -> Task_id.equal t t'
     | None -> false)

let test_task_id_rejects () =
  check_bool "hash in name" true
    (match Task_id.make ~name:"a#b" ~instance:0 with
     | exception Invalid_argument _ -> true
     | _ -> false);
  check_bool "no instance" true (Task_id.of_string "justname" = None);
  check_bool "bad instance" true (Task_id.of_string "name#x" = None)

let test_location_round_trip () =
  let m = Location.make ~cls:"DwFileAct" ~field:"isActivityDestroyed" ~obj:3 in
  check Alcotest.string "printed" "DwFileAct.isActivityDestroyed@3"
    (Location.to_string m);
  check_bool "parsed" true
    (match Location.of_string (Location.to_string m) with
     | Some m' -> Location.equal m m'
     | None -> false);
  check Alcotest.string "field key" "DwFileAct.isActivityDestroyed"
    (Location.field_key m)

let test_location_rejects () =
  check_bool "missing obj" true (Location.of_string "C.f" = None);
  check_bool "missing dot" true (Location.of_string "Cf@1" = None);
  check_bool "at before dot" true (Location.of_string "C@1.f" = None)

(* {1 Operations} *)

let test_conflicts () =
  let m = loc "f" and m' = loc "g" in
  check_bool "write-read" true
    (Operation.conflicts (Operation.Write m) (Operation.Read m));
  check_bool "read-read" false
    (Operation.conflicts (Operation.Read m) (Operation.Read m));
  check_bool "write-write" true
    (Operation.conflicts (Operation.Write m) (Operation.Write m));
  check_bool "different locations" false
    (Operation.conflicts (Operation.Write m) (Operation.Write m'));
  check_bool "non-access" false
    (Operation.conflicts Operation.Thread_init (Operation.Write m))

let test_synchronization_classes () =
  check_bool "read is not sync" false
    (Operation.is_synchronization (Operation.Read (loc "f")));
  check_bool "enable is not sync" false
    (Operation.is_synchronization (Operation.Enable (task "p")));
  check_bool "post is sync" true
    (Operation.is_synchronization
       (Operation.Post
          { task = task "p"; target = tid 1; flavour = Operation.Immediate }))

(* {1 Trace structure} *)

let test_enclosing_task () =
  let t = figure3 in
  check_bool "write 7 in LAUNCH_ACTIVITY" true
    (match Trace.enclosing_task t (fig 7) with
     | Some p -> Task_id.equal p launch
     | None -> false);
  check_bool "begin belongs to its task" true
    (match Trace.enclosing_task t (fig 6) with
     | Some p -> Task_id.equal p launch
     | None -> false);
  check_bool "end belongs to its task" true
    (match Trace.enclosing_task t (fig 10) with
     | Some p -> Task_id.equal p launch
     | None -> false);
  check_bool "threadinit outside tasks" true
    (Trace.enclosing_task t (fig 1) = None);
  check_bool "t2 ops outside tasks" true
    (Trace.enclosing_task t (fig 12) = None)

let test_task_indices () =
  let t = figure3 in
  check (Alcotest.option Alcotest.int) "post of launch" (Some (fig 5))
    (Trace.post_index t launch);
  check (Alcotest.option Alcotest.int) "begin of launch" (Some (fig 6))
    (Trace.begin_index t launch);
  check (Alcotest.option Alcotest.int) "end of launch" (Some (fig 10))
    (Trace.end_index t launch);
  check (Alcotest.option Alcotest.int) "enable of launch" (Some (fig 4))
    (Trace.enable_index t launch);
  check_bool "target of onPostExecute" true
    (match Trace.post_target t on_post_execute with
     | Some target -> Thread_id.equal target (tid 1)
     | None -> false)

let test_queue_info () =
  let t = figure3 in
  check_bool "t1 has queue" true (Trace.has_queue t (tid 1));
  check_bool "t2 has no queue" false (Trace.has_queue t (tid 2));
  check (Alcotest.option Alcotest.int) "loop of t1" (Some (fig 3))
    (Trace.loop_index t (tid 1));
  check (Alcotest.option Alcotest.int) "loop of t2" None
    (Trace.loop_index t (tid 2))

let test_stats () =
  let s = Trace.stats figure3 in
  check_int "length" 25 s.Trace.trace_length;
  check_int "fields" 1 s.Trace.fields;
  check_int "threads with queue" 1 s.Trace.threads_with_queue;
  check_int "threads without queue" 3 s.Trace.threads_without_queue;
  check_int "async tasks" 4 s.Trace.async_tasks

let ill_formed events =
  match Trace.of_events events with
  | Ok _ -> false
  | Error _ -> true

let test_ill_formed () =
  let p = task "p" in
  check_bool "double post" true (ill_formed [ post 0 p 1; post 0 p 1 ]);
  check_bool "begin without post" true (ill_formed [ begin_task 1 p ]);
  check_bool "begin on wrong thread" true
    (ill_formed [ post 0 p 1; begin_task 2 p ]);
  check_bool "nested begin" true
    (ill_formed
       [ post 0 p 1
       ; post 0 (task "q") 1
       ; begin_task 1 p
       ; begin_task 1 (task "q")
       ]);
  check_bool "end without begin" true (ill_formed [ post 0 p 1; end_task 1 p ]);
  check_bool "double attach" true (ill_formed [ attachq 1; attachq 1 ]);
  check_bool "loop without attach" true (ill_formed [ looponq 1 ]);
  check_bool "double enable" true (ill_formed [ enable 0 p; enable 0 p ])

let test_remove_cancelled () =
  let p = task "p" and q = task "q" in
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; attachq 1
      ; looponq 1
      ; post 0 p 1
      ; post 0 q 1
      ; cancel 0 p
      ; begin_task 1 q
      ; read 1 (loc "f")
      ; end_task 1 q
      ]
  in
  let t' = Trace.remove_cancelled t in
  check_int "cancelled post removed" (Trace.length t - 2) (Trace.length t');
  check_bool "p gone" true (Trace.post_index t' p = None);
  check_bool "q kept" true (Trace.post_index t' q <> None);
  (* a cancel after the task began removes only the cancel itself *)
  let t2 =
    trace
      [ threadinit 0
      ; threadinit 1
      ; attachq 1
      ; looponq 1
      ; post 0 p 1
      ; begin_task 1 p
      ; end_task 1 p
      ; cancel 0 p
      ]
  in
  let t2' = Trace.remove_cancelled t2 in
  check_int "only the cancel removed" (Trace.length t2 - 1) (Trace.length t2');
  check_bool "executed task kept" true (Trace.begin_index t2' p <> None)

(* {1 Text format} *)

let test_io_round_trip_figures () =
  List.iter
    (fun t ->
       match Trace_io.parse (Trace_io.to_string t) with
       | Ok t' ->
         check_int "same length" (Trace.length t) (Trace.length t');
         Trace.iteri
           (fun i e ->
              check_bool
                (Printf.sprintf "event %d preserved" i)
                true
                (Trace.event_equal e (Trace.get t' i)))
           t
       | Error msg -> Alcotest.failf "re-parse failed: %s" msg)
    [ figure3; figure4 ]

let test_io_comments_and_blanks () =
  let text =
    "# a music player trace\n\nt1 threadinit\nt1 attachq   # trailing comment\n"
  in
  match Trace_io.parse text with
  | Ok t -> check_int "two events" 2 (Trace.length t)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_io_post_flavours () =
  let text =
    "t0 threadinit\nt1 threadinit\nt1 attachq\nt0 post a#0 t1\n\
     t0 post b#0 t1 delay=500\nt0 post c#0 t1 front\n"
  in
  match Trace_io.parse text with
  | Ok t ->
    check_bool "immediate" true
      (Trace.post_flavour t (task "a") = Some Operation.Immediate);
    check_bool "delayed" true
      (Trace.post_flavour t (task "b") = Some (Operation.Delayed 500));
    check_bool "front" true
      (Trace.post_flavour t (task "c") = Some Operation.Front)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_io_errors () =
  let bad = [ "t1 frobnicate"; "t1 read"; "x1 read C.f@0"; "t1 post a#0"; "t1" ] in
  List.iter
    (fun line ->
       check_bool (Printf.sprintf "rejects %S" line) true
         (Result.is_error (Trace_io.parse line)))
    bad

(* Every parse-error branch must report the 1-based column of the
   offending token and quote it: one row per branch of
   Trace_io.parse_op and friends. *)
let test_io_error_context () =
  let cases =
    [ ("x1 read C.f@0", 1, "x1", "expected a thread id")
    ; ("t1 frobnicate", 4, "frobnicate", "unknown operation")
    ; ("t1", 1, "t1", "incomplete line")
    ; ("t1 threadinit extra", 4, "threadinit", "no arguments")
    ; ("t1 fork xyz", 9, "xyz", "expected a thread id")
    ; ("t1 fork", 4, "fork", "one thread id")
    ; ("t1 begin not-a-task", 10, "not-a-task", "expected a task id")
    ; ("t1 begin", 4, "begin", "one task id")
    ; ("t1 acquire", 4, "acquire", "one lock name")
    ; ("t1 read nope", 9, "nope", "expected a memory location")
    ; ("t1 read", 4, "read", "one memory location")
    ; ("t1 post a#0", 4, "post", "a task id and a target thread")
    ; ("t1 post nope t2", 9, "nope", "expected a task id")
    ; ("t1 post a#0 x2", 13, "x2", "expected a thread id")
    ; ("t1 post a#0 t2 delay=-1", 16, "delay=-1", "invalid delay")
    ; ("t1 post a#0 t2 delay=zz", 16, "delay=zz", "invalid delay")
    ; ("t1 post a#0 t2 whenever", 16, "whenever", "unexpected post argument")
    ]
  in
  List.iter
    (fun (line, column, token, needle) ->
       match Trace_io.parse_event_located ~line:7 line with
       | Ok _ -> Alcotest.failf "%S: accepted" line
       | Error e ->
         check_int (Printf.sprintf "%S: line" line) 7 e.Trace_io.pe_line;
         check_int (Printf.sprintf "%S: column" line) column
           e.Trace_io.pe_column;
         check (Alcotest.option Alcotest.string)
           (Printf.sprintf "%S: token" line)
           (Some token) e.Trace_io.pe_token;
         check_bool
           (Printf.sprintf "%S: message mentions %S" line needle)
           true
           (Astring_contains.contains (Trace_io.parse_error_message e) needle);
         (* The string-level API keeps the context too. *)
         (match Trace_io.parse_event line with
          | Ok _ -> Alcotest.failf "%S: parse_event accepted" line
          | Error msg ->
            check_bool
              (Printf.sprintf "%S: parse_event names the column" line)
              true
              (Astring_contains.contains msg
                 (Printf.sprintf "column %d" column))))
    cases;
  (* Whole-text parsing prefixes the 1-based line number. *)
  match Trace_io.parse "t1 threadinit\nt1 oops\n" with
  | Ok _ -> Alcotest.fail "bad text accepted"
  | Error msg ->
    check_bool "parse names the line" true
      (Astring_contains.contains msg "line 2")

(* {1 Properties} *)

let prop_io_round_trip =
  QCheck2.Test.make ~name:"trace text format round-trips" ~count:60
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 10 120))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       match Trace_io.parse (Trace_io.to_string t) with
       | Ok t' ->
         Trace.length t = Trace.length t'
         && List.for_all2 Trace.event_equal (Trace.events t) (Trace.events t')
       | Error _ -> false)

let prop_enclosing_task_brackets =
  QCheck2.Test.make ~name:"enclosing task matches begin/end brackets" ~count:60
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 10 120))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       let ok = ref true in
       Trace.iteri
         (fun i (_ : Trace.event) ->
            match Trace.enclosing_task t i with
            | Some p ->
              let b = Option.get (Trace.begin_index t p) in
              let e =
                Option.value (Trace.end_index t p) ~default:(Trace.length t)
              in
              if not (b <= i && i <= e) then ok := false
            | None -> ())
         t;
       !ok)

let () =
  Alcotest.run "trace"
    [ ( "ident"
      , [ Alcotest.test_case "thread id round trip" `Quick test_thread_id_round_trip
        ; Alcotest.test_case "thread id rejects" `Quick test_thread_id_rejects
        ; Alcotest.test_case "task id round trip" `Quick test_task_id_round_trip
        ; Alcotest.test_case "task id rejects" `Quick test_task_id_rejects
        ; Alcotest.test_case "location round trip" `Quick test_location_round_trip
        ; Alcotest.test_case "location rejects" `Quick test_location_rejects
        ] )
    ; ( "operation"
      , [ Alcotest.test_case "conflicts" `Quick test_conflicts
        ; Alcotest.test_case "synchronization classes" `Quick
            test_synchronization_classes
        ] )
    ; ( "structure"
      , [ Alcotest.test_case "enclosing task" `Quick test_enclosing_task
        ; Alcotest.test_case "task indices" `Quick test_task_indices
        ; Alcotest.test_case "queue info" `Quick test_queue_info
        ; Alcotest.test_case "stats" `Quick test_stats
        ; Alcotest.test_case "ill-formed traces rejected" `Quick test_ill_formed
        ; Alcotest.test_case "remove cancelled" `Quick test_remove_cancelled
        ] )
    ; ( "io"
      , [ Alcotest.test_case "figures round trip" `Quick test_io_round_trip_figures
        ; Alcotest.test_case "comments and blanks" `Quick
            test_io_comments_and_blanks
        ; Alcotest.test_case "post flavours" `Quick test_io_post_flavours
        ; Alcotest.test_case "parse errors" `Quick test_io_errors
        ; Alcotest.test_case "parse errors carry column and token" `Quick
            test_io_error_context
        ] )
    ; ( "properties"
      , [ QCheck_alcotest.to_alcotest prop_io_round_trip
        ; QCheck_alcotest.to_alcotest prop_enclosing_task_brackets
        ] )
    ]
