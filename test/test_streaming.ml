open Helpers
module Vc = Droidracer_core.Vector_clock
module Epoch = Droidracer_core.Epoch
module Streaming = Droidracer_core.Streaming_engine
module Detector = Droidracer_core.Detector
module Hb = Droidracer_core.Happens_before
module Race = Droidracer_core.Race
module Longtrace = Droidracer_corpus.Longtrace
module Wellformed = Droidracer_trace.Wellformed

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let pair_list = Alcotest.(list (pair int int))

let pairs races =
  List.map
    (fun (r : Race.t) -> (r.first.position, r.second.position))
    races

(* {1 Epoch frontiers} *)

(* A clock that knows slot [s] up to time [t], built pointwise. *)
let clock_of assoc =
  List.fold_left (fun vc (s, t) -> Vc.set vc s t) Vc.empty assoc

let test_epoch_fast_path () =
  let t, racing, o1 =
    Epoch.observe ~clock:(clock_of [ (0, 1) ]) ~slot:0 ~time:1 "a" Epoch.bottom
  in
  check_int "first entry races with nothing" 0 (List.length racing);
  check_bool "first observe is not the fast path" true (o1 = Epoch.Stayed);
  (* Same slot again: program order, clock irrelevant (even an empty
     clock must not matter — the lookup is skipped entirely). *)
  let t, racing, o2 = Epoch.observe ~clock:Vc.empty ~slot:0 ~time:2 "b" t in
  check_bool "same-slot overwrite takes the fast path" true (o2 = Epoch.Fast_path);
  check_int "no race on the fast path" 0 (List.length racing);
  check_int "still one entry" 1 (Epoch.cardinal t);
  match Epoch.entries t with
  | [ e ] ->
    check_int "the newer time" 2 e.Epoch.time;
    Alcotest.(check string) "the newer payload" "b" e.Epoch.payload
  | _ -> Alcotest.fail "expected exactly one entry"

let test_epoch_promotion_and_demotion () =
  let t, _, _ =
    Epoch.observe ~clock:(clock_of [ (0, 1) ]) ~slot:0 ~time:1 "w0" Epoch.bottom
  in
  (* Slot 1 has not seen slot 0: unordered, promotes to a read share. *)
  let t, racing, o =
    Epoch.observe ~clock:(clock_of [ (1, 1) ]) ~slot:1 ~time:1 "w1" t
  in
  check_bool "unordered second slot promotes" true (o = Epoch.Promoted);
  Alcotest.(check (list string)) "the racing predecessor" [ "w0" ]
    (List.map (fun e -> e.Epoch.payload) racing);
  check_int "two entries" 2 (Epoch.cardinal t);
  (* A third slot that knows both demotes back to a single epoch. *)
  let t, racing, o =
    Epoch.observe ~clock:(clock_of [ (0, 5); (1, 5); (2, 1) ]) ~slot:2 ~time:1
      "w2" t
  in
  check_bool "dominating observer demotes" true (o = Epoch.Demoted);
  check_int "no race when everything is known" 0 (List.length racing);
  check_int "one entry again" 1 (Epoch.cardinal t)

let test_epoch_prune () =
  let t, _, _ =
    Epoch.observe ~clock:(clock_of [ (0, 1) ]) ~slot:0 ~time:1 "r0" Epoch.bottom
  in
  let t, _, _ = Epoch.observe ~clock:(clock_of [ (1, 1) ]) ~slot:1 ~time:1 "r1" t in
  let t, dropped = Epoch.prune ~clock:(clock_of [ (0, 1) ]) t in
  check_int "only the known entry is dropped" 1 dropped;
  Alcotest.(check (list string)) "the unordered read survives" [ "r1" ]
    (List.map (fun e -> e.Epoch.payload) (Epoch.entries t));
  let t, dropped = Epoch.prune ~clock:(clock_of [ (1, 1) ]) t in
  check_int "then the other" 1 dropped;
  check_int "frontier empty" 0 (Epoch.cardinal t)

(* {1 The figures} *)

let test_figures () =
  let races3, _ = Streaming.detect figure3 in
  check_int "figure 3: no races" 0 (List.length races3);
  let races4, stats = Streaming.detect figure4 in
  (* The batch engines report (12,21) and (16,21); the frontier keeps
     only the last ordered representative of the reads — 16 subsumes 12
     — so streaming reports the (16,21) pair, still flagging position
     21 as racy (the coverage contract). *)
  Alcotest.check pair_list "figure 4 via the frontier"
    [ (fig 16, fig 21) ]
    (pairs races4);
  ignore stats;
  (* Consecutive accesses from one task segment hit the O(1) epoch
     overwrite; a concurrent reader still sees the race. *)
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; write 0 (loc "x")
      ; write 0 (loc "x")
      ; write 0 (loc "x")
      ; read 1 (loc "x")
      ]
  in
  let races, stats = Streaming.detect t in
  check_int "same-segment rewrites take the fast path" 2
    stats.Streaming.fast_path;
  Alcotest.check pair_list "the last write races with the read"
    [ (4, 5) ] (pairs races)

(* {1 GC} *)

let exercise_config = { Streaming.completed_window = 2; gc_interval = 16 }

let test_gc_retired_tasks () =
  (* Many sequential tasks on one looper: every task is FIFO-ordered
     after the previous, so no races; a window of 2 forces constant
     folding and the sweep retires every finished task's slot. *)
  let events = ref [ looponq 1; attachq 1; threadinit 1; threadinit 0 ] in
  for i = 0 to 39 do
    let p = task ~instance:i "seq" in
    events :=
      end_task 1 p :: write 1 (loc "x") :: begin_task 1 p :: post 0 p 1
      :: !events
  done;
  let t = trace (List.rev !events) in
  let races, stats = Streaming.detect ~config:exercise_config t in
  check_int "sequential tasks never race" 0 (List.length races);
  check_bool "tasks were folded out of the window" true
    (stats.Streaming.folded_tasks > 0);
  check_bool "sweeps ran" true (stats.Streaming.gc_sweeps > 1);
  check_bool "slots were retired" true
    (stats.Streaming.slots_retired > stats.Streaming.live_slots);
  (* 40 tasks × (task slot + idle slot) + thread segments: without GC
     every one stays resident; with it only the window and frontier
     survive. *)
  check_bool "live slots bounded by the window, not the task count" true
    (stats.Streaming.live_slots < 20)

let test_gc_invisible_to_races () =
  (* Slot purging must be invisible; only window folding may (soundly)
     lose races.  Same trace, GC off vs. aggressive interval. *)
  for seed = 0 to 9 do
    let t =
      Trace.remove_cancelled (Random_trace.generate ~seed ~size:120 ())
    in
    let no_gc, _ =
      Streaming.detect
        ~config:{ Streaming.completed_window = max_int; gc_interval = 0 }
        t
    in
    let gc, _ =
      Streaming.detect
        ~config:{ Streaming.completed_window = max_int; gc_interval = 1 }
        t
    in
    Alcotest.check pair_list
      (Printf.sprintf "sweeps do not change the race set (seed %d)" seed)
      (pairs no_gc) (pairs gc)
  done

let test_window_folding_is_sound () =
  for seed = 10 to 19 do
    let t =
      Trace.remove_cancelled (Random_trace.generate ~seed ~size:120 ())
    in
    let full, _ =
      Streaming.detect
        ~config:{ Streaming.completed_window = max_int; gc_interval = 0 }
        t
    in
    let folded, _ = Streaming.detect ~config:exercise_config t in
    List.iter
      (fun p ->
         check_bool
           (Printf.sprintf "folding only adds orderings (seed %d)" seed)
           true
           (List.mem p (pairs full)))
      (pairs folded)
  done

(* {1 The long-trace regression: peak state is O(live entities)} *)

let run_long_trace events =
  let path = Filename.temp_file "droidracer_long" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       let config =
         { Longtrace.default_config with locations = 64; fork_every = 50 }
       in
       let emitted = Longtrace.write ~config ~events path in
       check_int "the requested length" events emitted;
       (match Wellformed.check_file path with
        | Ok _ -> ()
        | Error f -> Alcotest.fail (Wellformed.failure_message f));
       match Streaming.detect_file path with
       | Error e ->
         Alcotest.fail (Droidracer_trace.Trace_io.read_error_message e)
       | Ok (races, stats) ->
         check_int "every event streamed" events stats.Streaming.events;
         check_bool "the shared locations race" true (List.length races > 0);
         stats)

let test_fold_channel_bounded_state () =
  let short = run_long_trace 20_000 in
  let long = run_long_trace 60_000 in
  check_bool "slots are allocated in O(tasks)" true
    (long.Streaming.slots_allocated > 10_000);
  (* Live state: loopers × (window + frontier share) + pending,
     independent of the slots allocated over the run. *)
  check_bool
    (Printf.sprintf "peak live slots stay O(live entities): %d"
       long.Streaming.peak_live_slots)
    true
    (long.Streaming.peak_live_slots < 1_000);
  (* The real bound: peak resident state plateaus once the completed
     windows fill (~2k events here), so tripling the trace must not
     grow it materially — the batch engines would triple. *)
  check_bool
    (Printf.sprintf "peak resident clock entries plateau: %d -> %d"
       short.Streaming.peak_clock_entries long.Streaming.peak_clock_entries)
    true
    (long.Streaming.peak_clock_entries
     < (short.Streaming.peak_clock_entries * 3 / 2) + 1_000)

let test_longtrace_prefixes_admissible () =
  List.iter
    (fun events ->
       let collected = ref [] in
       let _n =
         Longtrace.generate ~events (fun e -> collected := e :: !collected)
       in
       match Wellformed.check_events (List.rev !collected) with
       | Ok _ -> ()
       | Error e ->
         Alcotest.fail
           (Printf.sprintf "prefix of %d events rejected: %s" events
              (Wellformed.error_message e)))
    [ 1; 7; 50; 333; 2_000 ]

(* {1 Differential properties against the batch engines} *)

let worklist_config =
  { Detector.default_config with
    hb = { Detector.default_config.hb with closure = Hb.Worklist }
  }

let worklist_pairs ~jobs t =
  List.map
    (fun { Detector.race; _ } ->
       (race.Race.first.position, race.Race.second.position))
    (Detector.analyze ~config:worklist_config ~jobs t).Detector.all_races

let gen = QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 150))

let prop_subset_of_worklist =
  QCheck2.Test.make
    ~name:"streaming races are a subset of the worklist engine's (jobs 1 and 4)"
    ~count:60 gen
    (fun (seed, size) ->
       let t =
         Trace.remove_cancelled (Random_trace.generate ~seed ~size ())
       in
       let streaming = pairs (fst (Streaming.detect t)) in
       let w1 = worklist_pairs ~jobs:1 t in
       let w4 = worklist_pairs ~jobs:4 t in
       w1 = w4 && List.for_all (fun p -> List.mem p w1) streaming)

let second_positions_by_location races_with_locations =
  List.sort_uniq compare races_with_locations

let prop_coverage_on_lock_free =
  QCheck2.Test.make
    ~name:
      "on lock-free traces streaming flags the same racy (location, second) \
       set as the worklist engine"
    ~count:60 gen
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       let lock_free =
         List.for_all
           (fun (e : Trace.event) ->
              match e.op with
              | Operation.Acquire _ | Operation.Release _ -> false
              | _ -> true)
           (Trace.events t)
       in
       QCheck2.assume lock_free;
       let t = Trace.remove_cancelled t in
       let seconds races =
         second_positions_by_location
           (List.map
              (fun (r : Race.t) ->
                 ( Ident.Location.to_string r.second.location
                 , r.second.position ))
              races)
       in
       let streaming = seconds (fst (Streaming.detect t)) in
       let batch =
         seconds
           (List.map
              (fun { Detector.race; _ } -> race)
              (Detector.analyze ~config:worklist_config t).Detector.all_races)
       in
       streaming = batch)

let prop_detector_dispatch_matches_engine =
  QCheck2.Test.make
    ~name:"Detector.analyze with the streaming engine returns the engine's races"
    ~count:30 gen
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       let config =
         { Detector.default_config with
           hb = { Detector.default_config.hb with closure = Hb.Streaming }
         }
       in
       let report = Detector.analyze ~config t in
       let direct = pairs (fst (Streaming.detect (Trace.remove_cancelled t))) in
       List.map
         (fun { Detector.race; _ } ->
            (race.Race.first.position, race.Race.second.position))
         report.Detector.all_races
       = direct
       && List.map fst report.Detector.phase_seconds
          = Detector.streaming_phase_names)

let prop_deterministic =
  QCheck2.Test.make ~name:"streaming detection is deterministic" ~count:30 gen
    (fun (seed, size) ->
       let t =
         Trace.remove_cancelled (Random_trace.generate ~seed ~size ())
       in
       let r1, s1 = Streaming.detect t in
       let r2, s2 = Streaming.detect t in
       pairs r1 = pairs r2 && s1 = s2)

let () =
  Alcotest.run "streaming"
    [ ( "epoch"
      , [ Alcotest.test_case "same-slot fast path" `Quick test_epoch_fast_path
        ; Alcotest.test_case "promotion and demotion" `Quick
            test_epoch_promotion_and_demotion
        ; Alcotest.test_case "prune" `Quick test_epoch_prune
        ] )
    ; ( "engine"
      , [ Alcotest.test_case "figures" `Quick test_figures
        ; Alcotest.test_case "retired-task GC" `Quick test_gc_retired_tasks
        ; Alcotest.test_case "GC invisible to races" `Quick
            test_gc_invisible_to_races
        ; Alcotest.test_case "window folding sound" `Quick
            test_window_folding_is_sound
        ] )
    ; ( "long-trace"
      , [ Alcotest.test_case "generator prefixes admissible" `Quick
            test_longtrace_prefixes_admissible
        ; Alcotest.test_case "fold_channel bounded state" `Slow
            test_fold_channel_bounded_state
        ] )
    ; ( "differential"
      , [ QCheck_alcotest.to_alcotest prop_subset_of_worklist
        ; QCheck_alcotest.to_alcotest prop_coverage_on_lock_free
        ; QCheck_alcotest.to_alcotest prop_detector_dispatch_matches_engine
        ; QCheck_alcotest.to_alcotest prop_deterministic
        ] )
    ]
