(* Process isolation (Proc_pool + Supervisor.Isolated).

   The contract under test: a worker that segfaults, exceeds its memory
   cap, or hangs non-cooperatively costs one failure row while its
   siblings complete; hard deadlines are enforced by SIGKILL within the
   budget; retries follow the deterministic jitter-free exponential
   backoff; and rows come back in input order whatever the interleaving
   of worker deaths.

   Fault-plan pins (Supervisor.fault_decision over all_faults, k = 6,
   for the two cheapest corpus applications):
     seed 43: Aard Dictionary = persistent oom, Music Player healthy
     seed 38: Aard healthy, Music Player = transient hang
     seed 3 (basic classes): Aard = persistent crash, Music = transient
       crash — used to check Isolated and Cooperative agree row for
       row on the cooperative fault classes. *)

module Proc_pool = Droidracer_report.Proc_pool
module Supervisor = Droidracer_report.Supervisor
module Experiments = Droidracer_report.Experiments
module Synthetic = Droidracer_corpus.Synthetic
module Catalog = Droidracer_corpus.Catalog
module Detector = Droidracer_core.Detector
module Obs = Droidracer_obs.Obs

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int
let check_string = check Alcotest.string

let counter name =
  Option.value (List.assoc_opt name (Obs.snapshot ()).Obs.counters) ~default:0

let with_obs f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect f ~finally:(fun () ->
    Obs.disable ();
    Obs.reset ())

let specs2 =
  match Catalog.all with
  | a :: b :: _ -> [ a; b ]
  | _ -> assert false

let spec_names = List.map (fun s -> s.Synthetic.s_name) specs2

let shape = function
  | Supervisor.Completed run ->
    Printf.sprintf "completed %s races=%d"
      run.Experiments.ar_built.Synthetic.b_spec.Synthetic.s_name
      (List.length run.Experiments.ar_report.Detector.all_races)
  | Supervisor.Failed f ->
    Printf.sprintf "failed %s %s retries=%d reason=%s" f.Supervisor.f_app
      (Supervisor.reason_label f.Supervisor.f_reason)
      f.Supervisor.f_retries
      (Supervisor.reason_detail f.Supervisor.f_reason)

(* {1 The pool itself} *)

let values rows =
  List.map
    (fun row ->
       match row.Proc_pool.r_result with
       | Proc_pool.Value v -> v
       | Proc_pool.Died d -> Alcotest.failf "unexpected death: %s" (Proc_pool.death_message d))
    rows

let test_map_order () =
  let items = [ 5; 1; 4; 2; 3; 9; 0; 7 ] in
  let rows = Proc_pool.map ~jobs:3 (fun ~attempt:_ x -> x * x) items in
  check (Alcotest.list Alcotest.int) "squares in input order"
    (List.map (fun x -> x * x) items)
    (values rows);
  List.iter
    (fun row ->
       check_int "no retries" 0 row.Proc_pool.r_retries;
       check_bool "no deaths" true (row.Proc_pool.r_deaths = []))
    rows

let test_segfault_contained () =
  with_obs @@ fun () ->
  (* jobs:1 pins the schedule: the lone worker completes item 0, dies
     on item 1 while item 2 is still pending, so a replacement fork is
     mandatory, not a race against an idle sibling stealing the tail. *)
  let rows =
    Proc_pool.map ~jobs:1 ~retry:Proc_pool.no_retry
      (fun ~attempt:_ x ->
         if x = 1 then Unix.kill (Unix.getpid ()) Sys.sigsegv;
         x + 100)
      [ 0; 1; 2 ]
  in
  (match rows with
   | [ a; b; c ] ->
     check_int "sibling before" 100 (List.hd (values [ a ]));
     check_int "sibling after" 102 (List.hd (values [ c ]));
     (match b.Proc_pool.r_result with
      | Proc_pool.Died (Proc_pool.Signaled s) ->
        check_string "signal name" "SIGSEGV" (Proc_pool.signal_name s);
        check_bool "message names the signal" true
          (Astring_contains.contains
             (Proc_pool.death_message (Proc_pool.Signaled s))
             "SIGSEGV")
      | Proc_pool.Died d ->
        Alcotest.failf "expected a SIGSEGV death, got: %s"
          (Proc_pool.death_message d)
      | Proc_pool.Value _ -> Alcotest.fail "the segfaulting task returned")
   | _ -> Alcotest.failf "expected 3 rows, got %d" (List.length rows));
  check_bool "a replacement worker was forked" true (counter "proc.restarts" >= 1)

let test_oom_contained () =
  with_obs @@ fun () ->
  let limits =
    { Proc_pool.deadline_seconds = None; max_mem_mib = Some 128 }
  in
  let rows =
    Proc_pool.map ~jobs:2 ~limits ~retry:Proc_pool.no_retry
      (fun ~attempt:_ x ->
         if x = 0 then begin
           (* Allocate into the child's rlimit: far past 128 MiB. *)
           let hoard = ref [] in
           for _ = 1 to 512 do
             hoard := Bytes.create (16 * 1024 * 1024) :: !hoard
           done;
           ignore (Sys.opaque_identity !hoard)
         end;
         x)
      [ 0; 1 ]
  in
  (match rows with
   | [ oom; healthy ] ->
     (match oom.Proc_pool.r_result with
      | Proc_pool.Died (Proc_pool.Oom_killed mib) ->
        check_int "cap recorded in the death" 128 mib
      | Proc_pool.Died d ->
        Alcotest.failf "expected an OOM death, got: %s"
          (Proc_pool.death_message d)
      | Proc_pool.Value _ -> Alcotest.fail "the allocation storm returned");
     check_int "sibling completed" 1 (List.hd (values [ healthy ]))
   | _ -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
  check_int "proc.oom" 1 (counter "proc.oom")

let test_hang_killed_on_deadline () =
  with_obs @@ fun () ->
  let limits =
    { Proc_pool.deadline_seconds = Some 1.0; max_mem_mib = None }
  in
  let started = Unix.gettimeofday () in
  let rows =
    Proc_pool.map ~jobs:2 ~limits ~retry:Proc_pool.no_retry
      (fun ~attempt:_ x ->
         if x = 0 then Unix.sleepf 3600.0;
         x)
      [ 0; 1 ]
  in
  let elapsed = Unix.gettimeofday () -. started in
  (match rows with
   | [ hung; healthy ] ->
     (match hung.Proc_pool.r_result with
      | Proc_pool.Died (Proc_pool.Hard_deadline t) ->
        check_bool "deadline recorded" true (t = 1.0)
      | Proc_pool.Died d ->
        Alcotest.failf "expected a hard-deadline death, got: %s"
          (Proc_pool.death_message d)
      | Proc_pool.Value _ -> Alcotest.fail "the hang returned");
     check_int "sibling completed" 1 (List.hd (values [ healthy ]))
   | _ -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
  check_bool
    (Printf.sprintf "SIGKILL fired within the deadline (took %.2fs)" elapsed)
    true (elapsed < 4.0);
  check_int "proc.kills" 1 (counter "proc.kills")

let test_retry_recovers_with_backoff () =
  with_obs @@ fun () ->
  let retry = { Proc_pool.max_retries = 1; backoff_base = 0.05 } in
  let rows =
    Proc_pool.map ~jobs:1 ~retry
      (fun ~attempt x ->
         if x = 0 && attempt = 0 then Unix.kill (Unix.getpid ()) Sys.sigkill;
         x + 10)
      [ 0; 1 ]
  in
  (match rows with
   | [ flaky; healthy ] ->
     check_int "flaky recovered" 10 (List.hd (values [ flaky ]));
     check_int "one retry" 1 flaky.Proc_pool.r_retries;
     check_bool "backoff recorded" true (flaky.Proc_pool.r_backoff = 0.05);
     (match flaky.Proc_pool.r_deaths with
      | [ Proc_pool.Signaled s ] ->
        check_string "first attempt died by SIGKILL" "SIGKILL"
          (Proc_pool.signal_name s)
      | _ -> Alcotest.fail "expected exactly one recorded death");
     check_int "healthy row" 11 (List.hd (values [ healthy ]));
     check_int "healthy no retries" 0 healthy.Proc_pool.r_retries
   | _ -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
  check_int "proc.retries" 1 (counter "proc.retries");
  check_bool "worker respawned" true (counter "proc.restarts" >= 1)

let test_backoff_arithmetic () =
  let policy = { Proc_pool.max_retries = 3; backoff_base = 0.1 } in
  let close msg a b = check_bool msg true (Float.abs (a -. b) < 1e-9) in
  close "attempt 0 is free" (Proc_pool.backoff_delay policy ~attempt:0) 0.0;
  close "first retry" (Proc_pool.backoff_delay policy ~attempt:1) 0.1;
  close "second doubles" (Proc_pool.backoff_delay policy ~attempt:2) 0.2;
  close "third doubles again" (Proc_pool.backoff_delay policy ~attempt:3) 0.4;
  close "total over 3 retries" (Proc_pool.total_backoff policy ~retries:3) 0.7;
  close "no-retry policy is flat"
    (Proc_pool.total_backoff Proc_pool.no_retry ~retries:0)
    0.0

(* {1 The isolated supervisor} *)

let run_isolated ?(jobs = 2) ?max_mem_mib ?(retry = Proc_pool.default_retry)
    ?budget ~seed () =
  let budget =
    Option.value budget
      ~default:{ Supervisor.timeout_seconds = Some 60.0; max_events = None }
  in
  Supervisor.with_faults ~classes:Supervisor.all_faults ~seed (fun () ->
    Supervisor.run_catalog ~jobs ~specs:specs2 ~budget ~retry
      ~mode:(Supervisor.Isolated { max_mem_mib }) ())

let test_supervised_oom_row () =
  (* Seed 43: Aard = persistent oom — both attempts die in the rlimit;
     Music is healthy and completes alongside. *)
  with_obs @@ fun () ->
  (match run_isolated ~max_mem_mib:128 ~seed:43 () with
   | [ aard; music ] ->
     (match aard with
      | Supervisor.Failed f ->
        check_string "aard app" (List.nth spec_names 0) f.Supervisor.f_app;
        check_string "aard outcome" "crashed"
          (Supervisor.reason_label f.Supervisor.f_reason);
        check_int "aard retried" 1 f.Supervisor.f_retries;
        check_bool "reason names the memory cap" true
          (Astring_contains.contains
             (Supervisor.reason_detail f.Supervisor.f_reason)
             "memory cap")
      | Supervisor.Completed _ ->
        Alcotest.fail "Aard's allocation storm completed");
     (match music with
      | Supervisor.Completed _ -> ()
      | Supervisor.Failed f ->
        Alcotest.failf "Music Player should have completed: %s"
          (Supervisor.reason_detail f.Supervisor.f_reason))
   | outcomes ->
     Alcotest.failf "expected 2 outcomes, got %d" (List.length outcomes));
  check_int "proc.oom counts both attempts" 2 (counter "proc.oom")

let test_supervised_hang_recovers () =
  (* Seed 38: Music = transient hang — the first attempt is SIGKILLed
     at the hard deadline, the retry is healthy and completes. *)
  with_obs @@ fun () ->
  let budget = { Supervisor.timeout_seconds = Some 1.5; max_events = None } in
  (match run_isolated ~budget ~seed:38 () with
   | [ aard; music ] ->
     (match aard with
      | Supervisor.Completed _ -> ()
      | Supervisor.Failed f ->
        Alcotest.failf "Aard should have completed: %s"
          (Supervisor.reason_detail f.Supervisor.f_reason));
     (match music with
      | Supervisor.Completed _ -> ()
      | Supervisor.Failed f ->
        Alcotest.failf "transient hang should recover on retry: %s"
          (Supervisor.reason_detail f.Supervisor.f_reason))
   | outcomes ->
     Alcotest.failf "expected 2 outcomes, got %d" (List.length outcomes));
  check_int "one hard kill" 1 (counter "proc.kills")

let test_supervised_hang_without_retry_times_out () =
  with_obs @@ fun () ->
  let budget = { Supervisor.timeout_seconds = Some 1.0; max_events = None } in
  let started = Unix.gettimeofday () in
  (match run_isolated ~budget ~retry:Proc_pool.no_retry ~seed:38 () with
   | [ _; music ] ->
     (match music with
      | Supervisor.Failed f ->
        check_string "hang reads as a timeout" "timeout"
          (Supervisor.reason_label f.Supervisor.f_reason);
        check_int "no retries" 0 f.Supervisor.f_retries
      | Supervisor.Completed _ ->
        Alcotest.fail "a persistent-for-one-attempt hang cannot complete \
                       without retry")
   | outcomes ->
     Alcotest.failf "expected 2 outcomes, got %d" (List.length outcomes));
  let elapsed = Unix.gettimeofday () -. started in
  check_bool
    (Printf.sprintf "the kill respected the deadline (took %.2fs)" elapsed)
    true
    (elapsed < 6.0)

(* {1 Cross-process telemetry} *)

let test_sigkill_sidecar_recovery () =
  (* A worker SIGKILLed mid-sweep cannot send its farewell frame; the
     sidecar state file it wrote after its last completed task must
     still deliver its telemetry.  jobs:1 pins both tasks to the same
     worker: task 0 bumps a counter and completes (flushing the
     sidecar), task 1 kills the process. *)
  with_obs @@ fun () ->
  let rows =
    Proc_pool.map ~jobs:1 ~retry:Proc_pool.no_retry
      (fun ~attempt:_ x ->
         Obs.add ~n:100 "sidecar.work";
         if x = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
         x)
      [ 0; 1 ]
  in
  (match rows with
   | [ ok; killed ] ->
     check_int "task 0 completed" 0 (List.hd (values [ ok ]));
     (match killed.Proc_pool.r_result with
      | Proc_pool.Died (Proc_pool.Signaled s) ->
        check_string "task 1 died by SIGKILL" "SIGKILL"
          (Proc_pool.signal_name s)
      | _ -> Alcotest.fail "task 1 should have died")
   | _ -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
  (* Only task 0's bump is recoverable: task 1 bumped before dying, but
     its sidecar was last flushed after task 0. *)
  check_int "counter recovered from the sidecar" 100 (counter "sidecar.work");
  (* the killed worker still contributes an RSS sample *)
  match
    List.assoc_opt "proc.worker_rss_peak_kb" (Obs.snapshot ()).Obs.histograms
  with
  | Some h ->
    check_bool "RSS histogram has the killed worker" true (h.Obs.h_count >= 1);
    check_bool "RSS positive" true (h.Obs.h_min > 0.0)
  | None -> Alcotest.fail "worker RSS histogram missing"

(* A fault-free isolated sweep over the two cheapest corpus apps. *)
let run_isolated_healthy ~jobs =
  Supervisor.run_catalog ~jobs ~specs:specs2
    ~budget:{ Supervisor.timeout_seconds = Some 60.0; max_events = None }
    ~mode:(Supervisor.Isolated { max_mem_mib = None })
    ()

let test_isolated_telemetry_merged () =
  (* A healthy isolated sweep: children analyse, the parent's snapshot
     must contain their spans (pid-qualified), their counters, and one
     RSS sample per worker — and the Chrome exporter must render one
     process lane per pid. *)
  with_obs @@ fun () ->
  let outcomes = run_isolated_healthy ~jobs:2 in
  check_int "both apps have outcomes" 2 (List.length outcomes);
  check_bool "children's analysis counters merged" true
    (counter "hb.passes" > 0);
  let snap = Obs.snapshot () in
  let span_pids =
    List.sort_uniq compare (List.map (fun s -> s.Obs.sp_pid) snap.Obs.spans)
  in
  check_bool
    (Printf.sprintf "spans from parent and workers (%d pids)"
       (List.length span_pids))
    true
    (List.length span_pids >= 3);
  check_bool "parent pid among the spans" true
    (List.mem (Unix.getpid ()) span_pids);
  check_bool "child-side app spans present" true
    (List.exists
       (fun s -> s.Obs.sp_name = "supervisor.app" && s.Obs.sp_pid <> Unix.getpid ())
       snap.Obs.spans);
  check_int "process table covers every span pid"
    (List.length span_pids)
    (List.length
       (List.filter (fun (pid, _) -> List.mem pid span_pids) snap.Obs.processes));
  (match List.assoc_opt "proc.worker_rss_peak_kb" snap.Obs.histograms with
   | Some h ->
     check_bool "one RSS sample per worker" true (h.Obs.h_count >= 2);
     check_bool "worker RSS positive" true (h.Obs.h_min > 0.0)
   | None -> Alcotest.fail "worker RSS histogram missing");
  (* Chrome exporter: every X event carries a real pid, and each pid
     has a process_name metadata record. *)
  let chrome =
    match Json_parse.parse (Obs.chrome_trace_string ()) with
    | Ok v -> v
    | Error msg -> Alcotest.failf "chrome trace is not valid JSON: %s" msg
  in
  let events =
    match
      Option.bind (Json_parse.member "traceEvents" chrome) Json_parse.to_list
    with
    | Some evs -> evs
    | None -> Alcotest.fail "no traceEvents array"
  in
  let pids_of ph =
    List.sort_uniq compare
      (List.filter_map
         (fun e ->
            if Json_parse.member "ph" e = Some (Json_parse.String ph) then
              Option.bind (Json_parse.member "pid" e) Json_parse.to_number
            else None)
         events)
  in
  check_bool "one Chrome lane per process" true
    (List.length (pids_of "X") >= 3);
  let process_names =
    List.filter
      (fun e ->
         Json_parse.member "ph" e = Some (Json_parse.String "M")
         && Json_parse.member "name" e = Some (Json_parse.String "process_name"))
      events
  in
  check_int "every process lane is named"
    (List.length snap.Obs.processes)
    (List.length process_names)

let test_isolated_counters_jobs_deterministic () =
  (* Fleet-wide merged counters must not depend on how tasks landed on
     workers.  "proc.*" bookkeeping (restarts, per-worker RSS) varies
     with the worker count by design and is excluded. *)
  let sweep jobs =
    with_obs @@ fun () ->
    ignore (run_isolated_healthy ~jobs);
    List.filter
      (fun (name, _) -> not (String.starts_with ~prefix:"proc." name))
      (Obs.snapshot ()).Obs.counters
  in
  let c1 = sweep 1 in
  let c2 = sweep 2 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "merged counters identical at jobs 1 and 2" c1 c2

let test_isolated_matches_cooperative () =
  (* On the cooperative fault classes the two modes must agree row for
     row (seed 3: Aard persistent crash, Music transient crash). *)
  let budget = { Supervisor.timeout_seconds = Some 60.0; max_events = None } in
  let sweep mode =
    Supervisor.with_faults ~seed:3 (fun () ->
      Supervisor.run_catalog ~jobs:2 ~specs:specs2 ~budget ~mode ())
  in
  (* The isolated sweep must run first: OCaml 5 refuses [fork] once any
     domain has ever been spawned, and the cooperative sweep spawns
     pool domains. *)
  let isolated = sweep (Supervisor.Isolated { max_mem_mib = None }) in
  let cooperative = sweep Supervisor.Cooperative in
  check (Alcotest.list Alcotest.string) "isolated = cooperative"
    (List.map shape cooperative) (List.map shape isolated)

let () =
  Alcotest.run "proc_isolation"
    [ ( "pool"
      , [ Alcotest.test_case "map preserves order" `Quick test_map_order
        ; Alcotest.test_case "segfault contained" `Quick
            test_segfault_contained
        ; Alcotest.test_case "oom contained by rlimit" `Quick
            test_oom_contained
        ; Alcotest.test_case "hang killed on deadline" `Quick
            test_hang_killed_on_deadline
        ; Alcotest.test_case "retry recovers with backoff" `Quick
            test_retry_recovers_with_backoff
        ; Alcotest.test_case "backoff arithmetic" `Quick
            test_backoff_arithmetic
        ] )
    ; ( "isolated supervisor"
      , [ Alcotest.test_case "oom fault becomes a failure row" `Slow
            test_supervised_oom_row
        ; Alcotest.test_case "transient hang recovers via hard kill" `Slow
            test_supervised_hang_recovers
        ; Alcotest.test_case "persistent hang times out within budget" `Slow
            test_supervised_hang_without_retry_times_out
        ] )
      (* [test_isolated_matches_cooperative] spawns pool domains, after
         which OCaml 5 refuses [fork]: every forking test must run in a
         suite registered before it. *)
    ; ( "cross-process telemetry"
      , [ Alcotest.test_case "SIGKILL sidecar recovery" `Quick
            test_sigkill_sidecar_recovery
        ; Alcotest.test_case "worker telemetry merged" `Slow
            test_isolated_telemetry_merged
        ; Alcotest.test_case "merged counters jobs-deterministic" `Slow
            test_isolated_counters_jobs_deterministic
        ] )
    ; ( "modes"
      , [ Alcotest.test_case "isolated matches cooperative rows" `Slow
            test_isolated_matches_cooperative
        ] )
    ]
