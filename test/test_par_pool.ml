(* Tests of the Par_pool domain pool and of the determinism invariant
   of the parallel analysis engine: the same report, bit for bit,
   whatever the jobs count. *)

module Par_pool = Droidracer_core.Par_pool
module Bit_matrix = Droidracer_core.Bit_matrix
module Detector = Droidracer_core.Detector
module Runtime = Droidracer_appmodel.Runtime
module Synthetic = Droidracer_corpus.Synthetic
module Catalog = Droidracer_corpus.Catalog
module Experiments = Droidracer_report.Experiments

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let int_list = Alcotest.(list int)

(* {1 parallel_map} *)

let test_order_preserved () =
  let xs = List.init 1000 (fun i -> i) in
  let f x = (x * 7) mod 1001 in
  List.iter
    (fun jobs ->
       Alcotest.check int_list
         (Printf.sprintf "jobs=%d equals List.map" jobs)
         (List.map f xs)
         (Par_pool.parallel_map ~jobs f xs))
    [ 1; 2; 4; 13 ]

let test_uneven_work () =
  (* Per-element costs spanning three orders of magnitude still land in
     input order. *)
  let xs = List.init 60 (fun i -> if i mod 7 = 0 then 40_000 else i) in
  let f n =
    let acc = ref 0 in
    for k = 1 to n do
      acc := (!acc + k) mod 9973
    done;
    !acc
  in
  Alcotest.check int_list "balanced and ordered" (List.map f xs)
    (Par_pool.parallel_map ~jobs:4 f xs)

let test_more_jobs_than_elements () =
  Alcotest.check int_list "jobs > length" [ 2; 4; 6 ]
    (Par_pool.parallel_map ~jobs:32 (fun x -> 2 * x) [ 1; 2; 3 ]);
  Alcotest.check int_list "empty" []
    (Par_pool.parallel_map ~jobs:4 (fun x -> x) [])

exception Boom of int

let test_exception_propagation () =
  (* Every failing element raises, and the lowest-indexed failure wins
     deterministically. *)
  Alcotest.check_raises "first failure by index" (Boom 3) (fun () ->
    ignore
      (Par_pool.parallel_map ~jobs:4
         (fun i -> if i mod 7 = 3 then raise (Boom i) else i)
         (List.init 100 (fun i -> i))));
  (* The pool survives a failed map and runs the next one. *)
  check_int "pool still works" 4950
    (List.fold_left ( + ) 0
       (Par_pool.parallel_map ~jobs:4 (fun i -> i) (List.init 100 (fun i -> i))))

let test_nested_maps () =
  (* A parallel map whose elements themselves map in parallel must not
     deadlock: callers always participate in their own work. *)
  let sums =
    Par_pool.parallel_map ~jobs:4
      (fun base ->
         List.fold_left ( + ) 0
           (Par_pool.parallel_map ~jobs:4
              (fun i -> base + i)
              (List.init 50 (fun i -> i))))
      (List.init 8 (fun b -> 100 * b))
  in
  Alcotest.check int_list "nested sums"
    (List.init 8 (fun b -> (100 * b * 50) + 1225))
    sums

let test_ranges () =
  Alcotest.check
    Alcotest.(list (pair int int))
    "partition" [ (0, 64); (64, 128); (128, 150) ]
    (Par_pool.ranges ~chunk:64 150);
  Alcotest.check Alcotest.(list (pair int int)) "empty" []
    (Par_pool.ranges ~chunk:64 0)

(* {1 Determinism of the analysis pipeline} *)

(* Two corpus applications, analysed sequentially and with four
   domains: the reports must be identical except for the wall-clock
   field.  The rendered report covers races, classification, node and
   edge counts and the pass count, so comparing the rendering compares
   everything observable. *)
let report_fingerprint report =
  Format.asprintf "%a" Detector.pp_report
    { report with Detector.elapsed_seconds = 0. }

let corpus_traces =
  lazy
    (List.map
       (fun spec ->
          let b = Synthetic.build spec in
          let result =
            Runtime.run ~options:b.Synthetic.b_options b.Synthetic.b_app
              b.Synthetic.b_events
          in
          (spec.Synthetic.s_name, result.Runtime.observed))
       [ List.nth Catalog.open_source 0; List.nth Catalog.open_source 3 ])

let test_detector_determinism () =
  List.iter
    (fun (name, trace) ->
       let sequential = Detector.analyze ~jobs:1 trace in
       let parallel = Detector.analyze ~jobs:4 trace in
       Alcotest.check Alcotest.string
         (name ^ ": report identical for jobs=1 and jobs=4")
         (report_fingerprint sequential)
         (report_fingerprint parallel);
       check_int (name ^ ": same pass count") sequential.Detector.fixpoint_passes
         parallel.Detector.fixpoint_passes;
       check_int (name ^ ": same edge count") sequential.Detector.hb_edges
         parallel.Detector.hb_edges)
    (Lazy.force corpus_traces)

(* The choice of closure engine must be unobservable in the report
   (pass counts and closure-work counters excepted): same races, same
   classification, same edge counts, at every jobs value. *)
let test_engine_independence () =
  let strip report =
    Format.asprintf "%a" Detector.pp_report
      { report with
        Detector.elapsed_seconds = 0.
      ; fixpoint_passes = 0
      ; hb_word_ors = 0
      ; hb_rows_requeued = 0
      ; phase_seconds = []
      }
  in
  List.iter
    (fun (name, trace) ->
       let analyze closure jobs =
         let config =
           { Detector.default_config with
             hb = { Detector.default_config.hb with closure }
           }
         in
         Detector.analyze ~config ~jobs trace
       in
       let reference = strip (analyze Droidracer_core.Happens_before.Dense 1) in
       List.iter
         (fun jobs ->
            List.iter
              (fun closure ->
                 Alcotest.check Alcotest.string
                   (Printf.sprintf "%s: report engine-independent (%s, jobs=%d)"
                      name
                      (Droidracer_core.Happens_before.closure_engine_name
                         closure)
                      jobs)
                   reference
                   (strip (analyze closure jobs)))
              [ Droidracer_core.Happens_before.Dense
              ; Droidracer_core.Happens_before.Worklist
              ])
         [ 1; 4 ])
    (Lazy.force corpus_traces)

let test_run_catalog_determinism () =
  let specs =
    [ List.nth Catalog.open_source 0; List.nth Catalog.open_source 3 ]
  in
  let fingerprints jobs =
    Experiments.run_catalog ~jobs ~specs ()
    |> List.map (fun run -> report_fingerprint run.Experiments.ar_report)
  in
  Alcotest.check
    Alcotest.(list string)
    "catalog runs identical for jobs=1 and jobs=3" (fingerprints 1)
    (fingerprints 3)

(* {1 Bit_matrix support for the block-parallel closure} *)

let test_matrix_copy_blit () =
  let m = Bit_matrix.create 70 in
  Bit_matrix.set m 3 69;
  let snapshot = Bit_matrix.copy m in
  Bit_matrix.set m 3 5;
  check_bool "copy is independent" false (Bit_matrix.get snapshot 3 5);
  check_bool "copy kept set bit" true (Bit_matrix.get snapshot 3 69);
  Bit_matrix.blit ~src:m ~dst:snapshot;
  check_bool "blit overwrites" true (Bit_matrix.get snapshot 3 5);
  check_int "same population" (Bit_matrix.count m) (Bit_matrix.count snapshot)

let test_matrix_or_between () =
  let read = Bit_matrix.create 10 and write = Bit_matrix.create 10 in
  Bit_matrix.set read 1 5;
  check_bool "cross-matrix or changes" true
    (Bit_matrix.or_row_between ~read ~write ~dst:0 ~src:1);
  check_bool "bit landed in write" true (Bit_matrix.get write 0 5);
  check_bool "read untouched" false (Bit_matrix.get read 0 5);
  check_bool "idempotent" false
    (Bit_matrix.or_row_between ~read ~write ~dst:0 ~src:1)

let () =
  Alcotest.run "par_pool"
    [ ( "parallel_map"
      , [ Alcotest.test_case "order preserved" `Quick test_order_preserved
        ; Alcotest.test_case "uneven work" `Quick test_uneven_work
        ; Alcotest.test_case "more jobs than elements" `Quick
            test_more_jobs_than_elements
        ; Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation
        ; Alcotest.test_case "nested maps" `Quick test_nested_maps
        ; Alcotest.test_case "ranges" `Quick test_ranges
        ] )
    ; ( "determinism"
      , [ Alcotest.test_case "detector jobs=1 vs jobs=4" `Quick
            test_detector_determinism
        ; Alcotest.test_case "run_catalog jobs=1 vs jobs=3" `Quick
            test_run_catalog_determinism
        ; Alcotest.test_case "closure engine independence" `Quick
            test_engine_independence
        ] )
    ; ( "bit matrix"
      , [ Alcotest.test_case "copy and blit" `Quick test_matrix_copy_blit
        ; Alcotest.test_case "or_row_between" `Quick test_matrix_or_between
        ] )
    ]
