open Helpers
module Graph = Droidracer_core.Graph
module Hb = Droidracer_core.Happens_before
module Reference_hb = Droidracer_core.Reference_hb

let check_bool = Alcotest.check Alcotest.bool

let relation ?config t =
  Hb.compute ?config (Graph.build ~coalesce:true t)

(* {1 Rule-by-rule unit tests (Figures 6 and 7)} *)

let p = task "p"
let q = task "q"

let test_no_q_po () =
  (* A thread without a queue is ordered by plain program order. *)
  let t = trace [ threadinit 0; write 0 (loc "a"); read 0 (loc "b") ] in
  let r = relation t in
  check_bool "program order" true (Hb.hb r 1 2);
  check_bool "antisymmetric" false (Hb.hb r 2 1);
  (* Pre-loop operations are ordered before everything later on the
     thread, including task bodies. *)
  let t2 =
    trace
      [ threadinit 0
      ; threadinit 1
      ; write 1 (loc "a")  (* 2: before loopOnQ *)
      ; attachq 1
      ; looponq 1
      ; post 0 p 1
      ; begin_task 1 p
      ; read 1 (loc "a")  (* 7: inside the task *)
      ; end_task 1 p
      ]
  in
  let r2 = relation t2 in
  check_bool "pre-loop op precedes task op" true (Hb.hb r2 2 7)

let test_async_po () =
  (* Operations of one task are ordered; operations of two tasks with
     unordered posts are not, even on the same thread. *)
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; threadinit 2
      ; attachq 2
      ; looponq 2
      ; post 0 p 2
      ; post 1 q 2
      ; begin_task 2 p
      ; write 2 (loc "a")  (* 8 *)
      ; read 2 (loc "b")  (* 9 *)
      ; end_task 2 p
      ; begin_task 2 q
      ; write 2 (loc "a")  (* 12 *)
      ; end_task 2 q
      ]
  in
  let r = relation t in
  check_bool "within task" true (Hb.hb r 8 9);
  check_bool "across unordered tasks: begin/ops unordered" false
    (Hb.hb r 8 12);
  check_bool "across unordered tasks: reverse" false (Hb.hb r 12 8)

let test_enable_st_and_mt () =
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; attachq 1
      ; looponq 1
      ; enable 1 p  (* 4: same-thread enable *)
      ; enable 0 q  (* 5: cross-thread enable *)
      ; post 1 p 1  (* 6 *)
      ; post 1 q 1  (* 7 *)
      ]
  in
  let r = relation t in
  check_bool "ENABLE-ST" true (Hb.hb r 4 6);
  check_bool "ENABLE-MT" true (Hb.hb r 5 7)

let test_post_rule () =
  let t =
    trace
      [ threadinit 0; threadinit 1; attachq 1; looponq 1; post 0 p 1
      ; begin_task 1 p; end_task 1 p
      ]
  in
  let r = relation t in
  check_bool "POST-MT" true (Hb.hb r 4 5)

let test_attach_q_mt () =
  let t =
    trace
      [ threadinit 0; threadinit 1; attachq 1; looponq 1; post 0 p 1 ]
  in
  let r = relation t in
  check_bool "ATTACH-Q-MT" true (Hb.hb r 2 4)

let test_fork_join () =
  let t =
    trace
      [ threadinit 0
      ; write 0 (loc "a")  (* 1 *)
      ; fork 0 1  (* 2 *)
      ; threadinit 1  (* 3 *)
      ; write 1 (loc "a")  (* 4 *)
      ; threadexit 1  (* 5 *)
      ; join 0 1  (* 6 *)
      ; read 0 (loc "a")  (* 7 *)
      ]
  in
  let r = relation t in
  check_bool "FORK" true (Hb.hb r 2 3);
  check_bool "JOIN" true (Hb.hb r 5 6);
  check_bool "fork transitively orders accesses" true (Hb.hb r 1 4);
  check_bool "join transitively orders accesses" true (Hb.hb r 4 7)

let test_lock_rule () =
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; acquire 0 "l"
      ; write 0 (loc "a")  (* 3 *)
      ; release 0 "l"  (* 4 *)
      ; acquire 1 "l"  (* 5 *)
      ; write 1 (loc "a")  (* 6 *)
      ; release 1 "l"
      ]
  in
  let r = relation t in
  check_bool "LOCK orders release before acquire" true (Hb.hb r 4 5);
  check_bool "protected accesses ordered" true (Hb.hb r 3 6)

let test_lock_decomposition () =
  (* Two tasks on the same thread, posted by unrelated threads, both
     protected by the same lock: the naïve combination orders them
     spuriously (missing the race); the decomposed relation does not
     (Section 1). *)
  let events =
    [ threadinit 0
    ; threadinit 1
    ; threadinit 2
    ; attachq 2
    ; looponq 2
    ; post 0 p 2
    ; post 1 q 2
    ; begin_task 2 p
    ; acquire 2 "l"
    ; write 2 (loc "a")  (* 9 *)
    ; release 2 "l"
    ; end_task 2 p
    ; begin_task 2 q
    ; acquire 2 "l"
    ; write 2 (loc "a")  (* 14 *)
    ; release 2 "l"
    ; end_task 2 q
    ]
  in
  let t = trace events in
  let r = relation t in
  check_bool "decomposed relation leaves the tasks unordered" false
    (Hb.hb r 9 14);
  let naive =
    { Hb.default with lock_same_thread = true; restricted_transitivity = false }
  in
  let rn = relation ~config:naive t in
  check_bool "naive combination orders them spuriously" true (Hb.hb rn 9 14)

let test_fifo () =
  (* Two posts by the same thread to the same queue execute in order. *)
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; attachq 1
      ; looponq 1
      ; post 0 p 1  (* 4 *)
      ; post 0 q 1  (* 5 *)
      ; begin_task 1 p
      ; write 1 (loc "a")  (* 7 *)
      ; end_task 1 p  (* 8 *)
      ; begin_task 1 q  (* 9 *)
      ; write 1 (loc "a")  (* 10 *)
      ; end_task 1 q
      ]
  in
  let r = relation t in
  check_bool "FIFO end-begin edge" true (Hb.hb r 8 9);
  check_bool "FIFO orders the task bodies" true (Hb.hb r 7 10)

let test_fifo_needs_ordered_posts () =
  (* Posts from two unrelated threads are unordered, so FIFO does not
     apply even though the trace executed them in some order. *)
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; threadinit 2
      ; attachq 2
      ; looponq 2
      ; post 0 p 2
      ; post 1 q 2
      ; begin_task 2 p
      ; end_task 2 p  (* 8 *)
      ; begin_task 2 q  (* 9 *)
      ; end_task 2 q
      ]
  in
  let r = relation t in
  check_bool "no FIFO edge for unordered posts" false (Hb.hb r 8 9)

let test_fifo_delayed_variants () =
  let make f1 f2 =
    trace
      [ threadinit 0
      ; threadinit 1
      ; attachq 1
      ; looponq 1
      ; post ~flavour:f1 0 p 1
      ; post ~flavour:f2 0 q 1
      ; begin_task 1 p
      ; end_task 1 p  (* 7 *)
      ; begin_task 1 q  (* 8 *)
      ; end_task 1 q
      ]
  in
  let edge f1 f2 =
    let r = relation (make f1 f2) in
    Hb.hb r 7 8
  in
  check_bool "immediate then delayed: ordered (rule a)" true
    (edge Operation.Immediate (Operation.Delayed 100));
  check_bool "delayed 100 then delayed 200: ordered (rule b)" true
    (edge (Operation.Delayed 100) (Operation.Delayed 200));
  check_bool "equal delays: ordered (rule b)" true
    (edge (Operation.Delayed 100) (Operation.Delayed 100));
  check_bool "delayed 200 then delayed 100: unordered" false
    (edge (Operation.Delayed 200) (Operation.Delayed 100))

let test_delayed_before_immediate_unordered () =
  (* A delayed post followed by an immediate one: the immediate task ran
     first in this trace, and the two are unordered. *)
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; attachq 1
      ; looponq 1
      ; post ~flavour:(Operation.Delayed 500) 0 p 1
      ; post 0 q 1
      ; begin_task 1 q
      ; end_task 1 q  (* 7 *)
      ; begin_task 1 p  (* 8 *)
      ; end_task 1 p
      ]
  in
  let r = relation t in
  check_bool "no ordering between delayed and later immediate" false
    (Hb.hb r 7 8)

let test_nopre () =
  (* A task posting to its own thread finishes before the posted task
     begins, whatever the flavour (no pre-emption) — even for a
     front-of-queue post, for which FIFO is not applicable. *)
  List.iter
    (fun flavour ->
       let t =
         trace
           [ threadinit 1
           ; attachq 1
           ; looponq 1
           ; post 1 p 1
           ; begin_task 1 p
           ; write 1 (loc "a")  (* 5 *)
           ; post ~flavour 1 q 1  (* 6 *)
           ; end_task 1 p  (* 7 *)
           ; begin_task 1 q  (* 8 *)
           ; read 1 (loc "a")  (* 9 *)
           ; end_task 1 q
           ]
       in
       let r = relation t in
       check_bool "NOPRE end-begin edge" true (Hb.hb r 7 8);
       check_bool "NOPRE orders the accesses" true (Hb.hb r 5 9))
    [ Operation.Immediate; Operation.Delayed 300; Operation.Front ]

let test_nopre_cross_thread_round_trip () =
  (* Task A on t1 posts p to t2; task p posts q back to t1.  The write
     in A is ordered before the read in q only through the combination
     of inter-thread reasoning and NOPRE (TRANS-ST alone cannot cross
     t2, and TRANS-MT cannot relate two t1 operations). *)
  let a = task "A" in
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; threadinit 2
      ; attachq 1
      ; attachq 2
      ; looponq 1
      ; looponq 2
      ; post 0 a 1
      ; begin_task 1 a
      ; write 1 (loc "m")  (* 9 *)
      ; post 1 p 2
      ; end_task 1 a  (* 11 *)
      ; begin_task 2 p
      ; post 2 q 1
      ; end_task 2 p
      ; begin_task 1 q  (* 15 *)
      ; read 1 (loc "m")  (* 16 *)
      ; end_task 1 q
      ]
  in
  let r = relation t in
  check_bool "NOPRE across a cross-thread post chain" true (Hb.hb r 11 15);
  check_bool "write before read" true (Hb.hb r 9 16)

let test_front_post_no_fifo () =
  (* A front post from an unrelated ordering context: FIFO must not
     order it after earlier tasks. *)
  let t =
    trace
      [ threadinit 0
      ; threadinit 1
      ; attachq 1
      ; looponq 1
      ; post 0 p 1
      ; post ~flavour:Operation.Front 0 q 1
      ; begin_task 1 q
      ; end_task 1 q  (* 7 *)
      ; begin_task 1 p
      ; end_task 1 p  (* 9 *)
      ]
  in
  let r = relation t in
  check_bool "front-posted task unordered w.r.t. FIFO" false (Hb.hb r 7 8);
  check_bool "reverse also unordered" false (Hb.hb r 9 6)

let test_front_rule_extension () =
  (* the deferred-to-future-work treatment of posting-to-the-front:
     sound only when both posts come from one task on the target thread *)
  let self_posting =
    trace
      [ threadinit 0
      ; threadinit 1
      ; attachq 1
      ; looponq 1
      ; post 0 (task "c") 1
      ; begin_task 1 (task "c")
      ; post 1 p 1  (* 6: immediate *)
      ; post ~flavour:Operation.Front 1 q 1  (* 7: front, same task *)
      ; end_task 1 (task "c")
      ; begin_task 1 q
      ; end_task 1 q  (* 10 *)
      ; begin_task 1 p  (* 11 *)
      ; end_task 1 p
      ]
  in
  let r = relation self_posting in
  check_bool "paper rules: unordered" false (Hb.hb r 10 11);
  let extended = { Hb.default with front_rule = true } in
  let r' = relation ~config:extended self_posting in
  check_bool "front rule: the front post pre-empts" true (Hb.hb r' 10 11);
  (* posts from another thread: the pending task may begin in between,
     so even the extension derives nothing *)
  let cross_posting =
    trace
      [ threadinit 0
      ; threadinit 1
      ; attachq 1
      ; looponq 1
      ; post 0 p 1  (* 4: immediate *)
      ; post ~flavour:Operation.Front 0 q 1  (* 5: front, from t0 *)
      ; begin_task 1 q
      ; end_task 1 q  (* 7 *)
      ; begin_task 1 p  (* 8 *)
      ; end_task 1 p
      ]
  in
  let r'' = relation ~config:extended cross_posting in
  check_bool "cross-thread front posts stay unordered" false (Hb.hb r'' 7 8)

(* {1 The figures of the paper} *)

let test_figure3_edges () =
  let r = relation figure3 in
  check_bool "edge a: fork -> threadinit" true (Hb.hb r (fig 8) (fig 11));
  check_bool "edge b: post -> begin" true (Hb.hb r (fig 13) (fig 15));
  check_bool "edge c: end LAUNCH -> begin onPostExecute" true
    (Hb.hb r (fig 10) (fig 15));
  check_bool "edge d: enable -> post onPlayClick" true
    (Hb.hb r (fig 17) (fig 19));
  check_bool "edge e: enable -> post onPause" true (Hb.hb r (fig 21) (fig 23));
  (* The two conflicting pairs of Section 2.4 are ordered. *)
  check_bool "write 7 before read 12" true (Hb.hb r (fig 7) (fig 12));
  check_bool "write 7 before read 16" true (Hb.hb r (fig 7) (fig 16))

let test_figure4_orderings () =
  let r = relation figure4 in
  (* enable(9) ⪯ post(19) ⪯ begin(20) orders the two writes. *)
  check_bool "write 7 before write 21" true (Hb.hb r (fig 7) (fig 21));
  (* The two racey pairs are unordered. *)
  check_bool "read 12 vs write 21 unordered" false
    (Hb.ordered r (fig 12) (fig 21));
  check_bool "read 16 vs write 21 unordered" false
    (Hb.ordered r (fig 16) (fig 21))

let test_figure4_without_enable_modelling () =
  (* Without the environment model the ordering between operations 7 and
     21 is lost: the false positive of Section 2.4. *)
  let config = { Hb.default with enable_rule = false } in
  let r = relation ~config figure4 in
  check_bool "7 vs 21 unordered without enable" false
    (Hb.ordered r (fig 7) (fig 21))

(* {1 Differential testing against the rule-by-rule oracle} *)

let agrees ?config ~coalesce t =
  let reference = Reference_hb.compute t in
  let r = Hb.compute ?config (Graph.build ~coalesce t) in
  let n = Trace.length t in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Hb.hb r i j <> Reference_hb.hb reference i j then begin
        ok := false;
        Format.eprintf "disagree at (%d,%d): engine=%b reference=%b@." i j
          (Hb.hb r i j)
          (Reference_hb.hb reference i j)
      end
    done
  done;
  !ok

let test_figures_match_reference () =
  check_bool "figure 3" true (agrees ~coalesce:true figure3);
  check_bool "figure 4" true (agrees ~coalesce:true figure4);
  check_bool "figure 3 uncoalesced" true (agrees ~coalesce:false figure3)

let prop_engine_matches_reference =
  QCheck2.Test.make ~name:"graph engine agrees with the rule oracle" ~count:60
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 60))
    (fun (seed, size) ->
       agrees ~coalesce:true (Random_trace.generate ~seed ~size ()))

let prop_engine_matches_reference_uncoalesced =
  QCheck2.Test.make
    ~name:"uncoalesced graph engine agrees with the rule oracle" ~count:30
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 60))
    (fun (seed, size) ->
       agrees ~coalesce:false (Random_trace.generate ~seed ~size ()))

let prop_hb_respects_trace_order =
  QCheck2.Test.make ~name:"hb implies trace order" ~count:60
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 100))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       let r = relation t in
       let n = Trace.length t in
       let ok = ref true in
       for i = 0 to n - 1 do
         for j = 0 to n - 1 do
           if Hb.hb r i j && i >= j then ok := false
         done
       done;
       !ok)

let prop_coalescing_preserves_hb =
  QCheck2.Test.make ~name:"coalescing preserves the relation" ~count:40
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 100))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       let rc = Hb.compute (Graph.build ~coalesce:true t) in
       let ru = Hb.compute (Graph.build ~coalesce:false t) in
       let n = Trace.length t in
       let ok = ref true in
       for i = 0 to n - 1 do
         for j = 0 to n - 1 do
           if Hb.hb rc i j <> Hb.hb ru i j then ok := false
         done
       done;
       !ok)

(* {1 Dense vs worklist closure engines}

   Both engines compute the least fixpoint of the same monotone rule
   system, so the resulting matrices must be bit-identical — for every
   [jobs] value and every rule configuration.  Only pass counts may
   differ. *)

let engines_agree ?(config = Hb.default) ~jobs t =
  let g = Graph.build ~coalesce:true t in
  let rd = Hb.compute ~config:{ config with closure = Hb.Dense } ~jobs g in
  let rw = Hb.compute ~config:{ config with closure = Hb.Worklist } ~jobs g in
  let ok = ref (Hb.edge_count rd = Hb.edge_count rw) in
  if not !ok then
    Format.eprintf "engines disagree on edge count: dense=%d worklist=%d@."
      (Hb.edge_count rd) (Hb.edge_count rw);
  let n = Hb.node_count rd in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Hb.node_hb rd i j <> Hb.node_hb rw i j then begin
        ok := false;
        Format.eprintf
          "engines disagree at nodes (%d,%d): dense=%b worklist=%b@." i j
          (Hb.node_hb rd i j) (Hb.node_hb rw i j)
      end
    done
  done;
  !ok

let prop_worklist_matches_dense =
  QCheck2.Test.make ~name:"worklist closure equals dense (jobs 1 and 4)"
    ~count:40
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 80))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       engines_agree ~jobs:1 t && engines_agree ~jobs:4 t)

let prop_worklist_matches_dense_ablations =
  QCheck2.Test.make ~name:"worklist equals dense under ablation configs"
    ~count:20
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 60))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       List.for_all
         (fun config -> engines_agree ~config ~jobs:1 t)
         [ { Hb.default with restricted_transitivity = false }
         ; { Hb.default with front_rule = true }
         ; { Hb.default with lock_same_thread = true }
         ; { Hb.default with program_order = Hb.Full_po }
         ])

let prop_worklist_matches_reference =
  QCheck2.Test.make ~name:"worklist engine agrees with the rule oracle"
    ~count:30
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 60))
    (fun (seed, size) ->
       agrees
         ~config:{ Hb.default with closure = Hb.Worklist }
         ~coalesce:true
         (Random_trace.generate ~seed ~size ()))

(* {1 The shared static edge builder}

   Happens_before seeds its fixpoint from Hb_edges (one builder, shared
   with the predictive engine).  Check the extraction did not drift:
   every emitted edge of the full static configuration is a fact of the
   rule-by-rule oracle's relation, and the must configuration is
   exactly the full one minus the LOCK instances. *)

module Hb_edges = Droidracer_core.Hb_edges

let static_edges ~config t =
  let g = Graph.build ~coalesce:false t in
  let edges = ref [] in
  Hb_edges.iter ~config g ~f:(fun ~rule src dst ->
    edges := (rule, Graph.first_pos g src, Graph.first_pos g dst) :: !edges);
  List.sort_uniq compare !edges

let edges_sound t =
  let reference = Reference_hb.compute t in
  List.for_all
    (fun (rule, i, j) ->
       let ok = i < j && Reference_hb.hb reference i j in
       if not ok then
         Format.eprintf "static edge %s (%d,%d) not in the oracle@."
           (Hb_edges.rule_name rule) i j;
       ok)
    (static_edges ~config:Hb_edges.all t)

let must_is_all_minus_lock t =
  let strip = List.map (fun (_, i, j) -> (i, j)) in
  let all_minus_lock =
    List.filter (fun (r, _, _) -> r <> Hb_edges.Lock)
      (static_edges ~config:Hb_edges.all t)
  in
  strip (static_edges ~config:Hb_edges.must t) = strip all_minus_lock

let test_static_edges_figures () =
  check_bool "figure 3 edges sound" true (edges_sound figure3);
  check_bool "figure 4 edges sound" true (edges_sound figure4);
  check_bool "figure 3 must = all - lock" true
    (must_is_all_minus_lock figure3);
  check_bool "figure 4 must = all - lock" true
    (must_is_all_minus_lock figure4)

let prop_static_edges_sound =
  QCheck2.Test.make ~name:"static edges are facts of the rule oracle"
    ~count:40
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 5 60))
    (fun (seed, size) ->
       let t = Random_trace.generate ~seed ~size () in
       edges_sound t && must_is_all_minus_lock t)

let () =
  Alcotest.run "happens_before"
    [ ( "rules"
      , [ Alcotest.test_case "NO-Q-PO" `Quick test_no_q_po
        ; Alcotest.test_case "ASYNC-PO" `Quick test_async_po
        ; Alcotest.test_case "ENABLE-ST/MT" `Quick test_enable_st_and_mt
        ; Alcotest.test_case "POST" `Quick test_post_rule
        ; Alcotest.test_case "ATTACH-Q-MT" `Quick test_attach_q_mt
        ; Alcotest.test_case "FORK/JOIN" `Quick test_fork_join
        ; Alcotest.test_case "LOCK" `Quick test_lock_rule
        ; Alcotest.test_case "lock decomposition" `Quick test_lock_decomposition
        ; Alcotest.test_case "FIFO" `Quick test_fifo
        ; Alcotest.test_case "FIFO needs ordered posts" `Quick
            test_fifo_needs_ordered_posts
        ; Alcotest.test_case "FIFO delayed variants" `Quick
            test_fifo_delayed_variants
        ; Alcotest.test_case "delayed vs immediate unordered" `Quick
            test_delayed_before_immediate_unordered
        ; Alcotest.test_case "NOPRE" `Quick test_nopre
        ; Alcotest.test_case "NOPRE cross-thread round trip" `Quick
            test_nopre_cross_thread_round_trip
        ; Alcotest.test_case "front post has no FIFO edge" `Quick
            test_front_post_no_fifo
        ; Alcotest.test_case "front rule extension" `Quick
            test_front_rule_extension
        ] )
    ; ( "figures"
      , [ Alcotest.test_case "figure 3 edges a-e" `Quick test_figure3_edges
        ; Alcotest.test_case "figure 4 orderings" `Quick test_figure4_orderings
        ; Alcotest.test_case "figure 4 without enables" `Quick
            test_figure4_without_enable_modelling
        ] )
    ; ( "differential"
      , [ Alcotest.test_case "figures match the oracle" `Quick
            test_figures_match_reference
        ; QCheck_alcotest.to_alcotest prop_engine_matches_reference
        ; QCheck_alcotest.to_alcotest prop_engine_matches_reference_uncoalesced
        ; QCheck_alcotest.to_alcotest prop_hb_respects_trace_order
        ; QCheck_alcotest.to_alcotest prop_coalescing_preserves_hb
        ] )
    ; ( "static edges"
      , [ Alcotest.test_case "figures" `Quick test_static_edges_figures
        ; QCheck_alcotest.to_alcotest prop_static_edges_sound
        ] )
    ; ( "closure engines"
      , [ QCheck_alcotest.to_alcotest prop_worklist_matches_dense
        ; QCheck_alcotest.to_alcotest prop_worklist_matches_dense_ablations
        ; QCheck_alcotest.to_alcotest prop_worklist_matches_reference
        ] )
    ]
