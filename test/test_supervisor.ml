(* The fault-tolerant analysis supervisor.

   The contract under test: one misbehaving application costs one
   failure row, never the sweep; outcomes are identical across [jobs]
   values; the fault plan of [with_faults] is a pure function of
   (seed, app); budgets degrade gracefully (worklist fallback, timeout
   rows); and the Obs counters account for every degradation.

   The injected-fault expectations below are pinned against the
   deterministic plan (Supervisor.fault_decision, FNV-1a): for the two
   cheapest corpus applications,
     seed 1: Aard Dictionary = transient parse fault, Music Player healthy
     seed 3: Aard = persistent crash, Music Player = transient crash
     seed 6: Aard = transient timeout, Music Player = transient reject
   (a transient reject still fails: rejections are never retried). *)

module Supervisor = Droidracer_report.Supervisor
module Experiments = Droidracer_report.Experiments
module Detector = Droidracer_core.Detector
module Trace = Droidracer_trace.Trace
module Catalog = Droidracer_corpus.Catalog
module Synthetic = Droidracer_corpus.Synthetic
module Vargen = Droidracer_corpus.Vargen
module Obs = Droidracer_obs.Obs
module Progress = Droidracer_report.Progress
open Helpers

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int
let check_string = check Alcotest.string

(* Aard Dictionary (~1.4k events) and Music Player (~5.5k): big enough
   to exercise the full pipeline, cheap enough to run repeatedly. *)
let specs2 =
  match Catalog.all with
  | a :: b :: _ -> [ a; b ]
  | _ -> assert false

let spec_names = List.map (fun s -> s.Synthetic.s_name) specs2

(* The structural shape of an outcome: everything except wall-clock
   elapsed, which legitimately differs between runs. *)
let shape = function
  | Supervisor.Completed run ->
    Printf.sprintf "completed %s races=%d"
      run.Experiments.ar_built.Synthetic.b_spec.Synthetic.s_name
      (List.length run.Experiments.ar_report.Detector.all_races)
  | Supervisor.Failed f ->
    Printf.sprintf "failed %s %s retries=%d reason=%s" f.Supervisor.f_app
      (Supervisor.reason_label f.Supervisor.f_reason)
      f.Supervisor.f_retries
      (Supervisor.reason_detail f.Supervisor.f_reason)

let run_seeded ?(jobs = 1) seed =
  Supervisor.with_faults ~seed (fun () ->
    Supervisor.run_catalog ~jobs ~specs:specs2 ())

(* {1 The fault plan} *)

let test_fault_decision_pure () =
  List.iter
    (fun seed ->
       List.iter
         (fun app ->
            let d1 = Supervisor.fault_decision ~seed ~app () in
            let d2 = Supervisor.fault_decision ~seed ~app () in
            check_bool "same decision twice" true (d1 = d2))
         spec_names)
    [ 1; 2; 3; 4; 5; 6 ];
  (* Every fault class is reachable: over a window of seeds, each class
     hits at least one catalog application. *)
  let seen = Hashtbl.create 4 in
  for seed = 1 to 40 do
    List.iter
      (fun (s : Synthetic.spec) ->
         match
           (Supervisor.fault_decision ~seed ~app:s.Synthetic.s_name ())
             .Supervisor.d_fault
         with
         | Some f -> Hashtbl.replace seen (Supervisor.fault_name f) ()
         | None -> ())
      Catalog.all
  done;
  List.iter
    (fun f ->
       check_bool (Printf.sprintf "class %s reachable" f) true
         (Hashtbl.mem seen f))
    [ "parse"; "reject"; "crash"; "timeout" ]

let test_pinned_plan () =
  let aard = List.nth spec_names 0 and music = List.nth spec_names 1 in
  let decision seed app = Supervisor.fault_decision ~seed ~app () in
  check_bool "seed 1: Aard = transient parse" true
    (decision 1 aard
     = { Supervisor.d_fault = Some Supervisor.Parse_fault; d_transient = true });
  check_bool "seed 1: Music healthy" true
    ((decision 1 music).Supervisor.d_fault = None);
  check_bool "seed 3: Aard = persistent crash" true
    (decision 3 aard
     = { Supervisor.d_fault = Some Supervisor.Crash_fault; d_transient = false });
  check_bool "seed 3: Music = transient crash" true
    (decision 3 music
     = { Supervisor.d_fault = Some Supervisor.Crash_fault; d_transient = true });
  check_bool "seed 6: Aard = transient timeout" true
    (decision 6 aard
     = { Supervisor.d_fault = Some Supervisor.Timeout_fault; d_transient = true });
  check_bool "seed 6: Music = transient reject" true
    (decision 6 music
     = { Supervisor.d_fault = Some Supervisor.Reject_fault; d_transient = true })

(* {1 Seeded fault classes}

   Under every fault class the sweep completes, healthy applications
   still produce reports, and the failed row carries the injected
   reason. *)

let expect_completed name = function
  | Supervisor.Completed run ->
    check_string "completed app" name
      run.Experiments.ar_built.Synthetic.b_spec.Synthetic.s_name;
    check_bool (name ^ " produced a report") true
      (Trace.length run.Experiments.ar_report.Detector.trace > 0)
  | Supervisor.Failed f ->
    Alcotest.failf "%s should have completed, failed: %s" name
      (Supervisor.reason_detail f.Supervisor.f_reason)

let expect_failed name ~label ~retries ~contains = function
  | Supervisor.Completed _ ->
    Alcotest.failf "%s should have failed (%s)" name label
  | Supervisor.Failed f ->
    check_string "failed app" name f.Supervisor.f_app;
    check_string (name ^ " outcome") label
      (Supervisor.reason_label f.Supervisor.f_reason);
    check_int (name ^ " retries") retries f.Supervisor.f_retries;
    check_bool
      (Printf.sprintf "%s reason mentions %S" name contains)
      true
      (Astring_contains.contains
         (Supervisor.reason_detail f.Supervisor.f_reason)
         contains);
    check_bool (name ^ " elapsed is sane") true (f.Supervisor.f_elapsed >= 0.0)

let test_parse_fault () =
  match run_seeded 1 with
  | [ aard; music ] ->
    (* A rejection is a verdict about the input: never retried, even
       though the plan marks this fault transient. *)
    expect_failed (List.nth spec_names 0) ~label:"rejected" ~retries:0
      ~contains:"injected parse fault" aard;
    expect_completed (List.nth spec_names 1) music
  | outcomes -> Alcotest.failf "expected 2 outcomes, got %d" (List.length outcomes)

let test_crash_fault_and_retry () =
  match run_seeded 3 with
  | [ aard; music ] ->
    (* Persistent crash: both attempts fail, the row records the retry. *)
    expect_failed (List.nth spec_names 0) ~label:"crashed" ~retries:1
      ~contains:"injected task exception" aard;
    (* Transient crash: the retry succeeds. *)
    expect_completed (List.nth spec_names 1) music
  | outcomes -> Alcotest.failf "expected 2 outcomes, got %d" (List.length outcomes)

let test_timeout_and_reject_faults () =
  match run_seeded 6 with
  | [ aard; music ] ->
    (* Transient injected timeout: retry-once recovers. *)
    expect_completed (List.nth spec_names 0) aard;
    expect_failed (List.nth spec_names 1) ~label:"rejected" ~retries:0
      ~contains:"injected validator reject" music
  | outcomes -> Alcotest.failf "expected 2 outcomes, got %d" (List.length outcomes)

let test_no_faults_outside_with_faults () =
  (* The plan is uninstalled when with_faults returns: the same seed's
     victims complete normally afterwards. *)
  let outcomes = Supervisor.run_catalog ~specs:[ List.hd specs2 ] () in
  match outcomes with
  | [ outcome ] -> expect_completed (List.nth spec_names 0) outcome
  | _ -> Alcotest.fail "expected one outcome"

(* {1 Determinism across jobs} *)

let test_jobs_determinism () =
  List.iter
    (fun seed ->
       let s1 = List.map shape (run_seeded ~jobs:1 seed) in
       let s4 = List.map shape (run_seeded ~jobs:4 seed) in
       check (Alcotest.list Alcotest.string)
         (Printf.sprintf "seed %d: jobs=1 and jobs=4 agree" seed)
         s1 s4)
    [ 1; 3; 6 ]

(* {1 Budgets} *)

let counter name =
  Option.value (List.assoc_opt name (Obs.snapshot ()).Obs.counters) ~default:0

let with_obs f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect f ~finally:(fun () ->
    Obs.disable ();
    Obs.reset ())

let test_wallclock_timeout () =
  with_obs @@ fun () ->
  let budget =
    { Supervisor.timeout_seconds = Some 0.0; max_events = None }
  in
  (match Supervisor.run_app ~budget (List.hd specs2) with
   | Supervisor.Failed f ->
     check_string "timed out" "timeout"
       (Supervisor.reason_label f.Supervisor.f_reason);
     check_int "retried once" 1 f.Supervisor.f_retries;
     check_bool "reason names the budget" true
       (Astring_contains.contains
          (Supervisor.reason_detail f.Supervisor.f_reason)
          "wall-clock budget")
   | Supervisor.Completed _ ->
     Alcotest.fail "a zero-second budget cannot complete");
  check_int "supervisor.timeouts counts both attempts" 2
    (counter "supervisor.timeouts");
  check_int "supervisor.retries" 1 (counter "supervisor.retries")

let test_event_budget_fallback () =
  with_obs @@ fun () ->
  (* Over the cap but within 10x of it: the worklist step of the
     ladder, not the streaming one. *)
  let budget = { Supervisor.timeout_seconds = None; max_events = Some 1000 } in
  let spec = List.hd specs2 in
  (match Supervisor.run_app ~budget spec with
   | Supervisor.Failed f ->
     Alcotest.failf "over-budget run should degrade, not fail: %s"
       (Supervisor.reason_detail f.Supervisor.f_reason)
   | Supervisor.Completed run ->
     (* The worklist engine computes the identical relation, so the
        degraded report finds exactly the races of the unsupervised
        dense run. *)
     let reference = Experiments.run_spec spec in
     check_int "same races under fallback"
       (List.length reference.Experiments.ar_report.Detector.all_races)
       (List.length run.Experiments.ar_report.Detector.all_races));
  check_int "supervisor.fallbacks.dense_worklist" 1
    (counter "supervisor.fallbacks.dense_worklist");
  check_int "no streaming fallback" 0
    (counter "supervisor.fallbacks.dense_streaming")

let test_event_budget_streaming_fallback () =
  with_obs @@ fun () ->
  (* A cap more than 10x under the trace length skips worklist and lands
     on the streaming engine. *)
  let budget = { Supervisor.timeout_seconds = None; max_events = Some 2 } in
  let spec = List.hd specs2 in
  (match Supervisor.run_app ~budget spec with
   | Supervisor.Failed f ->
     Alcotest.failf "over-budget run should degrade, not fail: %s"
       (Supervisor.reason_detail f.Supervisor.f_reason)
   | Supervisor.Completed run ->
     (* Streaming under-approximates batch: never more races. *)
     let reference = Experiments.run_spec spec in
     check_bool "streaming finds a subset" true
       (List.length run.Experiments.ar_report.Detector.all_races
        <= List.length reference.Experiments.ar_report.Detector.all_races));
  check_int "supervisor.fallbacks.dense_streaming" 1
    (counter "supervisor.fallbacks.dense_streaming");
  check_int "no worklist fallback" 0
    (counter "supervisor.fallbacks.dense_worklist")

let test_ingest_counter () =
  with_obs @@ fun () ->
  (match run_seeded 6 with
   | [ _; _ ] -> ()
   | _ -> Alcotest.fail "expected 2 outcomes");
  (* Music Player's persistent reject is never retried: one rejection. *)
  check_int "ingest.rejected" 1 (counter "ingest.rejected");
  (* Aard's transient timeout: one timeout, one retry. *)
  check_int "supervisor.timeouts" 1 (counter "supervisor.timeouts");
  check_int "supervisor.retries" 1 (counter "supervisor.retries")

(* {1 Supervised single-trace analysis} *)

let test_analyze_valid () =
  match Supervisor.analyze ~name:"figure4" figure4 with
  | Ok report ->
    check_bool "report covers the trace" true
      (Trace.length report.Detector.trace > 0)
  | Error f ->
    Alcotest.failf "figure4 rejected: %s"
      (Supervisor.reason_detail f.Supervisor.f_reason)

let test_analyze_rejects_inadmissible () =
  (* Structurally fine (Trace.of_events accepts it), admissibility-bad:
     a release with no matching acquire. *)
  let bad = trace [ threadinit 1; release 1 "dbLock" ] in
  match Supervisor.analyze ~name:"unbalanced" bad with
  | Ok _ -> Alcotest.fail "inadmissible trace accepted"
  | Error f ->
    check_string "rejected" "rejected"
      (Supervisor.reason_label f.Supervisor.f_reason);
    check_bool "diagnosis names the rule" true
      (Astring_contains.contains
         (Supervisor.reason_detail f.Supervisor.f_reason)
         "unbalanced-release")

(* {1 Reports} *)

let sample_failures =
  [ { Supervisor.f_app = "App \"quoted\""
    ; f_reason = Supervisor.Rejected "line 3: [fifo-violation] out of order"
    ; f_engine = "dense"
    ; f_elapsed = 0.25
    ; f_retries = 0
    ; f_backoff = 0.0
    }
  ; { Supervisor.f_app = "Other"
    ; f_reason = Supervisor.Timed_out 1.5
    ; f_engine = "streaming"
    ; f_elapsed = 3.0
    ; f_retries = 1
    ; f_backoff = 0.5
    }
  ]

let test_failures_json () =
  let json = Supervisor.failures_json_string sample_failures in
  match Json_parse.parse json with
  | Error msg -> Alcotest.failf "invalid JSON: %s\n%s" msg json
  | Ok v ->
    (match Json_parse.member "failures" v with
     | Some (Json_parse.Array [ first; second ]) ->
       check_bool "first app" true
         (Json_parse.member "app" first
          = Some (Json_parse.String "App \"quoted\""));
       check_bool "first outcome" true
         (Json_parse.member "outcome" first
          = Some (Json_parse.String "rejected"));
       check_bool "second outcome" true
         (Json_parse.member "outcome" second
          = Some (Json_parse.String "timeout"));
       check_bool "first engine" true
         (Json_parse.member "engine" first
          = Some (Json_parse.String "dense"));
       check_bool "second engine" true
         (Json_parse.member "engine" second
          = Some (Json_parse.String "streaming"));
       check_bool "second retries" true
         (Json_parse.member "retries" second
          = Some (Json_parse.Number 1.0));
       check_bool "second backoff_seconds" true
         (Json_parse.member "backoff_seconds" second
          = Some (Json_parse.Number 0.5))
     | _ -> Alcotest.fail "failures array missing")

(* {1 Live sweep progress} *)

let test_progress_jsonl () =
  (* Seed 3: Aard = persistent crash (fails), Music = transient crash
     (retries, then completes) — one of each terminal outcome.  Every
     line of the JSONL stream must parse; the header carries the
     schema; the summary must agree with the outcome rows. *)
  with_obs @@ fun () ->
  let path = Filename.temp_file "droidracer-progress-" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let heartbeats = ref [] in
  let outcomes =
    let out = open_out path in
    Fun.protect ~finally:(fun () -> close_out out) @@ fun () ->
    let progress =
      Progress.create ~out
        ~heartbeat:(fun line -> heartbeats := line :: !heartbeats)
        ~mode:"cooperative" ~jobs:2 ~total:(List.length specs2) ()
    in
    Supervisor.with_faults ~seed:3 (fun () ->
      Supervisor.run_catalog ~jobs:2 ~specs:specs2 ~progress ())
  in
  let completed, failed =
    List.partition (function Supervisor.Completed _ -> true | _ -> false)
      outcomes
  in
  let lines = In_channel.with_open_text path In_channel.input_lines in
  let records =
    List.map
      (fun line ->
         match Json_parse.parse line with
         | Ok v -> v
         | Error msg -> Alcotest.failf "bad JSONL line: %s\n%s" msg line)
      lines
  in
  (* header + one record per app + summary *)
  check_int "record count" (List.length specs2 + 2) (List.length records);
  (match records with
   | header :: rest ->
     check_bool "header schema" true
       (Json_parse.member "schema" header
        = Some (Json_parse.String "droidracer-progress/1"));
     check_bool "header mode" true
       (Json_parse.member "mode" header
        = Some (Json_parse.String "cooperative"));
     check_bool "header total" true
       (Json_parse.member "total" header
        = Some (Json_parse.Number (float_of_int (List.length specs2))));
     let apps, summary =
       match List.rev rest with
       | s :: apps_rev -> (List.rev apps_rev, s)
       | [] -> Alcotest.fail "no records after the header"
     in
     List.iteri
       (fun i app ->
          check_bool "app record type" true
            (Json_parse.member "type" app = Some (Json_parse.String "app"));
          List.iter
            (fun field ->
               check_bool (field ^ " present") true
                 (Json_parse.member field app <> None))
            [ "app"; "outcome"; "engine"; "events"; "elapsed_seconds"
            ; "done"; "total"; "events_per_sec"; "eta_seconds"; "fallbacks"
            ];
          check_bool "done increments" true
            (Json_parse.member "done" app
             = Some (Json_parse.Number (float_of_int (i + 1)))))
       apps;
     check_bool "summary type" true
       (Json_parse.member "type" summary
        = Some (Json_parse.String "summary"));
     let num field v =
       check_bool (Printf.sprintf "summary %s = %d" field v) true
         (Json_parse.member field summary
          = Some (Json_parse.Number (float_of_int v)))
     in
     num "done" (List.length outcomes);
     num "total" (List.length specs2);
     num "completed" (List.length completed);
     num "failed" (List.length failed)
   | [] -> Alcotest.fail "empty progress stream");
  (* heartbeats: one per app plus the final "sweep done" line *)
  check_int "heartbeat count" (List.length specs2 + 1) (List.length !heartbeats);
  check_bool "final heartbeat is the summary" true
    (Astring_contains.contains (List.hd !heartbeats) "sweep done")

(* {1 Trace-file sweeps} *)

(* The same derived variants written in both formats, swept at
   different jobs values: every row completes, the planted races are
   among the reported locations, and the reports agree between the
   binary and text sweeps (the binary-vs-text CI diff in miniature).
   A missing file costs a rejected row, never the sweep. *)
let test_run_files () =
  let dir = Filename.temp_file "droidracer_files" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
  @@ fun () ->
  let variants = Vargen.variants ~seed:5 ~events:800 ~count:3 () in
  let bin = List.map (Vargen.write ~dir ~binary:true) variants in
  let txt = List.map (Vargen.write ~dir ~binary:false) variants in
  let from_bin = Supervisor.run_files ~jobs:2 bin in
  let from_txt = Supervisor.run_files ~jobs:1 txt in
  check_int "binary rows complete" 3
    (List.length (Supervisor.file_completed from_bin));
  check_int "no failures" 0 (List.length (Supervisor.file_failures from_bin));
  let key r =
    ( r.Supervisor.fr_name
    , r.Supervisor.fr_events
    , r.Supervisor.fr_races
    , r.Supervisor.fr_distinct
    , r.Supervisor.fr_locations )
  in
  check_bool "binary sweep = text sweep (modulo file and timing)" true
    (List.map key (Supervisor.file_completed from_bin)
     = List.map key (Supervisor.file_completed from_txt));
  List.iter2
    (fun v r ->
       List.iter
         (fun planted ->
            check_bool
              (Printf.sprintf "%s recalls %s" r.Supervisor.fr_name planted)
              true
              (List.mem planted r.Supervisor.fr_locations))
         v.Vargen.v_planted)
    variants
    (Supervisor.file_completed from_bin);
  let json = Supervisor.files_json_string from_bin in
  check_bool "races JSON schema" true
    (Astring_contains.contains json "droidracer-races/1");
  check_bool "races JSON keys rows by extension-free name" true
    (Astring_contains.contains json "\"name\":\"variant-0000\"");
  match Supervisor.run_files [ Filename.concat dir "missing.trace" ] with
  | [ Supervisor.File_failed f ] ->
    check_bool "missing file is a rejected row" true
      (match f.Supervisor.f_reason with
       | Supervisor.Rejected _ -> true
       | _ -> false)
  | _ -> Alcotest.fail "expected exactly one failure row"

let test_failure_table () =
  let rendered =
    Droidracer_report.Table.render (Supervisor.failure_table sample_failures)
  in
  check_bool "row for the rejected app" true
    (Astring_contains.contains rendered "fifo-violation");
  check_bool "row for the timeout" true
    (Astring_contains.contains rendered "wall-clock budget")

let () =
  Alcotest.run "supervisor"
    [ ( "fault plan"
      , [ Alcotest.test_case "pure and class-complete" `Quick
            test_fault_decision_pure
        ; Alcotest.test_case "pinned decisions" `Quick test_pinned_plan
        ] )
    ; ( "fault classes"
      , [ Alcotest.test_case "parse fault" `Slow test_parse_fault
        ; Alcotest.test_case "crash fault + retry" `Slow
            test_crash_fault_and_retry
        ; Alcotest.test_case "timeout + reject faults" `Slow
            test_timeout_and_reject_faults
        ; Alcotest.test_case "plan uninstalled after with_faults" `Slow
            test_no_faults_outside_with_faults
        ] )
    ; ( "determinism"
      , [ Alcotest.test_case "jobs 1 = jobs 4" `Slow test_jobs_determinism ] )
    ; ( "budgets"
      , [ Alcotest.test_case "wall-clock timeout" `Slow test_wallclock_timeout
        ; Alcotest.test_case "event budget falls back to worklist" `Slow
            test_event_budget_fallback
        ; Alcotest.test_case "event budget falls back to streaming" `Slow
            test_event_budget_streaming_fallback
        ; Alcotest.test_case "obs counters" `Slow test_ingest_counter
        ] )
    ; ( "progress"
      , [ Alcotest.test_case "JSONL stream well-formed" `Slow
            test_progress_jsonl
        ] )
    ; ( "analyze"
      , [ Alcotest.test_case "valid trace" `Quick test_analyze_valid
        ; Alcotest.test_case "inadmissible trace rejected" `Quick
            test_analyze_rejects_inadmissible
        ] )
    ; ( "file sweeps"
      , [ Alcotest.test_case "binary = text, planted recalled" `Slow
            test_run_files
        ] )
    ; ( "reports"
      , [ Alcotest.test_case "failures JSON" `Quick test_failures_json
        ; Alcotest.test_case "failure table" `Quick test_failure_table
        ] )
    ]
