(* Tests of the telemetry subsystem: span nesting and ordering, metric
   merging across pool domains, exporter validity (the Chrome trace and
   metrics JSON are parsed back), the zero-overhead disabled path, and
   the invariant the whole design rests on — [Detector.analyze] output
   is identical with telemetry on and off. *)

module Obs = Droidracer_obs.Obs
module Par_pool = Droidracer_core.Par_pool
module Detector = Droidracer_core.Detector
module Runtime = Droidracer_appmodel.Runtime
module Synthetic = Droidracer_corpus.Synthetic
module Catalog = Droidracer_corpus.Catalog

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let check_string = Alcotest.check Alcotest.string

(* Every test leaves the subsystem disabled and empty, so suites cannot
   leak telemetry into each other. *)
let with_telemetry f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:(fun () ->
    Obs.disable ();
    Obs.reset ())
    f

(* {1 Spans} *)

let test_span_nesting () =
  with_telemetry @@ fun () ->
  let v =
    Obs.with_span "outer" (fun () ->
      Obs.with_span "inner" (fun () -> ());
      Obs.with_span "inner" (fun () -> ());
      17)
  in
  check_int "with_span is transparent" 17 v;
  let snap = Obs.snapshot () in
  let paths = List.map (fun s -> s.Obs.sp_path) snap.Obs.spans in
  check_int "three spans recorded" 3 (List.length paths);
  check_int "two nested instances" 2
    (List.length (List.filter (( = ) [ "outer"; "inner" ]) paths));
  check_int "one root" 1 (List.length (List.filter (( = ) [ "outer" ]) paths));
  let outer =
    List.find (fun s -> s.Obs.sp_path = [ "outer" ]) snap.Obs.spans
  in
  List.iter
    (fun s ->
       if s.Obs.sp_path <> [ "outer" ] then begin
         check_bool "child starts after parent" true
           (s.Obs.sp_start_ns >= outer.Obs.sp_start_ns);
         check_bool "child is contained in parent" true
           (Int64.add s.Obs.sp_start_ns s.Obs.sp_dur_ns
            <= Int64.add outer.Obs.sp_start_ns outer.Obs.sp_dur_ns)
       end)
    snap.Obs.spans;
  (* the snapshot is sorted by start time *)
  let starts = List.map (fun s -> s.Obs.sp_start_ns) snap.Obs.spans in
  check_bool "spans sorted by start" true (List.sort compare starts = starts)

let test_span_args_and_exceptions () =
  with_telemetry @@ fun () ->
  (match
     Obs.with_span "failing" (fun () ->
       Obs.set_span_arg "detail" "boom";
       failwith "expected")
   with
   | () -> Alcotest.fail "exception swallowed"
   | exception Failure msg -> check_string "exception passed through" "expected" msg);
  let snap = Obs.snapshot () in
  match snap.Obs.spans with
  | [ s ] ->
    check_string "span closed despite raise" "failing" s.Obs.sp_name;
    check_string "arg recorded" "boom" (List.assoc "detail" s.Obs.sp_args)
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_disabled_is_noop () =
  Obs.disable ();
  Obs.reset ();
  Obs.with_span "ghost" (fun () -> Obs.add "ghost.counter");
  Obs.observe "ghost.hist" 1.0;
  Obs.set_gauge "ghost.gauge" 1.0;
  let snap = Obs.snapshot () in
  check_int "no spans" 0 (List.length snap.Obs.spans);
  check_int "no counters" 0 (List.length snap.Obs.counters);
  check_int "no gauges" 0 (List.length snap.Obs.gauges);
  check_int "no histograms" 0 (List.length snap.Obs.histograms)

(* {1 Merging across domains} *)

let test_counter_merge_across_domains () =
  with_telemetry @@ fun () ->
  let results =
    Par_pool.parallel_map ~jobs:4
      (fun i ->
         Obs.add "merge.ticks";
         Obs.add ~n:i "merge.weighted";
         Obs.observe "merge.sample" (float_of_int i);
         i)
      (List.init 200 (fun i -> i))
  in
  check_int "map unaffected by instrumentation" 200 (List.length results);
  let snap = Obs.snapshot () in
  let counter name =
    Option.value (List.assoc_opt name snap.Obs.counters) ~default:0
  in
  check_int "per-domain counters sum exactly" 200 (counter "merge.ticks");
  check_int "weighted counter sums exactly" (199 * 200 / 2)
    (counter "merge.weighted");
  match List.assoc_opt "merge.sample" snap.Obs.histograms with
  | None -> Alcotest.fail "histogram lost in merge"
  | Some h ->
    check_int "histogram count" 200 h.Obs.h_count;
    Alcotest.check (Alcotest.float 1e-6) "histogram sum"
      (float_of_int (199 * 200 / 2))
      h.Obs.h_sum;
    Alcotest.check (Alcotest.float 1e-6) "histogram min" 0.0 h.Obs.h_min;
    Alcotest.check (Alcotest.float 1e-6) "histogram max" 199.0 h.Obs.h_max

(* {1 Exporters} *)

let corpus_trace =
  lazy
    (let spec = List.nth Catalog.open_source 0 in
     let b = Synthetic.build spec in
     (Runtime.run ~options:b.Synthetic.b_options b.Synthetic.b_app
        b.Synthetic.b_events)
       .Runtime.observed)

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let json_of_string name s =
  match Json_parse.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s is not valid JSON: %s" name msg

let test_chrome_trace_parses_back () =
  with_telemetry @@ fun () ->
  ignore (Detector.analyze ~jobs:3 (Lazy.force corpus_trace));
  let json = json_of_string "chrome trace" (Obs.chrome_trace_string ()) in
  let events =
    match Option.bind (Json_parse.member "traceEvents" json) Json_parse.to_list with
    | Some evs -> evs
    | None -> Alcotest.fail "no traceEvents array"
  in
  let complete =
    List.filter
      (fun e -> Json_parse.member "ph" e = Some (Json_parse.String "X"))
      events
  in
  check_bool "at least one complete event" true (complete <> []);
  List.iter
    (fun e ->
       List.iter
         (fun field ->
            check_bool (field ^ " present") true
              (Json_parse.member field e <> None))
         [ "name"; "ts"; "dur"; "pid"; "tid" ])
    complete;
  let names =
    List.filter_map
      (fun e -> Option.bind (Json_parse.member "name" e) Json_parse.to_string)
      complete
  in
  List.iter
    (fun phase ->
       check_bool ("span " ^ phase ^ " present") true
         (List.exists (String.equal ("detector." ^ phase)) names))
    Detector.phase_names;
  check_bool "analyze span present" true
    (List.mem "detector.analyze" names);
  (* one track per recorded domain, thread-named *)
  let tids =
    List.sort_uniq compare
      (List.filter_map
         (fun e -> Option.bind (Json_parse.member "tid" e) Json_parse.to_number)
         complete)
  in
  check_bool "at least one domain track" true (tids <> []);
  let thread_names =
    List.filter
      (fun e ->
         Json_parse.member "ph" e = Some (Json_parse.String "M")
         && Json_parse.member "name" e = Some (Json_parse.String "thread_name"))
      events
  in
  check_int "every track has a thread_name metadata event"
    (List.length tids) (List.length thread_names)

let test_metrics_json_parses_back () =
  with_telemetry @@ fun () ->
  ignore (Detector.analyze ~jobs:2 (Lazy.force corpus_trace));
  let json = json_of_string "metrics" (Obs.metrics_json_string ()) in
  (match Option.bind (Json_parse.member "counters" json) (Json_parse.member "hb.passes") with
   | Some (Json_parse.Number n) -> check_bool "hb.passes positive" true (n > 0.0)
   | Some _ | None -> Alcotest.fail "counters.hb.passes missing");
  (match Option.bind (Json_parse.member "domains" json) Json_parse.to_list with
   | Some (_ :: _) -> ()
   | Some [] | None -> Alcotest.fail "no per-domain statistics");
  check_bool "summary names the analyze span" true
    (contains_substring ~needle:"detector.analyze" (Obs.summary_string ()))

(* {1 Histogram quantiles}

   The log-bucketed sketch (8 buckets per octave) guarantees ~9%
   relative error; the checks allow 15% for slack. *)

let test_histogram_quantiles () =
  with_telemetry @@ fun () ->
  for i = 1 to 1000 do
    Obs.observe "q.uniform" (float_of_int i)
  done;
  let snap = Obs.snapshot () in
  match List.assoc_opt "q.uniform" snap.Obs.histograms with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    check_int "count" 1000 h.Obs.h_count;
    Alcotest.check (Alcotest.float 1e-6) "min" 1.0 h.Obs.h_min;
    Alcotest.check (Alcotest.float 1e-6) "max" 1000.0 h.Obs.h_max;
    let within name expected actual =
      check_bool
        (Printf.sprintf "%s ~ %.0f (got %.1f)" name expected actual)
        true
        (Float.abs (actual -. expected) /. expected <= 0.15)
    in
    within "p50" 500.0 h.Obs.h_p50;
    within "p90" 900.0 h.Obs.h_p90;
    within "p99" 990.0 h.Obs.h_p99;
    check_bool "quantiles ordered" true
      (h.Obs.h_p50 <= h.Obs.h_p90
       && h.Obs.h_p90 <= h.Obs.h_p99
       && h.Obs.h_p99 <= h.Obs.h_max);
    check_bool "quantiles bounded below" true (h.Obs.h_min <= h.Obs.h_p50)

let test_quantiles_nonpositive_samples () =
  with_telemetry @@ fun () ->
  List.iter (Obs.observe "q.edge") [ -5.0; 0.0; 3.0 ];
  let snap = Obs.snapshot () in
  match List.assoc_opt "q.edge" snap.Obs.histograms with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    check_int "count" 3 h.Obs.h_count;
    (* non-positive samples fall in the underflow bucket, reported as
       the observed minimum rather than a NaN or a crash *)
    Alcotest.check (Alcotest.float 1e-6) "p50 is the minimum" (-5.0) h.Obs.h_p50;
    check_bool "p99 within range" true
      (h.Obs.h_p99 >= h.Obs.h_min && h.Obs.h_p99 <= h.Obs.h_max)

let test_metrics_schema_v2 () =
  with_telemetry @@ fun () ->
  Obs.observe "q.schema" 4.0;
  Obs.add "q.counter";
  let json = json_of_string "metrics" (Obs.metrics_json_string ()) in
  (match Json_parse.member "schema" json with
   | Some (Json_parse.String s) -> check_string "schema" "droidracer-metrics/2" s
   | Some _ | None -> Alcotest.fail "schema field missing");
  (match Option.bind (Json_parse.member "processes" json) Json_parse.to_list with
   | Some (_ :: _ as ps) ->
     List.iter
       (fun p ->
          check_bool "process has pid" true (Json_parse.member "pid" p <> None);
          check_bool "process has label" true
            (Json_parse.member "label" p <> None))
       ps
   | Some [] | None -> Alcotest.fail "processes array missing");
  match
    Option.bind (Json_parse.member "histograms" json)
      (Json_parse.member "q.schema")
  with
  | None -> Alcotest.fail "histograms.q.schema missing"
  | Some h ->
    (* v2 adds the quantile fields but keeps every v1 field *)
    List.iter
      (fun field ->
         check_bool (field ^ " present") true (Json_parse.member field h <> None))
      [ "count"; "sum"; "min"; "max"; "mean"; "p50"; "p90"; "p99" ]

(* {1 Resource time-series} *)

let test_series_export () =
  with_telemetry @@ fun () ->
  Obs.record_series "t.level" 1.0;
  Obs.record_series "t.level" 2.0;
  Obs.sample_resources ();
  let json = json_of_string "series" (Obs.series_json_string ()) in
  (match Json_parse.member "schema" json with
   | Some (Json_parse.String s) -> check_string "schema" "droidracer-series/1" s
   | Some _ | None -> Alcotest.fail "schema field missing");
  check_bool "sample period reported" true
    (Json_parse.member "sample_period_seconds" json <> None);
  let series =
    match Option.bind (Json_parse.member "series" json) Json_parse.to_list with
    | Some l -> l
    | None -> Alcotest.fail "series array missing"
  in
  let find name =
    List.find_opt
      (fun s ->
         Json_parse.member "name" s = Some (Json_parse.String name))
      series
  in
  (match Option.bind (find "t.level")
           (fun s ->
              Option.bind (Json_parse.member "samples" s) Json_parse.to_list)
   with
   | Some samples ->
     check_int "both samples exported" 2 (List.length samples);
     let ts =
       List.filter_map
         (fun s -> Option.bind (Json_parse.member "t_ns" s) Json_parse.to_number)
         samples
     in
     check_bool "samples sorted by time" true (List.sort compare ts = ts);
     List.iter
       (fun s ->
          List.iter
            (fun field ->
               check_bool (field ^ " present") true
                 (Json_parse.member field s <> None))
            [ "pid"; "t_ns"; "value" ])
       samples
   | None -> Alcotest.fail "t.level series missing");
  check_bool "resource sampler recorded RSS" true (find "proc.rss_kb" <> None);
  check_bool "resource sampler recorded heap words" true
    (find "gc.major_heap_words" <> None);
  (* series also surface as Chrome counter events *)
  let chrome = json_of_string "chrome trace" (Obs.chrome_trace_string ()) in
  let counters =
    match
      Option.bind (Json_parse.member "traceEvents" chrome) Json_parse.to_list
    with
    | Some evs ->
      List.filter
        (fun e -> Json_parse.member "ph" e = Some (Json_parse.String "C"))
        evs
    | None -> Alcotest.fail "no traceEvents array"
  in
  check_bool "counter events present" true (List.length counters >= 3)

(* {1 Cross-process state transport} *)

let test_state_roundtrip () =
  with_telemetry @@ fun () ->
  Obs.add ~n:7 "rt.counter";
  Obs.observe "rt.hist" 2.0;
  Obs.observe "rt.hist" 8.0;
  Obs.with_span "rt.span" (fun () -> ());
  Obs.record_series "rt.series" 42.0;
  let blob = Obs.export_state () in
  Obs.reset ();
  (let snap = Obs.snapshot () in
   check_int "reset really cleared counters" 0 (List.length snap.Obs.counters));
  (match Obs.absorb_state blob with
   | Some pid -> check_int "absorbed state names this process" (Unix.getpid ()) pid
   | None -> Alcotest.fail "round-trip rejected");
  let snap = Obs.snapshot () in
  check_int "counter restored" 7
    (Option.value (List.assoc_opt "rt.counter" snap.Obs.counters) ~default:0);
  (match List.assoc_opt "rt.hist" snap.Obs.histograms with
   | Some h ->
     check_int "histogram count restored" 2 h.Obs.h_count;
     Alcotest.check (Alcotest.float 1e-6) "histogram sum restored" 10.0 h.Obs.h_sum
   | None -> Alcotest.fail "histogram lost in transport");
  check_bool "span restored" true
    (List.exists (fun s -> s.Obs.sp_name = "rt.span") snap.Obs.spans);
  (match List.assoc_opt "rt.series" snap.Obs.series with
   | Some [ s ] ->
     Alcotest.check (Alcotest.float 1e-6) "series value restored" 42.0
       s.Obs.s_value
   | Some l -> Alcotest.failf "expected 1 sample, got %d" (List.length l)
   | None -> Alcotest.fail "series lost in transport");
  (* an absorbed worker contributes its RSS peak as a histogram sample *)
  (match List.assoc_opt "proc.worker_rss_peak_kb" snap.Obs.histograms with
   | Some h ->
     check_int "one worker RSS sample" 1 h.Obs.h_count;
     check_bool "worker RSS positive" true (h.Obs.h_min > 0.0)
   | None -> Alcotest.fail "worker RSS histogram missing")

let test_absorb_rejects_garbage () =
  with_telemetry @@ fun () ->
  check_bool "empty string rejected" true (Obs.absorb_state "" = None);
  check_bool "wrong magic rejected" true
    (Obs.absorb_state "not-a-state-blob" = None);
  check_bool "truncated blob rejected" true
    (Obs.absorb_state "droidracer-obs-state/1\nXY" = None);
  let snap = Obs.snapshot () in
  check_int "nothing absorbed" 0 (List.length snap.Obs.counters)

(* {1 Telemetry transparency} *)

(* The whole subsystem's contract: enabling telemetry must not change a
   single byte of the analysis result. *)
let report_fingerprint report =
  Format.asprintf "%a" Detector.pp_report
    { report with Detector.elapsed_seconds = 0. }

let test_analyze_identical_on_off () =
  Obs.disable ();
  Obs.reset ();
  let trace = Lazy.force corpus_trace in
  let off = Detector.analyze ~jobs:4 trace in
  let on = with_telemetry (fun () -> Detector.analyze ~jobs:4 trace) in
  check_string "report identical with telemetry on vs off"
    (report_fingerprint off) (report_fingerprint on);
  check_string "same phases in the same order"
    (String.concat "," (List.map fst off.Detector.phase_seconds))
    (String.concat "," (List.map fst on.Detector.phase_seconds));
  check_string "phase list matches the documented names"
    (String.concat "," Detector.phase_names)
    (String.concat "," (List.map fst on.Detector.phase_seconds))

let test_phase_seconds_consistent () =
  Obs.disable ();
  Obs.reset ();
  let report = Detector.analyze (Lazy.force corpus_trace) in
  let total =
    List.fold_left (fun acc (_, dt) -> acc +. dt) 0.0
      report.Detector.phase_seconds
  in
  check_bool "phases sum to at most the elapsed wall time" true
    (total <= report.Detector.elapsed_seconds +. 1e-3);
  check_bool "unknown phase reads as zero" true
    (Detector.phase_seconds report "no_such_phase" = 0.0)

(* {1 Reset} *)

let test_reset_clears_all_domains () =
  with_telemetry @@ fun () ->
  ignore
    (Par_pool.parallel_map ~jobs:4
       (fun i ->
          Obs.add "reset.ticks";
          i)
       (List.init 64 (fun i -> i)));
  Obs.reset ();
  let snap = Obs.snapshot () in
  check_int "counters cleared everywhere" 0 (List.length snap.Obs.counters);
  check_int "spans cleared everywhere" 0 (List.length snap.Obs.spans)

let () =
  Alcotest.run "obs"
    [ ( "spans"
      , [ Alcotest.test_case "nesting and ordering" `Quick test_span_nesting
        ; Alcotest.test_case "args and exceptions" `Quick
            test_span_args_and_exceptions
        ; Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop
        ] )
    ; ( "merging"
      , [ Alcotest.test_case "counters and histograms across domains" `Quick
            test_counter_merge_across_domains
        ; Alcotest.test_case "reset clears every domain" `Quick
            test_reset_clears_all_domains
        ] )
    ; ( "quantiles"
      , [ Alcotest.test_case "uniform distribution" `Quick
            test_histogram_quantiles
        ; Alcotest.test_case "non-positive samples" `Quick
            test_quantiles_nonpositive_samples
        ] )
    ; ( "exporters"
      , [ Alcotest.test_case "chrome trace parses back" `Quick
            test_chrome_trace_parses_back
        ; Alcotest.test_case "metrics JSON parses back" `Quick
            test_metrics_json_parses_back
        ; Alcotest.test_case "metrics schema v2" `Quick test_metrics_schema_v2
        ; Alcotest.test_case "series export" `Quick test_series_export
        ] )
    ; ( "transport"
      , [ Alcotest.test_case "state round-trip" `Quick test_state_roundtrip
        ; Alcotest.test_case "garbage rejected" `Quick
            test_absorb_rejects_garbage
        ] )
    ; ( "transparency"
      , [ Alcotest.test_case "analyze identical with telemetry on/off" `Quick
            test_analyze_identical_on_off
        ; Alcotest.test_case "phase breakdown consistent" `Quick
            test_phase_seconds_consistent
        ] )
    ]
