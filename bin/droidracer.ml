(* The droidracer command-line tool.

   Subcommands:
   - [analyze FILE]  offline race detection on a trace file
   - [validate FILE] admissibility-check trace files (streaming)
   - [trace APP]     generate a trace from a modeled application
   - [explore APP]   systematic UI exploration + race detection
   - [verify APP]    detect and verify races via schedule perturbation
   - [corpus]        regenerate Tables 2 and 3 for the paper's corpus,
                     or sweep a directory of trace files (--trace-dir)
   - [synth FILE]    generate an arbitrarily long admissible trace
   - [convert A B]   convert a trace between the text and binary formats
   - [gencorpus DIR] generate a corpus of app variants with planted races
   - [serve]         run droidracerd, the persistent analysis daemon
   - [submit FILE]   submit traces to a running daemon
   - [loadgen]       drive a daemon with concurrent forked clients
   - [lifecycle]     print the Figure 8 activity lifecycle *)

module Trace = Droidracer_trace.Trace
module Trace_io = Droidracer_trace.Trace_io
module Binfmt = Droidracer_trace.Binfmt
module Wellformed = Droidracer_trace.Wellformed
module Step = Droidracer_semantics.Step
module Happens_before = Droidracer_core.Happens_before
module Streaming_engine = Droidracer_core.Streaming_engine
module Detector = Droidracer_core.Detector
module Classify = Droidracer_core.Classify
module Race = Droidracer_core.Race
module Race_coverage = Droidracer_core.Race_coverage
module Program = Droidracer_appmodel.Program
module Runtime = Droidracer_appmodel.Runtime
module Music_player = Droidracer_corpus.Music_player
module Bug_apps = Droidracer_corpus.Bug_apps
module Catalog = Droidracer_corpus.Catalog
module Synthetic = Droidracer_corpus.Synthetic
module Longtrace = Droidracer_corpus.Longtrace
module Vargen = Droidracer_corpus.Vargen
module Explorer = Droidracer_explorer.Explorer
module Verify = Droidracer_explorer.Verify
module Schedule_explorer = Droidracer_explorer.Schedule_explorer
module Predict = Droidracer_predict.Predict
module Experiments = Droidracer_report.Experiments
module Swire = Droidracer_service.Wire
module Server = Droidracer_service.Server
module Client = Droidracer_service.Client
module Loadgen = Droidracer_service.Loadgen
module Supervisor = Droidracer_report.Supervisor
module Proc_pool = Droidracer_report.Proc_pool
module Journal = Droidracer_report.Journal
module Progress = Droidracer_report.Progress
module Table = Droidracer_report.Table
module Obs = Droidracer_obs.Obs
open Cmdliner

(* {1 The application registry} *)

type registered_app =
  { app : Program.app
  ; options : Runtime.options
  ; default_events : Runtime.ui_event list
  ; about : string
  }

let registry () =
  let base =
    [ ( "music-player"
      , { app = Music_player.app
        ; options = Music_player.options
        ; default_events = Music_player.back_scenario
        ; about = "the Figure 1 music player (BACK scenario by default)"
        } )
    ; ( "music-player-play"
      , { app = Music_player.app
        ; options = Music_player.options
        ; default_events = Music_player.play_scenario
        ; about = "the Figure 1 music player, PLAY scenario (Figure 3)"
        } )
    ; ( "aard-service-bug"
      , { app = Bug_apps.Aard_dictionary.app
        ; options = Runtime.default_options
        ; default_events = Bug_apps.Aard_dictionary.scenario
        ; about = "the Aard Dictionary service race (Section 6)"
        } )
    ; ( "messenger-cursor-bug"
      , { app = Bug_apps.Messenger.app
        ; options = Runtime.default_options
        ; default_events = Bug_apps.Messenger.scenario
        ; about = "the Messenger cursor race (Section 6)"
        } )
    ]
  in
  let synthetic spec =
    let slug =
      "corpus-"
      ^ String.map
          (fun c -> if c = ' ' then '-' else Char.lowercase_ascii c)
          spec.Synthetic.s_name
    in
    ( slug
    , lazy
        (let b = Synthetic.build spec in
         { app = b.Synthetic.b_app
         ; options = b.Synthetic.b_options
         ; default_events = b.Synthetic.b_events
         ; about = "synthetic model of " ^ spec.Synthetic.s_name ^ " (Table 2)"
         }) )
  in
  ( List.map (fun (n, a) -> (n, lazy a)) base
  , List.map synthetic Catalog.all )

let all_app_names () =
  let base, synth = registry () in
  List.map fst base @ List.map fst synth

let find_app name =
  let base, synth = registry () in
  match List.assoc_opt name (base @ synth) with
  | Some l -> Ok (Lazy.force l)
  | None ->
    Error
      (Printf.sprintf "unknown application %S; known: %s" name
         (String.concat ", " (all_app_names ())))

(* {1 Common arguments} *)

let app_arg =
  let doc = "Modeled application to run (see $(b,droidracer list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let seed_arg =
  let doc = "Scheduling seed (deterministic round-robin when omitted)." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the analysis (defaults to the hardware's \
     recommended domain count).  Reports are bit-identical for every \
     value; only the wall time changes."
  in
  Arg.(
    value
    & opt int (Droidracer_core.Par_pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let hb_engine_arg =
  let doc =
    "Happens-before engine: $(b,dense) re-propagates every row of the \
     closure each pass, $(b,worklist) only re-propagates predecessors \
     of rows that changed (identical relation, identical races), \
     $(b,streaming) detects races in one forward pass over the events \
     with epoch-adaptive vector clocks — memory stays proportional to \
     live entities, not trace length, at the price of a sound \
     under-approximation (never a false race the batch engines would \
     not report; identical races on lock-free traces)."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("dense", Happens_before.Dense)
           ; ("worklist", Happens_before.Worklist)
           ; ("streaming", Happens_before.Streaming)
           ])
        Happens_before.Dense
    & info [ "hb-engine" ] ~docv:"ENGINE" ~doc)

let detector_config ~closure =
  { Detector.default_config with
    hb = { Happens_before.default with closure }
  }

(* {2 Supervision budgets} *)

let budget_term =
  let timeout =
    let doc =
      "Wall-clock budget in seconds per analysis (checked between \
       pipeline phases); over budget the run is reported as timed out \
       instead of blocking the sweep."
    in
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let max_events =
    let doc =
      "Event-count budget: traces longer than $(docv) degrade down the \
       engine ladder — to the sparse worklist closure engine (identical \
       relation) when moderately over, and to the bounded-memory \
       streaming engine (sound under-approximation) when more than 10x \
       over."
    in
    Arg.(value & opt (some int) None
         & info [ "max-events" ] ~docv:"N" ~doc)
  in
  Term.(
    const (fun timeout_seconds max_events ->
      { Supervisor.timeout_seconds; max_events })
    $ timeout $ max_events)

(* {2 Telemetry}

   Shared by every subcommand that runs the analysis pipeline.  Any of
   the three flags switches the telemetry subsystem on for the whole
   run; with none of them the instrumentation is a no-op and the
   analysis output is bit-identical to an uninstrumented build. *)

type telemetry =
  { trace_out : string option
  ; metrics : bool
  ; metrics_out : string option
  ; series_out : string option
  ; sample_period_ms : float
  }

let telemetry_term =
  let trace_out =
    let doc =
      "Write a Chrome trace_event JSON of the run's spans (one process \
       lane per worker, one track per analysis domain, counter tracks \
       for resource series) to $(docv); load it in chrome://tracing or \
       https://ui.perfetto.dev."
    in
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let metrics =
    let doc =
      "After the run, print the telemetry summary: the span tree with \
       call counts and total times, counters, and histograms."
    in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let metrics_out =
    let doc = "Write the run's metrics (counters, gauges, histograms \
               with p50/p90/p99, per-domain statistics, merged across \
               worker processes) as JSON to $(docv)." in
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let series_out =
    let doc =
      "Write the run's resource time-series (RSS, GC major-heap words, \
       streaming live-slot watermarks; schema droidracer-series/1) as \
       JSON to $(docv)."
    in
    Arg.(value & opt (some string) None
         & info [ "series-out" ] ~docv:"FILE" ~doc)
  in
  let sample_period_ms =
    let doc =
      "Minimum milliseconds between resource samples (RSS, GC heap) \
       recorded into the time-series store."
    in
    Arg.(value & opt float 50.0
         & info [ "sample-period-ms" ] ~docv:"MS" ~doc)
  in
  Term.(
    const (fun trace_out metrics metrics_out series_out sample_period_ms ->
      { trace_out; metrics; metrics_out; series_out; sample_period_ms })
    $ trace_out $ metrics $ metrics_out $ series_out $ sample_period_ms)

let with_telemetry t f =
  let active =
    t.trace_out <> None || t.metrics || t.metrics_out <> None
    || t.series_out <> None
  in
  if active then begin
    Obs.enable ();
    Obs.reset ();
    Obs.set_sample_period (t.sample_period_ms /. 1e3);
    (* Anchor every series at t=0 so even a short run exports one
       sample per series. *)
    Obs.sample_resources ()
  end;
  let v = f () in
  if active then begin
    Option.iter
      (fun path ->
         Obs.write_chrome_trace path;
         Printf.eprintf "wrote Chrome trace to %s\n%!" path)
      t.trace_out;
    Option.iter
      (fun path ->
         Obs.write_metrics_json path;
         Printf.eprintf "wrote metrics JSON to %s\n%!" path)
      t.metrics_out;
    Option.iter
      (fun path ->
         Obs.write_series_json path;
         Printf.eprintf "wrote series JSON to %s\n%!" path)
      t.series_out;
    if t.metrics then begin
      print_newline ();
      print_string (Obs.summary_string ())
    end
  end;
  v

let events_arg =
  let doc =
    "UI events to inject, e.g. $(b,click:onPlayClick), $(b,back), \
     $(b,intent:ACTION), $(b,rotate).  Defaults to the application's \
     canonical scenario."
  in
  Arg.(value & opt_all string [] & info [ "event"; "e" ] ~docv:"EVENT" ~doc)

let parse_event s =
  match String.lowercase_ascii s with
  | "back" -> Ok Runtime.Back
  | "rotate" -> Ok Runtime.Rotate
  | _ ->
    (match String.index_opt s ':' with
     | Some i when String.sub s 0 i = "click" ->
       Ok (Runtime.Click (String.sub s (i + 1) (String.length s - i - 1)))
     | Some i when String.sub s 0 i = "intent" ->
       Ok (Runtime.Intent (String.sub s (i + 1) (String.length s - i - 1)))
     | Some _ | None ->
       Error
         (Printf.sprintf
            "cannot parse event %S (use click:NAME, intent:ACTION, back, rotate)"
            s))

let parse_events = function
  | [] -> Ok None
  | events ->
    List.fold_left
      (fun acc s ->
         Result.bind acc (fun es ->
           Result.map (fun e -> e :: es) (parse_event s)))
      (Ok []) events
    |> Result.map (fun es -> Some (List.rev es))

let with_options options seed =
  match seed with
  | Some s -> { options with Runtime.policy = Runtime.Seeded s }
  | None -> options

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("droidracer: " ^ msg);
    exit 1

(* Creates [dir] and any missing parents.  A failed [Sys.mkdir] is only
   an error if the path still is not a directory afterwards, so losing
   a creation race to another process is fine. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with
    | Sys_error _ when Sys.file_exists dir && Sys.is_directory dir -> ()
  end

let run_app name seed events =
  let reg = or_die (find_app name) in
  let events =
    match or_die (parse_events events) with
    | Some es -> es
    | None -> reg.default_events
  in
  let options = with_options reg.options seed in
  (reg, options, events, Runtime.run ~options reg.app events)

(* {1 Subcommands} *)

let list_cmd =
  let run () =
    let base, synth = registry () in
    List.iter
      (fun (name, l) ->
         Printf.printf "%-24s %s\n" name (Lazy.force l).about)
      base;
    List.iter
      (fun (name, _) -> Printf.printf "%-24s synthetic corpus model\n" name)
      synth
  in
  Cmd.v (Cmd.info "list" ~doc:"List the modeled applications.")
    Term.(const run $ const ())

let analyze_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")
  in
  let no_coalesce =
    Arg.(value & flag & info [ "no-coalesce" ] ~doc:"Disable node coalescing.")
  in
  let no_enables =
    Arg.(value & flag
         & info [ "no-enables" ] ~doc:"Ignore enable operations (ablation).")
  in
  let show_all =
    Arg.(value & flag
         & info [ "all" ] ~doc:"Print every racy pair, not one per location.")
  in
  let coverage =
    Arg.(value & flag
         & info [ "coverage" ]
             ~doc:"Group races by race coverage and print root races only.")
  in
  let streaming_json =
    Arg.(value & opt (some string) None
         & info [ "streaming-json" ] ~docv:"FILE"
             ~doc:
               "With $(b,--hb-engine streaming): write the engine's \
                throughput and memory profile (schema \
                droidracer-streaming/1) to $(docv).")
  in
  (* The predictive engine is not a closure engine — it layers a
     feasibility search on top of the dense relation — so the choice is
     lifted here at the command level rather than in
     Happens_before.closure_engine. *)
  let engine_arg =
    let doc =
      "Happens-before engine: $(b,dense), $(b,worklist) or \
       $(b,streaming) as elsewhere, or $(b,predictive) — the dense \
       analysis followed by the reordering feasibility search of the \
       $(b,predict) subcommand (candidate pairs the observed schedule \
       ordered only through lock or dispatch accidents are searched \
       for an admissible flipping schedule)."
    in
    Arg.(
      value
      & opt
          (enum
             [ ("dense", `Core Happens_before.Dense)
             ; ("worklist", `Core Happens_before.Worklist)
             ; ("streaming", `Core Happens_before.Streaming)
             ; ("predictive", `Predictive)
             ])
          (`Core Happens_before.Dense)
      & info [ "hb-engine" ] ~docv:"ENGINE" ~doc)
  in
  (* The streaming engine's whole point is never materialising the
     trace, so its path reads the file twice — a validation pass, then
     the detection pass — instead of loading it once. *)
  let run_streaming file show_all coverage streaming_json =
    if coverage then
      or_die
        (Error
           "--coverage needs a batch engine: the streaming engine never \
            materialises the happens-before relation");
    let started = Unix.gettimeofday () in
    (match Wellformed.check_file file with
     | Ok _stats -> ()
     | Error f ->
       or_die
         (Error (Printf.sprintf "%s: %s" file (Wellformed.failure_message f))));
    match Streaming_engine.detect_file file with
    | Error e ->
      or_die
        (Error (Printf.sprintf "%s: %s" file (Trace_io.read_error_message e)))
    | Ok (races, stats) ->
      let elapsed = Unix.gettimeofday () -. started in
      Printf.printf "%d events, %d race(s) [streaming engine]\n"
        stats.Streaming_engine.events (List.length races);
      Printf.printf
        "peak live slots %d, peak clock entries %d (%d slots retired)\n"
        stats.Streaming_engine.peak_live_slots
        stats.Streaming_engine.peak_clock_entries
        stats.Streaming_engine.slots_retired;
      if show_all then
        List.iter (fun r -> Format.printf "%a@." Race.pp r) races;
      Option.iter
        (fun path ->
           Out_channel.with_open_text path (fun oc ->
             Out_channel.output_string oc
               (Streaming_engine.stats_json_string ~label:file
                  ~elapsed_seconds:elapsed
                  ~peak_rss_kb:(Obs.peak_rss_kb ())
                  stats));
           Printf.eprintf "wrote streaming stats to %s\n%!" path)
        streaming_json
  in
  let run file no_coalesce no_enables show_all coverage jobs engine budget
      streaming_json telemetry =
    with_telemetry telemetry @@ fun () ->
    match engine with
    | `Core Happens_before.Streaming ->
      run_streaming file show_all coverage streaming_json
    | (`Core (Happens_before.Dense | Happens_before.Worklist) | `Predictive)
      as engine ->
    let closure, predictive =
      match engine with
      | `Core c -> (c, false)
      | `Predictive -> (Happens_before.Dense, true)
    in
    match Trace_io.load file with
    | Error msg -> or_die (Error msg)
    | Ok trace ->
      let config =
        { Detector.coalesce = not no_coalesce
        ; hb =
            { Happens_before.default with
              enable_rule = not no_enables
            ; closure
            }
        }
      in
      let report =
        match Supervisor.analyze ~config ~jobs ~budget ~name:file trace with
        | Ok report -> report
        | Error f ->
          or_die
            (Error
               (Printf.sprintf "%s (%s after %.3fs)"
                  (Supervisor.reason_detail f.Supervisor.f_reason)
                  (Supervisor.reason_label f.Supervisor.f_reason)
                  f.Supervisor.f_elapsed))
      in
      Format.printf "%a@." Detector.pp_report report;
      if show_all then
        List.iter
          (fun { Detector.race; category } ->
             Format.printf "[%a] %a@." Classify.pp_category category Race.pp race)
          report.Detector.all_races;
      if coverage then begin
        let hb = Detector.relation ~config ~jobs trace in
        let races = List.map (fun c -> c.Detector.race) report.Detector.all_races in
        let groups = Race_coverage.group ~hb races in
        Format.printf "race coverage: %d root(s) for %d race(s)@."
          (List.length groups) (List.length races);
        List.iter (fun g -> Format.printf "%a@." Race_coverage.pp_group g) groups
      end;
      if predictive then begin
        let preport = Predict.analyze ~config ~jobs trace in
        Format.printf "predictive: %a@." Predict.pp_report preport;
        List.iter
          (fun loc -> Format.printf "  reordering-only race on %s@." loc)
          (Predict.extra_locations preport)
      end
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Detect and classify data races in a trace file.")
    Term.(
      const run $ file $ no_coalesce $ no_enables $ show_all $ coverage
      $ jobs_arg $ engine_arg $ budget_term $ streaming_json
      $ telemetry_term)

let validate_cmd =
  let files =
    Arg.(non_empty & pos_all file []
         & info [] ~docv:"TRACE" ~doc:"Trace files to validate.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json-out" ] ~docv:"FILE"
             ~doc:"Write the per-file validation report as JSON to $(docv).")
  in
  let quiet =
    Arg.(value & flag
         & info [ "quiet"; "q" ] ~doc:"Suppress per-file statistics.")
  in
  let json_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
         match c with
         | '"' -> Buffer.add_string buf "\\\""
         | '\\' -> Buffer.add_string buf "\\\\"
         | '\n' -> Buffer.add_string buf "\\n"
         | '\t' -> Buffer.add_string buf "\\t"
         | '\r' -> Buffer.add_string buf "\\r"
         | c when Char.code c < 0x20 ->
           Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
         | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  in
  let run files json_out quiet =
    let results =
      List.map (fun file -> (file, Wellformed.check_file file)) files
    in
    List.iter
      (fun (file, result) ->
         match result with
         | Ok stats ->
           if not quiet then
             Format.printf "%s: OK (%a)@." file Wellformed.pp_stats stats
           else Format.printf "%s: OK@." file
         | Error failure ->
           Format.printf "%s: REJECTED: %a@." file Wellformed.pp_failure
             failure)
      results;
    Option.iter
      (fun path ->
         let buf = Buffer.create 512 in
         Buffer.add_string buf
           "{\"schema\":\"droidracer-validation/1\",\"files\":[";
         List.iteri
           (fun i (file, result) ->
              if i > 0 then Buffer.add_char buf ',';
              match result with
              | Ok (stats : Wellformed.stats) ->
                Printf.bprintf buf
                  "{\"file\":\"%s\",\"status\":\"ok\",\"events\":%d,\"threads\":%d,\"tasks\":%d,\"locks\":%d}"
                  (json_escape file) stats.Wellformed.events
                  stats.Wellformed.threads stats.Wellformed.tasks
                  stats.Wellformed.locks
              | Error failure ->
                let rule =
                  match failure with
                  | Wellformed.Violation e ->
                    Printf.sprintf "\"%s\"" (Wellformed.rule_name e.Wellformed.rule)
                  | Wellformed.Syntax _ -> "\"syntax\""
                  | Wellformed.Binary _ -> "\"binary\""
                  | Wellformed.Io _ -> "\"io\""
                in
                Printf.bprintf buf
                  "{\"file\":\"%s\",\"status\":\"rejected\",\"rule\":%s,\"line\":%s,\"message\":\"%s\"}"
                  (json_escape file) rule
                  (match Wellformed.failure_line failure with
                   | Some l -> string_of_int l
                   | None -> "null")
                  (json_escape (Wellformed.failure_message failure)))
           results;
         Buffer.add_string buf "]}\n";
         Out_channel.with_open_text path (fun oc ->
           Out_channel.output_string oc (Buffer.contents buf));
         Printf.eprintf "wrote validation report to %s\n%!" path)
      json_out;
    let rejected =
      List.length (List.filter (fun (_, r) -> Result.is_error r) results)
    in
    if rejected > 0 then begin
      Printf.eprintf "droidracer: %d of %d file(s) rejected\n%!" rejected
        (List.length results);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Check trace files against the Figure 5 admissibility rules \
          (streaming, constant memory); exits non-zero if any file is \
          rejected.")
    Term.(const run $ files $ json_out $ quiet)

let trace_cmd =
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the trace here.")
  in
  let full =
    Arg.(value & flag
         & info [ "full" ]
             ~doc:"Emit the ground-truth trace (including untracked threads).")
  in
  let run name seed events output full =
    let _, _, _, result = run_app name seed events in
    let trace = if full then result.Runtime.full else result.Runtime.observed in
    (match Step.validate result.Runtime.full with
     | Ok _ -> ()
     | Error v ->
       Format.eprintf "warning: ground-truth trace violates the semantics: %a@."
         Step.pp_violation v);
    match output with
    | Some path ->
      Trace_io.save path trace;
      Printf.printf "wrote %d operations to %s\n" (Trace.length trace) path
    | None -> print_string (Trace_io.to_string trace)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run an application and emit its execution trace.")
    Term.(const run $ app_arg $ seed_arg $ events_arg $ output $ full)

let detect_cmd =
  let minimize =
    Arg.(value & flag
         & info [ "minimize" ]
             ~doc:
               "For each distinct race, print a minimal sub-trace that                 still exhibits it (delta debugging).")
  in
  let run name seed events minimize_races jobs closure telemetry =
    with_telemetry telemetry @@ fun () ->
    let _, _, _, result = run_app name seed events in
    let report =
      Detector.analyze ~config:(detector_config ~closure) ~jobs
        result.Runtime.observed
    in
    Format.printf "%a@." Detector.pp_report report;
    if minimize_races then
      List.iter
        (fun { Detector.race; category } ->
           let small, race' =
             Droidracer_core.Minimize.minimize report.Detector.trace race
           in
           Format.printf
             "@.minimal witness for the %a race on %a (%d of %d operations):@.%a"
             Classify.pp_category category Droidracer_trace.Ident.Location.pp
             (Race.location race) (Trace.length small)
             (Trace.length report.Detector.trace) Trace.pp small;
           Format.printf "racy accesses now at %d and %d@."
             race'.Race.first.position race'.Race.second.position)
        report.Detector.distinct_races
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:"Run an application and report the data races of its trace.")
    Term.(
      const run $ app_arg $ seed_arg $ events_arg $ minimize $ jobs_arg
      $ hb_engine_arg $ telemetry_term)

let explore_cmd =
  let bound =
    Arg.(value & opt int 2
         & info [ "bound"; "k" ] ~doc:"Maximum UI event sequence length.")
  in
  let rotate =
    Arg.(value & flag & info [ "rotate" ] ~doc:"Include screen rotation.")
  in
  let run name seed bound rotate =
    let reg = or_die (find_app name) in
    let options = with_options reg.options seed in
    let exploration =
      Explorer.explore ~options ~bound ~include_rotate:rotate reg.app
    in
    Printf.printf "explored %d event sequences (bound %d)%s\n"
      (List.length exploration.Explorer.cases)
      bound
      (if exploration.Explorer.truncated then " [truncated]" else "");
    let racy = Explorer.racy_cases exploration in
    Printf.printf "%d sequences manifest races:\n" (List.length racy);
    List.iter
      (fun (case, report) ->
         Format.printf "  [%a]: %d races (%s)@."
           (Format.pp_print_list
              ~pp_sep:(fun f () -> Format.fprintf f "; ")
              Runtime.pp_ui_event)
           case.Explorer.events
           (List.length report.Detector.all_races)
           (String.concat ", "
              (List.filter_map
                 (fun (c, n) ->
                    if n > 0 then
                      Some (Printf.sprintf "%s %d" (Classify.category_name c) n)
                    else None)
                 (Detector.count_by_category report.Detector.distinct_races))))
      racy
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Systematically explore UI event sequences and detect races.")
    Term.(const run $ app_arg $ seed_arg $ bound $ rotate)

let verify_cmd =
  let attempts =
    Arg.(value & opt int 12 & info [ "attempts" ] ~doc:"Perturbed runs per race.")
  in
  let exhaustive =
    Arg.(value & flag
         & info [ "exhaustive" ]
             ~doc:
               "Enumerate the schedule tree (bounded by $(b,--attempts) x \
                100 replays) instead of sampling; gives a definite verdict \
                on small applications.")
  in
  let run name seed events attempts exhaustive jobs closure telemetry =
    with_telemetry telemetry @@ fun () ->
    let reg, options, events, result = run_app name seed events in
    let report =
      Detector.analyze ~config:(detector_config ~closure) ~jobs
        result.Runtime.observed
    in
    if report.Detector.all_races = [] then print_endline "no races detected"
    else
      List.iter
        (fun { Detector.race; category } ->
           let verdict =
             if exhaustive then
               match
                 Schedule_explorer.verify_exhaustively
                   ~max_runs:(attempts * 100) ~options ~app:reg.app ~events
                   ~trace:report.Detector.trace
                   ~thread_names:result.Runtime.thread_names race
               with
               | Schedule_explorer.Flipped _ ->
                 "TRUE POSITIVE (a schedule reorders the accesses)"
               | Schedule_explorer.Never_flips n ->
                 Printf.sprintf "FALSE POSITIVE (all %d schedules keep the order)"
                   n
               | Schedule_explorer.Budget_exhausted n ->
                 Printf.sprintf "presumed false positive (%d schedules explored)"
                   n
             else
               match
                 Verify.verify ~attempts ~options ~app:reg.app ~events
                   ~trace:report.Detector.trace
                   ~thread_names:result.Runtime.thread_names race
               with
               | Verify.Confirmed w ->
                 Printf.sprintf "TRUE POSITIVE (flipped with seed %d)"
                   w.Verify.w_seed
               | Verify.Not_flipped n ->
                 Printf.sprintf "presumed false positive (%d perturbed runs)" n
           in
           Format.printf "[%a] %a@.  -> %s@." Classify.pp_category category
             Race.pp race verdict)
        report.Detector.all_races
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Detect races, then validate each by searching for an alternate \
          ordering of the racy accesses.")
    Term.(
      const run $ app_arg $ seed_arg $ events_arg $ attempts $ exhaustive
      $ jobs_arg $ hb_engine_arg $ telemetry_term)

let corpus_cmd =
  let verify =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Verify open-source races by schedule perturbation (slower).")
  in
  let only =
    Arg.(value & opt (some string) None
         & info [ "app" ] ~docv:"NAME" ~doc:"Restrict to one application.")
  in
  let inject_faults =
    Arg.(value & opt (some int) None
         & info [ "inject-faults" ] ~docv:"SEED"
             ~doc:
               "Deterministically inject supervisor faults (parse errors, \
                validator rejects, crashes, timeouts) decided by $(docv); \
                affected applications appear as failure rows, healthy ones \
                still complete.")
  in
  let failures_json =
    Arg.(value & opt (some string) None
         & info [ "failures-json" ] ~docv:"FILE"
             ~doc:"Write the failed-application rows as JSON to $(docv).")
  in
  let open_source =
    Arg.(value & flag
         & info [ "open-source" ]
             ~doc:"Restrict to the open-source applications (faster).")
  in
  let fault_classes =
    Arg.(
      value
      & opt
          (enum
             [ ("basic", Supervisor.basic_faults)
             ; ("all", Supervisor.all_faults)
             ])
          Supervisor.basic_faults
      & info [ "fault-classes" ] ~docv:"SET"
          ~doc:
            "Fault classes drawn by $(b,--inject-faults): $(b,basic) \
             (parse, reject, crash, timeout — bit-identical plans to \
             earlier releases) or $(b,all) (adds oom and hang, which \
             misbehave non-cooperatively and are meant for \
             $(b,--isolate)).")
  in
  let isolate =
    Arg.(value & flag
         & info [ "isolate" ]
             ~doc:
               "Run each application in a forked worker process: crashes, \
                allocation storms and non-cooperative hangs cost one \
                failure row (the worker is SIGKILLed after \
                $(b,--timeout)), never the sweep.")
  in
  let max_mem =
    Arg.(value & opt (some int) None
         & info [ "max-mem" ] ~docv:"MIB"
             ~doc:
               "With $(b,--isolate): cap each worker's address space at \
                $(docv) MiB of headroom over the forked image \
                (setrlimit); a worker past the cap dies and is reported \
                as a memory-cap failure row.")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:
               "Append every finished application's outcome to $(docv) \
                (fsync'd JSONL) so an interrupted sweep can be resumed \
                with $(b,--resume).")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:
               "With $(b,--journal): replay outcomes already journalled \
                by an interrupted run instead of recomputing them; the \
                resumed sweep reproduces the uninterrupted tables bit \
                for bit.")
  in
  let max_retries =
    Arg.(value & opt int 1
         & info [ "max-retries" ] ~docv:"N"
             ~doc:
               "Retry crashed or timed-out applications up to $(docv) \
                times (rejections are never retried).")
  in
  let backoff =
    Arg.(value & opt float 0.0
         & info [ "backoff" ] ~docv:"SECONDS"
             ~doc:
               "Base of the deterministic exponential backoff between \
                retries: retry $(i,k) waits $(docv) * 2^($(i,k)-1) \
                seconds.  Jitter-free, so failure rows are \
                reproducible.")
  in
  let progress_out =
    Arg.(value & opt (some string) None
         & info [ "progress-out" ] ~docv:"FILE"
             ~doc:
               "Append live sweep progress as JSONL (schema \
                droidracer-progress/1: a header record, one record per \
                finished application with done/total, events/sec, ETA \
                and per-engine fallback counts, and a final summary \
                record) to $(docv) — suitable for tailing a long \
                sweep.  The per-app heartbeat line is always printed \
                to stderr.")
  in
  let trace_dir =
    Arg.(value & opt (some dir) None
         & info [ "trace-dir" ] ~docv:"DIR"
             ~doc:
               "Sweep the pre-recorded trace files under $(docv) (every \
                $(b,.trace) and $(b,.drt) file, text or binary — the \
                format is sniffed per file) instead of the modeled \
                application catalog, with the same supervision: \
                budgets, retries, $(b,--isolate), $(b,--journal), \
                $(b,--progress-out) and fault injection all apply.  \
                See $(b,gencorpus) for producing such a directory.")
  in
  let races_json =
    Arg.(value & opt (some string) None
         & info [ "races-json" ] ~docv:"FILE"
             ~doc:
               "With $(b,--trace-dir): write the per-file race table \
                (schema droidracer-races/1, race counts and racing \
                locations per trace) as JSON to $(docv).")
  in
  let run verify only open_source jobs closure budget inject_faults
      fault_classes failures_json isolate max_mem journal_path resume
      max_retries backoff progress_out trace_dir races_json telemetry =
    with_telemetry telemetry @@ fun () ->
    if max_mem <> None && not isolate then
      or_die (Error "--max-mem requires --isolate");
    if resume && journal_path = None then
      or_die (Error "--resume requires --journal");
    if races_json <> None && trace_dir = None then
      or_die (Error "--races-json requires --trace-dir");
    if trace_dir <> None && (verify || only <> None || open_source) then
      or_die
        (Error "--trace-dir is incompatible with --verify, --app and \
                --open-source");
    let specs =
      match only with
      | None -> if open_source then Catalog.open_source else Catalog.all
      | Some name ->
        (match Catalog.find name with
         | Some s -> [ s ]
         | None -> or_die (Error (Printf.sprintf "unknown corpus app %S" name)))
    in
    let journal =
      Option.map
        (fun path ->
           let j = or_die (Journal.create ~resume path) in
           let torn = Journal.torn_lines j in
           if torn > 0 then
             Printf.eprintf "droidracer: journal: skipped %d torn line(s)\n%!"
               torn;
           let stale = Journal.stale_records j in
           if stale > 0 then
             Printf.eprintf
               "droidracer: journal: discarded %d record(s) written by a \
                different binary\n%!"
               stale;
           let prior = List.length (Journal.prior j) in
           if prior > 0 then
             Printf.eprintf
               "droidracer: journal: resuming %d already-completed app(s)\n%!"
               prior;
           j)
        journal_path
    in
    let mode =
      if isolate then Supervisor.Isolated { max_mem_mib = max_mem }
      else Supervisor.Cooperative
    in
    let retry = { Proc_pool.max_retries; backoff_base = backoff } in
    let progress_chan = Option.map open_out progress_out in
    let files =
      match trace_dir with
      | None -> []
      | Some dir ->
        let files =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f ->
               Filename.check_suffix f ".trace" || Filename.check_suffix f ".drt")
          |> List.sort String.compare
          |> List.map (Filename.concat dir)
        in
        if files = [] then
          or_die
            (Error (Printf.sprintf "no .trace or .drt files under %s" dir));
        files
    in
    let total =
      if trace_dir = None then List.length specs else List.length files
    in
    let progress =
      Progress.create ?out:progress_chan
        ~heartbeat:(fun line -> Printf.eprintf "%s\n%!" line)
        ~mode:(if isolate then "isolated" else "cooperative")
        ~jobs ~total ()
    in
    let config = detector_config ~closure in
    let with_sweep sweep =
      Fun.protect
        ~finally:(fun () ->
          Option.iter Journal.close journal;
          Option.iter close_out progress_chan)
        (fun () ->
           match inject_faults with
           | Some seed ->
             Supervisor.with_faults ~classes:fault_classes ~seed sweep
           | None -> sweep ())
    in
    let report_progress_path () =
      Option.iter
        (fun path -> Printf.eprintf "wrote progress JSONL to %s\n%!" path)
        progress_out
    in
    let write_failures failed =
      Option.iter
        (fun path ->
           Out_channel.with_open_text path (fun oc ->
             Out_channel.output_string oc
               (Supervisor.failures_json_string failed));
           Printf.eprintf "wrote failure report to %s\n%!" path)
        failures_json
    in
    match trace_dir with
    | Some _ ->
      let outcomes =
        with_sweep (fun () ->
          Supervisor.run_files ~jobs ~config ~budget ~retry ~mode ?journal
            ~progress files)
      in
      report_progress_path ();
      let reports = Supervisor.file_completed outcomes in
      let failed = Supervisor.file_failures outcomes in
      if reports <> [] then Table.print (Supervisor.file_table reports);
      if failed <> [] then begin
        if reports <> [] then print_newline ();
        Table.print (Supervisor.failure_table failed)
      end;
      Option.iter
        (fun path ->
           Out_channel.with_open_text path (fun oc ->
             Out_channel.output_string oc
               (Supervisor.files_json_string outcomes));
           Printf.eprintf "wrote race table to %s\n%!" path)
        races_json;
      write_failures failed;
      if failed <> [] then exit 3
    | None ->
      let outcomes =
        with_sweep (fun () ->
          Supervisor.run_catalog ~jobs ~specs ~config ~budget ~retry ~mode
            ?journal ~progress ())
      in
      report_progress_path ();
      let runs = Supervisor.completed outcomes in
      let failed = Supervisor.failures outcomes in
      if runs <> [] then begin
        Table.print (Experiments.table2 runs);
        print_newline ();
        Table.print (Experiments.table3 ~verify runs);
        print_newline ();
        Table.print (Experiments.performance_table runs)
      end;
      if failed <> [] then begin
        if runs <> [] then print_newline ();
        Table.print (Supervisor.failure_table failed)
      end;
      write_failures failed
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "Regenerate Tables 2 and 3 over the paper's application corpus \
          (supervised: misbehaving applications become failure rows, not \
          crashes), or — with $(b,--trace-dir) — sweep a directory of \
          pre-recorded trace files under the same supervision.")
    Term.(
      const run $ verify $ only $ open_source $ jobs_arg $ hb_engine_arg
      $ budget_term $ inject_faults $ fault_classes $ failures_json $ isolate
      $ max_mem $ journal $ resume $ max_retries $ backoff $ progress_out
      $ trace_dir $ races_json $ telemetry_term)

let synth_cmd =
  let out =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Output trace file.")
  in
  let events =
    Arg.(value & opt int 1_000_000
         & info [ "events"; "n" ] ~docv:"N"
             ~doc:"Number of events to generate.")
  in
  let seed =
    Arg.(value & opt int Longtrace.default_config.Longtrace.seed
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"PRNG seed; the trace is a pure function of the \
                   configuration.")
  in
  let loopers =
    Arg.(value & opt int Longtrace.default_config.Longtrace.loopers
         & info [ "loopers" ] ~docv:"N"
             ~doc:"Looper threads the driver rotates posts over.")
  in
  let locations =
    Arg.(value & opt int Longtrace.default_config.Longtrace.locations
         & info [ "locations" ] ~docv:"N"
             ~doc:"Size of each memory-location pool (private and \
                   shared).")
  in
  let binary =
    Arg.(value & flag
         & info [ "binary" ]
             ~doc:
               "Emit the binary trace format of the codec instead of the \
                text line format (the generator's identifier pools are \
                written as the up-front table).  Every reader sniffs the \
                format, so no flag is needed on the consuming side.")
  in
  let run out events seed loopers locations binary =
    let config =
      { Longtrace.default_config with Longtrace.seed; loopers; locations }
    in
    let n =
      if binary then Longtrace.write_binary ~config ~events out
      else Longtrace.write ~config ~events out
    in
    Printf.printf "wrote %d events to %s (%s)\n" n out
      (if binary then "binary" else "text")
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "Generate an arbitrarily long admissible trace (streamed to \
          disk, constant memory) — the workload for the streaming \
          engine and the CI memory gate.")
    Term.(const run $ out $ events $ seed $ loopers $ locations $ binary)

let convert_cmd =
  let src =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"SRC" ~doc:"Source trace (text or binary).")
  in
  let dst =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"DST" ~doc:"Destination trace file.")
  in
  let target =
    Arg.(
      value
      & opt (enum [ ("auto", `Auto); ("text", `Text); ("binary", `Binary) ])
          `Auto
      & info [ "to" ] ~docv:"FORMAT"
          ~doc:
            "Target format: $(b,text), $(b,binary), or $(b,auto) (the \
             opposite of the sniffed source format).")
  in
  let validate =
    Arg.(value & flag
         & info [ "validate" ]
             ~doc:
               "Stream the source through the Figure 5 admissibility \
                checker before converting; on rejection nothing is \
                written and the exit status is 1.")
  in
  let sniff_binary path =
    In_channel.with_open_bin path (fun ic ->
      let len = String.length Binfmt.magic in
      let buf = Bytes.create len in
      let rec fill off =
        if off >= len then len
        else
          match In_channel.input ic buf off (len - off) with
          | 0 -> off
          | n -> fill (off + n)
      in
      fill 0 = len && Binfmt.is_magic (Bytes.to_string buf))
  in
  let remove_partial dst =
    if Sys.file_exists dst then Sys.remove dst
  in
  let run src dst target validate =
    let src_binary = sniff_binary src in
    let to_binary =
      match target with
      | `Binary -> true
      | `Text -> false
      | `Auto -> not src_binary
    in
    if validate then begin
      match Wellformed.check_file src with
      | Ok _ -> ()
      | Error failure ->
        Format.eprintf "droidracer: %s: REJECTED: %a@." src
          Wellformed.pp_failure failure;
        exit 1
    end;
    let result =
      if to_binary then
        Binfmt.write_file dst (fun emit ->
          Trace_io.fold_events src ~init:0 ~f:(fun n ~line:_ event ->
            emit event;
            n + 1))
      else
        Out_channel.with_open_bin dst (fun oc ->
          Trace_io.fold_events src ~init:0 ~f:(fun n ~line:_ event ->
            Out_channel.output_string oc
              (Format.asprintf "%a\n" Trace_io.print_event event);
            n + 1))
    in
    match result with
    | Ok n ->
      Printf.printf "converted %d events: %s (%s) -> %s (%s)\n" n src
        (if src_binary then "binary" else "text")
        dst
        (if to_binary then "binary" else "text")
    | Error e ->
      remove_partial dst;
      Format.eprintf "droidracer: %s: %a@." src Trace_io.pp_read_error e;
      exit 1
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Convert a trace between the text line format and the versioned \
          binary format (streaming, constant memory).  The source format \
          is sniffed from its first bytes.")
    Term.(const run $ src $ dst $ target $ validate)

let gencorpus_cmd =
  let dir =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR"
             ~doc:"Output directory (created if missing).")
  in
  let count =
    Arg.(value & opt int 200
         & info [ "count" ] ~docv:"N" ~doc:"Number of variants to derive.")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"SEED"
             ~doc:
               "Derivation seed; the whole corpus is a pure function of \
                (seed, count, events) and regenerates bit-identically.")
  in
  let events =
    Arg.(value & opt int 4000
         & info [ "events" ] ~docv:"N"
             ~doc:
               "Target events per variant (each variant draws a length \
                around this midpoint, floored so its full planting \
                window is emitted).")
  in
  let binary =
    Arg.(value & flag
         & info [ "binary" ]
             ~doc:"Write variants in the binary trace format (.drt) \
                   instead of the text format (.trace).")
  in
  let run dir count seed events binary =
    mkdir_p dir;
    let variants = Vargen.variants ~seed ~events ~count () in
    let total =
      List.fold_left
        (fun acc v ->
           ignore (Vargen.write ~dir ~binary v);
           acc + v.Vargen.v_events)
        0 variants
    in
    let manifest = Filename.concat dir "manifest.json" in
    Out_channel.with_open_bin manifest (fun oc ->
      Out_channel.output_string oc
        (Vargen.manifest_json_string ~binary variants));
    Printf.printf "wrote %d variants (%d events, %s) and %s\n" count total
      (if binary then "binary" else "text")
      manifest
  in
  Cmd.v
    (Cmd.info "gencorpus"
       ~doc:
         "Generate a corpus of application-trace variants with planted \
          ground-truth races, plus a manifest.json recall oracle — the \
          input for $(b,corpus --trace-dir) sweeps and the CI corpus \
          gate.")
    Term.(const run $ dir $ count $ seed $ events $ binary)

let predict_cmd =
  let files =
    Arg.(non_empty & pos_all file []
         & info [] ~docv:"TRACE" ~doc:"Trace files to analyse.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json-out" ] ~docv:"FILE"
             ~doc:
               "Write the prediction report (schema \
                droidracer-predictions/1: per-file summaries plus one \
                record per candidate pair with its verdict, window and \
                witness replay results) as JSON to $(docv).")
  in
  let window =
    Arg.(value & opt int Predict.default_params.Predict.window
         & info [ "predict-window" ] ~docv:"N"
             ~doc:
               "Maximum window span: candidate pairs whose accesses lie \
                more than $(docv) events apart are reported unknown \
                (window-exhausted) instead of searched.")
  in
  let max_iterations =
    Arg.(value & opt int Predict.default_params.Predict.max_iterations
         & info [ "max-iterations" ] ~docv:"N"
             ~doc:
               "Search nodes the per-pair solver may expand before the \
                pair is reported unknown (budget-exhausted).")
  in
  let max_extra =
    Arg.(value & opt int
           Predict.default_params.Predict.max_extra_per_location
         & info [ "max-extra" ] ~docv:"N"
             ~doc:
               "Reordering candidates searched per memory location; \
                further ones are counted as dropped in the report \
                (observed races and refutable pairs are never \
                dropped).")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:
               "Wall-clock budget for the whole run; pairs not solved \
                in time are reported unknown (deadline) and the report \
                is marked degraded, falling back to the observed-only \
                races — the sweep never blocks.  Unlike untimed runs, \
                which set of pairs is cut short depends on timing, so \
                degraded reports are not bit-identical across runs or \
                $(b,--jobs) values.")
  in
  let witness_dir =
    Arg.(value & opt (some string) None
         & info [ "witness-dir" ] ~docv:"DIR"
             ~doc:
               "Write each feasible pair's witness — the complete \
                reordered trace, replayable by $(b,validate) and \
                $(b,analyze) — under $(docv) (created if missing).")
  in
  let binary =
    Arg.(value & flag
         & info [ "binary" ]
             ~doc:"Write witnesses in the binary trace format (.drt).")
  in
  let show_all =
    Arg.(value & flag
         & info [ "all" ] ~doc:"Print every candidate pair's verdict.")
  in
  let run files json_out window max_iterations max_extra timeout witness_dir
      binary show_all jobs telemetry =
    with_telemetry telemetry @@ fun () ->
    let deadline =
      Option.map (fun t -> Unix.gettimeofday () +. t) timeout
    in
    let params =
      { Predict.window
      ; max_iterations
      ; max_extra_per_location = max_extra
      ; deadline
      }
    in
    Option.iter mkdir_p witness_dir;
    let witness_paths = Hashtbl.create 16 in
    let write_witness ~file idx (p : Predict.pair_result) =
      match (p.Predict.pr_verdict, witness_dir) with
      | Predict.Feasible w, Some dir ->
        let base = Filename.remove_extension (Filename.basename file) in
        let path =
          Filename.concat dir
            (Printf.sprintf "%s-pair%03d.%s" base idx
               (if binary then "drt" else "trace"))
        in
        (if binary then
           Binfmt.write_file path (fun emit ->
             List.iter emit (Trace.events w.Predict.w_trace))
         else Trace_io.save path w.Predict.w_trace);
        Hashtbl.replace witness_paths
          ( file
          , p.Predict.pr_pair.Race.first.Race.position
          , p.Predict.pr_pair.Race.second.Race.position )
          path
      | _ -> ()
    in
    let results =
      List.map
        (fun file ->
           match Trace_io.load file with
           | Error msg -> or_die (Error msg)
           | Ok trace ->
             let report = Predict.analyze ~params ~jobs trace in
             List.iteri (fun i p -> write_witness ~file i p)
               report.Predict.pairs;
             Format.printf "%s: %a@." file Predict.pp_report report;
             if show_all then
               List.iter
                 (fun (p : Predict.pair_result) ->
                    let verdict =
                      match p.Predict.pr_verdict with
                      | Predict.Feasible w ->
                        if w.Predict.w_flipped then "FEASIBLE (flipped)"
                        else "FEASIBLE (observed)"
                      | Predict.Refuted r ->
                        "refuted: " ^ Predict.refutation_label r
                      | Predict.Unknown u ->
                        "unknown: " ^ Predict.unknown_label u
                    in
                    Format.printf "  %a@.    -> %s@." Race.pp
                      p.Predict.pr_pair verdict)
                 report.Predict.pairs;
             List.iter
               (fun loc ->
                  Format.printf "  reordering-only race on %s@." loc)
               (Predict.extra_locations report);
             (file, report))
        files
    in
    Option.iter
      (fun path ->
         let witness_path ~file ~pair:(p : Predict.pair_result) =
           Hashtbl.find_opt witness_paths
             ( file
             , p.Predict.pr_pair.Race.first.Race.position
             , p.Predict.pr_pair.Race.second.Race.position )
         in
         Out_channel.with_open_text path (fun oc ->
           Out_channel.output_string oc
             (Predict.json_string ~params ~witness_path results));
         Printf.eprintf "wrote prediction report to %s\n%!" path)
      json_out;
    let degraded =
      List.exists (fun (_, r) -> r.Predict.degraded) results
    in
    if degraded then
      Printf.eprintf
        "droidracer: deadline passed; some pairs were not searched\n%!"
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:
         "Predict races beyond the observed schedule: for every \
          candidate pair the batch engines order only through \
          schedule accidents (lock winners, dispatch order), search a \
          bounded window for an admissible reordering that flips the \
          pair, and emit the reordered trace as an executable witness \
          (checked against the admissibility rules, the transition \
          semantics and the dense relation before being reported).")
    Term.(
      const run $ files $ json_out $ window $ max_iterations $ max_extra
      $ timeout $ witness_dir $ binary $ show_all $ jobs_arg
      $ telemetry_term)

(* {1 The serving layer: serve / submit / loadgen} *)

let endpoint_arg =
  let doc =
    "Daemon endpoint: a unix socket path, $(b,unix:)$(i,PATH), \
     $(b,tcp:)$(i,HOST)$(b,:)$(i,PORT) or $(b,tcp:)$(i,PORT) \
     (localhost)."
  in
  Arg.(value & opt string "droidracerd.sock"
       & info [ "socket"; "s" ] ~docv:"ENDPOINT" ~doc)

let parse_endpoint s = or_die (Swire.endpoint_of_string s)

let read_file_bytes path =
  match In_channel.with_open_bin path In_channel.input_all with
  | bytes -> bytes
  | exception Sys_error msg -> or_die (Error msg)

let serve_cmd =
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N"
             ~doc:"Process-isolated analysis workers to fork at startup.")
  in
  let worker_jobs =
    Arg.(value & opt int 1
         & info [ "worker-jobs" ] ~docv:"N"
             ~doc:"Domains each worker spreads one analysis across.")
  in
  let queue =
    Arg.(value & opt int 16
         & info [ "queue" ] ~docv:"N"
             ~doc:
               "Admission queue capacity; past it requests are refused \
                with an explicit $(b,overloaded) response and a \
                retry-after hint.")
  in
  let timeout =
    Arg.(value & opt float 60.0
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:
               "Default per-request analysis budget (0 disables); \
                requests may set their own.  Enforced cooperatively in \
                the worker and by SIGKILL a grace period later.")
  in
  let kill_grace =
    Arg.(value & opt float 2.0
         & info [ "kill-grace" ] ~docv:"SECONDS"
             ~doc:
               "Grace period past the budget before the daemon SIGKILLs \
                a non-cooperating worker.")
  in
  let max_trace_mb =
    Arg.(value & opt int 64
         & info [ "max-trace-mb" ] ~docv:"MIB"
             ~doc:"Largest trace frame accepted from a client.")
  in
  let max_conns =
    Arg.(value & opt int 256
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Concurrent client connections before shedding.")
  in
  let client_timeout =
    Arg.(value & opt float 30.0
         & info [ "client-timeout" ] ~docv:"SECONDS"
             ~doc:
               "Seconds a connection may sit mid-frame or mid-write \
                before being shed.")
  in
  let spool =
    Arg.(value & opt string "droidracerd.spool"
         & info [ "spool" ] ~docv:"DIR"
             ~doc:
               "Directory accepted traces are spooled to before the \
                accept is acknowledged.")
  in
  let journal_arg =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:
               "Durability journal (default: $(i,SPOOL)/journal.bin).  \
                Accepted and completed requests are recorded so a \
                crashed daemon restarted with $(b,--resume) replays \
                finished results and re-runs in-flight work.")
  in
  let no_journal =
    Arg.(value & flag
         & info [ "no-journal" ]
             ~doc:"Run without a journal (no crash durability).")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:
               "Replay the journal left by a previous daemon: finished \
                requests become cached results, accepted-but-unfinished \
                ones are re-enqueued from the spool.")
  in
  let degrade_low =
    Arg.(value & opt float 0.5
         & info [ "degrade-low" ] ~docv:"FRACTION"
             ~doc:
               "Queue fill fraction at which dense requests degrade to \
                the worklist engine.")
  in
  let degrade_high =
    Arg.(value & opt float 0.75
         & info [ "degrade-high" ] ~docv:"FRACTION"
             ~doc:
               "Queue fill fraction at which requests degrade to the \
                streaming engine.")
  in
  let progress_out =
    Arg.(value & opt (some string) None
         & info [ "progress-out" ] ~docv:"FILE"
             ~doc:
               "Append one JSON heartbeat per completed request \
                (schema droidracer-progress/1) to $(docv).")
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose"; "v" ] ~doc:"Log every request and dispatch.")
  in
  let run socket workers worker_jobs queue timeout kill_grace max_trace_mb
      max_conns client_timeout spool journal_arg no_journal resume degrade_low
      degrade_high progress_out verbose telemetry =
    let endpoint = parse_endpoint socket in
    let journal_path =
      if no_journal then None
      else
        Some
          (Option.value journal_arg
             ~default:(Filename.concat spool "journal.bin"))
    in
    let config =
      { (Server.default_config endpoint) with
        Server.workers = max 1 workers
      ; worker_jobs = max 1 worker_jobs
      ; queue_capacity = max 1 queue
      ; default_timeout = (if timeout <= 0.0 then None else Some timeout)
      ; kill_grace = Float.max 0.1 kill_grace
      ; max_trace_bytes = max 1 max_trace_mb * 1024 * 1024
      ; max_conns = max 1 max_conns
      ; client_timeout = Float.max 1.0 client_timeout
      ; spool_dir = spool
      ; journal_path
      ; resume
      ; degrade_low
      ; degrade_high
      ; verbose
      ; progress_out
      }
    in
    with_telemetry telemetry @@ fun () ->
    match Server.run config with
    | () -> ()
    | exception Failure msg -> or_die (Error msg)
    | exception Unix.Unix_error (e, fn, arg) ->
      or_die
        (Error
           (Printf.sprintf "%s%s: %s" fn
              (if arg = "" then "" else " " ^ arg)
              (Unix.error_message e)))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run droidracerd: a persistent analysis daemon that accepts \
          trace submissions over a unix or TCP socket, schedules them \
          across forked workers (each free to use a domain pool), and \
          streams droidracer-races/1 results back.  Admission is a \
          bounded queue with explicit overload rejections; accepted \
          work is journalled for crash recovery; queue pressure \
          degrades the engine down the dense-worklist-streaming \
          ladder; SIGTERM drains gracefully.")
    Term.(
      const run $ endpoint_arg $ workers $ worker_jobs $ queue $ timeout
      $ kill_grace $ max_trace_mb $ max_conns $ client_timeout $ spool
      $ journal_arg $ no_journal $ resume $ degrade_low $ degrade_high
      $ progress_out $ verbose $ telemetry_term)

let submit_cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"TRACE" ~doc:"Trace files.")
  in
  let engine =
    Arg.(value & opt string "auto"
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:
               "Requested happens-before engine: $(b,auto), $(b,dense), \
                $(b,worklist) or $(b,streaming).  Queue pressure may \
                degrade it; the response names the engine that ran.")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-request analysis budget (overrides the daemon's).")
  in
  let sleep =
    Arg.(value & opt float 0.0
         & info [ "sleep" ] ~docv:"SECONDS"
             ~doc:
               "Ask the worker to sleep before analyzing (load and \
                deadline testing).")
  in
  let no_wait =
    Arg.(value & flag
         & info [ "no-wait" ]
             ~doc:
               "Return as soon as the request is accepted instead of \
                waiting for the result; poll later with $(b,--result).")
  in
  let retry_for =
    Arg.(value & opt float 0.0
         & info [ "retry-for" ] ~docv:"SECONDS"
             ~doc:
               "Keep retrying for up to $(docv): reconnect across \
                daemon restarts and back off on $(b,overloaded) \
                responses, resubmitting the same request id (the \
                daemon's journal makes that idempotent).")
  in
  let id_arg =
    Arg.(value & opt (some string) None
         & info [ "id" ] ~docv:"ID"
             ~doc:
               "Request id (with several traces, a $(b,-)$(i,N) suffix \
                is appended).  Defaults to the file's basename plus a \
                content digest, so resubmitting the same trace \
                deduplicates.")
  in
  let result_id =
    Arg.(value & opt (some string) None
         & info [ "result" ] ~docv:"ID"
             ~doc:"Fetch the result of a previously submitted request.")
  in
  let health =
    Arg.(value & flag
         & info [ "health" ]
             ~doc:"Print the daemon's health/readiness report and exit.")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ] ~doc:"Alias for $(b,--health).")
  in
  let default_id file bytes =
    let base =
      String.map
        (function
          | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-') as c -> c
          | _ -> '_')
        (Filename.basename file)
    in
    let digest = String.sub (Digest.to_hex (Digest.string bytes)) 0 12 in
    let base =
      if String.length base > 100 then String.sub base 0 100 else base
    in
    Printf.sprintf "%s-%s" base digest
  in
  let run socket files engine timeout sleep no_wait retry_for id_arg result_id
      health stats =
    let endpoint = parse_endpoint socket in
    if not (Swire.valid_engine engine) then
      or_die (Error (Printf.sprintf "unknown engine %S" engine));
    let query ?trace request =
      match Client.once endpoint ?trace request with
      | Error e -> or_die (Error e)
      | Ok response ->
        print_endline (Swire.response_json_string response);
        Swire.response_status response
    in
    if health || stats then begin
      let status = query Swire.Health in
      if status <> "ok" && status <> "draining" then exit 1
    end
    else
      match result_id with
      | Some id ->
        let status = query (Swire.Result id) in
        if status <> "completed" then exit 1
      | None ->
        if files = [] then
          or_die
            (Error
               "nothing to do: give trace files, --result ID or --health");
        let failed = ref false in
        List.iteri
          (fun i file ->
             let trace = read_file_bytes file in
             let id =
               match id_arg with
               | Some id when List.length files = 1 -> id
               | Some id -> Printf.sprintf "%s-%d" id i
               | None -> default_id file trace
             in
             let status =
               if retry_for > 0.0 then begin
                 match
                   Client.submit ~endpoint ~deadline_seconds:retry_for ~id
                     ~engine ?timeout ~sleep ~trace ()
                 with
                 | Error e -> or_die (Error e)
                 | Ok outcome ->
                   print_endline
                     (Swire.response_json_string outcome.Client.so_response);
                   Swire.response_status outcome.Client.so_response
               end
               else begin
                 let request =
                   Swire.Analyze
                     { a_id = id
                     ; a_engine = engine
                     ; a_timeout = timeout
                     ; a_sleep = sleep
                     ; a_trace_bytes = String.length trace
                     ; a_wait = not no_wait
                     }
                 in
                 query ~trace request
               end
             in
             (match status with
              | "completed" | "accepted" | "pending" -> ()
              | _ -> failed := true))
          files;
        if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit trace files to a running droidracerd and print one \
          droidracer-races/1 JSON response per line.  Also queries \
          daemon health ($(b,--health)) and fetches results of earlier \
          asynchronous submissions ($(b,--result)).  Exits non-zero if \
          any request ends in a status other than completed, accepted \
          or pending.")
    Term.(
      const run $ endpoint_arg $ files $ engine $ timeout $ sleep $ no_wait
      $ retry_for $ id_arg $ result_id $ health $ stats)

let loadgen_cmd =
  let trace_dir =
    Arg.(required & opt (some dir) None
         & info [ "trace-dir" ] ~docv:"DIR"
             ~doc:"Directory of trace files to submit (round-robin).")
  in
  let clients =
    Arg.(value & opt int 8
         & info [ "clients" ] ~docv:"N"
             ~doc:"Concurrent client processes to fork.")
  in
  let requests =
    Arg.(value & opt int 10
         & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let engine =
    Arg.(value & opt string "auto"
         & info [ "engine" ] ~docv:"ENGINE" ~doc:"Requested engine.")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-request analysis budget.")
  in
  let sleep =
    Arg.(value & opt float 0.0
         & info [ "sleep" ] ~docv:"SECONDS"
             ~doc:"Worker sleep per request (contention testing).")
  in
  let deadline =
    Arg.(value & opt float 120.0
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:
               "Per-request client deadline; a request with no terminal \
                response by then counts as lost.")
  in
  let tag =
    Arg.(value & opt string "lg"
         & info [ "tag" ] ~docv:"TAG"
             ~doc:
               "Request-id prefix.  Reuse a tag across a daemon \
                restart with $(b,--resume) to observe journal replay.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json-out" ] ~docv:"FILE"
             ~doc:
               "Write the droidracer-service-bench/1 report (p50/p99 \
                latency, traces/sec, status counts) to $(docv).")
  in
  let run socket trace_dir clients requests engine timeout sleep deadline tag
      json_out =
    let endpoint = parse_endpoint socket in
    if not (Swire.valid_engine engine) then
      or_die (Error (Printf.sprintf "unknown engine %S" engine));
    let traces =
      Sys.readdir trace_dir |> Array.to_list |> List.sort String.compare
      |> List.filter_map (fun name ->
        let path = Filename.concat trace_dir name in
        if Sys.is_directory path then None
        else Some (name, read_file_bytes path))
      |> Array.of_list
    in
    if traces = [||] then
      or_die (Error (Printf.sprintf "no trace files in %s" trace_dir));
    let stats =
      Loadgen.run ~endpoint ~clients:(max 1 clients)
        ~requests:(max 1 requests) ~traces ~engine ?timeout ~sleep
        ~deadline_seconds:deadline ~tag ()
    in
    print_endline (Loadgen.human_summary stats);
    Option.iter
      (fun path ->
         Loadgen.write_json path stats;
         Printf.eprintf "wrote service bench to %s\n%!" path)
      json_out;
    if Loadgen.lost stats > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a running droidracerd with N forked client processes \
          submitting traces concurrently, then report latency \
          percentiles and throughput (schema \
          droidracer-service-bench/1).  Clients ride out restarts and \
          overload rejections by resubmitting the same request id; a \
          request is lost only if it never gets a terminal response \
          before its deadline.  Exits non-zero if any request is lost.")
    Term.(
      const run $ endpoint_arg $ trace_dir $ clients $ requests $ engine
      $ timeout $ sleep $ deadline $ tag $ json_out)

let lifecycle_cmd =
  let run () = Table.print (Experiments.lifecycle_table ()) in
  Cmd.v
    (Cmd.info "lifecycle" ~doc:"Print the Figure 8 activity lifecycle machine.")
    Term.(const run $ const ())

let () =
  let doc =
    "dynamic data-race detection for the Android concurrency model \
     (reproduction of Maiya, Kanade & Majumdar, PLDI 2014)"
  in
  let info = Cmd.info "droidracer" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd
          ; analyze_cmd
          ; validate_cmd
          ; trace_cmd
          ; detect_cmd
          ; explore_cmd
          ; verify_cmd
          ; corpus_cmd
          ; synth_cmd
          ; convert_cmd
          ; gencorpus_cmd
          ; predict_cmd
          ; serve_cmd
          ; submit_cmd
          ; loadgen_cmd
          ; lifecycle_cmd
          ]))
