(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 6) and times the analysis pipeline with
   Bechamel micro-benchmarks — one benchmark per regenerated artefact.

   Run with [dune exec bench/main.exe].  Flags:
   - [--quick]     restrict the corpus to the open-source applications
                   and skip verification (for CI-style runs);
   - [--jobs N]    analysis domains (default: the hardware's
                   recommended domain count); every table is identical
                   for every N — only the wall times change;
   - [--json PATH] also write a machine-readable record of per-stage
                   wall times (the CI smoke job archives it to track
                   the performance trajectory across PRs);
   - [--hb-engines-json PATH] also write the dense-versus-worklist
                   closure-engine comparison (per application and
                   engine: edges, passes, word ORs, wall time);
   - [--streaming-json PATH] also write the streaming engine's
                   throughput and memory profile (schema
                   droidracer-streaming/1; the CI streaming gate
                   archives it);
   - [--corpus-json PATH] also write the codec + corpus-sweep record
                   (schema droidracer-corpus-bench/1: text vs binary
                   sizes and events/sec, race-table equality, apps/hour
                   and peak worker RSS; the CI corpus gate archives it
                   as BENCH_corpus.json);
   - [--predict-json PATH] also write the predictive-engine record
                   (schema droidracer-predict-bench/1: candidate pairs
                   per second, masked-race recall, reordering-only
                   races versus the streaming engine; the CI predict
                   gate archives it as BENCH_predict.json);
   - [--service-json PATH] also write the droidracerd load-generator
                   record (schema droidracer-service-bench/1: p50/p99
                   latency and traces/sec at 8 concurrent clients; the
                   CI service gate archives it as BENCH_service.json);
   - [--trace-out PATH]   enable telemetry and write a Chrome
                   trace_event JSON of the whole run (one track per
                   analysis domain; chrome://tracing / Perfetto);
   - [--metrics-out PATH] enable telemetry and write the counters,
                   histograms and per-domain statistics as JSON. *)

module Trace = Droidracer_trace.Trace
module Trace_io = Droidracer_trace.Trace_io
module Binfmt = Droidracer_trace.Binfmt
module Wellformed = Droidracer_trace.Wellformed
module Graph = Droidracer_core.Graph
module Happens_before = Droidracer_core.Happens_before
module Detector = Droidracer_core.Detector
module Clock_engine = Droidracer_core.Clock_engine
module Streaming_engine = Droidracer_core.Streaming_engine
module Par_pool = Droidracer_core.Par_pool
module Longtrace = Droidracer_corpus.Longtrace
module Predict = Droidracer_predict.Predict
module Vargen = Droidracer_corpus.Vargen
module Runtime = Droidracer_appmodel.Runtime
module Music_player = Droidracer_corpus.Music_player
module Catalog = Droidracer_corpus.Catalog
module Synthetic = Droidracer_corpus.Synthetic
module Experiments = Droidracer_report.Experiments
module Supervisor = Droidracer_report.Supervisor
module Table = Droidracer_report.Table
module Obs = Droidracer_obs.Obs
module Swire = Droidracer_service.Wire
module Server = Droidracer_service.Server
module Sclient = Droidracer_service.Client
module Loadgen = Droidracer_service.Loadgen

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

(* {1 Command line} *)

type options =
  { quick : bool
  ; jobs : int
  ; json : string option
  ; hb_engines_json : string option
  ; streaming_json : string option
  ; trace_out : string option
  ; metrics_out : string option
  ; series_out : string option
  ; baseline : string option
  ; corpus_json : string option
  ; predict_json : string option
  ; service_json : string option
  }

let usage () =
  prerr_endline
    "usage: bench [--quick] [--jobs N] [--json PATH] [--hb-engines-json PATH] \
     [--streaming-json PATH] [--corpus-json PATH] [--predict-json PATH] \
     [--service-json PATH] [--trace-out PATH] [--metrics-out PATH] \
     [--series-out PATH] [--baseline PATH]";
  exit 2

let parse_options () =
  let rec go i acc =
    if i >= Array.length Sys.argv then acc
    else
      match Sys.argv.(i) with
      | "--quick" -> go (i + 1) { acc with quick = true }
      | "--jobs" | "-j" when i + 1 < Array.length Sys.argv ->
        (match int_of_string_opt Sys.argv.(i + 1) with
         | Some jobs when jobs >= 1 -> go (i + 2) { acc with jobs }
         | Some _ | None -> usage ())
      | "--json" when i + 1 < Array.length Sys.argv ->
        go (i + 2) { acc with json = Some Sys.argv.(i + 1) }
      | "--hb-engines-json" when i + 1 < Array.length Sys.argv ->
        go (i + 2) { acc with hb_engines_json = Some Sys.argv.(i + 1) }
      | "--streaming-json" when i + 1 < Array.length Sys.argv ->
        go (i + 2) { acc with streaming_json = Some Sys.argv.(i + 1) }
      | "--trace-out" when i + 1 < Array.length Sys.argv ->
        go (i + 2) { acc with trace_out = Some Sys.argv.(i + 1) }
      | "--metrics-out" when i + 1 < Array.length Sys.argv ->
        go (i + 2) { acc with metrics_out = Some Sys.argv.(i + 1) }
      | "--series-out" when i + 1 < Array.length Sys.argv ->
        go (i + 2) { acc with series_out = Some Sys.argv.(i + 1) }
      | "--baseline" when i + 1 < Array.length Sys.argv ->
        go (i + 2) { acc with baseline = Some Sys.argv.(i + 1) }
      | "--corpus-json" when i + 1 < Array.length Sys.argv ->
        go (i + 2) { acc with corpus_json = Some Sys.argv.(i + 1) }
      | "--predict-json" when i + 1 < Array.length Sys.argv ->
        go (i + 2) { acc with predict_json = Some Sys.argv.(i + 1) }
      | "--service-json" when i + 1 < Array.length Sys.argv ->
        go (i + 2) { acc with service_json = Some Sys.argv.(i + 1) }
      | _ -> usage ()
  in
  go 1
    { quick = false
    ; jobs = Par_pool.default_jobs ()
    ; json = None
    ; hb_engines_json = None
    ; streaming_json = None
    ; trace_out = None
    ; metrics_out = None
    ; series_out = None
    ; baseline = None
    ; corpus_json = None
    ; predict_json = None
    ; service_json = None
    }

(* {1 Wall-clock stage timings}

   [Sys.time] reports CPU time summed over every domain, which
   misreports (often inverts) parallel speedups; stages are timed with
   the wall clock instead, and recorded for the JSON report. *)

let stages : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  let dt = Unix.gettimeofday () -. t0 in
  stages := (name, dt) :: !stages;
  (v, dt)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path opts (runs : Experiments.app_run list) =
  let oc =
    try open_out path
    with Sys_error msg ->
      Printf.eprintf "bench: cannot write --json file: %s\n" msg;
      exit 2
  in
  let out fmt = Printf.fprintf oc fmt in
  (* Self-describing, hostname-free metadata: enough to interpret the
     numbers of any BENCH_*.json in isolation, without identifying the
     machine that produced them. *)
  out "{\n  \"schema\": \"droidracer-bench/2\",\n";
  out "  \"jobs\": %d,\n" opts.jobs;
  out "  \"quick\": %b,\n" opts.quick;
  out "  \"corpus_apps\": %d,\n" (List.length runs);
  out "  \"metadata\": {\n";
  out "    \"ocaml_version\": \"%s\",\n" (json_escape Sys.ocaml_version);
  out "    \"word_size\": %d,\n" Sys.word_size;
  out "    \"recommended_domains\": %d,\n" (Par_pool.default_jobs ());
  out "    \"telemetry\": %b\n" (Obs.enabled ());
  out "  },\n";
  out "  \"stages\": [\n";
  let stages = List.rev !stages in
  List.iteri
    (fun i (name, dt) ->
       out "    {\"name\": \"%s\", \"wall_seconds\": %.6f}%s\n"
         (json_escape name) dt
         (if i = List.length stages - 1 then "" else ","))
    stages;
  out "  ],\n";
  out "  \"apps\": [\n";
  List.iteri
    (fun i run ->
       let r = run.Experiments.ar_report in
       let s = run.Experiments.ar_built.Synthetic.b_spec in
       out
         "    {\"name\": \"%s\", \"nodes\": %d, \"hb_edges\": %d, \
          \"passes\": %d, \"races\": %d, \"distinct_races\": %d, \
          \"analysis_wall_seconds\": %.6f, \"hb_wall_seconds\": %.6f, \
          \"detect_wall_seconds\": %.6f}%s\n"
         (json_escape s.Synthetic.s_name)
         r.Detector.nodes r.Detector.hb_edges r.Detector.fixpoint_passes
         (List.length r.Detector.all_races)
         (List.length r.Detector.distinct_races)
         r.Detector.elapsed_seconds
         (Detector.phase_seconds r "happens_before")
         (Detector.phase_seconds r "race_detect")
         (if i = List.length runs - 1 then "" else ","))
    runs;
  out "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* {1 Baseline comparison}

   Compares this run's stage wall times against a committed
   [BENCH_*.json] (schema droidracer-bench/2) and fails — exit 1 — when
   the total over the stages both runs share regresses by more than
   25%.  A baseline with no stages (the committed placeholder that
   starts a trajectory) passes trivially; an unreadable or malformed
   baseline is a usage error (exit 2), not a regression. *)

let regression_threshold = 1.25

(* Parsed before the bench runs, so a bad path fails in milliseconds
   rather than after the full suite. *)
let load_baseline path =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
         Printf.eprintf "bench: --baseline %s: %s\n" path msg;
         exit 2)
      fmt
  in
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error msg -> fail "%s" msg
  in
  let doc =
    match Json_parse.parse text with
    | Ok doc -> doc
    | Error msg -> fail "malformed JSON: %s" msg
  in
  match Option.bind (Json_parse.member "stages" doc) Json_parse.to_list with
  | None -> fail "no \"stages\" array"
  | Some entries ->
    List.filter_map
      (fun entry ->
         match
           ( Option.bind (Json_parse.member "name" entry)
               Json_parse.to_string
           , Option.bind (Json_parse.member "wall_seconds" entry)
               Json_parse.to_number )
         with
         | Some name, Some dt -> Some (name, dt)
         | _ -> fail "stage entry without name/wall_seconds")
      entries

let compare_baseline (path, baseline_stages) =
  section "Baseline comparison";
  if baseline_stages = [] then
    Printf.printf
      "baseline %s has no stages yet: recording the first trajectory point, \
       nothing to compare.\n"
      path
  else begin
    let current = List.rev !stages in
    let shared =
      List.filter_map
        (fun (name, base_dt) ->
           Option.map
             (fun (_, cur_dt) -> (name, base_dt, cur_dt))
             (List.find_opt (fun (n, _) -> n = name) current))
        baseline_stages
    in
    if shared = [] then
      Printf.printf
        "baseline %s shares no stage names with this run: nothing to \
         compare.\n"
        path
    else begin
      (* Cells carry their units ("0.123 s", "1.04x") so bench/scrub.sh
         strips them and the determinism diff survives real baselines. *)
      let table =
        Table.create ~title:"Stage wall times vs baseline"
          ~columns:[ "stage"; "baseline"; "current"; "ratio" ]
      in
      List.iter
        (fun (name, base_dt, cur_dt) ->
           Table.add_row table
             [ name
             ; Printf.sprintf "%.3f s" base_dt
             ; Printf.sprintf "%.3f s" cur_dt
             ; Printf.sprintf "%.2fx" (cur_dt /. Float.max 1e-9 base_dt)
             ])
        shared;
      Table.print table;
      let total (f : string * float * float -> float) =
        List.fold_left (fun acc x -> acc +. f x) 0.0 shared
      in
      let base_total = total (fun (_, b, _) -> b) in
      let cur_total = total (fun (_, _, c) -> c) in
      let ratio = cur_total /. Float.max 1e-9 base_total in
      Printf.printf
        "\ntotal over %d shared stage(s): baseline %.3fs, current %.3fs \
         (%.2fx, threshold %.2fx)\n"
        (List.length shared) base_total cur_total ratio regression_threshold;
      if ratio > regression_threshold then begin
        Printf.eprintf
          "bench: wall-clock regression: %.2fx > %.2fx against %s\n"
          ratio regression_threshold path;
        exit 1
      end
      else Printf.printf "baseline check passed.\n"
    end
  end

(* {1 Closure-engine comparison}

   Re-analyses every corpus trace with each happens-before closure
   engine.  The inner analyses run at jobs=1 — both engines are
   jobs-independent, and sequential timings make the wall-time columns
   comparable — while the (app × engine) grid itself is spread over the
   pool. *)

type engine_run =
  { er_app : string
  ; er_engine : Happens_before.closure_engine
  ; er_report : Detector.report
  }

let engine_comparison ~jobs (runs : Experiments.app_run list) =
  let tasks =
    List.concat_map
      (fun run ->
         List.map
           (fun engine -> (run, engine))
           [ Happens_before.Dense; Happens_before.Worklist ])
      runs
  in
  Par_pool.parallel_map ~jobs
    (fun (run, engine) ->
       let config =
         { Detector.default_config with
           hb = { Detector.default_config.hb with closure = engine }
         }
       in
       { er_app = run.Experiments.ar_built.Synthetic.b_spec.Synthetic.s_name
       ; er_engine = engine
       ; er_report =
           Detector.analyze ~config ~jobs:1
             run.Experiments.ar_result.Runtime.observed
       })
    tasks

let hb_engine_table (eruns : engine_run list) =
  let table =
    Table.create ~title:"Closure engines: dense vs worklist (jobs=1)"
      ~columns:
        [ "application"
        ; "hb pairs"
        ; "passes d/w"
        ; "word ORs dense"
        ; "word ORs worklist"
        ; "hb dense"
        ; "hb worklist"
        ; "speedup"
        ; "races"
        ]
  in
  let rec go = function
    | [] -> ()
    | d :: w :: rest when d.er_app = w.er_app ->
      let rd = d.er_report and rw = w.er_report in
      let hd = Detector.phase_seconds rd "happens_before"
      and hw = Detector.phase_seconds rw "happens_before" in
      let agree =
        rd.Detector.hb_edges = rw.Detector.hb_edges
        && List.length rd.Detector.all_races
           = List.length rw.Detector.all_races
        && List.length rd.Detector.distinct_races
           = List.length rw.Detector.distinct_races
      in
      Table.add_row table
        [ d.er_app
        ; string_of_int rd.Detector.hb_edges
        ; Printf.sprintf "%d/%d" rd.Detector.fixpoint_passes
            rw.Detector.fixpoint_passes
        ; string_of_int rd.Detector.hb_word_ors
        ; string_of_int rw.Detector.hb_word_ors
        ; Printf.sprintf "%.3fs" hd
        ; Printf.sprintf "%.3fs" hw
        ; (if hw > 0. then Printf.sprintf "%.1fx" (hd /. hw) else "n/a")
        ; Printf.sprintf "%d%s"
            (List.length rd.Detector.all_races)
            (if agree then "" else " MISMATCH")
        ];
      go rest
    | _ :: _ ->
      (* engine_comparison emits a dense/worklist pair per application *)
      assert false
  in
  go eruns;
  table

let write_hb_engines_json path (eruns : engine_run list) =
  let oc =
    try open_out path
    with Sys_error msg ->
      Printf.eprintf "bench: cannot write --hb-engines-json file: %s\n" msg;
      exit 2
  in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"schema\": \"droidracer-hb-engines/1\",\n";
  out "  \"apps\": [\n";
  let engine_fields r =
    Printf.sprintf
      "{\"hb_edges\": %d, \"passes\": %d, \"word_ors\": %d, \
       \"rows_requeued\": %d, \"hb_wall_seconds\": %.6f, \"races\": %d, \
       \"distinct_races\": %d}"
      r.Detector.hb_edges r.Detector.fixpoint_passes r.Detector.hb_word_ors
      r.Detector.hb_rows_requeued
      (Detector.phase_seconds r "happens_before")
      (List.length r.Detector.all_races)
      (List.length r.Detector.distinct_races)
  in
  let rec go = function
    | [] -> ()
    | d :: w :: rest when d.er_app = w.er_app ->
      out "    {\"name\": \"%s\",\n" (json_escape d.er_app);
      out "     \"dense\": %s,\n" (engine_fields d.er_report);
      out "     \"worklist\": %s}%s\n"
        (engine_fields w.er_report)
        (if rest = [] then "" else ",");
      go rest
    | _ :: _ -> assert false
  in
  go eruns;
  out "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* {1 Binary codec + corpus sweep}

   Two measurements around the binary trace codec.  Codec: the same
   generated trace written in both formats, then re-read through the
   format-sniffing streaming reader — on-disk size and events/sec, text
   vs binary, plus a race-table equality check (the streaming engine
   over both files must report identical races).  Corpus: a directory
   of generated binary app variants swept by the process-isolated
   supervisor — apps/hour and the peak worker RSS from the [proc]
   histogram.

   Like [supervision_overhead], this stage forks workers, so it must
   run before the process's first domain-parallel computation. *)

type corpus_bench =
  { cb_events : int
  ; cb_text_bytes : int
  ; cb_binary_bytes : int
  ; cb_text_parse_dt : float
  ; cb_binary_decode_dt : float
  ; cb_tables_identical : bool
  ; cb_variants : int
  ; cb_completed : int
  ; cb_failed : int
  ; cb_sweep_dt : float
  ; cb_peak_worker_rss_kb : float
  }

let count_events path =
  match Trace_io.fold_events path ~init:0 ~f:(fun n ~line:_ _ -> n + 1) with
  | Ok n -> n
  | Error e ->
    Printf.eprintf "bench: %s: %s\n" path (Trace_io.read_error_message e);
    exit 1

let races_of_file path =
  match Streaming_engine.detect_file path with
  | Ok (races, _) -> races
  | Error e ->
    Printf.eprintf "bench: %s: %s\n" path (Trace_io.read_error_message e);
    exit 1

let with_temp_dir f =
  let dir = Filename.temp_file "droidracer_bench" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun name -> Sys.remove (Filename.concat dir name))
           (Sys.readdir dir);
         Sys.rmdir dir
       with Sys_error _ -> ()))
    (fun () -> f dir)

(* {1 The serving layer: droidracerd under load}

   Forks droidracerd with a fleet of workers and drives it with the
   load generator: 8 forked client processes submitting the catalog's
   traces concurrently over the daemon's unix socket.  The stage fails
   if any request is lost or the daemon does not drain cleanly on
   SIGTERM.  Daemon, workers and clients are all forked processes, so
   this must run before the process's first domain spawn — i.e. first
   of all the stages. *)

let service_stage ~quick ~jobs ~clients =
  with_temp_dir @@ fun dir ->
  let specs = if quick then Catalog.open_source else Catalog.all in
  let traces =
    List.map
      (fun spec ->
         let built = Synthetic.build spec in
         let result =
           Runtime.run ~options:built.Synthetic.b_options
             built.Synthetic.b_app built.Synthetic.b_events
         in
         let path = Filename.concat dir (spec.Synthetic.s_name ^ ".drt") in
         Binfmt.save path result.Runtime.observed;
         (spec.Synthetic.s_name, In_channel.with_open_bin path In_channel.input_all))
      specs
    |> Array.of_list
  in
  let endpoint = Swire.Unix_socket (Filename.concat dir "d.sock") in
  let config =
    { (Server.default_config endpoint) with
      Server.workers = min 4 (max 2 jobs)
    ; queue_capacity = 32
    ; spool_dir = Filename.concat dir "spool"
    ; journal_path = Some (Filename.concat dir "journal.bin")
    }
  in
  let daemon =
    match Unix.fork () with
    | 0 ->
      (try
         let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
         Unix.dup2 devnull Unix.stderr;
         Unix.close devnull
       with Unix.Unix_error _ -> ());
      (try Server.run config with _ -> ());
      Unix._exit 0
    | pid -> pid
  in
  let rec wait_ready deadline =
    match Sclient.once endpoint Swire.Health with
    | Ok json when Swire.response_status json = "ok" -> ()
    | _ when Unix.gettimeofday () < deadline ->
      Unix.sleepf 0.05;
      wait_ready deadline
    | _ ->
      Printf.eprintf "bench: droidracerd never became ready\n";
      exit 1
  in
  wait_ready (Unix.gettimeofday () +. 15.0);
  let requests = if quick then 6 else 12 in
  let stats, _ =
    timed "service_loadgen" (fun () ->
      Loadgen.run ~endpoint ~clients ~requests ~traces
        ~deadline_seconds:120.0 ~tag:"bench" ())
  in
  print_endline (Loadgen.human_summary stats);
  (try Unix.kill daemon Sys.sigterm with Unix.Unix_error _ -> ());
  let drained =
    match Unix.waitpid [] daemon with
    | _, Unix.WEXITED 0 -> true
    | _, _ -> false
  in
  Printf.printf
    "daemon: %d workers over %d traces; drained cleanly on SIGTERM: %b\n"
    config.Server.workers (Array.length traces) drained;
  if (not drained) || Loadgen.lost stats > 0 then begin
    Printf.eprintf "bench: the serving layer lost requests or failed to drain\n";
    exit 1
  end;
  stats

let corpus_codec_stage ~quick ~jobs =
  with_temp_dir @@ fun dir ->
  let events = if quick then 200_000 else 1_000_000 in
  let text_path = Filename.concat dir "big.trace" in
  let bin_path = Filename.concat dir "big.drt" in
  let nt, text_write_dt =
    timed "codec_text_write" (fun () -> Longtrace.write ~events text_path)
  in
  let nb, bin_write_dt =
    timed "codec_binary_write" (fun () ->
      Longtrace.write_binary ~events bin_path)
  in
  assert (nt = events && nb = events);
  let text_bytes = (Unix.stat text_path).Unix.st_size in
  let bin_bytes = (Unix.stat bin_path).Unix.st_size in
  let n_text, text_parse_dt =
    timed "codec_text_parse" (fun () -> count_events text_path)
  in
  let n_bin, bin_decode_dt =
    timed "codec_binary_decode" (fun () -> count_events bin_path)
  in
  assert (n_text = events && n_bin = events);
  let text_races, _ =
    timed "codec_races_text" (fun () -> races_of_file text_path)
  in
  let bin_races, _ =
    timed "codec_races_binary" (fun () -> races_of_file bin_path)
  in
  let identical = text_races = bin_races in
  let mev dt = float_of_int events /. 1e6 /. Float.max 1e-9 dt in
  let table =
    Table.create
      ~title:(Printf.sprintf "Trace codec (%d generated events)" events)
      ~columns:[ "format"; "bytes"; "write"; "read"; "read rate"; "races" ]
  in
  Table.add_row table
    [ "text"
    ; string_of_int text_bytes
    ; Printf.sprintf "%.3fs" text_write_dt
    ; Printf.sprintf "%.3fs" text_parse_dt
    ; Printf.sprintf "%.1f Mev/s" (mev text_parse_dt)
    ; string_of_int (List.length text_races)
    ];
  Table.add_row table
    [ "binary"
    ; string_of_int bin_bytes
    ; Printf.sprintf "%.3fs" bin_write_dt
    ; Printf.sprintf "%.3fs" bin_decode_dt
    ; Printf.sprintf "%.1f Mev/s" (mev bin_decode_dt)
    ; string_of_int (List.length bin_races)
    ];
  Table.print table;
  Printf.printf
    "binary is %.1fx smaller on disk, decodes %.1fx faster; race tables \
     identical: %b\n"
    (float_of_int text_bytes /. Float.max 1.0 (float_of_int bin_bytes))
    (text_parse_dt /. Float.max 1e-9 bin_decode_dt)
    identical;
  if not identical then exit 1;
  (* The corpus sweep: binary variants through the isolated supervisor.
     Telemetry is turned on for the sweep (if it was off) so the worker
     RSS histogram is populated, and restored afterwards. *)
  let n_variants = if quick then 12 else 40 in
  let variants =
    Vargen.variants ~seed:11 ~events:(if quick then 1_200 else 2_500)
      ~count:n_variants ()
  in
  let paths = List.map (Vargen.write ~dir ~binary:true) variants in
  let was_enabled = Obs.enabled () in
  if not was_enabled then Obs.enable ();
  let outcomes, sweep_dt =
    timed "codec_corpus_sweep" (fun () ->
      Supervisor.run_files ~jobs
        ~budget:{ Supervisor.timeout_seconds = Some 120.0; max_events = None }
        ~mode:(Supervisor.Isolated { max_mem_mib = None })
        paths)
  in
  let peak_rss =
    let snap = Obs.snapshot () in
    match List.assoc_opt "proc.worker_rss_peak_kb" snap.Obs.histograms with
    | Some h -> h.Obs.h_max
    | None -> 0.0
  in
  if not was_enabled then Obs.disable ();
  let completed = List.length (Supervisor.file_completed outcomes) in
  let failed = List.length (Supervisor.file_failures outcomes) in
  Printf.printf
    "swept %d binary variants in %.3fs wall (%d jobs): %d completed, %d \
     failed, %.1f apps/hour, peak worker RSS %d KiB\n"
    n_variants sweep_dt jobs completed failed
    (float_of_int completed /. Float.max 1e-9 sweep_dt *. 3600.0)
    (int_of_float peak_rss);
  if failed > 0 then exit 1;
  { cb_events = events
  ; cb_text_bytes = text_bytes
  ; cb_binary_bytes = bin_bytes
  ; cb_text_parse_dt = text_parse_dt
  ; cb_binary_decode_dt = bin_decode_dt
  ; cb_tables_identical = identical
  ; cb_variants = n_variants
  ; cb_completed = completed
  ; cb_failed = failed
  ; cb_sweep_dt = sweep_dt
  ; cb_peak_worker_rss_kb = peak_rss
  }

let write_corpus_json path opts (cb : corpus_bench) =
  let oc = Out_channel.open_text path in
  let out fmt = Printf.fprintf oc fmt in
  let rate dt = float_of_int cb.cb_events /. Float.max 1e-9 dt in
  out "{\n";
  out "  \"schema\": \"droidracer-corpus-bench/1\",\n";
  out "  \"quick\": %b,\n" opts.quick;
  out "  \"jobs\": %d,\n" opts.jobs;
  out "  \"events\": %d,\n" cb.cb_events;
  out "  \"text_bytes\": %d,\n" cb.cb_text_bytes;
  out "  \"binary_bytes\": %d,\n" cb.cb_binary_bytes;
  out "  \"size_ratio\": %.3f,\n"
    (float_of_int cb.cb_text_bytes
     /. Float.max 1.0 (float_of_int cb.cb_binary_bytes));
  out "  \"text_parse_events_per_sec\": %.1f,\n" (rate cb.cb_text_parse_dt);
  out "  \"binary_decode_events_per_sec\": %.1f,\n"
    (rate cb.cb_binary_decode_dt);
  out "  \"decode_speedup\": %.3f,\n"
    (cb.cb_text_parse_dt /. Float.max 1e-9 cb.cb_binary_decode_dt);
  out "  \"race_tables_identical\": %b,\n" cb.cb_tables_identical;
  out "  \"corpus\": {\"variants\": %d, \"completed\": %d, \"failed\": %d, \
       \"wall_seconds\": %.3f, \"apps_per_hour\": %.1f, \
       \"peak_worker_rss_kb\": %.0f},\n"
    cb.cb_variants cb.cb_completed cb.cb_failed cb.cb_sweep_dt
    (float_of_int cb.cb_completed /. Float.max 1e-9 cb.cb_sweep_dt *. 3600.0)
    cb.cb_peak_worker_rss_kb;
  out "  \"stages\": [\n";
  let codec_stages =
    List.filter
      (fun (name, _) -> String.length name >= 6 && String.sub name 0 6 = "codec_")
      (List.rev !stages)
  in
  List.iteri
    (fun i (name, dt) ->
       out "    {\"name\": \"%s\", \"wall_seconds\": %.6f}%s\n"
         (json_escape name) dt
         (if i = List.length codec_stages - 1 then "" else ","))
    codec_stages;
  out "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* {1 Supervision overhead}

   The same two applications swept under process isolation (forked
   workers, Marshal pipes, hard SIGKILL deadlines) and under the
   cooperative supervisor (in-process domains): the difference is the
   price of crash containment.  The two smallest open-source
   applications keep the stage cheap; row counts are deterministic,
   only the wall times vary.

   This stage must run first, and the isolated sweep must run before
   the cooperative one: the OCaml 5 runtime refuses [Unix.fork] once
   any domain has ever been spawned, so process isolation only works
   before the process's first domain-parallel computation. *)

let supervision_overhead ~jobs =
  let specs =
    match Catalog.open_source with
    | a :: b :: _ -> [ a; b ]
    | specs -> specs
  in
  let budget =
    { Supervisor.timeout_seconds = Some 120.0; max_events = None }
  in
  let sweep mode = Supervisor.run_catalog ~jobs ~specs ~budget ~mode () in
  let iso, iso_dt =
    timed "supervised_isolated" (fun () ->
      sweep (Supervisor.Isolated { max_mem_mib = None }))
  in
  let coop, coop_dt =
    timed "supervised_cooperative" (fun () -> sweep Supervisor.Cooperative)
  in
  let table =
    Table.create ~title:"Supervision overhead (two smallest open-source apps)"
      ~columns:[ "mode"; "completed"; "failed"; "wall"; "overhead" ]
  in
  let row name outcomes dt rel =
    Table.add_row table
      [ name
      ; string_of_int (List.length (Supervisor.completed outcomes))
      ; string_of_int (List.length (Supervisor.failures outcomes))
      ; Printf.sprintf "%.3fs" dt
      ; rel
      ]
  in
  row "cooperative (domains)" coop coop_dt "1.0x";
  row "isolated (forked workers)" iso iso_dt
    (if coop_dt > 0. then Printf.sprintf "%.1fx" (iso_dt /. coop_dt)
     else "n/a");
  Table.print table

(* {1 Streaming engine}

   Two measurements.  Agreement-and-cost: the streaming engine against
   the batch worklist engine on a generated trace small enough for both
   to hold (streaming races must be a subset — on this lock-free
   workload, the same races).  Throughput: the streaming engine alone
   over a larger trace streamed from disk, which is the regime the
   batch engines cannot enter; the stats go to BENCH_streaming.json. *)

let streaming_stage ~quick ~streaming_json =
  let small_events = if quick then 10_000 else 20_000 in
  let rev_events = ref [] in
  let n =
    Longtrace.generate ~events:small_events (fun e ->
      rev_events := e :: !rev_events)
  in
  assert (n = small_events);
  let trace = Trace.remove_cancelled (Trace.of_events_exn (List.rev !rev_events)) in
  let worklist_config =
    { Detector.default_config with
      hb = { Happens_before.default with closure = Happens_before.Worklist }
    }
  in
  let batch_report, batch_dt =
    timed "streaming_vs_worklist_batch" (fun () ->
      Detector.analyze ~config:worklist_config trace)
  in
  let (stream_races, _small_stats), stream_dt =
    timed "streaming_vs_worklist_stream" (fun () ->
      Streaming_engine.detect trace)
  in
  let batch_races =
    List.map (fun c -> c.Detector.race) batch_report.Detector.all_races
  in
  let pair (r : Droidracer_core.Race.t) =
    (r.Droidracer_core.Race.first.Droidracer_core.Race.position,
     r.Droidracer_core.Race.second.Droidracer_core.Race.position)
  in
  let batch_pairs = List.map pair batch_races in
  let subset =
    List.for_all (fun r -> List.mem (pair r) batch_pairs) stream_races
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "Streaming vs worklist (%d generated events)"
           small_events)
      ~columns:[ "engine"; "races"; "wall"; "relative" ]
  in
  Table.add_row table
    [ "worklist (batch)"
    ; string_of_int (List.length batch_races)
    ; Printf.sprintf "%.3fs" batch_dt
    ; "1.0x"
    ];
  Table.add_row table
    [ "streaming (single pass)"
    ; string_of_int (List.length stream_races)
    ; Printf.sprintf "%.3fs" stream_dt
    ; (if batch_dt > 0. then Printf.sprintf "%.1fx" (stream_dt /. batch_dt)
       else "n/a")
    ];
  Table.print table;
  Printf.printf "streaming races are a subset of worklist races: %b\n" subset;
  if not subset then exit 1;
  let big_events = if quick then 50_000 else 200_000 in
  let path = Filename.temp_file "droidracer_bench" ".trace" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let written = Longtrace.write ~events:big_events path in
  let result, detect_dt =
    timed "streaming_throughput" (fun () -> Streaming_engine.detect_file path)
  in
  match result with
  | Error e ->
    Printf.eprintf "bench: streaming read failed: %s\n"
      (Droidracer_trace.Trace_io.read_error_message e);
    exit 1
  | Ok (races, stats) ->
    Printf.printf
      "streamed %d events in %.3fs wall (%.1f kev/s), %d race(s), peak %d \
       live slots / %d clock entries\n"
      written detect_dt
      (float_of_int written /. 1e3 /. Float.max 1e-9 detect_dt)
      (List.length races) stats.Streaming_engine.peak_live_slots
      stats.Streaming_engine.peak_clock_entries;
    Option.iter
      (fun out ->
         let oc = Out_channel.open_text out in
         Out_channel.output_string oc
           (Streaming_engine.stats_json_string ~label:"longtrace"
              ~elapsed_seconds:detect_dt
              ~peak_rss_kb:(Obs.peak_rss_kb ())
              stats);
         Out_channel.close oc;
         Printf.printf "wrote %s\n" out)
      streaming_json

(* {1 Predictive engine}

   The predictive engine swept over lock-masked Longtrace corpora:
   each config plants [masked] races that the observed schedule hides
   behind a LOCK edge, so the batch and streaming engines report none
   of them and the predictive engine must recover every one by
   reordering.  Reported per size: candidate pairs per second,
   reordering-only races versus the streaming engine's count, and
   masked-race recall (the stage fails if any masked race is missed —
   the same claim the CI predict gate makes on the variant corpus). *)

type predict_row =
  { pb_events : int
  ; pb_candidates : int
  ; pb_feasible : int
  ; pb_extra : int
  ; pb_streaming_races : int
  ; pb_masked : int
  ; pb_masked_found : int
  ; pb_dt : float
  }

let predict_stage ~quick ~jobs =
  let sizes = if quick then [ 800; 1_600 ] else [ 800; 1_600; 3_200 ] in
  let config =
    { Longtrace.default_config with
      planted = 2
    ; masked = 2
    ; loopers = 3
    ; seed = 11
    }
  in
  let masked = Longtrace.masked_locations config in
  let rows =
    List.map
      (fun events ->
         let rev_events = ref [] in
         let n =
           Longtrace.generate ~config ~events (fun e ->
             rev_events := e :: !rev_events)
         in
         assert (n = events);
         let trace =
           Trace.remove_cancelled (Trace.of_events_exn (List.rev !rev_events))
         in
         let stream_races, _ = Streaming_engine.detect trace in
         let report, dt =
           timed (Printf.sprintf "predict_%d" events) (fun () ->
             Predict.analyze ~jobs trace)
         in
         let extras = Predict.extra_locations report in
         let found = List.filter (fun l -> List.mem l extras) masked in
         { pb_events = events
         ; pb_candidates = report.Predict.candidates
         ; pb_feasible = report.Predict.feasible
         ; pb_extra = report.Predict.extra
         ; pb_streaming_races = List.length stream_races
         ; pb_masked = List.length masked
         ; pb_masked_found = List.length found
         ; pb_dt = dt
         })
      sizes
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Predictive engine over lock-masked corpora (%d jobs)" jobs)
      ~columns:
        [ "events"
        ; "candidates"
        ; "feasible"
        ; "streaming"
        ; "extra"
        ; "masked recall"
        ; "wall"
        ; "pairs/s"
        ]
  in
  List.iter
    (fun r ->
       Table.add_row table
         [ string_of_int r.pb_events
         ; string_of_int r.pb_candidates
         ; string_of_int r.pb_feasible
         ; string_of_int r.pb_streaming_races
         ; string_of_int r.pb_extra
         ; Printf.sprintf "%d/%d" r.pb_masked_found r.pb_masked
         ; Printf.sprintf "%.3fs" r.pb_dt
         ; Printf.sprintf "%.0f"
             (float_of_int r.pb_candidates /. Float.max 1e-9 r.pb_dt)
         ])
    rows;
  Table.print table;
  let missed =
    List.filter (fun r -> r.pb_masked_found < r.pb_masked) rows
  in
  if missed <> [] then begin
    List.iter
      (fun r ->
         Printf.eprintf
           "bench: predictive engine missed %d/%d masked race(s) at %d \
            events\n"
           (r.pb_masked - r.pb_masked_found) r.pb_masked r.pb_events)
      missed;
    exit 1
  end;
  Printf.printf
    "every masked race invisible to the streaming engine was recovered by \
     reordering\n";
  rows

let write_predict_json path opts rows =
  let oc = Out_channel.open_text path in
  let out fmt = Printf.fprintf oc fmt in
  let candidates = List.fold_left (fun a r -> a + r.pb_candidates) 0 rows in
  let wall = List.fold_left (fun a r -> a +. r.pb_dt) 0.0 rows in
  let masked = List.fold_left (fun a r -> a + r.pb_masked) 0 rows in
  let found = List.fold_left (fun a r -> a + r.pb_masked_found) 0 rows in
  let extra = List.fold_left (fun a r -> a + r.pb_extra) 0 rows in
  out "{\n";
  out "  \"schema\": \"droidracer-predict-bench/1\",\n";
  out "  \"quick\": %b,\n" opts.quick;
  out "  \"jobs\": %d,\n" opts.jobs;
  out "  \"candidate_pairs\": %d,\n" candidates;
  out "  \"pairs_per_sec\": %.1f,\n"
    (float_of_int candidates /. Float.max 1e-9 wall);
  out "  \"extra_races\": %d,\n" extra;
  out "  \"masked_planted\": %d,\n" masked;
  out "  \"masked_found\": %d,\n" found;
  out "  \"masked_recall\": %.3f,\n"
    (float_of_int found /. Float.max 1.0 (float_of_int masked));
  out "  \"rows\": [\n";
  List.iteri
    (fun i r ->
       out
         "    {\"events\": %d, \"candidates\": %d, \"feasible\": %d, \
          \"streaming_races\": %d, \"extra\": %d, \"masked\": %d, \
          \"masked_found\": %d, \"wall_seconds\": %.6f, \
          \"pairs_per_sec\": %.1f}%s\n"
         r.pb_events r.pb_candidates r.pb_feasible r.pb_streaming_races
         r.pb_extra r.pb_masked r.pb_masked_found r.pb_dt
         (float_of_int r.pb_candidates /. Float.max 1e-9 r.pb_dt)
         (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* {1 Bechamel micro-benchmarks} *)

let microbenchmarks (runs : Experiments.app_run list) =
  let open Bechamel in
  let small =
    match runs with
    | r :: _ -> r.Experiments.ar_result.Runtime.observed
    | [] -> assert false
  in
  let medium =
    match runs with
    | _ :: r :: _ -> r.Experiments.ar_result.Runtime.observed
    | [ r ] -> r.Experiments.ar_result.Runtime.observed
    | [] -> assert false
  in
  let tests =
    [ Test.make ~name:"table2: trace generation (music player, BACK)"
        (Staged.stage (fun () ->
           Runtime.run ~options:Music_player.options Music_player.app
             Music_player.back_scenario))
    ; Test.make ~name:"table3: full race detection (smallest corpus app)"
        (Staged.stage (fun () -> Detector.analyze small))
    ; Test.make ~name:"perf: happens-before, coalesced graph"
        (Staged.stage (fun () ->
           Happens_before.compute (Graph.build ~coalesce:true medium)))
    ; Test.make ~name:"perf: happens-before, uncoalesced graph"
        (Staged.stage (fun () ->
           Happens_before.compute (Graph.build ~coalesce:false small)))
    ; Test.make ~name:"engines: online vector-clock detection"
        (Staged.stage (fun () -> Clock_engine.detect medium))
    ; Test.make ~name:"ingest: wellformed admissibility check"
        (Staged.stage (fun () -> Wellformed.check medium))
    ]
  in
  let codec_events =
    let rev = ref [] in
    ignore (Longtrace.generate ~events:10_000 (fun e -> rev := e :: !rev));
    List.rev !rev
  in
  let encoded = Binfmt.encode_events_to_string codec_events in
  let tests =
    tests
    @ [ Test.make ~name:"codec: binary encode (10k generated events)"
          (Staged.stage (fun () ->
             Binfmt.encode_events_to_string codec_events))
      ; Test.make ~name:"codec: binary decode (10k generated events)"
          (Staged.stage (fun () -> Binfmt.decode_string encoded))
      ]
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:60 ~quota:(Time.second 0.6) () in
  let raw =
    Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"droidracer" tests)
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
       let ns =
         match Analyze.OLS.estimates est with
         | Some (v :: _) -> v
         | Some [] | None -> nan
       in
       rows := (name, ns) :: !rows)
    results;
  let table =
    Table.create ~title:"Bechamel micro-benchmarks (monotonic clock)"
      ~columns:[ "benchmark"; "time per run" ]
  in
  List.iter
    (fun (name, ns) ->
       let cell =
         if Float.is_nan ns then "n/a"
         else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
         else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
         else Printf.sprintf "%.2f us" (ns /. 1e3)
       in
       Table.add_row table [ name; cell ])
    (List.sort compare !rows);
  Table.print table

let () =
  let opts = parse_options () in
  let baseline =
    Option.map (fun path -> (path, load_baseline path)) opts.baseline
  in
  if opts.trace_out <> None || opts.metrics_out <> None
     || opts.series_out <> None
  then begin
    Obs.enable ();
    Obs.reset ();
    Obs.sample_resources ()
  end;
  let quick = opts.quick in
  let specs = if quick then Catalog.open_source else Catalog.all in
  section "DroidRacer reproduction: evaluation harness (PLDI 2014, Section 6)";
  Printf.printf
    "Corpus: %d applications%s; %d analysis domain(s); every table below \
     shows paper / measured.\n"
    (List.length specs)
    (if quick then " (open source only: --quick)" else "")
    opts.jobs;
  (* The forking stages come first by necessity: forked workers are
     only available before the first domain is spawned (see
     [supervision_overhead]). *)
  section "Serving layer: droidracerd under concurrent load";
  let service_stats = service_stage ~quick ~jobs:opts.jobs ~clients:8 in
  Option.iter
    (fun path ->
       Loadgen.write_json path service_stats;
       Printf.printf "wrote %s\n" path)
    opts.service_json;
  section "Binary trace codec + corpus sweep";
  let corpus_bench = corpus_codec_stage ~quick ~jobs:opts.jobs in
  (* Written as soon as it is measured, so the artefact survives a
     failure in a later stage. *)
  Option.iter
    (fun path -> write_corpus_json path opts corpus_bench)
    opts.corpus_json;
  section "Supervision overhead: isolated vs cooperative workers";
  supervision_overhead ~jobs:opts.jobs;
  section "Motivating example (Figures 1-4)";
  Table.print (Experiments.music_player_summary ());
  section "Figure 8: activity lifecycle";
  Table.print (Experiments.lifecycle_table ());
  section "Running the corpus";
  let runs, corpus_dt =
    timed "corpus_run_and_analysis" (fun () ->
      Experiments.run_catalog ~jobs:opts.jobs ~specs ())
  in
  Printf.printf "generated and analysed %d traces in %.1fs wall (%d jobs)\n"
    (List.length runs) corpus_dt opts.jobs;
  section "Ingest validation (the admissibility gate)";
  let rejected, validate_dt =
    timed "ingest_validation" (fun () ->
      List.filter
        (fun run ->
           match Wellformed.check run.Experiments.ar_result.Runtime.observed with
           | Ok _ -> false
           | Error e ->
             Printf.printf "REJECTED %s: %s\n"
               run.Experiments.ar_built.Synthetic.b_spec.Synthetic.s_name
               (Wellformed.error_message e);
             true)
        runs)
  in
  let total_events =
    List.fold_left
      (fun acc r -> acc + Trace.length r.Experiments.ar_result.Runtime.observed)
      0 runs
  in
  Printf.printf
    "validated %d events across %d traces in %.3fs wall (%.1f Mev/s), %d \
     rejected\n"
    total_events (List.length runs) validate_dt
    (float_of_int total_events /. 1e6 /. Float.max 1e-9 validate_dt)
    (List.length rejected);
  section "Table 2";
  Table.print (Experiments.table2 runs);
  section "Table 3";
  let (), verify_dt =
    timed "table3_verification" (fun () ->
      Table.print (Experiments.table3 ~verify:(not quick) runs))
  in
  Printf.printf
    "\n(race verification by schedule perturbation took %.1fs wall)\n"
    verify_dt;
  section "Performance (Section 6): coalescing and analysis cost";
  Table.print (Experiments.performance_table runs);
  section "Closure engines: dense vs worklist";
  let eruns, _ =
    timed "hb_engine_comparison" (fun () ->
      engine_comparison ~jobs:opts.jobs runs)
  in
  Table.print (hb_engine_table eruns);
  Option.iter (fun path -> write_hb_engines_json path eruns)
    opts.hb_engines_json;
  section "Streaming engine: bounded memory, single pass";
  streaming_stage ~quick ~streaming_json:opts.streaming_json;
  section "Predictive engine: reordering-only races";
  let predict_rows = predict_stage ~quick ~jobs:opts.jobs in
  Option.iter
    (fun path -> write_predict_json path opts predict_rows)
    opts.predict_json;
  section "Ablation: specialized happens-before relations";
  ignore (timed "baseline_ablation" (fun () ->
    Table.print (Experiments.baseline_table runs)));
  section "Ablation: graph engine vs vector-clock engine";
  ignore (timed "engine_ablation" (fun () ->
    Table.print (Experiments.engine_table runs)));
  section "Ablation: modelling the runtime environment (enables)";
  Table.print (Experiments.environment_model_table ());
  section "Extension: the deferred front-of-queue rule";
  Table.print (Experiments.front_rule_table runs);
  section "Extension: race coverage [24]";
  Table.print (Experiments.coverage_table runs);
  section "Micro-benchmarks";
  ignore (timed "microbenchmarks" (fun () -> microbenchmarks runs));
  print_newline ();
  Option.iter (fun path -> write_json path opts runs) opts.json;
  Option.iter
    (fun path ->
       Obs.write_chrome_trace path;
       Printf.printf "wrote %s\n" path)
    opts.trace_out;
  Option.iter
    (fun path ->
       Obs.write_metrics_json path;
       Printf.printf "wrote %s\n" path)
    opts.metrics_out;
  Option.iter
    (fun path ->
       Obs.write_series_json path;
       Printf.printf "wrote %s\n" path)
    opts.series_out;
  Option.iter compare_baseline baseline
