#!/usr/bin/env sh
# Normalise harness output for determinism diffs: strip every cell that
# legitimately varies between runs (wall-clock times, throughput rates,
# job counts), then collapse the whitespace and dash runs whose widths
# depend on the stripped digits.  Shared by the CI jobs that require two
# runs to match byte for byte (bench-smoke, chaos, streaming-gate); any
# new timing format printed by the harness belongs here, not inlined in
# a workflow.
#
# Usage: scrub.sh FILE...   (or on stdin with no arguments)
exec sed -E \
  -e 's/[0-9]+\.[0-9]+ ?(s|ms|us)\b/T/g' \
  -e 's/[0-9]+\.[0-9]+x\b/X/g' \
  -e 's/in [0-9.]+s wall/in T wall/' \
  -e 's/took [0-9.]+s wall/took T wall/' \
  -e 's/[0-9]+ analysis domain/N analysis domain/' \
  -e 's/\([0-9]+ jobs\)/(N jobs)/' \
  -e 's/[0-9.]+ Mev\/s/R Mev\/s/' \
  -e 's/[0-9.]+ kev\/s/R kev\/s/' \
  -e 's/[0-9.]+ apps\/hour/R apps\/hour/' \
  -e 's/[0-9]+ KiB/M KiB/' \
  -e 's/ +/ /g' \
  -e 's/-+/-/g' \
  -e 's/[[:space:]]+$//' \
  -e '/^wrote /d' \
  "$@"
