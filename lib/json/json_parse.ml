(* A minimal JSON parser, enough to validate the telemetry exporters by
   parsing their output back (no JSON library ships in the container).
   Accepts the full JSON grammar except surrogate-pair escapes, which
   the exporters never emit. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Fail of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char b '"'; advance ()
         | Some '\\' -> Buffer.add_char b '\\'; advance ()
         | Some '/' -> Buffer.add_char b '/'; advance ()
         | Some 'n' -> Buffer.add_char b '\n'; advance ()
         | Some 't' -> Buffer.add_char b '\t'; advance ()
         | Some 'r' -> Buffer.add_char b '\r'; advance ()
         | Some 'b' -> Buffer.add_char b '\b'; advance ()
         | Some 'f' -> Buffer.add_char b '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
            | Some code ->
              (* non-ASCII escapes: keep a placeholder, the validators
                 only compare ASCII content *)
              Buffer.add_string b (Printf.sprintf "\\u%04x" code)
            | None -> fail "bad \\u escape");
           pos := !pos + 4
         | Some c -> fail (Printf.sprintf "bad escape \\%c" c)
         | None -> fail "truncated escape");
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> numchar c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Object []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Object (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Array []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Array (elements [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Number (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

let member key = function
  | Object fields -> List.assoc_opt key fields
  | Null | Bool _ | Number _ | String _ | Array _ -> None

let to_list = function Array l -> Some l | _ -> None
let to_string = function String s -> Some s | _ -> None
let to_number = function Number f -> Some f | _ -> None
