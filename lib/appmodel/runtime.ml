open! Import
module Thread_id = Ident.Thread_id
module Task_id = Ident.Task_id
module Lock_id = Ident.Lock_id
module Location = Ident.Location

type ui_event =
  | Click of string
  | Back
  | Rotate
  | Intent of string

let ui_event_equal a b =
  match a, b with
  | Click e, Click e' | Intent e, Intent e' -> String.equal e e'
  | Back, Back | Rotate, Rotate -> true
  | (Click _ | Back | Rotate | Intent _), _ -> false

let pp_ui_event ppf = function
  | Click e -> Format.fprintf ppf "click(%s)" e
  | Back -> Format.pp_print_string ppf "BACK"
  | Rotate -> Format.pp_print_string ppf "rotate"
  | Intent a -> Format.fprintf ppf "intent(%s)" a

type policy =
  | Round_robin
  | Seeded of int
  | Scripted of int list

type options =
  { policy : policy
  ; log_native : bool
  ; compressed_lifecycle : bool
  ; binder_pool_size : int
  ; respect_delays : bool
  ; emit_enables : bool
  ; hold : string list
  ; max_steps : int
  }

let default_options =
  { policy = Round_robin
  ; log_native = false
  ; compressed_lifecycle = false
  ; binder_pool_size = 2
  ; respect_delays = true
  ; emit_enables = true
  ; hold = []
  ; max_steps = 2_000_000
  }

type run_result =
  { observed : Trace.t
  ; full : Trace.t
  ; thread_names : (Thread_id.t * string) list
  ; injected : ui_event list
  ; skipped : ui_event list
  ; enabled_at_end : ui_event list
  ; choice_arities : int list
  ; steps : int
  }

exception Stuck of string

let stuck fmt = Format.kasprintf (fun s -> raise (Stuck s)) fmt

(* Internal instructions: program statements plus runtime-introduced
   continuations. *)
type instr =
  | Prog of Program.stmt
  | Release_monitor of string
  | Async_fork of Program.async_spec
  | Async_finish  (** end of doInBackground: post onPostExecute *)

let instrs stmts = List.map (fun s -> Prog s) stmts

type async_ctx =
  { spec : Program.async_spec
  ; origin : Thread_id.t
  ; a_owner : int option  (** activity instance that started the task *)
  ; mutable published : int
  }

(* A blocked thread: [can_proceed] is polled by the scheduler and
   [proceed] performs the delayed action once it holds. *)
type waiting =
  { reason : string
  ; can_proceed : unit -> bool
  ; proceed : unit -> unit
  }

type thr =
  { tid : Thread_id.t
  ; thr_name : string
  ; is_native : bool
  ; has_queue : bool
  ; exits_when_done : bool
  ; mutable inited : bool
  ; mutable exited : bool
  ; mutable frames : instr list list
  ; mutable running : Task_id.t option
  ; mutable waiting : waiting option
  ; mutable actx : async_ctx option
  }

type task_info =
  { t_body : instr list
  ; t_owner : int option
  ; mutable t_hooks : (unit -> unit) list
  ; mutable t_posted : bool
  ; mutable t_begun : bool
  ; mutable t_cancelled : bool
  ; mutable t_delay : int option
  ; mutable t_post_step : int
  }

type act_inst =
  { program : Program.activity
  ; obj : int
  ; mutable astate : Lifecycle.activity_state
  ; ui_enabled : (string, Task_id.t) Hashtbl.t
  ; cb_enabled : (string, Task_id.t) Hashtbl.t
  }

type rt =
  { app : Program.app
  ; opts : options
  ; rng : Random.State.t option
  ; mutable script : int list
  ; mutable arities_rev : int list
  ; mutable rr_counter : int
  ; mutable sem : State.t
  ; mutable full_rev : Trace.event list
  ; mutable obs_rev : Trace.event list
  ; threads : (int, thr) Hashtbl.t
  ; mutable thread_list : thr list  (** in creation order *)
  ; mutable next_tid : int
  ; task_instances : (string, int) Hashtbl.t
  ; tasks : (string, task_info) Hashtbl.t
  ; mutable binder : Binder.t
  ; binder_queues : (int, (Task_id.t * Operation.post_flavour) Queue.t) Hashtbl.t
  ; mutable stack : act_inst list  (** top first *)
  ; all_activities : (int, act_inst) Hashtbl.t
  ; mutable next_obj : int
  ; flags : (string, unit) Hashtbl.t
  ; mutable clock : int
  ; mutable steps : int
  ; services_created : (string, bool) Hashtbl.t
  ; mutable pending_by_proc : (string * Task_id.t) list
  ; main : thr Lazy.t
  }

let main rt = Lazy.force rt.main
let thread_by_tid rt tid = Hashtbl.find rt.threads (Thread_id.to_int tid)

let thread_by_name rt name =
  List.find_opt (fun t -> String.equal t.thr_name name) rt.thread_list

(* One scheduling decision among [n] alternatives.  Every decision is
   logged so that the schedule explorer can enumerate the tree. *)
let choose rt n =
  if n <= 0 then invalid_arg "Runtime.choose";
  rt.arities_rev <- n :: rt.arities_rev;
  match rt.opts.policy with
  | Seeded _ ->
    (match rt.rng with
     | Some rng -> Random.State.int rng n
     | None -> 0)
  | Round_robin ->
    let i = rt.rr_counter mod n in
    rt.rr_counter <- rt.rr_counter + 1;
    i
  | Scripted _ ->
    (match rt.script with
     | [] -> 0
     | k :: rest ->
       rt.script <- rest;
       ((k mod n) + n) mod n)

(* {1 Emission} *)

let emit rt (thr : thr) op =
  let e = { Trace.thread = thr.tid; op } in
  (match Step.apply rt.sem e with
   | Ok s -> rt.sem <- s
   | Error kind ->
     stuck "interpreter bug: emitted illegal operation %a (%a)" Trace.pp_event e
       Step.pp_violation_kind kind);
  rt.full_rev <- e :: rt.full_rev;
  let observed =
    if thr.is_native && not rt.opts.log_native then
      (* only queue-side instrumentation sees the native thread *)
      (match op with
       | Operation.Post _ -> true
       | _ -> false)
    else
      (match op with
       | Operation.Enable _ -> rt.opts.emit_enables
       | Operation.Fork t' | Operation.Join t' ->
         rt.opts.log_native || not (thread_by_tid rt t').is_native
       | _ -> true)
  in
  if observed then rt.obs_rev <- e :: rt.obs_rev;
  rt.clock <- rt.clock + 1

(* {1 Tasks} *)

let fresh_task rt name =
  let n = Option.value (Hashtbl.find_opt rt.task_instances name) ~default:0 in
  Hashtbl.replace rt.task_instances name (n + 1);
  Task_id.make ~name ~instance:n

let register_task rt id ~body ~owner =
  Hashtbl.replace rt.tasks (Task_id.to_string id)
    { t_body = body
    ; t_owner = owner
    ; t_hooks = []
    ; t_posted = false
    ; t_begun = false
    ; t_cancelled = false
    ; t_delay = None
    ; t_post_step = 0
    }

let task_info rt id =
  match Hashtbl.find_opt rt.tasks (Task_id.to_string id) with
  | Some info -> info
  | None -> stuck "interpreter bug: unregistered task %a" Task_id.pp id

let add_hook rt id f =
  let info = task_info rt id in
  info.t_hooks <- info.t_hooks @ [ f ]

let do_post rt (thr : thr) id ~target ~flavour =
  let info = task_info rt id in
  info.t_posted <- true;
  info.t_post_step <- rt.clock;
  (info.t_delay <-
     (match flavour with
      | Operation.Delayed d -> Some d
      | Operation.Immediate | Operation.Front -> None));
  Obs.add "runtime.posts";
  emit rt thr (Operation.Post { task = id; target; flavour })

(* {1 Threads} *)

let new_thread rt ~name ~native ~queue ~body ~exits ~actx =
  let tid = Thread_id.make rt.next_tid in
  rt.next_tid <- rt.next_tid + 1;
  let thr =
    { tid
    ; thr_name = name
    ; is_native = native
    ; has_queue = queue
    ; exits_when_done = exits
    ; inited = false
    ; exited = false
    ; frames = (if queue then [] else [ body ])
    ; running = None
    ; waiting = None
    ; actx
    }
  in
  Hashtbl.replace rt.threads (Thread_id.to_int tid) thr;
  rt.thread_list <- rt.thread_list @ [ thr ];
  thr

(* {1 Binder transactions} *)

let binder_post rt id flavour =
  let btid, binder = Binder.next rt.binder in
  rt.binder <- binder;
  let q =
    match Hashtbl.find_opt rt.binder_queues (Thread_id.to_int btid) with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace rt.binder_queues (Thread_id.to_int btid) q;
      q
  in
  Queue.add (id, flavour) q

(* {1 Activities and enables} *)

let current_activity rt (thr : thr) =
  let by_obj obj = Hashtbl.find_opt rt.all_activities obj in
  let from_task =
    match thr.running with
    | Some id -> Option.bind (task_info rt id).t_owner by_obj
    | None -> None
  in
  let from_actx =
    match thr.actx with
    | Some a -> Option.bind a.a_owner by_obj
    | None -> None
  in
  match from_task, from_actx, rt.stack with
  | Some a, _, _ -> Some a
  | None, Some a, _ -> Some a
  | None, None, top :: _ -> Some top
  | None, None, [] -> None

let lifecycle_task_name (act : act_inst) cb_name =
  Printf.sprintf "%s_%d.%s" act.program.activity_name act.obj cb_name

(* Allocate, register and enable a lifecycle-callback instance; the
   enable is emitted by [thr] (the thread causally responsible). *)
let enable_cb rt (thr : thr) act cb_name ~body =
  let id = fresh_task rt (lifecycle_task_name act cb_name) in
  register_task rt id ~body ~owner:(Some act.obj);
  emit rt thr (Operation.Enable id);
  Hashtbl.replace act.cb_enabled cb_name id;
  id

let enable_ui_handler rt (thr : thr) act (h : Program.ui_handler) =
  if not (Hashtbl.mem act.ui_enabled h.event) then begin
    let id = fresh_task rt h.event in
    register_task rt id ~body:(instrs h.handler_body) ~owner:(Some act.obj);
    emit rt thr (Operation.Enable id);
    Hashtbl.replace act.ui_enabled h.event id
  end

(* Launch-completion bookkeeping: the activity reaches Running, its
   screen shows (UI handlers become enabled) and the runtime publishes
   the lifecycle callbacks that may now fire: onPause, and — since a
   launched activity "may get destroyed at any time" (Section 2.3,
   operation 9 of Figure 3) — onDestroy. *)
let on_screen_shown rt (thr : thr) act =
  act.astate <- Lifecycle.Running;
  List.iter
    (fun (h : Program.ui_handler) ->
       if h.initially_enabled then enable_ui_handler rt thr act h)
    act.program.ui;
  (* "the activity thus created may get destroyed at any time": the
     enable of operation 9 of Figure 3 *)
  ignore (enable_cb rt thr act "onDestroy" ~body:(instrs act.program.on_destroy))

(* The enabled instance of a callback if the runtime already published
   one, else enable it now from the initiating context — the way
   operation 21 of Figure 3 enables onPause inside the startActivity
   call. *)
let claim_cb rt (thr : thr) act cb_name ~body =
  match Hashtbl.find_opt act.cb_enabled cb_name with
  | Some id ->
    Hashtbl.remove act.cb_enabled cb_name;
    id
  | None ->
    let id = enable_cb rt thr act cb_name ~body in
    Hashtbl.remove act.cb_enabled cb_name;
    id

let new_activity_instance rt name =
  match Program.find_activity rt.app name with
  | None -> stuck "unknown activity %s" name
  | Some program ->
    let obj = rt.next_obj in
    rt.next_obj <- obj + 1;
    let inst =
      { program
      ; obj
      ; astate = Lifecycle.initial_activity_state
      ; ui_enabled = Hashtbl.create 4
      ; cb_enabled = Hashtbl.create 4
      }
    in
    Hashtbl.replace rt.all_activities obj inst;
    inst

(* Launch a fresh instance of an activity: enable + binder-post the
   LAUNCH_ACTIVITY task, whose body runs onCreate/onStart/onResume
   synchronously (Section 2.2, steps 6.1–6.3). *)
let launch_activity rt (thr : thr) name ~after =
  let act = new_activity_instance rt name in
  let body =
    instrs
      (act.program.on_create @ act.program.on_start @ act.program.on_resume)
  in
  let id = fresh_task rt (Printf.sprintf "LAUNCH_%s_%d" name act.obj) in
  register_task rt id ~body ~owner:(Some act.obj);
  emit rt thr (Operation.Enable id);
  rt.stack <- act :: rt.stack;
  add_hook rt id (fun () ->
    on_screen_shown rt (main rt) act;
    after act);
  binder_post rt id Operation.Immediate;
  act

(* Bring a stopped activity back to the foreground:
   onRestart/onStart/onResume as one posted task. *)
let resume_activity rt (thr : thr) act =
  let body =
    instrs
      (act.program.on_restart @ act.program.on_start @ act.program.on_resume)
  in
  let id =
    fresh_task rt
      (Printf.sprintf "RESUME_%s_%d" act.program.activity_name act.obj)
  in
  register_task rt id ~body ~owner:(Some act.obj);
  emit rt thr (Operation.Enable id);
  add_hook rt id (fun () -> on_screen_shown rt (main rt) act);
  binder_post rt id Operation.Immediate

let pop_activity rt act =
  rt.stack <- List.filter (fun a -> a.obj <> act.obj) rt.stack

(* Tear an activity down.  [thr] initiates (a finish() statement or the
   driver injecting BACK/rotate).  In the compressed mode of the paper's
   Figure 4, onDestroy — enabled since the launch completed — is posted
   directly; the full mode runs the onPause/onStop/onDestroy chain, each
   callback enabled when its predecessor completes. *)
let teardown_activity rt (thr : thr) act ~after_destroy =
  let post_destroy from_thr =
    let id =
      claim_cb rt from_thr act "onDestroy" ~body:(instrs act.program.on_destroy)
    in
    add_hook rt id (fun () ->
      act.astate <- Lifecycle.Destroyed;
      pop_activity rt act;
      after_destroy ());
    binder_post rt id Operation.Immediate
  in
  if rt.opts.compressed_lifecycle then post_destroy thr
  else begin
    let pause_id =
      claim_cb rt thr act "onPause" ~body:(instrs act.program.on_pause)
    in
    add_hook rt pause_id (fun () ->
      act.astate <- Lifecycle.Paused;
      let stop_id =
        claim_cb rt (main rt) act "onStop" ~body:(instrs act.program.on_stop)
      in
      add_hook rt stop_id (fun () ->
        act.astate <- Lifecycle.Stopped;
        post_destroy (main rt));
      binder_post rt stop_id Operation.Immediate);
    binder_post rt pause_id Operation.Immediate
  end

(* startActivity(B): enable + post onPause of the current activity (the
   enable inside the calling task is operation 21 of Figure 3), then
   launch B once it completes, then stop the caller. *)
let start_activity_flow rt (thr : thr) from_act b_name =
  match from_act with
  | None ->
    ignore (launch_activity rt thr b_name ~after:(fun _ -> ()))
  | Some a ->
    let pause_id = claim_cb rt thr a "onPause" ~body:(instrs a.program.on_pause) in
    add_hook rt pause_id (fun () ->
      a.astate <- Lifecycle.Paused;
      ignore
        (launch_activity rt (main rt) b_name ~after:(fun _b ->
           let stop_id =
             claim_cb rt (main rt) a "onStop" ~body:(instrs a.program.on_stop)
           in
           add_hook rt stop_id (fun () -> a.astate <- Lifecycle.Stopped);
           binder_post rt stop_id Operation.Immediate)));
    binder_post rt pause_id Operation.Immediate

let back_flow rt (thr : thr) =
  match rt.stack with
  | [] -> ()
  | act :: rest ->
    teardown_activity rt thr act ~after_destroy:(fun () ->
      match rest with
      | prev :: _ -> resume_activity rt (main rt) prev
      | [] -> ())

let rotate_flow rt (thr : thr) =
  match rt.stack with
  | [] -> ()
  | act :: _ ->
    let name = act.program.activity_name in
    teardown_activity rt thr act ~after_destroy:(fun () ->
      ignore (launch_activity rt (main rt) name ~after:(fun _ -> ())))

(* {1 Services and broadcasts} *)

let service_flow rt (thr : thr) name ~start =
  match Program.find_service rt.app name with
  | None -> stuck "unknown service %s" name
  | Some svc ->
    let created =
      Option.value (Hashtbl.find_opt rt.services_created name) ~default:false
    in
    let enable_and_post task_name body hook =
      let id = fresh_task rt task_name in
      register_task rt id ~body:(instrs body) ~owner:None;
      emit rt thr (Operation.Enable id);
      (match hook with
       | Some f -> add_hook rt id f
       | None -> ());
      binder_post rt id Operation.Immediate
    in
    if start then begin
      if created then
        enable_and_post (name ^ ".onStartCommand") svc.on_start_command None
      else begin
        Hashtbl.replace rt.services_created name true;
        enable_and_post (name ^ ".onCreateService") svc.on_create_svc
          (Some
             (fun () ->
                enable_and_post (name ^ ".onStartCommand") svc.on_start_command
                  None))
      end
    end
    else if created then begin
      Hashtbl.replace rt.services_created name false;
      enable_and_post (name ^ ".onDestroyService") svc.on_destroy_svc None
    end

let broadcast_flow rt (thr : thr) action =
  List.iter
    (fun (r : Program.receiver) ->
       if String.equal r.action action then begin
         let id = fresh_task rt (r.receiver_name ^ ".onReceive") in
         register_task rt id ~body:(instrs r.on_receive) ~owner:None;
         emit rt thr (Operation.Enable id);
         binder_post rt id Operation.Immediate
       end)
    rt.app.receivers

(* {1 Statement interpretation} *)

let push_frame (thr : thr) body = thr.frames <- body :: thr.frames

let location_key f = Location.to_string (Program.location_of_field f)

let resolve_target rt = function
  | Program.Main_thread -> Some (main rt)
  | Program.Named_thread n ->
    (match thread_by_name rt n with
     | Some t when t.has_queue -> if t.inited then Some t else None
     | Some _ | None -> None)

let interpret_stmt rt (thr : thr) (s : Program.stmt) =
  match s with
  | Program.Read f ->
    emit rt thr (Operation.Read (Program.location_of_field f))
  | Program.Write f ->
    emit rt thr (Operation.Write (Program.location_of_field f))
  | Program.Synchronized (l, body) ->
    let lock = Lock_id.make l in
    let mine_or_free () =
      match State.lock_holder rt.sem lock with
      | None -> true
      | Some holder -> Thread_id.equal holder thr.tid
    in
    let enter () =
      emit rt thr (Operation.Acquire lock);
      push_frame thr (instrs body @ [ Release_monitor l ])
    in
    if mine_or_free () then enter ()
    else
      thr.waiting <-
        Some { reason = "lock " ^ l; can_proceed = mine_or_free; proceed = enter }
  | Program.Fork (name, body) ->
    let t = new_thread rt ~name ~native:false ~queue:false ~body:(instrs body)
              ~exits:true ~actx:None
    in
    emit rt thr (Operation.Fork t.tid)
  | Program.Fork_native (name, body) ->
    let t = new_thread rt ~name ~native:true ~queue:false ~body:(instrs body)
              ~exits:true ~actx:None
    in
    emit rt thr (Operation.Fork t.tid)
  | Program.Fork_looper name ->
    let t = new_thread rt ~name ~native:false ~queue:true ~body:[] ~exits:false
              ~actx:None
    in
    emit rt thr (Operation.Fork t.tid)
  | Program.Join name ->
    let target () = thread_by_name rt name in
    let ready () =
      match target () with
      | Some t -> t.exited
      | None -> false
    in
    let go () =
      match target () with
      | Some t -> emit rt thr (Operation.Join t.tid)
      | None -> ()
    in
    if ready () then go ()
    else
      thr.waiting <-
        Some { reason = "join " ^ name; can_proceed = ready; proceed = go }
  | Program.Post { proc; target; delay; front } ->
    let body =
      match Program.find_proc rt.app proc with
      | Some b -> instrs b
      | None -> stuck "unknown procedure %s" proc
    in
    let flavour =
      match delay, front with
      | Some d, false -> Operation.Delayed d
      | None, true -> Operation.Front
      | None, false -> Operation.Immediate
      | Some _, true -> stuck "post %s is both delayed and front" proc
    in
    let attempt () = Option.is_some (resolve_target rt target) in
    let go () =
      match resolve_target rt target with
      | Some tgt ->
        let owner = Option.map (fun a -> a.obj) (current_activity rt thr) in
        let id = fresh_task rt proc in
        register_task rt id ~body ~owner;
        rt.pending_by_proc <- (proc, id) :: rt.pending_by_proc;
        do_post rt thr id ~target:tgt.tid ~flavour
      | None -> stuck "post target of %s unavailable" proc
    in
    if attempt () then go ()
    else
      thr.waiting <-
        Some
          { reason = "post target for " ^ proc
          ; can_proceed = attempt
          ; proceed = go
          }
  | Program.Cancel_last proc ->
    let cancellable (p, id) =
      String.equal p proc
      &&
      let info = task_info rt id in
      info.t_posted && (not info.t_begun) && not info.t_cancelled
    in
    (match List.find_opt cancellable rt.pending_by_proc with
     | Some (_, id) ->
       (task_info rt id).t_cancelled <- true;
       emit rt thr (Operation.Cancel id)
     | None -> ())
  | Program.Execute_async_task spec ->
    push_frame thr (instrs spec.pre @ [ Async_fork spec ])
  | Program.Publish_progress ->
    (match thr.actx with
     | None -> stuck "publishProgress outside an AsyncTask background"
     | Some ctx ->
       let n = ctx.published in
       ctx.published <- n + 1;
       let id = fresh_task rt (ctx.spec.task_name ^ ".onProgressUpdate") in
       register_task rt id ~body:(instrs ctx.spec.progress) ~owner:ctx.a_owner;
       do_post rt thr id ~target:ctx.origin ~flavour:Operation.Immediate)
  | Program.Start_activity name ->
    start_activity_flow rt thr (current_activity rt thr) name
  | Program.Finish_activity ->
    (match current_activity rt thr with
     | Some act ->
       teardown_activity rt thr act ~after_destroy:(fun () ->
         match rt.stack with
         | prev :: _ -> resume_activity rt (main rt) prev
         | [] -> ())
     | None -> ())
  | Program.Start_service name -> service_flow rt thr name ~start:true
  | Program.Stop_service name -> service_flow rt thr name ~start:false
  | Program.Send_broadcast action -> broadcast_flow rt thr action
  | Program.Enable_ui event ->
    (match current_activity rt thr with
     | Some act when Lifecycle.activity_state_equal act.astate Lifecycle.Destroyed
       ->
       (* the screen is gone; setEnabled on its widgets has no effect *)
       ()
     | Some act ->
       (match
          List.find_opt
            (fun (h : Program.ui_handler) -> String.equal h.event event)
            act.program.ui
        with
        | Some h -> enable_ui_handler rt thr act h
        | None -> stuck "activity %s has no handler %s" act.program.activity_name event)
     | None -> stuck "Enable_ui outside any activity")
  | Program.Disable_ui event ->
    (match current_activity rt thr with
     | Some act -> Hashtbl.remove act.ui_enabled event
     | None -> ())
  | Program.Handoff_send f ->
    emit rt thr (Operation.Write (Program.location_of_field f));
    Hashtbl.replace rt.flags (location_key f) ()
  | Program.Handoff_wait f ->
    let set () = Hashtbl.mem rt.flags (location_key f) in
    let go () = emit rt thr (Operation.Read (Program.location_of_field f)) in
    if set () then go ()
    else
      thr.waiting <-
        Some { reason = "handoff " ^ location_key f; can_proceed = set; proceed = go }

let interpret_instr rt (thr : thr) = function
  | Prog s -> interpret_stmt rt thr s
  | Release_monitor l -> emit rt thr (Operation.Release (Lock_id.make l))
  | Async_fork spec ->
    Obs.add "runtime.async_tasks";
    let owner = Option.map (fun a -> a.obj) (current_activity rt thr) in
    let ctx = { spec; origin = thr.tid; a_owner = owner; published = 0 } in
    let t =
      new_thread rt
        ~name:(Async_task.background_thread_name (Async_task.create ~name:spec.task_name))
        ~native:false ~queue:false
        ~body:(instrs spec.background @ [ Async_finish ])
        ~exits:true ~actx:(Some ctx)
    in
    emit rt thr (Operation.Fork t.tid)
  | Async_finish ->
    (match thr.actx with
     | None -> stuck "Async_finish without an AsyncTask context"
     | Some ctx ->
       let id = fresh_task rt (ctx.spec.task_name ^ ".onPostExecute") in
       register_task rt id ~body:(instrs ctx.spec.post_exec) ~owner:ctx.a_owner;
       do_post rt thr id ~target:ctx.origin ~flavour:Operation.Immediate)

(* {1 Scheduling} *)

let normalize_frames (thr : thr) =
  thr.frames <- List.filter (fun f -> f <> []) thr.frames

(* Pending tasks of a looper thread that the dispatch policy and the
   virtual clock both allow to run now. *)
let dispatchable rt (thr : thr) =
  match State.queue rt.sem thr.tid with
  | None -> []
  | Some q ->
    List.filter
      (fun id ->
         let info = task_info rt id in
         (not rt.opts.respect_delays)
         ||
         match info.t_delay with
         | None -> true
         | Some d -> rt.clock >= info.t_post_step + d)
      (Queue_model.eligible q)

(* Completion hooks run while the task is still executing, so that the
   [enable] operations they emit fall inside the task body — as in
   Figure 3, where enable(onDestroy) (operation 9) precedes the end of
   LAUNCH_ACTIVITY (operation 10).  The placement matters: the NOPRE
   rule needs an operation of the completing task to happen before the
   follow-up post. *)
let finish_task rt (thr : thr) id =
  let info = task_info rt id in
  let hooks = info.t_hooks in
  info.t_hooks <- [];
  List.iter (fun f -> f ()) hooks;
  emit rt thr (Operation.End_task id);
  thr.running <- None

let begin_task rt (thr : thr) id =
  let info = task_info rt id in
  info.t_begun <- true;
  Obs.add "runtime.tasks_dispatched";
  emit rt thr (Operation.Begin_task id);
  thr.running <- Some id;
  push_frame thr info.t_body

(* Is a thread, or a task about to be dispatched, stalled by the
   [hold] option? *)
let held_context rt name = List.mem name rt.opts.hold

let thread_held rt (thr : thr) =
  held_context rt thr.thr_name
  ||
  match thr.running with
  | Some id -> held_context rt (Task_id.name id)
  | None -> false

(* One unit of work for a thread, or None if it cannot progress.  The
   returned closure performs the step; the boolean marks a stalled
   context that should run only when nothing else can. *)
let thread_step rt (thr : thr) =
  let step ?(held = thread_held rt thr) f = Some (held, f) in
  if thr.exited then None
  else if not thr.inited then
    step (fun () ->
      thr.inited <- true;
      emit rt thr Operation.Thread_init;
      if thr.has_queue then begin
        emit rt thr Operation.Attach_queue;
        emit rt thr Operation.Loop_on_queue
      end)
  else
    match thr.waiting with
    | Some w ->
      if w.can_proceed () then
        step (fun () ->
          thr.waiting <- None;
          w.proceed ())
      else None
    | None ->
      normalize_frames thr;
      (match thr.frames with
       | (i :: rest) :: more ->
         step (fun () ->
           thr.frames <- rest :: more;
           interpret_instr rt thr i)
       | [] :: _ -> assert false
       | [] ->
         (match thr.running with
          | Some id -> step (fun () -> finish_task rt thr id)
          | None ->
            if thr.has_queue then
              (match dispatchable rt thr with
               | [] -> None
               | candidates ->
                 let free =
                   List.filter
                     (fun id -> not (held_context rt (Task_id.name id)))
                     candidates
                 in
                 let held = free = [] in
                 let candidates = if held then candidates else free in
                 step ~held (fun () ->
                   let id =
                     List.nth candidates (choose rt (List.length candidates))
                   in
                   begin_task rt thr id))
            else if thr.exits_when_done then
              step (fun () ->
                thr.exited <- true;
                emit rt thr Operation.Thread_exit)
            else None))

let binder_step rt (thr : thr) =
  match Hashtbl.find_opt rt.binder_queues (Thread_id.to_int thr.tid) with
  | None -> None
  | Some q ->
    if Queue.is_empty q then None
    else if not thr.inited then
      Some
        (false, fun () ->
           thr.inited <- true;
           emit rt thr Operation.Thread_init)
    else
      Some
        ( (match Queue.peek_opt q with
           | Some (id, _) -> held_context rt (Task_id.name id)
           | None -> false)
        , fun () ->
            let id, flavour = Queue.pop q in
            (* lifecycle, service and receiver tasks all run on main *)
            do_post rt thr id ~target:(main rt).tid ~flavour )

(* {1 The driver} *)

let main_quiescent rt =
  let m = main rt in
  (* Stalled tasks do not block quiescence: the "debugger" holds them
     while the driver keeps interacting. *)
  let all_held ids =
    List.for_all (fun id -> held_context rt (Task_id.name id)) ids
  in
  m.inited
  && m.running = None
  && m.frames = []
  && (match State.queue rt.sem m.tid with
      | Some q -> all_held (Queue_model.pending q)
      | None -> false)
  && Hashtbl.fold
       (fun _ q acc ->
          acc && all_held (List.map fst (List.of_seq (Queue.to_seq q))))
       rt.binder_queues true

let event_available rt = function
  | Click e ->
    (match rt.stack with
     | top :: _ -> Hashtbl.mem top.ui_enabled e
     | [] -> false)
  | Back | Rotate -> rt.stack <> []
  | Intent action ->
    List.exists
      (fun (act : Program.activity) -> List.mem action act.Program.intent_filters)
      rt.app.Program.activities

let inject rt event =
  let m = main rt in
  match event with
  | Click e ->
    (match rt.stack with
     | top :: _ ->
       (match Hashtbl.find_opt top.ui_enabled e with
        | Some id ->
          Hashtbl.remove top.ui_enabled e;
          do_post rt m id ~target:m.tid ~flavour:Operation.Immediate;
          (* the widget stays enabled: publish the next instance *)
          (match
             List.find_opt
               (fun (h : Program.ui_handler) -> String.equal h.event e)
               top.program.ui
           with
           | Some h -> enable_ui_handler rt m top h
           | None -> ())
        | None -> ())
     | [] -> ())
  | Back -> back_flow rt m
  | Rotate -> rotate_flow rt m
  | Intent action ->
    (* deliver an external intent: launch the first matching activity,
       pausing the current foreground activity as startActivity does *)
    (match
       List.find_opt
         (fun (act : Program.activity) ->
            List.mem action act.Program.intent_filters)
         rt.app.Program.activities
     with
     | Some target ->
       (match rt.stack with
        | top :: _ ->
          start_activity_flow rt m (Some top) target.Program.activity_name
        | [] ->
          ignore
            (launch_activity rt m target.Program.activity_name
               ~after:(fun _ -> ())))
     | None -> ())

(* The earliest virtual time at which a pending delayed task expires. *)
let earliest_delay_expiry rt =
  Hashtbl.fold
    (fun _ (info : task_info) acc ->
       if info.t_posted && (not info.t_begun) && not info.t_cancelled then
         match info.t_delay with
         | Some d ->
           let expiry = info.t_post_step + d in
           if expiry > rt.clock then
             Some
               (match acc with
                | Some e -> min e expiry
                | None -> expiry)
           else acc
         | None -> acc
       else acc)
    rt.tasks None

let pick rt choices = List.nth choices (choose rt (List.length choices))

let run ?(options = default_options) app events =
  Obs.with_span "runtime.run" @@ fun () ->
  (match Program.validate app with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Runtime.run: invalid app: " ^ msg));
  let rng =
    match options.policy with
    | Round_robin | Scripted _ -> None
    | Seeded seed -> Some (Random.State.make [| seed |])
  in
  let script =
    match options.policy with
    | Scripted s -> s
    | Round_robin | Seeded _ -> []
  in
  let rec rt =
    { app
    ; opts = options
    ; rng
    ; script
    ; arities_rev = []
    ; rr_counter = 0
    ; sem = State.initial
    ; full_rev = []
    ; obs_rev = []
    ; threads = Hashtbl.create 16
    ; thread_list = []
    ; next_tid = 2 + options.binder_pool_size
    ; task_instances = Hashtbl.create 64
    ; tasks = Hashtbl.create 64
    ; binder = Binder.create ~size:options.binder_pool_size ~first_tid:2
    ; binder_queues = Hashtbl.create 4
    ; stack = []
    ; all_activities = Hashtbl.create 4
    ; next_obj = 0
    ; flags = Hashtbl.create 8
    ; clock = 0
    ; steps = 0
    ; services_created = Hashtbl.create 4
    ; pending_by_proc = []
    ; main = lazy (Hashtbl.find rt.threads 1)
    }
  in
  (* the main thread *)
  let m =
    { tid = Thread_id.make 1
    ; thr_name = "main"
    ; is_native = false
    ; has_queue = true
    ; exits_when_done = false
    ; inited = false
    ; exited = false
    ; frames = []
    ; running = None
    ; waiting = None
    ; actx = None
    }
  in
  Hashtbl.replace rt.threads 1 m;
  rt.thread_list <- [ m ];
  (* the binder pool *)
  List.iter
    (fun btid ->
       let b =
         { tid = btid
         ; thr_name = "binder" ^ string_of_int (Thread_id.to_int btid)
         ; is_native = false
         ; has_queue = false
         ; exits_when_done = false
         ; inited = false
         ; exited = false
         ; frames = []
         ; running = None
         ; waiting = None
         ; actx = None
         }
       in
       Hashtbl.replace rt.threads (Thread_id.to_int btid) b;
       rt.thread_list <- rt.thread_list @ [ b ])
    (Binder.threads rt.binder);
  (* launch: the main thread initialises and enables the main activity's
     LAUNCH (operations 1–4 of Figure 3), then AMS posts it. *)
  m.inited <- true;
  emit rt m Operation.Thread_init;
  emit rt m Operation.Attach_queue;
  emit rt m Operation.Loop_on_queue;
  ignore (launch_activity rt m app.main_activity ~after:(fun _ -> ()));
  let pending_events = ref events in
  let injected = ref [] in
  let skipped = ref [] in
  let rec loop () =
    if rt.steps > options.max_steps then
      stuck "exceeded %d steps (livelock?)" options.max_steps;
    let choices =
      List.filter_map
        (fun thr ->
           match binder_step rt thr with
           | Some f -> Some f
           | None -> thread_step rt thr)
        rt.thread_list
    in
    let choices =
      match !pending_events with
      | e :: rest when main_quiescent rt && event_available rt e ->
        ( false
        , fun () ->
            pending_events := rest;
            injected := e :: !injected;
            Obs.add "runtime.ui_events_dispatched";
            inject rt e )
        :: choices
      | _ :: _ | [] -> choices
    in
    (* stalled contexts run only when nothing else can make progress *)
    let choices =
      match List.filter (fun (held, _) -> not held) choices with
      | [] -> List.map snd choices
      | free -> List.map snd free
    in
    match choices with
    | [] ->
      (match earliest_delay_expiry rt with
       | Some expiry ->
         rt.clock <- expiry;
         loop ()
       | None ->
         (match !pending_events with
          | e :: rest ->
            (* fully quiescent and the event is unavailable: drop it *)
            pending_events := rest;
            skipped := e :: !skipped;
            loop ()
          | [] -> ()))
    | _ :: _ ->
      rt.steps <- rt.steps + 1;
      (pick rt choices) ();
      loop ()
  in
  loop ();
  let enabled_at_end =
    match rt.stack with
    | [] -> []
    | top :: _ ->
      let clicks =
        Hashtbl.fold (fun e _ acc -> Click e :: acc) top.ui_enabled []
        |> List.sort compare
      in
      clicks @ [ Back; Rotate ]
  in
  let to_trace rev =
    match Trace.of_events (List.rev rev) with
    | Ok t -> t
    | Error msg -> stuck "interpreter bug: ill-formed trace: %s" msg
  in
  Obs.set_span_arg "steps" (string_of_int rt.steps);
  { observed = to_trace rt.obs_rev
  ; full = to_trace rt.full_rev
  ; thread_names = List.map (fun t -> (t.tid, t.thr_name)) rt.thread_list
  ; injected = List.rev !injected
  ; skipped = List.rev !skipped
  ; enabled_at_end
  ; choice_arities = List.rev rt.arities_rev
  ; steps = rt.steps
  }
