(* Aliases for the modules of the lower libraries; opened by every file
   of this library. *)
module Ident = Droidracer_trace.Ident
module Operation = Droidracer_trace.Operation
module Trace = Droidracer_trace.Trace
module State = Droidracer_semantics.State
module Step = Droidracer_semantics.Step
module Queue_model = Droidracer_semantics.Queue_model
module Lifecycle = Droidracer_android.Lifecycle
module Async_task = Droidracer_android.Async_task
module Binder = Droidracer_android.Binder
module Obs = Droidracer_obs.Obs
