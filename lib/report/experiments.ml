open! Import
module Thread_id = Ident.Thread_id

type app_run =
  { ar_built : Synthetic.built
  ; ar_result : Runtime.run_result
  ; ar_report : Detector.report
  }

let run_spec ?(config = Detector.default_config) spec =
  Obs.with_span "corpus.app" ~args:[ ("app", spec.Synthetic.s_name) ]
  @@ fun () ->
  let built =
    Obs.with_span "corpus.build" (fun () -> Synthetic.build spec)
  in
  let result =
    Runtime.run ~options:built.Synthetic.b_options built.Synthetic.b_app
      built.Synthetic.b_events
  in
  { ar_built = built
  ; ar_result = result
  ; ar_report = Detector.analyze ~config result.Runtime.observed
  }

(* One domain per application: the corpus fan-out is embarrassingly
   parallel (every run builds its own app, runtime and detector state).
   Each in-flight run keeps its whole trace and bit matrix live, so the
   analysis inside a run stays sequential — parallelism across
   applications already saturates the machine. *)
let run_catalog ?(jobs = 1) ?(specs = Catalog.all)
    ?(config = Detector.default_config) () =
  Par_pool.parallel_map ~jobs (run_spec ~config) specs

(* The paper's thread counts exclude binder and other system threads. *)
let app_thread_counts run =
  let pool = run.ar_built.Synthetic.b_options.Runtime.binder_pool_size in
  let is_binder tid =
    let n = Thread_id.to_int tid in
    n >= 2 && n < 2 + pool
  in
  let trace = run.ar_result.Runtime.observed in
  let without_q, with_q =
    List.partition
      (fun tid -> not (Trace.has_queue trace tid))
      (List.filter (fun tid -> not (is_binder tid)) (Trace.threads trace))
  in
  (List.length without_q, List.length with_q)

let spec_of run = run.ar_built.Synthetic.b_spec

let pair_cell paper ours = Printf.sprintf "%d / %d" paper ours

let add_section_rows table rows_of runs =
  let open_source, proprietary =
    List.partition (fun r -> not (spec_of r).Synthetic.s_proprietary) runs
  in
  List.iter (fun r -> Table.add_row table (rows_of r)) open_source;
  if proprietary <> [] then begin
    Table.add_separator table;
    List.iter (fun r -> Table.add_row table (rows_of r)) proprietary
  end

let table2 runs =
  let table =
    Table.create
      ~title:
        "Table 2: statistics about applications and traces (paper / measured)"
      ~columns:
        [ "Application (LOC)"
        ; "Trace length"
        ; "Fields"
        ; "Threads (w/o Qs)"
        ; "Threads (w/ Qs)"
        ; "Async. tasks"
        ]
  in
  let row run =
    let s = spec_of run in
    let stats = run.ar_report.Detector.trace_stats in
    let noq, q = app_thread_counts run in
    [ (if s.Synthetic.s_loc > 0 then
         Printf.sprintf "%s (%d)" s.Synthetic.s_name s.Synthetic.s_loc
       else s.Synthetic.s_name)
    ; pair_cell s.Synthetic.s_trace_length stats.Trace.trace_length
    ; pair_cell s.Synthetic.s_fields stats.Trace.fields
    ; pair_cell s.Synthetic.s_threads_without_queue noq
    ; pair_cell s.Synthetic.s_threads_with_queue q
    ; pair_cell s.Synthetic.s_async_tasks stats.Trace.async_tasks
    ]
  in
  add_section_rows table row runs;
  table

(* Measured Table 3 entries: distinct races per category, and — via the
   schedule-perturbation verifier — how many are confirmed true
   positives.  Races are grouped by the plant that owns their location,
   and one representative per plant is verified. *)
let measure_races ?(verify = true) ?(attempts = 8) run =
  let built = run.ar_built in
  let report = run.ar_report in
  let thread_names = run.ar_result.Runtime.thread_names in
  let confirmed_plants = Hashtbl.create 8 in
  let plant_confirmed plant race =
    let key = plant.Synthetic.p_mechanism in
    match Hashtbl.find_opt confirmed_plants key with
    | Some v -> v
    | None ->
      let v =
        Verify.is_confirmed
          (Verify.verify ~attempts ~options:built.Synthetic.b_options
             ~app:built.Synthetic.b_app ~events:built.Synthetic.b_events
             ~trace:report.Detector.trace ~thread_names race)
      in
      Hashtbl.replace confirmed_plants key v;
      v
  in
  List.map
    (fun category ->
       let races =
         List.filter
           (fun { Detector.category = c; _ } ->
              Classify.category_equal c category)
           report.Detector.distinct_races
       in
       let confirmed =
         if not verify then 0
         else
           List.length
             (List.filter
                (fun { Detector.race; _ } ->
                   match
                     Synthetic.plant_of_location built (Race.location race)
                   with
                   | Some plant -> plant_confirmed plant race
                   | None -> false)
                races)
       in
       (category, List.length races, confirmed))
    [ Classify.Multithreaded
    ; Classify.Cross_posted
    ; Classify.Co_enabled
    ; Classify.Delayed_race
    ; Classify.Unknown
    ]

let table3 ?(verify = true) ?(attempts = 8) runs =
  let table =
    Table.create
      ~title:
        "Table 3: data races reported, X(Y) = reports(confirmed true \
         positives), paper / measured"
      ~columns:
        [ "Application"
        ; "Multithreaded"
        ; "Cross-posted"
        ; "Co-enabled"
        ; "Delayed"
        ; "Unknown"
        ]
  in
  let row run =
    let s = spec_of run in
    let proprietary = s.Synthetic.s_proprietary in
    let measured =
      measure_races ~verify:(verify && not proprietary) ~attempts run
    in
    let cell (px, py) category =
      let _, mx, my =
        List.find
          (fun (c, _, _) -> Classify.category_equal c category)
          measured
      in
      if proprietary then Printf.sprintf "%d / %d" px mx
      else Printf.sprintf "%d(%d) / %d(%d)" px py mx my
    in
    [ s.Synthetic.s_name
    ; cell s.Synthetic.s_multithreaded Classify.Multithreaded
    ; cell s.Synthetic.s_cross_posted Classify.Cross_posted
    ; cell s.Synthetic.s_co_enabled Classify.Co_enabled
    ; cell s.Synthetic.s_delayed Classify.Delayed_race
    ; cell s.Synthetic.s_unknown Classify.Unknown
    ]
  in
  add_section_rows table row runs;
  table

let performance_table runs =
  let table =
    Table.create
      ~title:
        "Performance (Section 6): node coalescing and analysis cost \
         (paper: nodes reduced to 1.4-24.8% of trace length, avg 11.1%)"
      ~columns:
        [ "Application"
        ; "Trace ops"
        ; "Graph nodes"
        ; "Nodes/ops"
        ; "HB pairs"
        ; "Passes"
        ; "Analysis time"
        ; "HB time"
        ; "Detect time"
        ]
  in
  let ratios = ref [] in
  let row run =
    let r = run.ar_report in
    let ratio =
      100.0 *. float_of_int r.Detector.nodes
      /. float_of_int (max 1 r.Detector.uncoalesced_nodes)
    in
    ratios := ratio :: !ratios;
    [ (spec_of run).Synthetic.s_name
    ; string_of_int r.Detector.uncoalesced_nodes
    ; string_of_int r.Detector.nodes
    ; Printf.sprintf "%.1f%%" ratio
    ; string_of_int r.Detector.hb_edges
    ; string_of_int r.Detector.fixpoint_passes
    ; Printf.sprintf "%.3fs" r.Detector.elapsed_seconds
    ; Printf.sprintf "%.3fs" (Detector.phase_seconds r "happens_before")
    ; Printf.sprintf "%.3fs" (Detector.phase_seconds r "race_detect")
    ]
  in
  add_section_rows table row runs;
  (match !ratios with
   | [] -> ()
   | rs ->
     let n = float_of_int (List.length rs) in
     let avg = List.fold_left ( +. ) 0.0 rs /. n in
     let mn = List.fold_left min (List.hd rs) rs in
     let mx = List.fold_left max (List.hd rs) rs in
     Table.add_separator table;
     Table.add_row table
       [ "summary"
       ; ""
       ; ""
       ; Printf.sprintf "%.1f-%.1f%% avg %.1f%%" mn mx avg
       ; ""
       ; ""
       ; ""
       ; ""
       ; ""
       ]);
  table

let baseline_table runs =
  let table =
    Table.create
      ~title:
        "Specialization ablation: races vs the DroidRacer relation \
         (missed = false negatives, extra = additional reports)"
      ~columns:[ "Application"; "Baseline"; "Reported"; "Missed"; "Extra" ]
  in
  List.iter
    (fun run ->
       let trace = run.ar_result.Runtime.observed in
       List.iter
         (fun (c : Baseline.comparison) ->
            Table.add_row table
              [ (spec_of run).Synthetic.s_name
              ; Baseline.name c.Baseline.baseline
              ; string_of_int c.Baseline.reported
              ; string_of_int c.Baseline.missed
              ; string_of_int c.Baseline.extra
              ])
         (Baseline.compare_against_droidracer trace))
    runs;
  table

let engine_table runs =
  let table =
    Table.create
      ~title:
        "Engine ablation: precise graph engine vs online vector clocks \
         (the clock engine under-reports where lock edges shadow \
         same-thread races)"
      ~columns:
        [ "Application"; "Graph races"; "Clock races"; "Graph time"; "Clock time" ]
  in
  List.iter
    (fun run ->
       let trace = Trace.remove_cancelled run.ar_result.Runtime.observed in
       let t0 = Unix.gettimeofday () in
       let clock_races, _ = Clock_engine.detect trace in
       let clock_time = Unix.gettimeofday () -. t0 in
       Table.add_row table
         [ (spec_of run).Synthetic.s_name
         ; string_of_int (List.length run.ar_report.Detector.all_races)
         ; string_of_int (List.length clock_races)
         ; Printf.sprintf "%.3fs" run.ar_report.Detector.elapsed_seconds
         ; Printf.sprintf "%.3fs" clock_time
         ])
    runs;
  table

let coverage_table runs =
  let table =
    Table.create
      ~title:
        "Race coverage (reference [24]): root races left to triage after grouping races that one ordering fix would resolve together"
      ~columns:[ "Application"; "Reported pairs"; "Distinct"; "Roots" ]
  in
  add_section_rows table
    (fun run ->
       let trace = run.ar_report.Detector.trace in
       let hb = Detector.relation trace in
       let races =
         List.map (fun c -> c.Detector.race) run.ar_report.Detector.all_races
       in
       let roots = Droidracer_core.Race_coverage.roots ~hb races in
       [ (spec_of run).Synthetic.s_name
       ; string_of_int (List.length races)
       ; string_of_int (List.length run.ar_report.Detector.distinct_races)
       ; string_of_int (List.length roots)
       ])
    runs;
  table

let front_rule_table runs =
  let table =
    Table.create
      ~title:
        "Extension ablation: the deferred front-of-queue rule orders away the unknown-category races planted through front posts"
      ~columns:[ "Application"; "Unknown races (paper rules)"; "With front rule" ]
  in
  let unknown_count report =
    List.length
      (List.filter
         (fun { Detector.category; _ } ->
            Classify.category_equal category Classify.Unknown)
         report.Detector.distinct_races)
  in
  List.iter
    (fun run ->
       let baseline = unknown_count run.ar_report in
       if baseline > 0 then begin
         let config =
           { Detector.default_config with
             hb = { Happens_before.default with front_rule = true }
           }
         in
         let report =
           Detector.analyze ~config run.ar_result.Runtime.observed
         in
         Table.add_row table
           [ (spec_of run).Synthetic.s_name
           ; string_of_int baseline
           ; string_of_int (unknown_count report)
           ]
       end)
    runs;
  table

let environment_model_table () =
  let table =
    Table.create
      ~title:
        "Environment-model ablation (music player): without enable \
         modelling the write/write pair of Figure 4 becomes a false \
         positive (Section 2.4)"
      ~columns:[ "Scenario"; "With enables"; "Without enables" ]
  in
  let count config scenario =
    let r = Runtime.run ~options:Music_player.options Music_player.app scenario in
    List.length (Detector.analyze ~config r.Runtime.observed).Detector.all_races
  in
  List.iter
    (fun (name, scenario) ->
       Table.add_row table
         [ name
         ; string_of_int (count Detector.default_config scenario)
         ; string_of_int (count Detector.no_environment_model scenario)
         ])
    [ ("PLAY (Figure 3)", Music_player.play_scenario)
    ; ("BACK (Figure 4)", Music_player.back_scenario)
    ];
  table

let lifecycle_table () =
  let table =
    Table.create
      ~title:"Figure 8: activity lifecycle (may-happen-next callbacks per state)"
      ~columns:[ "State"; "May happen next" ]
  in
  List.iter
    (fun state ->
       let nexts =
         Lifecycle.activity_successors state
         |> List.map Lifecycle.activity_callback_name
         |> String.concat ", "
       in
       Table.add_row table
         [ Format.asprintf "%a" Lifecycle.pp_activity_state state
         ; (if nexts = "" then "(terminal)" else nexts)
         ])
    [ Lifecycle.Launched
    ; Lifecycle.Created
    ; Lifecycle.Started
    ; Lifecycle.Running
    ; Lifecycle.Paused
    ; Lifecycle.Stopped
    ; Lifecycle.Destroyed
    ];
  table

let music_player_summary () =
  let table =
    Table.create
      ~title:
        "Motivating example (Figures 1-4): races of the music player per \
         scenario"
      ~columns:[ "Scenario"; "Race"; "Category"; "Verification" ]
  in
  List.iter
    (fun (name, scenario) ->
       let r = Runtime.run ~options:Music_player.options Music_player.app scenario in
       let report = Detector.analyze r.Runtime.observed in
       match report.Detector.all_races with
       | [] -> Table.add_row table [ name; "none"; ""; "" ]
       | races ->
         List.iter
           (fun { Detector.race; category } ->
              let verdict =
                Verify.verify ~options:Music_player.options
                  ~app:Music_player.app ~events:scenario
                  ~trace:report.Detector.trace
                  ~thread_names:r.Runtime.thread_names race
              in
              Table.add_row table
                [ name
                ; Format.asprintf "%a" Race.pp race
                ; Classify.category_name category
                ; (match verdict with
                   | Verify.Confirmed w ->
                     Printf.sprintf "confirmed (seed %d)" w.Verify.w_seed
                   | Verify.Not_flipped n ->
                     Printf.sprintf "not flipped (%d runs)" n)
                ])
           races)
    [ ("PLAY", Music_player.play_scenario); ("BACK", Music_player.back_scenario) ];
  table
