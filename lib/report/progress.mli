open! Import

(** Live progress reporting for corpus sweeps.

    A sweep creates one tracker and reports each finished app into it
    from whichever substrate ran the app — a domain-pool worker in
    cooperative mode, the parent's [on_row] callback in isolated mode
    (the tracker is mutex-protected).  Two outputs, both optional:

    - an append-only {b [droidracer-progress/1]} JSONL stream: a header
      record ([schema], [mode], [jobs], [total]), one ["type": "app"]
      record per finished app (outcome, engine, event count, cumulative
      done/total, events/sec, ETA, per-engine fallback counts), and a
      final ["type": "summary"] record whose outcome counts match the
      sweep's summary table — suitable for tailing a multi-hour sweep;
    - a human heartbeat line per app through a caller-supplied sink
      (the CLI uses stderr, keeping stdout byte-deterministic).

    Rates and ETAs use the wall clock; they are operator feedback, not
    part of the determinism contract.  Fallback counts are read from
    the [supervisor.fallbacks.*] {!Obs} counters, so in isolated mode
    they include everything absorbed from worker telemetry so far. *)

type t

val create :
  ?out:out_channel ->
  ?heartbeat:(string -> unit) ->
  mode:string ->
  jobs:int ->
  total:int ->
  unit ->
  t
(** Start tracking a sweep of [total] apps; writes the JSONL header
    record immediately.  [out] stays open — the caller closes it after
    {!finish}.  A [total <= 0] marks an open-ended stream (the daemon's
    request log has no known end): records still carry the raw total,
    but heartbeats drop the [/total] and the ETA. *)

val app_done :
  t ->
  app:string ->
  outcome:string ->
  engine:string ->
  events:int ->
  elapsed_seconds:float ->
  ?resumed:bool ->
  unit ->
  unit
(** Report one finished app.  [outcome] is ["completed"] or a failure
    label (["crashed"], ["timed-out"], ...); anything other than
    ["completed"] counts as failed in the summary.  [resumed] marks
    rows replayed from a journal rather than executed. *)

val finish : t -> unit
(** Write the summary record and heartbeat (idempotent). *)
