(** Append-only sweep journal: the crash-safety substrate under
    [Supervisor.run_catalog].

    A journal is a JSONL file (schema [droidracer-journal/1]).  Line 1
    is a header carrying the schema tag and an MD5 of the running
    executable; every further line is one finished app outcome:

    {v
    {"digest":"<md5>","app":"<name>","payload":"<base64>"}
    v}

    The payload is an opaque string (in practice a [Marshal]led
    supervisor outcome — which is why the binary digest matters: closure
    frames only round-trip through the image that wrote them).  The
    [digest] field seals [app] and the encoded payload together, so a
    record is either replayed exactly as written or not at all.

    Records are written with a single [write] followed by [Unix.fsync]:
    a sweep killed at any instant leaves at most one torn final line.
    Replay tolerates torn or corrupt lines by skipping and counting them
    (counter [journal.torn]); a header whose binary digest no longer
    matches discards every record as stale (counter [journal.stale])
    rather than feeding another binary's closures to [Marshal]. *)

type t

val schema : string
(** ["droidracer-journal/1"]. *)

val create : ?resume:bool -> string -> (t, string) result
(** [create path] starts a fresh journal, truncating whatever was at
    [path].  With [~resume:true] it first replays the existing file
    (missing file = fresh start), keeps every intact record, rewrites
    the file without the torn tail, and appends from there.  [Error]
    means the file exists but is not a journal this build can resume
    (bad header, wrong schema). *)

val prior : t -> (string * string) list
(** Intact [(app, payload)] records replayed by [~resume:true], in file
    order; empty for a fresh journal. *)

val torn_lines : t -> int
(** Corrupt or torn lines skipped during replay. *)

val stale_records : t -> int
(** Records discarded because the journal was written by a different
    executable image. *)

(** {1 Resume warnings}

    What replay silently repaired, as data: a torn final line (the
    expected scar of a SIGKILL mid-append) or a stale-binary discard.
    Callers surface these structurally — the daemon's health response
    carries them, the CLI prints {!warning_message} — and the same
    counts feed the [journal.torn] / [journal.stale] counters in
    [droidracer-metrics]. *)

type warning =
  | Torn_lines of int  (** corrupt/torn lines skipped on resume *)
  | Stale_records of int  (** intact records from a different binary *)

val warnings : t -> warning list
(** Nonempty iff replay repaired something; empty for a fresh journal. *)

val warning_message : warning -> string
(** Human-readable one-liner. *)

val warning_json : warning -> string
(** One JSON object: [{"kind":…,"count":…,"message":…}]. *)

val append : t -> app:string -> payload:string -> unit
(** Durably append one record (single write + fsync).  Thread-safe. *)

val close : t -> unit
(** Close the underlying descriptor; further [append]s raise. *)
