open! Import

(** Fault-tolerant supervision of corpus sweeps and single analyses.

    {!Experiments.run_catalog} aborts the whole sweep when any one
    application misbehaves; at the production scale the ROADMAP aims for
    that is unacceptable — one bad input must cost one row, not the
    fleet.  This module wraps the build → run → ingest → analyze
    pipeline of one application with:

    - an {e ingest gate}: the observed trace is validated by
      {!Wellformed.check} before any analysis sees it (counter
      [ingest.rejected] on refusal);
    - a {e wall-clock budget}: cooperative deadline checks between
      pipeline phases (analyses are single-process domains, so the
      check is at phase granularity, not preemptive) — counter
      [supervisor.timeouts];
    - an {e event-count budget} with graceful degradation: over budget
      the detector is switched from the dense closure engine to the
      sparse worklist engine instead of refusing the trace (counter
      [supervisor.fallbacks]; the computed relation is identical, only
      the re-scanning cost differs);
    - {e exception capture}: any exception becomes a {!failure} row
      carrying the application, reason and elapsed time;
    - {e retry-once}: crashes and timeouts are retried exactly once
      (counter [supervisor.retries]); rejected input is deterministic,
      so rejections are never retried.

    Outcomes are deterministic across [jobs] values: {!Par_pool}
    preserves order, and the fault plan of {!with_faults} is a pure
    function of the seed and the application name, independent of
    scheduling. *)

(** {1 Budgets} *)

type budget =
  { timeout_seconds : float option
        (** wall-clock budget per attempt; checked between phases *)
  ; max_events : int option
        (** observed-trace length above which the analysis falls back
            to the worklist closure engine *)
  }

val no_budget : budget

(** {1 Outcomes} *)

type reason =
  | Rejected of string
      (** the ingest gate refused the trace (validator diagnosis) *)
  | Crashed of string  (** exception captured ([Printexc.to_string]) *)
  | Timed_out of float  (** the wall-clock budget that was exceeded *)

val reason_label : reason -> string
(** Stable identifiers: ["rejected"], ["crashed"], ["timeout"]. *)

val reason_detail : reason -> string

type failure =
  { f_app : string
  ; f_reason : reason
  ; f_elapsed : float  (** wall-clock across all attempts *)
  ; f_retries : int  (** 0 or 1 *)
  }

type outcome =
  | Completed of Experiments.app_run
  | Failed of failure

val completed : outcome list -> Experiments.app_run list

val failures : outcome list -> failure list

val failure_table : failure list -> Table.t

val failures_json_string : failure list -> string
(** Schema [droidracer-failures/1]: one object per failed application
    with [app], [outcome] ({!reason_label}), [reason], [elapsed_seconds]
    and [retries] — the artefact CI archives. *)

(** {1 Fault injection}

    Degradation paths must themselves be testable, so the supervisor can
    deterministically inject each failure class.  The plan is a pure
    function of the seed and the application name — independent of
    [jobs], scheduling, and which other applications run — so tests and
    CI can predict every row. *)

type fault =
  | Parse_fault  (** ingestion fails with a syntax diagnosis *)
  | Reject_fault  (** the validator refuses the trace *)
  | Crash_fault  (** the analysis task raises *)
  | Timeout_fault  (** the wall-clock budget fires *)

val fault_name : fault -> string

type decision =
  { d_fault : fault option
  ; d_transient : bool
        (** a transient fault hits only the first attempt, so retry-once
            recovers; a persistent one hits both attempts *)
  }

val fault_decision : seed:int -> app:string -> decision
(** The plan for one application under one seed. *)

val with_faults : seed:int -> (unit -> 'a) -> 'a
(** [with_faults ~seed f] runs [f] with the fault plan for [seed]
    installed (an atomic, so worker domains see it too); the plan is
    removed when [f] returns or raises. *)

(** {1 Supervised drivers} *)

val run_app :
  ?config:Detector.config -> ?budget:budget -> Synthetic.spec -> outcome
(** One application through the supervised pipeline (build, run,
    validate, analyze), with retry-once. *)

val run_catalog :
  ?jobs:int ->
  ?specs:Synthetic.spec list ->
  ?config:Detector.config ->
  ?budget:budget ->
  unit ->
  outcome list
(** The supervised {!Experiments.run_catalog}: same order and
    parallelism contract, but misbehaving applications yield {!Failed}
    rows instead of aborting the sweep. *)

val analyze :
  ?config:Detector.config ->
  ?jobs:int ->
  ?budget:budget ->
  name:string ->
  Trace.t ->
  (Detector.report, failure) result
(** Supervised single-trace analysis: the ingest gate, budgets and
    exception capture of {!run_app} around {!Detector.analyze} (no
    retry — a single analysis is deterministic). *)
