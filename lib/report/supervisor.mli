open! Import

(** Fault-tolerant supervision of corpus sweeps and single analyses.

    {!Experiments.run_catalog} aborts the whole sweep when any one
    application misbehaves; at the production scale the ROADMAP aims for
    that is unacceptable — one bad input must cost one row, not the
    fleet.  This module wraps the build → run → ingest → analyze
    pipeline of one application with:

    - an {e ingest gate}: the observed trace is validated by
      {!Wellformed.check} before any analysis sees it (counter
      [ingest.rejected] on refusal);
    - a {e wall-clock budget}: cooperative deadline checks between
      pipeline phases (analyses are single-process domains, so the
      check is at phase granularity, not preemptive) — counter
      [supervisor.timeouts];
    - an {e event-count budget} with graceful degradation: over budget
      the detector walks down the engine ladder instead of refusing the
      trace.  Up to 10x the cap, dense falls back to the sparse worklist
      engine (identical relation, less re-scanning); beyond 10x, either
      batch engine falls back to the bounded-memory streaming engine (a
      sound under-approximation — see {!Streaming_engine}).  Each edge
      has its own counter: [supervisor.fallbacks.dense_worklist],
      [supervisor.fallbacks.dense_streaming],
      [supervisor.fallbacks.worklist_streaming];
    - {e exception capture}: any exception becomes a {!failure} row
      carrying the application, reason and elapsed time;
    - {e retries with deterministic backoff}: crashes and timeouts are
      retried under a {!Proc_pool.retry_policy} (default: retry-once,
      no delay; counter [supervisor.retries]); rejected input is
      deterministic, so rejections are never retried.

    All of the above is {e cooperative}: a task that never reaches a
    deadline checkpoint, overflows the native stack, or genuinely
    exhausts memory still takes the sweep down.  {!run_catalog} in
    {!Isolated} mode closes that gap by running each attempt in a
    forked {!Proc_pool} worker, which adds hard SIGKILL deadlines,
    rlimit memory caps, and crash containment — and, combined with a
    {!Journal}, makes a sweep resumable after [kill -9].

    Outcomes are deterministic across [jobs] values and across modes:
    {!Par_pool} and {!Proc_pool} preserve order, and the fault plan of
    {!with_faults} is a pure function of the seed and the application
    name, independent of scheduling. *)

(** {1 Budgets} *)

type budget =
  { timeout_seconds : float option
        (** wall-clock budget per attempt; checked between phases *)
  ; max_events : int option
        (** observed-trace length above which the analysis degrades down
            the engine ladder: to the worklist closure engine when
            moderately over, and to the streaming engine when more than
            10x over *)
  }

val no_budget : budget

(** {1 Outcomes} *)

type reason =
  | Rejected of string
      (** the ingest gate refused the trace (validator diagnosis) *)
  | Crashed of string  (** exception captured ([Printexc.to_string]) *)
  | Timed_out of float  (** the wall-clock budget that was exceeded *)

val reason_label : reason -> string
(** Stable identifiers: ["rejected"], ["crashed"], ["timeout"]. *)

val reason_detail : reason -> string

type failure =
  { f_app : string
  ; f_reason : reason
  ; f_engine : string
        (** the closure engine the failing attempt ran (or would have
            run) under, budget fallbacks applied —
            {!Happens_before.closure_engine_name}.  When a worker dies
            before reporting, the sweep's configured engine. *)
  ; f_elapsed : float  (** wall-clock across all attempts *)
  ; f_retries : int  (** attempts beyond the first *)
  ; f_backoff : float  (** total seconds spent in retry backoff delays *)
  }

type outcome =
  | Completed of Experiments.app_run
  | Failed of failure

val completed : outcome list -> Experiments.app_run list

val failures : outcome list -> failure list

val failure_table : failure list -> Table.t

val failures_json_string : failure list -> string
(** Schema [droidracer-failures/1]: one object per failed application
    with [app], [outcome] ({!reason_label}), [reason], [engine],
    [elapsed_seconds], [retries] and [backoff_seconds] — the artefact
    CI archives. *)

(** {1 Fault injection}

    Degradation paths must themselves be testable, so the supervisor can
    deterministically inject each failure class.  The plan is a pure
    function of the seed and the application name — independent of
    [jobs], scheduling, and which other applications run — so tests and
    CI can predict every row. *)

type fault =
  | Parse_fault  (** ingestion fails with a syntax diagnosis *)
  | Reject_fault  (** the validator refuses the trace *)
  | Crash_fault  (** the analysis task raises *)
  | Timeout_fault  (** the wall-clock budget fires *)
  | Oom_fault
      (** inside an isolated worker: a genuine allocation storm into the
          child's rlimit; cooperatively: [Out_of_memory] raised directly
          (an in-process storm would kill the sweep) *)
  | Hang_fault
      (** inside an isolated worker: a genuine non-cooperative hang,
          ended only by the parent's SIGKILL; cooperatively: a loop that
          polls the deadline (and so hangs forever if there is no
          wall-clock budget — Hang is meant for [--isolate]) *)

val fault_name : fault -> string

val basic_faults : fault list
(** The original four classes, in their original positions — the
    default, under which the plan for every seed is bit-identical to
    what it was before {!Oom_fault} and {!Hang_fault} existed. *)

val all_faults : fault list
(** [basic_faults] plus [Oom_fault] and [Hang_fault]. *)

type decision =
  { d_fault : fault option
  ; d_transient : bool
        (** a transient fault hits only the first attempt, so retry-once
            recovers; a persistent one hits both attempts *)
  }

val fault_decision :
  ?classes:fault list -> seed:int -> app:string -> unit -> decision
(** The plan for one application under one seed, drawn from [classes]
    (default {!basic_faults}). *)

val with_faults : ?classes:fault list -> seed:int -> (unit -> 'a) -> 'a
(** [with_faults ~seed f] runs [f] with the fault plan for [seed] over
    [classes] (default {!basic_faults}) installed (an atomic, so worker
    domains — and forked workers, by inheritance — see it too); the
    plan is removed when [f] returns or raises. *)

(** {1 Supervised drivers} *)

val run_app :
  ?config:Detector.config ->
  ?budget:budget ->
  ?retry:Proc_pool.retry_policy ->
  Synthetic.spec ->
  outcome
(** One application through the supervised pipeline (build, run,
    validate, analyze), retried under [retry] (default
    {!Proc_pool.default_retry}: once, no delay) with deterministic
    exponential backoff between attempts. *)

type mode =
  | Cooperative  (** in-process, on {!Par_pool} domains *)
  | Isolated of { max_mem_mib : int option }
      (** each attempt in a forked {!Proc_pool} worker: hard SIGKILL
          deadlines (from [budget.timeout_seconds]), an optional
          address-space cap, crash containment.  Worker telemetry
          (spans, counters, histograms, series) is shipped back over
          the result pipe at graceful exit — or recovered from the
          crash sidecar of a killed worker — and merged into the
          parent's [Obs] view (see {!Proc_pool}), alongside the
          parent-side [proc.*] counters.  Must run before the
          process's first domain-parallel computation — OCaml 5 refuses
          [fork] once any domain has ever been spawned (see
          {!Proc_pool}) — which the [--isolate] CLI path guarantees by
          making the sweep the first parallel work of the process. *)

val reason_of_death : Proc_pool.death -> reason
(** How a worker death reads as a failure row: a hard-deadline kill is
    a {!Timed_out}; everything else is a {!Crashed} carrying
    {!Proc_pool.death_message}. *)

val run_catalog :
  ?jobs:int ->
  ?specs:Synthetic.spec list ->
  ?config:Detector.config ->
  ?budget:budget ->
  ?retry:Proc_pool.retry_policy ->
  ?mode:mode ->
  ?journal:Journal.t ->
  ?progress:Progress.t ->
  unit ->
  outcome list
(** The supervised {!Experiments.run_catalog}: same order and
    parallelism contract, but misbehaving applications yield {!Failed}
    rows instead of aborting the sweep.

    With [~progress], every finished app is reported to the tracker
    the moment its outcome is known (journal-replayed outcomes are
    reported upfront with [resumed = true]), and the summary record is
    written before this function returns — in isolated mode that is
    after the worker telemetry has been drained, so the final fallback
    counts are fleet-wide.

    With [~journal], every finished outcome is durably appended the
    moment it is known (from whichever domain or [on_row] callback saw
    it), and outcomes already present in the journal — a resumed run —
    are replayed instead of re-run (counter [journal.resumed]).
    Because the fault plan, the analysis, and the retry backoff are all
    deterministic, an interrupted-and-resumed sweep reproduces the
    uninterrupted tables bit for bit, whatever [jobs] is. *)

val analyze :
  ?config:Detector.config ->
  ?jobs:int ->
  ?budget:budget ->
  name:string ->
  Trace.t ->
  (Detector.report, failure) result
(** Supervised single-trace analysis: the ingest gate, budgets and
    exception capture of {!run_app} around {!Detector.analyze} (no
    retry — a single analysis is deterministic). *)

(** {1 Trace-file sweeps}

    The catalog drivers above build and run application models; these
    drivers instead sweep {e pre-recorded trace files} — a directory of
    generated variants ({!Droidracer_corpus.Vargen}), a crawl's capture
    archive — with the same supervision: ingest gate, budgets with
    engine-ladder degradation, retries, fault injection, journaling,
    progress, and cooperative or process-isolated execution.  Files may
    be in either trace format; {!Trace_io.load} sniffs the magic. *)

type file_report =
  { fr_file : string  (** the path as given *)
  ; fr_name : string  (** basename without extension — the sweep key *)
  ; fr_events : int
  ; fr_races : int  (** access-pair races ({!Detector.report} [all_races]) *)
  ; fr_distinct : int  (** distinct racing locations *)
  ; fr_engine : string  (** closure engine run, budget fallbacks applied *)
  ; fr_elapsed : float  (** analysis seconds ({!Detector.report}) *)
  ; fr_locations : string list
        (** sorted, de-duplicated {!Ident.Location.to_string} forms of
            every racing location — the recall oracle's input *)
  }

type file_outcome =
  | File_completed of file_report
  | File_failed of failure  (** [f_app] is the sweep key *)

val run_file :
  ?jobs:int ->
  ?config:Detector.config ->
  ?budget:budget ->
  ?retry:Proc_pool.retry_policy ->
  string ->
  file_outcome
(** One trace file through the supervised load → validate → analyze
    pipeline, retried like {!run_app}.  [jobs] (default 1) is the
    domain-pool width handed to {!Detector.analyze} — the serving
    layer's workers use it to spread one analysis over several domains
    inside an isolated process. *)

val run_files :
  ?jobs:int ->
  ?config:Detector.config ->
  ?budget:budget ->
  ?retry:Proc_pool.retry_policy ->
  ?mode:mode ->
  ?journal:Journal.t ->
  ?progress:Progress.t ->
  string list ->
  file_outcome list
(** The file analogue of {!run_catalog}: same order/parallelism
    contract, same journaling and progress semantics, same
    {!Cooperative}/{!Isolated} substrates.  Outcomes are keyed by
    basename-without-extension, so a resumed sweep must not mix files
    that collide on that key (a corpus directory never does).  Because
    the key also ignores the format extension, sweeping a binary corpus
    and its text twin yields race tables that differ only in [fr_file]
    and timings — the corpus gate's equality check. *)

val file_completed : file_outcome list -> file_report list

val file_failures : file_outcome list -> failure list

val file_table : file_report list -> Table.t

val files_json_string : file_outcome list -> string
(** Schema [droidracer-races/1]: one object per file — completed rows
    carry [name], [file], [events], [races], [distinct_races],
    [engine], [elapsed_seconds] and the sorted [locations] array;
    failed rows carry [name], [status], [reason], [engine],
    [elapsed_seconds], [retries].  Stripping [file] and
    [elapsed_seconds] makes binary and text sweeps of the same corpus
    bit-comparable. *)
