open! Import

(* Live progress for a corpus sweep: one mutex-protected accumulator
   fed from whichever execution substrate runs the apps (domain pool
   workers in cooperative mode, the [Proc_pool.map] on_row callback in
   isolated mode), emitting

   - an append-only [droidracer-progress/1] JSONL stream (header
     record, one record per finished app, one summary record), cheap
     to tail during a multi-hour sweep; and
   - a human heartbeat line per app, via a caller-supplied sink (the
     CLI points it at stderr so stdout stays byte-deterministic).

   Rates and ETAs use the wall clock — they are operator feedback, not
   part of any determinism contract, which is why they live on stderr
   and in a side file rather than in the summary tables. *)

type t =
  { p_total : int
  ; p_mode : string
  ; p_jobs : int
  ; p_started : float
  ; p_out : out_channel option
  ; p_heartbeat : (string -> unit) option
  ; p_mutex : Mutex.t
  ; mutable p_done : int
  ; mutable p_completed : int
  ; mutable p_failed : int
  ; mutable p_events : int
  ; mutable p_finished : bool
  }

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* The per-engine fallback counters, as a compact JSON object keyed by
   edge name ("dense_worklist", ...).  Reading them through [Obs] keeps
   this module ignorant of which engines exist; in isolated mode the
   counts grow as worker telemetry is absorbed. *)
let fallbacks_json () =
  let prefix = "supervisor.fallbacks." in
  let plen = String.length prefix in
  let entries =
    Obs.counters_with_prefix prefix
    |> List.map (fun (name, v) ->
      let edge = String.sub name plen (String.length name - plen) in
      Printf.sprintf "\"%s\":%d" (json_escape edge) v)
  in
  "{" ^ String.concat "," entries ^ "}"

let fallbacks_human () =
  match Obs.counters_with_prefix "supervisor.fallbacks." with
  | [] -> ""
  | entries ->
    let total = List.fold_left (fun acc (_, v) -> acc + v) 0 entries in
    Printf.sprintf " | %d fallback%s" total (if total = 1 then "" else "s")

let emit_record t line =
  match t.p_out with
  | None -> ()
  | Some oc ->
    output_string oc line;
    output_char oc '\n';
    flush oc

let emit_heartbeat t line =
  match t.p_heartbeat with
  | None -> ()
  | Some sink -> sink line

let create ?out ?heartbeat ~mode ~jobs ~total () =
  let t =
    { p_total = total
    ; p_mode = mode
    ; p_jobs = jobs
    ; p_started = Unix.gettimeofday ()
    ; p_out = out
    ; p_heartbeat = heartbeat
    ; p_mutex = Mutex.create ()
    ; p_done = 0
    ; p_completed = 0
    ; p_failed = 0
    ; p_events = 0
    ; p_finished = false
    }
  in
  emit_record t
    (Printf.sprintf
       "{\"schema\":\"droidracer-progress/1\",\"mode\":\"%s\",\"jobs\":%d,\"total\":%d}"
       (json_escape mode) jobs total);
  t

let rates t =
  let elapsed = Float.max 1e-9 (Unix.gettimeofday () -. t.p_started) in
  let events_per_sec = float_of_int t.p_events /. elapsed in
  let eta_seconds =
    (* An open-ended stream (total <= 0, e.g. the daemon's request log)
       has no ETA. *)
    if t.p_done = 0 || t.p_total <= 0 then 0.0
    else
      float_of_int (t.p_total - t.p_done) *. elapsed /. float_of_int t.p_done
  in
  (elapsed, events_per_sec, eta_seconds)

let count_label t =
  if t.p_total <= 0 then Printf.sprintf "%d" t.p_done
  else Printf.sprintf "%d/%d" t.p_done t.p_total

let app_done t ~app ~outcome ~engine ~events ~elapsed_seconds
    ?(resumed = false) () =
  Mutex.lock t.p_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.p_mutex) @@ fun () ->
  t.p_done <- t.p_done + 1;
  if String.equal outcome "completed" then
    t.p_completed <- t.p_completed + 1
  else t.p_failed <- t.p_failed + 1;
  t.p_events <- t.p_events + events;
  let _, events_per_sec, eta_seconds = rates t in
  emit_record t
    (Printf.sprintf
       "{\"type\":\"app\",\"app\":\"%s\",\"outcome\":\"%s\",\"engine\":\"%s\",\"events\":%d,\"elapsed_seconds\":%.6f,\"resumed\":%b,\"done\":%d,\"total\":%d,\"events_per_sec\":%.3f,\"eta_seconds\":%.3f,\"fallbacks\":%s}"
       (json_escape app) (json_escape outcome) (json_escape engine) events
       elapsed_seconds resumed t.p_done t.p_total events_per_sec eta_seconds
       (fallbacks_json ()));
  emit_heartbeat t
    (Printf.sprintf "[%s] %s: %s (%s, %d events, %.2fs)%s | %.0f ev/s"
       (count_label t) app outcome engine events elapsed_seconds
       (if resumed then " [resumed]" else "")
       events_per_sec
     ^ (if t.p_total > 0 then Printf.sprintf " | ETA %.0fs" eta_seconds
        else "")
     ^ fallbacks_human ())

let finish t =
  Mutex.lock t.p_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.p_mutex) @@ fun () ->
  if not t.p_finished then begin
    t.p_finished <- true;
    let elapsed, events_per_sec, _ = rates t in
    emit_record t
      (Printf.sprintf
         "{\"type\":\"summary\",\"done\":%d,\"total\":%d,\"completed\":%d,\"failed\":%d,\"events\":%d,\"elapsed_seconds\":%.6f,\"events_per_sec\":%.3f,\"fallbacks\":%s}"
         t.p_done t.p_total t.p_completed t.p_failed t.p_events elapsed
         events_per_sec (fallbacks_json ()));
    emit_heartbeat t
      (Printf.sprintf
         "sweep done: %s apps (%d completed, %d failed) in %.1fs%s"
         (count_label t) t.p_completed t.p_failed elapsed
         (fallbacks_human ()))
  end
