open! Import

external set_mem_limit_mib : int -> unit = "droidracer_set_mem_limit_mib"

(* {1 Retry policy} *)

type retry_policy =
  { max_retries : int
  ; backoff_base : float
  }

let no_retry = { max_retries = 0; backoff_base = 0.0 }

let default_retry = { max_retries = 1; backoff_base = 0.0 }

let backoff_delay policy ~attempt =
  if attempt <= 0 || policy.backoff_base <= 0.0 then 0.0
  else policy.backoff_base *. (2.0 ** float_of_int (attempt - 1))

let total_backoff policy ~retries =
  let rec go k acc =
    if k > retries then acc else go (k + 1) (acc +. backoff_delay policy ~attempt:k)
  in
  go 1 0.0

(* {1 Limits} *)

type limits =
  { deadline_seconds : float option
  ; max_mem_mib : int option
  }

let no_limits = { deadline_seconds = None; max_mem_mib = None }

(* {1 Outcomes} *)

type death =
  | Exited of int
  | Signaled of int
  | Oom_killed of int
  | Stack_overflowed
  | Hard_deadline of float

let signal_name s =
  let known =
    [ (Sys.sigabrt, "SIGABRT")
    ; (Sys.sigalrm, "SIGALRM")
    ; (Sys.sigbus, "SIGBUS")
    ; (Sys.sigfpe, "SIGFPE")
    ; (Sys.sighup, "SIGHUP")
    ; (Sys.sigill, "SIGILL")
    ; (Sys.sigint, "SIGINT")
    ; (Sys.sigkill, "SIGKILL")
    ; (Sys.sigpipe, "SIGPIPE")
    ; (Sys.sigquit, "SIGQUIT")
    ; (Sys.sigsegv, "SIGSEGV")
    ; (Sys.sigterm, "SIGTERM")
    ; (Sys.sigxcpu, "SIGXCPU")
    ; (Sys.sigxfsz, "SIGXFSZ")
    ]
  in
  match List.assoc_opt s known with
  | Some name -> name
  | None -> Printf.sprintf "signal %d" s

let death_message = function
  | Exited c -> Printf.sprintf "worker exited with status %d" c
  | Signaled s -> Printf.sprintf "worker killed by %s" (signal_name s)
  | Oom_killed mib ->
    Printf.sprintf "worker exceeded its %d MiB memory cap (rlimit)" mib
  | Stack_overflowed -> "worker stack overflow"
  | Hard_deadline t ->
    Printf.sprintf "hard deadline of %gs exceeded (worker SIGKILLed)" t

type 'b attempt_result =
  | Value of 'b
  | Died of death

type 'b row =
  { r_result : 'b attempt_result
  ; r_retries : int
  ; r_backoff : float
  ; r_elapsed : float
  ; r_deaths : death list
  }

(* {1 Wire framing}

   One length-prefixed Marshal frame per message.  The parent sends
   [(index, attempt)] pairs; a worker replies with a ['b reply]
   marshalled with [Closures] — parent and child are the same forked
   image, so closure code pointers round-trip.  A short read means the
   peer died; the length prefix bounds the allocation.

   Besides task values, a worker that sees EOF on its request pipe
   ships one final [Reply_telemetry] frame carrying its whole
   [Obs.export_state] blob, so a graceful worker's spans and counters
   survive the process boundary. *)

type 'b reply =
  | Reply_value of int * 'b
  | Reply_telemetry of string

let max_frame_bytes = 1 lsl 30

let rec write_all fd buf pos len =
  if len > 0 then
    match Unix.write fd buf pos len with
    | n -> write_all fd buf (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf pos len

let write_frame fd payload =
  let len = Bytes.length payload in
  let hdr = Bytes.create 8 in
  Bytes.set_int64_be hdr 0 (Int64.of_int len);
  write_all fd hdr 0 8;
  write_all fd payload 0 len

let read_exact fd len =
  let buf = Bytes.create len in
  let rec go pos =
    if pos = len then Some buf
    else
      match Unix.read fd buf pos (len - pos) with
      | 0 -> None
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error (_, _, _) -> None
  in
  go 0

let read_frame fd =
  match read_exact fd 8 with
  | None -> None
  | Some hdr ->
    let len = Int64.to_int (Bytes.get_int64_be hdr 0) in
    if len < 0 || len > max_frame_bytes then None else read_exact fd len

(* {1 The worker side}

   Workers are forked with the task function and item array already in
   memory and loop on the request pipe until EOF.  [Out_of_memory] and
   [Stack_overflow] cannot be reported over the pipe reliably (the
   marshaller itself needs memory), so they become dedicated exit
   statuses the parent translates back. *)

let oom_exit_status = 41
let stack_exit_status = 42
let uncaught_exit_status = 40

let death_of_status ?max_mem_mib status =
  match status with
  | Unix.WEXITED c when c = oom_exit_status ->
    Oom_killed (Option.value max_mem_mib ~default:0)
  | Unix.WEXITED c when c = stack_exit_status -> Stack_overflowed
  | Unix.WEXITED c -> Exited c
  | Unix.WSIGNALED s | Unix.WSTOPPED s -> Signaled s

let in_worker_flag = ref false

let in_worker () = !in_worker_flag

let child_main ~max_mem ~sidecar ~f ~items rfd wfd =
  in_worker_flag := true;
  Obs.on_fork ();
  Obs.set_process_label
    (Printf.sprintf "droidracer-worker-%d" (Unix.getpid ()));
  (match max_mem with
   | Some mib -> (try set_mem_limit_mib mib with _ -> ())
   | None -> ());
  let sidecar_path =
    match sidecar with
    | None -> None
    | Some dir ->
      Some (Filename.concat dir (Printf.sprintf "obs-%d.state" (Unix.getpid ())))
  in
  (* Crash insurance: refresh the sidecar after every task, so a
     SIGKILL (hard deadline, OOM killer) loses at most the task in
     flight.  The write is temp+rename, so the parent never reads a
     torn state. *)
  let write_sidecar () =
    match sidecar_path with
    | Some path when Obs.enabled () ->
      (try Obs.write_state_file path with _ -> ())
    | Some _ | None -> ()
  in
  (* Graceful exit: drop the sidecar (the parent treats surviving
     sidecars as the telemetry of killed workers) and ship the final
     state over the result pipe instead. *)
  let farewell () =
    if Obs.enabled () then begin
      (match sidecar_path with
       | Some path -> (try Sys.remove path with Sys_error _ -> ())
       | None -> ());
      (try
         write_frame wfd
           (Marshal.to_bytes (Reply_telemetry (Obs.export_state ())) [])
       with _ -> ())
    end;
    Unix._exit 0
  in
  write_sidecar ();
  let rec loop () =
    match read_frame rfd with
    | None -> farewell ()
    | Some req ->
      let (idx, attempt) : int * int = Marshal.from_bytes req 0 in
      (match f ~attempt items.(idx) with
       | v ->
         (try
            write_frame wfd
              (Marshal.to_bytes (Reply_value (idx, v)) [ Marshal.Closures ])
          with _ -> Unix._exit 0);
         Obs.maybe_sample ();
         write_sidecar ();
         loop ()
       | exception Out_of_memory -> Unix._exit oom_exit_status
       | exception Stack_overflow -> Unix._exit stack_exit_status
       | exception exn ->
         (try
            Printf.eprintf "proc_pool worker: uncaught exception: %s\n%!"
              (Printexc.to_string exn)
          with _ -> ());
         Unix._exit uncaught_exit_status)
  in
  loop ()

(* {1 The parent side} *)

type 'b task =
  { t_idx : int
  ; t_item : 'b
  ; mutable t_attempt : int
  ; mutable t_ready_at : float  (* earliest (re)dispatch time *)
  ; mutable t_backoff : float
  ; mutable t_started : float  (* first dispatch; nan until then *)
  ; mutable t_deaths : death list  (* newest first *)
  }

type worker_state =
  | Idle
  | Busy of { b_idx : int; b_deadline : float option }
  | Dead of { d_ready_at : float }

type worker =
  { mutable w_pid : int
  ; mutable w_wr : Unix.file_descr  (* parent -> child requests *)
  ; mutable w_rd : Unix.file_descr  (* child -> parent results *)
  ; mutable w_state : worker_state
  ; mutable w_deaths : int  (* consecutive, drives respawn backoff *)
  }

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* A freshly forked child inherits the parent's ends of every sibling
   pipe; it must close them, or the parent would never see EOF when a
   sibling dies. *)
let spawn ~limits ~sidecar ~f ~items ~sibling_fds =
  let req_r, req_w = Unix.pipe ~cloexec:false () in
  let res_r, res_w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | exception Failure _ ->
    (* OCaml 5 refuses [fork] once any domain has ever been spawned,
       even after every domain is joined; quiescing the pool cannot
       lift that.  Re-raise with the actionable constraint. *)
    List.iter close_quietly [ req_r; req_w; res_r; res_w ];
    failwith
      "Proc_pool.map: Unix.fork is unavailable because this process \
       already spawned domains (the OCaml 5 runtime permits fork only \
       before the first Domain.spawn, even if every domain has since \
       been joined); run the isolated sweep before any domain-parallel \
       computation"
  | 0 ->
    List.iter close_quietly sibling_fds;
    close_quietly req_w;
    close_quietly res_r;
    (try child_main ~max_mem:limits.max_mem_mib ~sidecar ~f ~items req_r res_w
     with _ -> ());
    Unix._exit 0
  | pid ->
    close_quietly req_r;
    close_quietly res_w;
    (pid, req_w, res_r)

let map ?(jobs = 1) ?(limits = no_limits) ?(retry = default_retry)
    ?(should_retry = fun _ -> false) ?(on_row = fun _ _ -> ()) f items =
  match items with
  | [] -> []
  | _ ->
    Obs.with_span "proc_pool.map"
      ~args:[ ("items", string_of_int (List.length items)) ]
    @@ fun () ->
    (* Defensive cleanup; it cannot re-enable fork if domains already
       ran (see [spawn]), but it guarantees no worker domain is mid-task
       while we fork. *)
    Par_pool.quiesce ();
    (* When telemetry is on, give the workers a private directory for
       their crash sidecars.  Workers that exit gracefully remove their
       file and ship the state over the pipe instead, so whatever
       remains at the end of the sweep is exactly the killed workers'
       telemetry. *)
    let sidecar_dir =
      if not (Obs.enabled ()) then None
      else begin
        let path = Filename.temp_file "droidracer-obs-" ".d" in
        Sys.remove path;
        try
          Unix.mkdir path 0o700;
          Some path
        with Unix.Unix_error _ -> None
      end
    in
    let items_arr = Array.of_list items in
    let n = Array.length items_arr in
    let jobs = max 1 (min jobs n) in
    let tasks =
      Array.mapi
        (fun i item ->
           { t_idx = i
           ; t_item = item
           ; t_attempt = 0
           ; t_ready_at = 0.0
           ; t_backoff = 0.0
           ; t_started = Float.nan
           ; t_deaths = []
           })
        items_arr
    in
    let pending = ref (Array.to_list tasks) in
    let rows = Array.make n None in
    let finished = ref 0 in
    let prev_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
    let workers = Array.make jobs None in
    let live_fds ~except =
      Array.to_list workers
      |> List.concat_map (function
        | Some w when w.w_pid <> except ->
          (match w.w_state with Dead _ -> [] | _ -> [ w.w_wr; w.w_rd ])
        | Some _ | None -> [])
    in
    let respawn slot =
      let pid, wr, rd =
        spawn ~limits ~sidecar:sidecar_dir ~f ~items:items_arr
          ~sibling_fds:(live_fds ~except:(-1))
      in
      match workers.(slot) with
      | None ->
        workers.(slot) <-
          Some { w_pid = pid; w_wr = wr; w_rd = rd; w_state = Idle; w_deaths = 0 }
      | Some w ->
        Obs.add "proc.restarts";
        w.w_pid <- pid;
        w.w_wr <- wr;
        w.w_rd <- rd;
        w.w_state <- Idle
    in
    let finish task result =
      let now = Unix.gettimeofday () in
      let row =
        { r_result = result
        ; r_retries = task.t_attempt
        ; r_backoff = task.t_backoff
        ; r_elapsed =
            (if Float.is_nan task.t_started then 0.0 else now -. task.t_started)
        ; r_deaths = List.rev task.t_deaths
        }
      in
      rows.(task.t_idx) <- Some row;
      incr finished;
      on_row task.t_idx row
    in
    let requeue task =
      task.t_attempt <- task.t_attempt + 1;
      let delay = backoff_delay retry ~attempt:task.t_attempt in
      task.t_backoff <- task.t_backoff +. delay;
      task.t_ready_at <- Unix.gettimeofday () +. delay;
      Obs.add "proc.retries";
      pending := task :: !pending
    in
    let handle_value task v =
      if should_retry v && task.t_attempt < retry.max_retries then requeue task
      else finish task (Value v)
    in
    let handle_death task death =
      task.t_deaths <- death :: task.t_deaths;
      if task.t_attempt < retry.max_retries then requeue task
      else finish task (Died death)
    in
    (* Reap a dead worker: close its pipes, collect the exit status, and
       schedule the slot's respawn under the consecutive-death backoff. *)
    let reap ?forced w =
      close_quietly w.w_wr;
      close_quietly w.w_rd;
      let _, status = Unix.waitpid [] w.w_pid in
      let death =
        match forced with
        | Some death -> death
        | None ->
          let death = death_of_status ?max_mem_mib:limits.max_mem_mib status in
          (match death with Oom_killed _ -> Obs.add "proc.oom" | _ -> ());
          death
      in
      let busy =
        match w.w_state with
        | Busy b -> Some tasks.(b.b_idx)
        | Idle | Dead _ -> None
      in
      w.w_deaths <- w.w_deaths + 1;
      (* Cap the respawn penalty: the backoff that matters for rows is
         the per-task one; the slot penalty just keeps a poisoned host
         from hot-looping. *)
      let penalty = backoff_delay retry ~attempt:(min w.w_deaths 6) in
      w.w_state <- Dead { d_ready_at = Unix.gettimeofday () +. penalty };
      Option.iter (fun task -> handle_death task death) busy
    in
    let handle_readable w =
      match read_frame w.w_rd with
      | Some frame ->
        (match (Marshal.from_bytes frame 0 : _ reply) with
         | Reply_telemetry state -> ignore (Obs.absorb_state state)
         | Reply_value (idx, v) ->
           (match w.w_state with
            | Busy b when b.b_idx = idx ->
              w.w_deaths <- 0;
              w.w_state <- Idle;
              handle_value tasks.(idx) v
            | Idle | Busy _ | Dead _ ->
              (* A frame we no longer expect (e.g. computed just as the
                 deadline killed the worker): drop it. *)
              ()))
      | None -> reap w
    in
    let dispatch w task =
      let now = Unix.gettimeofday () in
      if Float.is_nan task.t_started then task.t_started <- now;
      match
        write_frame w.w_wr
          (Marshal.to_bytes (task.t_idx, task.t_attempt) [])
      with
      | () ->
        let deadline = Option.map (fun s -> now +. s) limits.deadline_seconds in
        w.w_state <- Busy { b_idx = task.t_idx; b_deadline = deadline }
      | exception Unix.Unix_error _ ->
        (* The worker died before the request reached it: the attempt
           never started, so the task is not charged — requeue as-is. *)
        pending := task :: !pending;
        reap w
    in
    (* Pop the ready task with the lowest index (deterministic under a
       deterministic fault plan; n is corpus-sized, so linear scans are
       fine). *)
    let pop_ready now =
      let best =
        List.fold_left
          (fun acc task ->
             if task.t_ready_at > now then acc
             else
               match acc with
               | Some t when t.t_idx < task.t_idx -> acc
               | _ -> Some task)
          None !pending
      in
      match best with
      | None -> None
      | Some task ->
        pending := List.filter (fun t -> t != task) !pending;
        Some task
    in
    (* After the last task: close each surviving worker's request pipe
       (EOF triggers its telemetry farewell), pump its result pipe for
       the [Reply_telemetry] frame, then scavenge the sidecar files of
       every worker that died without one. *)
    let drain_telemetry () =
      if Obs.enabled () then begin
        let deadline = Unix.gettimeofday () +. 5.0 in
        Array.iter
          (function
            | Some w ->
              (match w.w_state with
               | Dead _ -> ()
               | Idle | Busy _ ->
                 close_quietly w.w_wr;
                 let rec pump () =
                   let remaining = deadline -. Unix.gettimeofday () in
                   if remaining <= 0.0 then
                     (* Too slow: kill it and fall back to its sidecar. *)
                     (try Unix.kill w.w_pid Sys.sigkill
                      with Unix.Unix_error _ -> ())
                   else
                     match Unix.select [ w.w_rd ] [] [] remaining with
                     | [], _, _ ->
                       (try Unix.kill w.w_pid Sys.sigkill
                        with Unix.Unix_error _ -> ())
                     | _ :: _, _, _ ->
                       (match read_frame w.w_rd with
                        | None -> ()
                        | Some frame ->
                          (match (Marshal.from_bytes frame 0 : _ reply) with
                           | Reply_telemetry state ->
                             ignore (Obs.absorb_state state);
                             pump ()
                           | Reply_value _ -> pump ()
                           | exception _ -> ()))
                     | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
                 in
                 pump ();
                 close_quietly w.w_rd;
                 (try ignore (Unix.waitpid [] w.w_pid)
                  with Unix.Unix_error _ -> ());
                 w.w_state <- Dead { d_ready_at = Float.infinity })
            | None -> ())
          workers;
        match sidecar_dir with
        | None -> ()
        | Some dir ->
          (match Sys.readdir dir with
           | files ->
             Array.iter
               (fun file ->
                  if String.starts_with ~prefix:"obs-" file then
                    ignore (Obs.absorb_state_file (Filename.concat dir file)))
               files
           | exception Sys_error _ -> ())
      end
    in
    let cleanup () =
      Array.iter
        (function
          | Some w ->
            (match w.w_state with
             | Dead _ -> ()
             | Idle | Busy _ ->
               close_quietly w.w_wr;
               close_quietly w.w_rd;
               (try Unix.kill w.w_pid Sys.sigkill
                with Unix.Unix_error _ -> ());
               (try ignore (Unix.waitpid [] w.w_pid)
                with Unix.Unix_error _ -> ()))
          | None -> ())
        workers;
      (match sidecar_dir with
       | None -> ()
       | Some dir ->
         (match Sys.readdir dir with
          | files ->
            Array.iter
              (fun file ->
                 try Sys.remove (Filename.concat dir file)
                 with Sys_error _ -> ())
              files
          | exception Sys_error _ -> ());
         (try Unix.rmdir dir with Unix.Unix_error _ -> ()));
      ignore (Sys.signal Sys.sigpipe prev_sigpipe)
    in
    Fun.protect ~finally:cleanup (fun () ->
      for slot = 0 to jobs - 1 do
        respawn slot
      done;
      while !finished < n do
        Obs.maybe_sample ();
        let now = Unix.gettimeofday () in
        (* Respawn slots whose backoff has elapsed, while work remains. *)
        Array.iteri
          (fun slot w ->
             match w with
             | Some { w_state = Dead { d_ready_at }; _ }
               when now >= d_ready_at && !pending <> [] ->
               respawn slot
             | Some _ | None -> ())
          workers;
        (* Hand ready tasks to idle workers. *)
        Array.iter
          (function
            | Some ({ w_state = Idle; _ } as w) ->
              (match pop_ready now with
               | Some task -> dispatch w task
               | None -> ())
            | Some _ | None -> ())
          workers;
        if !finished < n then begin
          (* Earliest future event: a hard deadline, a backoff expiry,
             or a slot respawn. *)
          let wake = ref None in
          let consider t =
            match !wake with
            | Some t' when t' <= t -> ()
            | _ -> wake := Some t
          in
          Array.iter
            (function
              | Some { w_state = Busy { b_deadline = Some d; _ }; _ } ->
                consider d
              | Some { w_state = Dead { d_ready_at }; _ } ->
                if !pending <> [] then consider d_ready_at
              | Some _ | None -> ())
            workers;
          List.iter (fun task -> consider task.t_ready_at) !pending;
          let fds =
            Array.to_list workers
            |> List.filter_map (function
              | Some w ->
                (match w.w_state with
                 | Dead _ -> None
                 | Idle | Busy _ -> Some w.w_rd)
              | None -> None)
          in
          let timeout =
            match !wake with
            | None -> -1.0 (* block until a worker speaks *)
            | Some t -> Float.max 0.001 (t -. Unix.gettimeofday ())
          in
          if fds = [] && !wake = None then
            failwith "Proc_pool.map: stalled (no workers, no scheduled work)";
          let readable =
            match Unix.select fds [] [] timeout with
            | readable, _, _ -> readable
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
          in
          Array.iter
            (function
              | Some w
                when (match w.w_state with Dead _ -> false | _ -> true)
                     && List.memq w.w_rd readable -> handle_readable w
              | Some _ | None -> ())
            workers;
          (* Enforce hard deadlines. *)
          let now = Unix.gettimeofday () in
          Array.iter
            (function
              | Some
                  ({ w_state = Busy { b_deadline = Some d; _ }; _ } as w)
                when now >= d ->
                Obs.add "proc.kills";
                (try Unix.kill w.w_pid Sys.sigkill
                 with Unix.Unix_error _ -> ());
                let budget =
                  Option.value limits.deadline_seconds ~default:0.0
                in
                reap ~forced:(Hard_deadline budget) w
              | Some _ | None -> ())
            workers
        end
      done;
      drain_telemetry ();
      Array.to_list rows
      |> List.map (function
        | Some row -> row
        | None -> assert false))
