open! Import

(** An out-of-process worker pool: the fourth execution substrate, after
    sequential code, {!Par_pool} domains and cooperative supervision.

    {!Supervisor} isolates failures only {e cooperatively}: a tight loop
    that never reaches a deadline checkpoint, a native stack overflow,
    or an allocation storm still takes the whole sweep down with it.
    This pool runs each task in a forked child instead, so the parent
    can enforce what no in-process layer can:

    - {e hard deadlines}: a worker past its per-attempt wall budget is
      SIGKILLed (counter [proc.kills]) — even a non-cooperative infinite
      loop dies on schedule;
    - {e memory containment}: each worker caps its own address space
      with [setrlimit(RLIMIT_AS)] ([max_mem_mib] of headroom over the
      inherited image); an allocation past the cap raises
      [Out_of_memory] in the child, which exits with a dedicated status
      the parent reports as an {!Oom_killed} death (counter [proc.oom]);
    - {e crash containment}: a worker that dies of a signal (segfault,
      kill) or a nonzero exit costs one failure row, never the sweep;
    - {e deterministic restarts}: a dead worker is re-forked (counter
      [proc.restarts]) and the interrupted task re-dispatched under the
      seeded, jitter-free exponential backoff of {!retry_policy}
      (counter [proc.retries]).

    Tasks and results cross a length-prefixed pipe as [Marshal] frames
    (with [Marshal.Closures]; parent and child are the same image, so
    closures round-trip).  Workers are forked when {!map} is called and
    inherit the task function and item array by fork, so only an
    [(index, attempt)] pair travels down and one result frame travels
    back per task.

    {b Telemetry crosses the process boundary.}  When {!Obs.enabled},
    each worker calls [Obs.on_fork] at birth, refreshes a crash-safe
    sidecar file with its whole [Obs] state after every task, and on
    the graceful EOF shutdown removes the sidecar and ships a final
    telemetry frame up the result pipe instead.  After the last task
    the parent drains those farewell frames and absorbs the sidecars
    left behind by SIGKILL'd workers, so [Obs.snapshot] in the parent
    sees every worker's spans, counters, histograms, series, and one
    [proc.worker_rss_peak_kb] histogram sample per worker process.

    {b Fork before domains.}  The OCaml 5 runtime refuses [Unix.fork]
    once any domain has ever been spawned — joining them does not lift
    the restriction — so {!map} must run before the process's first
    domain-parallel computation.  ({!Par_pool.quiesce} is still called
    defensively; a too-late call fails fast with a diagnostic naming
    this constraint.)  The [corpus --isolate] sweep satisfies the rule
    by construction: process isolation replaces the domain pool rather
    than nesting inside it. *)

(** {1 Retry policy}

    Shared by this pool and the cooperative {!Supervisor}: the delay
    before retry [k] (1-based) is [backoff_base * 2^(k-1)] seconds —
    deterministic and jitter-free, so failure rows and timings are
    reproducible. *)

type retry_policy =
  { max_retries : int  (** additional attempts after the first *)
  ; backoff_base : float  (** seconds before the first retry *)
  }

val no_retry : retry_policy
(** [{ max_retries = 0; backoff_base = 0.0 }]. *)

val default_retry : retry_policy
(** [{ max_retries = 1; backoff_base = 0.0 }] — the retry-once of the
    original supervisor. *)

val backoff_delay : retry_policy -> attempt:int -> float
(** Delay before the given attempt (attempt 0 is free; attempt [k >= 1]
    waits [backoff_base * 2^(k-1)]). *)

val total_backoff : retry_policy -> retries:int -> float
(** Sum of {!backoff_delay} over attempts [1..retries]. *)

(** {1 Limits} *)

type limits =
  { deadline_seconds : float option
        (** hard per-attempt wall budget, enforced by parent SIGKILL *)
  ; max_mem_mib : int option
        (** child address-space headroom, enforced by [setrlimit] *)
  }

val no_limits : limits

(** {1 Outcomes} *)

type death =
  | Exited of int  (** child exited with this nonzero status *)
  | Signaled of int  (** child killed by this signal (OCaml numbering) *)
  | Oom_killed of int  (** allocation past the MiB cap *)
  | Stack_overflowed  (** native stack exhausted in the child *)
  | Hard_deadline of float  (** parent SIGKILL after the wall budget *)

val signal_name : int -> string
(** ["SIGSEGV"], ["SIGKILL"], … or ["signal N"] for exotic ones. *)

val death_message : death -> string

val death_of_status : ?max_mem_mib:int -> Unix.process_status -> death
(** Classify a [waitpid] status using the pool's reserved exit statuses
    ({!oom_exit_status} → [Oom_killed max_mem_mib], {!stack_exit_status}
    → [Stack_overflowed]).  Shared with the serving layer, whose
    persistent workers die under the same contract. *)

(** {1 Reserved worker exit statuses}

    [Out_of_memory] and [Stack_overflow] cannot be reported over a pipe
    reliably (the marshaller itself needs memory), so they become
    dedicated exit statuses; {!death_of_status} translates them back. *)

val oom_exit_status : int  (** 41 — allocation past the rlimit cap *)

val stack_exit_status : int  (** 42 — native stack exhausted *)

val uncaught_exit_status : int  (** 40 — uncaught exception in a worker *)

(** {1 Wire framing}

    One length-prefixed frame per message: an 8-byte big-endian length
    header followed by the payload.  Reads and writes retry [EINTR] and
    resume across partial transfers, so a signal landing mid-frame (the
    daemon's whole life) never tears a message.  These primitives are
    shared with {!module:Droidracer_service}, which speaks the same
    framing over its client sockets and worker pipes. *)

val max_frame_bytes : int
(** Upper bound (1 GiB) on a frame's payload length; a header past it is
    treated as a protocol error ({!read_frame} returns [None]). *)

val write_all : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** [write_all fd buf pos len] writes exactly [len] bytes, retrying
    partial writes and [EINTR].  Raises [Unix_error] on a dead peer
    ([EPIPE] arrives as the error, not the signal, wherever SIGPIPE is
    ignored). *)

val write_frame : Unix.file_descr -> Bytes.t -> unit
(** Length header + payload via {!write_all}. *)

val read_exact : Unix.file_descr -> int -> Bytes.t option
(** [read_exact fd len] reads exactly [len] bytes, retrying [EINTR];
    [None] on EOF or error (a short read means the peer died). *)

val read_frame : Unix.file_descr -> Bytes.t option
(** One whole frame, or [None] on EOF, error, or an implausible length. *)

type 'b attempt_result =
  | Value of 'b  (** the worker returned normally *)
  | Died of death  (** every attempt ended in a worker death *)

type 'b row =
  { r_result : 'b attempt_result  (** the final attempt's outcome *)
  ; r_retries : int  (** attempts beyond the first *)
  ; r_backoff : float  (** total seconds spent in backoff delays *)
  ; r_elapsed : float  (** first dispatch to final outcome, wall *)
  ; r_deaths : death list  (** all worker deaths, oldest first *)
  }

val in_worker : unit -> bool
(** True inside a forked pool worker — lets task code pick a
    child-appropriate strategy (e.g. genuinely allocating into the
    rlimit rather than raising [Out_of_memory] directly). *)

(** {1 The pool} *)

val map :
  ?jobs:int ->
  ?limits:limits ->
  ?retry:retry_policy ->
  ?should_retry:('b -> bool) ->
  ?on_row:(int -> 'b row -> unit) ->
  (attempt:int -> 'a -> 'b) ->
  'a list ->
  'b row list
(** [map f items] runs [f ~attempt item] for each item in a pool of
    [jobs] forked workers (default 1; capped at the item count) and
    returns one row per item, in input order.

    Worker deaths are always eligible for retry; a normally returned
    value is retried when [should_retry] accepts it (default: never).
    Either way the attempt budget and backoff come from [retry]
    (default {!default_retry}).  [on_row] fires in the parent the
    moment a row is final — the journal layer appends its record there,
    which is what makes a SIGKILLed sweep resumable.

    [f] should confine its own failures to its return value; an
    uncaught exception costs the worker its life ([Exited] death).
    [Out_of_memory] and [Stack_overflow] escaping [f] are translated to
    the dedicated exit statuses behind {!Oom_killed} and
    {!Stack_overflowed}. *)
