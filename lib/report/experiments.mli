open! Import

(** Drivers that regenerate every table and figure of the paper's
    evaluation (Section 6), in the shape of {!Table} values.  The bench
    executable and the [droidracer] CLI print them; EXPERIMENTS.md
    records paper-versus-measured for a reference run. *)

(** One application of the corpus, executed and analysed. *)
type app_run =
  { ar_built : Synthetic.built
  ; ar_result : Runtime.run_result
  ; ar_report : Detector.report
  }

val run_spec : ?config:Detector.config -> Synthetic.spec -> app_run
(** Builds (with calibration), runs the representative test and analyses
    its observed trace with the given detector configuration (default
    {!Detector.default_config}). *)

val run_catalog :
  ?jobs:int ->
  ?specs:Synthetic.spec list ->
  ?config:Detector.config ->
  unit ->
  app_run list
(** All fifteen applications by default.  With [jobs > 1] (default 1)
    applications run on a {!Par_pool}, one domain per application; the
    returned runs are in spec order and identical (modulo wall-clock
    timings) for every [jobs] value. *)

val table2 : app_run list -> Table.t
(** Table 2: per-application trace statistics, paper vs measured.
    Binder threads are excluded from the thread counts, as in the
    paper. *)

val table3 : ?verify:bool -> ?attempts:int -> app_run list -> Table.t
(** Table 3: data races per category, paper vs measured.  With [verify]
    (default true) each open-source plant is re-scheduled by
    {!Verify.verify} and the measured true-positive counts come from the
    confirmed plants; proprietary rows show report counts only, as in
    the paper. *)

val performance_table : app_run list -> Table.t
(** The Section 6 "Performance" summary: graph nodes before and after
    coalescing (the paper reports 1.4–24.8 %, average 11.1 %),
    happens-before pairs, fixpoint passes and analysis time. *)

val baseline_table : app_run list -> Table.t
(** The specialization ablation: multithreaded-only, event-driven-only
    and naïve-combined happens-before versus the paper's relation
    (missed races = false negatives, extra = additional reports). *)

val engine_table : app_run list -> Table.t
(** Precise graph engine versus the online vector-clock engine: race
    counts and analysis times. *)

val coverage_table : app_run list -> Table.t
(** Race coverage (reference [24]): how many root races remain after
    grouping, per application — the triage reduction Section 6 suggests
    for ad-hoc-synchronization false positives. *)

val front_rule_table : app_run list -> Table.t
(** The front-of-queue extension (deferred by the paper to future work):
    with the LIFO pre-emption rule enabled, the unknown-category races —
    which this corpus plants through front posts — are ordered away. *)

val environment_model_table : unit -> Table.t
(** The enable-modelling ablation on the music player: without the
    environment model, the Figure 4 false positive appears
    (Section 2.4). *)

val lifecycle_table : unit -> Table.t
(** Figure 8: the activity lifecycle machine as a state/successor
    table. *)

val music_player_summary : unit -> Table.t
(** The motivating example: races of the PLAY and BACK scenarios with
    classification and verification verdicts. *)
