open! Import

(* {1 Budgets} *)

type budget =
  { timeout_seconds : float option
  ; max_events : int option
  }

let no_budget = { timeout_seconds = None; max_events = None }

(* {1 Outcomes} *)

type reason =
  | Rejected of string
  | Crashed of string
  | Timed_out of float

let reason_label = function
  | Rejected _ -> "rejected"
  | Crashed _ -> "crashed"
  | Timed_out _ -> "timeout"

let reason_detail = function
  | Rejected msg | Crashed msg -> msg
  | Timed_out t -> Printf.sprintf "wall-clock budget of %gs exceeded" t

type failure =
  { f_app : string
  ; f_reason : reason
  ; f_engine : string
  ; f_elapsed : float
  ; f_retries : int
  ; f_backoff : float
  }

(* An attempt failure carries the closure engine the attempt ran (or
   would have run) under, so the fallback decision survives the trip
   back from an isolated worker — the row is marshalled, a worker-side
   counter would not. *)
type attempt_error =
  { ae_reason : reason
  ; ae_engine : string
  }

let configured_engine config =
  Happens_before.closure_engine_name
    config.Detector.hb.Happens_before.closure

type outcome =
  | Completed of Experiments.app_run
  | Failed of failure

let completed outcomes =
  List.filter_map
    (function Completed r -> Some r | Failed _ -> None)
    outcomes

let failures outcomes =
  List.filter_map (function Failed f -> Some f | Completed _ -> None) outcomes

let failure_table fs =
  let table =
    Table.create ~title:"Supervisor: applications that did not complete"
      ~columns:
        [ "Application"
        ; "Outcome"
        ; "Reason"
        ; "Engine"
        ; "Elapsed"
        ; "Retries"
        ; "Backoff"
        ]
  in
  List.iter
    (fun f ->
       Table.add_row table
         [ f.f_app
         ; reason_label f.f_reason
         ; reason_detail f.f_reason
         ; f.f_engine
         ; Printf.sprintf "%.3fs" f.f_elapsed
         ; string_of_int f.f_retries
         ; Printf.sprintf "%.3fs" f.f_backoff
         ])
    fs;
  table

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let failures_json_string fs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"schema\":\"droidracer-failures/1\",\"failures\":[";
  List.iteri
    (fun i f ->
       if i > 0 then Buffer.add_char buf ',';
       Printf.bprintf buf
         "{\"app\":\"%s\",\"outcome\":\"%s\",\"reason\":\"%s\",\"engine\":\"%s\",\"elapsed_seconds\":%.6f,\"retries\":%d,\"backoff_seconds\":%.6f}"
         (json_escape f.f_app)
         (reason_label f.f_reason)
         (json_escape (reason_detail f.f_reason))
         (json_escape f.f_engine)
         f.f_elapsed f.f_retries f.f_backoff)
    fs;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* {1 Fault injection}

   The plan must be a pure function of (seed, application name): the
   same rows come out for jobs = 1 and jobs = 4, and a test can predict
   every outcome without running the sweep.  [Hashtbl.hash] is not
   guaranteed stable across compiler versions, so the mix is spelled
   out (FNV-1a). *)

type fault =
  | Parse_fault
  | Reject_fault
  | Crash_fault
  | Timeout_fault
  | Oom_fault
  | Hang_fault

let fault_name = function
  | Parse_fault -> "parse"
  | Reject_fault -> "reject"
  | Crash_fault -> "crash"
  | Timeout_fault -> "timeout"
  | Oom_fault -> "oom"
  | Hang_fault -> "hang"

(* The original four classes, in their original positions: under
   [basic_faults] the plan is bit-identical to the one every pinned seed
   in the tests and CI was computed against. *)
let basic_faults = [ Parse_fault; Reject_fault; Crash_fault; Timeout_fault ]

let all_faults = basic_faults @ [ Oom_fault; Hang_fault ]

type decision =
  { d_fault : fault option
  ; d_transient : bool
  }

let fnv1a seed app =
  let h = ref 0x811c9dc5 in
  let feed byte =
    h := (!h lxor byte) * 0x01000193 land 0x3FFFFFFF
  in
  feed (seed land 0xff);
  feed ((seed asr 8) land 0xff);
  feed ((seed asr 16) land 0xff);
  feed ((seed asr 24) land 0xff);
  String.iter (fun c -> feed (Char.code c)) app;
  !h

let fault_decision ?(classes = basic_faults) ~seed ~app () =
  let h = fnv1a seed app in
  if classes = [] || h mod 3 <> 0 then { d_fault = None; d_transient = false }
  else begin
    let k = List.length classes in
    let fault = List.nth classes (h / 3 mod k) in
    { d_fault = Some fault; d_transient = h / (3 * k) mod 2 = 0 }
  end

(* The installed plan, visible to every worker domain (and, by fork, to
   every isolated worker process). *)
let fault_plan : (int * fault list) option Atomic.t = Atomic.make None

let with_faults ?(classes = basic_faults) ~seed f =
  Atomic.set fault_plan (Some (seed, classes));
  Fun.protect ~finally:(fun () -> Atomic.set fault_plan None) f

(* {1 The supervised pipeline} *)

exception Rejected_exn of string
exception Timed_out_exn of float

let injected cls ~attempt name =
  match Atomic.get fault_plan with
  | None -> false
  | Some (seed, classes) ->
    let d = fault_decision ~classes ~seed ~app:name () in
    (match d.d_fault with
     | Some f when f = cls -> (not d.d_transient) || attempt = 0
     | Some _ | None -> false)

(* Analyses run inside the calling domain, so the wall-clock budget is
   cooperative: the deadline is checked between pipeline phases, never
   preemptively. *)
let checkpoint ~deadline =
  match deadline with
  | Some (d, t) when Unix.gettimeofday () > d -> raise (Timed_out_exn t)
  | Some _ | None -> ()

(* The two non-cooperative fault classes.  Inside an isolated worker
   they misbehave for real — the allocation storm runs into the child's
   rlimit and the hang never reaches a checkpoint, so containment is
   exercised end to end.  In the cooperative (in-process) supervisor
   they stay survivable: the storm is simulated by raising directly
   (genuinely exhausting memory would take the whole sweep down, which
   is the point of --isolate), and the hang polls the cooperative
   deadline. *)

let trigger_oom () =
  if Proc_pool.in_worker () then begin
    let hoard = ref [] in
    (* Bounded so an uncapped worker cannot eat the host; any realistic
       --max-mem trips the rlimit long before 8 GiB. *)
    for _ = 1 to 512 do
      hoard := Bytes.create (16 * 1024 * 1024) :: !hoard
    done;
    ignore (Sys.opaque_identity !hoard)
  end;
  raise Out_of_memory

let hang ~deadline =
  if Proc_pool.in_worker () then
    let rec spin () =
      Unix.sleepf 3600.0;
      spin ()
    in
    spin ()
  else
    let rec spin () =
      checkpoint ~deadline;
      Unix.sleepf 0.05;
      spin ()
    in
    spin ()

(* Over the event budget the analysis degrades instead of refusing.
   Moderately over (events <= 10x the cap) the sparse worklist engine
   computes the identical relation with far less re-scanning; an order
   of magnitude over, even the worklist matrices do not fit, so the
   single-pass streaming engine takes over (a sound under-approximation
   — see Streaming_engine).  Each edge of the chain has its own Obs
   counter so a sweep's report says not just that fallbacks happened
   but which ones. *)
let budgeted_config ~budget ~events config =
  let with_closure closure =
    { config with
      Detector.hb = { config.Detector.hb with Happens_before.closure }
    }
  in
  let fall edge target =
    Obs.add ("supervisor.fallbacks." ^ edge);
    Obs.set_span_arg "closure_fallback"
      (Happens_before.closure_engine_name target);
    with_closure target
  in
  match budget.max_events with
  | Some cap when events > cap -> begin
    let far_over = events > 10 * cap in
    match config.Detector.hb.Happens_before.closure with
    | Happens_before.Dense when far_over ->
      fall "dense_streaming" Happens_before.Streaming
    | Happens_before.Dense -> fall "dense_worklist" Happens_before.Worklist
    | Happens_before.Worklist when far_over ->
      fall "worklist_streaming" Happens_before.Streaming
    | Happens_before.Worklist | Happens_before.Streaming -> config
  end
  | _ -> config

let validate_observed name trace =
  match Obs.with_span "supervisor.validate" (fun () -> Wellformed.check trace) with
  | Ok _stats -> ()
  | Error e ->
    raise
      (Rejected_exn
         (Printf.sprintf "%s: observed trace rejected: %s" name
            (Wellformed.error_message e)))

let attempt_app ~engine ~config ~budget ~attempt spec =
  let name = spec.Synthetic.s_name in
  Obs.with_span "supervisor.app"
    ~args:[ ("app", name); ("attempt", string_of_int attempt) ]
  @@ fun () ->
  let deadline =
    Option.map
      (fun t -> (Unix.gettimeofday () +. t, t))
      budget.timeout_seconds
  in
  if injected Timeout_fault ~attempt name then
    raise
      (Timed_out_exn (Option.value budget.timeout_seconds ~default:0.0));
  if injected Oom_fault ~attempt name then trigger_oom ();
  if injected Hang_fault ~attempt name then hang ~deadline;
  if injected Parse_fault ~attempt name then
    raise
      (Rejected_exn
         (Printf.sprintf "%s: %s" name
            (Trace_io.parse_error_message
               { Trace_io.pe_line = 1
               ; pe_column = 1
               ; pe_token = Some "\xffinjected"
               ; pe_message = "injected parse fault: expected a thread id like t0"
               })));
  let built = Obs.with_span "supervisor.build" (fun () -> Synthetic.build spec) in
  checkpoint ~deadline;
  let result =
    Obs.with_span "supervisor.run" (fun () ->
      Runtime.run ~options:built.Synthetic.b_options built.Synthetic.b_app
        built.Synthetic.b_events)
  in
  checkpoint ~deadline;
  let observed = result.Runtime.observed in
  if injected Reject_fault ~attempt name then
    raise
      (Rejected_exn
         (Printf.sprintf
            "%s: observed trace rejected: line 1: [fifo-violation] injected \
             validator reject"
            name));
  validate_observed name observed;
  checkpoint ~deadline;
  let config = budgeted_config ~budget ~events:(Trace.length observed) config in
  engine := configured_engine config;
  if injected Crash_fault ~attempt name then
    failwith "injected task exception";
  let report =
    Obs.with_span "supervisor.analyze" (fun () ->
      Detector.analyze ~config observed)
  in
  checkpoint ~deadline;
  { Experiments.ar_built = built; ar_result = result; ar_report = report }

(* One attempt, classified.  [Out_of_memory] and [Stack_overflow] are
   deliberately NOT captured here: containment for those belongs to the
   process layer (the isolated child exits with a dedicated status), so
   they must escape the classifier.  The cooperative wrapper in
   {!run_app} catches them one level up instead. *)
let attempt_result ~config ~budget ~attempt spec =
  let engine = ref (configured_engine config) in
  let err reason = Error { ae_reason = reason; ae_engine = !engine } in
  match attempt_app ~engine ~config ~budget ~attempt spec with
  | run -> Ok run
  | exception Rejected_exn msg ->
    Obs.add "ingest.rejected";
    err (Rejected msg)
  | exception Timed_out_exn t ->
    Obs.add "supervisor.timeouts";
    err (Timed_out t)
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception exn -> err (Crashed (Printexc.to_string exn))

let retryable = function
  | Rejected _ ->
    (* Rejection is a verdict about the input, which a retry cannot
       change; crashes and timeouts may be environmental. *)
    false
  | Crashed _ | Timed_out _ -> true

let run_app ?(config = Detector.default_config) ?(budget = no_budget)
    ?(retry = Proc_pool.default_retry) spec =
  let name = spec.Synthetic.s_name in
  let started = Unix.gettimeofday () in
  let once attempt =
    match attempt_result ~config ~budget ~attempt spec with
    | r -> r
    | exception Out_of_memory ->
      Error
        { ae_reason = Crashed "out of memory"
        ; ae_engine = configured_engine config
        }
    | exception Stack_overflow ->
      Error
        { ae_reason = Crashed "stack overflow"
        ; ae_engine = configured_engine config
        }
  in
  let fail ae retries backoff =
    Failed
      { f_app = name
      ; f_reason = ae.ae_reason
      ; f_engine = ae.ae_engine
      ; f_elapsed = Unix.gettimeofday () -. started
      ; f_retries = retries
      ; f_backoff = backoff
      }
  in
  let rec go attempt backoff =
    match once attempt with
    | Ok run -> Completed run
    | Error ae ->
      if retryable ae.ae_reason && attempt < retry.Proc_pool.max_retries
      then begin
        Obs.add "supervisor.retries";
        let delay = Proc_pool.backoff_delay retry ~attempt:(attempt + 1) in
        if delay > 0.0 then Unix.sleepf delay;
        go (attempt + 1) (backoff +. delay)
      end
      else fail ae attempt backoff
  in
  go 0 0.0

(* {1 Catalog sweeps} *)

type mode =
  | Cooperative
  | Isolated of { max_mem_mib : int option }

let reason_of_death death =
  match death with
  | Proc_pool.Hard_deadline t -> Timed_out t
  | d -> Crashed (Proc_pool.death_message d)

let outcome_of_row ~engine spec (row : _ Proc_pool.row) =
  match row.Proc_pool.r_result with
  | Proc_pool.Value (Ok run) -> Completed run
  | Proc_pool.Value (Error ae) ->
    Failed
      { f_app = spec.Synthetic.s_name
      ; f_reason = ae.ae_reason
      ; f_engine = ae.ae_engine
      ; f_elapsed = row.Proc_pool.r_elapsed
      ; f_retries = row.Proc_pool.r_retries
      ; f_backoff = row.Proc_pool.r_backoff
      }
  | Proc_pool.Died death ->
    (* A dead worker reports nothing, so the best attribution is the
       engine the sweep was configured with. *)
    Failed
      { f_app = spec.Synthetic.s_name
      ; f_reason = reason_of_death death
      ; f_engine = engine
      ; f_elapsed = row.Proc_pool.r_elapsed
      ; f_retries = row.Proc_pool.r_retries
      ; f_backoff = row.Proc_pool.r_backoff
      }

let record_outcome journal ~app outcome =
  match journal with
  | None -> ()
  | Some j ->
    Journal.append j ~app
      ~payload:(Marshal.to_string (outcome : outcome) [ Marshal.Closures ])

(* Outcomes already journalled by an interrupted sweep; replayed instead
   of re-run.  The journal layer has already discarded records from a
   different binary, so unmarshalling (closures included) is safe. *)
let journalled_outcomes journal =
  match journal with
  | None -> Hashtbl.create 0
  | Some j ->
    let table = Hashtbl.create 16 in
    List.iter
      (fun (app, payload) ->
         match (Marshal.from_string payload 0 : outcome) with
         | outcome ->
           if not (Hashtbl.mem table app) then Hashtbl.add table app outcome
         | exception _ -> ())
      (Journal.prior j);
    table

(* One progress record per finished app, whatever substrate finished
   it.  Completed rows report the observed event count and the
   analysis wall time; failures report the failure label and the
   engine the attempt was using. *)
let report_progress progress ?(resumed = false) ~engine spec outcome =
  match progress with
  | None -> ()
  | Some p ->
    let app = spec.Synthetic.s_name in
    (match outcome with
     | Completed run ->
       (* Completed runs are attributed to the engine the sweep was
          configured with — the same rule [outcome_of_row] applies to
          dead workers; failures carry their own attribution. *)
       Progress.app_done p ~app ~outcome:"completed" ~engine
         ~events:(Trace.length run.Experiments.ar_result.Runtime.observed)
         ~elapsed_seconds:run.Experiments.ar_report.Detector.elapsed_seconds
         ~resumed ()
     | Failed f ->
       Progress.app_done p ~app ~outcome:(reason_label f.f_reason)
         ~engine:f.f_engine ~events:0 ~elapsed_seconds:f.f_elapsed ~resumed ())

let run_catalog ?(jobs = 1) ?(specs = Catalog.all)
    ?(config = Detector.default_config) ?(budget = no_budget)
    ?(retry = Proc_pool.default_retry) ?(mode = Cooperative) ?journal
    ?progress () =
  Obs.with_span "supervisor.catalog" @@ fun () ->
  let prior = journalled_outcomes journal in
  let resumed name = Hashtbl.find_opt prior name in
  let to_run =
    List.filter
      (fun spec -> resumed spec.Synthetic.s_name = None)
      specs
  in
  let n_resumed = List.length specs - List.length to_run in
  if n_resumed > 0 then Obs.add ~n:n_resumed "journal.resumed";
  let engine = configured_engine config in
  List.iter
    (fun spec ->
       match resumed spec.Synthetic.s_name with
       | Some outcome ->
         report_progress progress ~resumed:true ~engine spec outcome
       | None -> ())
    specs;
  let fresh = Hashtbl.create 16 in
  let record spec outcome =
    record_outcome journal ~app:spec.Synthetic.s_name outcome;
    report_progress progress ~engine spec outcome
  in
  (match mode with
   | Cooperative ->
     (* The journal append is mutex-protected, so recording from worker
        domains as each app finishes is safe — and is what bounds the
        loss of a killed sweep to the apps still in flight. *)
     List.iter2
       (fun spec outcome -> Hashtbl.replace fresh spec.Synthetic.s_name outcome)
       to_run
       (Par_pool.parallel_map ~jobs
          (fun spec ->
             let outcome = run_app ~config ~budget ~retry spec in
             record spec outcome;
             outcome)
          to_run)
   | Isolated { max_mem_mib } ->
     let specs_arr = Array.of_list to_run in
     let limits =
       { Proc_pool.deadline_seconds = budget.timeout_seconds; max_mem_mib }
     in
     let rows =
       Proc_pool.map ~jobs ~limits ~retry
         ~should_retry:(function
           | Ok _ -> false
           | Error ae -> retryable ae.ae_reason)
         ~on_row:(fun idx row ->
           record specs_arr.(idx) (outcome_of_row ~engine specs_arr.(idx) row))
         (fun ~attempt spec -> attempt_result ~config ~budget ~attempt spec)
         to_run
     in
     List.iteri
       (fun idx row ->
          Hashtbl.replace fresh specs_arr.(idx).Synthetic.s_name
            (outcome_of_row ~engine specs_arr.(idx) row))
       rows);
  (* In isolated mode the worker telemetry has been drained by now, so
     the summary record's fallback counts are fleet-wide. *)
  (match progress with Some p -> Progress.finish p | None -> ());
  List.map
    (fun spec ->
       let name = spec.Synthetic.s_name in
       match resumed name with
       | Some outcome -> outcome
       | None ->
         (match Hashtbl.find_opt fresh name with
          | Some outcome -> outcome
          | None -> assert false))
    specs

let analyze ?(config = Detector.default_config) ?(jobs = 1)
    ?(budget = no_budget) ~name trace =
  let started = Unix.gettimeofday () in
  let engine = ref (configured_engine config) in
  let fail reason =
    Error
      { f_app = name
      ; f_reason = reason
      ; f_engine = !engine
      ; f_elapsed = Unix.gettimeofday () -. started
      ; f_retries = 0
      ; f_backoff = 0.0
      }
  in
  match
    Obs.with_span "supervisor.analyze_one" ~args:[ ("name", name) ]
    @@ fun () ->
    let deadline =
      Option.map
        (fun t -> (Unix.gettimeofday () +. t, t))
        budget.timeout_seconds
    in
    validate_observed name trace;
    checkpoint ~deadline;
    let config = budgeted_config ~budget ~events:(Trace.length trace) config in
    engine := configured_engine config;
    let report = Detector.analyze ~config ~jobs trace in
    checkpoint ~deadline;
    report
  with
  | report -> Ok report
  | exception Rejected_exn msg ->
    Obs.add "ingest.rejected";
    fail (Rejected msg)
  | exception Timed_out_exn t ->
    Obs.add "supervisor.timeouts";
    fail (Timed_out t)
  | exception exn -> fail (Crashed (Printexc.to_string exn))

(* {1 Trace-file sweeps} *)

type file_report =
  { fr_file : string
  ; fr_name : string
  ; fr_events : int
  ; fr_races : int
  ; fr_distinct : int
  ; fr_engine : string
  ; fr_elapsed : float
  ; fr_locations : string list
  }

type file_outcome =
  | File_completed of file_report
  | File_failed of failure

(* The sweep key: basename without extension, so a binary sweep of
   variant-0000.drt and a text sweep of variant-0000.trace journal and
   report under the same name — which is what lets a corpus gate diff
   the two race tables row by row. *)
let file_key path = Filename.remove_extension (Filename.basename path)

(* The file analogue of [attempt_app]: load (either trace format — the
   loader sniffs the magic), validate, analyze.  The same injected
   faults apply, keyed by the sweep name, so the degradation paths of a
   file sweep are exactly as testable as a catalog sweep's. *)
let attempt_file ?(jobs = 1) ~engine ~config ~budget ~attempt path =
  let name = file_key path in
  Obs.with_span "supervisor.file"
    ~args:[ ("file", name); ("attempt", string_of_int attempt) ]
  @@ fun () ->
  let deadline =
    Option.map
      (fun t -> (Unix.gettimeofday () +. t, t))
      budget.timeout_seconds
  in
  if injected Timeout_fault ~attempt name then
    raise
      (Timed_out_exn (Option.value budget.timeout_seconds ~default:0.0));
  if injected Oom_fault ~attempt name then trigger_oom ();
  if injected Hang_fault ~attempt name then hang ~deadline;
  if injected Parse_fault ~attempt name then
    raise
      (Rejected_exn
         (Printf.sprintf "%s: %s" name
            (Trace_io.parse_error_message
               { Trace_io.pe_line = 1
               ; pe_column = 1
               ; pe_token = Some "\xffinjected"
               ; pe_message = "injected parse fault: expected a thread id like t0"
               })));
  let trace =
    match Obs.with_span "supervisor.load" (fun () -> Trace_io.load path) with
    | Ok trace -> trace
    | Error msg -> raise (Rejected_exn (Printf.sprintf "%s: %s" name msg))
  in
  checkpoint ~deadline;
  if injected Reject_fault ~attempt name then
    raise
      (Rejected_exn
         (Printf.sprintf
            "%s: observed trace rejected: line 1: [fifo-violation] injected \
             validator reject"
            name));
  validate_observed name trace;
  checkpoint ~deadline;
  let config = budgeted_config ~budget ~events:(Trace.length trace) config in
  engine := configured_engine config;
  if injected Crash_fault ~attempt name then
    failwith "injected task exception";
  let report =
    Obs.with_span "supervisor.analyze" (fun () ->
      Detector.analyze ~config ~jobs trace)
  in
  checkpoint ~deadline;
  let locations =
    List.sort_uniq String.compare
      (List.map
         (fun classified ->
            Ident.Location.to_string (Race.location classified.Detector.race))
         report.Detector.all_races)
  in
  { fr_file = path
  ; fr_name = name
  ; fr_events = Trace.length trace
  ; fr_races = List.length report.Detector.all_races
  ; fr_distinct = List.length report.Detector.distinct_races
  ; fr_engine = !engine
  ; fr_elapsed = report.Detector.elapsed_seconds
  ; fr_locations = locations
  }

let attempt_file_result ?jobs ~config ~budget ~attempt path =
  let engine = ref (configured_engine config) in
  let err reason = Error { ae_reason = reason; ae_engine = !engine } in
  match attempt_file ?jobs ~engine ~config ~budget ~attempt path with
  | report -> Ok report
  | exception Rejected_exn msg ->
    Obs.add "ingest.rejected";
    err (Rejected msg)
  | exception Timed_out_exn t ->
    Obs.add "supervisor.timeouts";
    err (Timed_out t)
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception exn -> err (Crashed (Printexc.to_string exn))

let run_file ?jobs ?(config = Detector.default_config) ?(budget = no_budget)
    ?(retry = Proc_pool.default_retry) path =
  let name = file_key path in
  let started = Unix.gettimeofday () in
  let once attempt =
    match attempt_file_result ?jobs ~config ~budget ~attempt path with
    | r -> r
    | exception Out_of_memory ->
      Error
        { ae_reason = Crashed "out of memory"
        ; ae_engine = configured_engine config
        }
    | exception Stack_overflow ->
      Error
        { ae_reason = Crashed "stack overflow"
        ; ae_engine = configured_engine config
        }
  in
  let fail ae retries backoff =
    File_failed
      { f_app = name
      ; f_reason = ae.ae_reason
      ; f_engine = ae.ae_engine
      ; f_elapsed = Unix.gettimeofday () -. started
      ; f_retries = retries
      ; f_backoff = backoff
      }
  in
  let rec go attempt backoff =
    match once attempt with
    | Ok report -> File_completed report
    | Error ae ->
      if retryable ae.ae_reason && attempt < retry.Proc_pool.max_retries
      then begin
        Obs.add "supervisor.retries";
        let delay = Proc_pool.backoff_delay retry ~attempt:(attempt + 1) in
        if delay > 0.0 then Unix.sleepf delay;
        go (attempt + 1) (backoff +. delay)
      end
      else fail ae attempt backoff
  in
  go 0 0.0

let file_outcome_of_row ~engine path (row : _ Proc_pool.row) =
  match row.Proc_pool.r_result with
  | Proc_pool.Value (Ok report) -> File_completed report
  | Proc_pool.Value (Error ae) ->
    File_failed
      { f_app = file_key path
      ; f_reason = ae.ae_reason
      ; f_engine = ae.ae_engine
      ; f_elapsed = row.Proc_pool.r_elapsed
      ; f_retries = row.Proc_pool.r_retries
      ; f_backoff = row.Proc_pool.r_backoff
      }
  | Proc_pool.Died death ->
    File_failed
      { f_app = file_key path
      ; f_reason = reason_of_death death
      ; f_engine = engine
      ; f_elapsed = row.Proc_pool.r_elapsed
      ; f_retries = row.Proc_pool.r_retries
      ; f_backoff = row.Proc_pool.r_backoff
      }

(* File outcomes are plain data — no closures to marshal, unlike app
   outcomes, whose reports can capture classifier functions. *)
let record_file_outcome journal ~app outcome =
  match journal with
  | None -> ()
  | Some j ->
    Journal.append j ~app
      ~payload:(Marshal.to_string (outcome : file_outcome) [])

let journalled_file_outcomes journal =
  match journal with
  | None -> Hashtbl.create 0
  | Some j ->
    let table = Hashtbl.create 16 in
    List.iter
      (fun (app, payload) ->
         match (Marshal.from_string payload 0 : file_outcome) with
         | outcome ->
           if not (Hashtbl.mem table app) then Hashtbl.add table app outcome
         | exception _ -> ())
      (Journal.prior j);
    table

(* Unlike catalog rows, completed file rows carry their own engine
   attribution ([fr_engine], budget fallbacks applied), so no sweep-wide
   engine is threaded through here. *)
let report_file_progress progress ?(resumed = false) outcome =
  match progress with
  | None -> ()
  | Some p ->
    (match outcome with
     | File_completed r ->
       Progress.app_done p ~app:r.fr_name ~outcome:"completed"
         ~engine:r.fr_engine ~events:r.fr_events
         ~elapsed_seconds:r.fr_elapsed ~resumed ()
     | File_failed f ->
       Progress.app_done p ~app:f.f_app ~outcome:(reason_label f.f_reason)
         ~engine:f.f_engine ~events:0 ~elapsed_seconds:f.f_elapsed ~resumed ())

let run_files ?(jobs = 1) ?(config = Detector.default_config)
    ?(budget = no_budget) ?(retry = Proc_pool.default_retry)
    ?(mode = Cooperative) ?journal ?progress paths =
  Obs.with_span "supervisor.files" @@ fun () ->
  let prior = journalled_file_outcomes journal in
  let resumed path = Hashtbl.find_opt prior (file_key path) in
  let to_run = List.filter (fun path -> resumed path = None) paths in
  let n_resumed = List.length paths - List.length to_run in
  if n_resumed > 0 then Obs.add ~n:n_resumed "journal.resumed";
  let engine = configured_engine config in
  List.iter
    (fun path ->
       match resumed path with
       | Some outcome -> report_file_progress progress ~resumed:true outcome
       | None -> ())
    paths;
  let fresh = Hashtbl.create 16 in
  let record path outcome =
    record_file_outcome journal ~app:(file_key path) outcome;
    report_file_progress progress outcome
  in
  (match mode with
   | Cooperative ->
     List.iter2
       (fun path outcome -> Hashtbl.replace fresh (file_key path) outcome)
       to_run
       (Par_pool.parallel_map ~jobs
          (fun path ->
             let outcome = run_file ~config ~budget ~retry path in
             record path outcome;
             outcome)
          to_run)
   | Isolated { max_mem_mib } ->
     let paths_arr = Array.of_list to_run in
     let limits =
       { Proc_pool.deadline_seconds = budget.timeout_seconds; max_mem_mib }
     in
     let rows =
       Proc_pool.map ~jobs ~limits ~retry
         ~should_retry:(function
           | Ok _ -> false
           | Error ae -> retryable ae.ae_reason)
         ~on_row:(fun idx row ->
           record paths_arr.(idx)
             (file_outcome_of_row ~engine paths_arr.(idx) row))
         (fun ~attempt path -> attempt_file_result ~config ~budget ~attempt path)
         to_run
     in
     List.iteri
       (fun idx row ->
          Hashtbl.replace fresh
            (file_key paths_arr.(idx))
            (file_outcome_of_row ~engine paths_arr.(idx) row))
       rows);
  (match progress with Some p -> Progress.finish p | None -> ());
  List.map
    (fun path ->
       match resumed path with
       | Some outcome -> outcome
       | None ->
         (match Hashtbl.find_opt fresh (file_key path) with
          | Some outcome -> outcome
          | None -> assert false))
    paths

let file_completed outcomes =
  List.filter_map
    (function File_completed r -> Some r | File_failed _ -> None)
    outcomes

let file_failures outcomes =
  List.filter_map
    (function File_failed f -> Some f | File_completed _ -> None)
    outcomes

let file_table reports =
  let table =
    Table.create ~title:"Corpus sweep: trace files"
      ~columns:[ "File"; "Events"; "Races"; "Distinct"; "Engine"; "Elapsed" ]
  in
  List.iter
    (fun r ->
       Table.add_row table
         [ r.fr_name
         ; string_of_int r.fr_events
         ; string_of_int r.fr_races
         ; string_of_int r.fr_distinct
         ; r.fr_engine
         ; Printf.sprintf "%.3fs" r.fr_elapsed
         ])
    reports;
  table

(* The race-table artefact of a file sweep.  [name] deliberately strips
   the extension so a binary sweep and a text sweep of the same corpus
   differ only in [file] (and timings) — the corpus gate's equality
   check relies on that. *)
let files_json_string outcomes =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\":\"droidracer-races/1\",\"files\":[";
  List.iteri
    (fun i outcome ->
       if i > 0 then Buffer.add_char buf ',';
       match outcome with
       | File_completed r ->
         Printf.bprintf buf
           "{\"name\":\"%s\",\"file\":\"%s\",\"status\":\"completed\",\"events\":%d,\"races\":%d,\"distinct_races\":%d,\"engine\":\"%s\",\"elapsed_seconds\":%.6f,\"locations\":["
           (json_escape r.fr_name) (json_escape r.fr_file) r.fr_events
           r.fr_races r.fr_distinct (json_escape r.fr_engine) r.fr_elapsed;
         List.iteri
           (fun j loc ->
              if j > 0 then Buffer.add_char buf ',';
              Printf.bprintf buf "\"%s\"" (json_escape loc))
           r.fr_locations;
         Buffer.add_string buf "]}"
       | File_failed f ->
         Printf.bprintf buf
           "{\"name\":\"%s\",\"status\":\"%s\",\"reason\":\"%s\",\"engine\":\"%s\",\"elapsed_seconds\":%.6f,\"retries\":%d}"
           (json_escape f.f_app)
           (reason_label f.f_reason)
           (json_escape (reason_detail f.f_reason))
           (json_escape f.f_engine) f.f_elapsed f.f_retries)
    outcomes;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf
