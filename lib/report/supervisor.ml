open! Import

(* {1 Budgets} *)

type budget =
  { timeout_seconds : float option
  ; max_events : int option
  }

let no_budget = { timeout_seconds = None; max_events = None }

(* {1 Outcomes} *)

type reason =
  | Rejected of string
  | Crashed of string
  | Timed_out of float

let reason_label = function
  | Rejected _ -> "rejected"
  | Crashed _ -> "crashed"
  | Timed_out _ -> "timeout"

let reason_detail = function
  | Rejected msg | Crashed msg -> msg
  | Timed_out t -> Printf.sprintf "wall-clock budget of %gs exceeded" t

type failure =
  { f_app : string
  ; f_reason : reason
  ; f_elapsed : float
  ; f_retries : int
  }

type outcome =
  | Completed of Experiments.app_run
  | Failed of failure

let completed outcomes =
  List.filter_map
    (function Completed r -> Some r | Failed _ -> None)
    outcomes

let failures outcomes =
  List.filter_map (function Failed f -> Some f | Completed _ -> None) outcomes

let failure_table fs =
  let table =
    Table.create ~title:"Supervisor: applications that did not complete"
      ~columns:[ "Application"; "Outcome"; "Reason"; "Elapsed"; "Retries" ]
  in
  List.iter
    (fun f ->
       Table.add_row table
         [ f.f_app
         ; reason_label f.f_reason
         ; reason_detail f.f_reason
         ; Printf.sprintf "%.3fs" f.f_elapsed
         ; string_of_int f.f_retries
         ])
    fs;
  table

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let failures_json_string fs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"schema\":\"droidracer-failures/1\",\"failures\":[";
  List.iteri
    (fun i f ->
       if i > 0 then Buffer.add_char buf ',';
       Printf.bprintf buf
         "{\"app\":\"%s\",\"outcome\":\"%s\",\"reason\":\"%s\",\"elapsed_seconds\":%.6f,\"retries\":%d}"
         (json_escape f.f_app)
         (reason_label f.f_reason)
         (json_escape (reason_detail f.f_reason))
         f.f_elapsed f.f_retries)
    fs;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* {1 Fault injection}

   The plan must be a pure function of (seed, application name): the
   same rows come out for jobs = 1 and jobs = 4, and a test can predict
   every outcome without running the sweep.  [Hashtbl.hash] is not
   guaranteed stable across compiler versions, so the mix is spelled
   out (FNV-1a). *)

type fault =
  | Parse_fault
  | Reject_fault
  | Crash_fault
  | Timeout_fault

let fault_name = function
  | Parse_fault -> "parse"
  | Reject_fault -> "reject"
  | Crash_fault -> "crash"
  | Timeout_fault -> "timeout"

type decision =
  { d_fault : fault option
  ; d_transient : bool
  }

let fnv1a seed app =
  let h = ref 0x811c9dc5 in
  let feed byte =
    h := (!h lxor byte) * 0x01000193 land 0x3FFFFFFF
  in
  feed (seed land 0xff);
  feed ((seed asr 8) land 0xff);
  feed ((seed asr 16) land 0xff);
  feed ((seed asr 24) land 0xff);
  String.iter (fun c -> feed (Char.code c)) app;
  !h

let fault_decision ~seed ~app =
  let h = fnv1a seed app in
  if h mod 3 <> 0 then { d_fault = None; d_transient = false }
  else
    let fault =
      match h / 3 mod 4 with
      | 0 -> Parse_fault
      | 1 -> Reject_fault
      | 2 -> Crash_fault
      | _ -> Timeout_fault
    in
    { d_fault = Some fault; d_transient = h / 12 mod 2 = 0 }

(* The installed plan, visible to every worker domain. *)
let fault_seed : int option Atomic.t = Atomic.make None

let with_faults ~seed f =
  Atomic.set fault_seed (Some seed);
  Fun.protect ~finally:(fun () -> Atomic.set fault_seed None) f

(* {1 The supervised pipeline} *)

exception Rejected_exn of string
exception Timed_out_exn of float

let injected cls ~attempt name =
  match Atomic.get fault_seed with
  | None -> false
  | Some seed ->
    let d = fault_decision ~seed ~app:name in
    (match d.d_fault with
     | Some f when f = cls -> (not d.d_transient) || attempt = 0
     | Some _ | None -> false)

(* Analyses run inside the calling domain, so the wall-clock budget is
   cooperative: the deadline is checked between pipeline phases, never
   preemptively. *)
let checkpoint ~deadline =
  match deadline with
  | Some (d, t) when Unix.gettimeofday () > d -> raise (Timed_out_exn t)
  | Some _ | None -> ()

(* Over the event budget the analysis degrades instead of refusing:
   the sparse worklist engine computes the identical relation with far
   less re-scanning (see Happens_before.closure_engine). *)
let budgeted_config ~budget ~events config =
  match budget.max_events with
  | Some cap
    when events > cap
         && config.Detector.hb.Happens_before.closure = Happens_before.Dense
    ->
    Obs.add "supervisor.fallbacks";
    Obs.set_span_arg "closure_fallback" "worklist";
    { config with
      Detector.hb =
        { config.Detector.hb with Happens_before.closure = Happens_before.Worklist }
    }
  | _ -> config

let validate_observed name trace =
  match Obs.with_span "supervisor.validate" (fun () -> Wellformed.check trace) with
  | Ok _stats -> ()
  | Error e ->
    raise
      (Rejected_exn
         (Printf.sprintf "%s: observed trace rejected: %s" name
            (Wellformed.error_message e)))

let attempt_app ~config ~budget ~attempt spec =
  let name = spec.Synthetic.s_name in
  Obs.with_span "supervisor.app"
    ~args:[ ("app", name); ("attempt", string_of_int attempt) ]
  @@ fun () ->
  let deadline =
    Option.map
      (fun t -> (Unix.gettimeofday () +. t, t))
      budget.timeout_seconds
  in
  if injected Timeout_fault ~attempt name then
    raise
      (Timed_out_exn (Option.value budget.timeout_seconds ~default:0.0));
  if injected Parse_fault ~attempt name then
    raise
      (Rejected_exn
         (Printf.sprintf "%s: %s" name
            (Trace_io.parse_error_message
               { Trace_io.pe_line = 1
               ; pe_column = 1
               ; pe_token = Some "\xffinjected"
               ; pe_message = "injected parse fault: expected a thread id like t0"
               })));
  let built = Obs.with_span "supervisor.build" (fun () -> Synthetic.build spec) in
  checkpoint ~deadline;
  let result =
    Obs.with_span "supervisor.run" (fun () ->
      Runtime.run ~options:built.Synthetic.b_options built.Synthetic.b_app
        built.Synthetic.b_events)
  in
  checkpoint ~deadline;
  let observed = result.Runtime.observed in
  if injected Reject_fault ~attempt name then
    raise
      (Rejected_exn
         (Printf.sprintf
            "%s: observed trace rejected: line 1: [fifo-violation] injected \
             validator reject"
            name));
  validate_observed name observed;
  checkpoint ~deadline;
  let config = budgeted_config ~budget ~events:(Trace.length observed) config in
  if injected Crash_fault ~attempt name then
    failwith "injected task exception";
  let report =
    Obs.with_span "supervisor.analyze" (fun () ->
      Detector.analyze ~config observed)
  in
  checkpoint ~deadline;
  { Experiments.ar_built = built; ar_result = result; ar_report = report }

let run_app ?(config = Detector.default_config) ?(budget = no_budget) spec =
  let name = spec.Synthetic.s_name in
  let started = Unix.gettimeofday () in
  let once attempt =
    match attempt_app ~config ~budget ~attempt spec with
    | run -> Ok run
    | exception Rejected_exn msg ->
      Obs.add "ingest.rejected";
      Error (Rejected msg)
    | exception Timed_out_exn t ->
      Obs.add "supervisor.timeouts";
      Error (Timed_out t)
    | exception exn -> Error (Crashed (Printexc.to_string exn))
  in
  let fail reason retries =
    Failed
      { f_app = name
      ; f_reason = reason
      ; f_elapsed = Unix.gettimeofday () -. started
      ; f_retries = retries
      }
  in
  match once 0 with
  | Ok run -> Completed run
  | Error (Rejected _ as reason) ->
    (* Rejection is a verdict about the input, which a retry cannot
       change; crashes and timeouts may be environmental. *)
    fail reason 0
  | Error (Crashed _ | Timed_out _) ->
    Obs.add "supervisor.retries";
    (match once 1 with
     | Ok run -> Completed run
     | Error reason -> fail reason 1)

let run_catalog ?(jobs = 1) ?(specs = Catalog.all)
    ?(config = Detector.default_config) ?(budget = no_budget) () =
  Obs.with_span "supervisor.catalog" @@ fun () ->
  Par_pool.parallel_map ~jobs (fun spec -> run_app ~config ~budget spec) specs

let analyze ?(config = Detector.default_config) ?(jobs = 1)
    ?(budget = no_budget) ~name trace =
  let started = Unix.gettimeofday () in
  let fail reason =
    Error
      { f_app = name
      ; f_reason = reason
      ; f_elapsed = Unix.gettimeofday () -. started
      ; f_retries = 0
      }
  in
  match
    Obs.with_span "supervisor.analyze_one" ~args:[ ("name", name) ]
    @@ fun () ->
    let deadline =
      Option.map
        (fun t -> (Unix.gettimeofday () +. t, t))
        budget.timeout_seconds
    in
    validate_observed name trace;
    checkpoint ~deadline;
    let config = budgeted_config ~budget ~events:(Trace.length trace) config in
    let report = Detector.analyze ~config ~jobs trace in
    checkpoint ~deadline;
    report
  with
  | report -> Ok report
  | exception Rejected_exn msg ->
    Obs.add "ingest.rejected";
    fail (Rejected msg)
  | exception Timed_out_exn t ->
    Obs.add "supervisor.timeouts";
    fail (Timed_out t)
  | exception exn -> fail (Crashed (Printexc.to_string exn))
