open! Import

let schema = "droidracer-journal/1"

(* {1 Base64}

   Inline RFC 4648 alphabet with padding; the toolchain ships no base64
   and the journal must not grow a dependency for one. *)

let b64_alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let b64_encode s =
  let n = String.length s in
  let buf = Buffer.create ((n + 2) / 3 * 4) in
  let byte i = Char.code s.[i] in
  let emit i = Buffer.add_char buf b64_alphabet.[i] in
  let i = ref 0 in
  while !i + 2 < n do
    let w = (byte !i lsl 16) lor (byte (!i + 1) lsl 8) lor byte (!i + 2) in
    emit (w lsr 18);
    emit ((w lsr 12) land 63);
    emit ((w lsr 6) land 63);
    emit (w land 63);
    i := !i + 3
  done;
  (match n - !i with
   | 1 ->
     let w = byte !i lsl 16 in
     emit (w lsr 18);
     emit ((w lsr 12) land 63);
     Buffer.add_string buf "=="
   | 2 ->
     let w = (byte !i lsl 16) lor (byte (!i + 1) lsl 8) in
     emit (w lsr 18);
     emit ((w lsr 12) land 63);
     emit ((w lsr 6) land 63);
     Buffer.add_char buf '='
   | _ -> ());
  Buffer.contents buf

let b64_value c =
  match c with
  | 'A' .. 'Z' -> Some (Char.code c - Char.code 'A')
  | 'a' .. 'z' -> Some (Char.code c - Char.code 'a' + 26)
  | '0' .. '9' -> Some (Char.code c - Char.code '0' + 52)
  | '+' -> Some 62
  | '/' -> Some 63
  | _ -> None

let b64_decode s =
  let s =
    if String.length s >= 2 && String.sub s (String.length s - 2) 2 = "==" then
      String.sub s 0 (String.length s - 2)
    else if String.length s >= 1 && s.[String.length s - 1] = '=' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  let n = String.length s in
  let buf = Buffer.create (n * 3 / 4) in
  let acc = ref 0 and bits = ref 0 and ok = ref true in
  String.iter
    (fun c ->
       match b64_value c with
       | None -> ok := false
       | Some v ->
         acc := (!acc lsl 6) lor v;
         bits := !bits + 6;
         if !bits >= 8 then begin
           bits := !bits - 8;
           Buffer.add_char buf (Char.chr ((!acc lsr !bits) land 0xff))
         end)
    s;
  if !ok then Some (Buffer.contents buf) else None

(* {1 JSON strings} *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* A scanner for exactly the object shape this module writes: string
   keys, string values, no nesting.  Returns the fields in order, or
   [None] for anything malformed — a torn line must never raise. *)
let parse_fields line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then begin
      advance ();
      true
    end
    else false
  in
  let parse_string () =
    skip_ws ();
    if peek () <> Some '"' then None
    else begin
      advance ();
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then None
        else
          match line.[!pos] with
          | '"' ->
            advance ();
            Some (Buffer.contents buf)
          | '\\' ->
            advance ();
            if !pos >= n then None
            else begin
              (match line.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                 if !pos + 4 < n then begin
                   let hex = String.sub line (!pos + 1) 4 in
                   (match int_of_string_opt ("0x" ^ hex) with
                    | Some code when Uchar.is_valid code ->
                      Buffer.add_utf_8_uchar buf (Uchar.of_int code)
                    | Some _ | None -> Buffer.add_char buf '?');
                   pos := !pos + 4
                 end
               | _ -> Buffer.add_char buf line.[!pos]);
              advance ();
              go ()
            end
          | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ()
    end
  in
  if not (expect '{') then None
  else begin
    let fields = ref [] in
    let rec members () =
      match parse_string () with
      | None -> None
      | Some key ->
        if not (expect ':') then None
        else (
          match parse_string () with
          | None -> None
          | Some v ->
            fields := (key, v) :: !fields;
            skip_ws ();
            (match peek () with
             | Some ',' ->
               advance ();
               members ()
             | Some '}' ->
               advance ();
               skip_ws ();
               if !pos = n then Some (List.rev !fields) else None
             | _ -> None))
    in
    members ()
  end

(* {1 Records} *)

let record_digest ~app ~encoded = Digest.to_hex (Digest.string (app ^ "\x00" ^ encoded))

let record_line ~app ~payload =
  let encoded = b64_encode payload in
  Printf.sprintf {|{"digest":"%s","app":"%s","payload":"%s"}|}
    (record_digest ~app ~encoded)
    (json_escape app) encoded

let parse_record line =
  match parse_fields line with
  | Some [ ("digest", digest); ("app", app); ("payload", encoded) ]
    when String.equal digest (record_digest ~app ~encoded) ->
    Option.map (fun payload -> (app, payload)) (b64_decode encoded)
  | Some _ | None -> None

let binary_digest =
  lazy
    (try Digest.to_hex (Digest.file Sys.executable_name)
     with Sys_error _ -> "unknown")

let header_line () =
  Printf.sprintf {|{"schema":"%s","binary":"%s"}|} schema (Lazy.force binary_digest)

(* {1 The journal} *)

type t =
  { mutable fd : Unix.file_descr option
  ; mutex : Mutex.t
  ; prior : (string * string) list
  ; torn : int
  ; stale : int
  }

let prior t = t.prior

let torn_lines t = t.torn

let stale_records t = t.stale

(* {1 Resume warnings}

   Structured records of what replay silently repaired, so callers
   (CLI, daemon health endpoint) can surface them as data rather than
   re-deriving prose from counters. *)

type warning =
  | Torn_lines of int
  | Stale_records of int

let warnings t =
  (if t.torn > 0 then [ Torn_lines t.torn ] else [])
  @ if t.stale > 0 then [ Stale_records t.stale ] else []

let warning_message = function
  | Torn_lines n ->
    Printf.sprintf
      "%d torn journal line%s skipped on resume (interrupted final write)" n
      (if n = 1 then "" else "s")
  | Stale_records n ->
    Printf.sprintf
      "%d journal record%s discarded: written by a different executable image"
      n
      (if n = 1 then "" else "s")

let warning_json w =
  let kind, count =
    match w with
    | Torn_lines n -> ("torn_lines", n)
    | Stale_records n -> ("stale_records", n)
  in
  Printf.sprintf {|{"kind":"%s","count":%d,"message":"%s"}|} kind count
    (json_escape (warning_message w))

let read_lines path =
  let ic = In_channel.open_bin path in
  Fun.protect
    ~finally:(fun () -> In_channel.close ic)
    (fun () ->
       In_channel.input_all ic |> String.split_on_char '\n'
       |> List.filter (fun l -> l <> ""))

let replay path =
  match read_lines path with
  | exception Sys_error _ -> Ok ([], 0, 0)
  | [] -> Ok ([], 0, 0)
  | header :: records ->
    (match parse_fields header with
     | Some (("schema", s) :: rest) when String.equal s schema ->
       let same_binary =
         match List.assoc_opt "binary" rest with
         | Some d -> String.equal d (Lazy.force binary_digest)
         | None -> false
       in
       let good, torn =
         List.fold_left
           (fun (good, torn) line ->
              match parse_record line with
              | Some entry -> (entry :: good, torn)
              | None -> (good, torn + 1))
           ([], 0) records
       in
       let good = List.rev good in
       if same_binary then Ok (good, torn, 0)
       else Ok ([], torn, List.length good)
     | Some (("schema", s) :: _) ->
       Error
         (Printf.sprintf "journal %s has schema %S, expected %S" path s schema)
     | Some _ | None ->
       Error (Printf.sprintf "journal %s has no valid header line" path))

let fsync_write fd line =
  let bytes = Bytes.of_string (line ^ "\n") in
  Proc_pool.write_all fd bytes 0 (Bytes.length bytes);
  Unix.fsync fd

let create ?(resume = false) path =
  let replayed = if resume then replay path else Ok ([], 0, 0) in
  match replayed with
  | Error _ as e -> e
  | Ok (entries, torn, stale) ->
    if torn > 0 then Obs.add ~n:torn "journal.torn";
    if stale > 0 then Obs.add ~n:stale "journal.stale";
    let fd =
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    (* Rewrite header + intact records so the file never carries a torn
       line forward; every subsequent append lands after them. *)
    fsync_write fd (header_line ());
    List.iter
      (fun (app, payload) -> fsync_write fd (record_line ~app ~payload))
      entries;
    Ok { fd = Some fd; mutex = Mutex.create (); prior = entries; torn; stale }

let append t ~app ~payload =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
       match t.fd with
       | None -> invalid_arg "Journal.append: journal is closed"
       | Some fd -> fsync_write fd (record_line ~app ~payload))

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
       match t.fd with
       | None -> ()
       | Some fd ->
         t.fd <- None;
         Unix.close fd)
