/* Address-space cap for forked analysis workers.
 *
 * The cap is expressed as headroom over the address space the worker
 * inherited at fork time: RLIMIT_AS counts every mapping, and an OCaml 5
 * runtime arrives with a sizeable reserved image, so an absolute cap of
 * "64 MiB" would kill a worker before it ran a single task.  Measuring
 * the inherited size from /proc/self/statm keeps the flag meaning "a
 * task may allocate this much", which is the quantity operators reason
 * about.
 */

#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>

#include <stdio.h>
#include <sys/resource.h>
#include <unistd.h>

static long long current_vsize_bytes(void)
{
  long pages = 0;
  FILE *f = fopen("/proc/self/statm", "r");
  if (f != NULL) {
    if (fscanf(f, "%ld", &pages) != 1)
      pages = 0;
    fclose(f);
  }
  return (long long)pages * sysconf(_SC_PAGESIZE);
}

CAMLprim value droidracer_set_mem_limit_mib(value v_mib)
{
  CAMLparam1(v_mib);
  struct rlimit rl;
  long long cap =
      current_vsize_bytes() + (long long)Long_val(v_mib) * 1024 * 1024;
  rl.rlim_cur = (rlim_t)cap;
  rl.rlim_max = (rlim_t)cap;
  if (setrlimit(RLIMIT_AS, &rl) != 0)
    caml_failwith("setrlimit(RLIMIT_AS) failed");
  CAMLreturn(Val_unit);
}
