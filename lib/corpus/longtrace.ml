open! Import
module Thread_id = Ident.Thread_id
module Task_id = Ident.Task_id
module Lock_id = Ident.Lock_id
module Location = Ident.Location

type config =
  { loopers : int
  ; locations : int
  ; locks : int
  ; accesses_per_task : int
  ; fork_every : int
  ; lock_every : int
  ; planted : int
  ; masked : int
  ; seed : int
  }

let default_config =
  { loopers = 3
  ; locations = 512
  ; locks = 4
  ; accesses_per_task = 4
  ; fork_every = 97
  ; lock_every = 13
  ; planted = 0
  ; masked = 0
  ; seed = 42
  }

let planted_location j =
  Location.make ~cls:"Planted" ~field:(Printf.sprintf "g%d" j) ~obj:0

let planted_locations config =
  List.init (max 0 config.planted) (fun j ->
    Location.to_string (planted_location j))

let masked_location j =
  Location.make ~cls:"Planted" ~field:(Printf.sprintf "m%d" j) ~obj:0

let masked_locations config =
  List.init (max 0 config.masked) (fun j ->
    Location.to_string (masked_location j))

(* A tiny deterministic PRNG (xorshift), so the trace is a pure
   function of the config — [Random] would tie the corpus to the
   stdlib's generator across versions. *)
let next_rand state =
  let x = !state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  state := x land max_int;
  !state

let generate ?(config = default_config) ~events emit =
  let emitted = ref 0 in
  let rng = ref (config.seed lor 1) in
  let rand bound = next_rand rng mod bound in
  let budget_left () = !emitted < events in
  let push thread op =
    if budget_left () then begin
      emit { Trace.thread = Thread_id.make thread; op };
      incr emitted
    end
  in
  (* Thread 0 is the driver: it posts every task and forks the
     short-lived workers.  Threads 1..loopers are queue threads. *)
  push 0 Operation.Thread_init;
  for l = 1 to config.loopers do
    push l Operation.Thread_init;
    push l Operation.Attach_queue;
    push l Operation.Loop_on_queue
  done;
  let next_task = ref 0 in
  let next_worker = ref (config.loopers + 1) in
  let unjoined = ref [] in
  let loc field = Location.make ~cls:"Obj" ~field ~obj:0 in
  (* Shared locations carry the cross-looper races; private ones keep
     the race list (which is output, not analysis state) from growing
     with every access. *)
  let shared () = loc (Printf.sprintf "s%d" (rand config.locations)) in
  let private_ thread =
    loc (Printf.sprintf "p%d_%d" thread (rand config.locations))
  in
  let access ?(shared_only = false) thread =
    let m =
      if shared_only || rand 4 = 0 then shared () else private_ thread
    in
    if rand 3 = 0 then push thread (Operation.Write m)
    else push thread (Operation.Read m)
  in
  let iteration = ref 0 in
  while budget_left () do
    incr iteration;
    let it = !iteration in
    (* One task per iteration, rotated across the loopers; the queue
       never holds more than this one pending task, so immediate posts
       are trivially FIFO-admissible. *)
    let looper = 1 + (it mod config.loopers) in
    let p = Task_id.make ~name:"job" ~instance:!next_task in
    incr next_task;
    if rand 4 = 0 then push 0 (Operation.Enable p);
    push 0 (Operation.Post { task = p; target = Thread_id.make looper
                           ; flavour = Operation.Immediate });
    push looper (Operation.Begin_task p);
    (* Ground-truth planting: location [Planted.g<j>@0] is written by
       exactly the tasks of iterations [j+1] and [j+1+planted], which
       run on different loopers whenever [planted mod loopers <> 0]
       (the looper index is [1 + it mod loopers]).  Locks are suppressed
       for the whole planting window, and nothing else ever orders two
       task bodies on distinct loopers (posts chain only through the
       driver, FIFO and the streaming fold are per-thread, workers never
       touch [Planted]), so each planted pair is a guaranteed race. *)
    let planting = config.planted > 0 && it <= 2 * config.planted in
    (* Lock-masked ground truth: after the planted window, location
       [Planted.m<j>@0] is written by exactly the tasks of iterations
       [base+j+1] and [base+j+1+masked] (base = 2*planted), on distinct
       loopers whenever [masked mod loopers <> 0].  Both writers bracket
       a dedicated lock [mlock<j>] so that the observed schedule chains
       write₁ ⪯ release₁ ⪯(LOCK) acquire₂ ⪯ write₂ — the batch engines
       order the pair and report nothing — yet running the second task
       first is an admissible reordering (nothing but the flippable lock
       edge relates the two bodies), so the pair is a guaranteed
       reordering-only race for the predictive engine. *)
    let masked_base = 2 * config.planted in
    let masking =
      config.masked > 0
      && it > masked_base
      && it <= masked_base + (2 * config.masked)
    in
    let with_lock =
      (not planting) && (not masking) && config.lock_every > 0
      && it mod config.lock_every = 0
    in
    let l = Lock_id.make (Printf.sprintf "lock%d" (rand config.locks)) in
    if with_lock then push looper (Operation.Acquire l);
    (match masking with
     | true ->
       let j = (it - masked_base - 1) mod config.masked in
       let ml = Lock_id.make (Printf.sprintf "mlock%d" j) in
       if it - masked_base <= config.masked then begin
         (* first writer: the racy write happens before its critical
            section, so the LOCK edge orders it under the second
            writer's write *)
         push looper (Operation.Write (masked_location j));
         push looper (Operation.Acquire ml);
         push looper (Operation.Release ml)
       end
       else begin
         push looper (Operation.Acquire ml);
         push looper (Operation.Release ml);
         push looper (Operation.Write (masked_location j))
       end
     | false -> ());
    for _ = 1 to config.accesses_per_task do
      access looper
    done;
    if planting then
      push looper
        (Operation.Write (planted_location ((it - 1) mod config.planted)));
    if with_lock then push looper (Operation.Release l);
    push looper (Operation.End_task p);
    (* Occasionally fork a worker that races with the tasks, and join
       the previous one so exited threads stay bounded. *)
    if config.fork_every > 0 && it mod config.fork_every = 0 then begin
      let w = !next_worker in
      incr next_worker;
      push 0 (Operation.Fork (Thread_id.make w));
      push w Operation.Thread_init;
      access ~shared_only:true w;
      access ~shared_only:true w;
      push w Operation.Thread_exit;
      (match !unjoined with
       | prev :: rest ->
         push 0 (Operation.Join (Thread_id.make prev));
         unjoined := rest @ [ w ]
       | [] -> unjoined := [ w ])
    end
  done;
  !emitted

(* The ident universe of a config, for the binary encoder's up-front
   table.  Completeness is optional (unseen idents get DEF records), but
   listing the pools here keeps generated files dense. *)
let binary_idents config =
  let idents = ref [ "job"; "Obj" ] in
  let add s = idents := s :: !idents in
  if config.planted > 0 || config.masked > 0 then add "Planted";
  for j = 0 to config.planted - 1 do
    add (Printf.sprintf "g%d" j)
  done;
  for j = 0 to config.masked - 1 do
    add (Printf.sprintf "m%d" j);
    add (Printf.sprintf "mlock%d" j)
  done;
  for k = 0 to config.locks - 1 do
    add (Printf.sprintf "lock%d" k)
  done;
  for r = 0 to config.locations - 1 do
    add (Printf.sprintf "s%d" r)
  done;
  List.rev !idents

let write_binary ?(config = default_config) ~events path =
  Droidracer_trace.Binfmt.write_file ~idents:(binary_idents config) path
    (fun emit -> generate ~config ~events emit)

let write ?config ~events path =
  let oc = Out_channel.open_text path in
  Fun.protect
    ~finally:(fun () -> Out_channel.close oc)
    (fun () ->
       let buf = Buffer.create 65536 in
       let n =
         generate ?config ~events (fun e ->
           Buffer.add_string buf
             (Format.asprintf "%a" Droidracer_trace.Trace_io.print_event e);
           Buffer.add_char buf '\n';
           if Buffer.length buf > 60000 then begin
             Out_channel.output_string oc (Buffer.contents buf);
             Buffer.clear buf
           end)
       in
       Out_channel.output_string oc (Buffer.contents buf);
       n)
