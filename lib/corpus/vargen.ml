open! Import

type variant =
  { v_index : int
  ; v_name : string
  ; v_config : Longtrace.config
  ; v_events : int
  ; v_planted : string list
  ; v_masked : string list
  }

(* Same xorshift family as Longtrace: variants are a pure function of
   (seed, index), never of the stdlib's generator. *)
let next_rand state =
  let x = !state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  state := x land max_int;
  !state

let derive ~seed ~events index =
  let state =
    ref ((((seed * 0x9e3779b1) lxor (index * 0x85ebca6b)) lor 1) land max_int)
  in
  (* A few warm-up rounds decorrelate nearby (seed, index) pairs. *)
  for _ = 1 to 4 do
    ignore (next_rand state)
  done;
  let rand bound = next_rand state mod bound in
  let loopers = 2 + rand 4 in
  let planted = 1 + rand 4 in
  (* The planted-race guarantee needs the two writers on different
     loopers: planted mod loopers <> 0 (and loopers >= 2). *)
  let planted = if planted mod loopers = 0 then planted + 1 else planted in
  let accesses_per_task = 2 + rand 5 in
  let config =
    { Longtrace.loopers
    ; locations = 16 + rand 240
    ; locks = 1 + rand 6
    ; accesses_per_task
    ; fork_every = (if rand 4 = 0 then 0 else 29 + rand 120)
    ; lock_every = (if rand 5 = 0 then 0 else 5 + rand 18)
    ; planted
    ; masked = 0
    ; seed = 1 + rand 0x3fffffff
    }
  in
  (* Size every variant past its planting window (each iteration emits
     at most accesses + 12 events, the setup prologue 3*loopers + 1),
     then spread lengths around the requested midpoint. *)
  let min_events =
    ((2 * planted) + 1) * (accesses_per_task + 12) + (3 * loopers) + 1
  in
  let v_events = max min_events ((events / 2) + rand (max 1 events)) in
  (* Lock-masked ground truth for the predictive gate.  Drawn after
     every pre-existing draw so that, for a given (seed, index), all of
     the fields above are bit-identical to what earlier corpora
     recorded; like [planted], the two writers must land on distinct
     loopers ([masked mod loopers <> 0]). *)
  let masked = rand 3 in
  let masked =
    if masked > 0 && masked mod loopers = 0 then masked + 1 else masked
  in
  let config = { config with Longtrace.masked } in
  (* Cover the masked window too (it sits after the planted window). *)
  let min_events =
    ((2 * planted) + (2 * masked) + 1) * (accesses_per_task + 12)
    + (3 * loopers) + 1
  in
  let v_events = max min_events v_events in
  { v_index = index
  ; v_name = Printf.sprintf "variant-%04d" index
  ; v_config = config
  ; v_events
  ; v_planted = Longtrace.planted_locations config
  ; v_masked = Longtrace.masked_locations config
  }

let variants ?(seed = 1) ?(events = 4000) ~count () =
  List.init count (derive ~seed ~events)

let filename ~binary v = v.v_name ^ if binary then ".drt" else ".trace"

let write ~dir ~binary v =
  let path = Filename.concat dir (filename ~binary v) in
  let written =
    if binary then
      Longtrace.write_binary ~config:v.v_config ~events:v.v_events path
    else Longtrace.write ~config:v.v_config ~events:v.v_events path
  in
  assert (written = v.v_events);
  path

let manifest_json_string ~binary variants =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\"schema\":\"droidracer-corpus/1\",\"binary\":%b,\"count\":%d,\"variants\":["
    binary (List.length variants);
  List.iteri
    (fun i v ->
       if i > 0 then Buffer.add_char buf ',';
       let c = v.v_config in
       Printf.bprintf buf
         "{\"name\":\"%s\",\"file\":\"%s\",\"events\":%d,\"loopers\":%d,\"locations\":%d,\"locks\":%d,\"accesses_per_task\":%d,\"fork_every\":%d,\"lock_every\":%d,\"seed\":%d,\"planted\":["
         v.v_name (filename ~binary v) v.v_events c.Longtrace.loopers
         c.Longtrace.locations c.Longtrace.locks c.Longtrace.accesses_per_task
         c.Longtrace.fork_every c.Longtrace.lock_every c.Longtrace.seed;
       List.iteri
         (fun j p ->
            if j > 0 then Buffer.add_char buf ',';
            Printf.bprintf buf "\"%s\"" p)
         v.v_planted;
       Buffer.add_string buf "],\"masked\":[";
       List.iteri
         (fun j p ->
            if j > 0 then Buffer.add_char buf ',';
            Printf.bprintf buf "\"%s\"" p)
         v.v_masked;
       Buffer.add_string buf "]}")
    variants;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf
