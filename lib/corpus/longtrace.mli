open! Import

(** Deterministic generator of arbitrarily long admissible traces.

    The batch corpus ({!Synthetic}) interprets application models, which
    caps trace length at what fits in memory twice over (the program and
    its trace).  This generator instead {e emits} events one at a time —
    through a callback, never materialising anything — so it can produce
    the multi-million-event inputs the streaming engine and the CI
    memory gate need, in O(1) memory on the producing side too.

    Shape: a driver thread posts one immediate task per iteration,
    rotated over a small set of looper threads (queue depth never
    exceeds one, so dispatch is trivially FIFO-admissible); task bodies
    read and write a mix of looper-private and shared locations (the
    shared ones race across loopers); every [fork_every] iterations a
    short-lived worker thread races on the shared pool and the previous
    worker is joined.  Everything derives from a builtin xorshift PRNG
    seeded by the config, so a given config always produces the same
    trace, on any stdlib version.

    Every emitted prefix passes {!Wellformed} (property-tested). *)

type config =
  { loopers : int  (** queue threads the driver rotates over *)
  ; locations : int  (** size of each location pool *)
  ; locks : int
  ; accesses_per_task : int
  ; fork_every : int  (** iterations between worker forks; 0 disables *)
  ; lock_every : int  (** iterations between locked tasks; 0 disables *)
  ; planted : int
        (** ground-truth races: location [Planted.g<j>@0] ([0 <= j <
            planted]) is written by exactly the tasks of iterations
            [j+1] and [j+1+planted] and by nothing else, with locking
            suppressed during the planting window.  When [planted mod
            loopers <> 0] the two writers run on different loopers and
            nothing orders them, so every planted location is a
            guaranteed detectable race (provided [events] covers the
            first [2*planted] iterations).  0 disables. *)
  ; masked : int
        (** lock-masked ground-truth races, planted {e after} the
            planted window: location [Planted.m<j>@0] ([0 <= j <
            masked]) is written by exactly the tasks of iterations
            [2*planted + j + 1] and [2*planted + j + 1 + masked], each
            bracketing a dedicated lock [mlock<j>] so the observed
            schedule orders the pair through a LOCK edge.  The batch
            and streaming engines therefore never report it, but the
            reordering that runs the second task first is admissible —
            the pair is detectable {e only} by the predictive engine.
            Requires [masked mod loopers <> 0] for the two writers to
            land on distinct loopers, and [events] to cover the first
            [2*planted + 2*masked] iterations.  0 disables. *)
  ; seed : int
  }

val default_config : config

val planted_locations : config -> string list
(** The {!Ident.Location.to_string} forms of the planted race
    locations, in order ([[]] when [planted = 0]) — the recall oracle
    for corpus gates. *)

val masked_locations : config -> string list
(** The lock-masked locations [Planted.m<j>@0], in order ([[]] when
    [masked = 0]) — the recall oracle for the predictive gate. *)

val generate : ?config:config -> events:int -> (Trace.event -> unit) -> int
(** [generate ~events emit] calls [emit] for each event, stopping after
    exactly [events] of them (the final task may be truncated
    mid-flight — admissible prefixes stay admissible).  Returns the
    number emitted. *)

val write : ?config:config -> events:int -> string -> int
(** Streams a generated trace to the named file in the
    {!Trace_io} line format; returns the event count. *)

val write_binary : ?config:config -> events:int -> string -> int
(** Streams a generated trace to the named file in the {!Binfmt}
    binary format (the config's ident pools are emitted as the up-front
    table); returns the event count. *)
