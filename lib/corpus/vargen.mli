open! Import

(** Corpus-scale variant generation.

    Derives thousands of distinct {!Longtrace} app variants from one
    (seed, index) pair: randomized lifecycle/thread/queue mixes (looper
    counts, location/lock pool sizes, fork and lock cadences) with
    planted ground-truth races, each sized so the full planting window
    is always emitted.  Variants are pure functions of the derivation
    inputs, so a corpus can be regenerated bit-identically anywhere —
    in text or binary — and swept by the sharded, journaled,
    process-isolated workers of {!Droidracer_report.Supervisor}. *)

type variant =
  { v_index : int
  ; v_name : string  (** ["variant-<index>"], zero-padded *)
  ; v_config : Longtrace.config
  ; v_events : int  (** events to emit for this variant *)
  ; v_planted : string list
        (** {!Longtrace.planted_locations} of the config — the recall
            oracle *)
  ; v_masked : string list
        (** {!Longtrace.masked_locations} of the config — the
            reordering-only recall oracle for the predictive gate
            (possibly empty; batch engines never report these) *)
  }

val variants : ?seed:int -> ?events:int -> count:int -> unit -> variant list
(** [variants ~count ()] derives [count] variants.  [events] (default
    4000) scales the per-variant trace length (each variant draws a
    length around it).  Every derived config satisfies the
    planted-race guarantee of {!Longtrace}: [loopers >= 2] and
    [planted mod loopers <> 0]. *)

val filename : binary:bool -> variant -> string
(** ["<name>.drt"] (binary) or ["<name>.trace"] (text). *)

val write : dir:string -> binary:bool -> variant -> string
(** Writes the variant's trace under [dir] and returns the file path. *)

val manifest_json_string : binary:bool -> variant list -> string
(** The corpus manifest ([droidracer-corpus/1]): one record per variant
    with its file name, event count, shape parameters and planted race
    locations — what a corpus gate needs to check recall without
    re-deriving the configs. *)
