(** Square boolean matrices with bitset rows.

    The happens-before computation stores the relation ⪯ as an n×n
    matrix and spends its time OR-ing rows into each other, so rows are
    packed 63 bits per word.  Masked ORs implement the thread-sensitive
    transitivity restriction (Section 4.1). *)

type t

val create : int -> t
(** [create n] is the n×n all-false matrix. *)

val size : t -> int

val get : t -> int -> int -> bool

val set : t -> int -> int -> unit

val count : t -> int
(** Number of true entries. *)

val copy : t -> t
(** An independent copy (used to snapshot the matrix between parallel
    fixpoint passes). *)

val blit : src:t -> dst:t -> unit
(** Overwrites [dst] with the contents of [src]; the matrices must have
    the same size. *)

val or_row : t -> dst:int -> src:int -> bool
(** [or_row m ~dst ~src] ORs row [src] into row [dst]; true iff row
    [dst] changed. *)

val or_row_between : read:t -> write:t -> dst:int -> src:int -> bool
(** [or_row_between ~read ~write ~dst ~src] ORs row [src] of [read]
    into row [dst] of [write]; true iff the destination row changed.
    The block-parallel closure reads rows of other blocks from a
    frozen snapshot while writing its own rows of the live matrix, so
    every domain sees the same pass semantics regardless of
    scheduling. *)

(** Bit masks over column indices. *)
module Mask : sig
  type t

  val create : int -> t

  val set : t -> int -> unit

  val mem : t -> int -> bool
end

val or_row_masked : t -> dst:int -> src:int -> mask:Mask.t -> bool
(** ORs [src ∧ mask] into [dst]; true iff [dst] changed. *)

val or_row_masked_compl : t -> dst:int -> src:int -> mask:Mask.t -> bool
(** ORs [src ∧ ¬mask] into [dst]; true iff [dst] changed. *)

val or_row_between_masked_compl :
  read:t -> write:t -> dst:int -> src:int -> mask:Mask.t -> bool
(** {!or_row_between} restricted to the complement of [mask]. *)

val iter_row : t -> int -> (int -> unit) -> unit
(** Calls the function on every set column of the row, ascending. *)
