(** Square boolean matrices with bitset rows.

    The happens-before computation stores the relation ⪯ as an n×n
    matrix and spends its time OR-ing rows into each other, so rows are
    packed 63 bits per word.  Masked ORs implement the thread-sensitive
    transitivity restriction (Section 4.1). *)

type t

val create : int -> t
(** [create n] is the n×n all-false matrix. *)

val size : t -> int

val words_per_row : t -> int
(** Machine words per row — the cost, in word ORs, of one row-into-row
    OR (used by the closure engines' [hb.word_ors] accounting). *)

val get : t -> int -> int -> bool

val set : t -> int -> int -> unit

val count : t -> int
(** Number of true entries. *)

val copy : t -> t
(** An independent copy (used to snapshot the matrix between parallel
    fixpoint passes). *)

val blit : src:t -> dst:t -> unit
(** Overwrites [dst] with the contents of [src]; the matrices must have
    the same size. *)

val blit_row : src:t -> dst:t -> int -> unit
(** [blit_row ~src ~dst i] overwrites row [i] of [dst] with row [i] of
    [src] (the sparse per-round snapshot of the worklist closure). *)

val row_is_empty : t -> int -> bool

val clear_row : t -> int -> unit

val or_row : t -> dst:int -> src:int -> bool
(** [or_row m ~dst ~src] ORs row [src] into row [dst]; true iff row
    [dst] changed. *)

val or_row_between : read:t -> write:t -> dst:int -> src:int -> bool
(** [or_row_between ~read ~write ~dst ~src] ORs row [src] of [read]
    into row [dst] of [write]; true iff the destination row changed.
    The block-parallel closure reads rows of other blocks from a
    frozen snapshot while writing its own rows of the live matrix, so
    every domain sees the same pass semantics regardless of
    scheduling. *)

(** Bit masks over column indices. *)
module Mask : sig
  type t

  val create : int -> t

  val set : t -> int -> unit

  val mem : t -> int -> bool

  val clear : t -> unit

  val iter : t -> (int -> unit) -> unit
  (** Calls the function on every set index, ascending. *)

  val iter_down : t -> (int -> unit) -> unit
  (** Calls the function on every set index, descending. *)
end

val or_row_into_mask : t -> src:int -> Mask.t -> unit
(** ORs row [src] into the mask (used to accumulate a round's source
    and target sets from predecessor-index rows). *)

val or_row_masked : t -> dst:int -> src:int -> mask:Mask.t -> bool
(** ORs [src ∧ mask] into [dst]; true iff [dst] changed. *)

val or_row_masked_compl : t -> dst:int -> src:int -> mask:Mask.t -> bool
(** ORs [src ∧ ¬mask] into [dst]; true iff [dst] changed. *)

val or_row_between_masked_compl :
  read:t -> write:t -> dst:int -> src:int -> mask:Mask.t -> bool
(** {!or_row_between} restricted to the complement of [mask]. *)

val iter_row : t -> int -> (int -> unit) -> unit
(** Calls the function on every set column of the row, ascending. *)

(** {1 Change tracking}

    The worklist closure must know {e which} columns an OR newly set:
    a new bit in row [i] is a new successor that row [i] still has to
    pull from, and a new entry of the predecessor index.  The tracked
    variants accumulate the newly set bits of [dst] into row [dst] of a
    caller-supplied [delta] matrix of the same size. *)

val or_row_between_tracked :
  read:t -> write:t -> delta:t -> dst:int -> src:int -> bool
(** {!or_row_between} that also ORs the newly set bits of the
    destination row into row [dst] of [delta]; true iff [dst] changed. *)

val or_row_between_masked_compl_tracked :
  read:t -> write:t -> delta:t -> dst:int -> src:int -> mask:Mask.t -> bool
(** {!or_row_between_masked_compl} with the same delta tracking. *)

val or_row_between_tracked_range :
  read:t ->
  write:t ->
  delta:t ->
  dst:int ->
  src:int ->
  w_lo:int ->
  w_hi:int ->
  unit
(** {!or_row_between_tracked} restricted to source words
    [w_lo..w_hi] (inclusive); the caller obtains the bounds from
    {!row_word_extent}, so the all-zero prefix and suffix of a sparse
    source row cost nothing.  No change flag — the worklist reads the
    delta row instead. *)

val or_row_between_masked_compl_tracked_range :
  read:t ->
  write:t ->
  delta:t ->
  dst:int ->
  src:int ->
  mask:Mask.t ->
  w_lo:int ->
  w_hi:int ->
  unit
(** {!or_row_between_masked_compl_tracked}, ranged. *)

val row_word_extent : t -> int -> int * int
(** [(lo, hi)] such that every non-zero word of row [i] lies in
    [lo..hi]; [lo > hi] iff the row is empty. *)

(** {1 Row scratch buffers} *)

type row_scratch
(** A detached copy of one row, owned by a single worker. *)

val row_scratch : t -> row_scratch
(** A scratch buffer sized for the given matrix, initially empty. *)

val copy_row : t -> int -> row_scratch -> unit
(** Overwrites the scratch with row [i]. *)

val take_row : t -> int -> row_scratch -> unit
(** Overwrites the scratch with row [i], then clears row [i] (used to
    consume a row's pending pull set before re-accumulating into it). *)

val clear_scratch : row_scratch -> unit

val iter_sources :
  own:row_scratch ->
  mask:Mask.t ->
  plus:row_scratch ->
  fresh:(int -> unit) ->
  dirty:(int -> unit) ->
  unit
(** Enumerates a worklist target's source rows, split by how they must
    be absorbed: [fresh k] for every [k] in [plus] (newly added
    successors — their full row has never been ORed in), [dirty k] for
    every [k] in [own ∧ mask ∧ ¬plus] (long-standing successors that
    changed last round — only their news is needed).  Each callback
    runs ascending per word. *)
