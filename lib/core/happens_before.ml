open! Import
module Thread_id = Ident.Thread_id
module Task_id = Ident.Task_id
module Lock_id = Ident.Lock_id

type program_order = Hb_edges.program_order = Android_po | Full_po

type closure_engine = Dense | Worklist | Streaming

let closure_engine_name = function
  | Dense -> "dense"
  | Worklist -> "worklist"
  | Streaming -> "streaming"

let closure_engine_of_string = function
  | "dense" -> Some Dense
  | "worklist" -> Some Worklist
  | "streaming" -> Some Streaming
  | _ -> None

type config =
  { program_order : program_order
  ; enable_rule : bool
  ; post_rule : bool
  ; attach_rule : bool
  ; fifo_rule : bool
  ; nopre_rule : bool
  ; fork_join_rules : bool
  ; lock_rule : bool
  ; lock_same_thread : bool
  ; front_rule : bool
  ; restricted_transitivity : bool
  ; closure : closure_engine
  }

let default =
  { program_order = Android_po
  ; enable_rule = true
  ; post_rule = true
  ; attach_rule = true
  ; fifo_rule = true
  ; nopre_rule = true
  ; fork_join_rules = true
  ; lock_rule = true
  ; lock_same_thread = false
  ; front_rule = false
  ; restricted_transitivity = true
  ; closure = Dense
  }

(* Per-task data consumed by the FIFO and NOPRE rules. *)
type task_entry =
  { task : Task_id.t
  ; post_node : int
  ; begin_info : (int * int) option  (** node, trace position *)
  ; end_info : (int * int) option
  ; flavour : Operation.post_flavour
  ; task_nodes : int list
  }

type t =
  { graph : Graph.t
  ; cfg : config
  ; matrix : Bit_matrix.t
  ; fixpoint_passes : int
  ; word_ors : int
  ; rows_requeued : int
  }

let graph t = t.graph
let config t = t.cfg

(* The FIFO rule with the delayed-post refinement of Section 4.2: an
   edge needs the posts ordered by ⪯ and compatible flavours.  The
   happens-before treatment of front-of-queue posts is deferred by the
   paper, so they never produce FIFO edges. *)
let fifo_flavours_ok f1 f2 =
  match (f1 : Operation.post_flavour), (f2 : Operation.post_flavour) with
  | Immediate, (Immediate | Delayed _) -> true
  | Delayed d1, Delayed d2 -> d1 <= d2
  | Delayed _, Immediate -> false
  | Front, (Immediate | Delayed _ | Front) -> false
  | (Immediate | Delayed _), Front -> false

(* Rows per closure block.  A constant — never derived from the jobs
   count — so the per-pass semantics, the resulting matrix and the pass
   count are identical for every [jobs] value. *)
let closure_block_rows = 64

(* The worklist engine uses its own, larger block constant: bigger
   blocks mean more in-block Gauss–Seidel (live reads), so changes
   cross the matrix in fewer drain rounds and stabilised rows stop
   being re-pulled sooner.  Still a constant — never derived from the
   jobs count — so the worklist fixpoint is also independent of
   [jobs]. *)
let worklist_block_rows = 1024

(* The static fragment of a [config], for the shared edge builder. *)
let static_config (cfg : config) : Hb_edges.config =
  { Hb_edges.program_order = cfg.program_order
  ; enable_rule = cfg.enable_rule
  ; post_rule = cfg.post_rule
  ; attach_rule = cfg.attach_rule
  ; fork_join_rules = cfg.fork_join_rules
  ; lock_rule = cfg.lock_rule
  ; lock_same_thread = cfg.lock_same_thread
  }

let compute_impl ~config ~jobs g =
  let cfg = config in
  let trace = Graph.trace g in
  let n = Graph.node_count g in
  let m = Bit_matrix.create n in
  (* Thread index per node, and per thread the mask of its nodes. *)
  let tidx =
    Array.init n (fun id -> Graph.thread_index g (Graph.thread_of_node g id))
  in
  let thread_masks =
    Array.init (Graph.thread_count g) (fun _ -> Bit_matrix.Mask.create n)
  in
  for id = 0 to n - 1 do
    Bit_matrix.Mask.set thread_masks.(tidx.(id)) id
  done;
  let node_of_pos = Graph.node_of_pos g in
  (* The static rules (program order, ENABLE, POST, ATTACH-Q, FORK,
     JOIN, LOCK) seed the matrix through the shared builder — the same
     edges the predictive engine consumes as must-constraints. *)
  Hb_edges.iter ~config:(static_config cfg) g ~f:(fun ~rule:_ src dst ->
    Bit_matrix.set m src dst);
  (* Tasks grouped by the thread that executes them, for FIFO/NOPRE. *)
  let entries_by_target : (int, task_entry list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun p ->
       match Trace.post_index trace p, Trace.post_target trace p with
       | Some q, Some target ->
         let info idx = Option.map (fun i -> (node_of_pos i, i)) idx in
         let entry =
           { task = p
           ; post_node = node_of_pos q
           ; begin_info = info (Trace.begin_index trace p)
           ; end_info = info (Trace.end_index trace p)
           ; flavour =
               Option.value (Trace.post_flavour trace p)
                 ~default:Operation.Immediate
           ; task_nodes = Graph.nodes_of_task g p
           }
         in
         let key = Thread_id.to_int target in
         (match Hashtbl.find_opt entries_by_target key with
          | Some l -> l := entry :: !l
          | None -> Hashtbl.add entries_by_target key (ref [ entry ]))
       | (Some _ | None), _ -> ())
    (Trace.tasks trace);
  (* [on_set src dst] fires once per edge the dynamic rules add — the
     worklist engine uses it to requeue the changed row. *)
  let apply_dynamic ~on_set () =
    let changed = ref false in
    if cfg.fifo_rule || cfg.nopre_rule then
      Hashtbl.iter
        (fun _ entries ->
           let entries = !entries in
           List.iter
             (fun p1 ->
                match p1.end_info with
                | None -> ()
                | Some (end_node, end_pos) ->
                  List.iter
                    (fun p2 ->
                       match p2.begin_info with
                       | Some (begin_node, begin_pos)
                         when (not (Task_id.equal p1.task p2.task))
                              && end_pos < begin_pos
                              && not (Bit_matrix.get m end_node begin_node) ->
                         let fifo =
                           cfg.fifo_rule
                           && fifo_flavours_ok p1.flavour p2.flavour
                           && Bit_matrix.get m p1.post_node p2.post_node
                         in
                         (* EXTENSION: a front post pre-empts pending
                            tasks.  Sound premise: both posts come from
                            one task executing on the target thread
                            itself — the target is busy between the two
                            posts in every schedule, so p2 is still
                            pending when the front post p1 arrives and
                            p1 always jumps ahead: end(p1) ⪯ begin(p2). *)
                         let front =
                           cfg.front_rule
                           && (match p1.flavour with
                               | Operation.Front -> true
                               | Operation.Immediate | Operation.Delayed _ ->
                                 false)
                           && Bit_matrix.get m p2.post_node p1.post_node
                           && Thread_id.equal
                                (Graph.thread_of_node g p1.post_node)
                                (Graph.thread_of_node g end_node)
                           && (match
                                 ( Graph.task_of_node g p1.post_node
                                 , Graph.task_of_node g p2.post_node )
                               with
                               | Some q1, Some q2 -> Task_id.equal q1 q2
                               | (Some _ | None), _ -> false)
                         in
                         let nopre () =
                           cfg.nopre_rule
                           &&
                           ((* αk = the post itself: p2 was posted from
                               within p1 (⪯st is reflexive) *)
                            (match Graph.task_of_node g p2.post_node with
                             | Some q -> Task_id.equal q p1.task
                             | None -> false)
                            || List.exists
                                 (fun k -> Bit_matrix.get m k p2.post_node)
                                 p1.task_nodes)
                         in
                         if fifo || front || nopre () then begin
                           Bit_matrix.set m end_node begin_node;
                           on_set end_node begin_node;
                           changed := true
                         end
                       | Some _ | None -> ())
                    entries)
             entries)
        entries_by_target;
    !changed
  in
  let wpr = Bit_matrix.words_per_row m in
  let word_ors = ref 0 and rows_requeued = ref 0 in
  let passes = ref 0 in
  (* Shared fixpoint driver: alternate a closure phase with the dynamic
     rules until neither adds an edge.  One span per pass, carrying the
     number of ordering pairs the pass discovered (a population count,
     so only computed when telemetry is on — the fixpoint itself never
     pays for it). *)
  let run_fixpoint ~closure ~on_set =
    let rec go () =
      incr passes;
      let continue_ =
        Obs.with_span "hb.pass"
          ~args:[ ("pass", string_of_int !passes) ]
          (fun () ->
             let before = if Obs.enabled () then Bit_matrix.count m else 0 in
             let c1 = Obs.with_span "hb.closure" closure in
             let c2 = Obs.with_span "hb.dynamic_rules" (apply_dynamic ~on_set) in
             if Obs.enabled () then begin
               let added = Bit_matrix.count m - before in
               Obs.set_span_arg "edges_added" (string_of_int added);
               Obs.add ~n:added "hb.edges_added"
             end;
             c1 || c2)
      in
      if continue_ then go ()
    in
    go ()
  in
  (match cfg.closure with
   | Dense ->
     (* The dense closure is block-synchronous: each pass snapshots the
        matrix, then every block of [closure_block_rows] rows is brought
        up to date independently — in-block rows are read live
        (Gauss–Seidel within the block, rows high to low), rows of
        other blocks are read from the snapshot.  A block only ever
        writes its own rows, so blocks can run on separate domains with
        no shared writes, and because the partition is fixed (never
        derived from [jobs]) a pass computes the same matrix for every
        jobs value: the fixpoint — and even the pass count — is
        bit-identical whether the blocks run sequentially or in
        parallel. *)
     let snapshot = Bit_matrix.copy m in
     let blocks = Par_pool.ranges ~chunk:closure_block_rows n in
     let closure_block (lo, hi) =
       let changed = ref false and ors = ref 0 in
       for i = hi - 1 downto lo do
         let succs = ref [] in
         Bit_matrix.iter_row m i (fun k -> succs := k :: !succs);
         let ti = tidx.(i) in
         List.iter
           (fun k ->
              if k <> i then begin
                let read = if k >= lo && k < hi then m else snapshot in
                incr ors;
                let c =
                  if (not cfg.restricted_transitivity) || tidx.(k) = ti then
                    Bit_matrix.or_row_between ~read ~write:m ~dst:i ~src:k
                  else
                    Bit_matrix.or_row_between_masked_compl ~read ~write:m
                      ~dst:i ~src:k ~mask:thread_masks.(ti)
                in
                if c then changed := true
              end)
           (List.rev !succs)
       done;
       (!changed, !ors, hi - lo)
     in
     let closure_pass () =
       Bit_matrix.blit ~src:m ~dst:snapshot;
       let results = Par_pool.parallel_map ~jobs closure_block blocks in
       List.fold_left
         (fun any (c, ors, rows) ->
            word_ors := !word_ors + (ors * wpr);
            rows_requeued := !rows_requeued + rows;
            any || c)
         false results
     in
     run_fixpoint ~closure:closure_pass ~on_set:(fun _ _ -> ())
   | Worklist | Streaming ->
     (* [Streaming] selects {!Streaming_engine} in {!Detector.analyze};
        a caller that still asks for the batch relation under that
        configuration gets the sparse engine, whose fixpoint matrix the
        streaming clocks over-approximate. *)
     (* The worklist closure only re-propagates what changed — a
        semi-naïve (delta) fixpoint.  Row [i] of [delta] holds the bits
        added to row [i] of the matrix since [i] last broadcast them;
        row [j] of [preds] indexes the rows whose bitset contains [j],
        i.e. the rows that must re-absorb row [j] when it grows.  A row
        with a non-empty delta is dirty.  Each drain round moves the
        dirty set to D, captures each dirty row's delta as its [news]
        row, and re-propagates into the targets T = D ∪ preds(D):
        target [i] ORs the full (snapshotted) rows of its freshly added
        successors — sources it has never absorbed — and only the
        [news] of its long-standing dirty successors, so a source row
        that keeps growing costs its predecessors just the new words,
        not the whole row again.  Source ORs are bounded to the
        non-empty word extent of the source (news rows are localised).
        Targets are sharded into fixed [worklist_block_rows] blocks and
        drained high-to-low (reverse trace order, so forward-pointing
        HB chains settle in few rounds); D, S, T, the news capture and
        the snapshot are computed sequentially before the blocks run,
        blocks write only their own rows, and cross-block fresh reads
        come from the snapshot — so the fixpoint matrix is independent
        of [jobs].  Dirty marking and predecessor registration happen
        sequentially after the round from the targets' delta rows.
        Both engines close the same monotone rule system, so the
        fixpoint matrix is bit-identical to {!Dense}; only the amount
        of re-scanning differs. *)
     let delta = Bit_matrix.copy m in
     let preds = Bit_matrix.create n in
     let news = Bit_matrix.create n in
     let snap = Bit_matrix.create n in
     let news_lo = Array.make n 0 and news_hi = Array.make n (-1) in
     let snap_lo = Array.make n 0 and snap_hi = Array.make n (-1) in
     let dirty = Bit_matrix.Mask.create n in
     let d_mask = Bit_matrix.Mask.create n in
     let s_mask = Bit_matrix.Mask.create n in
     let t_mask = Bit_matrix.Mask.create n in
     let dirty_count = ref 0 in
     let mark_dirty i =
       if not (Bit_matrix.Mask.mem dirty i) then begin
         Bit_matrix.Mask.set dirty i;
         incr dirty_count
       end
     in
     for i = 0 to n - 1 do
       if not (Bit_matrix.row_is_empty m i) then begin
         mark_dirty i;
         Bit_matrix.iter_row m i (fun j -> Bit_matrix.set preds j i)
       end
     done;
     (* Dynamic-rule edges arrive between rounds: record the new bit as
        pending news, index it, requeue the row. *)
     let on_set src dst =
       Bit_matrix.set delta src dst;
       Bit_matrix.set preds dst src;
       mark_dirty src
     in
     let round () =
       Bit_matrix.Mask.clear d_mask;
       Bit_matrix.Mask.clear s_mask;
       Bit_matrix.Mask.clear t_mask;
       Bit_matrix.Mask.iter dirty (fun i -> Bit_matrix.Mask.set d_mask i);
       Bit_matrix.Mask.clear dirty;
       dirty_count := 0;
       (* News capture: each dirty row broadcasts (and thereby
          consumes) its pending delta.  S = the union of the news — the
          freshly added successors whose full rows targets will pull. *)
       Bit_matrix.Mask.iter d_mask (fun i ->
         Bit_matrix.blit_row ~src:delta ~dst:news i;
         Bit_matrix.clear_row delta i;
         let lo, hi = Bit_matrix.row_word_extent news i in
         news_lo.(i) <- lo;
         news_hi.(i) <- hi;
         Bit_matrix.or_row_into_mask news ~src:i s_mask;
         Bit_matrix.Mask.set t_mask i;
         Bit_matrix.or_row_into_mask preds ~src:i t_mask);
       Bit_matrix.Mask.iter s_mask (fun k ->
         Bit_matrix.blit_row ~src:m ~dst:snap k;
         let lo, hi = Bit_matrix.row_word_extent snap k in
         snap_lo.(k) <- lo;
         snap_hi.(k) <- hi);
       (* Shard the targets into fixed [worklist_block_rows] blocks,
          blocks and rows both descending. *)
       let blocks = ref [] and cur_b = ref (-1) and cur_rows = ref [] in
       Bit_matrix.Mask.iter t_mask (fun i ->
         let b = i / worklist_block_rows in
         if b <> !cur_b then begin
           if !cur_b >= 0 then blocks := (!cur_b, !cur_rows) :: !blocks;
           cur_b := b;
           cur_rows := [ i ]
         end
         else cur_rows := i :: !cur_rows);
       if !cur_b >= 0 then blocks := (!cur_b, !cur_rows) :: !blocks;
       let blocks = !blocks in
       let run_block (b, targets) =
         let lo = b * worklist_block_rows in
         let hi = min n (lo + worklist_block_rows) in
         let pull = Bit_matrix.row_scratch m in
         let own = Bit_matrix.row_scratch m in
         let ors = ref 0 and rows = ref 0 in
         List.iter
           (fun i ->
              incr rows;
              if Bit_matrix.Mask.mem d_mask i then
                Bit_matrix.copy_row news i pull
              else Bit_matrix.clear_scratch pull;
              Bit_matrix.copy_row m i own;
              let ti = tidx.(i) in
              let or_from read k w_lo w_hi =
                if w_hi >= w_lo then begin
                  ors := !ors + (w_hi - w_lo + 1);
                  if (not cfg.restricted_transitivity) || tidx.(k) = ti then
                    Bit_matrix.or_row_between_tracked_range ~read ~write:m
                      ~delta ~dst:i ~src:k ~w_lo ~w_hi
                  else
                    Bit_matrix.or_row_between_masked_compl_tracked_range ~read
                      ~write:m ~delta ~dst:i ~src:k ~mask:thread_masks.(ti)
                      ~w_lo ~w_hi
                end
              in
              Bit_matrix.iter_sources ~own ~mask:d_mask ~plus:pull
                ~fresh:(fun k ->
                  (* a successor [i] has never absorbed: its whole row,
                     live within the block, snapshotted across blocks
                     (the extent always comes from the snapshot, so the
                     words visited are jobs-independent) *)
                  if k <> i then
                    or_from
                      (if k >= lo && k < hi then m else snap)
                      k snap_lo.(k) snap_hi.(k))
                ~dirty:(fun k ->
                  (* a long-standing successor that grew: only its news *)
                  if k <> i then or_from news k news_lo.(k) news_hi.(k)))
           targets;
         (!ors, !rows)
       in
       let results = Par_pool.parallel_map ~jobs run_block blocks in
       List.iter
         (fun (ors, rows) ->
            word_ors := !word_ors + ors;
            rows_requeued := !rows_requeued + rows)
         results;
       (* A target whose delta row is non-empty gained bits this round:
          it is dirty again, and its new successors enter the
          predecessor index. *)
       let changed = ref false in
       List.iter
         (fun (_, targets) ->
            List.iter
              (fun i ->
                 if not (Bit_matrix.row_is_empty delta i) then begin
                   changed := true;
                   mark_dirty i;
                   Bit_matrix.iter_row delta i (fun j ->
                     Bit_matrix.set preds j i)
                 end)
              targets)
         blocks;
       !changed
     in
     let drain () =
       let changed = ref false in
       while !dirty_count > 0 do
         if round () then changed := true
       done;
       !changed
     in
     run_fixpoint ~closure:drain ~on_set);
  Obs.add ~n:!passes "hb.passes";
  Obs.add ~n:!word_ors "hb.word_ors";
  Obs.add ~n:!rows_requeued "hb.rows_requeued";
  { graph = g
  ; cfg
  ; matrix = m
  ; fixpoint_passes = !passes
  ; word_ors = !word_ors
  ; rows_requeued = !rows_requeued
  }

let compute ?(config = default) ?(jobs = 1) g =
  Obs.with_span "hb.compute"
    ~args:
      [ ("nodes", string_of_int (Graph.node_count g))
      ; ("jobs", string_of_int jobs)
      ]
    (fun () -> compute_impl ~config ~jobs g)

let node_hb t i j = i <> j && Bit_matrix.get t.matrix i j

let hb t i j =
  if i = j then false
  else
    let ni = Graph.node_of_pos t.graph i and nj = Graph.node_of_pos t.graph j in
    if ni = nj then i < j else Bit_matrix.get t.matrix ni nj

let hb_or_eq t i j = i = j || hb t i j
let ordered t i j = hb t i j || hb t j i

let same_thread t i j =
  Thread_id.equal
    (Trace.thread (Graph.trace t.graph) i)
    (Trace.thread (Graph.trace t.graph) j)

let node_count t = Graph.node_count t.graph
let edge_count t = Bit_matrix.count t.matrix
let passes t = t.fixpoint_passes
let word_ors t = t.word_ors
let rows_requeued t = t.rows_requeued
