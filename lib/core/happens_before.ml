open! Import
module Thread_id = Ident.Thread_id
module Task_id = Ident.Task_id
module Lock_id = Ident.Lock_id

type program_order = Android_po | Full_po

type config =
  { program_order : program_order
  ; enable_rule : bool
  ; post_rule : bool
  ; attach_rule : bool
  ; fifo_rule : bool
  ; nopre_rule : bool
  ; fork_join_rules : bool
  ; lock_rule : bool
  ; lock_same_thread : bool
  ; front_rule : bool
  ; restricted_transitivity : bool
  }

let default =
  { program_order = Android_po
  ; enable_rule = true
  ; post_rule = true
  ; attach_rule = true
  ; fifo_rule = true
  ; nopre_rule = true
  ; fork_join_rules = true
  ; lock_rule = true
  ; lock_same_thread = false
  ; front_rule = false
  ; restricted_transitivity = true
  }

(* Per-task data consumed by the FIFO and NOPRE rules. *)
type task_entry =
  { task : Task_id.t
  ; post_node : int
  ; begin_info : (int * int) option  (** node, trace position *)
  ; end_info : (int * int) option
  ; flavour : Operation.post_flavour
  ; task_nodes : int list
  }

type t =
  { graph : Graph.t
  ; cfg : config
  ; matrix : Bit_matrix.t
  ; fixpoint_passes : int
  }

let graph t = t.graph
let config t = t.cfg

(* The FIFO rule with the delayed-post refinement of Section 4.2: an
   edge needs the posts ordered by ⪯ and compatible flavours.  The
   happens-before treatment of front-of-queue posts is deferred by the
   paper, so they never produce FIFO edges. *)
let fifo_flavours_ok f1 f2 =
  match (f1 : Operation.post_flavour), (f2 : Operation.post_flavour) with
  | Immediate, (Immediate | Delayed _) -> true
  | Delayed d1, Delayed d2 -> d1 <= d2
  | Delayed _, Immediate -> false
  | Front, (Immediate | Delayed _ | Front) -> false
  | (Immediate | Delayed _), Front -> false

(* Rows per closure block.  A constant — never derived from the jobs
   count — so the per-pass semantics, the resulting matrix and the pass
   count are identical for every [jobs] value. *)
let closure_block_rows = 64

let compute_impl ~config ~jobs g =
  let cfg = config in
  let trace = Graph.trace g in
  let n = Graph.node_count g in
  let m = Bit_matrix.create n in
  (* Masks: for each thread, the set of its nodes. *)
  let thread_masks =
    Array.init (Graph.thread_count g) (fun _ -> Bit_matrix.Mask.create n)
  in
  for id = 0 to n - 1 do
    let ti = Graph.thread_index g (Graph.thread_of_node g id) in
    Bit_matrix.Mask.set thread_masks.(ti) id
  done;
  let node_of_pos = Graph.node_of_pos g in
  let add_edge_nodes src dst = if src <> dst then Bit_matrix.set m src dst in
  (* Base edge between trace positions, guarded by trace order (every
     rule of Figures 6 and 7 assumes i < j). *)
  let add_edge i j = if i < j then add_edge_nodes (node_of_pos i) (node_of_pos j) in
  (* Program order. *)
  List.iter
    (fun tid ->
       let nodes = Graph.nodes_of_thread g tid in
       let loop_pos = Trace.loop_index trace tid in
       let chain_ok a b =
         match cfg.program_order with
         | Full_po -> true
         | Android_po ->
           (match loop_pos with
            | None -> true
            | Some lp ->
              Graph.last_pos g a <= lp
              ||
              (match Graph.task_of_node g a, Graph.task_of_node g b with
               | Some p, Some q -> Task_id.equal p q
               | Some _, None | None, Some _ | None, None -> false))
       in
       let rec chain = function
         | a :: (b :: _ as rest) ->
           if chain_ok a b then add_edge_nodes a b;
           chain rest
         | [ _ ] | [] -> ()
       in
       chain nodes;
       (* NO-Q-PO with αi = loopOnQ: the loop node precedes every later
          operation of the thread, across all tasks. *)
       (match cfg.program_order, loop_pos with
        | Android_po, Some lp ->
          let loop_node = node_of_pos lp in
          List.iter
            (fun b -> if Graph.first_pos g b > lp then add_edge_nodes loop_node b)
            nodes
        | Android_po, None | Full_po, _ -> ()))
    (Trace.threads trace);
  (* ENABLE-ST / ENABLE-MT and POST-ST / POST-MT. *)
  List.iter
    (fun p ->
       (match Trace.post_index trace p with
        | Some q ->
          if cfg.enable_rule then
            (match Trace.enable_index trace p with
             | Some e -> add_edge e q
             | None -> ());
          if cfg.post_rule then
            (match Trace.begin_index trace p with
             | Some b -> add_edge q b
             | None -> ())
        | None -> ()))
    (Trace.tasks trace);
  (* ATTACH-Q-MT. *)
  if cfg.attach_rule then
    Trace.iteri
      (fun i (e : Trace.event) ->
         match e.op with
         | Operation.Post { target; _ } when not (Thread_id.equal e.thread target)
           ->
           (* find the target's attachQ *)
           (match
              List.find_opt
                (fun id ->
                   match Graph.kind g id with
                   | Graph.Anchor pos ->
                     (match Trace.op trace pos with
                      | Operation.Attach_queue -> true
                      | _ -> false)
                   | Graph.Access_block _ -> false)
                (Graph.nodes_of_thread g target)
            with
            | Some attach_node -> add_edge_nodes attach_node (node_of_pos i)
            | None -> ())
         | _ -> ())
      trace;
  (* FORK, JOIN, LOCK. *)
  let init_pos = Hashtbl.create 8 and exit_pos = Hashtbl.create 8 in
  let releases = Hashtbl.create 8 and acquires = Hashtbl.create 8 in
  Trace.iteri
    (fun i (e : Trace.event) ->
       match e.op with
       | Operation.Thread_init ->
         if not (Hashtbl.mem init_pos (Thread_id.to_int e.thread)) then
           Hashtbl.add init_pos (Thread_id.to_int e.thread) i
       | Operation.Thread_exit ->
         if not (Hashtbl.mem exit_pos (Thread_id.to_int e.thread)) then
           Hashtbl.add exit_pos (Thread_id.to_int e.thread) i
       | Operation.Release l ->
         Hashtbl.add releases (Lock_id.to_string l) (i, e.thread)
       | Operation.Acquire l ->
         Hashtbl.add acquires (Lock_id.to_string l) (i, e.thread)
       | _ -> ())
    trace;
  if cfg.fork_join_rules then
    Trace.iteri
      (fun i (e : Trace.event) ->
         match e.op with
         | Operation.Fork t' ->
           (match Hashtbl.find_opt init_pos (Thread_id.to_int t') with
            | Some j -> add_edge i j
            | None -> ())
         | Operation.Join t' ->
           (match Hashtbl.find_opt exit_pos (Thread_id.to_int t') with
            | Some j -> add_edge j i
            | None -> ())
         | _ -> ())
      trace;
  if cfg.lock_rule then
    Hashtbl.iter
      (fun l (ri, rt) ->
         List.iter
           (fun (ai, at) ->
              if ri < ai && (cfg.lock_same_thread || not (Thread_id.equal rt at))
              then add_edge ri ai)
           (Hashtbl.find_all acquires l))
      releases;
  (* Tasks grouped by the thread that executes them, for FIFO/NOPRE. *)
  let entries_by_target : (int, task_entry list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun p ->
       match Trace.post_index trace p, Trace.post_target trace p with
       | Some q, Some target ->
         let info idx = Option.map (fun i -> (node_of_pos i, i)) idx in
         let entry =
           { task = p
           ; post_node = node_of_pos q
           ; begin_info = info (Trace.begin_index trace p)
           ; end_info = info (Trace.end_index trace p)
           ; flavour =
               Option.value (Trace.post_flavour trace p)
                 ~default:Operation.Immediate
           ; task_nodes = Graph.nodes_of_task g p
           }
         in
         let key = Thread_id.to_int target in
         (match Hashtbl.find_opt entries_by_target key with
          | Some l -> l := entry :: !l
          | None -> Hashtbl.add entries_by_target key (ref [ entry ]))
       | (Some _ | None), _ -> ())
    (Trace.tasks trace);
  let apply_dynamic () =
    let changed = ref false in
    if cfg.fifo_rule || cfg.nopre_rule then
      Hashtbl.iter
        (fun _ entries ->
           let entries = !entries in
           List.iter
             (fun p1 ->
                match p1.end_info with
                | None -> ()
                | Some (end_node, end_pos) ->
                  List.iter
                    (fun p2 ->
                       match p2.begin_info with
                       | Some (begin_node, begin_pos)
                         when (not (Task_id.equal p1.task p2.task))
                              && end_pos < begin_pos
                              && not (Bit_matrix.get m end_node begin_node) ->
                         let fifo =
                           cfg.fifo_rule
                           && fifo_flavours_ok p1.flavour p2.flavour
                           && Bit_matrix.get m p1.post_node p2.post_node
                         in
                         (* EXTENSION: a front post pre-empts pending
                            tasks.  Sound premise: both posts come from
                            one task executing on the target thread
                            itself — the target is busy between the two
                            posts in every schedule, so p2 is still
                            pending when the front post p1 arrives and
                            p1 always jumps ahead: end(p1) ⪯ begin(p2). *)
                         let front =
                           cfg.front_rule
                           && (match p1.flavour with
                               | Operation.Front -> true
                               | Operation.Immediate | Operation.Delayed _ ->
                                 false)
                           && Bit_matrix.get m p2.post_node p1.post_node
                           && Thread_id.equal
                                (Graph.thread_of_node g p1.post_node)
                                (Graph.thread_of_node g end_node)
                           && (match
                                 ( Graph.task_of_node g p1.post_node
                                 , Graph.task_of_node g p2.post_node )
                               with
                               | Some q1, Some q2 -> Task_id.equal q1 q2
                               | (Some _ | None), _ -> false)
                         in
                         let nopre () =
                           cfg.nopre_rule
                           &&
                           ((* αk = the post itself: p2 was posted from
                               within p1 (⪯st is reflexive) *)
                            (match Graph.task_of_node g p2.post_node with
                             | Some q -> Task_id.equal q p1.task
                             | None -> false)
                            || List.exists
                                 (fun k -> Bit_matrix.get m k p2.post_node)
                                 p1.task_nodes)
                         in
                         if fifo || front || nopre () then begin
                           Bit_matrix.set m end_node begin_node;
                           changed := true
                         end
                       | Some _ | None -> ())
                    entries)
             entries)
        entries_by_target;
    !changed
  in
  (* The closure is block-synchronous: each pass snapshots the matrix,
     then every block of [closure_block_rows] rows is brought up to
     date independently — in-block rows are read live (Gauss–Seidel
     within the block, rows high to low as before), rows of other
     blocks are read from the snapshot.  A block only ever writes its
     own rows, so blocks can run on separate domains with no shared
     writes, and because the partition is fixed (never derived from
     [jobs]) a pass computes the same matrix for every jobs value: the
     fixpoint — and even the pass count — is bit-identical whether the
     blocks run sequentially or in parallel. *)
  let snapshot = Bit_matrix.copy m in
  let blocks = Par_pool.ranges ~chunk:closure_block_rows n in
  let closure_block (lo, hi) =
    let changed = ref false in
    for i = hi - 1 downto lo do
      let succs = ref [] in
      Bit_matrix.iter_row m i (fun k -> succs := k :: !succs);
      let ti = Graph.thread_index g (Graph.thread_of_node g i) in
      List.iter
        (fun k ->
           if k <> i then begin
             let read = if k >= lo && k < hi then m else snapshot in
             let c =
               if not cfg.restricted_transitivity then
                 Bit_matrix.or_row_between ~read ~write:m ~dst:i ~src:k
               else if
                 Thread_id.equal (Graph.thread_of_node g k)
                   (Graph.thread_of_node g i)
               then Bit_matrix.or_row_between ~read ~write:m ~dst:i ~src:k
               else
                 Bit_matrix.or_row_between_masked_compl ~read ~write:m ~dst:i
                   ~src:k ~mask:thread_masks.(ti)
             in
             if c then changed := true
           end)
        (List.rev !succs)
    done;
    !changed
  in
  let closure_pass () =
    Bit_matrix.blit ~src:m ~dst:snapshot;
    let changes = Par_pool.parallel_map ~jobs closure_block blocks in
    List.exists Fun.id changes
  in
  let passes = ref 0 in
  (* One span per fixpoint pass, carrying the number of ordering pairs
     the pass discovered (a population count, so only computed when
     telemetry is on — the fixpoint itself never pays for it). *)
  let rec fixpoint () =
    incr passes;
    let continue_ =
      Obs.with_span "hb.pass"
        ~args:[ ("pass", string_of_int !passes) ]
        (fun () ->
           let before = if Obs.enabled () then Bit_matrix.count m else 0 in
           let c1 = Obs.with_span "hb.closure" closure_pass in
           let c2 = Obs.with_span "hb.dynamic_rules" apply_dynamic in
           if Obs.enabled () then begin
             let added = Bit_matrix.count m - before in
             Obs.set_span_arg "edges_added" (string_of_int added);
             Obs.add ~n:added "hb.edges_added"
           end;
           c1 || c2)
    in
    if continue_ then fixpoint ()
  in
  fixpoint ();
  Obs.add ~n:!passes "hb.passes";
  { graph = g; cfg; matrix = m; fixpoint_passes = !passes }

let compute ?(config = default) ?(jobs = 1) g =
  Obs.with_span "hb.compute"
    ~args:
      [ ("nodes", string_of_int (Graph.node_count g))
      ; ("jobs", string_of_int jobs)
      ]
    (fun () -> compute_impl ~config ~jobs g)

let node_hb t i j = i <> j && Bit_matrix.get t.matrix i j

let hb t i j =
  if i = j then false
  else
    let ni = Graph.node_of_pos t.graph i and nj = Graph.node_of_pos t.graph j in
    if ni = nj then i < j else Bit_matrix.get t.matrix ni nj

let hb_or_eq t i j = i = j || hb t i j
let ordered t i j = hb t i j || hb t j i

let same_thread t i j =
  Thread_id.equal
    (Trace.thread (Graph.trace t.graph) i)
    (Trace.thread (Graph.trace t.graph) j)

let node_count t = Graph.node_count t.graph
let edge_count t = Bit_matrix.count t.matrix
let passes t = t.fixpoint_passes
