module Int_map = Map.Make (Int)

type t = int Int_map.t

let empty = Int_map.empty

let get t slot =
  match Int_map.find_opt slot t with
  | Some v -> v
  | None -> 0

let set t slot v = if v = 0 then Int_map.remove slot t else Int_map.add slot v t
let tick t slot = Int_map.add slot (get t slot + 1) t

let merge a b =
  Int_map.union (fun _ x y -> Some (max x y)) a b

let leq a b =
  Int_map.for_all (fun slot v -> v <= get b slot) a

let cardinal = Int_map.cardinal
let retain keep t = Int_map.filter (fun slot _ -> keep slot) t

let pp ppf t =
  Format.fprintf ppf "{";
  Int_map.iter (fun slot v -> Format.fprintf ppf " %d:%d" slot v) t;
  Format.fprintf ppf " }"
