(** Adaptive epoch ⊕ vector-clock access frontiers.

    FastTrack's key observation (Flanagan & Freund, PLDI'09) is that
    the last accesses to a memory location are almost always totally
    ordered, so a full vector of access times per location is wasted
    space: a single {e epoch} — one (clock slot, local time) pair —
    suffices until two genuinely concurrent accesses are seen.  This
    module is that representation, generalised over the payload carried
    with each access (the streaming engine stores a {!Race.access}):

    - {!Bottom}: no access recorded yet;
    - {!One}: a single epoch — the common case, updated in O(1) when
      the next access comes from the same slot (the same thread segment
      or task instance, hence program-ordered);
    - {!Many}: a read-share — a set of pairwise-unordered epochs keyed
      by slot, the vector-clock fallback.

    {!observe} maintains the {e frontier invariant}: the entries are
    pairwise unordered under the engine's clock relation, at most one
    per slot.  Entries ordered before the observing access are dropped
    — any later access unordered with a dropped entry is also unordered
    with whichever surviving entry subsumed it (clock knowledge is
    transitive: knowing an epoch means knowing the whole clock at that
    time), so per-location race {e coverage} is preserved even though
    the dropped pair itself is not reported. *)

module Int_map : Map.S with type key = int

type 'a entry =
  { slot : int  (** clock slot of the accessing segment *)
  ; time : int  (** the slot's local time at the access *)
  ; payload : 'a
  }

type 'a t =
  | Bottom
  | One of 'a entry
  | Many of 'a entry Int_map.t  (** keyed by slot; ≥ 2 entries *)

val bottom : 'a t

val cardinal : 'a t -> int

val entries : 'a t -> 'a entry list

val fold : ('a entry -> 'b -> 'b) -> 'a t -> 'b -> 'b

(** What {!observe} did, for the engine's telemetry. *)
type outcome =
  | Fast_path  (** same-slot O(1) epoch overwrite, clock never consulted *)
  | Promoted  (** an unordered entry forced {!One} → {!Many} *)
  | Demoted  (** dropping ordered entries collapsed {!Many} → {!One} *)
  | Stayed

val observe :
  clock:Vector_clock.t -> slot:int -> time:int -> 'a -> 'a t ->
  'a t * 'a entry list * outcome
(** [observe ~clock ~slot ~time payload t] records a new access whose
    segment clock is [clock].  Returns the new frontier, plus the
    entries that were {e unordered} with the access (they remain in the
    frontier beside it — these are the racing predecessors the caller
    reports).  Entries the clock knows are dropped. *)

val unknown : clock:Vector_clock.t -> 'a t -> 'a entry list
(** The entries not known by [clock] — read-only race check, for
    accesses that must not enter this frontier (a read probing the
    write frontier). *)

val prune : clock:Vector_clock.t -> 'a t -> 'a t * int
(** Drops every entry [clock] knows without inserting anything (a write
    clearing the reads it is ordered after); returns the count
    dropped. *)
