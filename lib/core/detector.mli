open! Import

(** The Race Detector (Section 5): trace in, classified races out.

    [analyze] removes cancelled posts (Section 4.2), builds the
    (optionally coalesced) trace graph, computes the happens-before
    relation, reports every pair of conflicting unordered accesses, and
    classifies each race.  The configuration switches drive the
    ablation experiments; defaults reproduce the paper's tool.

    The online vector-clock engine lives in {!Clock_engine}; it trades
    the precision of the graph relation for a single forward pass and is
    compared against this detector by the benchmarks. *)

type config =
  { coalesce : bool  (** merge contiguous access runs (Section 6) *)
  ; hb : Happens_before.config
  }

val default_config : config

val no_environment_model : config
(** The paper's tool without [enable] modelling: demonstrates the false
    positives that the environment model eliminates (Section 2.4,
    "Modeling the runtime environment"). *)

type classified_race =
  { race : Race.t
  ; category : Classify.category
  }

type report =
  { trace : Trace.t
      (** the analysed trace (cancelled posts removed); race positions
          refer to it *)
  ; all_races : classified_race list
      (** every conflicting unordered pair *)
  ; distinct_races : classified_race list
      (** one representative per memory location and category — the
          counts Table 3 reports *)
  ; trace_stats : Trace.stats
  ; nodes : int  (** graph nodes after coalescing *)
  ; uncoalesced_nodes : int  (** = trace length *)
  ; hb_edges : int
  ; fixpoint_passes : int
  ; hb_word_ors : int
      (** closure work metric, see {!Happens_before.word_ors} *)
  ; hb_rows_requeued : int
      (** rows (re-)propagated, see {!Happens_before.rows_requeued} *)
  ; elapsed_seconds : float  (** wall-clock (monotonic across domains) *)
  ; phase_seconds : (string * float) list
      (** wall-clock breakdown of {!elapsed_seconds} by pipeline phase,
          in execution order (see {!phase_names}); always populated,
          telemetry enabled or not *)
  }

val phase_names : string list
(** The phases of [analyze], in order: ["filter_cancelled"],
    ["graph_build"], ["happens_before"], ["race_detect"],
    ["classify"]. *)

val streaming_phase_names : string list
(** The phases of [analyze] under the streaming engine:
    ["filter_cancelled"], ["streaming_detect"], ["classify"]. *)

val phase_seconds : report -> string -> float
(** [phase_seconds report name] is the wall time of the named phase
    (0.0 for an unknown name). *)

val analyze : ?config:config -> ?jobs:int -> Trace.t -> report
(** With [jobs > 1] (default 1) the happens-before fixpoint and the
    conflicting-pair scan run on a {!Par_pool} of domains.  Except for
    [elapsed_seconds], the report is bit-identical for every [jobs]
    value — determinism is an invariant of the parallel engine, not
    best-effort (see {!Happens_before.compute} and {!Race.detect}).

    When [config.hb.closure] is {!Happens_before.Streaming} the batch
    pipeline is replaced by one {!Streaming_engine} pass (phases
    {!streaming_phase_names}; single-pass, so [jobs] is irrelevant and
    the report is identical for every value): [nodes] counts clock
    slots, the matrix statistics are 0, races are a subset of the batch
    engines' (see {!Streaming_engine}), and co-enabled classification
    degrades to the later categories.  Callers with traces too large to
    materialise should stream via {!Streaming_engine.detect_file}
    instead — this entry point still holds the whole trace. *)

val relation : ?config:config -> ?jobs:int -> Trace.t -> Happens_before.t
(** Just the happens-before relation of the (cancellation-filtered)
    trace, for callers that want to query orderings directly. *)

val count_by_category : classified_race list -> (Classify.category * int) list
(** Counts per category, in the fixed order multithreaded, cross-posted,
    co-enabled, delayed, unknown (the column order of Table 3). *)

val pp_report : Format.formatter -> report -> unit
