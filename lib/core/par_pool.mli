(** A fixed-size pool of OCaml 5 domains for the analysis hot paths.

    The pool is a process-wide set of worker domains (at most
    [jobs - 1] of them; the calling domain always participates) fed by
    a shared task queue.  Workers are spawned lazily on the first
    parallel call, reused by every subsequent call, and joined by an
    [at_exit] handler, so client code never manages domain lifetimes.

    Determinism is part of the contract: {!parallel_map} returns
    results in input order and raises the exception of the
    lowest-indexed failing element, whatever interleaving the domains
    actually ran.  Callers are responsible for handing it functions
    whose per-element work is independent (the analysis pipeline
    arranges disjoint row blocks for exactly this reason). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the default for every
    [--jobs] flag. *)

val parallel_map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map ~jobs f xs] is [List.map f xs] computed by up to
    [jobs] domains (the caller plus at most [jobs - 1] pool workers).

    - Results preserve input order.
    - If one or more applications raise, the exception of the
      lowest-indexed failing element is re-raised (with its backtrace)
      after every element has finished, so no work is left running.
    - [jobs <= 1], the empty list and singleton lists take the
      sequential path and never touch the pool. *)

val quiesce : unit -> unit
(** Join every worker domain and return the pool to its initial (empty,
    restartable) state.  The next {!parallel_map} re-spawns workers as
    usual.  Call from the main domain with no parallel call in flight.

    Quiescing is {e not} enough to make [Unix.fork] legal again: the
    OCaml 5 runtime refuses [fork] once any domain has ever been
    spawned, even after every domain is joined.  Process isolation must
    therefore fork its workers before the first domain-parallel
    computation of the process; the quiesce before forking is a
    defensive cleanup, not a license. *)

val ranges : chunk:int -> int -> (int * int) list
(** [ranges ~chunk n] splits [0..n-1] into half-open [(lo, hi)]
    intervals of [chunk] indices (the last may be shorter).  The
    partition depends only on [chunk] and [n] — never on the number of
    jobs — which is what lets the block-parallel fixpoint produce
    bit-identical matrices for every jobs value. *)
