open! Import

(** Data races (Section 4.3).

    A data race is a pair of conflicting operations — two accesses to
    the same memory location, at least one a write — with no
    happens-before ordering between them. *)

type access =
  { position : int  (** trace position *)
  ; location : Ident.Location.t
  ; is_write : bool
  ; thread : Ident.Thread_id.t
  ; task : Ident.Task_id.t option  (** enclosing asynchronous task *)
  }

type t =
  { first : access  (** the earlier access in the observed trace *)
  ; second : access
  }

val location : t -> Ident.Location.t

val is_multithreaded : t -> bool
(** The two accesses run on different threads. *)

val pp : Format.formatter -> t -> unit

val accesses : Trace.t -> access list
(** All read/write operations of the trace, in trace order. *)

val detect : ?jobs:int -> Trace.t -> hb:(int -> int -> bool) -> t list
(** All conflicting pairs [(i, j)], [i < j], with neither [hb i j] nor
    [hb j i], in lexicographic order of positions.  [hb] is any
    happens-before oracle over trace positions; it must be safe to
    query from several domains (the bit-matrix relation is, being
    read-only by then).  With [jobs > 1] the quadratic scan is chunked
    over a {!Par_pool}; the result list is identical for every [jobs]
    value. *)
