module Int_map = Map.Make (Int)
module Vc = Vector_clock

type 'a entry =
  { slot : int
  ; time : int
  ; payload : 'a
  }

type 'a t =
  | Bottom
  | One of 'a entry
  | Many of 'a entry Int_map.t

type outcome =
  | Fast_path
  | Promoted
  | Demoted
  | Stayed

let bottom = Bottom

let cardinal = function
  | Bottom -> 0
  | One _ -> 1
  | Many m -> Int_map.cardinal m

let fold f t acc =
  match t with
  | Bottom -> acc
  | One e -> f e acc
  | Many m -> Int_map.fold (fun _ e acc -> f e acc) m acc

let entries t = List.rev (fold (fun e acc -> e :: acc) t [])

(* [clock] knows [e] iff it has seen the [e.time]-th tick of [e.slot];
   in the streaming engine's transition system that is equivalent to
   pointwise domination of the whole clock at the time of the access
   (knowledge only ever propagates by merging full clocks). *)
let known clock e = Vc.get clock e.slot >= e.time

let unknown ~clock t =
  List.rev (fold (fun e acc -> if known clock e then acc else e :: acc) t [])

(* Re-pack a map that may have shrunk below two entries. *)
let of_map m =
  match Int_map.cardinal m with
  | 0 -> Bottom
  | 1 -> One (snd (Int_map.choose m))
  | _ -> Many m

let prune ~clock t =
  match t with
  | Bottom -> (Bottom, 0)
  | One e -> if known clock e then (Bottom, 1) else (t, 0)
  | Many m ->
    let keep = Int_map.filter (fun _ e -> not (known clock e)) m in
    let dropped = Int_map.cardinal m - Int_map.cardinal keep in
    ((if dropped = 0 then t else of_map keep), dropped)

let observe ~clock ~slot ~time payload t =
  let e = { slot; time; payload } in
  match t with
  | Bottom -> (One e, [], Stayed)
  | One prev when prev.slot = slot ->
    (* Same slot = same thread segment or task instance, hence program
       ordered: overwrite without touching the clock. *)
    (One e, [], Fast_path)
  | One prev ->
    if known clock prev then (One e, [], Stayed)
    else
      ( Many (Int_map.add slot e (Int_map.singleton prev.slot prev))
      , [ prev ]
      , Promoted )
  | Many m ->
    let racing = ref [] in
    let keep =
      Int_map.filter
        (fun s prev ->
           if s = slot then false  (* superseded in program order *)
           else if known clock prev then false
           else begin
             racing := prev :: !racing;
             true
           end)
        m
    in
    let next = Int_map.add slot e keep in
    let t' = of_map next in
    let outcome = match t' with One _ -> Demoted | _ -> Stayed in
    (t', List.rev !racing, outcome)
