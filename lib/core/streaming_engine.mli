open! Import

(** Bounded-memory streaming race detection.

    A single forward pass that consumes events as they arrive — from an
    in-memory trace, a channel, or a file via {!Trace_io.fold_channel}
    — and never materialises the trace.  The transition system is
    {!Clock_engine}'s (task-indexed sparse vector clocks; fork/join,
    post→begin, enable→post, attachQ→post, loopOnQ→begin, FIFO, NOPRE
    and unconditional lock merges), with three changes that bound
    resident memory by the number of {e live} entities instead of the
    event count:

    - per-location access history is an adaptive {!Epoch} frontier
      (last-write / last-read epochs, vector fallback on read shares)
      instead of the full access list;
    - the FIFO premise compares post {e epochs} instead of whole
      clocks, so no comparison ever scans a clock — which is what makes
      slot retirement sound;
    - incremental GC: consumed synchronization clocks are dropped at
      their single use, completed tasks beyond a window are folded into
      one per-thread clock, exited threads release their contexts, and
      a periodic sweep purges retired slots from every resident clock.

    {2 Correctness contract}

    Every mechanism above moves in one direction only: folding and the
    unconditional lock merge {e add} orderings (losing races), frontier
    and slot GC drop only state that provably cannot change a future
    answer.  Hence (property-tested, jobs ∈ {1, 4}):

    - {e soundness of reports}: every race this engine reports is also
      reported by the worklist (and dense) batch engine;
    - {e coverage on lock-free traces}: for every location, the set of
      trace positions this engine reports as the {e second} access of a
      race equals the batch engine's — each racy access is flagged when
      it happens, though the racing {e partner} may be a later,
      subsuming access rather than every historical one (the frontier
      keeps pairwise-unordered representatives, not the full history).

    On traces with locks both engines inherit {!Clock_engine}'s
    documented over-approximation and under-report relative to the
    graph relation. *)

type config =
  { completed_window : int
        (** completed-task records kept per thread for exact FIFO/NOPRE
            before folding (default 64) *)
  ; gc_interval : int
        (** events between retired-slot sweeps; 0 disables sweeping
            (default 4096) *)
  }

val default_config : config

type stats =
  { events : int
  ; slots_allocated : int  (** clock slots handed out over the run *)
  ; live_slots : int  (** slots still referenced at the end *)
  ; peak_live_slots : int  (** max live slots seen at any sweep *)
  ; slots_retired : int  (** allocated minus live *)
  ; resident_clock_entries : int
        (** total entries across all resident clocks after the final
            sweep *)
  ; peak_clock_entries : int  (** max resident entries at any sweep *)
  ; fast_path : int  (** same-slot O(1) epoch overwrites *)
  ; promotions : int  (** epoch → vector (read share) *)
  ; demotions : int  (** vector → epoch *)
  ; comparisons : int  (** frontier entries examined by access checks *)
  ; folded_tasks : int  (** completed records evicted into the fold *)
  ; gc_sweeps : int
  ; races : int
  }

(** {1 Incremental feeding} *)

type t

val create : ?config:config -> unit -> t

val feed : t -> position:int -> Trace.event -> unit
(** Consumes the next event.  [position] is the 0-based index the
    event would have in the materialised trace; reported races carry
    these positions. *)

val races : t -> Race.t list
(** Races seen so far, in lexicographic position order. *)

val stats : t -> stats
(** Runs a sweep (so the gauges are current) and reports. *)

val finish : t -> Race.t list * stats
(** Final sweep, [Obs] counter flush, and results. *)

(** {1 Whole-input drivers} *)

val detect : ?config:config -> Trace.t -> Race.t list * stats
(** In-memory trace; positions are trace indices.  Unlike
    {!Detector.analyze} this does {e not} filter cancelled posts —
    feed it a {!Trace.remove_cancelled}'d trace to compare positions
    with the batch engines. *)

val detect_channel :
  ?config:config -> In_channel.t ->
  (Race.t list * stats, Trace_io.read_error) result

val detect_file :
  ?config:config -> string -> (Race.t list * stats, Trace_io.read_error) result
(** Streams the named file; memory stays proportional to live entities
    whatever the event count. *)

(** {1 Reporting} *)

val stats_json_string :
  ?label:string -> elapsed_seconds:float -> peak_rss_kb:int -> stats -> string
(** Schema [droidracer-streaming/1]: throughput (events, elapsed,
    events/sec), the race count, and the memory profile (peak live
    slots, retired slots, peak resident clock entries, peak RSS —
    callers read the latter from {!Obs.peak_rss_kb}).

    When telemetry is enabled, every GC sweep also appends
    [streaming.live_slots] and [streaming.resident_clock_entries]
    samples to the {!Obs} time-series store, so the engine's memory
    frontier is observable over time, not just as a final gauge. *)
