open! Import
module Thread_id = Ident.Thread_id
module Location = Ident.Location

type access =
  { position : int
  ; location : Location.t
  ; is_write : bool
  ; thread : Thread_id.t
  ; task : Ident.Task_id.t option
  }

type t =
  { first : access
  ; second : access
  }

let location r = r.first.location

let is_multithreaded r =
  not (Thread_id.equal r.first.thread r.second.thread)

let pp_access ppf a =
  Format.fprintf ppf "%s(%a)@%d on %a"
    (if a.is_write then "write" else "read")
    Location.pp a.location a.position Thread_id.pp a.thread

let pp ppf r =
  Format.fprintf ppf "race between %a and %a" pp_access r.first pp_access
    r.second

let accesses trace =
  let out = ref [] in
  Trace.iteri
    (fun i (e : Trace.event) ->
       match Operation.accessed_location e.op with
       | Some location ->
         out :=
           { position = i
           ; location
           ; is_write = Operation.is_write e.op
           ; thread = e.thread
           ; task = Trace.enclosing_task trace i
           }
           :: !out
       | None -> ())
    trace;
  List.rev !out

let detect ?(jobs = 1) trace ~hb =
  Obs.with_span "race.detect" ~args:[ ("jobs", string_of_int jobs) ]
  @@ fun () ->
  (* Keyed by the structural [Location.t] itself — stringifying every
     access allocated a fresh key per event for nothing.  Groups are
     ordered by their earliest access position (unique per group, since
     a trace position touches one location), which needs no
     re-stringification either. *)
  let by_location : (Location.t, access list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun a ->
       match Hashtbl.find_opt by_location a.location with
       | Some l -> l := a :: !l
       | None -> Hashtbl.add by_location a.location (ref [ a ]))
    (accesses trace);
  let groups =
    Hashtbl.fold
      (fun _ accs acc ->
         (* in trace order *)
         Array.of_list (List.rev !accs) :: acc)
      by_location []
    |> List.sort (fun a1 a2 ->
      Int.compare a1.(0).position a2.(0).position)
  in
  let work =
    List.concat_map
      (fun arr ->
         let len = Array.length arr in
         let chunk =
           if jobs <= 1 then len
           else max 16 ((len + (4 * jobs) - 1) / (4 * jobs))
         in
         List.map (fun (lo, hi) -> (arr, lo, hi)) (Par_pool.ranges ~chunk len))
      groups
  in
  (* The scan over a location's accesses is quadratic, so one hot
     location would serialise a per-location fan-out; chunk the
     first-access index range instead.  The chunk size depends on
     [jobs], which is fine: the final sort makes the output independent
     of how the work was split. *)
  let scan (arr, lo, hi) =
    Obs.with_span "race.chunk"
      ~args:[ ("lo", string_of_int lo); ("hi", string_of_int hi) ]
    @@ fun () ->
    let races = ref [] in
    for i = lo to hi - 1 do
      let a = arr.(i) in
      for j = i + 1 to Array.length arr - 1 do
        let b = arr.(j) in
        if (a.is_write || b.is_write)
           && not (hb a.position b.position)
           && not (hb b.position a.position)
        then races := { first = a; second = b } :: !races
      done
    done;
    if Obs.enabled () then begin
      (* pairs examined = Σ_{i=lo}^{hi-1} (len-1-i), in closed form so
         the scan's inner loop stays untouched *)
      let len = Array.length arr in
      let k = hi - lo in
      let pairs = (k * (len - 1)) - (k * (lo + hi - 1) / 2) in
      let conflicts = List.length !races in
      Obs.add ~n:pairs "race.pairs_examined";
      Obs.add ~n:conflicts "race.conflicts";
      Obs.set_span_arg "pairs" (string_of_int pairs);
      Obs.set_span_arg "conflicts" (string_of_int conflicts)
    end;
    !races
  in
  List.concat (Par_pool.parallel_map ~jobs scan work)
  |> List.sort (fun r1 r2 ->
    match Int.compare r1.first.position r2.first.position with
    | 0 -> Int.compare r1.second.position r2.second.position
    | c -> c)
