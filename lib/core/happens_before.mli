open! Import

(** The happens-before relation ⪯ for Android execution traces
    (Section 4.1, Figures 6 and 7).

    ⪯ is the union of a thread-local relation ⪯st (NO-Q-PO, ASYNC-PO,
    ENABLE-ST, POST-ST, FIFO, NOPRE, TRANS-ST) and an inter-thread
    relation ⪯mt (ATTACH-Q-MT, ENABLE-MT, POST-MT, FORK, JOIN, LOCK,
    TRANS-MT).  Because ⪯st only relates operations of one thread and
    ⪯mt only relates operations of different threads, a single
    reachability matrix over graph nodes represents both: a same-thread
    entry is an ⪯st fact, a different-thread entry an ⪯mt fact.  The
    paper's transitivity restriction becomes a side condition on row
    composition: [i ⪯ k ∧ k ⪯ j ⇒ i ⪯ j] is admitted iff
    [thread i ≠ thread j] (TRANS-MT) or
    [thread i = thread k = thread j] (TRANS-ST).

    FIFO and NOPRE consume the combined relation in their premises, so
    the computation alternates rule application and closure until a
    fixpoint is reached.  The configuration switches exist for the
    baselines of Section 4.1 ("Specializations") and Section 7, and for
    the ablation experiments; {!default} is the paper's relation. *)

(** How operations of one thread are ordered by program order
    (the type lives in {!Hb_edges}, shared with the static edge
    builder). *)
type program_order = Hb_edges.program_order =
  | Android_po
      (** NO-Q-PO until [loopOnQ], then ASYNC-PO within each task *)
  | Full_po
      (** classic multi-threaded program order across the whole thread,
          regardless of task boundaries (baselines only) *)

(** Which engine computes the relation.  The two batch engines compute
    the least fixpoint of the same monotone rule system, so their
    relation is bit-identical; only the amount of re-scanning (and
    hence the pass count and wall time) differs.  [Streaming] is not a
    matrix engine at all: {!Detector.analyze} routes it to
    {!Streaming_engine}, a bounded-memory single pass whose clock
    relation over-approximates ⪯ (and whose races are therefore a
    subset of the batch engines'). *)
type closure_engine =
  | Dense
      (** block-synchronous full-matrix passes: every pass re-propagates
          all n rows *)
  | Worklist
      (** sparse worklist: tracks dirty rows and a reverse-successor
          index, re-propagating only the predecessors of rows that
          actually changed, drained in reverse trace order *)
  | Streaming
      (** epoch-clock single pass, never materialising the trace; a
          {!compute} call under this configuration falls back to
          [Worklist] for callers that need the batch relation *)

val closure_engine_name : closure_engine -> string

val closure_engine_of_string : string -> closure_engine option
(** Recognises ["dense"], ["worklist"] and ["streaming"]. *)

type config =
  { program_order : program_order
  ; enable_rule : bool  (** ENABLE-ST and ENABLE-MT *)
  ; post_rule : bool  (** POST-ST and POST-MT *)
  ; attach_rule : bool  (** ATTACH-Q-MT *)
  ; fifo_rule : bool  (** FIFO, with the delayed-post refinement of §4.2 *)
  ; nopre_rule : bool  (** NOPRE *)
  ; fork_join_rules : bool  (** FORK and JOIN *)
  ; lock_rule : bool  (** LOCK between distinct threads *)
  ; lock_same_thread : bool
      (** also order same-thread release/acquire pairs: the naïve
          combination the paper warns against (Section 1) *)
  ; front_rule : bool
      (** EXTENSION (off by default; the paper defers posting-to-the-front
          to future work): derive LIFO orderings for front-of-queue
          posts.  A front-posted task pre-empts every task that is
          already pending when it is posted: if post(p₁) ⪯ post(p₂),
          both target thread t, p₂ is a front post, and p₂ was posted
          before p₁ began (so p₁ was still pending), then
          end(p₂) ⪯st begin(p₁). *)
  ; restricted_transitivity : bool
      (** [false] closes transitively without the thread side condition
          (naïve combination) *)
  ; closure : closure_engine
      (** which closure engine runs the fixpoint (default {!Dense});
          the computed relation does not depend on the choice *)
  }

val default : config
(** The paper's relation: Android program order, every rule on,
    [lock_same_thread = false], restricted transitivity. *)

type t

val compute : ?config:config -> ?jobs:int -> Graph.t -> t
(** [compute ?config ?jobs g] computes ⪯ to a fixpoint.

    With [jobs > 1] (default 1) each closure pass distributes disjoint
    row blocks over a {!Par_pool} of domains.  The pass semantics is
    block-synchronous — a block reads other blocks' rows from a
    snapshot taken at the start of the pass — and the block partition
    is fixed, so the computed relation (and the pass count) is
    bit-identical for every [jobs] value. *)

val graph : t -> Graph.t

val config : t -> config

(** {1 Queries over trace positions} *)

val hb : t -> int -> int -> bool
(** [hb r i j] is [αᵢ ⪯ αⱼ] for trace positions [i ≠ j].  Positions
    inside the same coalesced node are ordered by their program order. *)

val hb_or_eq : t -> int -> int -> bool

val ordered : t -> int -> int -> bool
(** [hb r i j || hb r j i]. *)

val same_thread : t -> int -> int -> bool

(** {1 Queries over graph nodes} *)

val node_hb : t -> int -> int -> bool

(** {1 Statistics} *)

val node_count : t -> int

val edge_count : t -> int
(** Number of ordered pairs in the computed relation. *)

val passes : t -> int
(** Fixpoint iterations used (for the benchmarks). *)

val word_ors : t -> int
(** Machine-word OR operations the closure engine performed — the
    engine-comparison work metric ([hb.word_ors]).  Deterministic for a
    given trace, config and engine, independent of [jobs]. *)

val rows_requeued : t -> int
(** Rows the closure engine (re-)propagated: n per pass for {!Dense},
    the number of worklist targets drained for {!Worklist}
    ([hb.rows_requeued]). *)
