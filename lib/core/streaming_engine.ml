open! Import
module Thread_id = Ident.Thread_id
module Task_id = Ident.Task_id
module Lock_id = Ident.Lock_id
module Location = Ident.Location
module Vc = Vector_clock

type config =
  { completed_window : int
  ; gc_interval : int
  }

let default_config = { completed_window = 64; gc_interval = 4096 }

type stats =
  { events : int
  ; slots_allocated : int
  ; live_slots : int
  ; peak_live_slots : int
  ; slots_retired : int
  ; resident_clock_entries : int
  ; peak_clock_entries : int
  ; fast_path : int
  ; promotions : int
  ; demotions : int
  ; comparisons : int
  ; folded_tasks : int
  ; gc_sweeps : int
  ; races : int
  }

(* The post of a task, remembered until its [begin] consumes it.  The
   epoch (p_slot, p_time) stands in for the whole post clock in the
   FIFO premise: in this transition system, knowing an event's epoch is
   equivalent to dominating the event's entire clock (knowledge only
   propagates by merging full clocks), so the O(slots) [Vc.leq] of
   {!Clock_engine} collapses to one O(log) lookup — which is what lets
   retired slots be purged from resident clocks. *)
type pending_post =
  { p_clock : Vc.t
  ; p_slot : int
  ; p_time : int
  ; p_flavour : Operation.post_flavour
  }

(* A completed task, remembered (up to the window) for the FIFO and
   NOPRE checks at later [begin]s on the same thread. *)
type completed =
  { c_slot : int
  ; c_post_slot : int
  ; c_post_time : int
  ; c_end_clock : Vc.t
  ; c_end_time : int
        (** [Vc.get c_end_clock c_slot] — the slot's final local time.
            Every event ticks the executing slot and the slot is retired
            at [end], so this time is {e unique} to [c_end_clock] among
            all clocks ever exported from the segment: a clock holding
            the slot at [c_end_time] necessarily descends from
            [c_end_clock] and so already dominates it.  That turns the
            per-record merge decision at [begin] into an O(log) epoch
            probe. *)
  ; c_flavour : Operation.post_flavour
  }

type thread_ctx =
  { mutable slot : int
  ; mutable clock : Vc.t
  ; mutable in_task : Task_id.t option
  ; mutable current_post : pending_post option
  ; mutable loop_clock : Vc.t option
  ; mutable completed : completed list  (** newest first, ≤ window *)
  ; mutable completed_len : int
  ; mutable folded_ends : Vc.t
        (** join of the end clocks of every completed task evicted from
            the window; merged into every later [begin] — an
            over-approximation of FIFO/NOPRE, so it only ever {e adds}
            orderings (loses races, never invents them) *)
  }

type loc_state =
  { mutable writes : Race.access Epoch.t
  ; mutable reads : Race.access Epoch.t
  }

type t =
  { cfg : config
  ; mutable next_slot : int
  ; interner : Ident.Interner.t
        (* the shared ident table (lib/trace): task, lock and location
           keys below are interned small ints, not strings, so lookups
           in the per-event hot path hash an int instead of a string *)
  ; threads : (int, thread_ctx) Hashtbl.t
  ; fork_clocks : (int, Vc.t) Hashtbl.t
  ; exit_clocks : (int, Vc.t) Hashtbl.t
  ; attach_clocks : (int, Vc.t) Hashtbl.t
  ; lock_clocks : (int, Vc.t) Hashtbl.t
  ; enable_clocks : (int, Vc.t) Hashtbl.t
  ; posts : (int, pending_post) Hashtbl.t
  ; locations : (int, loc_state) Hashtbl.t
  ; mutable races : Race.t list
  ; mutable events : int
  ; mutable fast_path : int
  ; mutable promotions : int
  ; mutable demotions : int
  ; mutable comparisons : int
  ; mutable folded_tasks : int
  ; mutable gc_sweeps : int
  ; mutable live_slots : int
  ; mutable peak_live_slots : int
  ; mutable resident_clock_entries : int
  ; mutable peak_clock_entries : int
  }

let create ?(config = default_config) () =
  { cfg = config
  ; next_slot = 0
  ; interner = Ident.Interner.create ()
  ; threads = Hashtbl.create 16
  ; fork_clocks = Hashtbl.create 8
  ; exit_clocks = Hashtbl.create 8
  ; attach_clocks = Hashtbl.create 8
  ; lock_clocks = Hashtbl.create 8
  ; enable_clocks = Hashtbl.create 16
  ; posts = Hashtbl.create 64
  ; locations = Hashtbl.create 64
  ; races = []
  ; events = 0
  ; fast_path = 0
  ; promotions = 0
  ; demotions = 0
  ; comparisons = 0
  ; folded_tasks = 0
  ; gc_sweeps = 0
  ; live_slots = 0
  ; peak_live_slots = 0
  ; resident_clock_entries = 0
  ; peak_clock_entries = 0
  }

let fresh_slot t =
  let s = t.next_slot in
  t.next_slot <- s + 1;
  s

let ctx t tid =
  match Hashtbl.find_opt t.threads (Thread_id.to_int tid) with
  | Some c -> c
  | None ->
    let c =
      { slot = fresh_slot t
      ; clock = Vc.empty
      ; in_task = None
      ; current_post = None
      ; loop_clock = None
      ; completed = []
      ; completed_len = 0
      ; folded_ends = Vc.empty
      }
    in
    Hashtbl.add t.threads (Thread_id.to_int tid) c;
    c

(* {2 Retired-slot garbage collection}

   A slot can appear as the {e subject} of a future [Vc.get] only while
   something still holds it as a comparison key: a frontier entry, a
   completed-window record (its own slot for NOPRE, its post epoch for
   FIFO), a pending post's epoch, or a live context's current slot.
   Once none do, the slot is retired: its entries in resident clocks
   are pure payload that no comparison will ever read, so dropping them
   cannot change any future answer — the sweep is invisible to the
   race set, it only bounds memory. *)

module Int_set = Set.Make (Int)

let live_slot_set t =
  let live = ref Int_set.empty in
  let add s = live := Int_set.add s !live in
  Hashtbl.iter
    (fun _ c ->
       add c.slot;
       List.iter
         (fun comp ->
            add comp.c_slot;
            add comp.c_post_slot)
         c.completed)
    t.threads;
  Hashtbl.iter (fun _ (p : pending_post) -> add p.p_slot) t.posts;
  Hashtbl.iter
    (fun _ l ->
       Epoch.fold (fun e () -> add e.Epoch.slot) l.writes ();
       Epoch.fold (fun e () -> add e.Epoch.slot) l.reads ())
    t.locations;
  !live

let sweep t =
  let live = live_slot_set t in
  let keep s = Int_set.mem s live in
  let resident = ref 0 in
  let purge vc =
    let vc = Vc.retain keep vc in
    resident := !resident + Vc.cardinal vc;
    vc
  in
  let purge_opt = Option.map purge in
  let purge_tbl tbl = Hashtbl.filter_map_inplace (fun _ vc -> Some (purge vc)) tbl in
  Hashtbl.iter
    (fun _ c ->
       c.clock <- purge c.clock;
       c.loop_clock <- purge_opt c.loop_clock;
       c.folded_ends <- purge c.folded_ends;
       c.completed <-
         List.map (fun comp -> { comp with c_end_clock = purge comp.c_end_clock })
           c.completed)
    t.threads;
  purge_tbl t.fork_clocks;
  purge_tbl t.exit_clocks;
  purge_tbl t.attach_clocks;
  purge_tbl t.lock_clocks;
  purge_tbl t.enable_clocks;
  Hashtbl.filter_map_inplace
    (fun _ (p : pending_post) -> Some { p with p_clock = purge p.p_clock })
    t.posts;
  t.gc_sweeps <- t.gc_sweeps + 1;
  t.live_slots <- Int_set.cardinal live;
  t.peak_live_slots <- max t.peak_live_slots t.live_slots;
  t.resident_clock_entries <- !resident;
  t.peak_clock_entries <- max t.peak_clock_entries !resident;
  if Obs.enabled () then begin
    Obs.add "streaming.gc_sweeps";
    Obs.set_gauge "streaming.live_slots" (float_of_int t.live_slots);
    Obs.set_gauge "streaming.retired_slots"
      (float_of_int (t.next_slot - t.live_slots));
    Obs.set_gauge "streaming.resident_clock_entries" (float_of_int !resident);
    (* The memory frontier over time: every sweep appends a live-slot
       watermark sample, and the rate-limited resource sampler rides
       along so RSS and heap series line up with it. *)
    Obs.record_series "streaming.live_slots" (float_of_int t.live_slots);
    Obs.record_series "streaming.resident_clock_entries"
      (float_of_int !resident);
    Obs.maybe_sample ()
  end

let loc_state t location =
  let key = Ident.Interner.intern t.interner (Location.to_string location) in
  match Hashtbl.find_opt t.locations key with
  | Some l -> l
  | None ->
    let l = { writes = Epoch.bottom; reads = Epoch.bottom } in
    Hashtbl.add t.locations key l;
    l

let count_outcome t = function
  | Epoch.Fast_path -> t.fast_path <- t.fast_path + 1
  | Epoch.Promoted -> t.promotions <- t.promotions + 1
  | Epoch.Demoted -> t.demotions <- t.demotions + 1
  | Epoch.Stayed -> ()

let report t (access : Race.access) (prev : Race.access Epoch.entry list) =
  List.iter
    (fun (e : Race.access Epoch.entry) ->
       t.races <- { Race.first = e.Epoch.payload; second = access } :: t.races)
    prev

let record_access t c position location is_write tid =
  let access =
    { Race.position; location; is_write; thread = tid; task = c.in_task }
  in
  let l = loc_state t location in
  let time = Vc.get c.clock c.slot in
  if is_write then begin
    t.comparisons <-
      t.comparisons + Epoch.cardinal l.writes + Epoch.cardinal l.reads;
    let writes, racing_writes, outcome =
      Epoch.observe ~clock:c.clock ~slot:c.slot ~time access l.writes
    in
    l.writes <- writes;
    count_outcome t outcome;
    report t access racing_writes;
    report t access (Epoch.unknown ~clock:c.clock l.reads);
    (* Reads this write is ordered after are subsumed by it: any later
       access unordered with such a read is also unordered with this
       write, which both future reads and writes check. *)
    let reads, _dropped = Epoch.prune ~clock:c.clock l.reads in
    l.reads <- reads
  end
  else begin
    t.comparisons <- t.comparisons + Epoch.cardinal l.writes;
    report t access (Epoch.unknown ~clock:c.clock l.writes);
    (* A read must not disturb the write frontier: a write it is
       ordered after may still race with a later read that does not
       know this one. *)
    let reads, _racing_reads, outcome =
      Epoch.observe ~clock:c.clock ~slot:c.slot ~time access l.reads
    in
    l.reads <- reads;
    count_outcome t outcome
  end

let feed t ~position (e : Trace.event) =
  t.events <- t.events + 1;
  let c = ctx t e.thread in
  (* Every operation advances the executing context's local time. *)
  c.clock <- Vc.tick c.clock c.slot;
  (match e.op with
   | Operation.Thread_init ->
     let id = Thread_id.to_int e.thread in
     (match Hashtbl.find_opt t.fork_clocks id with
      | Some vc ->
        c.clock <- Vc.merge c.clock vc;
        (* One threadinit per thread: the fork clock is consumed. *)
        Hashtbl.remove t.fork_clocks id
      | None -> ())
   | Operation.Thread_exit ->
     let id = Thread_id.to_int e.thread in
     Hashtbl.replace t.exit_clocks id c.clock;
     (* Nothing runs on an exited thread; its queue clock (needed by
        later posts to it) lives in [attach_clocks].  Dropping the
        context releases its completed window and clocks. *)
     Hashtbl.remove t.threads id
   | Operation.Fork t' ->
     Hashtbl.replace t.fork_clocks (Thread_id.to_int t') c.clock
   | Operation.Join t' ->
     (match Hashtbl.find_opt t.exit_clocks (Thread_id.to_int t') with
      | Some vc -> c.clock <- Vc.merge c.clock vc
      | None -> ())
   | Operation.Attach_queue ->
     Hashtbl.replace t.attach_clocks (Thread_id.to_int e.thread) c.clock
   | Operation.Loop_on_queue -> c.loop_clock <- Some c.clock
   | Operation.Post { task; target; flavour } ->
     let key = Ident.Interner.intern t.interner (Task_id.to_string task) in
     (* ENABLE-*: the post happens after the task's enable (one post
        per task: the enable clock is consumed). *)
     (match Hashtbl.find_opt t.enable_clocks key with
      | Some vc ->
        c.clock <- Vc.merge c.clock vc;
        Hashtbl.remove t.enable_clocks key
      | None -> ());
     (* ATTACH-Q-MT: a cross-thread post happens after the target's
        attachQ. *)
     if not (Thread_id.equal e.thread target) then
       (match Hashtbl.find_opt t.attach_clocks (Thread_id.to_int target) with
        | Some vc -> c.clock <- Vc.merge c.clock vc
        | None -> ());
     Hashtbl.replace t.posts key
       { p_clock = c.clock
       ; p_slot = c.slot
       ; p_time = Vc.get c.clock c.slot
       ; p_flavour = flavour
       }
   | Operation.Begin_task p ->
     let slot = fresh_slot t in
     let base =
       match c.loop_clock with
       | Some vc -> vc
       | None -> Vc.empty
     in
     let clock = ref (Vc.merge base c.folded_ends) in
     (match
        Hashtbl.find_opt t.posts
          (Ident.Interner.intern t.interner (Task_id.to_string p))
      with
      | Some post ->
        (* Unique renaming: one begin per task, the post is consumed. *)
        Hashtbl.remove t.posts
          (Ident.Interner.intern t.interner (Task_id.to_string p));
        clock := Vc.merge !clock post.p_clock;
        (* FIFO and NOPRE against the windowed completed tasks of this
           thread; evicted ones were already folded into the base. *)
        List.iter
          (fun comp ->
             (* Newest-first: once the newest qualifying record is
                merged, every older record it transitively ordered
                after (the common sequential-looper case) is already
                dominated, and the epoch probe skips its merge. *)
             if Vc.get !clock comp.c_slot < comp.c_end_time then begin
               let fifo =
                 Clock_engine.fifo_flavours_ok comp.c_flavour post.p_flavour
                 && Vc.get post.p_clock comp.c_post_slot >= comp.c_post_time
               in
               let nopre () = Vc.get post.p_clock comp.c_slot >= 1 in
               if fifo || nopre () then
                 clock := Vc.merge !clock comp.c_end_clock
             end)
          c.completed;
        c.current_post <- Some post
      | None -> c.current_post <- None);
     c.slot <- slot;
     c.clock <- Vc.tick !clock slot;
     c.in_task <- Some p
   | Operation.End_task _ ->
     (match c.current_post with
      | Some post ->
        let comp =
          { c_slot = c.slot
          ; c_post_slot = post.p_slot
          ; c_post_time = post.p_time
          ; c_end_clock = c.clock
          ; c_end_time = Vc.get c.clock c.slot
          ; c_flavour = post.p_flavour
          }
        in
        c.completed <- comp :: c.completed;
        c.completed_len <- c.completed_len + 1;
        if c.completed_len > t.cfg.completed_window then begin
          (* Evict the oldest record into the fold: every later begin
             merges [folded_ends], which over-approximates the FIFO and
             NOPRE conclusions the evicted record could have supplied —
             more orderings, never fewer, so streaming races remain a
             subset of the batch engines'. *)
          let rec split acc = function
            | [] -> (List.rev acc, None)
            | [ oldest ] -> (List.rev acc, Some oldest)
            | comp :: rest -> split (comp :: acc) rest
          in
          let kept, evicted = split [] c.completed in
          (match evicted with
           | Some oldest ->
             c.folded_ends <- Vc.merge c.folded_ends oldest.c_end_clock;
             c.completed <- kept;
             c.completed_len <- c.completed_len - 1;
             t.folded_tasks <- t.folded_tasks + 1
           | None -> ())
        end
      | None -> ());
     c.current_post <- None;
     c.in_task <- None;
     (* The idle looper segment: only the pre-loop knowledge of the
        thread survives — two tasks on one thread are unordered unless
        FIFO or NOPRE re-orders them at the next begin. *)
     c.slot <- fresh_slot t;
     c.clock <-
       (match c.loop_clock with
        | Some vc -> vc
        | None -> Vc.empty)
   | Operation.Acquire l ->
     (match
        Hashtbl.find_opt t.lock_clocks
          (Ident.Interner.intern t.interner (Lock_id.to_string l))
      with
      | Some vc -> c.clock <- Vc.merge c.clock vc
      | None -> ())
   | Operation.Release l ->
     let key = Ident.Interner.intern t.interner (Lock_id.to_string l) in
     let merged =
       match Hashtbl.find_opt t.lock_clocks key with
       | Some vc -> Vc.merge vc c.clock
       | None -> c.clock
     in
     Hashtbl.replace t.lock_clocks key merged
   | Operation.Enable p ->
     Hashtbl.replace t.enable_clocks
       (Ident.Interner.intern t.interner (Task_id.to_string p))
       c.clock
   | Operation.Cancel _ -> ()
   | Operation.Read m -> record_access t c position m false e.thread
   | Operation.Write m -> record_access t c position m true e.thread);
  if t.cfg.gc_interval > 0 && t.events mod t.cfg.gc_interval = 0 then sweep t

let races t =
  List.sort
    (fun (r1 : Race.t) r2 ->
       match Int.compare r1.first.position r2.first.position with
       | 0 -> Int.compare r1.second.position r2.second.position
       | c -> c)
    t.races

let stats t =
  sweep t;
  (* The engine-driven sweep above measured; do not let it count as GC
     pressure twice in the gauges, only in the record below. *)
  { events = t.events
  ; slots_allocated = t.next_slot
  ; live_slots = t.live_slots
  ; peak_live_slots = t.peak_live_slots
  ; slots_retired = t.next_slot - t.live_slots
  ; resident_clock_entries = t.resident_clock_entries
  ; peak_clock_entries = t.peak_clock_entries
  ; fast_path = t.fast_path
  ; promotions = t.promotions
  ; demotions = t.demotions
  ; comparisons = t.comparisons
  ; folded_tasks = t.folded_tasks
  ; gc_sweeps = t.gc_sweeps
  ; races = List.length t.races
  }

let finish t =
  let stats = stats t in
  if Obs.enabled () then begin
    Obs.add ~n:stats.events "streaming.events";
    Obs.add ~n:stats.races "streaming.races";
    Obs.add ~n:stats.fast_path "streaming.epoch_fast_path";
    Obs.add ~n:stats.promotions "streaming.epoch_promotions";
    Obs.add ~n:stats.demotions "streaming.epoch_demotions";
    Obs.add ~n:stats.folded_tasks "streaming.folded_tasks";
    Obs.set_gauge "streaming.peak_live_slots"
      (float_of_int stats.peak_live_slots);
    Obs.set_gauge "streaming.peak_clock_entries"
      (float_of_int stats.peak_clock_entries)
  end;
  (races t, stats)

let detect ?config trace =
  let t = create ?config () in
  Trace.iteri (fun i e -> feed t ~position:i e) trace;
  finish t

let detect_channel ?config ic =
  let t = create ?config () in
  match
    Trace_io.fold_channel ic ~init:0 ~f:(fun pos ~line:_ e ->
      feed t ~position:pos e;
      pos + 1)
  with
  | Ok _ -> Ok (finish t)
  | Error e -> Error e

let detect_file ?config path =
  let t = create ?config () in
  match
    Trace_io.fold_events path ~init:0 ~f:(fun pos ~line:_ e ->
      feed t ~position:pos e;
      pos + 1)
  with
  | Ok _ -> Ok (finish t)
  | Error e -> Error e

let stats_json_string ?(label = "streaming") ~elapsed_seconds ~peak_rss_kb
    (s : stats) =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"droidracer-streaming/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"label\": %S,\n" label);
  Buffer.add_string b (Printf.sprintf "  \"events\": %d,\n" s.events);
  Buffer.add_string b
    (Printf.sprintf "  \"elapsed_seconds\": %.6f,\n" elapsed_seconds);
  Buffer.add_string b
    (Printf.sprintf "  \"events_per_sec\": %.1f,\n"
       (if elapsed_seconds > 0.0 then float_of_int s.events /. elapsed_seconds
        else 0.0));
  Buffer.add_string b (Printf.sprintf "  \"races\": %d,\n" s.races);
  Buffer.add_string b
    (Printf.sprintf "  \"slots_allocated\": %d,\n" s.slots_allocated);
  Buffer.add_string b
    (Printf.sprintf "  \"peak_live_slots\": %d,\n" s.peak_live_slots);
  Buffer.add_string b
    (Printf.sprintf "  \"slots_retired\": %d,\n" s.slots_retired);
  Buffer.add_string b
    (Printf.sprintf "  \"peak_clock_entries\": %d,\n" s.peak_clock_entries);
  Buffer.add_string b
    (Printf.sprintf "  \"epoch_fast_path\": %d,\n" s.fast_path);
  Buffer.add_string b (Printf.sprintf "  \"promotions\": %d,\n" s.promotions);
  Buffer.add_string b (Printf.sprintf "  \"demotions\": %d,\n" s.demotions);
  Buffer.add_string b
    (Printf.sprintf "  \"folded_tasks\": %d,\n" s.folded_tasks);
  Buffer.add_string b (Printf.sprintf "  \"gc_sweeps\": %d,\n" s.gc_sweeps);
  Buffer.add_string b (Printf.sprintf "  \"peak_rss_kb\": %d\n" peak_rss_kb);
  Buffer.add_string b "}\n";
  Buffer.contents b
