let bits_per_word = 63

type t =
  { n : int
  ; words : int  (** words per row *)
  ; rows : int array array
  }

let create n =
  if n < 0 then invalid_arg "Bit_matrix.create: negative size";
  let words = (n + bits_per_word - 1) / bits_per_word in
  { n; words = max words 1; rows = Array.init n (fun _ -> Array.make (max words 1) 0) }

let size m = m.n

let check m i j =
  if i < 0 || i >= m.n || j < 0 || j >= m.n then
    invalid_arg (Printf.sprintf "Bit_matrix: index (%d,%d) out of bounds" i j)

let get m i j =
  check m i j;
  let row = m.rows.(i) in
  row.(j / bits_per_word) land (1 lsl (j mod bits_per_word)) <> 0

let set m i j =
  check m i j;
  let row = m.rows.(i) in
  let w = j / bits_per_word in
  row.(w) <- row.(w) lor (1 lsl (j mod bits_per_word))

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let count m =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc w -> acc + popcount w) acc row)
    0 m.rows

let copy m = { m with rows = Array.map Array.copy m.rows }

let blit ~src ~dst =
  if src.n <> dst.n then invalid_arg "Bit_matrix.blit: size mismatch";
  Array.iteri
    (fun i row -> Array.blit row 0 dst.rows.(i) 0 src.words)
    src.rows

let or_row_between ~read ~write ~dst ~src =
  let d = write.rows.(dst) and s = read.rows.(src) in
  let changed = ref false in
  for w = 0 to write.words - 1 do
    let v = d.(w) lor s.(w) in
    if v <> d.(w) then begin
      d.(w) <- v;
      changed := true
    end
  done;
  !changed

let or_row m ~dst ~src = or_row_between ~read:m ~write:m ~dst ~src

module Mask = struct
  type t = { words : int array }

  let create n =
    let words = max ((n + bits_per_word - 1) / bits_per_word) 1 in
    { words = Array.make words 0 }

  let set t j =
    let w = j / bits_per_word in
    t.words.(w) <- t.words.(w) lor (1 lsl (j mod bits_per_word))

  let mem t j =
    t.words.(j / bits_per_word) land (1 lsl (j mod bits_per_word)) <> 0
end

let or_row_masked m ~dst ~src ~mask =
  let d = m.rows.(dst) and s = m.rows.(src) in
  let mw = mask.Mask.words in
  let changed = ref false in
  for w = 0 to m.words - 1 do
    let v = d.(w) lor (s.(w) land mw.(w)) in
    if v <> d.(w) then begin
      d.(w) <- v;
      changed := true
    end
  done;
  !changed

let or_row_between_masked_compl ~read ~write ~dst ~src ~mask =
  let d = write.rows.(dst) and s = read.rows.(src) in
  let mw = mask.Mask.words in
  let changed = ref false in
  for w = 0 to write.words - 1 do
    let v = d.(w) lor (s.(w) land lnot mw.(w)) in
    if v <> d.(w) then begin
      d.(w) <- v;
      changed := true
    end
  done;
  !changed

let or_row_masked_compl m ~dst ~src ~mask =
  or_row_between_masked_compl ~read:m ~write:m ~dst ~src ~mask

let iter_row m i f =
  let row = m.rows.(i) in
  for w = 0 to m.words - 1 do
    let word = ref row.(w) in
    while !word <> 0 do
      let bit = !word land - !word in
      let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
      let j = (w * bits_per_word) + log2 bit 0 in
      if j < m.n then f j;
      word := !word land lnot bit
    done
  done
