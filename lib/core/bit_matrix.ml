let bits_per_word = 63

type t =
  { n : int
  ; words : int  (** words per row *)
  ; rows : int array array
  }

let create n =
  if n < 0 then invalid_arg "Bit_matrix.create: negative size";
  let words = (n + bits_per_word - 1) / bits_per_word in
  { n; words = max words 1; rows = Array.init n (fun _ -> Array.make (max words 1) 0) }

let size m = m.n
let words_per_row m = m.words

let check m i j =
  if i < 0 || i >= m.n || j < 0 || j >= m.n then
    invalid_arg (Printf.sprintf "Bit_matrix: index (%d,%d) out of bounds" i j)

let get m i j =
  check m i j;
  let row = m.rows.(i) in
  row.(j / bits_per_word) land (1 lsl (j mod bits_per_word)) <> 0

let set m i j =
  check m i j;
  let row = m.rows.(i) in
  let w = j / bits_per_word in
  row.(w) <- row.(w) lor (1 lsl (j mod bits_per_word))

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let count m =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc w -> acc + popcount w) acc row)
    0 m.rows

let copy m = { m with rows = Array.map Array.copy m.rows }

let blit ~src ~dst =
  if src.n <> dst.n then invalid_arg "Bit_matrix.blit: size mismatch";
  Array.iteri
    (fun i row -> Array.blit row 0 dst.rows.(i) 0 src.words)
    src.rows

let blit_row ~src ~dst i =
  if src.n <> dst.n then invalid_arg "Bit_matrix.blit_row: size mismatch";
  Array.blit src.rows.(i) 0 dst.rows.(i) 0 src.words

let clear_row m i = Array.fill m.rows.(i) 0 m.words 0

let row_is_empty m i =
  let row = m.rows.(i) in
  let rec go w = w >= m.words || (row.(w) = 0 && go (w + 1)) in
  go 0

let or_row_between ~read ~write ~dst ~src =
  let d = write.rows.(dst) and s = read.rows.(src) in
  let changed = ref false in
  for w = 0 to write.words - 1 do
    let v = d.(w) lor s.(w) in
    if v <> d.(w) then begin
      d.(w) <- v;
      changed := true
    end
  done;
  !changed

let or_row m ~dst ~src = or_row_between ~read:m ~write:m ~dst ~src

(* log2 of a one-bit word, by table: the powers 2^0..2^61 are distinct
   and non-zero modulo 67 (2 is a primitive root of the prime 67), so
   one mod and one load replace a shift loop in the bit-iteration hot
   path.  Bit 62 is [min_int] on a 64-bit host; masking the sign bit
   sends it to the otherwise-unused index 0. *)
let log2_table =
  let t = Array.make 67 62 in
  for k = 0 to 61 do
    t.((1 lsl k) mod 67) <- k
  done;
  t

let[@inline] log2_pow2 b =
  Array.unsafe_get log2_table (b land max_int mod 67)

(* Iterate the set bits of one word, ascending; [base] is the column of
   the word's bit 0. *)
let iter_word_bits base word f =
  let word = ref word in
  while !word <> 0 do
    let bit = !word land - !word in
    f (base + log2_pow2 bit);
    word := !word land lnot bit
  done

module Mask = struct
  type t = { words : int array }

  let create n =
    let words = max ((n + bits_per_word - 1) / bits_per_word) 1 in
    { words = Array.make words 0 }

  let set t j =
    let w = j / bits_per_word in
    t.words.(w) <- t.words.(w) lor (1 lsl (j mod bits_per_word))

  let mem t j =
    t.words.(j / bits_per_word) land (1 lsl (j mod bits_per_word)) <> 0

  let clear t = Array.fill t.words 0 (Array.length t.words) 0

  let iter t f =
    Array.iteri
      (fun w word -> if word <> 0 then iter_word_bits (w * bits_per_word) word f)
      t.words

  (* Descending iteration, for draining worklist rows in reverse trace
     order. *)
  let iter_down t f =
    for w = Array.length t.words - 1 downto 0 do
      let word = t.words.(w) in
      if word <> 0 then
        for b = bits_per_word - 1 downto 0 do
          if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
        done
    done
end

let or_row_into_mask m ~src (mask : Mask.t) =
  let s = m.rows.(src) in
  let mw = mask.Mask.words in
  for w = 0 to m.words - 1 do
    mw.(w) <- mw.(w) lor s.(w)
  done

let or_row_masked m ~dst ~src ~mask =
  let d = m.rows.(dst) and s = m.rows.(src) in
  let mw = mask.Mask.words in
  let changed = ref false in
  for w = 0 to m.words - 1 do
    let v = d.(w) lor (s.(w) land mw.(w)) in
    if v <> d.(w) then begin
      d.(w) <- v;
      changed := true
    end
  done;
  !changed

let or_row_between_masked_compl ~read ~write ~dst ~src ~mask =
  let d = write.rows.(dst) and s = read.rows.(src) in
  let mw = mask.Mask.words in
  let changed = ref false in
  for w = 0 to write.words - 1 do
    let v = d.(w) lor (s.(w) land lnot mw.(w)) in
    if v <> d.(w) then begin
      d.(w) <- v;
      changed := true
    end
  done;
  !changed

let or_row_masked_compl m ~dst ~src ~mask =
  or_row_between_masked_compl ~read:m ~write:m ~dst ~src ~mask

let iter_row m i f =
  let row = m.rows.(i) in
  for w = 0 to m.words - 1 do
    let word = ref row.(w) in
    while !word <> 0 do
      let bit = !word land - !word in
      let j = (w * bits_per_word) + log2_pow2 bit in
      if j < m.n then f j;
      word := !word land lnot bit
    done
  done

(* {1 Change tracking}

   The worklist closure needs to know not just whether a row changed
   but which columns were newly set: new bits are new successors the
   row must later pull from, and new predecessor-index entries.  The
   tracked ORs accumulate the newly set bits of [dst] into the same
   row of a [delta] matrix. *)

let or_row_between_tracked ~read ~write ~delta ~dst ~src =
  let d = write.rows.(dst) and s = read.rows.(src) in
  let dl = delta.rows.(dst) in
  let changed = ref false in
  for w = 0 to write.words - 1 do
    let v = d.(w) lor s.(w) in
    if v <> d.(w) then begin
      dl.(w) <- dl.(w) lor (v lxor d.(w));
      d.(w) <- v;
      changed := true
    end
  done;
  !changed

let or_row_between_masked_compl_tracked ~read ~write ~delta ~dst ~src ~mask =
  let d = write.rows.(dst) and s = read.rows.(src) in
  let dl = delta.rows.(dst) in
  let mw = mask.Mask.words in
  let changed = ref false in
  for w = 0 to write.words - 1 do
    let v = d.(w) lor (s.(w) land lnot mw.(w)) in
    if v <> d.(w) then begin
      dl.(w) <- dl.(w) lor (v lxor d.(w));
      d.(w) <- v;
      changed := true
    end
  done;
  !changed

(* Ranged variants: OR only the words [w_lo..w_hi] of the source row.
   The worklist closure broadcasts per-round "news" rows whose set bits
   are localised, so the caller precomputes each source's non-empty
   word extent and skips the all-zero prefix and suffix. *)

let or_row_between_tracked_range ~read ~write ~delta ~dst ~src ~w_lo ~w_hi =
  let d = write.rows.(dst) and s = read.rows.(src) in
  let dl = delta.rows.(dst) in
  for w = w_lo to w_hi do
    let sw = Array.unsafe_get s w in
    if sw <> 0 then begin
      let dw = Array.unsafe_get d w in
      let v = dw lor sw in
      if v <> dw then begin
        Array.unsafe_set dl w (Array.unsafe_get dl w lor (v lxor dw));
        Array.unsafe_set d w v
      end
    end
  done

let or_row_between_masked_compl_tracked_range ~read ~write ~delta ~dst ~src
    ~mask ~w_lo ~w_hi =
  let d = write.rows.(dst) and s = read.rows.(src) in
  let dl = delta.rows.(dst) in
  let mw = mask.Mask.words in
  for w = w_lo to w_hi do
    let sw = Array.unsafe_get s w land lnot (Array.unsafe_get mw w) in
    if sw <> 0 then begin
      let dw = Array.unsafe_get d w in
      let v = dw lor sw in
      if v <> dw then begin
        Array.unsafe_set dl w (Array.unsafe_get dl w lor (v lxor dw));
        Array.unsafe_set d w v
      end
    end
  done

let row_word_extent m i =
  let row = m.rows.(i) in
  let lo = ref 0 and hi = ref (m.words - 1) in
  while !lo < m.words && row.(!lo) = 0 do
    incr lo
  done;
  while !hi >= !lo && row.(!hi) = 0 do
    decr hi
  done;
  (!lo, !hi)

(* {1 Row scratch buffers}

   Per-worker copies of single rows, so a worklist task can capture a
   row's pull set (and its pre-round value) without allocating in the
   inner loop. *)

type row_scratch = int array

let row_scratch m = Array.make m.words 0

let copy_row m i (buf : row_scratch) = Array.blit m.rows.(i) 0 buf 0 m.words

let take_row m i (buf : row_scratch) =
  let row = m.rows.(i) in
  Array.blit row 0 buf 0 m.words;
  Array.fill row 0 m.words 0

let clear_scratch (buf : row_scratch) = Array.fill buf 0 (Array.length buf) 0

(* Enumerate a worklist target's sources, split by how they must be
   absorbed: [fresh] gets the target's newly added successors (whose
   full rows it has never ORed), [dirty] the rest of its successors
   that changed last round (only their news is needed). *)
let iter_sources ~(own : row_scratch) ~(mask : Mask.t) ~(plus : row_scratch)
    ~fresh ~dirty =
  let mw = mask.Mask.words in
  for w = 0 to Array.length own - 1 do
    let p = plus.(w) in
    if p <> 0 then iter_word_bits (w * bits_per_word) p fresh;
    let o = own.(w) land mw.(w) land lnot p in
    if o <> 0 then iter_word_bits (w * bits_per_word) o dirty
  done
