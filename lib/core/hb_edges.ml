open! Import
module Thread_id = Ident.Thread_id
module Task_id = Ident.Task_id
module Lock_id = Ident.Lock_id

type program_order = Android_po | Full_po

type rule =
  | Program_order
  | Loop_queue
  | Enable
  | Post
  | Attach
  | Fork
  | Join
  | Lock

let rule_name = function
  | Program_order -> "program-order"
  | Loop_queue -> "loop-queue"
  | Enable -> "enable"
  | Post -> "post"
  | Attach -> "attach"
  | Fork -> "fork"
  | Join -> "join"
  | Lock -> "lock"

type config =
  { program_order : program_order
  ; enable_rule : bool
  ; post_rule : bool
  ; attach_rule : bool
  ; fork_join_rules : bool
  ; lock_rule : bool
  ; lock_same_thread : bool
  }

let all =
  { program_order = Android_po
  ; enable_rule = true
  ; post_rule = true
  ; attach_rule = true
  ; fork_join_rules = true
  ; lock_rule = true
  ; lock_same_thread = false
  }

let must = { all with lock_rule = false }

let iter ~config:cfg g ~f =
  let trace = Graph.trace g in
  let node_of_pos = Graph.node_of_pos g in
  let emit ~rule src dst = if src <> dst then f ~rule src dst in
  (* Base edge between trace positions, guarded by trace order (every
     rule of Figures 6 and 7 assumes i < j). *)
  let emit_pos ~rule i j =
    if i < j then emit ~rule (node_of_pos i) (node_of_pos j)
  in
  (* Program order. *)
  List.iter
    (fun tid ->
       let nodes = Graph.nodes_of_thread g tid in
       let loop_pos = Trace.loop_index trace tid in
       let chain_ok a b =
         match cfg.program_order with
         | Full_po -> true
         | Android_po ->
           (match loop_pos with
            | None -> true
            | Some lp ->
              Graph.last_pos g a <= lp
              ||
              (match Graph.task_of_node g a, Graph.task_of_node g b with
               | Some p, Some q -> Task_id.equal p q
               | Some _, None | None, Some _ | None, None -> false))
       in
       let rec chain = function
         | a :: (b :: _ as rest) ->
           if chain_ok a b then emit ~rule:Program_order a b;
           chain rest
         | [ _ ] | [] -> ()
       in
       chain nodes;
       (* NO-Q-PO with αi = loopOnQ: the loop node precedes every later
          operation of the thread, across all tasks. *)
       (match cfg.program_order, loop_pos with
        | Android_po, Some lp ->
          let loop_node = node_of_pos lp in
          List.iter
            (fun b ->
               if Graph.first_pos g b > lp then emit ~rule:Loop_queue loop_node b)
            nodes
        | Android_po, None | Full_po, _ -> ()))
    (Trace.threads trace);
  (* ENABLE-ST / ENABLE-MT and POST-ST / POST-MT. *)
  List.iter
    (fun p ->
       match Trace.post_index trace p with
       | Some q ->
         if cfg.enable_rule then
           (match Trace.enable_index trace p with
            | Some e -> emit_pos ~rule:Enable e q
            | None -> ());
         if cfg.post_rule then
           (match Trace.begin_index trace p with
            | Some b -> emit_pos ~rule:Post q b
            | None -> ())
       | None -> ())
    (Trace.tasks trace);
  (* ATTACH-Q-MT.  Each thread's attach-queue node is found once up
     front; the per-post scan over [nodes_of_thread] was quadratic in
     the number of cross-thread posts. *)
  if cfg.attach_rule then begin
    let attach_node : (int, int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun tid ->
         match
           List.find_opt
             (fun id ->
                match Graph.kind g id with
                | Graph.Anchor pos ->
                  (match Trace.op trace pos with
                   | Operation.Attach_queue -> true
                   | _ -> false)
                | Graph.Access_block _ -> false)
             (Graph.nodes_of_thread g tid)
         with
         | Some id -> Hashtbl.add attach_node (Thread_id.to_int tid) id
         | None -> ())
      (Trace.threads trace);
    Trace.iteri
      (fun i (e : Trace.event) ->
         match e.op with
         | Operation.Post { target; _ } when not (Thread_id.equal e.thread target)
           ->
           (match Hashtbl.find_opt attach_node (Thread_id.to_int target) with
            | Some attach_node -> emit ~rule:Attach attach_node (node_of_pos i)
            | None -> ())
         | _ -> ())
      trace
  end;
  (* FORK, JOIN, LOCK.  Acquires and releases are bucketed per lock in
     one pass (keyed by [Lock_id.t] directly, no string key), so the
     LOCK rule pairs within a bucket instead of re-walking every
     acquire binding of the hash table per release. *)
  let init_pos = Hashtbl.create 8 and exit_pos = Hashtbl.create 8 in
  let locks :
    ( Lock_id.t
    , (int * Thread_id.t) list ref * (int * Thread_id.t) list ref )
      Hashtbl.t =
    Hashtbl.create 8
  in
  let lock_bucket l =
    match Hashtbl.find_opt locks l with
    | Some b -> b
    | None ->
      let b = (ref [], ref []) in
      Hashtbl.add locks l b;
      b
  in
  Trace.iteri
    (fun i (e : Trace.event) ->
       match e.op with
       | Operation.Thread_init ->
         if not (Hashtbl.mem init_pos (Thread_id.to_int e.thread)) then
           Hashtbl.add init_pos (Thread_id.to_int e.thread) i
       | Operation.Thread_exit ->
         if not (Hashtbl.mem exit_pos (Thread_id.to_int e.thread)) then
           Hashtbl.add exit_pos (Thread_id.to_int e.thread) i
       | Operation.Release l ->
         let _, releases = lock_bucket l in
         releases := (i, e.thread) :: !releases
       | Operation.Acquire l ->
         let acquires, _ = lock_bucket l in
         acquires := (i, e.thread) :: !acquires
       | _ -> ())
    trace;
  if cfg.fork_join_rules then
    Trace.iteri
      (fun i (e : Trace.event) ->
         match e.op with
         | Operation.Fork t' ->
           (match Hashtbl.find_opt init_pos (Thread_id.to_int t') with
            | Some j -> emit_pos ~rule:Fork i j
            | None -> ())
         | Operation.Join t' ->
           (match Hashtbl.find_opt exit_pos (Thread_id.to_int t') with
            | Some j -> emit_pos ~rule:Join j i
            | None -> ())
         | _ -> ())
      trace;
  if cfg.lock_rule then
    Hashtbl.iter
      (fun _ (acquires, releases) ->
         List.iter
           (fun (ri, rt) ->
              List.iter
                (fun (ai, at) ->
                   if
                     ri < ai
                     && (cfg.lock_same_thread || not (Thread_id.equal rt at))
                   then emit_pos ~rule:Lock ri ai)
                !acquires)
           !releases)
      locks
