open! Import

(** Online race detection with sparse vector clocks.

    A single forward pass over the trace, in the style of the efficient
    engines developed as follow-on work to the paper (EventRacer-like
    task-indexed clocks).  Every asynchronous-task instance and every
    thread segment outside a task owns a clock slot; edges of the
    happens-before relation become clock merges:

    - fork/join, post→begin, enable→post, attachQ→post, loopOnQ→begin
      merge the stored source clock into the destination context;
    - FIFO: at [begin p₂], the end clock of every earlier task [p₁] on
      the thread whose post clock is ≤ the post clock of [p₂] (with
      compatible flavours) is merged in;
    - NOPRE: likewise when the post clock of [p₂] already knows any
      operation of [p₁] (one O(1) slot lookup);
    - release→acquire merges the lock's clock {e unconditionally} — a
      vector clock cannot express the paper's restriction that lock
      edges order only operations of different threads, so this engine
      over-approximates ⪯ exactly in the way Section 1 warns about, and
      consequently {e under}-approximates the race set.

    Property (tested): every race this engine reports is also reported
    by the precise graph engine; on lock-free traces the two agree. *)

type stats =
  { slots : int  (** clock slots allocated *)
  ; comparisons : int  (** access-pair happens-before checks *)
  }

val fifo_flavours_ok :
  Operation.post_flavour -> Operation.post_flavour -> bool
(** The flavour side condition of the refined FIFO rule (Section 4.2):
    may a task completed with the first flavour be FIFO-ordered before
    one posted with the second?  Shared with {!Streaming_engine}. *)

val detect : Trace.t -> Race.t list * stats
(** Races in lexicographic position order, deduplicated per conflicting
    pair, plus engine statistics.  The trace should be structurally
    well-formed (it is replayed, not validated). *)
