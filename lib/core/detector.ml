open! Import

type config =
  { coalesce : bool
  ; hb : Happens_before.config
  }

let default_config = { coalesce = true; hb = Happens_before.default }

let no_environment_model =
  { coalesce = true
  ; hb = { Happens_before.default with enable_rule = false }
  }

type classified_race =
  { race : Race.t
  ; category : Classify.category
  }

type report =
  { trace : Trace.t
  ; all_races : classified_race list
  ; distinct_races : classified_race list
  ; trace_stats : Trace.stats
  ; nodes : int
  ; uncoalesced_nodes : int
  ; hb_edges : int
  ; fixpoint_passes : int
  ; hb_word_ors : int
  ; hb_rows_requeued : int
  ; elapsed_seconds : float
  ; phase_seconds : (string * float) list
  }

let phase_names =
  [ "filter_cancelled"
  ; "graph_build"
  ; "happens_before"
  ; "race_detect"
  ; "classify"
  ]

let streaming_phase_names = [ "filter_cancelled"; "streaming_detect"; "classify" ]

let phase_seconds report name =
  Option.value (List.assoc_opt name report.phase_seconds) ~default:0.0

let relation ?(config = default_config) ?(jobs = 1) trace =
  let trace = Trace.remove_cancelled trace in
  let graph = Graph.build ~coalesce:config.coalesce trace in
  Happens_before.compute ~config:config.hb ~jobs graph

let dedup_distinct classified =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun { race; category } ->
       let key =
         ( Ident.Location.to_string (Race.location race)
         , Classify.category_name category )
       in
       if Hashtbl.mem seen key then false
       else begin
         Hashtbl.add seen key ();
         true
       end)
    classified

let analyze ?(config = default_config) ?(jobs = 1) trace =
  Obs.with_span "detector.analyze" ~args:[ ("jobs", string_of_int jobs) ]
  @@ fun () ->
  (* Wall-clock, not [Sys.time]: CPU time sums over domains and would
     hide (or invert) any parallel speedup.  Phases are always timed —
     the two [gettimeofday] calls per phase are noise next to the work
     — so [phase_seconds] is populated whether or not telemetry is
     enabled; the spans are recorded only when it is. *)
  let started = Unix.gettimeofday () in
  let phases_rev = ref [] in
  let phase name f =
    let t0 = Unix.gettimeofday () in
    let v = Obs.with_span ("detector." ^ name) f in
    phases_rev := (name, Unix.gettimeofday () -. t0) :: !phases_rev;
    v
  in
  match config.hb.closure with
  | Happens_before.Streaming ->
    (* Streaming pipeline: filter, one engine pass, classify.  Race
       classification needs happens-before answers only for the
       co-enabled refinement; the streaming engine keeps no queryable
       relation, so [hb_or_eq] is the constant over-approximation
       [true] — co-enabled races degrade to the later categories, every
       other class is computed exactly from the trace structure. *)
    let trace =
      phase "filter_cancelled" (fun () -> Trace.remove_cancelled trace)
    in
    let races, stats =
      phase "streaming_detect" (fun () -> Streaming_engine.detect trace)
    in
    let all_races =
      phase "classify" (fun () ->
        List.map
          (fun race ->
             { race
             ; category =
                 Classify.classify trace ~hb_or_eq:(fun _ _ -> true) race
             })
          races)
    in
    { trace
    ; all_races
    ; distinct_races = dedup_distinct all_races
    ; trace_stats = Trace.stats trace
    ; nodes = stats.Streaming_engine.slots_allocated
    ; uncoalesced_nodes = Trace.length trace
    ; hb_edges = 0
    ; fixpoint_passes = 1
    ; hb_word_ors = 0
    ; hb_rows_requeued = 0
    ; elapsed_seconds = Unix.gettimeofday () -. started
    ; phase_seconds = List.rev !phases_rev
    }
  | Happens_before.Dense | Happens_before.Worklist ->
  let trace =
    phase "filter_cancelled" (fun () -> Trace.remove_cancelled trace)
  in
  let graph =
    phase "graph_build" (fun () ->
      Obs.set_span_arg "coalesce" (string_of_bool config.coalesce);
      Graph.build ~coalesce:config.coalesce trace)
  in
  let hb =
    phase "happens_before" (fun () ->
      Happens_before.compute ~config:config.hb ~jobs graph)
  in
  let races =
    phase "race_detect" (fun () ->
      Race.detect ~jobs trace ~hb:(Happens_before.hb hb))
  in
  let all_races =
    phase "classify" (fun () ->
      List.map
        (fun race ->
           { race
           ; category =
               Classify.classify trace
                 ~hb_or_eq:(Happens_before.hb_or_eq hb)
                 race
           })
        races)
  in
  { trace
  ; all_races
  ; distinct_races = dedup_distinct all_races
  ; trace_stats = Trace.stats trace
  ; nodes = Happens_before.node_count hb
  ; uncoalesced_nodes = Trace.length trace
  ; hb_edges = Happens_before.edge_count hb
  ; fixpoint_passes = Happens_before.passes hb
  ; hb_word_ors = Happens_before.word_ors hb
  ; hb_rows_requeued = Happens_before.rows_requeued hb
  ; elapsed_seconds = Unix.gettimeofday () -. started
  ; phase_seconds = List.rev !phases_rev
  }

let category_order =
  [ Classify.Multithreaded
  ; Classify.Cross_posted
  ; Classify.Co_enabled
  ; Classify.Delayed_race
  ; Classify.Unknown
  ]

let count_by_category classified =
  List.map
    (fun cat ->
       ( cat
       , List.length
           (List.filter (fun c -> Classify.category_equal c.category cat)
              classified) ))
    category_order

let pp_report ppf r =
  Format.fprintf ppf "@[<v>trace: %a@," Trace.pp_stats r.trace_stats;
  Format.fprintf ppf "graph: %d nodes (%d uncoalesced), %d hb pairs, %d passes@,"
    r.nodes r.uncoalesced_nodes r.hb_edges r.fixpoint_passes;
  Format.fprintf ppf "races: %d reported, %d distinct@," (List.length r.all_races)
    (List.length r.distinct_races);
  List.iter
    (fun (cat, n) ->
       if n > 0 then
         Format.fprintf ppf "  %a: %d@," Classify.pp_category cat n)
    (count_by_category r.distinct_races);
  List.iter
    (fun { race; category } ->
       Format.fprintf ppf "  [%a] %a@," Classify.pp_category category Race.pp
         race)
    r.distinct_races;
  Format.fprintf ppf "analysis time: %.3fs@]" r.elapsed_seconds
