(* Aliases for the modules of the trace library; opened by every file of
   this library. *)
module Ident = Droidracer_trace.Ident
module Operation = Droidracer_trace.Operation
module Trace = Droidracer_trace.Trace
module Trace_io = Droidracer_trace.Trace_io
module Obs = Droidracer_obs.Obs
