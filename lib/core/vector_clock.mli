(** Sparse vector clocks.

    Slots are dense integers handed out by {!Clock_engine}: one per
    asynchronous-task instance and one per thread segment outside any
    task.  Missing entries read as 0. *)

type t

val empty : t

val get : t -> int -> int

val set : t -> int -> int -> t

val tick : t -> int -> t
(** Increments the slot by one. *)

val merge : t -> t -> t
(** Pointwise maximum. *)

val leq : t -> t -> bool
(** Pointwise comparison: [leq a b] iff every slot of [a] is ≤ in [b]. *)

val cardinal : t -> int

val retain : (int -> bool) -> t -> t
(** [retain keep t] drops every slot [keep] rejects.  Sound only when
    the dropped slots can never again be the subject of a {!get} — the
    streaming engine's retired-slot sweep establishes exactly that. *)

val pp : Format.formatter -> t -> unit
