open! Import

(** The static happens-before edges of Figures 6 and 7 — the rules whose
    premises mention only the structure of the trace, not the relation
    being computed.

    {!Happens_before.compute} seeds its fixpoint with exactly these
    edges (the dynamic rules FIFO, NOPRE and the front-of-queue
    extension consume the relation in their premises and stay inside the
    fixpoint loop); the predictive engine ({!Droidracer_predict.Predict})
    reuses the same builder with {!must} to obtain the constraints that
    hold in {e every} admissible schedule.  One builder, two consumers —
    the edge sets cannot drift apart.

    Edges are emitted at graph-node granularity: an edge [src → dst]
    means every trace position of node [src] is ordered before every
    position of node [dst].  With a graph built [~coalesce:false] the
    nodes are single positions and the edges are exactly the
    position-level rule instances. *)

(** How operations of one thread are ordered by program order
    (re-exported as {!Happens_before.program_order}). *)
type program_order =
  | Android_po
      (** NO-Q-PO until [loopOnQ], then ASYNC-PO within each task *)
  | Full_po
      (** classic program order across the whole thread (baselines) *)

(** The rule that produced an edge. *)
type rule =
  | Program_order  (** NO-Q-PO / ASYNC-PO chains along one thread *)
  | Loop_queue  (** NO-Q-PO: the [loopOnQ] node precedes all later ops *)
  | Enable  (** ENABLE-ST / ENABLE-MT: enable(p) ⪯ post(p) *)
  | Post  (** POST-ST / POST-MT: post(p) ⪯ begin(p) *)
  | Attach  (** ATTACH-Q-MT: attachQ(t) ⪯ cross-thread post to t *)
  | Fork  (** FORK: fork(t) ⪯ threadinit(t) *)
  | Join  (** JOIN: threadexit(t) ⪯ join(t) *)
  | Lock  (** LOCK: release ⪯ later acquire of the same lock *)

val rule_name : rule -> string

(** Which static rules to emit — the static fragment of
    {!Happens_before.config}. *)
type config =
  { program_order : program_order
  ; enable_rule : bool
  ; post_rule : bool
  ; attach_rule : bool
  ; fork_join_rules : bool
  ; lock_rule : bool
  ; lock_same_thread : bool
        (** also order same-thread release/acquire pairs *)
  }

val all : config
(** Every static rule of the paper's relation: Android program order,
    [lock_same_thread = false]. *)

val must : config
(** [all] without the LOCK rule.  A lock edge records which thread won
    the lock {e in the observed schedule} — another admissible schedule
    may acquire in the opposite order — so it is not a constraint on
    reorderings.  Everything else is: program order and task bodies
    cannot be permuted, a task cannot begin before it is posted, a post
    cannot precede its enable or its target's [attachQ], forked threads
    start after the fork, joins complete after the exit. *)

val iter : config:config -> Graph.t -> f:(rule:rule -> int -> int -> unit) -> unit
(** [iter ~config g ~f] calls [f ~rule src dst] once per static rule
    instance, with [src] and [dst] graph nodes, [src <> dst], and every
    underlying position pair in trace order.  Emission order is
    deterministic but unspecified; consumers must treat the calls as a
    set. *)
