module Obs = Droidracer_obs.Obs

let default_jobs () = Domain.recommended_domain_count ()

(* The process-wide pool.  Workers block on [wake] until a task is
   queued; [stopping] (set by the [at_exit] handler) makes them drain
   the queue and return so the process can terminate cleanly. *)

type pool =
  { mutex : Mutex.t
  ; wake : Condition.t
  ; queue : (unit -> unit) Queue.t
  ; mutable workers : unit Domain.t list
  ; mutable stopping : bool
  }

let pool =
  { mutex = Mutex.create ()
  ; wake = Condition.create ()
  ; queue = Queue.create ()
  ; workers = []
  ; stopping = false
  }

(* OCaml caps live domains at 128; leave headroom for the main domain
   and whatever the embedding application spawns. *)
let max_workers = 120

let rec worker_loop () =
  Mutex.lock pool.mutex;
  let rec next () =
    match Queue.take_opt pool.queue with
    | Some task -> Some task
    | None ->
      if pool.stopping then None
      else begin
        Condition.wait pool.wake pool.mutex;
        next ()
      end
  in
  let task = next () in
  Mutex.unlock pool.mutex;
  match task with
  | None -> ()
  | Some task ->
    (* Tasks trap their own exceptions (see [parallel_map]); a raise
       here would mean a bug in this module, not in user code. *)
    task ();
    worker_loop ()

let shutdown () =
  Mutex.lock pool.mutex;
  pool.stopping <- true;
  Condition.broadcast pool.wake;
  let workers = pool.workers in
  pool.workers <- [];
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let quiesce () =
  Mutex.lock pool.mutex;
  pool.stopping <- true;
  Condition.broadcast pool.wake;
  let workers = pool.workers in
  pool.workers <- [];
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers;
  Mutex.lock pool.mutex;
  pool.stopping <- false;
  Mutex.unlock pool.mutex;
  if workers <> [] then Obs.set_gauge "pool.workers" 0.0

let at_exit_registered = ref false

(* Grow the pool to [wanted] workers.  Called with [pool.mutex] held. *)
let ensure_workers wanted =
  let wanted = min wanted max_workers in
  let missing = wanted - List.length pool.workers in
  if missing > 0 && not pool.stopping then begin
    if not !at_exit_registered then begin
      at_exit_registered := true;
      at_exit shutdown
    end;
    for _ = 1 to missing do
      pool.workers <- Domain.spawn worker_loop :: pool.workers
    done;
    Obs.set_gauge "pool.workers" (float_of_int (List.length pool.workers))
  end

let submit_tasks tasks =
  Mutex.lock pool.mutex;
  ensure_workers (List.length tasks);
  List.iter (fun t -> Queue.add t pool.queue) tasks;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.mutex

let parallel_map ~jobs f xs =
  match xs with
  | ([] | [ _ ]) -> List.map f xs
  | _ when jobs <= 1 -> List.map f xs
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let results = Array.make n None in
    let failures = Array.make n None in
    (* Elements are claimed one by one off a shared counter, so uneven
       per-element costs balance across domains automatically. *)
    let next = Atomic.make 0 in
    let latch = Mutex.create () in
    let all_done = Condition.create () in
    let completed = ref 0 in
    let run_one i =
      (* Piggyback the rate-limited resource sampler on task claims, so
         long cooperative sections grow RSS/heap series for free. *)
      Obs.maybe_sample ();
      (match f arr.(i) with
       | v -> results.(i) <- Some v
       | exception e ->
         failures.(i) <- Some (e, Printexc.get_raw_backtrace ()));
      Mutex.lock latch;
      incr completed;
      if !completed = n then Condition.broadcast all_done;
      Mutex.unlock latch
    in
    let rec drain () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        run_one i;
        drain ()
      end
    in
    let helpers = min (jobs - 1) (n - 1) in
    (* Telemetry: one span per submitted pool task (the unit a worker
       domain executes), the submit-to-start latency as a queue-wait
       histogram, and per-domain task/busy counters — each domain
       writes its own buffer, so recording is race-free. *)
    Obs.add "pool.parallel_maps";
    Obs.add ~n:n "pool.items";
    let instrument drain =
      if not (Obs.enabled ()) then drain
      else
        let submitted = Obs.now_ns () in
        fun () ->
          Obs.observe "pool.queue_wait_seconds"
            (Int64.to_float (Int64.sub (Obs.now_ns ()) submitted) /. 1e9);
          Obs.add "pool.tasks";
          Obs.with_span "pool.drain" drain
    in
    submit_tasks (List.init helpers (fun _ -> instrument drain));
    (* The caller participates, so progress never depends on a worker
       being free — a drain task still queued when the counter runs out
       simply becomes a no-op. *)
    if Obs.enabled () then begin
      Obs.add "pool.tasks";
      Obs.with_span "pool.drain" ~args:[ ("caller", "true") ] drain
    end
    else drain ();
    Mutex.lock latch;
    while !completed < n do
      Condition.wait all_done latch
    done;
    Mutex.unlock latch;
    let first_failure = ref None in
    for i = n - 1 downto 0 do
      match failures.(i) with
      | Some f -> first_failure := Some f
      | None -> ()
    done;
    (match !first_failure with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    List.init n (fun i ->
      match results.(i) with
      | Some v -> v
      | None -> assert false)

let ranges ~chunk n =
  if chunk <= 0 then invalid_arg "Par_pool.ranges: chunk must be positive";
  let rec go lo acc =
    if lo >= n then List.rev acc
    else
      let hi = min n (lo + chunk) in
      go hi ((lo, hi) :: acc)
  in
  go 0 []
