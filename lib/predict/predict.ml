open! Import

type params =
  { window : int
  ; max_iterations : int
  ; max_extra_per_location : int
  ; deadline : float option
  }

let default_params =
  { window = 256
  ; max_iterations = 20_000
  ; max_extra_per_location = 4
  ; deadline = None
  }

let relaxed_config (cfg : Happens_before.config) =
  { cfg with Happens_before.lock_rule = false; fifo_rule = false }

(* {1 Must-constraints}

   The static rules of Hb_edges.must hold in every admissible schedule,
   so they are hard ordering constraints on any reordering.  Everything
   schedule-dependent — lock acquisition order, queue dispatch order,
   run-to-completion — is instead enforced dynamically by simulating
   candidate orders through Step.apply. *)

let must_successors trace =
  let g = Graph.build ~coalesce:false trace in
  let n = Trace.length trace in
  let succs = Array.make n [] in
  Hb_edges.iter ~config:Hb_edges.must g ~f:(fun ~rule:_ src dst ->
    (* ~coalesce:false: every node is a single position *)
    let i = Graph.first_pos g src and j = Graph.first_pos g dst in
    succs.(i) <- j :: succs.(i));
  Array.map (List.sort_uniq compare) succs

module Solver = struct
  type outcome =
    | Scheduled of int list
    | Cyclic
    | Must_ordered
    | Exhausted
    | Out_of_budget

  let toposort ~n ~succs =
    let indegree = Array.make n 0 in
    Array.iteri
      (fun _ -> List.iter (fun v -> indegree.(v) <- indegree.(v) + 1))
      succs;
    let module S = Set.Make (Int) in
    let ready = ref S.empty in
    for v = n - 1 downto 0 do
      if indegree.(v) = 0 then ready := S.add v !ready
    done;
    let order = ref [] in
    let taken = ref 0 in
    while not (S.is_empty !ready) do
      let v = S.min_elt !ready in
      ready := S.remove v !ready;
      order := v :: !order;
      incr taken;
      List.iter
        (fun w ->
           indegree.(w) <- indegree.(w) - 1;
           if indegree.(w) = 0 then ready := S.add w !ready)
        succs.(v)
    done;
    if !taken = n then Some (List.rev !order) else None

  (* Forward reachability over an adjacency array, as a flag vector. *)
  let reachable adj start =
    let n = Array.length adj in
    let seen = Array.make n false in
    let rec go v =
      if not seen.(v) then begin
        seen.(v) <- true;
        List.iter go adj.(v)
      end
    in
    go start;
    seen

  exception Found of int list
  exception Budget

  let search ~trace ~state0 ~succs ~lo ~first ~second ~max_iterations =
    let m = second - lo + 1 in
    let idx p = p - lo in
    (* Window-local constraint graph.  Predecessors below the window are
       part of the replayed prefix and thus always satisfied; successors
       above it lie past the truncation point and constrain nothing. *)
    let lsuccs = Array.make m [] in
    let lpreds = Array.make m [] in
    for p = lo to second do
      List.iter
        (fun q ->
           if q >= lo && q <= second && q <> p then begin
             lsuccs.(idx p) <- idx q :: lsuccs.(idx p);
             lpreds.(idx q) <- idx p :: lpreds.(idx q)
           end)
        succs.(p)
    done;
    match toposort ~n:m ~succs:lsuccs with
    | None -> (Cyclic, 0)
    | Some _ ->
      let from_first = reachable lsuccs (idx first) in
      if from_first.(idx second) then (Must_ordered, 0)
      else begin
        let anc_second = reachable lpreds (idx second) in
        let anc_first = reachable lpreds (idx first) in
        (* Emission priority: reach the goal fast.  The flipped access
           itself first, then what must precede it, then what must
           precede the observed-first access (needed before the goal
           test can pass), then everything else; ties in trace order. *)
        let priority v =
          if v = idx second then 0
          else if anc_second.(v) then 1
          else if anc_first.(v) then 2
          else 3
        in
        let emitted = Bytes.make m '\000' in
        let is_emitted v = Bytes.get emitted v = '\001' in
        let preds_ok v = List.for_all is_emitted lpreds.(v) in
        (* The scheduler state is not a function of the emitted set
           alone: posts from different threads can enter a queue in
           either order, and dispatch eligibility depends on arrival
           order.  The memo key therefore includes the queue
           contents. *)
        let fingerprint st =
          let buf = Buffer.create (m + 32) in
          Buffer.add_string buf (Bytes.unsafe_to_string emitted);
          List.iter
            (fun (t, q) ->
               Buffer.add_char buf '|';
               Buffer.add_string buf
                 (string_of_int (Ident.Thread_id.to_int t));
               Buffer.add_char buf ':';
               List.iter
                 (fun task ->
                    Buffer.add_string buf (Ident.Task_id.to_string task);
                    Buffer.add_char buf ';')
                 (Queue_model.pending q))
            (State.all_queues st);
          Buffer.contents buf
        in
        let memo = Hashtbl.create 1024 in
        let iterations = ref 0 in
        let first_event = Trace.get trace first in
        let rec dfs st order_rev =
          incr iterations;
          if !iterations > max_iterations then raise Budget;
          if
            is_emitted (idx second)
            && preds_ok (idx first)
            && Result.is_ok (Step.apply st first_event)
          then raise (Found (List.rev (first :: order_rev)));
          let key = fingerprint st in
          if not (Hashtbl.mem memo key) then begin
            Hashtbl.add memo key ();
            let cands = ref [] in
            for v = m - 1 downto 0 do
              let p = lo + v in
              if p <> first && (not (is_emitted v)) && preds_ok v then
                match Step.apply st (Trace.get trace p) with
                | Ok st' -> cands := (priority v, p, st') :: !cands
                | Error _ -> ()
            done;
            let cands =
              List.sort
                (fun (x, p, _) (y, q, _) -> compare (x, p) (y, q))
                !cands
            in
            List.iter
              (fun (_, p, st') ->
                 Bytes.set emitted (idx p) '\001';
                 dfs st' (p :: order_rev);
                 Bytes.set emitted (idx p) '\000')
              cands
          end
        in
        match dfs state0 [] with
        | () -> (Exhausted, !iterations)
        | exception Found order -> (Scheduled order, !iterations)
        | exception Budget -> (Out_of_budget, !iterations)
      end
end

(* {1 Verdicts} *)

type refutation =
  | Cyclic_constraints
  | Must_path
  | Search_exhausted

type unknown_reason =
  | Window_exhausted
  | Budget_exhausted
  | Oracle_rejected of string
  | Input_not_replayable
  | Deadline

let refutation_label = function
  | Cyclic_constraints -> "cyclic-constraints"
  | Must_path -> "must-path"
  | Search_exhausted -> "search-exhausted"

let unknown_label = function
  | Window_exhausted -> "window-exhausted"
  | Budget_exhausted -> "budget-exhausted"
  | Oracle_rejected _ -> "oracle-rejected"
  | Input_not_replayable -> "input-not-replayable"
  | Deadline -> "deadline"

type witness =
  { w_trace : Trace.t
  ; w_first : int
  ; w_second : int
  ; w_flipped : bool
  ; w_wellformed : bool
  ; w_replayed : bool option
  ; w_unordered : bool
  }

type verdict =
  | Feasible of witness
  | Refuted of refutation
  | Unknown of unknown_reason

type pair_result =
  { pr_pair : Race.t
  ; pr_observed : bool
  ; pr_window : (int * int) option
  ; pr_iterations : int
  ; pr_verdict : verdict
  }

type report =
  { trace : Trace.t
  ; candidates : int
  ; dropped : int
  ; observed : int
  ; feasible : int
  ; refuted : int
  ; unknown : int
  ; extra : int
  ; replayable_input : bool
  ; degraded : bool
  ; pairs : pair_result list
  }

(* {1 The oracle}

   Every witness the engine is about to report Feasible is re-checked
   from scratch, by the independent checkers: admissibility
   (Wellformed), the transition system (Step.validate) and dense
   unorderedness of the pair at its new positions.  A bug anywhere in
   the window search can therefore only cost completeness, never
   soundness. *)

let dense_unordered ~config ~jobs trace i j =
  let hb = Detector.relation ~config ~jobs trace in
  not (Happens_before.ordered hb i j)

let check_witness ~config ~jobs ~replay ~first ~second ~flipped trace =
  let wellformed = Result.is_ok (Wellformed.check trace) in
  let replayed =
    if replay then Some (Result.is_ok (Step.validate trace)) else None
  in
  let unordered =
    wellformed && dense_unordered ~config ~jobs:(max 1 jobs) trace first second
  in
  { w_trace = trace
  ; w_first = first
  ; w_second = second
  ; w_flipped = flipped
  ; w_wellformed = wellformed
  ; w_replayed = replayed
  ; w_unordered = unordered
  }

let witness_ok w =
  w.w_wellformed && w.w_unordered
  && match w.w_replayed with Some ok -> ok | None -> true

(* {1 The engine} *)

(* The search window for a non-observed candidate: [lo, second], always
   containing both accesses and spanning at most [params.window] events;
   [None] when the accesses lie further apart than the window allows.
   Shared between [solve_pair] and the parallel pre-population of the
   prefix-state cache in [analyze], which must agree on the starts. *)
let window_start ~params ~first ~second =
  if second - first + 1 > params.window then None
  else Some (min first (max 0 (second - params.window + 1)))

let truncated_witness trace upto =
  let events = ref [] in
  for p = upto downto 0 do
    events := Trace.get trace p :: !events
  done;
  Trace.of_events_exn !events

let solve_pair ~params ~config ~trace ~state_at ~succs ~replayable
    ~must_ordered (race : Race.t) ~observed =
  Obs.with_span "predict.pair" @@ fun () ->
  let a = race.Race.first.Race.position in
  let b = race.Race.second.Race.position in
  if observed then begin
    (* Already a dense race: the observed trace truncated right after
       the second access is its own witness (prefixes of admissible
       traces are admissible, and every rule instance and closure step
       of the prefix relation is one of the full relation, so the pair
       stays unordered). *)
    let w =
      check_witness ~config ~jobs:1 ~replay:replayable ~first:a ~second:b
        ~flipped:false
        (truncated_witness trace b)
    in
    if witness_ok w then begin
      Obs.add "predict.feasible";
      { pr_pair = race
      ; pr_observed = true
      ; pr_window = None
      ; pr_iterations = 0
      ; pr_verdict = Feasible w
      }
    end
    else begin
      Obs.add "predict.oracle_rejects";
      Obs.add "predict.unknown";
      { pr_pair = race
      ; pr_observed = true
      ; pr_window = None
      ; pr_iterations = 0
      ; pr_verdict = Unknown (Oracle_rejected "truncated witness rejected")
      }
    end
  end
  else if must_ordered a b then begin
    (* The must-relation — every rule of the dense relation except LOCK,
       FIFO and NOPRE included — orders the pair.  FIFO and NOPRE
       applied over must-facts derive must-facts (a dispatch order
       forced by must-ordered immediate posts to one queue is forced in
       every admissible schedule), so no reordering can flip the pair.
       This catches, far more cheaply than search exhaustion would, the
       common same-looper case: two tasks whose posts are chained
       through their poster's program order. *)
    Obs.add "predict.refuted";
    { pr_pair = race
    ; pr_observed = false
    ; pr_window = None
    ; pr_iterations = 0
    ; pr_verdict = Refuted Must_path
    }
  end
  else if not replayable then begin
    Obs.add "predict.unknown";
    { pr_pair = race
    ; pr_observed = false
    ; pr_window = None
    ; pr_iterations = 0
    ; pr_verdict = Unknown Input_not_replayable
    }
  end
  else
    match window_start ~params ~first:a ~second:b with
    | None ->
      Obs.add "predict.window_exhausted";
      Obs.add "predict.unknown";
      { pr_pair = race
      ; pr_observed = false
      ; pr_window = None
      ; pr_iterations = 0
      ; pr_verdict = Unknown Window_exhausted
      }
    | Some lo -> begin
    Obs.add "predict.windows";
    let outcome, iterations =
      Solver.search ~trace ~state0:(state_at lo) ~succs ~lo ~first:a
        ~second:b ~max_iterations:params.max_iterations
    in
    Obs.add ~n:iterations "predict.iterations";
    let finish verdict =
      { pr_pair = race
      ; pr_observed = false
      ; pr_window = Some (lo, b)
      ; pr_iterations = iterations
      ; pr_verdict = verdict
      }
    in
    match outcome with
    | Solver.Cyclic ->
      Obs.add "predict.refuted";
      finish (Refuted Cyclic_constraints)
    | Solver.Must_ordered ->
      Obs.add "predict.refuted";
      finish (Refuted Must_path)
    | Solver.Exhausted ->
      Obs.add "predict.refuted";
      finish (Refuted Search_exhausted)
    | Solver.Out_of_budget ->
      Obs.add "predict.unknown";
      finish (Unknown Budget_exhausted)
    | Solver.Scheduled order ->
      let events = ref [] in
      for p = lo - 1 downto 0 do
        events := Trace.get trace p :: !events
      done;
      let prefix_len = lo in
      let rev_tail = List.rev_map (Trace.get trace) order in
      let witness_events = !events @ List.rev rev_tail in
      let pos_in_witness p =
        (* position of trace position [p] in the witness *)
        let rec find i = function
          | [] -> raise Not_found
          | q :: rest -> if q = p then i else find (i + 1) rest
        in
        prefix_len + find 0 order
      in
      let first' = pos_in_witness a and second' = pos_in_witness b in
      let w =
        check_witness ~config ~jobs:1 ~replay:true ~first:first'
          ~second:second' ~flipped:(second' < first')
          (Trace.of_events_exn witness_events)
      in
      if witness_ok w && w.w_flipped then begin
        Obs.add "predict.feasible";
        finish (Feasible w)
      end
      else begin
        Obs.add "predict.oracle_rejects";
        Obs.add "predict.unknown";
        finish (Unknown (Oracle_rejected "solver witness rejected"))
      end
  end

let analyze ?(params = default_params) ?(config = Detector.default_config)
    ?(jobs = 1) trace =
  Obs.with_span "predict.analyze" @@ fun () ->
  let trace = Trace.remove_cancelled trace in
  let dense = Detector.relation ~config ~jobs trace in
  let relaxed_detector =
    { config with Detector.hb = relaxed_config config.Detector.hb }
  in
  let relaxed = Detector.relation ~config:relaxed_detector ~jobs trace in
  let candidates =
    Race.detect ~jobs trace ~hb:(Happens_before.hb relaxed)
  in
  (* The must-relation: the dense configuration with only the LOCK rule
     off.  Its orderings hold in every admissible schedule (lock edges
     are the only schedule-dependent base facts; FIFO and NOPRE over
     must-facts are forced), so a candidate it orders is refutable
     without a search. *)
  let must_rel =
    Detector.relation
      ~config:
        { config with
          Detector.hb = { config.Detector.hb with lock_rule = false }
        }
      ~jobs trace
  in
  let must_ordered i j = Happens_before.hb must_rel i j in
  let observed_race (r : Race.t) =
    not
      (Happens_before.ordered dense r.Race.first.Race.position
         r.Race.second.Race.position)
  in
  (* Cap the reordering candidates per location so one hot location
     cannot starve the rest of the trace; the drop count is reported,
     never silent.  Observed races are all kept. *)
  let seen_extra = Hashtbl.create 16 in
  let dropped = ref 0 in
  let selected =
    List.filter_map
      (fun r ->
         if observed_race r then Some (r, true)
         else if
           must_ordered r.Race.first.Race.position
             r.Race.second.Race.position
         then
           (* Refuted without a search; never charged against the
              per-location cap, so cheap refutations cannot starve a
              feasible pair at the same location. *)
           Some (r, false)
         else begin
           let key = Ident.Location.to_string (Race.location r) in
           let n =
             match Hashtbl.find_opt seen_extra key with
             | Some n -> n
             | None -> 0
           in
           if n >= params.max_extra_per_location then begin
             incr dropped;
             None
           end
           else begin
             Hashtbl.replace seen_extra key (n + 1);
             Some (r, false)
           end
         end)
      candidates
  in
  let replayable = Result.is_ok (Step.validate trace) in
  let succs = lazy (must_successors trace) in
  (* Prefix states are shared across pairs: the cache maps a window
     start [lo] to the state after replaying positions [0 .. lo-1].
     OCaml's Hashtbl is not domain-safe, so only the coordinating
     domain ever mutates the table: sequential runs fill it on demand
     through [state_at], parallel runs pre-populate every window start
     with [warm_state_cache] and hand the workers the read-only
     [state_at_ro]. *)
  let state_cache = Hashtbl.create 16 in
  let compute_state lo =
    let st = ref State.initial in
    for p = 0 to lo - 1 do
      match Step.apply !st (Trace.get trace p) with
      | Ok st' -> st := st'
      | Error _ -> assert false (* input validated replayable *)
    done;
    !st
  in
  let state_at lo =
    match Hashtbl.find_opt state_cache lo with
    | Some st -> st
    | None ->
      let st = compute_state lo in
      Hashtbl.replace state_cache lo st;
      st
  in
  (* Worker-domain view of the cache: never writes.  A miss (possible
     only if [warm_state_cache] ever diverged from [solve_pair]'s
     window choice) recomputes locally instead of touching the shared
     table. *)
  let state_at_ro lo =
    match Hashtbl.find_opt state_cache lo with
    | Some st -> st
    | None -> compute_state lo
  in
  let warm_state_cache () =
    let starts =
      List.filter_map
        (fun (r, observed) ->
           let a = r.Race.first.Race.position
           and b = r.Race.second.Race.position in
           if observed || must_ordered a b then None
           else window_start ~params ~first:a ~second:b)
        selected
      |> List.sort_uniq compare
    in
    (* One incremental replay of the trace covers every start. *)
    let st = ref State.initial in
    let pos = ref 0 in
    List.iter
      (fun lo ->
         while !pos < lo do
           (match Step.apply !st (Trace.get trace !pos) with
            | Ok st' -> st := st'
            | Error _ -> assert false);
           incr pos
         done;
         Hashtbl.replace state_cache lo !st)
      starts
  in
  let past_deadline () =
    match params.deadline with
    | None -> false
    | Some d -> Unix.gettimeofday () > d
  in
  let solve ~state_at (r, observed) =
    if past_deadline () && not observed then begin
      Obs.add "predict.unknown";
      { pr_pair = r
      ; pr_observed = false
      ; pr_window = None
      ; pr_iterations = 0
      ; pr_verdict = Unknown Deadline
      }
    end
    else
      solve_pair ~params ~config ~trace ~state_at ~succs:(Lazy.force succs)
        ~replayable ~must_ordered r ~observed
  in
  let pairs =
    if jobs > 1 then begin
      (* Each pair is a pure function of (trace, pair); force the
         shared caches before fanning out so the worker domains only
         read them. *)
      ignore (Lazy.force succs);
      (if replayable then warm_state_cache ());
      Par_pool.parallel_map ~jobs (solve ~state_at:state_at_ro) selected
    end
    else List.map (solve ~state_at) selected
  in
  let degraded =
    List.exists
      (fun p ->
         match p.pr_verdict with Unknown Deadline -> true | _ -> false)
      pairs
  in
  let count f = List.length (List.filter f pairs) in
  { trace
  ; candidates = List.length candidates
  ; dropped = !dropped
  ; observed = count (fun p -> p.pr_observed)
  ; feasible =
      count (fun p -> match p.pr_verdict with Feasible _ -> true | _ -> false)
  ; refuted =
      count (fun p -> match p.pr_verdict with Refuted _ -> true | _ -> false)
  ; unknown =
      count (fun p -> match p.pr_verdict with Unknown _ -> true | _ -> false)
  ; extra =
      count (fun p ->
        (not p.pr_observed)
        && match p.pr_verdict with Feasible _ -> true | _ -> false)
  ; replayable_input = replayable
  ; degraded
  ; pairs
  }

let locations_where pred report =
  List.filter_map
    (fun p ->
       if pred p then
         Some (Ident.Location.to_string (Race.location p.pr_pair))
       else None)
    report.pairs
  |> List.sort_uniq String.compare

let feasible_locations report =
  locations_where
    (fun p -> match p.pr_verdict with Feasible _ -> true | _ -> false)
    report

let extra_locations report =
  locations_where
    (fun p ->
       (not p.pr_observed)
       && match p.pr_verdict with Feasible _ -> true | _ -> false)
    report

let pp_report ppf report =
  Format.fprintf ppf
    "%d candidate pair(s): %d observed, %d feasible (%d by reordering \
     only), %d refuted, %d unknown%s%s"
    report.candidates report.observed report.feasible report.extra
    report.refuted report.unknown
    (if report.dropped > 0 then
       Printf.sprintf ", %d dropped by the per-location cap" report.dropped
     else "")
    (if report.degraded then " [degraded: deadline]" else "")

(* {1 JSON} *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let access_json buf (a : Race.access) =
  Printf.bprintf buf
    "{\"position\":%d,\"kind\":\"%s\",\"location\":\"%s\",\"thread\":%d,\"task\":%s}"
    a.Race.position
    (if a.Race.is_write then "write" else "read")
    (json_escape (Ident.Location.to_string a.Race.location))
    (Ident.Thread_id.to_int a.Race.thread)
    (match a.Race.task with
     | Some t -> Printf.sprintf "\"%s\"" (json_escape (Ident.Task_id.to_string t))
     | None -> "null")

let pair_json buf ~witness_path ~file p =
  let verdict, reason =
    match p.pr_verdict with
    | Feasible _ -> ("feasible", None)
    | Refuted r -> ("refuted", Some (refutation_label r))
    | Unknown u -> ("unknown", Some (unknown_label u))
  in
  Printf.bprintf buf "{\"first\":";
  access_json buf p.pr_pair.Race.first;
  Printf.bprintf buf ",\"second\":";
  access_json buf p.pr_pair.Race.second;
  Printf.bprintf buf ",\"observed\":%b,\"verdict\":\"%s\"" p.pr_observed
    verdict;
  (match reason with
   | Some r -> Printf.bprintf buf ",\"reason\":\"%s\"" r
   | None -> ());
  (match p.pr_window with
   | Some (lo, hi) ->
     Printf.bprintf buf ",\"window\":[%d,%d],\"window_events\":%d" lo hi
       (hi - lo + 1)
   | None -> Printf.bprintf buf ",\"window\":null");
  Printf.bprintf buf ",\"iterations\":%d" p.pr_iterations;
  (match p.pr_verdict with
   | Feasible w ->
     Printf.bprintf buf
       ",\"flipped\":%b,\"witness_events\":%d,\"replay\":{\"wellformed\":%b,\"step\":%s,\"unordered\":%b}"
       w.w_flipped (Trace.length w.w_trace) w.w_wellformed
       (match w.w_replayed with
        | Some ok -> string_of_bool ok
        | None -> "null")
       w.w_unordered;
     (match witness_path ~file ~pair:p with
      | Some path ->
        Printf.bprintf buf ",\"witness\":\"%s\"" (json_escape path)
      | None -> Printf.bprintf buf ",\"witness\":null")
   | Refuted _ | Unknown _ -> ());
  Buffer.add_char buf '}'

let json_string ~params ~witness_path files =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\"schema\":\"droidracer-predictions/1\",\"window\":%d,\"max_iterations\":%d,\"files\":["
    params.window params.max_iterations;
  List.iteri
    (fun i (file, report) ->
       if i > 0 then Buffer.add_char buf ',';
       Printf.bprintf buf
         "{\"file\":\"%s\",\"events\":%d,\"replayable\":%b,\"degraded\":%b,\"summary\":{\"candidates\":%d,\"observed\":%d,\"feasible\":%d,\"extra\":%d,\"refuted\":%d,\"unknown\":%d,\"dropped\":%d},\"feasible_locations\":["
         (json_escape file)
         (Trace.length report.trace)
         report.replayable_input report.degraded report.candidates
         report.observed report.feasible report.extra report.refuted
         report.unknown report.dropped;
       List.iteri
         (fun j loc ->
            if j > 0 then Buffer.add_char buf ',';
            Printf.bprintf buf "\"%s\"" (json_escape loc))
         (feasible_locations report);
       Buffer.add_string buf "],\"extra_locations\":[";
       List.iteri
         (fun j loc ->
            if j > 0 then Buffer.add_char buf ',';
            Printf.bprintf buf "\"%s\"" (json_escape loc))
         (extra_locations report);
       Buffer.add_string buf "],\"pairs\":[";
       List.iteri
         (fun j p ->
            if j > 0 then Buffer.add_char buf ',';
            pair_json buf ~witness_path ~file p)
         report.pairs;
       Buffer.add_string buf "]}")
    files;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf
