open! Import

(** Predictive race detection with an executable feasibility oracle.

    The batch engines report the races of the {e observed} schedule: a
    candidate pair ordered only by a LOCK edge (the lock winner of this
    particular run) or by FIFO dispatch of posts that nothing forces
    into that order is silently missed.  This engine asks the converse
    question — {e could an admissible reordering of the observed trace
    make the pair race?} — and answers it constructively: a [Feasible]
    verdict always carries a complete reordered trace that
    {!Wellformed.check} accepts, {!Step.validate} replays, and in which
    the dense happens-before relation leaves the pair unordered.

    {2 Pipeline}

    - Candidates are the races of the {e relaxed} relation — the
      paper's relation with [lock_rule = false] and [fifo_rule = false]
      ({!relaxed_config}).  Both dropped rules only record which way a
      schedule-dependent conflict went in the observed run, so every
      pair that races in {e some} admissible reordering is a candidate;
      monotonicity of the rule system makes the dense races a subset.
    - A candidate that already races under the dense relation is
      {e observed}: its witness is the observed trace truncated right
      after the second access (admissible prefixes stay admissible, and
      the relation of a prefix is the restriction of the full one).
    - Candidates ordered by the {e must}-relation — the dense
      configuration with only the LOCK rule off, whose orderings hold
      in every admissible schedule (FIFO and NOPRE over must-facts are
      forced) — are [Refuted] outright: this settles the common
      same-looper case, where the two tasks' posts are chained through
      their poster's program order and dispatch is forced.
    - For the rest, a bounded window of the trace ending at the second
      access is searched for a reordering that runs the observed-second
      access {e before} the observed-first one ("flips" the pair).  The
      prefix before the window is replayed verbatim; the window events
      are permuted by a depth-first search over the transition system of
      {!Step} (so queue dispatch, run-to-completion, lock exclusion and
      thread lifecycle are enforced by construction), pruned by the
      {e must-happen-before} constraints of {!Hb_edges.must} — the
      static rules that hold in every admissible schedule.
    - Every witness is re-checked from scratch by the oracle
      ({!Wellformed.check}, {!Step.validate}, dense unorderedness at the
      new positions); an engine bug can therefore produce [Unknown],
      never an unsound [Feasible].

    {2 Verdicts}

    [Refuted] is relative to the window discipline: the pair cannot flip
    by any reordering that keeps the pre-window prefix fixed.  With a
    window covering the whole trace it is absolute.  [Unknown] reports
    an exhausted budget (window span, solver iterations, wall-clock
    deadline), an input the checker cannot replay, or an
    oracle-rejected witness — never a claim about the program. *)

(** {1 Parameters} *)

type params =
  { window : int
        (** maximum window span (second − first access, inclusive);
            pairs further apart are [Unknown] with
            {!Window_exhausted} *)
  ; max_iterations : int
        (** solver search-node budget per pair; past it the pair is
            [Unknown] with {!Budget_exhausted} *)
  ; max_extra_per_location : int
        (** non-observed candidates solved per location; the rest are
            counted in {!report.dropped} (observed races are never
            dropped) *)
  ; deadline : float option
        (** absolute [Unix.gettimeofday] deadline; pairs not yet solved
            when it passes are [Unknown] with {!Deadline} and the
            report is marked {!report.degraded} *)
  }

val default_params : params
(** window 256, 20_000 iterations, 4 extras per location, no
    deadline. *)

val relaxed_config : Happens_before.config -> Happens_before.config
(** The candidate-generation relation: the given configuration with
    [lock_rule] and [fifo_rule] switched off. *)

(** {1 The constraint solver} *)

module Solver : sig
  (** The window search, exposed for the adversarial tests.  Positions
      refer to the trace; the window is [\[lo, second\]] and the search
      looks for an admissible emission order of a subset of the window
      that ends [second] before [first]. *)

  type outcome =
    | Scheduled of int list
        (** feasible: the window positions in emission order, ending
            with [first] (its predecessor is the flipped [second]) *)
    | Cyclic  (** the constraint graph has a cycle inside the window *)
    | Must_ordered
        (** a must-constraint path orders [first] before [second] *)
    | Exhausted
        (** the search space was covered without finding a flip *)
    | Out_of_budget  (** [max_iterations] search nodes were expanded *)

  val toposort : n:int -> succs:int list array -> int list option
  (** Kahn's algorithm over nodes [0 .. n-1]; [None] on a cycle.
      Deterministic: ready nodes are taken in ascending index order. *)

  val search :
    trace:Trace.t ->
    state0:State.t ->
    succs:int list array ->
    lo:int ->
    first:int ->
    second:int ->
    max_iterations:int ->
    outcome * int
  (** [search ~trace ~state0 ~succs ~lo ~first ~second ~max_iterations]
      explores emission orders of window positions [lo .. second]
      starting from [state0] (the state after replaying positions
      [0 .. lo-1]).  [succs.(p)] lists the must-successors of position
      [p]; edges leaving the window are ignored.  Returns the outcome
      and the number of search nodes expanded.  Memoised on
      (emitted-set, queue contents), so revisited scheduler states are
      never re-expanded; with the iteration budget this bounds the
      search on any input, cyclic constraint graphs included. *)
end

val must_successors : Trace.t -> int list array
(** [succs.(p)] = positions that must execute after [p] in every
    admissible schedule: the {!Hb_edges.must} rule instances over the
    uncoalesced graph of the trace. *)

(** {1 Verdicts} *)

type refutation =
  | Cyclic_constraints
  | Must_path
  | Search_exhausted

type unknown_reason =
  | Window_exhausted  (** pair further apart than [params.window] *)
  | Budget_exhausted  (** solver ran out of iterations *)
  | Oracle_rejected of string
        (** the engine produced a witness the oracle did not accept —
            counted in [predict.oracle_rejects], never reported
            [Feasible] *)
  | Input_not_replayable
        (** {!Step.validate} rejects the input trace, so no prefix
            state exists to search from *)
  | Deadline  (** the wall-clock budget passed before this pair ran *)

val refutation_label : refutation -> string

val unknown_label : unknown_reason -> string

type witness =
  { w_trace : Trace.t  (** the complete reordered (or truncated) trace *)
  ; w_first : int  (** position of the observed-first access in it *)
  ; w_second : int  (** position of the observed-second access in it *)
  ; w_flipped : bool
        (** the observed-second access now runs first (always true for
            solver witnesses, false for truncated observed ones) *)
  ; w_wellformed : bool  (** {!Wellformed.check} accepts the witness *)
  ; w_replayed : bool option
        (** [Some] result of {!Step.validate}; [None] for a truncated
            witness of an input that itself does not replay *)
  ; w_unordered : bool
        (** the dense relation of the witness leaves the pair
            unordered *)
  }

type verdict =
  | Feasible of witness
  | Refuted of refutation
  | Unknown of unknown_reason

type pair_result =
  { pr_pair : Race.t  (** positions refer to the analysed trace *)
  ; pr_observed : bool  (** already a race of the dense relation *)
  ; pr_window : (int * int) option
        (** the [\[lo, hi\]] window searched ([None] when no search
            ran) *)
  ; pr_iterations : int  (** solver search nodes expanded *)
  ; pr_verdict : verdict
  }

type report =
  { trace : Trace.t  (** the analysed trace (cancelled tasks removed) *)
  ; candidates : int  (** relaxed-relation races considered *)
  ; dropped : int
        (** non-observed candidates skipped by
            [max_extra_per_location] *)
  ; observed : int  (** candidates that are dense races *)
  ; feasible : int
  ; refuted : int
  ; unknown : int
  ; extra : int  (** feasible but not observed: reordering-only races *)
  ; replayable_input : bool  (** {!Step.validate} accepts the input *)
  ; degraded : bool  (** a deadline cut the analysis short *)
  ; pairs : pair_result list  (** in candidate (position) order *)
  }

val analyze :
  ?params:params ->
  ?config:Detector.config ->
  ?jobs:int ->
  Trace.t ->
  report
(** Runs the full pipeline.  [config] is the {e dense} configuration
    (default {!Detector.default_config}); the relaxed candidate
    relation is derived from it.  With [jobs > 1] the per-pair searches
    run on a {!Par_pool}; each search is a pure function of the trace
    and the pair, so the report is identical for every [jobs] value
    (except under a [deadline], where the set of pairs cut short may
    differ).  Emits [predict.*] counters and spans when {!Obs} is
    enabled. *)

val feasible_locations : report -> string list
(** Sorted, de-duplicated {!Ident.Location.to_string} forms of the
    locations with at least one [Feasible] pair — the recall oracle
    interface used by the corpus gates. *)

val extra_locations : report -> string list
(** Like {!feasible_locations}, restricted to reordering-only
    ([Feasible] and not observed) pairs. *)

(** {1 Reports} *)

val pp_report : Format.formatter -> report -> unit

val json_string :
  params:params ->
  witness_path:(file:string -> pair:pair_result -> string option) ->
  (string * report) list ->
  string
(** The [droidracer-predictions/1] document for a list of
    [(file, report)] results.  [witness_path] names the file a feasible
    pair's witness was written to (or [None] when witnesses are not
    materialised); writing the witness files is the caller's
    business. *)
