(* Aliases for the modules this library consumes; opened by every file
   of this library. *)
module Ident = Droidracer_trace.Ident
module Operation = Droidracer_trace.Operation
module Trace = Droidracer_trace.Trace
module Wellformed = Droidracer_trace.Wellformed
module State = Droidracer_semantics.State
module Step = Droidracer_semantics.Step
module Queue_model = Droidracer_semantics.Queue_model
module Graph = Droidracer_core.Graph
module Hb_edges = Droidracer_core.Hb_edges
module Happens_before = Droidracer_core.Happens_before
module Race = Droidracer_core.Race
module Detector = Droidracer_core.Detector
module Par_pool = Droidracer_core.Par_pool
module Obs = Droidracer_obs.Obs
