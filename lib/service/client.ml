open! Import

(* The blocking client side of the wire protocol: one socket, one
   frame out (+ optional trace frame), one frame back.  The resilient
   submit loop on top is what the CLI and the load generator share: it
   survives daemon restarts by reconnecting and resubmitting the same
   request id — the daemon's journal and result cache make that
   idempotent. *)

type t = { fd : Unix.file_descr }

let connect endpoint =
  (* A daemon restart between our write and read must surface as an
     error value, not SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let domain =
    match endpoint with
    | Wire.Unix_socket _ -> Unix.PF_UNIX
    | Wire.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Wire.sockaddr_of_endpoint endpoint) with
  | () -> Ok { fd }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Unix.error_message e)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let set_read_timeout t seconds =
  try Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO (Float.max 0.01 seconds)
  with Unix.Unix_error _ -> ()

let roundtrip t ?(trace = "") request =
  match
    Proc_pool.write_frame t.fd (Bytes.of_string (Wire.request_json request));
    (match request with
     | Wire.Analyze a when a.a_trace_bytes > 0 ->
       Proc_pool.write_frame t.fd (Bytes.unsafe_of_string trace)
     | _ -> ());
    Proc_pool.read_frame t.fd
  with
  | None -> Error "connection closed by daemon"
  | Some frame -> Wire.parse_response (Bytes.to_string frame)
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let once endpoint ?trace request =
  match connect endpoint with
  | Error e -> Error e
  | Ok t ->
    Fun.protect ~finally:(fun () -> close t) (fun () -> roundtrip t ?trace request)

(* {1 Resilient submission} *)

type submit_outcome =
  { so_response : Json_parse.t
  ; so_latency : float  (* first attempt to final response, wall *)
  ; so_reconnects : int
  ; so_overloaded : int  (* overloaded/draining rejections absorbed *)
  }

let submit ~endpoint ~deadline_seconds ~id ~engine ?timeout ?(sleep = 0.0)
    ~trace () =
  let started = Unix.gettimeofday () in
  let deadline = started +. deadline_seconds in
  let request =
    Wire.Analyze
      { a_id = id
      ; a_engine = engine
      ; a_timeout = timeout
      ; a_sleep = sleep
      ; a_trace_bytes = String.length trace
      ; a_wait = true
      }
  in
  let finish conn result reconnects overloaded =
    (match conn with Some t -> close t | None -> ());
    match result with
    | Ok response ->
      Ok
        { so_response = response
        ; so_latency = Unix.gettimeofday () -. started
        ; so_reconnects = reconnects
        ; so_overloaded = overloaded
        }
    | Error e -> Error e
  in
  let backoff failures = Float.min 1.0 (0.05 *. (2.0 ** float_of_int failures)) in
  let rec go conn failures reconnects overloaded =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then
      finish conn
        (Error
           (Printf.sprintf "request %s: gave up after %.1fs" id deadline_seconds))
        reconnects overloaded
    else
      match conn with
      | None ->
        (match connect endpoint with
         | Ok t -> go (Some t) failures reconnects overloaded
         | Error _ ->
           Unix.sleepf (Float.min remaining (backoff failures));
           go None (failures + 1) reconnects overloaded)
      | Some t ->
        set_read_timeout t remaining;
        (match roundtrip t ~trace request with
         | Error _ ->
           (* Daemon gone mid-request (crash, restart, shed): reconnect
              and resubmit the same id — at most once per backoff step. *)
           close t;
           Unix.sleepf (Float.min remaining (backoff failures));
           go None (failures + 1) (reconnects + 1) overloaded
         | Ok response ->
           (match Wire.response_status response with
            | "overloaded" | "draining" ->
              let hint =
                Option.value
                  (Wire.response_num "retry_after_seconds" response)
                  ~default:0.2
              in
              Unix.sleepf (Float.min remaining (Float.max 0.02 hint));
              go (Some t) failures reconnects (overloaded + 1)
            | _ -> finish (Some t) (Ok response) reconnects overloaded))
  in
  go None 0 0 0
