(* Aliases for the modules of the lower libraries; opened by every file
   of this library. *)
module Trace = Droidracer_trace.Trace
module Trace_io = Droidracer_trace.Trace_io
module Happens_before = Droidracer_core.Happens_before
module Detector = Droidracer_core.Detector
module Supervisor = Droidracer_report.Supervisor
module Proc_pool = Droidracer_report.Proc_pool
module Journal = Droidracer_report.Journal
module Progress = Droidracer_report.Progress
module Obs = Droidracer_obs.Obs
